# Build / test entry points. `make check` is the tier-1 gate;
# `make fuzz-smoke` additionally runs each fuzz target for a short,
# CI-sized burst over its checked-in seed corpus.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test test-race check race-smoke fuzz-smoke bench-mc bench-mc-smoke bench-pipeline bench-frontend bench-weaken bench-stress pipeline-smoke frontend-smoke obs-smoke obs-live-smoke serve-smoke weaken-smoke stress-smoke clean

# Module size for the pipeline byte-identical-output smoke. Big enough
# to exercise the parallel fan-out, small enough for `make check`.
PIPELINE_SMOKE_SLOC ?= 20000

# Module size for the frontend byte-identical-output smoke (chunked
# parallel parse + parallel lowering through the CLI).
FRONTEND_SMOKE_SLOC ?= 100000

# Module size for the daemon smoke (cold port, one-function edit,
# warm re-port — all byte-compared against the CLI).
SERVE_SMOKE_SLOC ?= 8000

# Module size for the stress smoke (planted race found + minimized +
# confirmed; defect-free twin sweeps clean).
STRESS_SMOKE_SLOC ?= 20000



all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The stack's own race detector is exercised by the test suite; this
# runs the suite under Go's runtime race detector as well.
test-race:
	$(GO) test -race ./...

check: build vet test test-race bench-mc-smoke obs-smoke obs-live-smoke pipeline-smoke frontend-smoke serve-smoke weaken-smoke stress-smoke

# Model-checker scaling sweep (docs/MODEL-CHECKER.md): exhaustive
# exploration of the litmus+seqlock corpus at 1..8 workers, appending
# execs/sec, speedup vs -j 1, states and pruning counters to
# BENCH_mc.json.
bench-mc:
	$(GO) run ./cmd/atomig-bench -exp mc-scaling -json BENCH_mc.json

# Porting-pipeline scaling sweep (docs/PIPELINE.md): port the generated
# >= 100k-line module at 1..8 workers, appending throughput, speedup vs
# -j 1 and the ported-output hash to BENCH_pipeline.json. The sweep
# itself fails on any cross-worker output drift.
bench-pipeline:
	$(GO) run ./cmd/atomig-bench -exp pipeline-scaling -json BENCH_pipeline.json

# Frontend scaling sweep (docs/PIPELINE.md "Frontend"): compile the
# generated >= 100k-line module at 1..8 workers, appending per-phase
# (lex/parse/lower) timings, throughput and the module hash to
# BENCH_pipeline.json. Fails on any cross-worker module drift.
bench-frontend:
	$(GO) run ./cmd/atomig-bench -exp frontend-scaling -json BENCH_pipeline.json

# End-to-end determinism smoke of the parallel pipeline
# (docs/PIPELINE.md): generate a large module, port it through the CLI
# at -j 1 and -j 8, and require byte-identical output.
pipeline-smoke:
	$(GO) build -o bin/ ./cmd/atomig ./cmd/atomig-bench
	bin/atomig-bench -gen-module bin/pipeline-smoke.c -sloc $(PIPELINE_SMOKE_SLOC)
	bin/atomig -j 1 -o bin/pipeline-smoke-j1.air bin/pipeline-smoke.c
	bin/atomig -j 8 -o bin/pipeline-smoke-j8.air bin/pipeline-smoke.c
	cmp bin/pipeline-smoke-j1.air bin/pipeline-smoke-j8.air

# Frontend determinism smoke (docs/PIPELINE.md "Frontend"): compile a
# generated 100k-line module through the CLI at -j 1 and -j 8 and
# require byte-identical original-module dumps (-emit-orig: the
# frontend's output before porting), ported .air files, and reports.
# The porting-time line (wall clock) and the wrote-file line (per-j
# output path) are filtered before comparing.
frontend-smoke:
	$(GO) build -o bin/ ./cmd/atomig ./cmd/atomig-bench
	bin/atomig-bench -gen-module bin/frontend-smoke.c -sloc $(FRONTEND_SMOKE_SLOC)
	bin/atomig -j 1 -emit-orig -o bin/frontend-smoke-j1.air bin/frontend-smoke.c > bin/frontend-smoke-j1.raw
	bin/atomig -j 8 -emit-orig -o bin/frontend-smoke-j8.air bin/frontend-smoke.c > bin/frontend-smoke-j8.raw
	grep -v -e "porting time:" -e "^wrote " bin/frontend-smoke-j1.raw > bin/frontend-smoke-j1.out
	grep -v -e "porting time:" -e "^wrote " bin/frontend-smoke-j8.raw > bin/frontend-smoke-j8.out
	cmp bin/frontend-smoke-j1.out bin/frontend-smoke-j8.out
	cmp bin/frontend-smoke-j1.air bin/frontend-smoke-j8.air

# End-to-end smoke of the incremental porting daemon (docs/SERVE.md):
# drive `atomig -serve` through load → port → one-function edit →
# re-port over the JSON protocol, byte-comparing both ports against
# the CLI and requiring the re-port to re-analyze exactly one
# function. Built binaries, not `go run`, so exit codes survive intact.
serve-smoke:
	$(GO) build -o bin/ ./cmd/atomig ./cmd/atomig-bench
	sh scripts/serve-smoke.sh bin/atomig bin/atomig-bench bin $(SERVE_SMOKE_SLOC)

# Checker-in-the-loop weakening sweep (docs/WEAKENING.md): port + weaken
# the CK-style corpus and two generated appgen modules, appending cost
# reduction and accepted-weakening counts to BENCH_weaken.json.
bench-weaken:
	$(GO) run ./cmd/atomig-bench -exp weaken -json BENCH_weaken.json

# Schedule-fuzzing stress sweep (docs/STRESS.md): throughput over a
# generated 100k+-line planted-defect module, detection rate vs
# detector sampling fraction, and the stress-vs-exhaustive weakening
# oracle comparison, appended to BENCH_stress.json.
bench-stress:
	$(GO) run ./cmd/atomig-bench -exp stress -json BENCH_stress.json

# End-to-end smoke of the stress mode (docs/STRESS.md): a generated
# module with a seeded race is ported, swept, auto-minimized and
# checker-confirmed; its defect-free twin must sweep clean. Built
# binaries, not `go run`, so exit codes survive intact.
stress-smoke:
	$(GO) build -o bin/ ./cmd/atomig ./cmd/atomig-bench ./cmd/atomig-mc
	sh scripts/stress-smoke.sh bin/atomig bin/atomig-bench bin/atomig-mc bin $(STRESS_SMOKE_SLOC)

# End-to-end smoke of the weakening optimizer (docs/WEAKENING.md):
# port + -O the seqlock-gap and cna-lock flagships through the CLI,
# asserting the baseline verdict holds and the static cost strictly
# decreases. Built binary, not `go run`, so exit codes survive intact.
weaken-smoke:
	$(GO) build -o bin/ ./cmd/atomig
	sh scripts/weaken-smoke.sh bin/atomig

# One-iteration smoke of the same sweep so `make check` notices a
# broken or drifting parallel engine without paying for a full
# measurement run.
bench-mc-smoke:
	$(GO) test -run none -bench BenchmarkMCScaling -benchtime=1x ./internal/bench

# End-to-end smoke of the happens-before race detector (docs/RACES.md):
# the seqlock-gap corpus program must be flagged racy before porting
# and verified race-free after, through every CLI surface. Built
# binaries, not `go run`, so exit codes survive intact.
race-smoke:
	$(GO) build -o bin/ ./cmd/atomig ./cmd/atomig-mc ./cmd/atomig-run
	bin/atomig -explain-races -corpus seqlock-gap
	bin/atomig-mc -race -stats -corpus seqlock-gap; test $$? -eq 4
	bin/atomig-mc -race -stats -port -corpus seqlock-gap
	bin/atomig-run -race -model wmm -sched reorder -corpus seqlock-gap; test $$? -eq 3
	bin/atomig-run -race -model wmm -sched reorder -port -corpus seqlock-gap

# End-to-end smoke of the observability exports (docs/OBSERVABILITY.md):
# a parallel ported check must emit a metrics snapshot and a Chrome
# trace timeline that the validator accepts. Built binaries, not
# `go run`, so exit codes survive intact.
obs-smoke:
	$(GO) build -o bin/ ./cmd/atomig-mc ./cmd/atomig-bench
	bin/atomig-mc -port -j 4 -corpus seqlock-gap -metrics bin/obs-metrics.json -trace bin/obs-trace.json
	bin/atomig-bench -check-metrics bin/obs-metrics.json -check-trace bin/obs-trace.json

# Module size for the live-telemetry smoke (mid-flight /metrics scrape
# cross-checked against the end-of-run snapshot).
OBS_LIVE_SMOKE_SLOC ?= 4000

# End-to-end smoke of the live telemetry surface (docs/OBSERVABILITY.md
# "Live HTTP exposition"): a daemon with -http is scraped mid-port, the
# scrape validated and cross-checked against the final snapshot, and
# /healthz walked ok -> degraded under shed load. Built binaries, not
# `go run`, so exit codes survive intact.
obs-live-smoke:
	$(GO) build -o bin/ ./cmd/atomig ./cmd/atomig-bench
	sh scripts/obs-live-smoke.sh bin/atomig bin/atomig-bench bin $(OBS_LIVE_SMOKE_SLOC)

# Go allows one -fuzz pattern per invocation, so the targets run
# sequentially. Crashers are written to testdata/fuzz/ as new
# regression seeds; check them in.
fuzz-smoke:
	$(GO) test -run none -fuzz FuzzCompile -fuzztime $(FUZZTIME) ./internal/minic
	$(GO) test -run none -fuzz FuzzParseChunked -fuzztime $(FUZZTIME) ./internal/minic
	$(GO) test -run none -fuzz FuzzParseRoundTrip -fuzztime $(FUZZTIME) ./internal/ir
	$(GO) test -run none -fuzz FuzzAliasExplore -fuzztime $(FUZZTIME) ./internal/alias
	$(GO) test -run none -fuzz FuzzMinimize -fuzztime $(FUZZTIME) ./internal/stress

clean:
	$(GO) clean ./...
	rm -rf bin/
