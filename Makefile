# Build / test entry points. `make check` is the tier-1 gate;
# `make fuzz-smoke` additionally runs each fuzz target for a short,
# CI-sized burst over its checked-in seed corpus.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test check fuzz-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

# Go allows one -fuzz pattern per invocation, so the targets run
# sequentially. Crashers are written to testdata/fuzz/ as new
# regression seeds; check them in.
fuzz-smoke:
	$(GO) test -run none -fuzz FuzzCompile -fuzztime $(FUZZTIME) ./internal/minic
	$(GO) test -run none -fuzz FuzzParseRoundTrip -fuzztime $(FUZZTIME) ./internal/ir

clean:
	$(GO) clean ./...
