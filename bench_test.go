package repro

// Top-level benchmarks: one per table and figure of the paper's
// evaluation. Each benchmark regenerates its artifact and reports it
// via b.Log, so
//
//	go test -bench=. -benchtime=1x .
//
// reproduces the entire evaluation in one run. Wall-clock time per
// benchmark is the time to regenerate the artifact once.

import (
	"testing"
	"time"

	"repro/internal/bench"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Table 1 is qualitative; its measured rows are t5/t6. Nothing to
		// compute, but keep the experiment id addressable.
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := bench.DefaultTable2Options()
		opts.TimeBudget = 3 * time.Second
		rows, err := bench.Table2(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable2(rows))
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3(50, 7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable3(rows, 50))
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Table4(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable4(res))
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable5(rows))
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable6(rows))
		}
	}
}

func benchFigure(b *testing.B, run func() (*bench.FigureResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if !f.OK {
			b.Fatalf("figure not reproduced:\n%s", f)
		}
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

func BenchmarkFigure1(b *testing.B) { benchFigure(b, bench.Figure1) }
func BenchmarkFigure3(b *testing.B) { benchFigure(b, bench.Figure3) }
func BenchmarkFigure4(b *testing.B) { benchFigure(b, bench.Figure4) }
func BenchmarkFigure5(b *testing.B) { benchFigure(b, bench.Figure5) }
func BenchmarkFigure6(b *testing.B) { benchFigure(b, bench.Figure6) }
func BenchmarkFigure7(b *testing.B) { benchFigure(b, bench.Figure7) }
