// Command atomig-bench regenerates the paper's evaluation tables and
// figures.
//
// Usage:
//
//	atomig-bench -exp t2            # Table 2 (verification matrix)
//	atomig-bench -exp t3 -scale 20  # Table 3 (scalability, 1/20 size)
//	atomig-bench -exp t4            # Table 4 (dynamic barrier census)
//	atomig-bench -exp t5            # Table 5 (performance vs naïve)
//	atomig-bench -exp t6            # Table 6 (Phoenix, vs Lasagne)
//	atomig-bench -exp f1            # Figure demos (f1, f3..f7)
//	atomig-bench -exp all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

// appendJSON appends one JSON line to path, creating it on first use,
// so repeated benchmark runs accumulate a machine-readable history.
func appendJSON(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	exp := flag.String("exp", "all", "experiment id: t1..t6, f1, f3..f7, figures, mc-scaling, pipeline-scaling, frontend-scaling, weaken, stress, all")
	scale := flag.Int("scale", 20, "application scale divisor for t3 (1 = paper-sized)")
	seed := flag.Int64("seed", 7, "generator seed for t3/t4 and the pipeline-scaling module")
	sloc := flag.Int("sloc", bench.DefaultPipelineScalingSLOC, "generated module size for pipeline-scaling / -gen-module")
	genModule := flag.String("gen-module", "", "write the pipeline-scaling module's MiniC source to this file and exit")
	genStress := flag.String("gen-stress-module", "", "write a stress-harness module's MiniC source (entries lg_stress_t0..t2) to this file and exit")
	plantRace := flag.Bool("plant-race", false, "with -gen-stress-module: plant the seeded seqlock-gap race")
	budget := flag.Duration("budget", 5*time.Second, "per-check time budget for t2")
	jsonOut := flag.String("json", "", "append machine-readable results to this file (mc-scaling)")
	var of obs.CLIFlags
	of.Register(flag.CommandLine)
	checkMetrics := flag.String("check-metrics", "", "validate a -metrics snapshot file and exit")
	checkTrace := flag.String("check-trace", "", "validate a -trace export file and exit")
	checkProm := flag.String("check-prom", "", "validate a Prometheus /metrics scrape file and exit")
	against := flag.String("against", "", "with -check-prom: cross-check the scrape's counters against this -metrics snapshot")
	flag.Parse()

	// Validator mode: check exported observability files (make obs-smoke,
	// make obs-live-smoke) instead of running experiments.
	if *checkMetrics != "" || *checkTrace != "" || *checkProm != "" {
		os.Exit(validateFiles(*checkMetrics, *checkTrace, *checkProm, *against))
	}

	// Generator mode: emit the pipeline-scaling module source for
	// out-of-process consumers (make pipeline-smoke ports it through the
	// atomig CLI at several -j values and diffs the outputs).
	if *genModule != "" {
		src := bench.GenerateLargeSource(*sloc, *seed)
		if err := os.WriteFile(*genModule, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "atomig-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *genModule, len(src))
		return
	}
	if *genStress != "" {
		src := bench.GenerateStressSource(*sloc, *seed, *plantRace)
		if err := os.WriteFile(*genStress, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "atomig-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes, planted race: %t)\n", *genStress, len(src), *plantRace)
		return
	}

	prov, err := of.Provider(false, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atomig-bench:", err)
		os.Exit(1)
	}

	// envelope wraps one experiment's rows with the host facts a reader
	// needs to judge the numbers: the pinned GOMAXPROCS, the physical
	// CPU count, and whether the pin oversubscribed the host (in which
	// case the wider worker counts time-sliced and speedups are noise).
	envelope := func(experiment string, rows any) map[string]any {
		return map[string]any{
			"experiment":        experiment,
			"when":              time.Now().UTC().Format(time.RFC3339),
			"gomaxprocs_pinned": bench.SweepProcs(nil),
			"num_cpu":           runtime.NumCPU(),
			"oversubscribed":    bench.Oversubscribed(nil),
			"rows":              rows,
		}
	}

	run := func(id string) error {
		switch id {
		case "t1":
			fmt.Print(table1())
			return nil
		case "t2":
			opts := bench.DefaultTable2Options()
			opts.TimeBudget = *budget
			rows, err := bench.Table2(opts)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable2(rows))
			return nil
		case "t3":
			rows, err := bench.Table3(*scale, *seed)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable3(rows, *scale))
			return nil
		case "t4":
			res, err := bench.Table4(*seed)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable4(res))
			return nil
		case "t5":
			rows, err := bench.Table5()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable5(rows))
			return nil
		case "t5x":
			rows, err := bench.Table5Extended()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable5(rows))
			return nil
		case "t6":
			rows, err := bench.Table6()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable6(rows))
			return nil
		case "t2x":
			opts := bench.DefaultTable2Options()
			opts.TimeBudget = *budget
			rows, err := bench.Table2Extended(opts)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatTable2(rows))
			return nil
		case "mc-scaling":
			rows, err := bench.MCScaling(nil, nil, prov)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatMCScaling(rows))
			if *jsonOut != "" {
				if err := appendJSON(*jsonOut, envelope("mc-scaling", rows)); err != nil {
					return err
				}
				fmt.Printf("appended results to %s\n", *jsonOut)
			}
			return nil
		case "pipeline-scaling":
			rows, err := bench.PipelineScaling(*sloc, *seed, nil, prov)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatPipelineScaling(rows))
			if *jsonOut != "" {
				if err := appendJSON(*jsonOut, envelope("pipeline-scaling", rows)); err != nil {
					return err
				}
				fmt.Printf("appended results to %s\n", *jsonOut)
			}
			return nil
		case "frontend-scaling":
			rows, err := bench.FrontendScaling(*sloc, *seed, nil, prov)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFrontendScaling(rows))
			if *jsonOut != "" {
				if err := appendJSON(*jsonOut, envelope("frontend-scaling", rows)); err != nil {
					return err
				}
				fmt.Printf("appended results to %s\n", *jsonOut)
			}
			return nil
		case "stress":
			res, err := bench.StressExperiment(0, *seed, prov)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatStress(res))
			if *jsonOut != "" {
				if err := appendJSON(*jsonOut, envelope("stress", res)); err != nil {
					return err
				}
				fmt.Printf("appended results to %s\n", *jsonOut)
			}
			return nil
		case "weaken":
			rows, err := bench.WeakenSweep(nil, 0, "", prov)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatWeaken(rows))
			if *jsonOut != "" {
				if err := appendJSON(*jsonOut, envelope("weaken", rows)); err != nil {
					return err
				}
				fmt.Printf("appended results to %s\n", *jsonOut)
			}
			return nil
		case "scaling":
			points, err := bench.ScalingSeries([]int{200, 100, 50, 20, 10}, *seed)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatScaling(points))
			return nil
		case "ablations":
			rows, err := bench.Ablations()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatAblations(rows))
			return nil
		case "f1", "f3", "f4", "f5", "f6", "f7", "figures":
			figs, err := bench.AllFigures()
			if err != nil {
				return err
			}
			for _, f := range figs {
				if id == "figures" || "f"+f.Figure == id {
					fmt.Println(f)
				}
			}
			return nil
		}
		return fmt.Errorf("unknown experiment %q", id)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"t1", "t2", "t3", "t4", "t5", "t6", "figures", "ablations"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintln(os.Stderr, "atomig-bench:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if err := of.Close(prov); err != nil {
		fmt.Fprintln(os.Stderr, "atomig-bench:", err)
		os.Exit(1)
	}
}

// validateFiles checks exported observability files against their
// formats: the versioned metrics schema, the Chrome trace-event
// well-formedness rules, and the Prometheus text exposition (scraped
// from a live /metrics; with -against, additionally cross-checked
// against an end-of-run snapshot — every shared counter must be ≤ its
// final value). Any path may be empty. Returns the process exit code.
func validateFiles(metricsPath, tracePath, promPath, againstPath string) int {
	check := func(path, kind string, validate func([]byte) error) bool {
		data, err := os.ReadFile(path)
		if err == nil {
			err = validate(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "atomig-bench: %s: %v\n", kind, err)
			return false
		}
		fmt.Printf("%s: %s is valid\n", kind, path)
		return true
	}
	ok := true
	if metricsPath != "" {
		ok = check(metricsPath, "check-metrics", obs.ValidateMetrics) && ok
	}
	if tracePath != "" {
		ok = check(tracePath, "check-trace", obs.ValidateTrace) && ok
	}
	if promPath != "" {
		validate := obs.ValidateProm
		if againstPath != "" {
			snap, err := os.ReadFile(againstPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "atomig-bench: check-prom: %v\n", err)
				return 1
			}
			validate = func(data []byte) error { return obs.CheckPromAgainst(data, snap) }
		}
		ok = check(promPath, "check-prom", validate) && ok
	}
	if !ok {
		return 1
	}
	return 0
}

// table1 is the paper's qualitative comparison; the three rows this
// reproduction implements are measured by t5/t6, the others are
// documented properties.
func table1() string {
	return `Table 1: Comparison of porting approaches (qualitative)
Approach    Safe  Efficient  Scalable  Practical
Naive       yes   no         yes       yes        (measured: t5/t6 naive column)
Hardware    yes   partial    yes       partial    (Apple M1 TSO mode; out of scope)
Expert      part  yes        no        no         (measured: t5 ck baselines)
VSync       yes   yes        no        no         (model checking does not scale)
Musketeer   yes   partial    partial   no         (alias analysis blow-up)
Lasagne     yes   no         yes       no         (measured: t6 lasagne column)
TSan        no    partial    partial   no         (needs curated test suites)
AtoMig      part  yes        yes       yes        (measured: t2..t6)
`
}
