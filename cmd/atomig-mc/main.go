// Command atomig-mc model-checks a corpus program (or MiniC file) under
// a chosen memory model, optionally after porting it — the GenMC-style
// verification flow of the paper's Table 2.
//
// Usage:
//
//	atomig-mc -corpus mp -model wmm
//	atomig-mc -corpus mp -model wmm -port
//	atomig-mc -model tso -entries reader,writer file.c
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/minic"
)

func main() {
	corpusName := flag.String("corpus", "", "model-check a named corpus program")
	model := flag.String("model", "wmm", "memory model: sc, tso, or wmm")
	port := flag.Bool("port", false, "apply the full atomig pipeline first")
	level := flag.String("level", "full", "pipeline level when porting: expl, spin, full")
	entries := flag.String("entries", "", "comma-separated thread entry functions (files only)")
	budget := flag.Duration("budget", 10*time.Second, "exploration time budget")
	maxExecs := flag.Int("max-execs", 1_000_000, "maximum explored executions")
	trace := flag.Bool("trace", false, "print a counterexample trace per violation")
	flag.Parse()

	mod, entryList, err := load(*corpusName, *entries, flag.Args())
	if err != nil {
		fatal(err)
	}

	if *port {
		opts := atomig.DefaultOptions()
		switch *level {
		case "expl":
			opts.Level = atomig.LevelExplicit
		case "spin":
			opts.Level = atomig.LevelSpin
		case "full":
			opts.Level = atomig.LevelFull
		default:
			fatal(fmt.Errorf("unknown level %q", *level))
		}
		rep, err := atomig.Port(mod, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ported: %d spinloops, %d optimistic loops, +%d implicit, +%d explicit barriers\n",
			rep.Spinloops, rep.Optiloops, rep.ImplicitAdded, rep.ExplicitAdded)
	}

	var mm memmodel.Model
	switch *model {
	case "sc":
		mm = memmodel.ModelSC
	case "tso":
		mm = memmodel.ModelTSO
	case "wmm":
		mm = memmodel.ModelWMM
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}

	res, err := mc.Check(mod, mc.Options{
		Model:         mm,
		Entries:       entryList,
		TimeBudget:    *budget,
		MaxExecutions: *maxExecs,
		Traces:        *trace,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model=%s verdict=%s executions=%d pruned=%d truncated=%d\n",
		mm, res.Verdict, res.Executions, res.Pruned, res.Truncated)
	if *trace {
		for _, ce := range res.Counterexamples {
			fmt.Print(ce)
		}
	} else {
		for _, v := range res.Violations {
			fmt.Printf("violation: %s\n", v)
		}
	}
	if res.Verdict == mc.VerdictFail {
		os.Exit(1)
	}
}

func load(corpusName, entries string, args []string) (*ir.Module, []string, error) {
	if corpusName != "" {
		p := corpus.Get(corpusName)
		if p == nil {
			return nil, nil, fmt.Errorf("unknown corpus program %q", corpusName)
		}
		if len(p.MCEntries) == 0 {
			return nil, nil, fmt.Errorf("corpus program %q has no model-checking harness", corpusName)
		}
		m, err := p.Compile()
		return m, p.MCEntries, err
	}
	if len(args) != 1 || entries == "" {
		return nil, nil, fmt.Errorf("usage: atomig-mc -corpus name | -entries a,b file.c")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(args[0], ".air") {
		m, err := ir.ParseModule(string(src))
		return m, strings.Split(entries, ","), err
	}
	res, err := minic.Compile(args[0], string(src))
	if err != nil {
		return nil, nil, err
	}
	return res.Module, strings.Split(entries, ","), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atomig-mc:", err)
	os.Exit(1)
}
