// Command atomig-mc model-checks a corpus program (or MiniC/.air file)
// under a chosen memory model, optionally after porting it — the
// GenMC-style verification flow of the paper's Table 2.
//
// Usage:
//
//	atomig-mc -corpus mp -model wmm
//	atomig-mc -corpus mp -model wmm -port
//	atomig-mc -model tso -entries reader,writer file.c
//
// Exit codes: 0 the program verified, 1 a violation was found, 2 usage
// or internal error, 3 the exploration budget was exhausted before a
// verdict (verdict unknown; a -resume token is printed so a later run
// can continue the exploration), 4 race detection was on and the
// program has a data race (but no outright violation, which wins).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("atomig-mc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	corpusName := fs.String("corpus", "", "model-check a named corpus program")
	model := fs.String("model", "wmm", "memory model: sc, tso, or wmm")
	port := fs.Bool("port", false, "apply the full atomig pipeline first")
	level := fs.String("level", "full", "pipeline level when porting: expl, spin, full")
	entries := fs.String("entries", "", "comma-separated thread entry functions (files only)")
	budget := fs.Duration("budget", 10*time.Second, "exploration time budget")
	maxExecs := fs.Int("max-execs", 1_000_000, "maximum explored executions")
	cex := fs.Bool("cex", false, "print a counterexample trace per violation")
	detectRaces := fs.Bool("race", false, "attach the happens-before race detector; races become a verdict")
	stats := fs.Bool("stats", false, "print a human-readable exploration summary")
	resume := fs.String("resume", "", "resume token(s) from a prior budget-exhausted run (comma-separated)")
	workers := fs.Int("j", runtime.GOMAXPROCS(0), "parallel exploration workers (1 = sequential)")
	var of obs.CLIFlags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// -stats also reads the registry, so it forces a provider even when
	// no export file was requested.
	prov, err := of.Provider(*stats, stderr)
	if err != nil {
		return fail(stderr, err)
	}

	mod, entryList, err := load(*corpusName, *entries, fs.Args(), *workers, prov)
	if err != nil {
		return fail(stderr, err)
	}

	if *port {
		opts := atomig.DefaultOptions()
		switch *level {
		case "expl":
			opts.Level = atomig.LevelExplicit
		case "spin":
			opts.Level = atomig.LevelSpin
		case "full":
			opts.Level = atomig.LevelFull
		default:
			return fail(stderr, fmt.Errorf("unknown level %q", *level))
		}
		opts.Obs = prov
		rep, err := atomig.Port(mod, opts)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "ported: %d spinloops, %d optimistic loops, +%d implicit, +%d explicit barriers\n",
			rep.Spinloops, rep.Optiloops, rep.ImplicitAdded, rep.ExplicitAdded)
	}

	var mm memmodel.Model
	switch *model {
	case "sc":
		mm = memmodel.ModelSC
	case "tso":
		mm = memmodel.ModelTSO
	case "wmm":
		mm = memmodel.ModelWMM
	default:
		return fail(stderr, fmt.Errorf("unknown model %q", *model))
	}

	opts := mc.Options{
		Model:         mm,
		Entries:       entryList,
		TimeBudget:    *budget,
		MaxExecutions: *maxExecs,
		Traces:        *cex,
		DetectRaces:   *detectRaces,
		Workers:       *workers,
		Obs:           prov,
	}
	if *workers < 1 {
		return fail(stderr, fmt.Errorf("-j %d: need at least one worker", *workers))
	}
	if *resume != "" {
		for _, tok := range strings.Split(*resume, ",") {
			token, err := mc.DecodeResume(strings.TrimSpace(tok))
			if err != nil {
				return fail(stderr, err)
			}
			opts.ResumeAll = append(opts.ResumeAll, token)
		}
	}
	res, err := mc.Check(mod, opts)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "model=%s verdict=%s executions=%d pruned=%d truncated=%d states=%d frontier=%d\n",
		mm, res.Verdict, res.Executions, res.Pruned, res.Truncated, res.States, res.Frontier)
	if res.Reason != "" {
		fmt.Fprintf(stdout, "reason: %s\n", res.Reason)
	}
	if *stats {
		printStats(stdout, res, prov.Snapshot())
	}
	if *cex {
		for _, ce := range res.Counterexamples {
			fmt.Fprint(stdout, ce)
		}
	} else {
		for _, v := range res.Violations {
			fmt.Fprintf(stdout, "violation: %s\n", v)
		}
	}
	if *detectRaces {
		if len(res.Races) == 0 {
			fmt.Fprintln(stdout, "races: none")
		}
		for _, r := range res.Races {
			fmt.Fprint(stdout, r)
		}
		if *cex {
			for _, w := range res.RaceWitnesses {
				fmt.Fprint(stdout, w)
			}
		}
	}
	if err := of.Close(prov); err != nil {
		return fail(stderr, err)
	}
	switch res.Verdict {
	case mc.VerdictFail:
		return 1
	case mc.VerdictUnknown:
		if len(res.ResumeTokens) > 0 {
			encoded := make([]string, len(res.ResumeTokens))
			for i, tok := range res.ResumeTokens {
				encoded[i] = tok.Encode()
			}
			fmt.Fprintf(stdout, "resume=%s\n", strings.Join(encoded, ","))
		} else if res.Resume != nil {
			fmt.Fprintf(stdout, "resume=%s\n", res.Resume.Encode())
		}
		return 3
	case mc.VerdictRace:
		return 4
	}
	return 0
}

// printStats renders the exploration summary in prose: what was
// explored, how much the caches saved, and how complete the claim is.
// The numbers come from the metrics-registry snapshot (the same ones
// -metrics exports); only wall-clock, worker count and the frontier —
// which are per-run facts, not metrics — read from the Result.
func printStats(w io.Writer, res *mc.Result, snap obs.Snapshot) {
	c := snap.Counters
	fmt.Fprintf(w, "explored %d executions in %v with %d worker(s)\n",
		c["mc.executions_explored"], res.Elapsed.Round(time.Millisecond), res.Workers)
	fmt.Fprintf(w, "  distinct states:    %d\n", c["mc.states_recorded"])
	fmt.Fprintf(w, "  pruned re-converging executions: %d\n", c["mc.executions_pruned"])
	fmt.Fprintf(w, "  step-truncated executions:       %d\n", c["mc.executions_truncated"])
	fmt.Fprintf(w, "  VM reuse: %d resets / %d fresh allocations\n", c["mc.vms_reset"], c["mc.vms_allocated"])
	fmt.Fprintf(w, "  contended visited-shard locks:   %d\n", c["mc.shard_locks_contended"])
	if res.Frontier > 0 {
		fmt.Fprintf(w, "  unexplored frontier branches:    %d\n", res.Frontier)
	} else {
		fmt.Fprintln(w, "  state space fully explored")
	}
	if len(snap.Histograms) > 0 {
		names := make([]string, 0, len(snap.Histograms))
		for name := range snap.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "  distribution quantiles (approximate, bucket upper bounds):")
		for _, name := range names {
			h := snap.Histograms[name]
			fmt.Fprintf(w, "    %-32s p50=%d p95=%d p99=%d (n=%d)\n", name, h.P50, h.P95, h.P99, h.Count)
		}
	}
}

func load(corpusName, entries string, args []string, jobs int, prov *obs.Provider) (*ir.Module, []string, error) {
	if corpusName != "" {
		p := corpus.Get(corpusName)
		if p == nil {
			return nil, nil, fmt.Errorf("unknown corpus program %q", corpusName)
		}
		if len(p.MCEntries) == 0 {
			return nil, nil, fmt.Errorf("corpus program %q has no model-checking harness", corpusName)
		}
		m, err := p.Compile()
		return m, p.MCEntries, err
	}
	if len(args) != 1 || entries == "" {
		return nil, nil, fmt.Errorf("usage: atomig-mc -corpus name | -entries a,b file.c")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(args[0], ".air") {
		m, err := ir.ParseModule(string(src))
		return m, strings.Split(entries, ","), err
	}
	// The exploration worker count doubles as the frontend fan-out;
	// the compiled module is byte-identical for every -j.
	res, err := minic.CompileOpts(args[0], string(src), minic.Options{Workers: jobs, Obs: prov})
	if err != nil {
		return nil, nil, err
	}
	return res.Module, strings.Split(entries, ","), nil
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "atomig-mc:", err)
	return 2
}
