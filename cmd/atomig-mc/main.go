// Command atomig-mc model-checks a corpus program (or MiniC/.air file)
// under a chosen memory model, optionally after porting it — the
// GenMC-style verification flow of the paper's Table 2.
//
// Usage:
//
//	atomig-mc -corpus mp -model wmm
//	atomig-mc -corpus mp -model wmm -port
//	atomig-mc -model tso -entries reader,writer file.c
//
// With -stress the exhaustive exploration is replaced by the
// schedule-fuzzing stress engine (docs/STRESS.md): a seeded sweep of
// controlled-random schedules with the race detector sampling -sample
// of the plain locations — no verdict proof, but production-scale
// throughput. -minimize reduces the first race found to a
// litmus-sized program and confirms it exhaustively:
//
//	atomig-mc -stress -seeds 500 -sample 0.25 -j 8 -entries t0,t1 big.c
//	atomig-mc -stress -minimize -corpus seqlock-gap
//
// Exit codes: 0 the program verified, 1 a violation was found, 2 usage
// or internal error, 3 the exploration budget was exhausted before a
// verdict (verdict unknown; a -resume token is printed so a later run
// can continue the exploration), 4 race detection was on and the
// program has a data race (but no outright violation, which wins).
// Under -stress the same codes describe witnessed findings: 1 a
// schedule violated an assertion, 4 a race was detected, 0 the sweep
// was clean (which bounds nothing beyond the schedules run).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/stress"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("atomig-mc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	corpusName := fs.String("corpus", "", "model-check a named corpus program")
	model := fs.String("model", "wmm", "memory model: sc, tso, or wmm")
	port := fs.Bool("port", false, "apply the full atomig pipeline first")
	level := fs.String("level", "full", "pipeline level when porting: expl, spin, full")
	entries := fs.String("entries", "", "comma-separated thread entry functions (files only)")
	budget := fs.Duration("budget", 10*time.Second, "exploration time budget")
	maxExecs := fs.Int("max-execs", 1_000_000, "maximum explored executions")
	cex := fs.Bool("cex", false, "print a counterexample trace per violation")
	detectRaces := fs.Bool("race", false, "attach the happens-before race detector; races become a verdict")
	stats := fs.Bool("stats", false, "print a human-readable exploration summary")
	resume := fs.String("resume", "", "resume token(s) from a prior budget-exhausted run (comma-separated)")
	workers := fs.Int("j", runtime.GOMAXPROCS(0), "parallel exploration workers (1 = sequential)")
	stressMode := fs.Bool("stress", false, "schedule-fuzzing stress sweep instead of exhaustive exploration (docs/STRESS.md)")
	seeds := fs.Int("seeds", 256, "stress: schedules per scheduler mode")
	sample := fs.Float64("sample", 1, "stress: fraction of plain locations the race detector observes (0,1]")
	baseSeed := fs.Int64("base-seed", 1, "stress: base seed anchoring the schedule grid (replay = same base seed)")
	minimize := fs.Bool("minimize", false, "stress: reduce the first race found to a litmus-sized program and confirm it exhaustively")
	var of obs.CLIFlags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// -stats also reads the registry, so it forces a provider even when
	// no export file was requested.
	prov, err := of.Provider(*stats, stderr)
	if err != nil {
		return fail(stderr, err)
	}

	mod, entryList, err := load(*corpusName, *entries, fs.Args(), *workers, prov)
	if err != nil {
		return fail(stderr, err)
	}

	if *port {
		opts := atomig.DefaultOptions()
		switch *level {
		case "expl":
			opts.Level = atomig.LevelExplicit
		case "spin":
			opts.Level = atomig.LevelSpin
		case "full":
			opts.Level = atomig.LevelFull
		default:
			return fail(stderr, fmt.Errorf("unknown level %q", *level))
		}
		opts.Obs = prov
		rep, err := atomig.Port(mod, opts)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "ported: %d spinloops, %d optimistic loops, +%d implicit, +%d explicit barriers\n",
			rep.Spinloops, rep.Optiloops, rep.ImplicitAdded, rep.ExplicitAdded)
	}

	var mm memmodel.Model
	switch *model {
	case "sc":
		mm = memmodel.ModelSC
	case "tso":
		mm = memmodel.ModelTSO
	case "wmm":
		mm = memmodel.ModelWMM
	default:
		return fail(stderr, fmt.Errorf("unknown model %q", *model))
	}

	if *workers < 1 {
		return fail(stderr, fmt.Errorf("-j %d: need at least one worker", *workers))
	}
	if *stressMode {
		code := runStress(stdout, stderr, mod, mm, entryList,
			*seeds, *sample, *baseSeed, *workers, *minimize, prov)
		if err := of.Close(prov); err != nil {
			return fail(stderr, err)
		}
		return code
	}

	opts := mc.Options{
		Model:         mm,
		Entries:       entryList,
		TimeBudget:    *budget,
		MaxExecutions: *maxExecs,
		Traces:        *cex,
		DetectRaces:   *detectRaces,
		Workers:       *workers,
		Obs:           prov,
	}
	if *resume != "" {
		for _, tok := range strings.Split(*resume, ",") {
			token, err := mc.DecodeResume(strings.TrimSpace(tok))
			if err != nil {
				return fail(stderr, err)
			}
			opts.ResumeAll = append(opts.ResumeAll, token)
		}
	}
	res, err := mc.Check(mod, opts)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "model=%s verdict=%s executions=%d pruned=%d truncated=%d states=%d frontier=%d\n",
		mm, res.Verdict, res.Executions, res.Pruned, res.Truncated, res.States, res.Frontier)
	if res.Reason != "" {
		fmt.Fprintf(stdout, "reason: %s\n", res.Reason)
	}
	if *stats {
		printStats(stdout, res, prov.Snapshot())
	}
	if *cex {
		for _, ce := range res.Counterexamples {
			fmt.Fprint(stdout, ce)
		}
	} else {
		for _, v := range res.Violations {
			fmt.Fprintf(stdout, "violation: %s\n", v)
		}
	}
	if *detectRaces {
		if len(res.Races) == 0 {
			fmt.Fprintln(stdout, "races: none")
		}
		for _, r := range res.Races {
			fmt.Fprint(stdout, r)
		}
		if *cex {
			for _, w := range res.RaceWitnesses {
				fmt.Fprint(stdout, w)
			}
		}
	}
	if err := of.Close(prov); err != nil {
		return fail(stderr, err)
	}
	switch res.Verdict {
	case mc.VerdictFail:
		return 1
	case mc.VerdictUnknown:
		if len(res.ResumeTokens) > 0 {
			encoded := make([]string, len(res.ResumeTokens))
			for i, tok := range res.ResumeTokens {
				encoded[i] = tok.Encode()
			}
			fmt.Fprintf(stdout, "resume=%s\n", strings.Join(encoded, ","))
		} else if res.Resume != nil {
			fmt.Fprintf(stdout, "resume=%s\n", res.Resume.Encode())
		}
		return 3
	case mc.VerdictRace:
		return 4
	}
	return 0
}

// runStress drives the schedule-fuzzing sweep and, on request, the
// race minimizer. The printed findings carry their schedule provenance
// (mode, ordinal, seed) — the whole reproduction recipe.
func runStress(stdout, stderr io.Writer, mod *ir.Module, mm memmodel.Model,
	entries []string, seeds int, sample float64, baseSeed int64,
	workers int, minimize bool, prov *obs.Provider) int {
	res, err := stress.Sweep(mod, stress.Options{
		Model:    mm,
		Entries:  entries,
		Seeds:    seeds,
		BaseSeed: baseSeed,
		Sample:   sample,
		Workers:  workers,
		Obs:      prov,
	})
	if err != nil {
		return fail(stderr, err)
	}
	rate := float64(res.Schedules)
	if s := res.Elapsed.Seconds(); s > 0 {
		rate /= s
	}
	fmt.Fprintf(stdout, "model=%s stress schedules=%d steps=%d rate=%.0f/s step_limited=%d forwarded=%d sampled_out=%d\n",
		mm, res.Schedules, res.Steps, rate, res.StepLimited, res.Forwarded, res.Skipped)
	for _, f := range res.Findings {
		fmt.Fprintf(stdout, "finding: %s\n", f)
	}
	races := res.Races()
	if len(races) == 0 {
		fmt.Fprintln(stdout, "races: none")
	}
	for _, r := range races {
		fmt.Fprint(stdout, r)
	}

	if minimize {
		var target *stress.Finding
		for i := range res.Findings {
			if res.Findings[i].Kind == stress.FindingRace {
				target = &res.Findings[i]
				break
			}
		}
		if target == nil {
			fmt.Fprintln(stdout, "minimize: no race finding to reduce")
		} else {
			mres, err := stress.Minimize(mod, stress.MinimizeOptions{
				Entries: entries,
				Target:  target.Report,
				Workers: workers,
				Obs:     prov,
			})
			if err != nil {
				return fail(stderr, err)
			}
			fmt.Fprintf(stdout, "minimized: %d/%d funcs, %d/%d instrs (%d reductions, %d oracle checks)\n",
				mres.Funcs, mres.OrigFuncs, mres.Instrs, mres.OrigInstrs, mres.Reductions, mres.Checks)
			fmt.Fprintf(stdout, "reproduce: %s\n", mres.Schedule)
			if mres.Confirm != nil {
				fmt.Fprintf(stdout, "confirmed: verdict=%s executions=%d\n",
					mres.Confirm.Verdict, mres.Confirm.Executions)
			}
			fmt.Fprint(stdout, mres.Module.String())
		}
	}

	switch {
	case len(res.Violations()) > 0:
		return 1
	case len(races) > 0:
		return 4
	}
	return 0
}

// printStats renders the exploration summary in prose: what was
// explored, how much the caches saved, and how complete the claim is.
// The numbers come from the metrics-registry snapshot (the same ones
// -metrics exports); only wall-clock, worker count and the frontier —
// which are per-run facts, not metrics — read from the Result.
func printStats(w io.Writer, res *mc.Result, snap obs.Snapshot) {
	c := snap.Counters
	fmt.Fprintf(w, "explored %d executions in %v with %d worker(s)\n",
		c["mc.executions_explored"], res.Elapsed.Round(time.Millisecond), res.Workers)
	fmt.Fprintf(w, "  distinct states:    %d\n", c["mc.states_recorded"])
	fmt.Fprintf(w, "  pruned re-converging executions: %d\n", c["mc.executions_pruned"])
	fmt.Fprintf(w, "  step-truncated executions:       %d\n", c["mc.executions_truncated"])
	fmt.Fprintf(w, "  VM reuse: %d resets / %d fresh allocations\n", c["mc.vms_reset"], c["mc.vms_allocated"])
	fmt.Fprintf(w, "  contended visited-shard locks:   %d\n", c["mc.shard_locks_contended"])
	if res.Frontier > 0 {
		fmt.Fprintf(w, "  unexplored frontier branches:    %d\n", res.Frontier)
	} else {
		fmt.Fprintln(w, "  state space fully explored")
	}
	if len(snap.Histograms) > 0 {
		names := make([]string, 0, len(snap.Histograms))
		for name := range snap.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "  distribution quantiles (approximate, bucket upper bounds):")
		for _, name := range names {
			h := snap.Histograms[name]
			fmt.Fprintf(w, "    %-32s p50=%d p95=%d p99=%d (n=%d)\n", name, h.P50, h.P95, h.P99, h.Count)
		}
	}
}

func load(corpusName, entries string, args []string, jobs int, prov *obs.Provider) (*ir.Module, []string, error) {
	if corpusName != "" {
		p := corpus.Get(corpusName)
		if p == nil {
			return nil, nil, fmt.Errorf("unknown corpus program %q", corpusName)
		}
		if len(p.MCEntries) == 0 {
			return nil, nil, fmt.Errorf("corpus program %q has no model-checking harness", corpusName)
		}
		m, err := p.Compile()
		return m, p.MCEntries, err
	}
	if len(args) != 1 || entries == "" {
		return nil, nil, fmt.Errorf("usage: atomig-mc -corpus name | -entries a,b file.c")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(args[0], ".air") {
		m, err := ir.ParseModule(string(src))
		return m, strings.Split(entries, ","), err
	}
	// The exploration worker count doubles as the frontend fan-out;
	// the compiled module is byte-identical for every -j.
	res, err := minic.CompileOpts(args[0], string(src), minic.Options{Workers: jobs, Obs: prov})
	if err != nil {
		return nil, nil, err
	}
	return res.Module, strings.Split(entries, ","), nil
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "atomig-mc:", err)
	return 2
}
