package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func runMC(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Malformed inputs must produce a structured error on stderr and exit
// code 2 — never a panic.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"bad flag", []string{"-definitely-not-a-flag"}},
		{"unknown corpus", []string{"-corpus", "nope"}},
		{"unknown model", []string{"-corpus", "mp", "-model", "psc"}},
		{"missing file", []string{"-entries", "a", "/nonexistent/x.c"}},
		{"malformed minic", []string{"-entries", "a", writeFile(t, "bad.c", "void f( {")}},
		{"malformed air", []string{"-entries", "a", writeFile(t, "bad.air", "define [")}},
		{"bad resume token", []string{"-corpus", "mp", "-resume", "not-a-token"}},
	}
	for _, tc := range cases {
		code, _, stderr := runMC(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr)
		}
		if tc.args != nil && !strings.Contains(stderr, "atomig-mc:") && !strings.Contains(stderr, "flag") {
			t.Errorf("%s: stderr lacks a structured error: %q", tc.name, stderr)
		}
		if strings.Contains(stderr, "goroutine") {
			t.Errorf("%s: stderr looks like a panic:\n%s", tc.name, stderr)
		}
	}
}

const racySrc = `
int flag;
int msg;
void writer(void) { msg = 1; flag = 1; }
void reader(void) {
  while (flag == 0) { }
  assert(msg == 1);
}
`

// Violation found => exit 1; ported and verified => exit 0.
func TestVerdictExitCodes(t *testing.T) {
	path := writeFile(t, "mp.c", racySrc)
	code, stdout, _ := runMC(t, "-model", "wmm", "-entries", "reader,writer", path)
	if code != 1 {
		t.Fatalf("racy program: exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "verdict=violated") {
		t.Errorf("stdout lacks verdict=violated:\n%s", stdout)
	}
	code, stdout, _ = runMC(t, "-model", "wmm", "-port", "-entries", "reader,writer", path)
	if code != 0 {
		t.Fatalf("ported program: exit %d, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "verdict=verified") {
		t.Errorf("stdout lacks verdict=verified:\n%s", stdout)
	}
}

const explosiveSrc = `
int a;
int b;
int c;
int out;
void t0(void) {
  for (int i = 0; i < 6; i = i + 1) { a = a + 1; out = out + b; }
}
void t1(void) {
  for (int i = 0; i < 6; i = i + 1) { b = b + 1; out = out + c; }
}
void t2(void) {
  for (int i = 0; i < 6; i = i + 1) { c = c + 1; out = out + a; }
}
`

// Budget exhaustion => exit 3, unknown verdict, stats and a resume
// token; feeding the token back continues the exploration.
func TestBudgetExhaustedExitCode(t *testing.T) {
	path := writeFile(t, "explosive.c", explosiveSrc)
	code, stdout, stderr := runMC(t,
		"-model", "wmm", "-entries", "t0,t1,t2", "-max-execs", "50", path)
	if code != 3 {
		t.Fatalf("exit %d, want 3\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{"verdict=unknown", "executions=50", "frontier=", "reason: execution budget exhausted"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
	m := regexp.MustCompile(`(?m)^resume=(\S+)$`).FindStringSubmatch(stdout)
	if m == nil {
		t.Fatalf("no resume token printed:\n%s", stdout)
	}
	code, stdout, stderr = runMC(t,
		"-model", "wmm", "-entries", "t0,t1,t2", "-max-execs", "150", "-resume", m[1], path)
	if code != 3 {
		t.Fatalf("resumed run: exit %d, want 3 (still unknown)\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "executions=150") {
		t.Errorf("resumed run did not continue the counters:\n%s", stdout)
	}
}

// Race mode: the legacy migration-gap program gets the racy verdict and
// exit 4 with the struct field named; the ported version verifies race-
// free with exit 0; -stats prints the human-readable summary.
func TestRaceVerdictExitCode(t *testing.T) {
	code, stdout, _ := runMC(t, "-corpus", "seqlock-gap", "-model", "wmm", "-race", "-stats")
	if code != 4 {
		t.Fatalf("racy program: exit %d, want 4\n%s", code, stdout)
	}
	for _, want := range []string{"verdict=racy", "data race on %gen:0", "distinct states:", "explored"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
	code, stdout, _ = runMC(t, "-corpus", "seqlock-gap", "-model", "wmm", "-race", "-port")
	if code != 0 {
		t.Fatalf("ported program: exit %d, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "races: none") {
		t.Errorf("stdout lacks races: none:\n%s", stdout)
	}
}

// A violation outranks a race on both verdict and exit code.
func TestRaceLosesToViolation(t *testing.T) {
	path := writeFile(t, "mp.c", racySrc)
	code, stdout, _ := runMC(t, "-model", "wmm", "-entries", "reader,writer", "-race", path)
	if code != 1 {
		t.Fatalf("violating racy program: exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "verdict=violated") || !strings.Contains(stdout, "data race on") {
		t.Errorf("expected violated verdict plus race reports:\n%s", stdout)
	}
}
