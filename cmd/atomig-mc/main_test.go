package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
)

func runMC(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Malformed inputs must produce a structured error on stderr and exit
// code 2 — never a panic.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"bad flag", []string{"-definitely-not-a-flag"}},
		{"unknown corpus", []string{"-corpus", "nope"}},
		{"unknown model", []string{"-corpus", "mp", "-model", "psc"}},
		{"missing file", []string{"-entries", "a", "/nonexistent/x.c"}},
		{"malformed minic", []string{"-entries", "a", writeFile(t, "bad.c", "void f( {")}},
		{"malformed air", []string{"-entries", "a", writeFile(t, "bad.air", "define [")}},
		{"bad resume token", []string{"-corpus", "mp", "-resume", "not-a-token"}},
	}
	for _, tc := range cases {
		code, _, stderr := runMC(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr)
		}
		if tc.args != nil && !strings.Contains(stderr, "atomig-mc:") && !strings.Contains(stderr, "flag") {
			t.Errorf("%s: stderr lacks a structured error: %q", tc.name, stderr)
		}
		if strings.Contains(stderr, "goroutine") {
			t.Errorf("%s: stderr looks like a panic:\n%s", tc.name, stderr)
		}
	}
}

const racySrc = `
int flag;
int msg;
void writer(void) { msg = 1; flag = 1; }
void reader(void) {
  while (flag == 0) { }
  assert(msg == 1);
}
`

// Violation found => exit 1; ported and verified => exit 0.
func TestVerdictExitCodes(t *testing.T) {
	path := writeFile(t, "mp.c", racySrc)
	code, stdout, _ := runMC(t, "-model", "wmm", "-entries", "reader,writer", path)
	if code != 1 {
		t.Fatalf("racy program: exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "verdict=violated") {
		t.Errorf("stdout lacks verdict=violated:\n%s", stdout)
	}
	code, stdout, _ = runMC(t, "-model", "wmm", "-port", "-entries", "reader,writer", path)
	if code != 0 {
		t.Fatalf("ported program: exit %d, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "verdict=verified") {
		t.Errorf("stdout lacks verdict=verified:\n%s", stdout)
	}
}

const explosiveSrc = `
int a;
int b;
int c;
int out;
void t0(void) {
  for (int i = 0; i < 6; i = i + 1) { a = a + 1; out = out + b; }
}
void t1(void) {
  for (int i = 0; i < 6; i = i + 1) { b = b + 1; out = out + c; }
}
void t2(void) {
  for (int i = 0; i < 6; i = i + 1) { c = c + 1; out = out + a; }
}
`

// Budget exhaustion => exit 3, unknown verdict, stats and a resume
// token; feeding the token back continues the exploration.
func TestBudgetExhaustedExitCode(t *testing.T) {
	path := writeFile(t, "explosive.c", explosiveSrc)
	code, stdout, stderr := runMC(t,
		"-model", "wmm", "-entries", "t0,t1,t2", "-max-execs", "50", path)
	if code != 3 {
		t.Fatalf("exit %d, want 3\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{"verdict=unknown", "executions=50", "frontier=", "reason: execution budget exhausted"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
	m := regexp.MustCompile(`(?m)^resume=(\S+)$`).FindStringSubmatch(stdout)
	if m == nil {
		t.Fatalf("no resume token printed:\n%s", stdout)
	}
	code, stdout, stderr = runMC(t,
		"-model", "wmm", "-entries", "t0,t1,t2", "-max-execs", "150", "-resume", m[1], path)
	if code != 3 {
		t.Fatalf("resumed run: exit %d, want 3 (still unknown)\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "executions=150") {
		t.Errorf("resumed run did not continue the counters:\n%s", stdout)
	}
}

// Race mode: the legacy migration-gap program gets the racy verdict and
// exit 4 with the struct field named; the ported version verifies race-
// free with exit 0; -stats prints the human-readable summary.
func TestRaceVerdictExitCode(t *testing.T) {
	code, stdout, _ := runMC(t, "-corpus", "seqlock-gap", "-model", "wmm", "-race", "-stats")
	if code != 4 {
		t.Fatalf("racy program: exit %d, want 4\n%s", code, stdout)
	}
	for _, want := range []string{"verdict=racy", "data race on %gen:0", "distinct states:", "explored"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
	code, stdout, _ = runMC(t, "-corpus", "seqlock-gap", "-model", "wmm", "-race", "-port")
	if code != 0 {
		t.Fatalf("ported program: exit %d, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "races: none") {
		t.Errorf("stdout lacks races: none:\n%s", stdout)
	}
}

// End-to-end observability: a ported -j 8 run on seqlock-gap exits 0
// and exports a valid metrics snapshot carrying both the pipeline
// tallies and the checker counters, plus a Chrome trace with at least
// eight distinct worker timelines carrying fragment spans.
func TestObservabilityExports(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	tracePath := filepath.Join(dir, "trace.json")
	code, stdout, stderr := runMC(t,
		"-corpus", "seqlock-gap", "-model", "wmm", "-port", "-j", "8",
		"-metrics", metricsPath, "-trace", tracePath)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	mdata, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateMetrics(mdata); err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mdata, &snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"pipeline.ports_completed",
		"pipeline.spinloops_found",
		"pipeline.buddies_explored",
		"pipeline.accesses_transformed",
		"mc.executions_explored",
		"mc.states_recorded",
		"mc.fragments_claimed",
		"mc.vms_allocated",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("metrics counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	// seqlock-gap has no optimistic loops, so this tally is legitimately
	// zero — but the pipeline must still register it.
	if _, ok := snap.Counters["pipeline.opt_controls_marked"]; !ok {
		t.Error("metrics snapshot lacks pipeline.opt_controls_marked")
	}

	tdata, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(tdata); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(tdata, &tf); err != nil {
		t.Fatal(err)
	}
	workerTracks := make(map[string]bool)
	spans := make(map[string]int)
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if name, _ := ev.Args["name"].(string); strings.HasPrefix(name, "mc.worker-") {
				workerTracks[name] = true
			}
		}
		if ev.Ph == "B" {
			spans[ev.Name]++
		}
	}
	if len(workerTracks) < 8 {
		t.Errorf("trace has %d worker timelines, want >= 8: %v", len(workerTracks), workerTracks)
	}
	for _, name := range []string{"mc.worker", "mc.fragment", "pipeline.port"} {
		if spans[name] == 0 {
			t.Errorf("trace has no %s spans (got %v)", name, spans)
		}
	}
}

// -stats keeps its exact text format: downstream scripts scrape it, so
// the registry migration must not move a byte.
func TestStatsFormat(t *testing.T) {
	snap := obs.Snapshot{Counters: map[string]int64{
		"mc.executions_explored":   150,
		"mc.states_recorded":       42,
		"mc.executions_pruned":     7,
		"mc.executions_truncated":  3,
		"mc.vms_reset":             120,
		"mc.vms_allocated":         30,
		"mc.shard_locks_contended": 5,
	}}
	res := &mc.Result{Elapsed: 1234 * time.Millisecond, Workers: 4}
	var b bytes.Buffer
	printStats(&b, res, snap)
	want := `explored 150 executions in 1.234s with 4 worker(s)
  distinct states:    42
  pruned re-converging executions: 7
  step-truncated executions:       3
  VM reuse: 120 resets / 30 fresh allocations
  contended visited-shard locks:   5
  state space fully explored
`
	if b.String() != want {
		t.Errorf("stats format drifted:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
	res.Frontier = 9
	b.Reset()
	printStats(&b, res, snap)
	if !strings.Contains(b.String(), "  unexplored frontier branches:    9\n") {
		t.Errorf("frontier line drifted:\n%s", b.String())
	}

	// With histograms in the snapshot, the quantile section appears,
	// sorted by name, rendering the v2 p50/p95/p99 fields.
	snap.Histograms = map[string]obs.HistogramSnapshot{
		"mc.fragment_executions": {Count: 100, Sum: 500, P50: 3, P95: 15, P99: 127},
		"mc.execution_steps":     {Count: 7, Sum: 70, P50: 7, P95: 15, P99: 15},
	}
	b.Reset()
	printStats(&b, res, snap)
	wantQ := `  distribution quantiles (approximate, bucket upper bounds):
    mc.execution_steps               p50=7 p95=15 p99=15 (n=7)
    mc.fragment_executions           p50=3 p95=15 p99=127 (n=100)
`
	if !strings.Contains(b.String(), wantQ) {
		t.Errorf("quantile section drifted:\ngot:\n%s\nwant substring:\n%s", b.String(), wantQ)
	}
}

// A violation outranks a race on both verdict and exit code.
func TestRaceLosesToViolation(t *testing.T) {
	path := writeFile(t, "mp.c", racySrc)
	code, stdout, _ := runMC(t, "-model", "wmm", "-entries", "reader,writer", "-race", path)
	if code != 1 {
		t.Fatalf("violating racy program: exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "verdict=violated") || !strings.Contains(stdout, "data race on") {
		t.Errorf("expected violated verdict plus race reports:\n%s", stdout)
	}
}
