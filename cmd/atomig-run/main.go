// Command atomig-run executes a corpus program (or MiniC/.air file) on
// the VM under a chosen memory model — the quickest way to watch a
// program behave, misbehave, or cost cycles.
//
// Usage:
//
//	atomig-run -corpus memcached                  # perf harness, SC
//	atomig-run -corpus mp -model wmm -seed 13     # hunt a weak behavior
//	atomig-run -corpus mp -model wmm -sched starve -watchdog
//	atomig-run -corpus memcached -port -profile   # port, then profile
//	atomig-run -corpus mp -model wmm -stress -seeds 500 -j 8
//	atomig-run -entries main_thread file.c
//
// Exit codes: 0 the execution completed, 1 the execution failed (assert
// failure, deadlock, or step-budget exhaustion), 2 usage or internal
// error, 3 the execution completed but -race reported data races (an
// execution failure wins when both apply).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/race"
	"repro/internal/stress"
	"repro/internal/vm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("atomig-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	corpusName := fs.String("corpus", "", "run a named corpus program")
	model := fs.String("model", "sc", "memory model: sc, tso, or wmm")
	entries := fs.String("entries", "", "comma-separated thread entry functions")
	seed := fs.Int64("seed", 1, "scheduler seed")
	sched := fs.String("sched", "random", "scheduler mode: random, starve, delay, reorder, burst")
	watchdog := fs.Bool("watchdog", false, "diagnose livelocks when the step budget is exhausted")
	maxSteps := fs.Int64("max-steps", 0, "instruction budget (0 = default)")
	port := fs.Bool("port", false, "apply the atomig pipeline before running")
	o2 := fs.Bool("O2", false, "optimize (with -port: after porting)")
	profile := fs.Bool("profile", false, "print the per-function cycle profile")
	detectRaces := fs.Bool("race", false, "attach the happens-before race detector and report data races")
	mcHarness := fs.Bool("mc", false, "use the corpus program's model-checking harness instead of the perf harness")
	sweep := fs.Bool("sweep", false, "race-sweep every scheduler mode instead of one seeded run (implies -race)")
	stressMode := fs.Bool("stress", false, "stress-sweep the schedule grid on the plain-execution fast path (docs/STRESS.md; implies -race)")
	sweepSeeds := fs.Int("seeds", 0, "seeds per scheduler mode (0 = 4 under -sweep, 256 under -stress)")
	sample := fs.Float64("sample", 1, "fraction of plain locations the detector observes under -stress (0,1]")
	workers := fs.Int("j", runtime.GOMAXPROCS(0), "parallel workers for -sweep")
	var of obs.CLIFlags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	prov, err := of.Provider(false, stderr)
	if err != nil {
		return fail(stderr, err)
	}
	defer func() {
		if err := of.Close(prov); err != nil {
			fmt.Fprintln(stderr, "atomig-run:", err)
		}
	}()

	sp := prov.Track("pipeline").Begin("pipeline.parse")
	mod, entryList, maxDefault, err := load(*corpusName, *entries, *mcHarness, fs.Args(), *workers, prov)
	sp.End()
	if err != nil {
		return fail(stderr, err)
	}
	if *maxSteps == 0 {
		*maxSteps = maxDefault
	}
	mode, err := vm.ParseSchedMode(*sched)
	if err != nil {
		return fail(stderr, err)
	}
	if *port {
		opts := atomig.DefaultOptions()
		opts.Optimize = *o2
		opts.Obs = prov
		rep, err := atomig.Port(mod, opts)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "ported: %d spinloops, %d optimistic, +%d implicit, +%d explicit\n",
			rep.Spinloops, rep.Optiloops, rep.ImplicitAdded, rep.ExplicitAdded)
	} else if *o2 {
		st := opt.Optimize(mod)
		fmt.Fprintf(stdout, "optimized: folded %d, hoisted %d, removed %d\n",
			st.Folded, st.Hoisted, st.DeadRemoved+st.BlocksRemoved)
	}

	var mm memmodel.Model
	switch *model {
	case "sc":
		mm = memmodel.ModelSC
	case "tso":
		mm = memmodel.ModelTSO
	case "wmm":
		mm = memmodel.ModelWMM
	default:
		return fail(stderr, fmt.Errorf("unknown model %q", *model))
	}

	if *stressMode {
		return runStress(stdout, stderr, mod, mm, entryList, *sweepSeeds, *sample, *maxSteps, *workers, prov)
	}
	if *sweep {
		seeds := *sweepSeeds
		if seeds == 0 {
			seeds = 4
		}
		return runSweep(stdout, stderr, mod, mm, entryList, seeds, *maxSteps, *workers, prov)
	}

	var det *race.Detector
	if *detectRaces {
		det = race.New(mm, race.Options{Obs: prov})
	}
	vopts := vm.Options{
		Model: mm, Entries: entryList,
		Controller: vm.NewScheduler(mode, *seed),
		MaxSteps:   *maxSteps, Profile: *profile, Watchdog: *watchdog,
		Obs: prov,
	}
	if det != nil {
		vopts.Hook = det
	}
	res, err := vm.Run(mod, vopts)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "status=%s sched=%s steps=%d makespan=%d cycles (total %d)\n",
		res.Status, mode, res.Steps, res.MaxCycles, res.TotalCycles)
	if res.FailMsg != "" {
		fmt.Fprintln(stdout, res.FailMsg)
	}
	if len(res.Livelock) > 0 {
		fmt.Fprint(stdout, vm.FormatLivelock(res.Livelock))
	}
	c := res.Counters
	fmt.Fprintf(stdout, "loads=%d/%d stores=%d/%d rmw=%d fences=%d (non-atomic/atomic)\n",
		c.NonAtomicLoads, c.AtomicLoads, c.NonAtomicStores, c.AtomicStores, c.RMWs, c.Fences)
	if len(res.Output) > 0 {
		fmt.Fprintf(stdout, "output: %v\n", res.Output)
	}
	if *profile {
		type fc struct {
			name   string
			cycles int64
		}
		var fns []fc
		for name, cycles := range res.FuncCycles {
			fns = append(fns, fc{name, cycles})
		}
		sort.Slice(fns, func(i, j int) bool { return fns[i].cycles > fns[j].cycles })
		fmt.Fprintln(stdout, "hottest functions:")
		for i, f := range fns {
			if i == 10 {
				break
			}
			fmt.Fprintf(stdout, "  %-24s %12d cycles (%4.1f%%)\n",
				f.name, f.cycles, 100*float64(f.cycles)/float64(res.TotalCycles))
		}
	}
	if det != nil {
		if det.Races() == 0 {
			fmt.Fprintln(stdout, "races: none")
		} else {
			fmt.Fprintf(stdout, "races: %d distinct\n", det.Races())
			fmt.Fprint(stdout, race.FormatReports(det.Reports()))
		}
	}
	if res.Status != vm.StatusDone {
		return 1
	}
	if det != nil && det.Races() > 0 {
		return 3
	}
	return 0
}

// runSweep fans a full race sweep (every scheduler mode x seeds) out
// across the -j workers; results are worker-count-invariant, so -j only
// changes the wall-clock time.
func runSweep(stdout, stderr io.Writer, mod *ir.Module, mm memmodel.Model, entryList []string, seeds int, maxSteps int64, workers int, prov *obs.Provider) int {
	res, err := race.Sweep(mod, race.SweepOptions{
		Model:    mm,
		Entries:  entryList,
		Seeds:    seeds,
		MaxSteps: maxSteps,
		Workers:  workers,
		Obs:      prov,
	})
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "race sweep: %d executions across %d scheduler modes (%d workers)\n",
		res.Executions, len(vm.AllSchedModes()), workers)
	for _, v := range res.Violations {
		fmt.Fprintf(stdout, "violation: %s\n", v)
	}
	if n := res.Detector.Races(); n == 0 {
		fmt.Fprintln(stdout, "races: none")
	} else {
		fmt.Fprintf(stdout, "races: %d distinct\n", n)
		fmt.Fprint(stdout, race.FormatReports(res.Races()))
	}
	if len(res.Violations) > 0 {
		return 1
	}
	if res.Detector.Races() > 0 {
		return 3
	}
	return 0
}

// runStress drives the schedule-fuzzing engine: the plain-execution
// fast path with pooled VMs, every scheduler mode x -seeds schedules,
// the detector sampling -sample of the plain locations. Findings print
// with their schedule provenance — replay any of them with
// `-sched <mode> -seed <seed> -race`.
func runStress(stdout, stderr io.Writer, mod *ir.Module, mm memmodel.Model, entryList []string, seeds int, sample float64, maxSteps int64, workers int, prov *obs.Provider) int {
	res, err := stress.Sweep(mod, stress.Options{
		Model:    mm,
		Entries:  entryList,
		Seeds:    seeds,
		Sample:   sample,
		MaxSteps: maxSteps,
		Workers:  workers,
		Obs:      prov,
	})
	if err != nil {
		return fail(stderr, err)
	}
	rate := float64(res.Schedules)
	if s := res.Elapsed.Seconds(); s > 0 {
		rate /= s
	}
	fmt.Fprintf(stdout, "stress sweep: %d schedules across %d scheduler modes (%d workers, %.0f/s, %d steps)\n",
		res.Schedules, len(vm.AllSchedModes()), workers, rate, res.Steps)
	if res.Skipped > 0 {
		fmt.Fprintf(stdout, "sampling: %d accesses forwarded, %d sampled out\n", res.Forwarded, res.Skipped)
	}
	for _, f := range res.Findings {
		fmt.Fprintf(stdout, "finding: %s\n", f)
	}
	if n := res.Detector.Races(); n == 0 {
		fmt.Fprintln(stdout, "races: none")
	} else {
		fmt.Fprintf(stdout, "races: %d distinct\n", n)
		fmt.Fprint(stdout, race.FormatReports(res.Races()))
	}
	if len(res.Violations()) > 0 {
		return 1
	}
	if res.Detector.Races() > 0 {
		return 3
	}
	return 0
}

func load(corpusName, entries string, mcHarness bool, args []string, jobs int, prov *obs.Provider) (*ir.Module, []string, int64, error) {
	if corpusName != "" {
		p := corpus.Get(corpusName)
		if p == nil {
			return nil, nil, 0, fmt.Errorf("unknown corpus program %q", corpusName)
		}
		m, err := p.Compile()
		if err != nil {
			return nil, nil, 0, err
		}
		list := p.PerfEntries
		if mcHarness || len(list) == 0 {
			list = p.MCEntries
		}
		if entries != "" {
			list = strings.Split(entries, ",")
		}
		if len(list) == 0 {
			return nil, nil, 0, fmt.Errorf("program %q has no harness; pass -entries", corpusName)
		}
		return m, list, p.PerfSteps, nil
	}
	if len(args) != 1 || entries == "" {
		return nil, nil, 0, fmt.Errorf("usage: atomig-run -corpus name | -entries a,b file.c")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, nil, 0, err
	}
	if strings.HasSuffix(args[0], ".air") {
		m, err := ir.ParseModule(string(src))
		return m, strings.Split(entries, ","), 0, err
	}
	// -j reaches the frontend too; the module is byte-identical for
	// every worker count.
	res, err := minic.CompileOpts(args[0], string(src), minic.Options{Workers: jobs, Obs: prov})
	if err != nil {
		return nil, nil, 0, err
	}
	return res.Module, strings.Split(entries, ","), 0, nil
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "atomig-run:", err)
	return 2
}
