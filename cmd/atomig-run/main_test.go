package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Malformed inputs must produce a structured error on stderr and exit
// code 2 — never a panic.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"bad flag", []string{"-definitely-not-a-flag"}},
		{"unknown corpus", []string{"-corpus", "nope"}},
		{"unknown model", []string{"-corpus", "mp", "-model", "psc"}},
		{"unknown sched", []string{"-corpus", "mp", "-sched", "chaotic"}},
		{"missing file", []string{"-entries", "a", "/nonexistent/x.c"}},
		{"malformed minic", []string{"-entries", "a", writeFile(t, "bad.c", "void f( {")}},
		{"malformed air", []string{"-entries", "a", writeFile(t, "bad.air", "define [")}},
	}
	for _, tc := range cases {
		code, _, stderr := runCLI(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr)
		}
		if strings.Contains(stderr, "goroutine") {
			t.Errorf("%s: stderr looks like a panic:\n%s", tc.name, stderr)
		}
	}
}

const mpSrc = `
int flag;
int msg;
int out;
void writer(void) { msg = 41; flag = 1; }
void reader(void) {
  while (flag == 0) { }
  out = msg;
}
`

// Every scheduler mode drives a completing execution and exits 0.
func TestSchedulerModes(t *testing.T) {
	path := writeFile(t, "mp.c", mpSrc)
	for _, mode := range []string{"random", "starve", "delay", "reorder", "burst"} {
		code, stdout, stderr := runCLI(t,
			"-entries", "reader,writer", "-sched", mode, "-max-steps", "2000000", path)
		if code != 0 {
			t.Errorf("sched %s: exit %d\nstdout:\n%s\nstderr:\n%s", mode, code, stdout, stderr)
			continue
		}
		if !strings.Contains(stdout, "status=done") || !strings.Contains(stdout, "sched="+mode) {
			t.Errorf("sched %s: unexpected output:\n%s", mode, stdout)
		}
	}
}

// A livelocked run exits 1, and -watchdog prints the diagnosis.
func TestWatchdogReportAndExitCode(t *testing.T) {
	path := writeFile(t, "spin.c", `
int flag;
void spin(void) {
  while (flag == 0) { }
}
`)
	code, stdout, stderr := runCLI(t,
		"-entries", "spin", "-max-steps", "10000", "-watchdog", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{"status=step-limit", "livelock watchdog", "@spin"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
}

// An assertion failure exits 1 with the failure message.
func TestAssertFailureExitCode(t *testing.T) {
	path := writeFile(t, "fail.c", `
void boom(void) { assert(0); }
`)
	code, stdout, _ := runCLI(t, "-entries", "boom", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "status=assert-failed") {
		t.Errorf("stdout lacks status=assert-failed:\n%s", stdout)
	}
}

// -race attaches the detector: a racy execution exits 3 with reports,
// a ported one exits 0 with "races: none".
func TestRaceFlagExitCode(t *testing.T) {
	code, stdout, _ := runCLI(t, "-corpus", "seqlock-gap", "-model", "wmm", "-sched", "reorder", "-race")
	if code != 3 {
		t.Fatalf("racy program: exit %d, want 3\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "data race on %gen:0") {
		t.Errorf("stdout lacks the %%gen:0 report:\n%s", stdout)
	}
	code, stdout, _ = runCLI(t, "-corpus", "seqlock-gap", "-model", "wmm", "-sched", "reorder", "-race", "-port")
	if code != 0 {
		t.Fatalf("ported program: exit %d, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "races: none") {
		t.Errorf("stdout lacks races: none:\n%s", stdout)
	}
}
