package main

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// portingTimeRE matches the only non-deterministic report line; golden
// comparison replaces the measured duration with a fixed token.
var portingTimeRE = regexp.MustCompile(`(porting time: +)\S+`)

func normalizeReport(s string) string {
	return portingTimeRE.ReplaceAllString(s, "${1}<elapsed>")
}

// TestGoldenOutput pins the CLI's user-facing text — the pipeline
// report (including the opt-control, buddy-exploration and alias-merge
// counters) and the -explain-races diagnosis — against golden files.
// The report must also be stable across -j, so the mp report is
// rendered at both 1 and 4 workers against one golden. Regenerate with
// `go test ./cmd/atomig -run TestGoldenOutput -update`.
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"report_mp.golden", []string{"-corpus", "mp"}},
		{"report_mp.golden", []string{"-corpus", "mp", "-j", "4"}},
		{"report_seqlock.golden", []string{"-corpus", "seqlock"}},
		{"report_ticket_spin.golden", []string{"-corpus", "ck_spinlock_ticket", "-level", "spin"}},
		{"explain_races_seqlock_gap.golden", []string{"-explain-races", "-corpus", "seqlock-gap"}},
		{"explain_races_mp.golden", []string{"-explain-races", "-corpus", "mp"}},
		// The -O weakening report must be byte-stable too, at every
		// worker count — the determinism contract of docs/WEAKENING.md
		// extends to the report, so one golden serves -j 1 and -j 4.
		{"weaken_seqlock_gap.golden", []string{"-O", "-corpus", "seqlock-gap"}},
		{"weaken_seqlock_gap.golden", []string{"-O", "-corpus", "seqlock-gap", "-j", "4"}},
		{"explain_races_weaken_seqlock_gap.golden", []string{"-explain-races", "-O", "-corpus", "seqlock-gap"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.golden, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != 0 {
				t.Fatalf("exit %d\nstderr: %s", code, stderr)
			}
			got := normalizeReport(stdout)
			path := filepath.Join("testdata", tc.golden)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
