// Command atomig is the porting tool: it compiles a MiniC source file
// (or a named corpus program) and applies the AtoMig pipeline, printing
// the porting report and, on request, the transformed IR.
//
// Usage:
//
//	atomig [flags] file.c
//	atomig [flags] -corpus ck_sequence
//
// Flags:
//
//	-level expl|spin|full   pipeline level (default full)
//	-naive                  apply the naïve all-SC strategy instead
//	-lasagne                apply the Lasagne-style explicit-fence strategy
//	-emit                   print the transformed module IR
//	-emit-orig              print the original module IR
//	-no-inline              disable the pre-analysis inliner
//	-j N                    pipeline worker count; the ported output is
//	                        byte-identical for every N (docs/PIPELINE.md)
//	-O                      after porting, run the checker-in-the-loop
//	                        weakening optimizer (docs/WEAKENING.md):
//	                        greedily relax orderings and delete fences,
//	                        keeping only what the model checker re-verifies;
//	                        needs a verification harness (-corpus or -entries)
//	-arch armv8|power|...   cost-model architecture for the -O report
//	-O-races=false          with -O: drop the race detector from the
//	                        verification loop (verdict-only acceptance,
//	                        for programs whose fingerprinted state space
//	                        is intractable)
//	-O-execs N              with -O: per-candidate execution budget
//	-explain-races          run the race detector on the UN-ported input
//	                        and map each race back to the global or
//	                        struct field the port should promote; with
//	                        -O, additionally notes which reported sites
//	                        the optimizer later weakened
//	-entries a,b            thread entry functions for -explain-races and
//	                        -O on file inputs (corpus programs use their
//	                        model-checking harness)
//	-serve                  run the incremental porting daemon on
//	                        stdin/stdout (docs/SERVE.md); -socket adds
//	                        a Unix socket listener, -queue bounds
//	                        admission, -deadline/-grace bound requests,
//	                        -http serves live telemetry (/metrics,
//	                        /healthz, net/http/pprof), -crash names the
//	                        flight-recorder dump file
//	-metrics/-trace/-log/-pprof
//	                        observability exports and live telemetry
//	                        (docs/OBSERVABILITY.md)
//
// Exit codes: 0 success, 2 usage or internal error (malformed input,
// port failure, -serve startup failure). Exit code 1 is reserved for
// tools that report analysis verdicts (atomig-run, atomig-mc);
// -explain-races is diagnostic output, not a verdict, and exits 0
// whether or not races were found.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/race"
	"repro/internal/serve"
	"repro/internal/transform"
	"repro/internal/weaken"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("atomig", flag.ContinueOnError)
	fs.SetOutput(stderr)
	level := fs.String("level", "full", "pipeline level: expl, spin, or full")
	naive := fs.Bool("naive", false, "apply the naïve all-SC strategy")
	lasagne := fs.Bool("lasagne", false, "apply the Lasagne-style strategy")
	emit := fs.Bool("emit", false, "print the transformed module IR")
	emitOrig := fs.Bool("emit-orig", false, "print the original module IR")
	noInline := fs.Bool("no-inline", false, "disable the pre-analysis inliner")
	corpusName := fs.String("corpus", "", "port a named corpus program instead of a file")
	list := fs.Bool("list", false, "list corpus programs and exit")
	out := fs.String("o", "", "write the transformed module to a .air file")
	o2 := fs.Bool("O2", false, "run the post-transformation optimizer (Figure 2)")
	oWeaken := fs.Bool("O", false, "after porting, weaken orderings the model checker proves unnecessary (docs/WEAKENING.md)")
	arch := fs.String("arch", weaken.DefaultArch, "cost-model architecture for -O: "+strings.Join(weaken.ArchNames(), ", "))
	oRaces := fs.Bool("O-races", true, "with -O: keep the race detector in the verification loop")
	oExecs := fs.Int("O-execs", 0, "with -O: per-candidate execution budget (0 = default)")
	oOracle := fs.String("O-oracle", "exhaustive", "with -O: verification oracle — exhaustive, screened (stress-screen candidates, exhaustively confirm survivors), or stress (docs/STRESS.md)")
	oStressSeeds := fs.Int("O-stress-seeds", 0, "with -O: stress-oracle screening schedules per scheduler mode (0 = default)")
	oSample := fs.Float64("O-sample", 0, "with -O: stress-oracle location-sampling fraction (0 = observe everything)")
	explainRaces := fs.Bool("explain-races", false, "detect races in the un-ported input and explain what to promote")
	entries := fs.String("entries", "", "comma-separated thread entries for -explain-races and -O on file inputs")
	jobs := fs.Int("j", 1, "pipeline worker count (output is byte-identical for every value)")
	var of obs.CLIFlags
	of.Register(fs)
	serveMode := fs.Bool("serve", false, "run the incremental porting daemon on stdin/stdout (docs/SERVE.md)")
	socket := fs.String("socket", "", "with -serve: also listen on this Unix socket path")
	queue := fs.Int("queue", 8, "with -serve: admission queue depth (requests beyond it are shed)")
	deadline := fs.Duration("deadline", 30*time.Second, "with -serve: per-request deadline")
	grace := fs.Duration("grace", 2*time.Second, "with -serve: watchdog grace past the deadline")
	httpAddr := fs.String("http", "", "with -serve: serve live telemetry (/metrics, /healthz, net/http/pprof) on this address")
	crashPath := fs.String("crash", "", "with -serve: write flight-recorder dumps to this file on watchdog, panic, or overload")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *serveMode {
		return runServe(stdin, stdout, stderr, fs.Args(), serveConfig{
			socket: *socket, queue: *queue, deadline: *deadline, grace: *grace,
			jobs: *jobs, httpAddr: *httpAddr, crashPath: *crashPath, flags: &of,
		})
	}

	if *list {
		for _, p := range corpus.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", p.Name, p.Desc)
		}
		return 0
	}

	prov, err := of.Provider(false, stderr)
	if err != nil {
		return fail(stderr, err)
	}

	sp := prov.Track("pipeline").Begin("pipeline.parse")
	mod, err := loadModule(*corpusName, fs.Args(), *jobs, prov)
	sp.End()
	if err != nil {
		return fail(stderr, err)
	}

	if *explainRaces {
		// With -O the race advice is joined against the optimizer's
		// decisions on a ported clone, so a site the advice names and a
		// site the optimizer weakened can never silently disagree.
		var weakened []weaken.Decision
		if *oWeaken {
			oracle, err := weaken.ParseOracleMode(*oOracle)
			if err != nil {
				return fail(stderr, err)
			}
			weakened, err = portAndWeaken(mod, *corpusName, *entries, weakenConfig{
				jobs: *jobs, arch: *arch, races: *oRaces, execs: *oExecs,
				oracle: oracle, stressSeeds: *oStressSeeds, sample: *oSample, prov: prov,
			})
			if err != nil {
				return fail(stderr, err)
			}
		}
		code := explain(stdout, stderr, mod, *corpusName, *entries, weakened, prov)
		if err := of.Close(prov); err != nil {
			return fail(stderr, err)
		}
		return code
	}
	if *emitOrig {
		fmt.Fprintln(stdout, mod.String())
	}

	switch {
	case *naive:
		n := transform.Naive(mod)
		expl, impl := transform.CountBarriers(mod)
		fmt.Fprintf(stdout, "naive: converted %d accesses to seq_cst (%d explicit, %d implicit barriers present)\n",
			n, expl, impl)
	case *lasagne:
		st := transform.LasagneStyle(mod)
		expl, impl := transform.CountBarriers(mod)
		fmt.Fprintf(stdout, "lasagne: inserted %d fences, elided %d (%d explicit, %d implicit barriers present)\n",
			st.FencesInserted, st.FencesElided, expl, impl)
	default:
		opts := atomig.DefaultOptions()
		opts.Inline = !*noInline
		switch *level {
		case "expl":
			opts.Level = atomig.LevelExplicit
		case "spin":
			opts.Level = atomig.LevelSpin
		case "full":
			opts.Level = atomig.LevelFull
		default:
			return fail(stderr, fmt.Errorf("unknown level %q", *level))
		}
		opts.Optimize = *o2
		opts.Obs = prov
		opts.Workers = *jobs
		rep, err := atomig.Port(mod, opts)
		if err != nil {
			return fail(stderr, err)
		}
		printReport(stdout, rep)
		if *o2 {
			fmt.Fprintf(stdout, "  optimizer: folded %d, hoisted %d, removed %d\n",
				rep.OptFolded, rep.OptHoisted, rep.OptRemoved)
		}
		if *oWeaken {
			entryList, err := weakenEntries(*corpusName, *entries)
			if err != nil {
				return fail(stderr, err)
			}
			oracle, err := weaken.ParseOracleMode(*oOracle)
			if err != nil {
				return fail(stderr, err)
			}
			wopts := weaken.DefaultOptions(entryList)
			wopts.Workers = *jobs
			wopts.Arch = *arch
			wopts.DetectRaces = *oRaces
			wopts.MaxExecs = *oExecs
			wopts.Oracle = oracle
			wopts.StressSeeds = *oStressSeeds
			wopts.StressSample = *oSample
			wopts.Obs = prov
			wres, err := weaken.Optimize(mod, wopts)
			if err != nil {
				return fail(stderr, err)
			}
			printWeakenReport(stdout, wres)
		}
	}
	if *emit {
		fmt.Fprintln(stdout, mod.String())
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(mod.String()), 0o644); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if err := of.Close(prov); err != nil {
		return fail(stderr, err)
	}
	return 0
}

// explain runs the happens-before detector over the un-ported module
// under WMM across every scheduler mode and renders the per-location
// promotion advice. This is the migration feedback loop: run it before
// porting to see what the pipeline must fix, or on a hand-ported tree
// to find the promotions it missed. When -O also ran, the weakening
// decisions are joined in so advice about a location mentions that the
// port's promotion there was later relaxed by the optimizer.
func explain(stdout, stderr io.Writer, mod *ir.Module, corpusName, entries string, weakened []weaken.Decision, prov *obs.Provider) int {
	entryList, err := weakenEntries(corpusName, entries)
	if err != nil {
		return fail(stderr, fmt.Errorf("-explain-races needs thread entries (use -entries a,b or a corpus program with a model-checking harness)"))
	}
	res, err := race.Sweep(mod, race.SweepOptions{
		Model:   memmodel.ModelWMM,
		Entries: entryList,
		Obs:     prov,
	})
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "race sweep: %d executions, %d distinct race(s)\n",
		res.Executions, res.Detector.Races())
	exp := atomig.ExplainRaces(mod, res.Races())
	if len(weakened) > 0 {
		notes := make([]atomig.WeakenedNote, 0, len(weakened))
		for _, d := range weakened {
			notes = append(notes, atomig.WeakenedNote{
				Loc: d.Loc, Site: d.Site, From: d.From, To: d.To,
			})
		}
		exp.AnnotateWeakenings(notes)
	}
	fmt.Fprint(stdout, exp)
	return 0
}

// weakenEntries resolves the verification harness for -O and
// -explain-races: explicit -entries wins, else the corpus program's
// model-checking harness.
func weakenEntries(corpusName, entries string) ([]string, error) {
	if entries != "" {
		return strings.Split(entries, ","), nil
	}
	if corpusName != "" {
		if p := corpus.Get(corpusName); p != nil && len(p.MCEntries) > 0 {
			return p.MCEntries, nil
		}
	}
	return nil, fmt.Errorf("no verification harness: use -entries a,b or a corpus program with a model-checking harness")
}

// weakenConfig carries the -O flag group.
type weakenConfig struct {
	jobs        int
	arch        string
	races       bool
	execs       int
	oracle      weaken.OracleMode
	stressSeeds int
	sample      float64
	prov        *obs.Provider
}

// portAndWeaken ports a clone of mod and weakens it, returning the
// accepted decisions — used by -explain-races -O, which needs the
// optimizer's provenance without giving up the un-ported module the
// race sweep runs on.
func portAndWeaken(mod *ir.Module, corpusName, entries string, cfg weakenConfig) ([]weaken.Decision, error) {
	entryList, err := weakenEntries(corpusName, entries)
	if err != nil {
		return nil, err
	}
	opts := atomig.DefaultOptions()
	opts.Workers = cfg.jobs
	opts.Obs = cfg.prov
	ported, _, err := atomig.PortClone(mod, opts)
	if err != nil {
		return nil, err
	}
	wopts := weaken.DefaultOptions(entryList)
	wopts.Workers = cfg.jobs
	wopts.Arch = cfg.arch
	wopts.DetectRaces = cfg.races
	wopts.MaxExecs = cfg.execs
	wopts.Oracle = cfg.oracle
	wopts.StressSeeds = cfg.stressSeeds
	wopts.StressSample = cfg.sample
	wopts.Obs = cfg.prov
	wres, err := weaken.Optimize(ported, wopts)
	if err != nil {
		return nil, err
	}
	return wres.Decisions, nil
}

// printWeakenReport renders the -O report: what the optimizer changed,
// what it cost before and after, and the per-site provenance. Wall
// times are deliberately absent — the report is byte-stable for a
// given module and options (golden-tested).
func printWeakenReport(w io.Writer, res *weaken.Result) {
	fmt.Fprintf(w, "weakening report for %s (arch %s, baseline %s)\n", res.Module, res.Arch, res.Verdict)
	if res.Reason != "" {
		fmt.Fprintf(w, "  not optimized: %s\n", res.Reason)
		return
	}
	fmt.Fprintf(w, "  candidates tried:          %d (%d accepted, %d rejected)\n",
		res.Tried, res.Accepted, res.Rejected)
	fmt.Fprintf(w, "  rounds to fixpoint:        %d\n", res.Rounds)
	fmt.Fprintf(w, "  fences deleted:            %d\n", res.FencesDeleted)
	fmt.Fprintf(w, "  functions in scope:        %d (%d unreachable, kept at ported strength)\n",
		res.FuncsInScope, res.FuncsSkipped)
	fmt.Fprintf(w, "  checker re-verifications:  %d\n", res.MCChecks)
	if res.Oracle != "" {
		fmt.Fprintf(w, "  oracle:                    %s (%d stress checks, %d schedules)\n",
			res.Oracle, res.StressChecks, res.StressSchedules)
	}
	fmt.Fprintf(w, "  static cost (%s):       %d -> %d cycles (-%.1f%%)\n",
		res.Arch, res.CostBefore, res.CostAfter, res.Reduction())
	for _, d := range res.Decisions {
		fmt.Fprintf(w, "  weakened: %s\n", d)
	}
}

func loadModule(corpusName string, args []string, jobs int, prov *obs.Provider) (*ir.Module, error) {
	if corpusName != "" {
		p := corpus.Get(corpusName)
		if p == nil {
			return nil, fmt.Errorf("unknown corpus program %q (use -list)", corpusName)
		}
		return p.Compile()
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: atomig [flags] file.c|file.air (or -corpus name, or -list)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	// .air files are textual IR; anything else is MiniC source.
	if strings.HasSuffix(args[0], ".air") {
		return ir.ParseModule(string(src))
	}
	// -j reaches the frontend too: chunked parsing and per-function
	// lowering, byte-identical output at every count (docs/PIPELINE.md).
	res, err := minic.CompileOpts(args[0], string(src), minic.Options{Workers: jobs, Obs: prov})
	if err != nil {
		return nil, err
	}
	return res.Module, nil
}

func printReport(w io.Writer, rep *atomig.Report) {
	fmt.Fprintf(w, "atomig report for %s (level %s)\n", rep.Module, rep.Level)
	fmt.Fprintf(w, "  spinloops detected:        %d\n", rep.Spinloops)
	fmt.Fprintf(w, "  optimistic loops detected: %d\n", rep.Optiloops)
	fmt.Fprintf(w, "  call sites inlined:        %d\n", rep.FunctionsInlined)
	fmt.Fprintf(w, "  volatile accesses -> SC:   %d\n", rep.VolatileConverted)
	fmt.Fprintf(w, "  atomics upgraded to SC:    %d\n", rep.AtomicUpgraded)
	fmt.Fprintf(w, "  spin controls marked:      %d\n", rep.SpinControlsMarked)
	fmt.Fprintf(w, "  opt controls marked:       %d\n", rep.OptControlsMarked)
	fmt.Fprintf(w, "  sticky buddies explored:   %d\n", rep.BuddiesExplored)
	fmt.Fprintf(w, "  alias classes merged:      %d\n", rep.AliasMerges)
	fmt.Fprintf(w, "  sticky buddies converted:  %d\n", rep.StickyMarked)
	fmt.Fprintf(w, "  implicit barriers added:   %d (%d -> %d)\n",
		rep.ImplicitAdded, rep.ImplicitBefore, rep.ImplicitAfter)
	fmt.Fprintf(w, "  explicit fences added:     %d (%d -> %d)\n",
		rep.ExplicitAdded, rep.ExplicitBefore, rep.ExplicitAfter)
	fmt.Fprintf(w, "  porting time:              %s\n", rep.Duration)
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "atomig:", err)
	return 2
}

// serveConfig carries the -serve flag group.
type serveConfig struct {
	socket    string
	queue     int
	deadline  time.Duration
	grace     time.Duration
	jobs      int
	httpAddr  string
	crashPath string
	flags     *obs.CLIFlags
}

// runServe runs the incremental porting daemon: the JSON protocol on
// stdin/stdout, plus an optional Unix socket. Startup failures
// (invalid flags, un-bindable socket, stray positional arguments) exit
// 2 before any request is served; a clean drain exits 0.
func runServe(stdin io.Reader, stdout, stderr io.Writer, args []string, cfg serveConfig) int {
	if len(args) != 0 {
		return fail(stderr, fmt.Errorf("-serve takes no positional arguments (got %q); load modules via the protocol", args))
	}
	if cfg.queue <= 0 {
		return fail(stderr, fmt.Errorf("-serve: -queue must be positive, got %d", cfg.queue))
	}
	if cfg.deadline <= 0 || cfg.grace <= 0 {
		return fail(stderr, fmt.Errorf("-serve: -deadline and -grace must be positive"))
	}
	// -http needs a real provider so /metrics serves the daemon's
	// registry (not serve's private fallback).
	prov, err := cfg.flags.Provider(cfg.httpAddr != "", stderr)
	if err != nil {
		return fail(stderr, err)
	}
	srv := serve.New(serve.Options{
		QueueDepth: cfg.queue,
		Deadline:   cfg.deadline,
		Grace:      cfg.grace,
		Workers:    cfg.jobs,
		Obs:        prov,
		CrashPath:  cfg.crashPath,
	})

	if cfg.httpAddr != "" {
		addr, err := srv.ListenHTTP(cfg.httpAddr)
		if err != nil {
			return fail(stderr, fmt.Errorf("-serve: -http: %w", err))
		}
		// Announced on stderr so scripts binding ":0" can parse the port.
		fmt.Fprintf(stderr, "http: listening on %s\n", addr)
	}

	listenErr := make(chan error, 1)
	if cfg.socket != "" {
		l, err := serve.ListenUnix(cfg.socket)
		if err != nil {
			return fail(stderr, fmt.Errorf("-serve: %w", err))
		}
		go func() { listenErr <- srv.ServeListener(l) }()
	}

	// The stdio connection drives the daemon's lifetime: EOF or a
	// shutdown op drains and exits.
	err = srv.ServeConn(stdioConn{stdin, stdout})
	srv.Shutdown()
	srv.Drain()
	if cfg.socket != "" {
		if lerr := <-listenErr; lerr != nil && err == nil {
			err = lerr
		}
		os.Remove(cfg.socket)
	}
	if ferr := cfg.flags.Close(prov); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return fail(stderr, err)
	}
	return 0
}

// stdioConn glues stdin/stdout into the io.ReadWriter ServeConn wants.
type stdioConn struct {
	io.Reader
	io.Writer
}
