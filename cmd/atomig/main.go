// Command atomig is the porting tool: it compiles a MiniC source file
// (or a named corpus program) and applies the AtoMig pipeline, printing
// the porting report and, on request, the transformed IR.
//
// Usage:
//
//	atomig [flags] file.c
//	atomig [flags] -corpus ck_sequence
//
// Flags:
//
//	-level expl|spin|full   pipeline level (default full)
//	-naive                  apply the naïve all-SC strategy instead
//	-lasagne                apply the Lasagne-style explicit-fence strategy
//	-emit                   print the transformed module IR
//	-emit-orig              print the original module IR
//	-no-inline              disable the pre-analysis inliner
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/transform"
)

func main() {
	level := flag.String("level", "full", "pipeline level: expl, spin, or full")
	naive := flag.Bool("naive", false, "apply the naïve all-SC strategy")
	lasagne := flag.Bool("lasagne", false, "apply the Lasagne-style strategy")
	emit := flag.Bool("emit", false, "print the transformed module IR")
	emitOrig := flag.Bool("emit-orig", false, "print the original module IR")
	noInline := flag.Bool("no-inline", false, "disable the pre-analysis inliner")
	corpusName := flag.String("corpus", "", "port a named corpus program instead of a file")
	list := flag.Bool("list", false, "list corpus programs and exit")
	out := flag.String("o", "", "write the transformed module to a .air file")
	o2 := flag.Bool("O2", false, "run the post-transformation optimizer (Figure 2)")
	flag.Parse()

	if *list {
		for _, p := range corpus.All() {
			fmt.Printf("%-18s %s\n", p.Name, p.Desc)
		}
		return
	}

	mod, err := loadModule(*corpusName, flag.Args())
	if err != nil {
		fatal(err)
	}
	if *emitOrig {
		fmt.Println(mod.String())
	}

	switch {
	case *naive:
		n := transform.Naive(mod)
		expl, impl := transform.CountBarriers(mod)
		fmt.Printf("naive: converted %d accesses to seq_cst (%d explicit, %d implicit barriers present)\n",
			n, expl, impl)
	case *lasagne:
		st := transform.LasagneStyle(mod)
		expl, impl := transform.CountBarriers(mod)
		fmt.Printf("lasagne: inserted %d fences, elided %d (%d explicit, %d implicit barriers present)\n",
			st.FencesInserted, st.FencesElided, expl, impl)
	default:
		opts := atomig.DefaultOptions()
		opts.Inline = !*noInline
		switch *level {
		case "expl":
			opts.Level = atomig.LevelExplicit
		case "spin":
			opts.Level = atomig.LevelSpin
		case "full":
			opts.Level = atomig.LevelFull
		default:
			fatal(fmt.Errorf("unknown level %q", *level))
		}
		opts.Optimize = *o2
		rep, err := atomig.Port(mod, opts)
		if err != nil {
			fatal(err)
		}
		printReport(rep)
		if *o2 {
			fmt.Printf("  optimizer: folded %d, hoisted %d, removed %d\n",
				rep.OptFolded, rep.OptHoisted, rep.OptRemoved)
		}
	}
	if *emit {
		fmt.Println(mod.String())
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(mod.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func loadModule(corpusName string, args []string) (*ir.Module, error) {
	if corpusName != "" {
		p := corpus.Get(corpusName)
		if p == nil {
			return nil, fmt.Errorf("unknown corpus program %q (use -list)", corpusName)
		}
		return p.Compile()
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: atomig [flags] file.c|file.air (or -corpus name, or -list)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	// .air files are textual IR; anything else is MiniC source.
	if strings.HasSuffix(args[0], ".air") {
		return ir.ParseModule(string(src))
	}
	res, err := minic.Compile(args[0], string(src))
	if err != nil {
		return nil, err
	}
	return res.Module, nil
}

func printReport(rep *atomig.Report) {
	fmt.Printf("atomig report for %s (level %s)\n", rep.Module, rep.Level)
	fmt.Printf("  spinloops detected:        %d\n", rep.Spinloops)
	fmt.Printf("  optimistic loops detected: %d\n", rep.Optiloops)
	fmt.Printf("  call sites inlined:        %d\n", rep.FunctionsInlined)
	fmt.Printf("  volatile accesses -> SC:   %d\n", rep.VolatileConverted)
	fmt.Printf("  atomics upgraded to SC:    %d\n", rep.AtomicUpgraded)
	fmt.Printf("  spin controls marked:      %d\n", rep.SpinControlsMarked)
	fmt.Printf("  sticky buddies converted:  %d\n", rep.StickyMarked)
	fmt.Printf("  implicit barriers added:   %d (%d -> %d)\n",
		rep.ImplicitAdded, rep.ImplicitBefore, rep.ImplicitAfter)
	fmt.Printf("  explicit fences added:     %d (%d -> %d)\n",
		rep.ExplicitAdded, rep.ExplicitBefore, rep.ExplicitAfter)
	fmt.Printf("  porting time:              %s\n", rep.Duration)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atomig:", err)
	os.Exit(1)
}
