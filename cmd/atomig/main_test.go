package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	return runCLIStdin(t, "", args...)
}

func runCLIStdin(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, strings.NewReader(stdin), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Malformed inputs must produce a structured error on stderr and exit
// code 2 — never a panic.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"bad flag", []string{"-definitely-not-a-flag"}},
		{"unknown corpus", []string{"-corpus", "nope"}},
		{"unknown level", []string{"-level", "max", "-corpus", "mp"}},
		{"missing file", []string{"/nonexistent/x.c"}},
		{"malformed minic", []string{writeFile(t, "bad.c", "int x = = 3;")}},
		{"malformed air", []string{writeFile(t, "bad.air", "define i64@(")}},
	}
	for _, tc := range cases {
		code, _, stderr := runCLI(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr)
		}
		if strings.Contains(stderr, "goroutine") {
			t.Errorf("%s: stderr looks like a panic:\n%s", tc.name, stderr)
		}
	}
}

// Porting a corpus program succeeds with a report; -list exits 0.
func TestPortAndList(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-corpus", "mp")
	if code != 0 {
		t.Fatalf("port: exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "atomig report") {
		t.Errorf("no report printed:\n%s", stdout)
	}
	code, stdout, _ = runCLI(t, "-list")
	if code != 0 || !strings.Contains(stdout, "mp") {
		t.Errorf("-list: exit %d, output:\n%s", code, stdout)
	}
}

// -o writes a transformed module that re-parses through the .air path.
func TestEmitFileRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "mp.air")
	code, _, stderr := runCLI(t, "-corpus", "mp", "-o", out)
	if code != 0 {
		t.Fatalf("port -o: exit %d\nstderr: %s", code, stderr)
	}
	code, stdout, stderr := runCLI(t, out)
	if code != 0 {
		t.Fatalf("re-port .air: exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "atomig report") {
		t.Errorf("no report on .air input:\n%s", stdout)
	}
}

// -explain-races maps detector findings back to promotion advice: the
// migration-gap corpus program yields the %gen:0 gap with the writer's
// stores listed; a file input works through -entries; missing entries
// is a usage error.
func TestExplainRaces(t *testing.T) {
	code, stdout, _ := runCLI(t, "-explain-races", "-corpus", "seqlock-gap")
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, stdout)
	}
	for _, want := range []string{"%gen:0", "migration gap", "promote: @writer"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}

	path := writeFile(t, "mp.c", `
int flag;
int msg;
void writer(void) { msg = 1; flag = 1; }
void reader(void) { while (flag == 0) { } int m = msg; msg = m; }
`)
	code, stdout, _ = runCLI(t, "-explain-races", "-entries", "reader,writer", path)
	if code != 0 {
		t.Fatalf("file input: exit %d, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "@flag") {
		t.Errorf("file input lacks @flag locale:\n%s", stdout)
	}

	code, _, stderr := runCLI(t, "-explain-races", path)
	if code != 2 || !strings.Contains(stderr, "entries") {
		t.Errorf("missing entries: exit %d stderr %q, want usage error", code, stderr)
	}
}

// -serve startup failures must exit 2 with a structured error before
// any request is served — the same contract as malformed port inputs.
func TestServeStartupFailures(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"positional arg", []string{"-serve", "leftover.c"}, "no positional arguments"},
		{"zero queue", []string{"-serve", "-queue", "0"}, "-queue must be positive"},
		{"negative deadline", []string{"-serve", "-deadline", "-1s"}, "must be positive"},
		{"zero grace", []string{"-serve", "-grace", "0s"}, "must be positive"},
		{"unbindable socket", []string{"-serve", "-socket", filepath.Join(t.TempDir(), "no", "such", "dir.sock")}, "serve"},
	}
	for _, tc := range cases {
		code, _, stderr := runCLIStdin(t, "", tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr)
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("%s: stderr %q lacks %q", tc.name, stderr, tc.want)
		}
		if strings.Contains(stderr, "goroutine") {
			t.Errorf("%s: stderr looks like a panic:\n%s", tc.name, stderr)
		}
	}
}

// A -serve session driven to a clean drain — by the shutdown op or by
// stdin EOF — exits 0 with well-formed protocol output. Requests on
// one connection execute concurrently, so this script only pipelines
// load before shutdown (which drains in-flight work before replying);
// order-dependent sequences like load-then-port must wait for each
// response (docs/SERVE.md), which scripts/serve-smoke.sh exercises.
func TestServeCleanDrain(t *testing.T) {
	stdin := `{"id":"a","op":"load","name":"t.c","source":"int x; void f(void) { x = 1; }"}` + "\n" +
		`{"id":"c","op":"shutdown"}` + "\n"
	code, stdout, stderr := runCLIStdin(t, stdin, "-serve")
	if code != 0 {
		t.Fatalf("shutdown drain: exit %d, want 0\nstderr: %s", code, stderr)
	}
	for _, id := range []string{`"id":"a"`, `"id":"c"`} {
		if !strings.Contains(stdout, id) {
			t.Errorf("stdout lacks a response for %s:\n%s", id, stdout)
		}
	}
	if strings.Contains(stdout, `"ok":false`) {
		t.Errorf("unexpected error response:\n%s", stdout)
	}

	code, _, stderr = runCLIStdin(t, `{"id":"only","op":"stats"}`+"\n", "-serve")
	if code != 0 {
		t.Errorf("EOF drain: exit %d, want 0\nstderr: %s", code, stderr)
	}
}
