package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Malformed inputs must produce a structured error on stderr and exit
// code 2 — never a panic.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"bad flag", []string{"-definitely-not-a-flag"}},
		{"unknown corpus", []string{"-corpus", "nope"}},
		{"unknown level", []string{"-level", "max", "-corpus", "mp"}},
		{"missing file", []string{"/nonexistent/x.c"}},
		{"malformed minic", []string{writeFile(t, "bad.c", "int x = = 3;")}},
		{"malformed air", []string{writeFile(t, "bad.air", "define i64@(")}},
	}
	for _, tc := range cases {
		code, _, stderr := runCLI(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr)
		}
		if strings.Contains(stderr, "goroutine") {
			t.Errorf("%s: stderr looks like a panic:\n%s", tc.name, stderr)
		}
	}
}

// Porting a corpus program succeeds with a report; -list exits 0.
func TestPortAndList(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-corpus", "mp")
	if code != 0 {
		t.Fatalf("port: exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "atomig report") {
		t.Errorf("no report printed:\n%s", stdout)
	}
	code, stdout, _ = runCLI(t, "-list")
	if code != 0 || !strings.Contains(stdout, "mp") {
		t.Errorf("-list: exit %d, output:\n%s", code, stdout)
	}
}

// -o writes a transformed module that re-parses through the .air path.
func TestEmitFileRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "mp.air")
	code, _, stderr := runCLI(t, "-corpus", "mp", "-o", out)
	if code != 0 {
		t.Fatalf("port -o: exit %d\nstderr: %s", code, stderr)
	}
	code, stdout, stderr := runCLI(t, out)
	if code != 0 {
		t.Fatalf("re-port .air: exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "atomig report") {
		t.Errorf("no report on .air input:\n%s", stdout)
	}
}
