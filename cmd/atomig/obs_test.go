package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// End-to-end observability for the weakening optimizer: a -O -j 4 run
// on seqlock-gap exports a metrics snapshot carrying the weaken.*
// counters (candidates tried/accepted/rejected, re-verification time)
// and a Chrome trace with the weaken span hierarchy, including the
// per-worker candidate timelines.
func TestWeakenObservabilityExports(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	tracePath := filepath.Join(dir, "trace.json")
	code, stdout, stderr := runCLI(t,
		"-O", "-j", "4", "-corpus", "seqlock-gap",
		"-metrics", metricsPath, "-trace", tracePath)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	mdata, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateMetrics(mdata); err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mdata, &snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"weaken.runs_completed",
		"weaken.candidates_tried",
		"weaken.candidates_accepted",
		"weaken.candidates_rejected",
		"weaken.rounds_run",
		"weaken.sites_weakened",
		"weaken.cost_reduced",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("metrics counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	if snap.Counters["weaken.candidates_tried"] !=
		snap.Counters["weaken.candidates_accepted"]+snap.Counters["weaken.candidates_rejected"] {
		t.Errorf("tried (%d) != accepted (%d) + rejected (%d)",
			snap.Counters["weaken.candidates_tried"],
			snap.Counters["weaken.candidates_accepted"],
			snap.Counters["weaken.candidates_rejected"])
	}
	// The mc re-verification time histogram must have one observation
	// per checker call.
	hist, ok := snap.Histograms["weaken.verify_micros"]
	if !ok || hist.Count <= 0 {
		t.Errorf("metrics snapshot lacks weaken.verify_micros observations (got %+v)", hist)
	}

	tdata, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(tdata); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(tdata, &tf); err != nil {
		t.Fatal(err)
	}
	workerTracks := make(map[string]bool)
	spans := make(map[string]int)
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if name, _ := ev.Args["name"].(string); strings.HasPrefix(name, "weaken.worker-") {
				workerTracks[name] = true
			}
		}
		if ev.Ph == "B" {
			spans[ev.Name]++
		}
	}
	if len(workerTracks) < 2 {
		t.Errorf("trace has %d weaken worker timelines, want >= 2: %v", len(workerTracks), workerTracks)
	}
	for _, name := range []string{
		"weaken.optimize", "weaken.baseline", "weaken.round",
		"weaken.merge", "weaken.candidate", "pipeline.port",
	} {
		if spans[name] == 0 {
			t.Errorf("trace has no %s spans (got %v)", name, spans)
		}
	}
}
