// Package repro is a from-scratch Go reproduction of "AtoMig:
// Automatically Migrating Millions Lines of Code from TSO to WMM"
// (ASPLOS 2023).
//
// The repository contains the complete system: a C-like frontend and
// LLVM-flavoured IR (internal/minic, internal/ir), the AtoMig analyses
// and transformations (internal/analysis, internal/alias,
// internal/transform, internal/atomig), an operational weak-memory
// machine and interpreter standing in for Armv8 hardware
// (internal/memmodel, internal/vm), a bounded exhaustive model checker
// standing in for GenMC (internal/mc), the evaluation corpus and
// synthetic application generator (internal/corpus, internal/appgen),
// and the experiment harness regenerating every table and figure of the
// paper's evaluation (internal/bench).
//
// See README.md for the quickstart, DESIGN.md for the system inventory
// and substitutions, and EXPERIMENTS.md for paper-versus-measured
// results. The benchmarks in bench_test.go regenerate each table:
//
//	go test -bench=. -benchtime=1x .
package repro
