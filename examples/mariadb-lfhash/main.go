// mariadb-lfhash: reproduce the real WMM bug AtoMig found in MariaDB's
// lock-free hash table (the paper's Figure 7, MDEV-27088).
//
// A finder validates a node's state around its key read; a deleter
// invalidates the state with a compare-exchange and then clears the
// key. On Armv8 the cmpxchg is an acquire-load/release-store pair, and
// the release store does not order the *subsequent* key write — so the
// finder can observe the cleared key together with a stale VALID state.
//
//	go run ./examples/mariadb-lfhash
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
)

func main() {
	prog := corpus.Get("lfhash-fig7")
	mod, err := prog.Compile()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== 1. the bug is unobservable on TSO (why it shipped on x86)")
	show(check(mod, prog, memmodel.ModelTSO))

	fmt.Println("\n== 2. the same binary logic fails under WMM")
	show(check(mod, prog, memmodel.ModelWMM))

	fmt.Println("\n== 3. atomig detects the optimistic pattern and fixes it")
	ported, rep, err := atomig.PortClone(mod, atomig.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spinloops=%d optimistic=%d implicit+%d explicit+%d\n",
		rep.Spinloops, rep.Optiloops, rep.ImplicitAdded, rep.ExplicitAdded)

	fmt.Println("\nthe deleter after porting (fence ordering the key clear):")
	for _, b := range ported.Func("deleter").Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCmpXchg, ir.OpFence, ir.OpStore:
				fmt.Printf("  %s\n", in)
			}
		}
	}

	fmt.Println("\n== 4. the ported code verifies under WMM")
	show(check(ported, prog, memmodel.ModelWMM))
}

func check(m *ir.Module, prog *corpus.Program, model memmodel.Model) *mc.Result {
	res, err := mc.Check(m, mc.Options{
		Model: model, Entries: prog.MCEntries,
		TimeBudget: 5 * time.Second, StopAtFirst: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func show(res *mc.Result) {
	fmt.Printf("verdict: %s (%d executions)\n", res.Verdict, res.Executions)
	for _, v := range res.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
}
