// portapp: end-to-end porting of an application-scale code base.
//
// The example generates a synthetic application with the shape of
// Memcached (Table 3 profile), ports it with atomig, reports the
// statistics a release engineer would check, and then measures the
// runtime cost of the port on the Memcached workload kernel against the
// naïve all-SC strategy (Tables 4 and 5).
//
//	go run ./examples/portapp
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/transform"
	"repro/internal/vm"
)

func main() {
	fmt.Println("== 1. generate + build an application with Memcached's shape")
	profile := appgen.ProfileByName("memcached").Scaled(1)
	src := appgen.Generate(profile, 7)
	start := time.Now()
	res, err := minic.Compile("memcached-gen", src)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	fmt.Printf("generated %d SLOC, compiled to %d IR instructions in %s\n",
		res.Stats.SourceLines, res.Stats.Instrs, buildTime.Round(time.Millisecond))

	fmt.Println("\n== 2. port it")
	start = time.Now()
	rep, err := atomig.Port(res.Module, atomig.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	portTime := time.Since(start)
	fmt.Printf("spinloops=%d (profile plants %d), optimistic=%d (plants %d)\n",
		rep.Spinloops, profile.Spinloops, rep.Optiloops, profile.Optiloops)
	fmt.Printf("barriers: explicit %d -> %d, implicit %d -> %d\n",
		rep.ExplicitBefore, rep.ExplicitAfter, rep.ImplicitBefore, rep.ImplicitAfter)
	fmt.Printf("porting took %s (%.1fx of the build)\n",
		portTime.Round(time.Millisecond),
		float64(buildTime+portTime)/float64(buildTime))

	fmt.Println("\n== 3. runtime cost on the Memcached workload kernel")
	prog := corpus.Get("memcached")
	kernel, err := prog.Compile()
	if err != nil {
		log.Fatal(err)
	}
	base := run(kernel, prog)
	fmt.Printf("original: %12d cycles  (%d atomic loads)\n", base.MaxCycles, base.Counters.AtomicLoads)

	naive := ir.MustClone(kernel)
	transform.Naive(naive)
	n := run(naive, prog)
	fmt.Printf("naive:    %12d cycles  (%.2fx, %d atomic loads)\n",
		n.MaxCycles, float64(n.MaxCycles)/float64(base.MaxCycles), n.Counters.AtomicLoads)

	ported, _, err := atomig.PortClone(kernel, atomig.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	a := run(ported, prog)
	fmt.Printf("atomig:   %12d cycles  (%.2fx, %d atomic loads)\n",
		a.MaxCycles, float64(a.MaxCycles)/float64(base.MaxCycles), a.Counters.AtomicLoads)

	fmt.Println("\n== 4. where the ported kernel spends its cycles")
	prof, err := vm.Run(ported, vm.Options{
		Model: memmodel.ModelSC, Entries: prog.PerfEntries,
		Seed: 1, MaxSteps: prog.PerfSteps, Profile: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	type fc struct {
		name   string
		cycles int64
	}
	var fns []fc
	for name, cycles := range prof.FuncCycles {
		fns = append(fns, fc{name, cycles})
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].cycles > fns[j].cycles })
	for i, f := range fns {
		if i == 5 {
			break
		}
		fmt.Printf("  %-16s %10d cycles (%4.1f%%)\n",
			f.name, f.cycles, 100*float64(f.cycles)/float64(prof.TotalCycles))
	}
}

func run(m *ir.Module, prog *corpus.Program) *vm.Result {
	r, err := vm.Run(m, vm.Options{
		Model: memmodel.ModelSC, Entries: prog.PerfEntries,
		Seed: 1, MaxSteps: prog.PerfSteps,
	})
	if err != nil {
		log.Fatal(err)
	}
	if r.Status != vm.StatusDone {
		log.Fatalf("workload ended with %s: %s", r.Status, r.FailMsg)
	}
	return r
}
