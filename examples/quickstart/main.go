// Quickstart: port the message-passing program of the paper's Figure 1
// from TSO to WMM.
//
// The example compiles the classic writer/reader pair, shows that it
// breaks under a weak memory model, applies the atomig pipeline, shows
// the transformed accesses, and demonstrates that the port is correct.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/atomig"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/vm"
)

const src = `
int flag;
int msg;

void writer(void) {
  msg = 1;
  flag = 1;     // publish
}

void reader(void) {
  while (flag == 0) { }   // spin until published
  assert(msg == 1);       // TSO guarantees this; WMM does not
}
`

func main() {
	fmt.Println("== 1. compile the legacy TSO program")
	res, err := minic.Compile("mp", src)
	if err != nil {
		log.Fatal(err)
	}
	mod := res.Module
	fmt.Printf("compiled %d functions, %d instructions\n\n", len(mod.Funcs), mod.NumInstrs())

	fmt.Println("== 2. stress the original under a weak memory model")
	fails := 0
	for seed := int64(0); seed < 300; seed++ {
		r, err := vm.Run(mod, vm.Options{
			Model: memmodel.ModelWMM, Entries: []string{"reader", "writer"},
			Seed: seed, MaxSteps: 100_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if r.Status == vm.StatusAssertFailed {
			fails++
		}
	}
	fmt.Printf("original program: %d/300 random WMM executions violated the assertion\n\n", fails)

	fmt.Println("== 3. port with atomig")
	ported, rep, err := atomig.PortClone(mod, atomig.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d spinloop(s); converted %d access(es) to seq_cst atomics\n",
		rep.Spinloops, rep.ImplicitAdded)
	fmt.Println("\ntransformed accesses to @flag:")
	ported.EachInstr(func(f *ir.Func, in *ir.Instr) {
		if in.IsMemAccess() && in.Ord.Atomic() {
			fmt.Printf("  @%s: %s\n", f.Name, in)
		}
	})

	fmt.Println("\n== 4. verify the port exhaustively under WMM")
	check, err := mc.Check(ported, mc.Options{
		Model: memmodel.ModelWMM, Entries: []string{"reader", "writer"},
		TimeBudget: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model checker verdict: %s (%d executions explored)\n", check.Verdict, check.Executions)

	orig, err := mc.Check(mod, mc.Options{
		Model: memmodel.ModelWMM, Entries: []string{"reader", "writer"},
		TimeBudget: 5 * time.Second, StopAtFirst: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for comparison, the original: %s (%v)\n", orig.Verdict, orig.Violations)
}
