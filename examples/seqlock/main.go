// Seqlock: demonstrate optimistic-loop detection (the paper's Figure 6).
//
// Sequence locks are the pattern where spinloop detection alone is not
// enough: the reader optimistically reads data between two counter
// checks, and those reads need explicit fences. The example shows the
// detection verdicts at each pipeline level, where the fences land, and
// the model-checking outcome per level.
//
//	go run ./examples/seqlock
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
)

func main() {
	prog := corpus.Get("seqlock")
	mod, err := prog.Compile()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== detection: what the analyses see in the reader")
	reader := mod.Func("reader")
	for _, info := range analysis.DetectSpinloops(reader) {
		fmt.Printf("loop in @%s: spinloop=true optimistic=%v\n", info.Fn.Name, info.Optimistic)
		for _, loc := range info.ControlLocs {
			fmt.Printf("  spin control location: %s\n", loc)
		}
		for _, rd := range info.OptimisticReads {
			fmt.Printf("  optimistic read:       %s\n", rd)
		}
	}

	fmt.Println("\n== verification per pipeline level (WMM)")
	for _, lvl := range []atomig.Level{atomig.LevelExplicit, atomig.LevelSpin, atomig.LevelFull} {
		opts := atomig.DefaultOptions()
		opts.Level = lvl
		ported, rep, err := atomig.PortClone(mod, opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mc.Check(ported, mc.Options{
			Model: memmodel.ModelWMM, Entries: prog.MCEntries,
			TimeBudget: 5 * time.Second, StopAtFirst: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("level %-8s fences=%d verdict=%s\n", lvl, rep.ExplicitAdded, res.Verdict)
	}

	fmt.Println("\n== where the full pipeline places the explicit barriers")
	opts := atomig.DefaultOptions()
	ported, _, err := atomig.PortClone(mod, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, fname := range []string{"reader", "writer"} {
		fmt.Printf("@%s:\n", fname)
		f := ported.Func(fname)
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				if in.Op != ir.OpFence || !in.HasMark(ir.MarkInsertedFence) {
					continue
				}
				context := "(block start)"
				if i+1 < len(b.Instrs) {
					context = "before: " + b.Instrs[i+1].String()
				}
				if i > 0 {
					context = "after:  " + b.Instrs[i-1].String()
				}
				fmt.Printf("  %s   %s\n", in, context)
			}
		}
	}
}
