// Package alias implements AtoMig's scalable type-based alias
// exploration (paper section 3.4). Rather than a precise
// inter-procedural points-to analysis — which the paper rejects for
// memory-exhaustion reasons — accesses are keyed by a location
// descriptor: the global symbol for direct global accesses, or the
// (named struct type, constant field-offset path) of the final
// getelementptr for pointer-based accesses. All accesses sharing a
// descriptor are "sticky buddies": once one is made atomic, all are.
package alias

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// LocKind classifies a location descriptor.
type LocKind int

// Location kinds.
const (
	// LocUnknown marks dynamically computed addresses the type-based
	// scheme cannot track (a known source of false negatives the paper
	// compensates for with explicit barriers around optimistic loops).
	LocUnknown LocKind = iota
	// LocGlobal is a direct access to a named global.
	LocGlobal
	// LocField is a typed field access: struct type plus offset path.
	LocField
	// LocLocal is a non-escaping local slot; never shared, never explored.
	LocLocal
)

// Loc is a comparable location descriptor.
type Loc struct {
	Kind LocKind
	// Name is the global name (LocGlobal) or "type:path" (LocField).
	Name string
}

func (l Loc) String() string {
	switch l.Kind {
	case LocGlobal:
		return "@" + l.Name
	case LocField:
		return "%" + l.Name
	case LocLocal:
		return "<local>"
	}
	return "<unknown>"
}

// Shared reports whether the descriptor may denote shared memory worth
// exploring (globals and typed fields).
func (l Loc) Shared() bool { return l.Kind == LocGlobal || l.Kind == LocField }

// LocOf computes the location descriptor of an address value.
func LocOf(addr ir.Value) Loc {
	switch x := addr.(type) {
	case *ir.Global:
		return Loc{Kind: LocGlobal, Name: x.GName}
	case *ir.Instr:
		switch x.Op {
		case ir.OpAlloca:
			return Loc{Kind: LocLocal}
		case ir.OpGEP:
			return locOfGEP(x)
		}
	}
	return Loc{Kind: LocUnknown}
}

func locOfGEP(g *ir.Instr) Loc {
	if st, ok := g.GEPBase.(*ir.StructType); ok {
		if hasFieldStep(g.Path) {
			return Loc{Kind: LocField, Name: st.TypeName + ":" + pathString(g.Path)}
		}
	}
	// Array indexing or a pointer cast: the descriptor is inherited from
	// the base address (arr[i] aliases with every access to @arr; a cast
	// keeps the underlying location). A base descriptor of LocLocal stays
	// local only if the site did not escape, which LocOf's caller checks
	// separately via the locality analysis.
	return LocOf(g.Args[0])
}

func hasFieldStep(path []ir.GEPStep) bool {
	for _, st := range path {
		if st.Field >= 0 {
			return true
		}
	}
	return false
}

func pathString(path []ir.GEPStep) string {
	parts := make([]string, len(path))
	for i, st := range path {
		if st.Field >= 0 {
			parts[i] = fmt.Sprintf("%d", st.Field)
		} else {
			parts[i] = "[]"
		}
	}
	return strings.Join(parts, ".")
}

// Map is the module-wide index from location descriptor to all memory
// accesses of that location. It is built once (paper section 3.5: "we
// only have to populate this map once during initialization") and makes
// buddy lookup a constant-time map access.
type Map struct {
	accesses map[Loc][]*ir.Instr
	locs     map[*ir.Instr]Loc
}

// BuildMap scans the module and indexes every memory access.
func BuildMap(m *ir.Module) *Map {
	am := &Map{
		accesses: make(map[Loc][]*ir.Instr),
		locs:     make(map[*ir.Instr]Loc),
	}
	m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if !in.IsMemAccess() {
			return
		}
		loc := LocOf(in.Addr())
		am.locs[in] = loc
		if loc.Shared() {
			am.accesses[loc] = append(am.accesses[loc], in)
		}
	})
	return am
}

// Loc returns the cached descriptor of a memory access.
func (am *Map) Loc(in *ir.Instr) Loc { return am.locs[in] }

// Buddies returns every access in the module sharing the descriptor.
func (am *Map) Buddies(loc Loc) []*ir.Instr {
	if !loc.Shared() {
		return nil
	}
	return am.accesses[loc]
}

// SharedLocs returns all shared descriptors present in the module.
func (am *Map) SharedLocs() []Loc {
	out := make([]Loc, 0, len(am.accesses))
	for l := range am.accesses {
		out = append(out, l)
	}
	return out
}

// Explore returns all sticky buddies of the seed accesses: every access
// in the module whose descriptor matches the descriptor of any seed.
// Seeds with unknown or local descriptors contribute nothing.
func (am *Map) Explore(seeds []*ir.Instr) []*ir.Instr {
	seen := make(map[Loc]bool)
	var out []*ir.Instr
	for _, s := range seeds {
		loc := am.locs[s]
		if !loc.Shared() || seen[loc] {
			continue
		}
		seen[loc] = true
		out = append(out, am.accesses[loc]...)
	}
	return out
}
