// Package alias implements AtoMig's scalable type-based alias
// exploration (paper section 3.4). Rather than a precise
// inter-procedural points-to analysis — which the paper rejects for
// memory-exhaustion reasons — accesses are keyed by a location
// descriptor: the global symbol for direct global accesses, or the
// (named struct type, constant field-offset path) of the final
// getelementptr for pointer-based accesses. All accesses sharing a
// descriptor are "sticky buddies": once one is made atomic, all are.
package alias

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// LocKind classifies a location descriptor.
type LocKind int

// Location kinds.
const (
	// LocUnknown marks dynamically computed addresses the type-based
	// scheme cannot track (a known source of false negatives the paper
	// compensates for with explicit barriers around optimistic loops).
	LocUnknown LocKind = iota
	// LocGlobal is a direct access to a named global.
	LocGlobal
	// LocField is a typed field access: struct type plus offset path.
	LocField
	// LocLocal is a non-escaping local slot; never shared, never explored.
	LocLocal
)

// Loc is a comparable location descriptor.
type Loc struct {
	Kind LocKind
	// Name is the global name (LocGlobal) or "type:path" (LocField).
	Name string
}

func (l Loc) String() string {
	switch l.Kind {
	case LocGlobal:
		return "@" + l.Name
	case LocField:
		return "%" + l.Name
	case LocLocal:
		return "<local>"
	}
	return "<unknown>"
}

// Shared reports whether the descriptor may denote shared memory worth
// exploring (globals and typed fields).
func (l Loc) Shared() bool { return l.Kind == LocGlobal || l.Kind == LocField }

// LocOf computes the location descriptor of an address value.
func LocOf(addr ir.Value) Loc {
	switch x := addr.(type) {
	case *ir.Global:
		return Loc{Kind: LocGlobal, Name: x.GName}
	case *ir.Instr:
		switch x.Op {
		case ir.OpAlloca:
			return Loc{Kind: LocLocal}
		case ir.OpGEP:
			return locOfGEP(x)
		}
	}
	return Loc{Kind: LocUnknown}
}

func locOfGEP(g *ir.Instr) Loc {
	if st, ok := g.GEPBase.(*ir.StructType); ok {
		if hasFieldStep(g.Path) {
			return Loc{Kind: LocField, Name: st.TypeName + ":" + pathString(g.Path)}
		}
	}
	// Array indexing or a pointer cast: the descriptor is inherited from
	// the base address (arr[i] aliases with every access to @arr; a cast
	// keeps the underlying location). A base descriptor of LocLocal stays
	// local only if the site did not escape, which LocOf's caller checks
	// separately via the locality analysis.
	return LocOf(g.Args[0])
}

func hasFieldStep(path []ir.GEPStep) bool {
	for _, st := range path {
		if st.Field >= 0 {
			return true
		}
	}
	return false
}

func pathString(path []ir.GEPStep) string {
	parts := make([]string, len(path))
	for i, st := range path {
		if st.Field >= 0 {
			parts[i] = fmt.Sprintf("%d", st.Field)
		} else {
			parts[i] = "[]"
		}
	}
	return strings.Join(parts, ".")
}

// Reprs returns the primary descriptor of addr (identical to LocOf)
// plus every additional descriptor that provably names the same cell
// and that other code may be using instead:
//
//   - suffix paths through nested named structs: a single GEP
//     "%outer, field 1, field 0" yields %outer:1.0 while the two-GEP
//     lowering of the same C expression yields %inner:0 — one cell,
//     two names;
//   - composed getelementptr chains: the full constant path from the
//     chain root re-expressed at every named struct type it passes;
//   - trailing array steps stripped: %node:1.[] (an element of the
//     array field) and %node:1 (the field's base cell) overlap.
//
// The sticky-buddy map unions all representations of an address into
// one equivalence class, so exploration reaches an access no matter
// which spelling its getelementptr used (a known false-negative of
// pure final-GEP matching).
func Reprs(addr ir.Value) (Loc, []Loc) {
	primary := LocOf(addr)
	g, ok := addr.(*ir.Instr)
	if !ok || g.Op != ir.OpGEP {
		return primary, nil
	}
	// Collect the GEP chain from the final address back to its root.
	var chain []*ir.Instr
	v := addr
	for {
		in, isInstr := v.(*ir.Instr)
		if !isInstr || in.Op != ir.OpGEP {
			break
		}
		chain = append(chain, in)
		v = in.Args[0]
	}
	// Reverse: chain[0] is closest to the root value.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	seen := map[Loc]bool{primary: true}
	var extras []Loc
	emit := func(l Loc) {
		if !l.Shared() || seen[l] {
			return
		}
		seen[l] = true
		extras = append(extras, l)
	}
	// Walk the composed path starting at every GEP's base type: each
	// named struct encountered with at least one field step remaining
	// is another valid spelling of the final cell.
	for i, gi := range chain {
		rest := suffixPath(chain[i:])
		cur := gi.GEPBase
		for {
			if st, isStruct := cur.(*ir.StructType); isStruct && hasFieldStep(rest) {
				emit(Loc{Kind: LocField, Name: st.TypeName + ":" + pathString(rest)})
				if t := trimTrailingIndexes(rest); len(t) < len(rest) && hasFieldStep(t) {
					emit(Loc{Kind: LocField, Name: st.TypeName + ":" + pathString(t)})
				}
			}
			if len(rest) == 0 {
				break
			}
			cur = childType(cur, rest[0])
			rest = rest[1:]
			if cur == nil {
				break
			}
		}
	}
	return primary, extras
}

// suffixPath concatenates the paths of the chain GEPs.
func suffixPath(chain []*ir.Instr) []ir.GEPStep {
	n := 0
	for _, g := range chain {
		n += len(g.Path)
	}
	out := make([]ir.GEPStep, 0, n)
	for _, g := range chain {
		out = append(out, g.Path...)
	}
	return out
}

// trimTrailingIndexes drops trailing array-index steps from the path.
func trimTrailingIndexes(path []ir.GEPStep) []ir.GEPStep {
	end := len(path)
	for end > 0 && path[end-1].Field < 0 {
		end--
	}
	return path[:end]
}

// childType navigates one GEP step through a type, or nil when the
// step does not fit the type (malformed input; Reprs degrades to the
// descriptors found so far rather than guessing).
func childType(t ir.Type, st ir.GEPStep) ir.Type {
	switch x := t.(type) {
	case *ir.StructType:
		if st.Field >= 0 && st.Field < len(x.Fields) {
			return x.Fields[st.Field].Type
		}
	case *ir.ArrayType:
		if st.Field < 0 {
			return x.Elem
		}
	}
	return nil
}
