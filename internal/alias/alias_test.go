package alias

import (
	"testing"

	"repro/internal/ir"
)

func TestLocOfGlobal(t *testing.T) {
	g := &ir.Global{GName: "flag", Elem: ir.I64}
	loc := LocOf(g)
	if loc.Kind != LocGlobal || loc.Name != "flag" {
		t.Fatalf("loc = %v", loc)
	}
	if !loc.Shared() {
		t.Fatal("global loc not shared")
	}
	if loc.String() != "@flag" {
		t.Fatalf("String = %q", loc.String())
	}
}

func buildGEPModule(t *testing.T) (*ir.Module, *ir.Func) {
	t.Helper()
	m := ir.NewModule("t")
	node := &ir.StructType{TypeName: "node", Fields: []ir.Field{
		{Name: "state", Type: ir.I64},
		{Name: "key", Type: ir.PointerTo(ir.I64)},
	}}
	if err := m.AddStruct(node); err != nil {
		t.Fatal(err)
	}
	arr := &ir.ArrayType{Elem: node, Len: 4}
	pool := &ir.Global{GName: "pool", Elem: arr}
	if err := m.AddGlobal(pool); err != nil {
		t.Fatal(err)
	}
	f := &ir.Func{Name: "f", RetTy: ir.Void, Params: []*ir.Param{
		{PName: "p", Ty: ir.PointerTo(node), Index: 0},
	}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	return m, f
}

func TestLocOfFieldGEP(t *testing.T) {
	m, f := buildGEPModule(t)
	b := ir.NewBuilder(f)
	node := m.Structs["node"]
	// Field access through a parameter pointer.
	fp := b.FieldPtr(f.Params[0], node, "state")
	ld := b.Load(fp)
	// Array-of-struct access through the global.
	pool := m.Global("pool")
	ep := b.IndexPtr(pool, pool.Elem.(*ir.ArrayType), ir.Const(2))
	fp2 := b.FieldPtr(ep, node, "state")
	st := b.Store(fp2, ir.Const(1))
	b.Ret(nil)

	locLd := LocOf(ld.Args[0])
	locSt := LocOf(st.Args[0])
	if locLd.Kind != LocField || locLd.Name != "node:0" {
		t.Fatalf("pointer-based loc = %v", locLd)
	}
	if locSt != locLd {
		t.Fatalf("array-based access loc %v != pointer-based %v", locSt, locLd)
	}
}

func TestLocOfArrayIndexInheritsBase(t *testing.T) {
	m := ir.NewModule("t")
	arr := &ir.ArrayType{Elem: ir.I64, Len: 8}
	g := &ir.Global{GName: "ring", Elem: arr}
	if err := m.AddGlobal(g); err != nil {
		t.Fatal(err)
	}
	f := &ir.Func{Name: "f", RetTy: ir.Void}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	ep := b.IndexPtr(g, arr, ir.Const(3))
	ld := b.Load(ep)
	b.Ret(nil)
	loc := LocOf(ld.Args[0])
	if loc.Kind != LocGlobal || loc.Name != "ring" {
		t.Fatalf("loc = %v, want @ring", loc)
	}
}

func TestLocOfLocalAndUnknown(t *testing.T) {
	m := ir.NewModule("t")
	f := &ir.Func{Name: "f", RetTy: ir.Void, Params: []*ir.Param{
		{PName: "p", Ty: ir.PointerTo(ir.I64), Index: 0},
	}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	slot := b.Alloca(ir.I64)
	b.Store(slot, ir.Const(0))
	ld := b.Load(f.Params[0])
	b.Ret(nil)
	if loc := LocOf(slot); loc.Kind != LocLocal || loc.Shared() {
		t.Fatalf("alloca loc = %v", loc)
	}
	if loc := LocOf(ld.Args[0]); loc.Kind != LocUnknown || loc.Shared() {
		t.Fatalf("param-deref loc = %v", loc)
	}
	if s := (Loc{Kind: LocUnknown}).String(); s != "<unknown>" {
		t.Fatalf("unknown String = %q", s)
	}
}

func TestMapBuddiesAndExplore(t *testing.T) {
	m, f := buildGEPModule(t)
	node := m.Structs["node"]
	b := ir.NewBuilder(f)
	fp := b.FieldPtr(f.Params[0], node, "state")
	ld := b.Load(fp)
	kp := b.FieldPtr(f.Params[0], node, "key")
	ld2 := b.Load(kp)
	st := b.Store(fp, ir.Const(2))
	b.Ret(nil)

	am := BuildMap(m)
	if am.Loc(ld).Name != "node:0" || am.Loc(ld2).Name != "node:1" {
		t.Fatal("cached locs wrong")
	}
	buddies := am.Buddies(Loc{Kind: LocField, Name: "node:0"})
	if len(buddies) != 2 {
		t.Fatalf("node:0 buddies = %d, want 2", len(buddies))
	}
	// Exploration from the load finds the store, not the key access.
	found := am.Explore([]*ir.Instr{ld})
	if len(found) != 2 {
		t.Fatalf("explore = %d accesses", len(found))
	}
	for _, in := range found {
		if in != ld && in != st {
			t.Fatalf("explore returned foreign access %s", in)
		}
	}
	// Exploring the same seed twice does not duplicate.
	found = am.Explore([]*ir.Instr{ld, st})
	if len(found) != 2 {
		t.Fatalf("duplicate-seed explore = %d", len(found))
	}
	if locs := am.SharedLocs(); len(locs) != 2 {
		t.Fatalf("shared locs = %v", locs)
	}
}
