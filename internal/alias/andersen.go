package alias

import "repro/internal/ir"

// This file implements the alternative the paper considers and rejects
// for scalability (section 3.4): a real pointer alias analysis for
// sticky-buddy detection, instead of the type-based scheme. It is an
// inclusion-based (Andersen-style) inter-procedural, flow- and
// field-insensitive points-to analysis. Two accesses are buddies when
// their address expressions may point to a common abstract object.
//
// The ablation harness uses it to measure the trade-off the paper
// asserts: precision that type-based matching lacks (distinct objects
// of one type stay distinct) at a cost that grows much faster with
// module size.

// PointsTo is the result of the Andersen analysis.
type PointsTo struct {
	mod *ir.Module
	// pts maps each pointer-valued node to its abstract objects.
	pts map[node]objset
	// objAccesses indexes, for each abstract object, the accesses whose
	// address may point to it.
	objAccesses map[int][]*ir.Instr
	locs        map[*ir.Instr]objset
}

// node identifies a points-to graph node: an ir.Value or the contents
// cell of an abstract object.
type node struct {
	v   ir.Value // non-nil for value nodes
	obj int      // >= 0 for contents nodes (v == nil)
}

type objset map[int]struct{}

func (s objset) add(o int) bool {
	if _, ok := s[o]; ok {
		return false
	}
	s[o] = struct{}{}
	return true
}

// andersen is the constraint solver state.
type andersen struct {
	mod *ir.Module
	pts map[node]objset
	// copy edges: subset constraints dst ⊇ src.
	succ map[node][]node
	// loadInto[p] = q means q ⊇ *p (for each o in pts(p): q ⊇ contents(o)).
	loadInto map[node][]node
	// storeFrom[p] = v means *p ⊇ v.
	storeFrom map[node][]node
	// objects
	objOf    map[ir.Value]int
	nextObj  int
	worklist []node
	inWork   map[node]bool
	// returns collects each function's returned values.
	returns map[*ir.Func][]ir.Value
}

// AnalyzePointsTo runs the Andersen analysis over the module.
func AnalyzePointsTo(m *ir.Module) *PointsTo {
	a := &andersen{
		mod:       m,
		pts:       make(map[node]objset),
		succ:      make(map[node][]node),
		loadInto:  make(map[node][]node),
		storeFrom: make(map[node][]node),
		objOf:     make(map[ir.Value]int),
		inWork:    make(map[node]bool),
		returns:   make(map[*ir.Func][]ir.Value),
	}
	a.collect()
	a.solve()
	res := &PointsTo{
		mod:         m,
		pts:         a.pts,
		objAccesses: make(map[int][]*ir.Instr),
		locs:        make(map[*ir.Instr]objset),
	}
	m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if !in.IsMemAccess() {
			return
		}
		set := a.pts[valNode(in.Args[0])]
		res.locs[in] = set
		for o := range set {
			res.objAccesses[o] = append(res.objAccesses[o], in)
		}
	})
	return res
}

func valNode(v ir.Value) node { return node{v: v} }

func contentsNode(obj int) node { return node{obj: obj + 1} }

func (a *andersen) object(v ir.Value) int {
	if o, ok := a.objOf[v]; ok {
		return o
	}
	a.nextObj++
	a.objOf[v] = a.nextObj
	return a.nextObj
}

func (a *andersen) addPts(n node, obj int) {
	s, ok := a.pts[n]
	if !ok {
		s = make(objset)
		a.pts[n] = s
	}
	if s.add(obj) {
		a.push(n)
	}
}

func (a *andersen) push(n node) {
	if !a.inWork[n] {
		a.inWork[n] = true
		a.worklist = append(a.worklist, n)
	}
}

// edge adds dst ⊇ src.
func (a *andersen) edge(src, dst node) {
	a.succ[src] = append(a.succ[src], dst)
	if len(a.pts[src]) > 0 {
		a.push(src)
	}
}

// collect builds the constraint graph.
func (a *andersen) collect() {
	for _, g := range a.mod.Globals {
		a.addPts(valNode(g), a.object(g))
	}
	for _, f := range a.mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			switch in.Op {
			case ir.OpAlloca:
				a.addPts(valNode(in), a.object(in))
			case ir.OpCall:
				if in.Callee == "malloc" {
					a.addPts(valNode(in), a.object(in))
					return
				}
				if callee := a.mod.Func(in.Callee); callee != nil {
					for i, arg := range in.Args {
						if i < len(callee.Params) {
							a.edge(valNode(arg), valNode(callee.Params[i]))
						}
					}
					for _, rv := range a.returns[callee] {
						a.edge(valNode(rv), valNode(in))
					}
				}
			case ir.OpGEP:
				a.edge(valNode(in.Args[0]), valNode(in))
			case ir.OpBin:
				a.edge(valNode(in.Args[0]), valNode(in))
				a.edge(valNode(in.Args[1]), valNode(in))
			case ir.OpLoad:
				a.loadInto[valNode(in.Args[0])] = append(a.loadInto[valNode(in.Args[0])], valNode(in))
				a.push(valNode(in.Args[0]))
			case ir.OpStore:
				a.storeFrom[valNode(in.Args[0])] = append(a.storeFrom[valNode(in.Args[0])], valNode(in.Args[1]))
				a.push(valNode(in.Args[0]))
			case ir.OpCmpXchg:
				a.storeFrom[valNode(in.Args[0])] = append(a.storeFrom[valNode(in.Args[0])], valNode(in.Args[2]))
				a.loadInto[valNode(in.Args[0])] = append(a.loadInto[valNode(in.Args[0])], valNode(in))
				a.push(valNode(in.Args[0]))
			case ir.OpRMW:
				if in.RMW == ir.RMWXchg {
					a.storeFrom[valNode(in.Args[0])] = append(a.storeFrom[valNode(in.Args[0])], valNode(in.Args[1]))
				}
				a.loadInto[valNode(in.Args[0])] = append(a.loadInto[valNode(in.Args[0])], valNode(in))
				a.push(valNode(in.Args[0]))
			case ir.OpRet:
				if len(in.Args) == 1 {
					a.returns[f] = append(a.returns[f], in.Args[0])
				}
			}
		})
	}
	// Return-value edges for calls processed before their callee's rets
	// were collected: do a second pass.
	for _, f := range a.mod.Funcs {
		f.Instrs(func(in *ir.Instr) {
			if in.Op != ir.OpCall {
				return
			}
			if callee := a.mod.Func(in.Callee); callee != nil {
				for _, rv := range a.returns[callee] {
					a.edge(valNode(rv), valNode(in))
				}
			}
		})
	}
}

// solve runs the inclusion worklist to a fixpoint.
func (a *andersen) solve() {
	for len(a.worklist) > 0 {
		n := a.worklist[len(a.worklist)-1]
		a.worklist = a.worklist[:len(a.worklist)-1]
		a.inWork[n] = false
		set := a.pts[n]
		// Copy edges.
		for _, dst := range a.succ[n] {
			for o := range set {
				a.addPts(dst, o)
			}
		}
		// Load constraints: dst ⊇ contents(o) for o ∈ pts(n); realized by
		// a copy edge from each contents node.
		for _, dst := range a.loadInto[n] {
			for o := range set {
				c := contentsNode(o)
				a.edge(c, dst)
				for oo := range a.pts[c] {
					a.addPts(dst, oo)
				}
			}
		}
		// Store constraints: contents(o) ⊇ src for o ∈ pts(n).
		for _, src := range a.storeFrom[n] {
			for o := range set {
				c := contentsNode(o)
				a.edge(src, c)
				for oo := range a.pts[src] {
					a.addPts(c, oo)
				}
			}
		}
	}
}

// MayAlias reports whether two memory accesses may touch the same
// object.
func (p *PointsTo) MayAlias(a, b *ir.Instr) bool {
	sa, sb := p.locs[a], p.locs[b]
	if len(sa) > len(sb) {
		sa, sb = sb, sa
	}
	for o := range sa {
		if _, ok := sb[o]; ok {
			return true
		}
	}
	return false
}

// Explore returns the sticky buddies of the seed accesses under the
// points-to relation: every access sharing an abstract object with any
// seed.
func (p *PointsTo) Explore(seeds []*ir.Instr) []*ir.Instr {
	seenObj := make(map[int]bool)
	seenAcc := make(map[*ir.Instr]bool)
	var out []*ir.Instr
	for _, s := range seeds {
		for o := range p.locs[s] {
			if seenObj[o] {
				continue
			}
			seenObj[o] = true
			for _, in := range p.objAccesses[o] {
				if !seenAcc[in] {
					seenAcc[in] = true
					out = append(out, in)
				}
			}
		}
	}
	return out
}
