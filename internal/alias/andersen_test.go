package alias

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/minic"
)

func compileA(t *testing.T, src string) *ir.Module {
	t.Helper()
	res, err := minic.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Module
}

// accessesTo finds memory accesses in a function by shape.
func firstAccess(m *ir.Module, fn string, op ir.Op) *ir.Instr {
	var out *ir.Instr
	m.Func(fn).Instrs(func(in *ir.Instr) {
		if in.Op == op && out == nil {
			out = in
		}
	})
	return out
}

func TestPointsToDistinguishesObjects(t *testing.T) {
	// Two distinct globals of the same type: the type-based scheme would
	// keep them apart too (different symbols), but two malloc'd nodes of
	// one struct type show the difference — points-to keeps them
	// separate, type matching merges them.
	m := compileA(t, `
struct node { int v; };

struct node *a;
struct node *b;

void setup(void) {
  a = (struct node *)malloc(sizeof(struct node));
  b = (struct node *)malloc(sizeof(struct node));
}

int reada(void) { return a->v; }
int readb(void) { return b->v; }
`)
	pt := AnalyzePointsTo(m)
	la := firstAccess(m, "reada", ir.OpLoad) // loads a (the pointer)
	lb := firstAccess(m, "readb", ir.OpLoad)
	// The pointer loads read @a and @b: distinct objects.
	if pt.MayAlias(la, lb) {
		t.Fatal("loads of @a and @b alias under points-to")
	}
	// The v-field loads go to distinct malloc sites.
	var va, vb *ir.Instr
	m.Func("reada").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad {
			va = in
		}
	})
	m.Func("readb").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad {
			vb = in
		}
	})
	if pt.MayAlias(va, vb) {
		t.Fatal("distinct malloc'd nodes alias under points-to")
	}
	// Type-based matching merges them (same struct type + offset).
	am := BuildMap(m)
	if am.Loc(va) != am.Loc(vb) {
		t.Fatal("type-based scheme should merge same-type field accesses")
	}
}

func TestPointsToFlowsThroughMemoryAndCalls(t *testing.T) {
	m := compileA(t, `
int target;
int *slot;

void publish(int *p) { slot = p; }

void setup(void) { publish(&target); }

void writer(void) {
  int *p = slot;
  *p = 5;
}

void direct(void) { target = 7; }
`)
	pt := AnalyzePointsTo(m)
	var indirect *ir.Instr
	m.Func("writer").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			indirect = in // last store is *p = 5
		}
	})
	direct := firstAccess(m, "direct", ir.OpStore)
	if !pt.MayAlias(indirect, direct) {
		t.Fatal("store through published pointer must alias the direct store")
	}
	// Exploration from the direct store reaches the indirect one.
	found := pt.Explore([]*ir.Instr{direct})
	hit := false
	for _, in := range found {
		if in == indirect {
			hit = true
		}
	}
	if !hit {
		t.Fatal("exploration missed the indirect buddy")
	}
}

func TestPointsToSeparatesUnrelated(t *testing.T) {
	m := compileA(t, `
int x;
int y;
void fx(void) { x = 1; }
void fy(void) { y = 2; }
`)
	pt := AnalyzePointsTo(m)
	sx := firstAccess(m, "fx", ir.OpStore)
	sy := firstAccess(m, "fy", ir.OpStore)
	if pt.MayAlias(sx, sy) {
		t.Fatal("stores to distinct globals alias")
	}
	if got := pt.Explore([]*ir.Instr{sx}); len(got) != 1 || got[0] != sx {
		t.Fatalf("explore = %v", got)
	}
}
