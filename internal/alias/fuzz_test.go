package alias

import (
	"testing"

	"repro/internal/ir"
)

// fuzzSeedModules are the hand-written AIR shapes the fuzzer mutates
// from: nested structs (composed GEP chains), arrays of structs
// (unions of offsets through trimmed indexes), and cross-global buddy
// chains (two globals of one struct type whose field accesses must
// land in a single sticky class). The same texts are checked in under
// testdata/fuzz/FuzzAliasExplore for `go test -fuzz`.
func fuzzSeedModules() []string {
	return []string{
		// Scalar globals, message-passing shape.
		"; module mp\n@flag = global i64\n@msg = global i64\n\n" +
			"define void @w() {\nentry:\n  store 1, @msg\n  store 1, @flag\n  ret void\n}\n\n" +
			"define void @r() {\nentry:\n  %t0 = load i64, @flag\n  %t1 = load i64, @msg\n  ret void\n}\n",
		// Nested structs: a direct two-field path and the same cell
		// reached through a composed GEP chain.
		"; module nested\n%in = type {i64 flag, i64 pad}\n%out = type {%in in, i64 other}\n@g = global %out\n\n" +
			"define void @direct() {\nentry:\n  %t0 = getelementptr %out, @g, field 0, field 0\n  store 1, %t0\n  ret void\n}\n\n" +
			"define void @composed() {\nentry:\n  %t0 = getelementptr %out, @g, field 0\n  %t1 = getelementptr %in, %t0, field 0\n  %t2 = load i64, %t1\n  ret void\n}\n",
		// Array of structs: dynamic-index steps trim to the same
		// (type, offset) cell as a direct field access.
		"; module offsets\n%node = type {i64 state, i64 val}\n@cells = global [4 x %node]\n@one = global %node\n\n" +
			"define void @byindex(i64 %i) {\nentry:\n  %t0 = getelementptr [4 x %node], @cells, index %i, field 0\n  store 1, %t0\n  ret void\n}\n\n" +
			"define void @byfield() {\nentry:\n  %t0 = getelementptr %node, @one, field 0\n  %t1 = load i64, %t0\n  ret void\n}\n",
		// Cross-global buddy chain: three globals of one struct type;
		// promoting the field on any one must reach all three.
		"; module chain\n%lk = type {i64 owner, i64 depth}\n@a = global %lk\n@b = global %lk\n@c = global %lk\n\n" +
			"define void @fa() {\nentry:\n  %t0 = getelementptr %lk, @a, field 0\n  store 1, %t0\n  ret void\n}\n\n" +
			"define void @fb() {\nentry:\n  %t0 = getelementptr %lk, @b, field 0\n  %t1 = load i64, %t0\n  ret void\n}\n\n" +
			"define void @fc() {\nentry:\n  %t0 = getelementptr %lk, @c, field 1\n  store 2, %t0\n  ret void\n}\n",
		"garbage that is not AIR",
		"",
	}
}

// FuzzAliasExplore feeds arbitrary AIR text to the sharded alias map.
// Accepted modules must uphold the map's invariants at every worker
// count: identical descriptors, classes, buddy lists and exploration
// results at 1 and 4 workers (the determinism contract of
// docs/PIPELINE.md), canonicalization as a fixed point, classes closed
// under Explore, and a merge count that depends only on the final
// partition. A panic anywhere is a finding.
func FuzzAliasExplore(f *testing.F) {
	for _, s := range fuzzSeedModules() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 16<<10 {
			t.Skip("oversized input")
		}
		m, err := ir.ParseModule(text)
		if err != nil {
			return
		}
		if err := ir.Verify(m); err != nil {
			return
		}
		m1 := BuildMap(m)
		m4 := BuildMapParallel(m, 4)

		var accesses []*ir.Instr
		m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
			if in.IsMemAccess() {
				accesses = append(accesses, in)
			}
		})
		for _, in := range accesses {
			l1, l4 := m1.Loc(in), m4.Loc(in)
			if l1 != l4 {
				t.Fatalf("descriptor drift for %s: -j1 %s vs -j4 %s", in, l1, l4)
			}
			c1, c4 := m1.Canon(l1), m4.Canon(l4)
			if c1 != c4 {
				t.Fatalf("canonical drift for %s: -j1 %s vs -j4 %s", l1, c1, c4)
			}
			if again := m1.Canon(c1); again != c1 {
				t.Fatalf("Canon not a fixed point: %s -> %s -> %s", l1, c1, again)
			}
			if !m1.Same(l1, c1) {
				t.Fatalf("Same(%s, Canon(%s)) is false", l1, l1)
			}
			if l1.Shared() {
				buddies1, buddies4 := m1.Buddies(l1), m4.Buddies(l1)
				if !sameInstrs(buddies1, buddies4) {
					t.Fatalf("buddy list drift for %s", l1)
				}
				if !containsInstr(buddies1, in) {
					t.Fatalf("access %s missing from its own buddy class %s", in, l1)
				}
			}
		}

		s1, s4 := m1.SharedLocs(), m4.SharedLocs()
		if len(s1) != len(s4) {
			t.Fatalf("SharedLocs count drift: %d vs %d", len(s1), len(s4))
		}
		for i := range s1 {
			if s1[i] != s4[i] {
				t.Fatalf("SharedLocs[%d] drift: %s vs %s", i, s1[i], s4[i])
			}
		}
		if m1.Merges() != m4.Merges() {
			t.Fatalf("merge count drift: -j1 %d vs -j4 %d", m1.Merges(), m4.Merges())
		}

		e1, e4 := m1.Explore(accesses), m4.Explore(accesses)
		if !sameInstrs(e1, e4) {
			t.Fatalf("Explore drift: -j1 %d accesses vs -j4 %d", len(e1), len(e4))
		}
		if closed := m1.Explore(e1); !sameInstrs(closed, e1) {
			t.Fatalf("Explore not closed: re-exploring %d results yields %d", len(e1), len(closed))
		}
	})
}

func sameInstrs(a, b []*ir.Instr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInstr(list []*ir.Instr, in *ir.Instr) bool {
	for _, x := range list {
		if x == in {
			return true
		}
	}
	return false
}
