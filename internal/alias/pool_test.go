package alias

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/leakcheck"
)

// poolFuncs builds enough trivial functions to keep a multi-worker
// pool busy.
func poolFuncs(t *testing.T, n int) *ir.Module {
	t.Helper()
	var b strings.Builder
	b.WriteString("; module pool\n@g = global i64\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "define i64 @f%03d() {\nentry:\n  %%t0 = load i64, @g\n  ret %%t0\n}\n", i)
	}
	m, err := ir.ParseModule(b.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

// TestBuildMapPanicPropagatesToCaller: a panic in the per-function
// callback must drain the worker pool and re-raise on the calling
// goroutine, where a recover (or a diag guard upstream) can contain it.
// An uncontained panic on a pool goroutine would abort the process and
// this test with it.
func TestBuildMapPanicPropagatesToCaller(t *testing.T) {
	leakcheck.Check(t)
	m := poolFuncs(t, 64)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate to the caller")
		}
		pp, ok := r.(*poolPanic)
		if !ok {
			t.Fatalf("recovered %T, want *poolPanic", r)
		}
		if !strings.Contains(pp.String(), "injected index failure") {
			t.Errorf("pool panic lost the original value: %s", pp.String())
		}
	}()
	BuildMapFromAccesses(m, 4, func(fi int, f *ir.Func) []Access {
		if fi == 7 {
			panic("injected index failure")
		}
		return PrepareFunc(f)
	})
}

// TestBuildMapFromAccessesMatchesScan: feeding prepared contributions
// must build the same map as a direct scan, for several worker counts.
func TestBuildMapFromAccessesMatchesScan(t *testing.T) {
	leakcheck.Check(t)
	m := poolFuncs(t, 40)
	ref := BuildMapParallel(m, 1)
	prepared := make([][]Access, len(m.Funcs))
	for i, f := range m.Funcs {
		prepared[i] = PrepareFunc(f)
	}
	for _, w := range []int{1, 2, 4} {
		am := BuildMapFromAccesses(m, w, func(fi int, f *ir.Func) []Access {
			return prepared[fi]
		})
		if got, want := len(am.SharedLocs()), len(ref.SharedLocs()); got != want {
			t.Fatalf("workers=%d: %d shared locs, want %d", w, got, want)
		}
		for _, loc := range ref.SharedLocs() {
			if got, want := len(am.Buddies(loc)), len(ref.Buddies(loc)); got != want {
				t.Fatalf("workers=%d loc %s: %d buddies, want %d", w, loc, got, want)
			}
		}
	}
}
