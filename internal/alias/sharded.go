// Sharded concurrent construction of the module-wide alias map. The
// map is built once per port (paper section 3.5) and, for the
// million-line modules of Table 3, that build is on the pipeline's
// critical path — so it fans out across a worker pool: workers claim
// functions from an atomic cursor, push each memory access into a
// lock-striped shard keyed by its location descriptor, and feed every
// alternate descriptor of the address (alias.Reprs) into the
// lock-striped union-find. A final freeze step groups the per-location
// access lists into canonical equivalence classes and sorts each class
// by (function index, instruction position), so lookups and
// exploration return identical, deterministically ordered results for
// every worker count (docs/PIPELINE.md).
package alias

import (
	"fmt"
	"math/bits"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/ir"
)

// Map is the module-wide index from location descriptor to all memory
// accesses of that location, closed under the union-find's equivalence
// classes. After BuildMap returns the structure is immutable and safe
// for concurrent readers.
type Map struct {
	shards    []mapShard
	shift     uint
	nolock    bool
	uf        *UnionFind
	instrLocs []instrLocShard
	// classes maps each canonical root to the ordered accesses of the
	// whole class (built by freeze).
	classes map[Loc][]*ir.Instr
}

// accessRec carries the deterministic sort key assigned during the
// parallel build: accesses are ordered by where they appear in the
// module, not by which worker indexed them first.
type accessRec struct {
	in  *ir.Instr
	seq uint64
}

type mapShard struct {
	mu sync.Mutex
	m  map[Loc][]accessRec
	_  [40]byte
}

type instrLocShard struct {
	mu sync.Mutex
	m  map[*ir.Instr]Loc
	_  [40]byte
}

const mapShardsPerWorker = 8

// BuildMap scans the module and indexes every memory access with a
// single worker. See BuildMapParallel.
func BuildMap(m *ir.Module) *Map { return BuildMapParallel(m, 1) }

// BuildMapParallel builds the alias map with the given number of
// workers. The resulting map — classes, canonical representatives,
// and the order of every access list — is identical for every worker
// count.
func BuildMapParallel(m *ir.Module, workers int) *Map {
	return BuildMapFromAccesses(m, workers, nil)
}

// Access is one memory access's contribution to the alias map: the
// access instruction, its 1-based position in the function's
// block-order instruction walk, and the descriptors of its address
// (Reprs). PrepareFunc computes contributions per function; a cached
// slice replayed onto an instruction-identical function instance feeds
// BuildMapFromAccesses exactly as a fresh scan would.
type Access struct {
	In      *ir.Instr
	Pos     int
	Primary Loc
	Extras  []Loc
}

// PrepareFunc computes one function's alias contributions: every
// memory access, in block order, with its descriptors. The position
// counter advances over every instruction (not just accesses), so a
// contribution can be re-anchored positionally on another instance of
// the same function.
func PrepareFunc(f *ir.Func) []Access {
	var out []Access
	pos := 0
	f.Instrs(func(in *ir.Instr) {
		pos++
		if !in.IsMemAccess() {
			return
		}
		primary, extras := Reprs(in.Addr())
		out = append(out, Access{In: in, Pos: pos, Primary: primary, Extras: extras})
	})
	return out
}

// BuildMapFromAccesses builds the alias map from per-function access
// contributions supplied by get (fi is the function's index in
// m.Funcs). A nil get scans each function in place (PrepareFunc). The
// resulting map is identical for every worker count and identical to a
// direct BuildMapParallel of the same module.
func BuildMapFromAccesses(m *ir.Module, workers int, get func(fi int, f *ir.Func) []Access) *Map {
	if workers < 1 {
		workers = 1
	}
	if workers > len(m.Funcs) && len(m.Funcs) > 0 {
		workers = len(m.Funcs)
	}
	n := 1
	for n < workers*mapShardsPerWorker {
		n <<= 1
	}
	am := &Map{
		shards:    make([]mapShard, n),
		shift:     uint(64 - bits.TrailingZeros(uint(n))),
		nolock:    workers <= 1,
		uf:        NewUnionFind(workers),
		instrLocs: make([]instrLocShard, n),
	}
	for i := range am.shards {
		am.shards[i].m = make(map[Loc][]accessRec)
	}
	for i := range am.instrLocs {
		am.instrLocs[i].m = make(map[*ir.Instr]Loc)
	}
	forEachFuncIndexed(workers, m.Funcs, func(fi int, f *ir.Func) {
		var accs []Access
		if get != nil {
			accs = get(fi, f)
		} else {
			accs = PrepareFunc(f)
		}
		am.indexAccesses(fi, accs)
	})
	am.freeze()
	return am
}

// forEachFuncIndexed fans fn out over the functions: workers claim
// indices from a shared cursor so a few huge functions do not stall
// the pool. A panic in fn is captured on the worker, the pool drains,
// and the first panic is re-raised on the calling goroutine — never on
// a pool goroutine, where it would be unrecoverable for the caller.
func forEachFuncIndexed(workers int, fns []*ir.Func, fn func(fi int, f *ir.Func)) {
	if workers <= 1 || len(fns) <= 1 {
		for i, f := range fns {
			fn(i, f)
		}
		return
	}
	var cursor atomicCursor
	var wg sync.WaitGroup
	var failed atomic.Bool
	var first atomic.Pointer[poolPanic]
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					failed.Store(true)
					first.CompareAndSwap(nil, &poolPanic{val: r, stack: debug.Stack()})
				}
			}()
			for {
				if failed.Load() {
					return
				}
				i := cursor.next()
				if i >= len(fns) {
					return
				}
				fn(i, fns[i])
			}
		}()
	}
	wg.Wait()
	if p := first.Load(); p != nil {
		panic(p)
	}
}

// poolPanic carries a worker panic (with the worker's stack) to the
// goroutine that owns the pool.
type poolPanic struct {
	val   any
	stack []byte
}

func (p *poolPanic) String() string {
	return fmt.Sprintf("worker panic: %v\n%s", p.val, p.stack)
}

// indexAccesses records one function's prepared contributions.
func (am *Map) indexAccesses(fi int, accs []Access) {
	for _, a := range accs {
		am.setLoc(a.In, a.Primary)
		if !a.Primary.Shared() {
			continue
		}
		am.append(a.Primary, accessRec{in: a.In, seq: uint64(fi)<<32 | uint64(a.Pos)})
		am.uf.Add(a.Primary)
		for _, e := range a.Extras {
			am.uf.Union(a.Primary, e)
		}
	}
}

func (am *Map) setLoc(in *ir.Instr, loc Loc) {
	sh := &am.instrLocs[hashPtr(in)>>am.shift]
	if am.nolock {
		sh.m[in] = loc
		return
	}
	sh.mu.Lock()
	sh.m[in] = loc
	sh.mu.Unlock()
}

func (am *Map) append(loc Loc, rec accessRec) {
	sh := &am.shards[hashLoc(loc)>>am.shift]
	if am.nolock {
		sh.m[loc] = append(sh.m[loc], rec)
		return
	}
	sh.mu.Lock()
	sh.m[loc] = append(sh.m[loc], rec)
	sh.mu.Unlock()
}

// hashPtr mixes an instruction pointer for stripe selection.
func hashPtr(in *ir.Instr) uint64 {
	h := uint64(uintptr(unsafe.Pointer(in)))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// atomicCursor hands out work-list indices to the pool.
type atomicCursor struct{ n atomic.Int64 }

func (c *atomicCursor) next() int { return int(c.n.Add(1)) - 1 }

// freeze groups every location's accesses into its canonical class and
// sorts each class by module position. Runs once, after all workers
// have quiesced.
func (am *Map) freeze() {
	byRoot := make(map[Loc][]accessRec)
	for i := range am.shards {
		for loc, recs := range am.shards[i].m {
			rt := am.uf.Find(loc)
			byRoot[rt] = append(byRoot[rt], recs...)
		}
	}
	am.classes = make(map[Loc][]*ir.Instr, len(byRoot))
	for rt, recs := range byRoot {
		sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
		ins := make([]*ir.Instr, len(recs))
		for i, r := range recs {
			ins[i] = r.in
		}
		am.classes[rt] = ins
	}
}

// Loc returns the cached primary descriptor of a memory access.
func (am *Map) Loc(in *ir.Instr) Loc {
	sh := &am.instrLocs[hashPtr(in)>>am.shift]
	if am.nolock {
		return sh.m[in]
	}
	sh.mu.Lock()
	loc := sh.m[in]
	sh.mu.Unlock()
	return loc
}

// Canon returns the canonical representative of loc's sticky class:
// the lexicographically smallest descriptor the union-find merged it
// with (loc itself when nothing aliases it).
func (am *Map) Canon(loc Loc) Loc { return am.uf.Find(loc) }

// Same reports whether two descriptors are in one sticky class.
func (am *Map) Same(a, b Loc) bool { return am.uf.Find(a) == am.uf.Find(b) }

// Merges returns how many distinct descriptor classes the union-find
// joined during the build.
func (am *Map) Merges() int64 { return am.uf.Merges() }

// Buddies returns every access in the module whose descriptor is in
// the same class as loc, in deterministic module order.
func (am *Map) Buddies(loc Loc) []*ir.Instr {
	if !loc.Shared() {
		return nil
	}
	return am.classes[am.uf.Find(loc)]
}

// SharedLocs returns all shared primary descriptors present in the
// module, sorted.
func (am *Map) SharedLocs() []Loc {
	var out []Loc
	for i := range am.shards {
		for l := range am.shards[i].m {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return locLess(out[i], out[j]) })
	return out
}

// Explore returns all sticky buddies of the seed accesses: every
// access in the module whose descriptor is in the same class as the
// descriptor of any seed. Seeds with unknown or local descriptors
// contribute nothing. Output order is deterministic: classes appear in
// first-seed order, accesses within a class in module order.
func (am *Map) Explore(seeds []*ir.Instr) []*ir.Instr {
	seen := make(map[Loc]bool)
	var out []*ir.Instr
	for _, s := range seeds {
		loc := am.Loc(s)
		if !loc.Shared() {
			continue
		}
		rt := am.uf.Find(loc)
		if seen[rt] {
			continue
		}
		seen[rt] = true
		out = append(out, am.classes[rt]...)
	}
	return out
}
