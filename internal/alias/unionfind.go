package alias

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// UnionFind is the concurrent equivalence relation over location
// descriptors that closes sticky-buddy exploration under "same cell,
// different descriptor" representations (nested-struct suffix paths,
// composed getelementptr chains, trailing array steps). Nodes are
// interned in lock-striped shards (the mc/shardmap.go pattern); the
// union/find operations themselves are lock-free, using CAS on parent
// pointers with path halving.
//
// The winner of every union is the lexicographically smaller Loc
// (LocKind, then Name), so the canonical representative of a class —
// and therefore everything derived from it — is independent of both
// operation order and worker count. That order-independence is what
// lets the pipeline build the relation from many goroutines and still
// guarantee byte-identical ported output for every -j
// (docs/PIPELINE.md).
type UnionFind struct {
	shards []ufShard
	shift  uint
	// nolock skips the interning mutexes when a single goroutine owns
	// the structure (BuildMap with one worker pays no synchronization).
	nolock bool
	// merges counts the unions that actually joined two classes.
	merges atomic.Int64
}

type ufShard struct {
	mu sync.Mutex
	m  map[Loc]*ufNode
	// Pad past a cache line so neighbouring shard locks do not
	// false-share.
	_ [40]byte
}

type ufNode struct {
	loc Loc
	// parent is nil for a class root.
	parent atomic.Pointer[ufNode]
}

// ufShardsPerWorker oversizes the shard count relative to the worker
// count so concurrent interning rarely contends (see mc/shardmap.go).
const ufShardsPerWorker = 8

// NewUnionFind returns a union-find sized for the given worker count.
func NewUnionFind(workers int) *UnionFind {
	if workers < 1 {
		workers = 1
	}
	n := 1
	for n < workers*ufShardsPerWorker {
		n <<= 1
	}
	u := &UnionFind{
		shards: make([]ufShard, n),
		shift:  uint(64 - bits.TrailingZeros(uint(n))),
		nolock: workers <= 1,
	}
	for i := range u.shards {
		u.shards[i].m = make(map[Loc]*ufNode)
	}
	return u
}

// hashLoc mixes a location descriptor into a well-distributed 64-bit
// hash (FNV-1a over kind and name, splitmix64 finalizer so the high
// bits used for shard selection are uniform).
func hashLoc(l Loc) uint64 {
	h := uint64(1469598103934665603)
	h ^= uint64(l.Kind)
	h *= 1099511628211
	for i := 0; i < len(l.Name); i++ {
		h ^= uint64(l.Name[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// intern returns the node for loc, creating it if needed.
func (u *UnionFind) intern(loc Loc) *ufNode {
	sh := &u.shards[hashLoc(loc)>>u.shift]
	if u.nolock {
		n := sh.m[loc]
		if n == nil {
			n = &ufNode{loc: loc}
			sh.m[loc] = n
		}
		return n
	}
	sh.mu.Lock()
	n := sh.m[loc]
	if n == nil {
		n = &ufNode{loc: loc}
		sh.m[loc] = n
	}
	sh.mu.Unlock()
	return n
}

// lookup returns the node for loc, or nil.
func (u *UnionFind) lookup(loc Loc) *ufNode {
	sh := &u.shards[hashLoc(loc)>>u.shift]
	if u.nolock {
		return sh.m[loc]
	}
	sh.mu.Lock()
	n := sh.m[loc]
	sh.mu.Unlock()
	return n
}

// root chases parent pointers to the class root, halving the path with
// CAS as it goes. Safe under concurrent unions: parents only ever move
// closer to a root.
func root(n *ufNode) *ufNode {
	for {
		p := n.parent.Load()
		if p == nil {
			return n
		}
		if gp := p.parent.Load(); gp != nil {
			n.parent.CompareAndSwap(p, gp)
		}
		n = p
	}
}

// locLess is the deterministic total order that picks union winners.
func locLess(a, b Loc) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Name < b.Name
}

// Add ensures loc is present as (at least) a singleton class.
func (u *UnionFind) Add(loc Loc) { u.intern(loc) }

// Union joins the classes of a and b, reporting whether they were
// previously distinct. The class keeps the lexicographically smaller
// root regardless of argument or interleaving order.
func (u *UnionFind) Union(a, b Loc) bool {
	na, nb := u.intern(a), u.intern(b)
	for {
		ra, rb := root(na), root(nb)
		if ra == rb {
			return false
		}
		if locLess(rb.loc, ra.loc) {
			ra, rb = rb, ra
		}
		if rb.parent.CompareAndSwap(nil, ra) {
			u.merges.Add(1)
			return true
		}
		// rb gained a parent concurrently; retry from the new roots.
	}
}

// Find returns the canonical representative of loc's class: the
// lexicographically smallest member. Descriptors never interned are
// their own class.
func (u *UnionFind) Find(loc Loc) Loc {
	n := u.lookup(loc)
	if n == nil {
		return loc
	}
	return root(n).loc
}

// Merges returns the number of unions that joined two distinct classes.
func (u *UnionFind) Merges() int64 { return u.merges.Load() }
