package analysis

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/minic"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	res, err := minic.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Module
}

func TestDominators(t *testing.T) {
	m := compile(t, `
int g;
int f(int n) {
  int r = 0;
  while (n > 0) {
    if (g > 0) { r = r + 1; } else { r = r + 2; }
    n = n - 1;
  }
  return r;
}
`)
	f := m.Func("f")
	dom := Dominators(f)
	entry := f.Entry()
	for _, b := range f.Blocks {
		if dom.Reachable(b) && !dom.Dominates(entry, b) {
			t.Errorf("entry does not dominate %s", b.Name)
		}
	}
	// The loop condition block dominates the loop body and the then/else
	// blocks; find them by structure: the block with a conditional branch
	// whose Else exits.
	loops := FindLoops(f, dom)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	for b := range l.Blocks {
		if !dom.Dominates(l.Header, b) {
			t.Errorf("loop header does not dominate member %s", b.Name)
		}
	}
}

func TestFindLoopsNested(t *testing.T) {
	m := compile(t, `
int g;
void f(void) {
  for (int i = 0; i < 10; i = i + 1) {
    for (int j = 0; j < 10; j = j + 1) {
      g = g + 1;
    }
  }
}
`)
	f := m.Func("f")
	loops := FindLoops(f, Dominators(f))
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	// One loop body must be a strict subset of the other.
	a, b := loops[0], loops[1]
	if len(a.Blocks) > len(b.Blocks) {
		a, b = b, a
	}
	for blk := range a.Blocks {
		if !b.Blocks[blk] {
			t.Fatalf("inner loop block %s not inside outer loop", blk.Name)
		}
	}
	if len(a.ExitBranches) == 0 || len(b.ExitBranches) == 0 {
		t.Fatal("loops missing exit branches")
	}
}

func TestLocalityGlobalsAndParams(t *testing.T) {
	m := compile(t, `
int g;
int f(int *p) {
  int l = 0;
  l = g;
  l = *p;
  return l;
}
`)
	f := m.Func("f")
	loc := AnalyzeLocality(f)
	var loads []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad {
			loads = append(loads, in)
		}
	})
	nonLocal := 0
	for _, ld := range loads {
		if loc.NonLocal(ld.Args[0]) {
			nonLocal++
		}
	}
	// Non-local loads: the load of @g and the load through *p. The loads
	// of l and of the parameter slot are local.
	if nonLocal != 2 {
		t.Fatalf("non-local loads = %d, want 2", nonLocal)
	}
}

func TestLocalityEscape(t *testing.T) {
	m := compile(t, `
int *shared;
void publish(void) {
  int l = 1;
  shared = &l;     // l escapes
  int kept = 2;
  kept = kept + 1; // kept does not escape
}
`)
	f := m.Func("publish")
	loc := AnalyzeLocality(f)
	var allocas []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpAlloca {
			allocas = append(allocas, in)
		}
	})
	if len(allocas) != 2 {
		t.Fatalf("allocas = %d", len(allocas))
	}
	if !loc.Escaped(allocas[0]) {
		t.Error("alloca of l should escape (address stored to global)")
	}
	if loc.Escaped(allocas[1]) {
		t.Error("alloca of kept must not escape")
	}
}

func TestLocalityEscapeViaCall(t *testing.T) {
	m := compile(t, `
void sink(int *p) { *p = 1; }
void f(void) {
  int l = 0;
  sink(&l);
}
`)
	f := m.Func("f")
	loc := AnalyzeLocality(f)
	var a *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpAlloca && a == nil {
			a = in
		}
	})
	if !loc.Escaped(a) {
		t.Error("address passed to call should escape")
	}
}

// TestFigure3 reproduces the paper's Figure 3: three spinloops and two
// non-spinloops.
func TestFigure3(t *testing.T) {
	m := compile(t, `
int flag = 0;
int turns = 7;

void spinloop1(void) {
  while (flag != 1) { }        // non-local dep: spinloop
}

void spinloop2(void) {
  int l_flag;
  do {
    l_flag = 1;                // constant store
  } while (l_flag != flag);    // non-local dep: spinloop
}

void spinloop3(void) {
  int l_flag;
  do {
    l_flag = flag & 255;       // non-local dep flows through local
  } while (l_flag != 2);       // indirect non-local dep: spinloop
}

void nonspin1(void) {
  for (int i = 0; i < 100; i = i + 1) {
    if (flag == 1) { break; }  // also has a purely local exit
  }
}

void nonspin2(void) {
  for (int i = 0; i < turns; i = i + 1) { }  // i++ influences exit
}
`)
	cases := []struct {
		fn   string
		want int
	}{
		{"spinloop1", 1},
		{"spinloop2", 1},
		{"spinloop3", 1},
		{"nonspin1", 0},
		{"nonspin2", 0},
	}
	for _, c := range cases {
		t.Run(c.fn, func(t *testing.T) {
			infos := DetectSpinloops(m.Func(c.fn))
			if len(infos) != c.want {
				t.Fatalf("spinloops in %s = %d, want %d", c.fn, len(infos), c.want)
			}
			if c.want == 1 {
				info := infos[0]
				if len(info.Controls) == 0 {
					t.Fatal("spinloop without spin controls")
				}
				for _, ctl := range info.Controls {
					loc := alias.LocOf(ctl.Addr())
					if loc.Kind != alias.LocGlobal || loc.Name != "flag" {
						t.Errorf("control loc = %v, want @flag", loc)
					}
				}
				if info.Optimistic {
					t.Error("plain spinloop misclassified as optimistic")
				}
			}
		})
	}
}

func TestSpinloopCASLock(t *testing.T) {
	// Figure 4: test-and-set lock. The cmpxchg is the spin control.
	m := compile(t, `
int locked = 0;
void lock(void) {
  while (__cas(&locked, 0, 1) != 0) { }
}
`)
	infos := DetectSpinloops(m.Func("lock"))
	if len(infos) != 1 {
		t.Fatalf("spinloops = %d, want 1", len(infos))
	}
	ctl := infos[0].Controls
	if len(ctl) != 1 || ctl[0].Op != ir.OpCmpXchg {
		t.Fatalf("controls = %v, want the cmpxchg", ctl)
	}
}

func TestOptimisticSeqlock(t *testing.T) {
	// Figure 6: sequence counter. The loop reads msg (not a spin
	// control) and uses it after the loop, so the loop is optimistic.
	m := compile(t, `
volatile int flag = 0;
int msg;
int out;

void reader(void) {
  int i;
  int data;
  do {
    i = flag;
    data = msg;
  } while (i % 2 != 0 || i != flag);
  out = data;
}
`)
	infos := DetectSpinloops(m.Func("reader"))
	if len(infos) != 1 {
		t.Fatalf("spinloops = %d, want 1", len(infos))
	}
	info := infos[0]
	if !info.Optimistic {
		t.Fatal("seqlock reader not classified optimistic")
	}
	if len(info.OptimisticReads) == 0 {
		t.Fatal("no optimistic reads recorded")
	}
	for _, rd := range info.OptimisticReads {
		if loc := alias.LocOf(rd.Addr()); loc.Name != "msg" {
			t.Errorf("optimistic read loc = %v, want @msg", loc)
		}
	}
	seenFlag := false
	for _, loc := range info.ControlLocs {
		if loc.Name == "flag" {
			seenFlag = true
		}
	}
	if !seenFlag {
		t.Errorf("control locs = %v, want @flag", info.ControlLocs)
	}
}

func TestMessagePassingReaderNotOptimistic(t *testing.T) {
	// Figure 5: the msg read happens after the loop, so the loop is a
	// plain spinloop, not an optimistic loop.
	m := compile(t, `
int flag = 0;
int msg;
int out;
void reader(void) {
  while (flag != 1) { }
  out = msg;
}
`)
	infos := DetectSpinloops(m.Func("reader"))
	if len(infos) != 1 {
		t.Fatalf("spinloops = %d, want 1", len(infos))
	}
	if infos[0].Optimistic {
		t.Fatal("MP reader misclassified as optimistic")
	}
}

func TestSpinloopThroughPointer(t *testing.T) {
	// MCS-style: spin on a field of a node reached through a pointer.
	m := compile(t, `
struct node { int locked; struct node *next; };
void waitfor(struct node *n) {
  while (n->locked != 0) { }
}
`)
	infos := DetectSpinloops(m.Func("waitfor"))
	if len(infos) != 1 {
		t.Fatalf("spinloops = %d, want 1", len(infos))
	}
	locs := infos[0].ControlLocs
	if len(locs) != 1 || locs[0].Kind != alias.LocField || locs[0].Name != "node:0" {
		t.Fatalf("control locs = %v, want %%node:0", locs)
	}
}

func TestBoundedRetryLoopIsNotSpin(t *testing.T) {
	m := compile(t, `
int flag;
int tries(void) {
  int i = 0;
  while (i < 1000) {
    if (flag == 1) { return 1; }
    i = i + 1;
  }
  return 0;
}
`)
	if infos := DetectSpinloops(m.Func("tries")); len(infos) != 0 {
		t.Fatalf("bounded retry loop classified as spinloop: %d", len(infos))
	}
}

func TestConstantValue(t *testing.T) {
	if !ConstantValue(ir.Const(3)) {
		t.Error("literal not constant")
	}
	m := ir.NewModule("t")
	f := &ir.Func{Name: "f", RetTy: ir.Void}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(f)
	add := b.Bin(ir.Add, ir.Const(1), ir.Const(2))
	g := &ir.Global{GName: "g", Elem: ir.I64}
	if err := m.AddGlobal(g); err != nil {
		t.Fatal(err)
	}
	ld := b.Load(g)
	mix := b.Bin(ir.Add, add, ld)
	b.Ret(nil)
	if !ConstantValue(add) {
		t.Error("const arithmetic not constant")
	}
	if ConstantValue(ld) || ConstantValue(mix) {
		t.Error("load treated as constant")
	}
}

func TestInlineMergesLoops(t *testing.T) {
	// The spin load lives in a helper; without inlining the caller's
	// loop has no visible non-local dependency.
	src := `
int flag;
int read_flag(void) { return flag; }
void waiter(void) {
  while (read_flag() != 1) { }
}
`
	m := compile(t, src)
	if infos := DetectSpinloops(m.Func("waiter")); len(infos) != 0 {
		t.Fatalf("pre-inline detection found %d spinloops, want 0", len(infos))
	}
	n := Inline(m, DefaultInlineOptions())
	if n == 0 {
		t.Fatal("nothing inlined")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("post-inline module invalid: %v", err)
	}
	infos := DetectSpinloops(m.Func("waiter"))
	if len(infos) != 1 {
		t.Fatalf("post-inline spinloops = %d, want 1", len(infos))
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	m := compile(t, `
int fac(int n) {
  if (n <= 1) { return 1; }
  return n * fac(n - 1);
}
int use(void) { return fac(5); }
`)
	Inline(m, DefaultInlineOptions())
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	// The recursive call must still exist inside fac.
	recCall := false
	m.Func("fac").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee == "fac" {
			recCall = true
		}
	})
	if !recCall {
		t.Fatal("recursive function was inlined")
	}
}

func TestInlinePreservesSemantics(t *testing.T) {
	// Structural check: after inlining, the caller contains the callee's
	// arithmetic and no call.
	m := compile(t, `
int add3(int a, int b, int c) { return a + b + c; }
int caller(void) { return add3(1, 2, 3); }
`)
	Inline(m, DefaultInlineOptions())
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	called := false
	m.Func("caller").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee == "add3" {
			called = true
		}
	})
	if called {
		t.Fatal("call survived inlining")
	}
}

func TestAliasMapBuddies(t *testing.T) {
	m := compile(t, `
struct node { int state; int *key; };
struct node pool[4];
int flag;

void a(struct node *n) { n->state = 1; }
int b(void) { return pool[2].state; }
int c(void) { return flag; }
void d(void) { flag = 9; }
`)
	am := alias.BuildMap(m)
	// All node:0 accesses alias (pointer-based and array-based).
	var stateAccess *ir.Instr
	m.Func("a").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && alias.LocOf(in.Addr()).Kind == alias.LocField {
			stateAccess = in
		}
	})
	if stateAccess == nil {
		t.Fatal("no field store found")
	}
	buddies := am.Explore([]*ir.Instr{stateAccess})
	if len(buddies) != 2 {
		t.Fatalf("node:0 buddies = %d, want 2 (store in a, load in b)", len(buddies))
	}
	// Global flag accesses alias across functions.
	var flagLoad *ir.Instr
	m.Func("c").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad && alias.LocOf(in.Addr()).Kind == alias.LocGlobal {
			flagLoad = in
		}
	})
	buddies = am.Explore([]*ir.Instr{flagLoad})
	if len(buddies) != 2 {
		t.Fatalf("@flag buddies = %d, want 2", len(buddies))
	}
}
