package analysis

import (
	"testing"

	"repro/internal/appgen"
	"repro/internal/minic"
)

// BenchmarkSpinloopDetection measures end-to-end detection speed on a
// generated application (the scalability claim of Table 3 hinges on
// this staying near-linear in code size).
func BenchmarkSpinloopDetection(b *testing.B) {
	p := appgen.ProfileByName("memcached").Scaled(1)
	src := appgen.Generate(p, 7)
	res, err := minic.Compile("bench", src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, f := range res.Module.Funcs {
			total += len(DetectSpinloops(f))
		}
		if total < p.Spinloops {
			b.Fatalf("detected %d spinloops, want >= %d", total, p.Spinloops)
		}
	}
}

// BenchmarkInline measures the pre-analysis inliner.
func BenchmarkInline(b *testing.B) {
	p := appgen.ProfileByName("memcached").Scaled(4)
	src := appgen.Generate(p, 7)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		res, err := minic.Compile("bench", src)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		Inline(res.Module, DefaultInlineOptions())
	}
}
