// Package analysis implements the static analyses at the heart of the
// AtoMig pipeline (paper sections 3.3 and 3.5): dominator and natural
// loop computation, non-local access classification (a lightweight
// escape analysis), intra-procedural instruction-influence slicing,
// spinloop detection, optimistic-loop detection, and a pre-analysis
// function inliner for loops spanning multiple functions.
package analysis

import "repro/internal/ir"

// DomTree holds immediate dominators for a function's blocks.
type DomTree struct {
	fn   *ir.Func
	idom map[*ir.Block]*ir.Block
	// order is a reverse postorder numbering used by the iterative
	// dominator algorithm and reused by loop detection.
	order map[*ir.Block]int
	rpo   []*ir.Block
}

// Dominators computes the dominator tree of f using the classic
// iterative algorithm of Cooper, Harvey and Kennedy on a reverse
// postorder traversal.
func Dominators(f *ir.Func) *DomTree {
	entry := f.Entry()
	d := &DomTree{
		fn:    f,
		idom:  make(map[*ir.Block]*ir.Block, len(f.Blocks)),
		order: make(map[*ir.Block]int, len(f.Blocks)),
	}
	// Postorder DFS from entry.
	seen := make(map[*ir.Block]bool, len(f.Blocks))
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(entry)
	// Reverse postorder.
	for i := len(post) - 1; i >= 0; i-- {
		b := post[i]
		d.order[b] = len(d.rpo)
		d.rpo = append(d.rpo, b)
	}
	preds := f.Preds()
	d.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range d.rpo {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range preds[b] {
				if d.idom[p] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *DomTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for d.order[a] > d.order[b] {
			a = d.idom[a]
		}
		for d.order[b] > d.order[a] {
			b = d.idom[b]
		}
	}
	return a
}

// Dominates reports whether a dominates b. Every block dominates itself.
// Unreachable blocks are dominated by nothing and dominate nothing
// (other than themselves).
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	if a == b {
		return true
	}
	if _, ok := d.idom[b]; !ok {
		return false // b unreachable
	}
	entry := d.fn.Entry()
	for b != entry {
		b = d.idom[b]
		if b == a {
			return true
		}
		if b == nil {
			return false
		}
	}
	return a == entry
}

// Reachable reports whether b is reachable from the entry block.
func (d *DomTree) Reachable(b *ir.Block) bool {
	_, ok := d.order[b]
	return ok
}

// RPO returns the blocks in reverse postorder.
func (d *DomTree) RPO() []*ir.Block { return d.rpo }
