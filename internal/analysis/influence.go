package analysis

import "repro/internal/ir"

// Slice is the result of a backward instruction-influence query: the set
// of instructions that may influence a value, whether any non-local
// memory feeds it, and the specific non-local reads encountered.
// This implements the paper's "instruction influence analysis" (section
// 3.5): a fine-grained intra-procedural dataflow over loads and stores,
// with results cached for reuse across queries.
type Slice struct {
	Instrs map[*ir.Instr]bool
	// NonLocalReads are the reading accesses (loads, cmpxchg, rmw) of
	// non-local memory in the slice; these become spin controls when the
	// slice feeds a spinloop exit condition.
	NonLocalReads map[*ir.Instr]bool
	HasNonLocal   bool
}

// Influence computes and caches backward slices within one function.
type Influence struct {
	fn    *ir.Func
	loc   *Locality
	cache map[*ir.Instr]*Slice
}

// NewInfluence returns an influence analyzer for f using the locality
// results loc.
func NewInfluence(f *ir.Func, loc *Locality) *Influence {
	return &Influence{fn: f, loc: loc, cache: make(map[*ir.Instr]*Slice)}
}

// Locality exposes the underlying locality analysis.
func (inf *Influence) Locality() *Locality { return inf.loc }

// SliceOf computes the backward slice of value v. Slices are function
// scoped: dataflow through non-escaping local slots is chased to the
// stores that feed them anywhere in the function; reads of non-local
// memory terminate a chain (their value is determined by other threads).
func (inf *Influence) SliceOf(v ir.Value) *Slice {
	root, ok := v.(*ir.Instr)
	if !ok {
		s := &Slice{Instrs: map[*ir.Instr]bool{}, NonLocalReads: map[*ir.Instr]bool{}}
		if _, isParam := v.(*ir.Param); isParam {
			// A raw parameter value is caller-provided, not shared memory;
			// it does not constitute a non-local memory dependency.
			return s
		}
		return s
	}
	if s, ok := inf.cache[root]; ok {
		return s
	}
	s := &Slice{Instrs: map[*ir.Instr]bool{}, NonLocalReads: map[*ir.Instr]bool{}}
	// Insert in cache before computing so cyclic dataflow (loop-carried
	// dependencies through local slots) terminates; the shared maps are
	// filled in place.
	inf.cache[root] = s
	work := []*ir.Instr{root}
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		if s.Instrs[in] {
			continue
		}
		s.Instrs[in] = true
		switch in.Op {
		case ir.OpLoad, ir.OpCmpXchg, ir.OpRMW:
			addr := in.Args[0]
			if inf.loc.NonLocal(addr) {
				s.HasNonLocal = true
				s.NonLocalReads[in] = true
				// Do not chase through shared memory: its content is
				// governed by other threads, which is exactly the
				// dependency we wanted to find. Do follow the address
				// computation and the other operands.
				for _, a := range in.Args {
					if ai, ok := a.(*ir.Instr); ok {
						work = append(work, ai)
					}
				}
				continue
			}
			// Local slot: chase the stores that may feed this read.
			for _, st := range inf.loc.LocalStoresTo(addr) {
				work = append(work, st)
			}
			for _, a := range in.Args {
				if ai, ok := a.(*ir.Instr); ok {
					work = append(work, ai)
				}
			}
		case ir.OpCall:
			// The result of a call may depend on anything; treat calls to
			// non-pure builtins and functions as non-local influences so a
			// loop spinning on f() is (conservatively) recognized as
			// externally controlled only through actual memory reads
			// inside f after inlining. Before inlining, a call result is
			// an unknown: record no non-local read but follow arguments.
			for _, a := range in.Args {
				if ai, ok := a.(*ir.Instr); ok {
					work = append(work, ai)
				}
			}
			if in.Callee == "nondet" || in.Callee == "tid" {
				continue
			}
		default:
			for _, a := range in.Args {
				if ai, ok := a.(*ir.Instr); ok {
					work = append(work, ai)
				}
			}
		}
	}
	return s
}

// ConstantValue reports whether v is a compile-time constant expression
// (a literal, or arithmetic over literals). A store of such a value
// writes the same value on every loop iteration and therefore cannot
// influence an exit condition across iterations (paper's Spinloop 2
// example: do { l_flag = DONE; } while (l_flag != flag)).
func ConstantValue(v ir.Value) bool {
	switch x := v.(type) {
	case *ir.ConstInt:
		return true
	case *ir.Instr:
		switch x.Op {
		case ir.OpBin, ir.OpICmp:
			return ConstantValue(x.Args[0]) && ConstantValue(x.Args[1])
		}
		return false
	}
	return false
}
