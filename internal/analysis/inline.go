package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// InlineOptions controls the pre-analysis inliner.
type InlineOptions struct {
	// MaxCalleeInstrs bounds the size of functions considered for
	// inlining. Zero selects the default.
	MaxCalleeInstrs int
	// Rounds bounds the number of bottom-up passes (nested helpers need
	// one round per nesting level). Zero selects the default.
	Rounds int
}

// DefaultInlineOptions returns the pipeline defaults.
func DefaultInlineOptions() InlineOptions {
	return InlineOptions{MaxCalleeInstrs: 200, Rounds: 3}
}

// Inline performs conservative function inlining on the module so that
// loops spanning multiple functions become visible to the
// intra-procedural spinloop analysis (paper section 3.5: "we inline
// functions where possible beforehand"). It returns the number of call
// sites inlined. Recursive functions and functions marked NoInline are
// never inlined.
func Inline(m *ir.Module, opts InlineOptions) int {
	if opts.MaxCalleeInstrs == 0 {
		opts.MaxCalleeInstrs = 200
	}
	if opts.Rounds == 0 {
		opts.Rounds = 3
	}
	recursive := findRecursive(m)
	total := 0
	for round := 0; round < opts.Rounds; round++ {
		n := 0
		for _, f := range m.Funcs {
			n += inlineInto(m, f, recursive, opts.MaxCalleeInstrs)
		}
		total += n
		if n == 0 {
			break
		}
	}
	return total
}

// findRecursive marks every function on a call-graph cycle.
func findRecursive(m *ir.Module) map[*ir.Func]bool {
	callees := make(map[*ir.Func][]*ir.Func)
	for _, f := range m.Funcs {
		seen := map[*ir.Func]bool{}
		f.Instrs(func(in *ir.Instr) {
			if in.Op != ir.OpCall {
				return
			}
			if g := m.Func(in.Callee); g != nil && !seen[g] {
				seen[g] = true
				callees[f] = append(callees[f], g)
			}
		})
	}
	recursive := make(map[*ir.Func]bool)
	// For each function, check whether it can reach itself.
	for _, f := range m.Funcs {
		if recursive[f] {
			continue
		}
		seen := map[*ir.Func]bool{}
		stack := append([]*ir.Func(nil), callees[f]...)
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if g == f {
				recursive[f] = true
				break
			}
			if seen[g] {
				continue
			}
			seen[g] = true
			stack = append(stack, callees[g]...)
		}
	}
	return recursive
}

func inlineInto(m *ir.Module, f *ir.Func, recursive map[*ir.Func]bool, maxInstrs int) int {
	n := 0
	// Collect candidate call sites first; inlining mutates the block
	// list.
	var sites []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op != ir.OpCall {
			return
		}
		g := m.Func(in.Callee)
		if g == nil || g == f || g.NoInline || recursive[g] {
			return
		}
		if g.NumInstrs() > maxInstrs {
			return
		}
		sites = append(sites, in)
	})
	for _, call := range sites {
		inlineCall(m, f, call)
		n++
	}
	return n
}

// inlineCall splices the body of the callee in place of the call.
func inlineCall(m *ir.Module, f *ir.Func, call *ir.Instr) {
	g := m.Func(call.Callee)
	blk := call.Blk
	// Locate the call within its block.
	pos := -1
	for i, in := range blk.Instrs {
		if in == call {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic(fmt.Sprintf("ir: call %s not found in its block", call))
	}
	// Split the block: blk keeps the prefix, cont receives the suffix.
	cont := f.NewBlock(blk.Name + ".cont" + fmt.Sprint(call.ID))
	cont.Instrs = append(cont.Instrs, blk.Instrs[pos+1:]...)
	for _, in := range cont.Instrs {
		in.Blk = cont
	}
	blk.Instrs = blk.Instrs[:pos]

	// Return slot for non-void callees.
	var retSlot *ir.Instr
	if _, isVoid := g.RetTy.(*ir.VoidType); !isVoid {
		retSlot = &ir.Instr{
			Op: ir.OpAlloca, ID: f.NextID(), Blk: blk,
			Ty: ir.PointerTo(g.RetTy), AllocElem: g.RetTy,
		}
		blk.Instrs = append(blk.Instrs, retSlot)
	}

	// Clone callee blocks.
	blockMap := make(map[*ir.Block]*ir.Block, len(g.Blocks))
	for _, b := range g.Blocks {
		blockMap[b] = f.NewBlock(fmt.Sprintf("%s.%s.%d", g.Name, b.Name, call.ID))
	}
	instrMap := make(map[*ir.Instr]*ir.Instr, g.NumInstrs())
	mapVal := func(v ir.Value) ir.Value {
		switch x := v.(type) {
		case *ir.Param:
			return call.Args[x.Index]
		case *ir.Instr:
			if ni, ok := instrMap[x]; ok {
				return ni
			}
			return x
		}
		return v
	}
	// Pass 1: create instruction shells so cross-block forward references
	// (e.g. a loop condition using a value from a later-listed block)
	// resolve during argument mapping.
	type retStore struct {
		ni   *ir.Instr
		orig ir.Value
	}
	var retStores []retStore
	for _, b := range g.Blocks {
		nb := blockMap[b]
		for _, in := range b.Instrs {
			if in.Op == ir.OpRet {
				if retSlot != nil && len(in.Args) == 1 {
					st := &ir.Instr{Op: ir.OpStore, ID: f.NextID(), Blk: nb, Ty: ir.Void}
					retStores = append(retStores, retStore{ni: st, orig: in.Args[0]})
					nb.Instrs = append(nb.Instrs, st)
				}
				br := &ir.Instr{Op: ir.OpBr, ID: f.NextID(), Blk: nb, Ty: ir.Void, Then: cont}
				nb.Instrs = append(nb.Instrs, br)
				continue
			}
			ni := &ir.Instr{
				Op: in.Op, ID: f.NextID(), Blk: nb, Ty: in.Ty,
				AllocElem: in.AllocElem, Ord: in.Ord, Volatile: in.Volatile,
				BinKind: in.BinKind, Pred: in.Pred, RMW: in.RMW,
				GEPBase: in.GEPBase, Callee: in.Callee, Marks: in.Marks,
			}
			if in.Path != nil {
				ni.Path = append([]ir.GEPStep(nil), in.Path...)
			}
			if in.Then != nil {
				ni.Then = blockMap[in.Then]
			}
			if in.Else != nil {
				ni.Else = blockMap[in.Else]
			}
			instrMap[in] = ni
			nb.Instrs = append(nb.Instrs, ni)
		}
	}
	// Pass 2: fill in operands.
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			ni, ok := instrMap[in]
			if !ok || len(in.Args) == 0 {
				continue
			}
			ni.Args = make([]ir.Value, len(in.Args))
			for j, a := range in.Args {
				ni.Args[j] = mapVal(a)
			}
		}
	}
	for _, rs := range retStores {
		rs.ni.Args = []ir.Value{retSlot, mapVal(rs.orig)}
	}

	// Jump into the inlined body.
	br := &ir.Instr{Op: ir.OpBr, ID: f.NextID(), Blk: blk, Ty: ir.Void, Then: blockMap[g.Entry()]}
	blk.Instrs = append(blk.Instrs, br)

	// Replace uses of the call result with a load of the return slot.
	if retSlot != nil {
		ld := &ir.Instr{
			Op: ir.OpLoad, ID: f.NextID(), Blk: cont, Ty: g.RetTy,
			Args: []ir.Value{retSlot},
		}
		cont.Instrs = append([]*ir.Instr{ld}, cont.Instrs...)
		f.Instrs(func(in *ir.Instr) {
			if in == ld {
				return
			}
			for j, a := range in.Args {
				if a == call {
					in.Args[j] = ld
				}
			}
		})
	}
}
