package analysis

import "repro/internal/ir"

// Loop is a natural loop: a header with an incoming back edge, plus all
// blocks that can reach the back edge without passing through the header
// (paper section 3.3's loop definition).
type Loop struct {
	Header *ir.Block
	// Blocks is the loop body including the header.
	Blocks map[*ir.Block]bool
	// ExitBranches are the conditional branch instructions inside the
	// loop with at least one successor outside the loop. Their conditions
	// are the loop's exit conditions. (Because natural-loop membership
	// requires a path back to the header, every exit from the loop is
	// decided by such a conditional branch.)
	ExitBranches []*ir.Instr
}

// Contains reports whether the instruction lies inside the loop body.
func (l *Loop) Contains(in *ir.Instr) bool { return l.Blocks[in.Blk] }

// FindLoops returns the natural loops of f, one per loop header (back
// edges sharing a header are merged).
func FindLoops(f *ir.Func, dom *DomTree) []*Loop {
	byHeader := make(map[*ir.Block]*Loop)
	var headers []*ir.Block
	for _, b := range f.Blocks {
		if !dom.Reachable(b) {
			continue
		}
		for _, s := range b.Succs() {
			if !dom.Dominates(s, b) {
				continue // not a back edge
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
				byHeader[s] = l
				headers = append(headers, s)
			}
			collectLoopBody(l, b, f.Preds())
		}
	}
	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		l := byHeader[h]
		findExitBranches(l)
		loops = append(loops, l)
	}
	return loops
}

// collectLoopBody walks predecessors backwards from the back-edge tail,
// stopping at the header.
func collectLoopBody(l *Loop, tail *ir.Block, preds map[*ir.Block][]*ir.Block) {
	stack := []*ir.Block{tail}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l.Blocks[b] {
			continue
		}
		l.Blocks[b] = true
		for _, p := range preds[b] {
			stack = append(stack, p)
		}
	}
}

func findExitBranches(l *Loop) {
	// Walk the function's block list rather than the membership set so the
	// branch order (and everything downstream: control order, seed order,
	// ported output) is deterministic.
	for _, b := range l.Header.Fn.Blocks {
		if !l.Blocks[b] {
			continue
		}
		t := b.Terminator()
		if t == nil || t.Op != ir.OpBr || t.Else == nil {
			continue
		}
		if !l.Blocks[t.Then] || !l.Blocks[t.Else] {
			l.ExitBranches = append(l.ExitBranches, t)
		}
	}
}
