package analysis

import "repro/internal/ir"

// prov describes where a pointer value may point: a set of local
// allocation sites (allocas and mallocs in this function) and/or
// external memory (globals, caller memory reached through parameters,
// memory returned by unknown calls).
type prov struct {
	sites    map[*ir.Instr]bool
	external bool
}

func (p *prov) clone() *prov {
	np := &prov{external: p.external}
	if len(p.sites) > 0 {
		np.sites = make(map[*ir.Instr]bool, len(p.sites))
		for s := range p.sites {
			np.sites[s] = true
		}
	}
	return np
}

// merge unions o into p, reporting whether p changed.
func (p *prov) merge(o *prov) bool {
	changed := false
	if o.external && !p.external {
		p.external = true
		changed = true
	}
	for s := range o.sites {
		if !p.sites[s] {
			if p.sites == nil {
				p.sites = make(map[*ir.Instr]bool)
			}
			p.sites[s] = true
			changed = true
		}
	}
	return changed
}

var externalProv = &prov{external: true}
var emptyProv = &prov{}

// Locality classifies memory addresses in a function as local (a
// non-escaping stack or heap allocation of this function) or non-local
// (may be accessed from outside the function). This implements the
// paper's notion of non-local accesses: globals, memory reached through
// pointer arguments, and stack variables whose address escapes.
type Locality struct {
	fn      *ir.Func
	provs   map[*ir.Instr]*prov
	escaped map[*ir.Instr]bool
	// stores lists all instructions that write memory, used to resolve
	// loads from local sites during slicing.
	stores []*ir.Instr
}

// AnalyzeLocality computes locality information for f.
func AnalyzeLocality(f *ir.Func) *Locality {
	l := &Locality{
		fn:      f,
		provs:   make(map[*ir.Instr]*prov),
		escaped: make(map[*ir.Instr]bool),
	}
	var instrs []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		instrs = append(instrs, in)
		if in.Writes() {
			l.stores = append(l.stores, in)
		}
	})
	// Fixpoint over provenance; loads through local slots need stores
	// that may appear later in layout order, so iterate until stable.
	for changed := true; changed; {
		changed = false
		for _, in := range instrs {
			if l.update(in) {
				changed = true
			}
		}
	}
	// Escape fixpoint: a site escapes if its address is stored into
	// external or escaped memory, passed to a call, or returned.
	for changed := true; changed; {
		changed = false
		for _, in := range instrs {
			if l.updateEscape(in) {
				changed = true
			}
		}
	}
	return l
}

// valueProv returns the provenance of any value operand.
func (l *Locality) valueProv(v ir.Value) *prov {
	switch x := v.(type) {
	case *ir.ConstInt:
		return emptyProv
	case *ir.Global:
		return externalProv
	case *ir.Param:
		return externalProv
	case *ir.FuncRef:
		return emptyProv
	case *ir.Instr:
		if p, ok := l.provs[x]; ok {
			return p
		}
		return emptyProv
	}
	return externalProv
}

func (l *Locality) update(in *ir.Instr) bool {
	p := l.provs[in]
	if p == nil {
		p = &prov{}
		l.provs[in] = p
	}
	switch in.Op {
	case ir.OpAlloca:
		np := &prov{sites: map[*ir.Instr]bool{in: true}}
		return p.merge(np)
	case ir.OpCall:
		if in.Callee == "malloc" {
			np := &prov{sites: map[*ir.Instr]bool{in: true}}
			return p.merge(np)
		}
		if ir.IsPtr(in.Type()) {
			return p.merge(externalProv)
		}
		return false
	case ir.OpGEP:
		return p.merge(l.valueProv(in.Args[0]))
	case ir.OpBin:
		changed := p.merge(l.valueProv(in.Args[0]))
		if p.merge(l.valueProv(in.Args[1])) {
			changed = true
		}
		return changed
	case ir.OpLoad, ir.OpCmpXchg, ir.OpRMW:
		// The loaded value may point wherever values stored to the loaded
		// location point.
		addrProv := l.valueProv(in.Args[0])
		changed := false
		if addrProv.external {
			changed = p.merge(externalProv)
		}
		if len(addrProv.sites) == 0 {
			return changed
		}
		for _, st := range l.stores {
			sp := l.valueProv(st.Args[0])
			if !provsIntersect(addrProv, sp) {
				continue
			}
			if v := storedValue(st); v != nil {
				if p.merge(l.valueProv(v)) {
					changed = true
				}
			}
		}
		return changed
	}
	return false
}

// storedValue returns the value a writing instruction stores, or nil if
// it stores a derived value with no pointer provenance of its own (RMW
// arithmetic results).
func storedValue(st *ir.Instr) ir.Value {
	switch st.Op {
	case ir.OpStore:
		return st.Args[1]
	case ir.OpCmpXchg:
		return st.Args[2]
	case ir.OpRMW:
		if st.RMW == ir.RMWXchg {
			return st.Args[1]
		}
		return nil
	}
	return nil
}

// provsIntersect reports whether two address provenances may refer to
// the same local site (external-external intersection does not matter
// for load resolution, which only chases local slots).
func provsIntersect(a, b *prov) bool {
	if len(a.sites) > len(b.sites) {
		a, b = b, a
	}
	for s := range a.sites {
		if b.sites[s] {
			return true
		}
	}
	return false
}

func (l *Locality) escapeSites(p *prov) bool {
	changed := false
	for s := range p.sites {
		if !l.escaped[s] {
			l.escaped[s] = true
			changed = true
		}
	}
	return changed
}

func (l *Locality) updateEscape(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpStore, ir.OpCmpXchg:
		v := storedValue(in)
		vp := l.valueProv(v)
		if len(vp.sites) == 0 {
			return false
		}
		ap := l.valueProv(in.Args[0])
		// Storing a local address into external or escaped memory makes
		// it reachable from outside the function.
		target := ap.external
		for s := range ap.sites {
			if l.escaped[s] {
				target = true
			}
		}
		if target {
			return l.escapeSites(vp)
		}
		return false
	case ir.OpRMW:
		if in.RMW == ir.RMWXchg {
			vp := l.valueProv(in.Args[1])
			if len(vp.sites) > 0 {
				ap := l.valueProv(in.Args[0])
				if ap.external {
					return l.escapeSites(vp)
				}
			}
		}
		return false
	case ir.OpCall:
		changed := false
		for _, a := range in.Args {
			if l.escapeSites(l.valueProv(a)) {
				changed = true
			}
		}
		return changed
	case ir.OpRet:
		if len(in.Args) == 1 {
			return l.escapeSites(l.valueProv(in.Args[0]))
		}
	}
	return false
}

// NonLocal reports whether the given address value may denote memory
// accessible from outside the function.
func (l *Locality) NonLocal(addr ir.Value) bool {
	p := l.valueProv(addr)
	if p.external {
		return true
	}
	if len(p.sites) == 0 {
		// No known provenance at all (e.g. a raw integer used as an
		// address): be conservative.
		_, isConst := addr.(*ir.ConstInt)
		return !isConst
	}
	for s := range p.sites {
		if l.escaped[s] {
			return true
		}
	}
	return false
}

// LocalStoresTo returns the writing instructions that may write the
// local memory designated by addr. Used by the influence analysis to
// chase dataflow through stack slots.
func (l *Locality) LocalStoresTo(addr ir.Value) []*ir.Instr {
	ap := l.valueProv(addr)
	if len(ap.sites) == 0 {
		return nil
	}
	var out []*ir.Instr
	for _, st := range l.stores {
		if provsIntersect(ap, l.valueProv(st.Args[0])) {
			out = append(out, st)
		}
	}
	return out
}

// Escaped reports whether the allocation site (an alloca or malloc
// instruction) escapes the function.
func (l *Locality) Escaped(site *ir.Instr) bool { return l.escaped[site] }
