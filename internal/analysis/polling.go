package analysis

import "repro/internal/ir"

// This file implements the two detection extensions the paper's
// discussion section proposes beyond the shipped pipeline:
//
//  1. Timing-based polling loops: "synchronizing loops that choose to
//     terminate after a fixed number of iterations" escape the strict
//     spinloop definition. Treating every such loop as a spinloop would
//     drown the pipeline in false positives (any bounded search loop
//     over a global qualifies), but loops that also contain an explicit
//     wait hint — a pause/yield call, the idiom of bounded backoff — are
//     synchronization with high confidence.
//
//  2. Compiler barriers: a compiler barrier (asm volatile("":::"memory"))
//     compiles to no instruction at all, yet a developer placed it to
//     order *something*. The shared accesses around one are therefore
//     likely synchronization accesses, and make good additional seeds
//     for alias exploration.

// waitHintCallees are builtins that signal the thread is waiting for
// another thread (cpu_relax, sched_yield, nanosleep idioms).
var waitHintCallees = map[string]bool{
	"pause": true,
	"yield": true,
}

// DetectPollingLoops finds loops that fail the strict spinloop
// definition (they have a local exit, e.g. a bounded retry counter) but
// contain a wait hint and exit conditions with non-local dependencies.
// The returned SpinloopInfo carries the non-local reads to be treated
// as spin controls; polling loops are never classified optimistic.
func DetectPollingLoops(f *ir.Func) []*SpinloopInfo {
	dom := Dominators(f)
	loops := FindLoops(f, dom)
	if len(loops) == 0 {
		return nil
	}
	locality := AnalyzeLocality(f)
	inf := NewInfluence(f, locality)
	strict := make(map[*ir.Block]bool)
	for _, info := range DetectSpinloops(f) {
		strict[info.Loop.Header] = true
	}
	var out []*SpinloopInfo
	for _, loop := range loops {
		if strict[loop.Header] || len(loop.ExitBranches) == 0 {
			continue
		}
		if !loopHasWaitHint(loop) {
			continue
		}
		info := &SpinloopInfo{Fn: f, Loop: loop}
		seen := map[*ir.Instr]bool{}
		for _, br := range loop.ExitBranches {
			s := inf.SliceOf(br.Args[0])
			for rd := range s.NonLocalReads {
				if !seen[rd] {
					seen[rd] = true
					info.Controls = append(info.Controls, rd)
				}
			}
		}
		if len(info.Controls) == 0 {
			continue
		}
		out = append(out, info)
	}
	return out
}

func loopHasWaitHint(loop *Loop) bool {
	for b := range loop.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && waitHintCallees[in.Callee] {
				return true
			}
		}
	}
	return false
}

// CompilerBarrierSeeds returns the shared memory accesses adjacent to
// compiler-barrier markers: for each call to @compiler_barrier, every
// non-local access in the same basic block. These become additional
// seeds for alias exploration.
func CompilerBarrierSeeds(f *ir.Func) []*ir.Instr {
	hasBarrier := false
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee == "compiler_barrier" {
			hasBarrier = true
		}
	})
	if !hasBarrier {
		return nil
	}
	locality := AnalyzeLocality(f)
	var seeds []*ir.Instr
	for _, b := range f.Blocks {
		barrierHere := false
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee == "compiler_barrier" {
				barrierHere = true
				break
			}
		}
		if !barrierHere {
			continue
		}
		for _, in := range b.Instrs {
			if in.IsMemAccess() && locality.NonLocal(in.Args[0]) {
				seeds = append(seeds, in)
			}
		}
	}
	return seeds
}
