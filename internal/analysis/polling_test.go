package analysis

import (
	"testing"

	"repro/internal/alias"
)

func TestDetectPollingLoops(t *testing.T) {
	m := compile(t, `
int flag;
int unrelated;

// Bounded retry with a wait hint: the extension flags it.
int poll_with_hint(void) {
  for (int i = 0; i < 1000; i = i + 1) {
    if (flag == 1) { return 1; }
    pause();
  }
  return 0;
}

// Bounded retry without a hint: a plain search loop, not flagged.
int poll_without_hint(void) {
  for (int i = 0; i < 1000; i = i + 1) {
    if (flag == 1) { return 1; }
  }
  return 0;
}

// A strict spinloop with a pause: stays a spinloop, not double-reported.
void strict_spin(void) {
  while (flag != 1) { pause(); }
}

// A hinted loop with purely local exits: nothing to mark.
void local_only(void) {
  for (int i = 0; i < 10; i = i + 1) { pause(); }
}
`)
	cases := []struct {
		fn   string
		want int
	}{
		{"poll_with_hint", 1},
		{"poll_without_hint", 0},
		{"strict_spin", 0}, // covered by the strict detector instead
		{"local_only", 0},
	}
	for _, c := range cases {
		t.Run(c.fn, func(t *testing.T) {
			got := DetectPollingLoops(m.Func(c.fn))
			if len(got) != c.want {
				t.Fatalf("polling loops = %d, want %d", len(got), c.want)
			}
			if c.want == 1 {
				info := got[0]
				if len(info.Controls) == 0 {
					t.Fatal("no controls recorded")
				}
				for _, ctl := range info.Controls {
					if loc := alias.LocOf(ctl.Addr()); loc.Name != "flag" {
						t.Errorf("control loc = %v", loc)
					}
				}
			}
		})
	}
	// The strict detector still owns strict_spin.
	if got := DetectSpinloops(m.Func("strict_spin")); len(got) != 1 {
		t.Fatalf("strict spin detection = %d", len(got))
	}
}

func TestCompilerBarrierSeeds(t *testing.T) {
	m := compile(t, `
int a;
int b;
int c;

void with_barrier(void) {
  a = 1;
  __asm__(":::memory");
  b = 2;
}

void without_barrier(void) {
  c = 3;
}
`)
	seeds := CompilerBarrierSeeds(m.Func("with_barrier"))
	if len(seeds) != 2 {
		t.Fatalf("seeds = %d, want 2 (stores to a and b)", len(seeds))
	}
	names := map[string]bool{}
	for _, s := range seeds {
		names[alias.LocOf(s.Addr()).Name] = true
	}
	if !names["a"] || !names["b"] {
		t.Fatalf("seed locations = %v", names)
	}
	if seeds := CompilerBarrierSeeds(m.Func("without_barrier")); len(seeds) != 0 {
		t.Fatalf("barrier-free function produced %d seeds", len(seeds))
	}
}
