package analysis

import (
	"sort"

	"repro/internal/alias"
	"repro/internal/ir"
)

// SpinloopInfo describes one detected spinloop (or optimistic loop) and
// the accesses AtoMig must transform for it.
type SpinloopInfo struct {
	Fn   *ir.Func
	Loop *Loop
	// Controls are the non-local reads that the loop's exit conditions
	// depend on — the spin controls (paper section 3.3).
	Controls []*ir.Instr
	// ControlLocs are the location descriptors of the controls, used for
	// alias exploration and for distinguishing optimistic reads.
	ControlLocs []alias.Loc
	// Optimistic reports whether the spinloop is an optimistic loop: it
	// reads non-local memory other than its spin controls and those
	// reads are used outside the loop (the sequence-lock pattern).
	Optimistic bool
	// OptimisticReads are the uncontrolled non-local reads inside the
	// loop whose values escape the loop.
	OptimisticReads []*ir.Instr
}

// DetectSpinloops finds all spinloops in f. A loop qualifies when
// (1) every exit condition has a non-local dependency, and
// (2) every store in the loop whose value has no non-local dependency
// either writes a constant (and so cannot change the exit outcome) or
// does not feed any exit condition.
func DetectSpinloops(f *ir.Func) []*SpinloopInfo {
	dom := Dominators(f)
	loops := FindLoops(f, dom)
	if len(loops) == 0 {
		return nil
	}
	locality := AnalyzeLocality(f)
	inf := NewInfluence(f, locality)
	var out []*SpinloopInfo
	for _, loop := range loops {
		if info := classifyLoop(f, loop, inf); info != nil {
			out = append(out, info)
		}
	}
	return out
}

func classifyLoop(f *ir.Func, loop *Loop, inf *Influence) *SpinloopInfo {
	if len(loop.ExitBranches) == 0 {
		// An infinite loop with no exits has no conditions to protect.
		return nil
	}
	union := &Slice{Instrs: map[*ir.Instr]bool{}, NonLocalReads: map[*ir.Instr]bool{}}
	for _, br := range loop.ExitBranches {
		cond := br.Args[0]
		s := inf.SliceOf(cond)
		if !s.HasNonLocal {
			return nil // exit condition with purely local dependencies
		}
		for in := range s.Instrs {
			union.Instrs[in] = true
		}
		for in := range s.NonLocalReads {
			union.NonLocalReads[in] = true
		}
	}
	// Condition (2): a store inside the loop that feeds an exit condition
	// and whose stored value has no non-local dependency must be writing
	// a constant; otherwise the loop can terminate on its own (e.g. the
	// i++ of a bounded retry loop).
	locality := inf.Locality()
	for b := range loop.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpStore {
				continue
			}
			if !union.Instrs[in] {
				continue // does not influence any exit condition
			}
			val := in.Args[1]
			vs := inf.SliceOf(val)
			if vs.HasNonLocal {
				continue // value tracks other threads: allowed
			}
			if ConstantValue(val) {
				continue // same value every iteration: cannot influence
			}
			// Stores through non-local pointers do not affect the local
			// exit computation chain directly; only local-slot stores can
			// silently count iterations.
			if locality.NonLocal(in.Args[0]) {
				continue
			}
			return nil
		}
	}
	// Spin controls: the non-local reads feeding exit conditions that are
	// themselves inside the loop. (Reads before the loop cannot re-sample
	// other threads' writes and need no transformation here; alias
	// exploration still reaches their locations.)
	info := &SpinloopInfo{Fn: f, Loop: loop}
	for in := range union.NonLocalReads {
		info.Controls = append(info.Controls, in)
	}
	// The slice union is a set; order the controls by instruction ID so
	// marking, seeding, and the ported output are deterministic.
	sort.Slice(info.Controls, func(i, j int) bool { return info.Controls[i].ID < info.Controls[j].ID })
	seenLoc := make(map[alias.Loc]bool)
	for _, in := range info.Controls {
		loc := alias.LocOf(in.Addr())
		if loc.Shared() && !seenLoc[loc] {
			seenLoc[loc] = true
			info.ControlLocs = append(info.ControlLocs, loc)
		}
	}
	detectOptimistic(f, info, inf, seenLoc)
	return info
}

// detectOptimistic checks the paper's optimistic-loop criterion: the
// spinloop contains a read of non-local memory distinct from all spin
// controls, whose value is used by an operation outside the loop.
func detectOptimistic(f *ir.Func, info *SpinloopInfo, inf *Influence, controlLocs map[alias.Loc]bool) {
	locality := inf.Locality()
	controlSet := make(map[*ir.Instr]bool, len(info.Controls))
	for _, c := range info.Controls {
		controlSet[c] = true
	}
	var candidates []*ir.Instr
	for _, b := range f.Blocks {
		if !info.Loop.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			if !in.Reads() || controlSet[in] {
				continue
			}
			if !locality.NonLocal(in.Args[0]) {
				continue
			}
			loc := alias.LocOf(in.Addr())
			if loc.Shared() && controlLocs[loc] {
				continue // another access to a spin-control location
			}
			candidates = append(candidates, in)
		}
	}
	if len(candidates) == 0 {
		return
	}
	for _, c := range candidates {
		if usedOutsideLoop(f, c, info.Loop, locality) {
			info.Optimistic = true
			info.OptimisticReads = append(info.OptimisticReads, c)
		}
	}
}

// usedOutsideLoop reports whether the value produced by read escapes the
// loop: some instruction outside the loop consumes it, directly or via a
// store to a local slot that is reloaded outside.
func usedOutsideLoop(f *ir.Func, read *ir.Instr, loop *Loop, locality *Locality) bool {
	tainted := map[*ir.Instr]bool{read: true}
	// Fixpoint forward taint. Uses are found by scanning (the IR keeps no
	// use lists); local-slot stores propagate taint to matching loads.
	for changed := true; changed; {
		changed = false
		escaped := false
		f.Instrs(func(in *ir.Instr) {
			if tainted[in] {
				return
			}
			for _, a := range in.Args {
				ai, ok := a.(*ir.Instr)
				if !ok || !tainted[ai] {
					continue
				}
				// Address operands of reads outside the loop do not carry
				// the optimistic value itself, but any data use does.
				tainted[in] = true
				changed = true
				if !loop.Blocks[in.Blk] {
					escaped = true
				}
				return
			}
			// Loads from local slots written by tainted stores.
			if in.Op == ir.OpLoad && !locality.NonLocal(in.Args[0]) {
				for _, st := range locality.LocalStoresTo(in.Args[0]) {
					if tainted[st] {
						tainted[in] = true
						changed = true
						if !loop.Blocks[in.Blk] {
							escaped = true
						}
						return
					}
				}
			}
		})
		if escaped {
			return true
		}
	}
	// A tainted instruction may itself sit outside the loop even when no
	// new taint was added in the final round.
	for in := range tainted {
		if !loop.Blocks[in.Blk] {
			return true
		}
	}
	return false
}
