package appgen

import (
	"strings"
	"testing"

	"repro/internal/atomig"
	"repro/internal/minic"
)

func TestGenerateDeterministic(t *testing.T) {
	p := ProfileByName("memcached").Scaled(1)
	a := Generate(p, 42)
	b := Generate(p, 42)
	if a != b {
		t.Fatal("generation is not deterministic")
	}
	c := Generate(p, 43)
	if a == c {
		t.Fatal("different seeds produced identical source")
	}
}

func TestGenerateCompilesAndMeetsShape(t *testing.T) {
	for _, prof := range Profiles() {
		p := prof.Scaled(100)
		t.Run(p.Name, func(t *testing.T) {
			src := Generate(p, 7)
			if got := strings.Count(src, "\n"); got < p.SLOC {
				t.Fatalf("generated %d lines, want >= %d", got, p.SLOC)
			}
			res, err := minic.Compile(p.Name, src)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := atomig.Port(res.Module, atomig.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			// Every planted pattern must be detected; filler must not be.
			if rep.Spinloops < p.Spinloops {
				t.Errorf("detected %d spinloops, planted %d", rep.Spinloops, p.Spinloops)
			}
			if rep.Optiloops < p.Optiloops {
				t.Errorf("detected %d optiloops, planted %d", rep.Optiloops, p.Optiloops)
			}
			// Tolerate a small factor of extra detections (aliasing of the
			// shared pool can merge/extend sites) but not runaway false
			// positives from filler loops.
			if rep.Spinloops > p.Spinloops*3+8 {
				t.Errorf("detected %d spinloops for %d planted: filler leaked",
					rep.Spinloops, p.Spinloops)
			}
		})
	}
}

func TestScaled(t *testing.T) {
	p := ProfileByName("mariadb").Scaled(10)
	if p.SLOC != 312_426 {
		t.Errorf("SLOC = %d", p.SLOC)
	}
	if p.Spinloops != 1_288 {
		t.Errorf("Spinloops = %d", p.Spinloops)
	}
	// Nonzero counts never scale to zero.
	q := ProfileByName("memcached").Scaled(1000)
	if q.AsmBarriers != 1 {
		t.Errorf("AsmBarriers = %d, want 1", q.AsmBarriers)
	}
}

func TestProfileByName(t *testing.T) {
	if ProfileByName("nope") != nil {
		t.Error("unknown profile resolved")
	}
	for _, want := range []string{"mariadb", "postgresql", "leveldb", "memcached", "sqlite"} {
		if ProfileByName(want) == nil {
			t.Errorf("profile %s missing", want)
		}
	}
}
