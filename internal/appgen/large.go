// Large-module generation with known ground truth. Where Generate
// reproduces the measured shape of the paper's Table 3 applications,
// GenerateLarge builds modules for the pipeline-scaling experiments and
// the conformance suite: every synchronization site writes to a
// dedicated location, so the generator can state exactly which location
// descriptors the port must promote to SC (and which must stay plain) —
// the ground-truth promotion sets the property tests compare against.
package appgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/alias"
)

// ModuleSpec configures one generated module. All counts may be zero;
// the same spec always produces the same source.
type ModuleSpec struct {
	Name string
	Seed int64

	// SpinSites is the number of scalar spinloop sites, each spinning on
	// its own global @lg_flag_i.
	SpinSites int
	// StructSpinSites spin on field 0 of a named struct reached through
	// a pointer (the MCS shape); the sites rotate over StructKinds
	// distinct struct types so exploration is exercised across types.
	StructSpinSites int
	StructKinds     int
	// NestedSpinSites spin on a field of a named struct nested inside
	// another named struct — the two-GEP lowering whose alternate
	// descriptor spellings the union-find must unify.
	NestedSpinSites int
	// SeqlockSites are optimistic reader/writer pairs on @lg_seq_i /
	// @lg_sdata_i. The seq location is promoted and fenced; the data
	// location must stay plain.
	SeqlockSites int
	// VolatileVars and AtomicVars are pre-annotated globals (@lg_vol_i,
	// @lg_atom_i) the explicit phase must promote.
	VolatileVars int
	AtomicVars   int
	// DataGlobals (@lg_data_i) and FillerFuncs are plain sequential code
	// the pipeline must leave untouched.
	DataGlobals int
	FillerFuncs int

	// PlantRace adds a seeded seqlock-gap defect: @lg_gap_data is
	// written by lg_gap_write under the @lg_gap_seq protocol and read
	// correctly by lg_gap_read_sync (wait for the final generation, then
	// read), but lg_gap_read skips the protocol entirely. The gap read
	// is a real data race that survives a correct port — the port
	// promotes the control location @lg_gap_seq, while the data location
	// legitimately stays plain — and is recorded in GroundTruth.Racy.
	// The stress harness (HarnessThreads) drives writer, synchronized
	// reader and gap reader from three different threads so the race has
	// a live window in most schedules.
	PlantRace bool
	// HarnessThreads, when > 0, emits that many entry functions
	// lg_stress_t0..t{N-1} driving a deterministic subset of the
	// module's sites. Each thread performs all its signal calls before
	// any of its waits, so every cross-thread rendezvous terminates
	// under any scheduler that eventually runs every runnable thread;
	// the step budget backstops adversarial schedules. These entries are
	// the stress harness: pass HarnessEntries() to stress.Sweep.
	// Clamped up to 3 when PlantRace needs its three roles.
	HarnessThreads int
}

// HarnessEntries returns the entry-function names GenerateLarge emits
// for the spec's stress harness (empty when HarnessThreads is 0).
func (s ModuleSpec) HarnessEntries() []string {
	n := s.harnessThreads()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("lg_stress_t%d", i))
	}
	return out
}

// harnessThreads resolves the harness thread count: PlantRace needs the
// writer, synchronized-reader and gap-reader roles on three distinct
// threads (two of them sharing a thread would happens-before-order the
// gap read through the seq protocol and close the planted window).
func (s ModuleSpec) harnessThreads() int {
	n := s.HarnessThreads
	if n > 0 && s.PlantRace && n < 3 {
		n = 3
	}
	return n
}

// GroundTruth is the promotion contract of a generated module: the
// exact canonical location sets the pipeline must produce.
type GroundTruth struct {
	// Promoted lists every location descriptor whose accesses must all
	// be seq_cst after the port — and nothing else may be.
	Promoted []alias.Loc
	// Fenced lists the optimistic-control locations whose accesses the
	// port must additionally bracket with explicit seq_cst fences.
	Fenced []alias.Loc
	// Racy lists the locations that remain genuinely racy after a
	// correct port (ModuleSpec.PlantRace): the detection targets of the
	// stress-mode experiments. Empty without a planted defect.
	Racy []alias.Loc
}

// LargeSpec derives a spec of roughly sloc source lines with the site
// mix used by the pipeline-scaling experiment (EXPERIMENTS.md).
func LargeSpec(name string, sloc int, seed int64) ModuleSpec {
	if sloc < 1000 {
		sloc = 1000
	}
	return ModuleSpec{
		Name: name, Seed: seed,
		SpinSites:       sloc / 400,
		StructSpinSites: sloc / 800,
		StructKinds:     4,
		NestedSpinSites: sloc / 1600,
		SeqlockSites:    sloc / 800,
		VolatileVars:    sloc / 2000,
		AtomicVars:      sloc / 2000,
		DataGlobals:     sloc / 500,
		// Filler averages ~12 lines per function and provides the bulk.
		FillerFuncs: sloc / 16,
	}
}

// GenerateLarge emits the module source and its ground truth.
func GenerateLarge(s ModuleSpec) (string, GroundTruth) {
	g := &largeGen{rng: rand.New(rand.NewSource(s.Seed)), s: s}
	return g.run()
}

type largeGen struct {
	rng *rand.Rand
	s   ModuleSpec
	b   strings.Builder
	gt  GroundTruth
	// structCells records each struct-spin site's (kind, cell) draw so
	// the stress harness can drive only sites with a private cell (two
	// sites sharing a cell signal conflicting state values, which would
	// leave a harness wait spinning on a value the other site clobbered).
	structCells []structCell
}

type structCell struct{ site, kind, cell int }

func (g *largeGen) line(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *largeGen) promoted(l alias.Loc) { g.gt.Promoted = append(g.gt.Promoted, l) }

func global(name string) alias.Loc { return alias.Loc{Kind: alias.LocGlobal, Name: name} }
func field(name string) alias.Loc  { return alias.Loc{Kind: alias.LocField, Name: name} }

func (g *largeGen) run() (string, GroundTruth) {
	s := g.s
	g.line("// synthetic large module %q generated by appgen.GenerateLarge", s.Name)

	kinds := s.StructKinds
	if kinds < 1 {
		kinds = 1
	}
	if s.StructSpinSites > 0 {
		for k := 0; k < kinds; k++ {
			g.line("struct lgn%d { int state; int value; };", k)
			g.line("struct lgn%d lgn%d_cells[8];", k, k)
		}
	}
	if s.NestedSpinSites > 0 {
		g.line("struct lg_in { int flag; int pad; };")
		g.line("struct lg_out { struct lg_in in; int other; };")
	}
	for i := 0; i < s.SpinSites; i++ {
		g.line("int lg_flag%d;", i)
	}
	for i := 0; i < s.NestedSpinSites; i++ {
		g.line("struct lg_out lg_no%d;", i)
	}
	for i := 0; i < s.SeqlockSites; i++ {
		g.line("int lg_seq%d;", i)
		g.line("int lg_sdata%d;", i)
	}
	if s.PlantRace {
		g.line("int lg_gap_seq;")
		g.line("int lg_gap_data;")
	}
	for i := 0; i < s.VolatileVars; i++ {
		g.line("volatile int lg_vol%d;", i)
	}
	for i := 0; i < s.AtomicVars; i++ {
		g.line("_Atomic int lg_atom%d;", i)
	}
	nData := s.DataGlobals
	if nData < 1 {
		nData = 1
	}
	for i := 0; i < nData; i++ {
		g.line("int lg_data%d;", i)
	}

	for i := 0; i < s.SpinSites; i++ {
		g.scalarSpin(i)
		g.promoted(global(fmt.Sprintf("lg_flag%d", i)))
	}
	usedKind := make([]bool, kinds)
	for i := 0; i < s.StructSpinSites; i++ {
		k := i % kinds
		g.structSpin(i, k)
		usedKind[k] = true
	}
	for k, used := range usedKind {
		if used {
			g.promoted(field(fmt.Sprintf("lgn%d:0", k)))
		}
	}
	for i := 0; i < s.NestedSpinSites; i++ {
		g.nestedSpin(i)
	}
	if s.NestedSpinSites > 0 {
		// Every nested site spins on the same (type, field): one class.
		g.promoted(field("lg_in:0"))
	}
	for i := 0; i < s.SeqlockSites; i++ {
		g.seqlock(i)
		loc := global(fmt.Sprintf("lg_seq%d", i))
		g.promoted(loc)
		g.gt.Fenced = append(g.gt.Fenced, loc)
	}
	for i := 0; i < s.VolatileVars; i++ {
		g.line("int lg_vol_use%d(int x) {", i)
		g.line("  lg_vol%d = x;", i)
		g.line("  return lg_vol%d + 1;", i)
		g.line("}")
		g.promoted(global(fmt.Sprintf("lg_vol%d", i)))
	}
	for i := 0; i < s.AtomicVars; i++ {
		g.line("int lg_atom_use%d(int x) {", i)
		g.line("  lg_atom%d = lg_atom%d + x;", i, i)
		g.line("  return lg_atom%d;", i)
		g.line("}")
		g.promoted(global(fmt.Sprintf("lg_atom%d", i)))
	}
	if s.PlantRace {
		g.plantGap()
	}
	for i := 0; i < s.FillerFuncs; i++ {
		g.filler(i, nData)
	}
	if n := s.harnessThreads(); n > 0 {
		g.harness(n)
	}
	return g.b.String(), g.gt
}

// plantGap emits the seeded defect: a seqlock-style writer, a correct
// synchronized reader (spin for the final generation, then read — the
// spin seeds the promotion of @lg_gap_seq), and the gap reader that
// loads @lg_gap_data with no protocol at all. After a correct port the
// gap read still races with the writer's (legitimately plain) data
// store: the one race GroundTruth.Racy promises.
func (g *largeGen) plantGap() {
	g.line("void lg_gap_write(int v) {")
	g.line("  lg_gap_seq = lg_gap_seq + 1;")
	g.line("  lg_gap_data = v;")
	g.line("  lg_gap_seq = lg_gap_seq + 1;")
	g.line("}")
	g.line("int lg_gap_read_sync(void) {")
	g.line("  while (lg_gap_seq != 2) { }")
	g.line("  return lg_gap_data;")
	g.line("}")
	g.line("int lg_gap_read(void) {")
	g.line("  return lg_gap_data;")
	g.line("}")
	g.promoted(global("lg_gap_seq"))
	g.gt.Racy = append(g.gt.Racy, global("lg_gap_data"))
}

// scalarSpin emits a wait/signal pair on @lg_flag_i. The signal store
// is reached only through sticky exploration.
func (g *largeGen) scalarSpin(i int) {
	g.line("void lg_spin_wait%d(void) {", i)
	g.line("  while (lg_flag%d != %d) { }", i, i%7+1)
	g.line("}")
	g.line("void lg_spin_signal%d(void) {", i)
	g.line("  lg_flag%d = %d;", i, i%7+1)
	g.line("}")
}

// structSpin emits the MCS shape on struct kind k: spin on a state
// field through a pointer, plus a plain use of the value field that
// must NOT be promoted (field granularity).
func (g *largeGen) structSpin(i, k int) {
	cell := g.rng.Intn(8)
	g.structCells = append(g.structCells, structCell{site: i, kind: k, cell: cell})
	g.line("void lg_nspin_wait%d(void) {", i)
	g.line("  struct lgn%d *n = &lgn%d_cells[%d];", k, k, cell)
	g.line("  while (n->state != %d) { }", i%5+1)
	g.line("}")
	g.line("void lg_nspin_signal%d(void) {", i)
	g.line("  lgn%d_cells[%d].state = %d;", k, cell, i%5+1)
	g.line("}")
	g.line("int lg_nspin_value%d(void) {", i)
	g.line("  struct lgn%d *n = &lgn%d_cells[%d];", k, k, cell)
	g.line("  n->value = %d;", i)
	g.line("  return n->value;")
	g.line("}")
}

// nestedSpin spins on lg_no_i.in.flag — the member-of-member access
// whose two lowerings (one composed GEP vs a GEP chain) the union-find
// must place in one class.
func (g *largeGen) nestedSpin(i int) {
	g.line("void lg_nest_wait%d(void) {", i)
	g.line("  while (lg_no%d.in.flag != 1) { }", i)
	g.line("}")
	g.line("void lg_nest_signal%d(void) {", i)
	g.line("  lg_no%d.in.flag = 1;", i)
	g.line("}")
}

// seqlock emits the optimistic reader/writer pair: @lg_seq_i is the
// control (promoted + fenced), @lg_sdata_i is the optimistic data and
// must stay plain.
func (g *largeGen) seqlock(i int) {
	g.line("int lg_seq_read%d(void) {", i)
	g.line("  int s;")
	g.line("  int d;")
	g.line("  do {")
	g.line("    s = lg_seq%d;", i)
	g.line("    d = lg_sdata%d;", i)
	g.line("  } while (s %% 2 != 0 || s != lg_seq%d);", i)
	g.line("  return d;")
	g.line("}")
	g.line("void lg_seq_write%d(int v) {", i)
	g.line("  lg_seq%d = lg_seq%d + 1;", i, i)
	g.line("  lg_sdata%d = v;", i)
	g.line("  lg_seq%d = lg_seq%d + 1;", i, i)
	g.line("}")
}

// harness emits the lg_stress_t* entry functions. The assignment is a
// pure function of the spec: site j's signal/write runs on thread j%n
// and the matching wait/read on thread (j+1)%n, every thread performs
// all of its signals and writes before any of its waits and reads (so
// rendezvous cannot deadlock regardless of interleaving), filler runs
// on thread 0 only (its @lg_data_* traffic is plain and must stay
// single-threaded to keep the ported module race-free apart from the
// planted gap), and only struct-spin sites with a private (kind, cell)
// participate. The per-thread call lists are capped so one schedule
// executes a handful of sites, not the whole module — that is what
// keeps a 100k-line module sweepable at thousands of schedules per
// second.
func (g *largeGen) harness(n int) {
	s := g.s
	sig := make([][]string, n)   // phase 1: signals and writes
	mid := make([][]string, n)   // phase 2: unsynchronized reads (the planted gap)
	waitp := make([][]string, n) // phase 3: waits and synchronized reads

	cap2 := func(total, per int) int {
		if total > per {
			return per
		}
		return total
	}

	// Scalar spin pairs.
	for j := 0; j < cap2(s.SpinSites, 2*n); j++ {
		sig[j%n] = append(sig[j%n], fmt.Sprintf("lg_spin_signal%d();", j))
		waitp[(j+1)%n] = append(waitp[(j+1)%n], fmt.Sprintf("lg_spin_wait%d();", j))
	}
	// Struct spins: only sites whose (kind, cell) is private.
	seen := map[[2]int]int{}
	for _, sc := range g.structCells {
		seen[[2]int{sc.kind, sc.cell}]++
	}
	used := 0
	for _, sc := range g.structCells {
		if seen[[2]int{sc.kind, sc.cell}] != 1 || used >= n {
			continue
		}
		sig[used%n] = append(sig[used%n], fmt.Sprintf("lg_nspin_signal%d();", sc.site))
		waitp[(used+1)%n] = append(waitp[(used+1)%n], fmt.Sprintf("lg_nspin_wait%d();", sc.site))
		used++
	}
	// Nested spins.
	for j := 0; j < cap2(s.NestedSpinSites, n); j++ {
		sig[j%n] = append(sig[j%n], fmt.Sprintf("lg_nest_signal%d();", j))
		waitp[(j+1)%n] = append(waitp[(j+1)%n], fmt.Sprintf("lg_nest_wait%d();", j))
	}
	// Seqlocks: one writer per site, one synchronized reader. The
	// harness waits for the final (even, == 2) generation instead of
	// calling the optimistic lg_seq_read: the optimistic retry loop
	// reads @lg_sdata_* concurrently with the writer — a benign retry
	// race that would pollute the planted-race ground truth.
	for j := 0; j < cap2(s.SeqlockSites, n); j++ {
		sig[j%n] = append(sig[j%n], fmt.Sprintf("lg_seq_write%d(%d);", j, j*13+5))
		waitp[(j+1)%n] = append(waitp[(j+1)%n], fmt.Sprintf("acc = acc + lg_h_seqwait%d();", j))
		g.line("int lg_h_seqwait%d(void) {", j)
		g.line("  while (lg_seq%d != 2) { }", j)
		g.line("  return lg_sdata%d;", j)
		g.line("}")
	}
	if s.PlantRace {
		sig[0] = append(sig[0], "lg_gap_write(7);")
		waitp[1%n] = append(waitp[1%n], "acc = acc + lg_gap_read_sync();")
		// The gap read runs in phase 2 of thread 2: after its own
		// signals (which create no incoming happens-before edges) and
		// before any of its waits, so no synchronization orders it
		// against the writer. The small loop widens the race window and
		// gives the minimizer an iteration count to shrink.
		mid[2%n] = append(mid[2%n],
			"for (int k = 0; k < 3; k = k + 1) { acc = acc + lg_gap_read(); }")
	}
	// Filler on thread 0 only, behind a shrinkable loop.
	for j := 0; j < cap2(s.FillerFuncs, 2); j++ {
		mid[0] = append(mid[0],
			fmt.Sprintf("for (int k = 0; k < 2; k = k + 1) { acc = acc + lg_compute%d(k, %d); }", j, j+1))
	}

	for t := 0; t < n; t++ {
		g.line("int lg_stress_t%d(void) {", t)
		g.line("  int acc = 0;")
		for _, c := range sig[t] {
			g.line("  %s", c)
		}
		for _, c := range mid[t] {
			g.line("  %s", c)
		}
		for _, c := range waitp[t] {
			g.line("  %s", c)
		}
		g.line("  return acc;")
		g.line("}")
	}
}

// filler emits plain sequential compute over locals and @lg_data_*.
func (g *largeGen) filler(i, nData int) {
	stmts := g.rng.Intn(14) + 5
	g.line("int lg_compute%d(int a, int b) {", i)
	g.line("  int acc = a;")
	for j := 0; j < stmts; j++ {
		switch g.rng.Intn(7) {
		case 0:
			g.line("  acc = acc + b * %d;", g.rng.Intn(9)+1)
		case 1:
			g.line("  acc = (acc ^ %d) + b;", g.rng.Intn(255))
		case 2:
			g.line("  if (acc > %d) { acc = acc - b; }", g.rng.Intn(1000))
		case 3:
			g.line("  for (int i = 0; i < %d; i = i + 1) { acc = acc + i; }", g.rng.Intn(6)+2)
		case 4:
			g.line("  acc = acc + lg_data%d;", g.rng.Intn(nData))
		case 5:
			g.line("  lg_data%d = acc;", g.rng.Intn(nData))
		default:
			g.line("  acc = acc %% %d + b;", g.rng.Intn(97)+3)
		}
	}
	g.line("  return acc;")
	g.line("}")
}
