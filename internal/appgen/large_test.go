package appgen

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

// TestGenerateLargeDeterministic pins GenerateLarge: identical specs
// yield identical source AND identical ground truth; a different seed
// changes the source (the pipeline-scaling benchmark and the
// promotion-contract tests both depend on this).
func TestGenerateLargeDeterministic(t *testing.T) {
	spec := LargeSpec("det", 6000, 9)
	srcA, gtA := GenerateLarge(spec)
	srcB, gtB := GenerateLarge(spec)
	if srcA != srcB {
		t.Fatal("GenerateLarge is not deterministic")
	}
	if len(gtA.Promoted) != len(gtB.Promoted) || len(gtA.Fenced) != len(gtB.Fenced) {
		t.Fatal("ground truth differs between identical specs")
	}
	for i := range gtA.Promoted {
		if gtA.Promoted[i] != gtB.Promoted[i] {
			t.Fatalf("Promoted[%d] differs: %s vs %s", i, gtA.Promoted[i], gtB.Promoted[i])
		}
	}
	other := spec
	other.Seed = 10
	if srcC, _ := GenerateLarge(other); srcC == srcA {
		t.Fatal("different seeds produced identical source")
	}
}

// TestLargeSpecSizing checks that the derived spec actually produces a
// module of roughly the requested size, that it compiles, and that the
// ground truth is non-degenerate (every site kind planted).
func TestLargeSpecSizing(t *testing.T) {
	for _, sloc := range []int{5_000, 20_000} {
		spec := LargeSpec("sizing", sloc, 3)
		src, gt := GenerateLarge(spec)
		lines := strings.Count(src, "\n")
		if lines < sloc {
			t.Errorf("sloc %d: generated %d lines, want >= %d", sloc, lines, sloc)
		}
		if lines > sloc*3 {
			t.Errorf("sloc %d: generated %d lines, more than 3x the request", sloc, lines)
		}
		if len(gt.Promoted) == 0 || len(gt.Fenced) == 0 {
			t.Errorf("sloc %d: degenerate ground truth (%d promoted, %d fenced)",
				sloc, len(gt.Promoted), len(gt.Fenced))
		}
		if spec.SpinSites == 0 || spec.StructSpinSites == 0 || spec.NestedSpinSites == 0 ||
			spec.SeqlockSites == 0 || spec.VolatileVars == 0 || spec.AtomicVars == 0 {
			t.Errorf("sloc %d: spec leaves a site kind empty: %+v", sloc, spec)
		}
		if _, err := minic.Compile(spec.Name+".c", src); err != nil {
			t.Errorf("sloc %d: generated source does not compile: %v", sloc, err)
		}
	}
}
