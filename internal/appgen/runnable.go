package appgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// RunnableProgram generates a terminating concurrent MiniC program whose
// final global state is schedule-independent: every fair schedule, under
// sequential consistency, ends with the same values in every global.
// That property is what the differential stress harness
// (internal/difftest) needs — the SC run is the reference, and the
// atomig-ported program must reproduce it under WMM for every
// adversarial scheduler.
//
// The generator composes programs from the synchronization idioms the
// porting pipeline is proven to repair (the model-checked shapes of the
// mc end-to-end tests): message-passing channels, two-sided handshakes,
// test-and-set lock critical sections, and sequence locks whose reader
// waits for the final generation. Determinism and termination hold by
// construction:
//
//   - each thread performs all its non-blocking "producer" actions
//     (stores, lock/increment/unlock) before any blocking "consumer"
//     action (spin-waits), so every wait's precondition is eventually
//     established;
//   - consumer actions are ordered by site index within each thread,
//     and a site's only same-index dependency is its waiter depending
//     on its responder (never the reverse), so waits cannot form a
//     cycle;
//   - no nondet() and no print(), so the only observable state is the
//     final value of each global, which each site pins uniquely.
//
// The same seed always produces the same program.
func RunnableProgram(seed int64) (src string, entries []string) {
	rng := rand.New(rand.NewSource(seed))
	nThreads := 2 + rng.Intn(3) // 2..4 threads

	type action struct {
		site  int
		stmts []string
	}
	var decls []string
	prod := make([][]action, nThreads)
	cons := make([][]action, nThreads)

	// pick2 returns two distinct thread indices.
	pick2 := func() (int, int) {
		p := rng.Intn(nThreads)
		c := rng.Intn(nThreads - 1)
		if c >= p {
			c++
		}
		return p, c
	}

	nSites := 2 + rng.Intn(3) // 2..4 sites
	for i := 0; i < nSites; i++ {
		switch rng.Intn(4) {
		case 0: // message-passing channel: writer publishes, reader spins.
			v := rng.Intn(900) + 1
			decls = append(decls,
				fmt.Sprintf("int c%d_flag;", i),
				fmt.Sprintf("int c%d_msg;", i),
				fmt.Sprintf("int c%d_out;", i))
			p, c := pick2()
			prod[p] = append(prod[p], action{i, []string{
				fmt.Sprintf("c%d_msg = %d;", i, v),
				fmt.Sprintf("c%d_flag = 1;", i),
			}})
			cons[c] = append(cons[c], action{i, []string{
				fmt.Sprintf("while (c%d_flag == 0) { }", i),
				fmt.Sprintf("c%d_out = c%d_msg;", i, i),
			}})

		case 1: // two-sided handshake: requester waits for the ack.
			decls = append(decls,
				fmt.Sprintf("int h%d_req;", i),
				fmt.Sprintf("int h%d_ack;", i),
				fmt.Sprintf("int h%d_done;", i))
			p, c := pick2()
			prod[p] = append(prod[p], action{i, []string{
				fmt.Sprintf("h%d_req = 1;", i),
			}})
			// Responder: wait for the request, then acknowledge.
			cons[c] = append(cons[c], action{i, []string{
				fmt.Sprintf("while (h%d_req == 0) { }", i),
				fmt.Sprintf("h%d_ack = 1;", i),
			}})
			// Requester: wait for the acknowledgement.
			cons[p] = append(cons[p], action{i, []string{
				fmt.Sprintf("while (h%d_ack == 0) { }", i),
				fmt.Sprintf("h%d_done = 1;", i),
			}})

		case 2: // test-and-set lock around a shared counter.
			decls = append(decls,
				fmt.Sprintf("int l%d_lock;", i),
				fmt.Sprintf("int l%d_count;", i))
			nWorkers := 2 + rng.Intn(nThreads-1)
			if nWorkers > nThreads {
				nWorkers = nThreads
			}
			perm := rng.Perm(nThreads)[:nWorkers]
			for _, t := range perm {
				prod[t] = append(prod[t], action{i, []string{
					fmt.Sprintf("while (__cas(&l%d_lock, 0, 1) != 0) { }", i),
					fmt.Sprintf("l%d_count = l%d_count + 1;", i, i),
					fmt.Sprintf("l%d_lock = 0;", i),
				}})
			}

		default: // seqlock whose reader waits for the final generation.
			v := rng.Intn(900) + 1
			decls = append(decls,
				fmt.Sprintf("int q%d_seq;", i),
				fmt.Sprintf("int q%d_data;", i),
				fmt.Sprintf("int q%d_out;", i))
			p, c := pick2()
			prod[p] = append(prod[p], action{i, []string{
				fmt.Sprintf("q%d_seq = q%d_seq + 1;", i, i),
				fmt.Sprintf("q%d_data = %d;", i, v),
				fmt.Sprintf("q%d_seq = q%d_seq + 1;", i, i),
			}})
			// The writer performs exactly one transaction, so waiting for
			// an even sequence >= 2 pins the reader to the final snapshot.
			cons[c] = append(cons[c], action{i, []string{
				fmt.Sprintf("int s%d;", i),
				fmt.Sprintf("int d%d;", i),
				"do {",
				fmt.Sprintf("  s%d = q%d_seq;", i, i),
				fmt.Sprintf("  d%d = q%d_data;", i, i),
				fmt.Sprintf("} while (s%d %% 2 != 0 || s%d < 2 || s%d != q%d_seq);", i, i, i, i),
				fmt.Sprintf("q%d_out = d%d;", i, i),
			}})
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "// runnable program, appgen seed %d\n", seed)
	for _, d := range decls {
		b.WriteString(d)
		b.WriteByte('\n')
	}
	for t := 0; t < nThreads; t++ {
		// Per-thread deterministic local compute, published to a private
		// global so the snapshot also covers plain sequential codegen.
		fmt.Fprintf(&b, "int p%d_acc;\n", t)
		fmt.Fprintf(&b, "void t%d(void) {\n", t)
		fmt.Fprintf(&b, "  int acc = %d;\n", rng.Intn(50))
		fmt.Fprintf(&b, "  for (int i = 0; i < %d; i = i + 1) { acc = acc + i * %d; }\n",
			rng.Intn(6)+2, rng.Intn(5)+1)
		for _, a := range prod[t] {
			for _, s := range a.stmts {
				fmt.Fprintf(&b, "  %s\n", s)
			}
		}
		// Waits ordered by site index: the only same-index dependency is
		// waiter-on-responder, so ordering by site excludes wait cycles.
		sort.SliceStable(cons[t], func(x, y int) bool { return cons[t][x].site < cons[t][y].site })
		for _, a := range cons[t] {
			for _, s := range a.stmts {
				fmt.Fprintf(&b, "  %s\n", s)
			}
		}
		fmt.Fprintf(&b, "  p%d_acc = acc;\n", t)
		b.WriteString("}\n")
		entries = append(entries, fmt.Sprintf("t%d", t))
	}
	return b.String(), entries
}
