// Package atomig orchestrates the porting pipeline reproduced from the
// paper (Figure 2): explicit-annotation analysis, implicit
// synchronization-pattern detection (spinloops and optimistic loops),
// type-based alias exploration, and the final program transformations
// that make the detected accesses sequentially consistent and insert
// explicit barriers around optimistic accesses.
package atomig

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/alias"
	"repro/internal/analysis"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/transform"
)

// Level selects how much of the detection pipeline runs, matching the
// ablation columns of the paper's Table 2.
type Level int

// Pipeline levels.
const (
	// LevelExplicit only analyzes explicit annotations (volatile,
	// existing atomics, inline assembly) — Table 2's "Expl." column.
	LevelExplicit Level = iota
	// LevelSpin adds spinloop detection — Table 2's "Spin" column.
	LevelSpin
	// LevelFull adds optimistic-loop detection — the full AtoMig.
	LevelFull
)

func (l Level) String() string {
	switch l {
	case LevelExplicit:
		return "explicit"
	case LevelSpin:
		return "spin"
	case LevelFull:
		return "atomig"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Options configures a Port run.
type Options struct {
	Level Level
	// Inline enables the pre-analysis inliner (on by default via
	// DefaultOptions) so loops spanning several functions are detected.
	Inline        bool
	InlineOptions analysis.InlineOptions

	// DetectPolling enables the discussion-section extension that treats
	// bounded retry loops containing wait hints (pause/yield) as
	// synchronization (paper section 6).
	DetectPolling bool
	// BarrierSeeds enables the discussion-section extension that seeds
	// alias exploration from accesses around compiler barriers.
	BarrierSeeds bool
	// SkipAlias disables the sticky-buddy exploration. Only for the
	// ablation study: the result is an unsound port ("once atomic,
	// always atomic" is violated).
	SkipAlias bool
	// AliasStrategy selects how sticky buddies are found: the paper's
	// type-based scheme (default) or the Andersen-style points-to
	// analysis the paper rejects for scalability (section 3.4). The
	// latter exists to measure that trade-off.
	AliasStrategy AliasStrategy
	// Optimize runs the post-transformation optimizer (Figure 2's
	// "apply any outstanding optimizations" stage). The inserted atomics
	// are optimization barriers, so porting first keeps -O2 sound.
	Optimize bool
	// Obs, when non-nil, records a span per pipeline phase on the
	// "pipeline" trace track and publishes the Report tallies as
	// pipeline.* registry metrics (docs/OBSERVABILITY.md).
	Obs *obs.Provider
	// Workers sets the pipeline fan-out: per-function detection, the
	// alias-map build, and the fence pass run on this many goroutines
	// (0 or 1 means sequential). The ported module is byte-identical for
	// every value — see docs/PIPELINE.md for the determinism contract.
	Workers int
	// Context, when non-nil, cancels the port early: workers stop
	// claiming functions and Port returns the context's error. The
	// module is left partially transformed — callers that may cancel
	// should port a clone (PortClone), as the serving daemon does.
	Context context.Context
	// Detect, when non-nil, caches per-function detection verdicts
	// content-addressed by function-body hash (FuncKey), so re-porting a
	// module after a small edit re-analyzes only the changed functions.
	// The ported output is byte-identical with or without a cache; see
	// incremental.go and docs/SERVE.md.
	Detect DetectCache
	// FuncHashes optionally supplies precomputed FuncKey values aligned
	// with m.Funcs, sparing the per-port hashing cost for callers that
	// own a stable module (the daemon recomputes them once per delta).
	// Entries must equal FuncKey(CacheSalt(m, opts), f) for the function
	// at the same index; empty strings (and a wrong-length slice) fall
	// back to hashing in place. Ignored without Detect.
	FuncHashes []string
	// OptimizeSalt fingerprints the post-port weakening configuration
	// active around this port (weaken.Options.Salt; empty when no
	// optimizer runs). The port itself never reads it — it exists so
	// CacheSalt changes whenever the optimize configuration does, and
	// incremental consumers (the serve daemon) can never replay
	// detection or weakening state computed under a different one.
	OptimizeSalt string
}

// AliasStrategy selects the sticky-buddy mechanism.
type AliasStrategy int

// Alias strategies.
const (
	// AliasTypeBased matches accesses by global symbol or
	// (struct type, field offset) — constant-time, scalable.
	AliasTypeBased AliasStrategy = iota
	// AliasPointsTo uses an inclusion-based points-to analysis —
	// more precise per object, much more expensive.
	AliasPointsTo
)

// DefaultOptions returns the full pipeline configuration.
func DefaultOptions() Options {
	return Options{Level: LevelFull, Inline: true, InlineOptions: analysis.DefaultInlineOptions()}
}

// ctxErr reports the cancellation state of the port's context, wrapped
// so callers can tell a canceled port from a pipeline failure.
func (o Options) ctxErr() error {
	if o.Context == nil {
		return nil
	}
	if err := o.Context.Err(); err != nil {
		return fmt.Errorf("atomig: port canceled: %w", err)
	}
	return nil
}

// Report summarizes a porting run; its counters correspond to the
// columns of the paper's Table 3.
type Report struct {
	Module string
	Level  Level
	// Workers is the fan-out the port ran with (always >= 1). It never
	// influences the ported module, only the wall-clock Duration.
	Workers int

	// Detection counts.
	Spinloops        int
	Optiloops        int
	PollingLoops     int // extension: wait-hint retry loops
	BarrierSeeded    int // extension: accesses seeded via compiler barriers
	FunctionsInlined int

	// Explicit-annotation results.
	VolatileConverted int
	AtomicUpgraded    int

	// Transformation results.
	SpinControlsMarked int
	OptControlsMarked  int   // optimistic-loop controls marked
	BuddiesExplored    int   // sticky-buddy candidates alias exploration reached
	AliasMerges        int64 // descriptor classes the union-find joined
	StickyMarked       int
	ImplicitAdded      int // accesses newly made SC-atomic
	ExplicitAdded      int // fences inserted

	// Barrier inventory before and after (Table 3's B_Expl / B_Impl).
	ExplicitBefore, ImplicitBefore int
	ExplicitAfter, ImplicitAfter   int

	// Optimizer statistics (when Options.Optimize is set).
	OptFolded  int
	OptHoisted int
	OptRemoved int

	// Detection-cache statistics (when Options.Detect is set): functions
	// whose analyses were replayed from the cache vs. re-analyzed.
	CacheHits   int
	CacheMisses int

	// Duration is the wall-clock time of the port (Table 3's build-time
	// comparison measures this against plain compilation).
	Duration time.Duration
}

// Port runs the atomig pipeline on m in place and returns the report.
// Callers that need to keep the original should clone the module first
// (ir.CloneModule). Internal panics anywhere in the pipeline are
// contained by the diag guard and returned as structured errors.
func Port(m *ir.Module, opts Options) (rep *Report, err error) {
	defer diag.Guard("atomig.Port", &err)
	start := time.Now()
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	rep = &Report{Module: m.Name, Level: opts.Level, Workers: workers}
	rep.ExplicitBefore, rep.ImplicitBefore = transform.CountBarriers(m)

	// Every phase gets a span on the shared "pipeline" track, and the
	// report tallies land in the registry when the port finishes — both
	// no-ops without a provider.
	trk := opts.Obs.Track("pipeline")
	ps := trk.Begin("pipeline.port").Arg("module", m.Name).
		Arg("level", opts.Level.String()).Arg("workers", workers)
	defer func() {
		ps.End()
		if err == nil {
			publishReport(opts.Obs, rep)
		}
	}()

	sp := trk.Begin("pipeline.analysis")
	// Inlining stays sequential: clones of one callee body land in many
	// callers, so concurrent inlining would race on the callee.
	if opts.Inline {
		rep.FunctionsInlined = analysis.Inline(m, opts.InlineOptions)
	}

	// Phases 1+2, detection (paper sections 3.2–3.3): workers claim
	// functions from a shared cursor and fill a per-function result slot.
	// Each worker mutates only the function it holds (the explicit
	// upgrades); everything cross-function — marking, counting, seed
	// collection — happens in the in-order merge below, so the results
	// are identical for every worker count. A DetectCache replays the
	// expensive analyses for unchanged function bodies (incremental.go);
	// the alias contributions each function prepares here feed the
	// phase-3 map build. Accesses that are already atomic (pre-existing
	// or just upgraded) seed exploration too: "any atomic operations
	// already found in the program invariably indicate the presence of
	// concurrent accesses".
	var salt string
	if opts.Detect != nil {
		salt = CacheSalt(m, opts)
	}
	hashes := opts.FuncHashes
	if len(hashes) != len(m.Funcs) {
		hashes = nil
	}
	det := make([]funcDetect, len(m.Funcs))
	accs := make([][]alias.Access, len(m.Funcs))
	var hits, misses atomic.Int64
	forEachFunc(opts.Context, workers, m.Funcs, func(fi int, f *ir.Func) {
		key := ""
		if opts.Detect != nil {
			if hashes != nil && hashes[fi] != "" {
				key = hashes[fi]
			} else {
				key = FuncKey(salt, f)
			}
		}
		d, a, hit := detectFunc(f, opts, key)
		det[fi], accs[fi] = d, a
		if opts.Detect != nil {
			if hit {
				hits.Add(1)
			} else {
				misses.Add(1)
			}
		}
	})
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	rep.CacheHits, rep.CacheMisses = int(hits.Load()), int(misses.Load())

	implicitAdded := 0
	var seeds []*ir.Instr
	optLocs := make(map[alias.Loc]bool)
	var optLoops []*analysis.SpinloopInfo
	for fi := range det {
		d := &det[fi]
		rep.VolatileConverted += d.expl.VolatileConverted
		rep.AtomicUpgraded += d.expl.AtomicUpgraded
		implicitAdded += d.expl.VolatileConverted // upgrades were already atomic
		for _, info := range d.spin {
			rep.Spinloops++
			for _, ctl := range info.Controls {
				ctl.SetMark(ir.MarkSpinControl)
				if transform.MakeAccessSC(ctl, ir.MarkSpinControl) {
					implicitAdded++
				}
				rep.SpinControlsMarked++
				seeds = append(seeds, ctl)
			}
			if opts.Level >= LevelFull && info.Optimistic {
				rep.Optiloops++
				optLoops = append(optLoops, info)
				for _, loc := range info.ControlLocs {
					optLocs[loc] = true
				}
				for _, ctl := range info.Controls {
					ctl.SetMark(ir.MarkOptControl)
					rep.OptControlsMarked++
				}
			}
		}
		// Extension: polling loops with wait hints (paper section 6).
		for _, info := range d.polling {
			rep.PollingLoops++
			for _, ctl := range info.Controls {
				ctl.SetMark(ir.MarkSpinControl)
				if transform.MakeAccessSC(ctl, ir.MarkSpinControl) {
					implicitAdded++
				}
				seeds = append(seeds, ctl)
			}
		}
		// Extension: compiler-barrier-adjacent accesses as seeds.
		for _, in := range d.barrier {
			rep.BarrierSeeded++
			in.SetMark(ir.MarkFromAsm)
			if transform.MakeAccessSC(in, ir.MarkFromAsm) {
				implicitAdded++
			}
			seeds = append(seeds, in)
		}
		seeds = append(seeds, d.atomics...)
	}
	sp.Arg("seeds", len(seeds)).End()

	// Phase 3: alias exploration (paper section 3.4) — sticky buddies.
	// The map build is the sharded concurrent worklist; exploration and
	// marking are deterministic-order consumers of its frozen classes.
	sp = trk.Begin("pipeline.alias")
	am := alias.BuildMapFromAccesses(m, workers, func(fi int, f *ir.Func) []alias.Access {
		return accs[fi]
	})
	rep.AliasMerges = am.Merges()
	if !opts.SkipAlias {
		var buddies []*ir.Instr
		if opts.AliasStrategy == AliasPointsTo {
			buddies = alias.AnalyzePointsTo(m).Explore(seeds)
		} else {
			buddies = am.Explore(seeds)
		}
		rep.BuddiesExplored = len(buddies)
		for _, buddy := range buddies {
			if buddy.Ord == ir.SeqCst {
				continue
			}
			buddy.SetMark(ir.MarkSticky)
			if transform.MakeAccessSC(buddy, ir.MarkSticky) {
				implicitAdded++
				rep.StickyMarked++
			}
		}
	}
	sp.Arg("buddies", rep.BuddiesExplored).Arg("merges", rep.AliasMerges).End()

	// Phase 4: explicit barriers for optimistic controls. Reads of an
	// optimistic-control location inside its optimistic loop get a fence
	// before them; stores to optimistic-control locations get a fence
	// after them module-wide (the store side of the seqlock protocol can
	// be anywhere). Fence IDs come from each function's own counter, so
	// the pass fans out per function without losing determinism.
	sp = trk.Begin("pipeline.transform")
	fences := 0
	if opts.Level >= LevelFull && len(optLocs) > 0 {
		// Key both location sets by canonical representative so every
		// descriptor spelling of a control cell matches.
		canonOpt := make(map[alias.Loc]bool, len(optLocs))
		for loc := range optLocs {
			canonOpt[am.Canon(loc)] = true
		}
		byFn := make(map[*ir.Func][]optLoopCtl)
		for _, info := range optLoops {
			ctl := make(map[alias.Loc]bool, len(info.ControlLocs))
			for _, loc := range info.ControlLocs {
				ctl[am.Canon(loc)] = true
			}
			byFn[info.Fn] = append(byFn[info.Fn], optLoopCtl{loop: info.Loop, ctl: ctl})
		}
		fenceCount := make([]int, len(m.Funcs))
		forEachFunc(opts.Context, workers, m.Funcs, func(fi int, f *ir.Func) {
			fenceCount[fi] = insertOptFences(f, byFn[f], canonOpt, am)
		})
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		for _, n := range fenceCount {
			fences += n
		}
	}

	rep.ImplicitAdded = implicitAdded
	rep.ExplicitAdded = fences
	rep.ExplicitAfter, rep.ImplicitAfter = transform.CountBarriers(m)
	sp.Arg("fences", fences).End()

	// Phase 5: outstanding optimizations (Figure 2), now that every
	// synchronization access is atomic and thus barrier to the passes.
	if opts.Optimize {
		sp = trk.Begin("pipeline.optimize")
		ost := opt.Optimize(m)
		rep.OptFolded = ost.Folded
		rep.OptHoisted = ost.Hoisted
		rep.OptRemoved = ost.DeadRemoved + ost.BlocksRemoved
		sp.End()
	}
	sp = trk.Begin("pipeline.verify")
	verr := ir.Verify(m)
	sp.End()
	if verr != nil {
		return nil, fmt.Errorf("atomig: transformed module invalid: %w", verr)
	}
	rep.Duration = time.Since(start)
	return rep, nil
}

// PortClone clones m, ports the clone, and returns it with the report,
// leaving m untouched.
func PortClone(m *ir.Module, opts Options) (*ir.Module, *Report, error) {
	c, err := ir.CloneModule(m)
	if err != nil {
		return nil, nil, err
	}
	rep, err := Port(c, opts)
	if err != nil {
		return nil, nil, err
	}
	return c, rep, nil
}
