package atomig

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/transform"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	res, err := minic.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Module
}

func port(t *testing.T, m *ir.Module, opts Options) *Report {
	t.Helper()
	rep, err := Port(m, opts)
	if err != nil {
		t.Fatalf("Port: %v", err)
	}
	return rep
}

// accessOrds returns the memory orders of all accesses to the named
// location descriptor.
func accessOrds(m *ir.Module, locName string) []ir.MemOrder {
	var out []ir.MemOrder
	m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if !in.IsMemAccess() {
			return
		}
		if alias.LocOf(in.Addr()).Name == locName {
			out = append(out, in.Ord)
		}
	})
	return out
}

// TestFigure4TASLock: porting the test-and-set lock must make both the
// cmpxchg and the unlock store sequentially consistent ("once atomic,
// always atomic").
func TestFigure4TASLock(t *testing.T) {
	m := compile(t, `
int locked = 0;
void lock(void) {
  while (__cas(&locked, 0, 1) != 0) { }
}
void unlock(void) {
  locked = 0;
}
`)
	rep := port(t, m, DefaultOptions())
	if rep.Spinloops != 1 {
		t.Fatalf("spinloops = %d, want 1", rep.Spinloops)
	}
	for i, ord := range accessOrds(m, "locked") {
		if ord != ir.SeqCst {
			t.Errorf("access %d to @locked has order %s, want seq_cst", i, ord)
		}
	}
	// The unlock store must carry the sticky mark (it was reached via
	// alias exploration, not detected directly).
	var unlockStore *ir.Instr
	m.Func("unlock").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			unlockStore = in
		}
	})
	if !unlockStore.HasMark(ir.MarkSticky) {
		t.Error("unlock store missing sticky mark")
	}
}

// TestFigure5MessagePassing: the spinloop flag load and the writer's
// flag store both become SC; msg stays plain (TSO semantics are restored
// by the flag synchronization alone).
func TestFigure5MessagePassing(t *testing.T) {
	m := compile(t, `
int flag = 0;
int msg;
int out;
void reader(void) {
  while (flag != 1) { }
  out = msg;
}
void writer(void) {
  msg = 41;
  flag = 1;
}
`)
	rep := port(t, m, DefaultOptions())
	if rep.Spinloops != 1 || rep.Optiloops != 0 {
		t.Fatalf("spin/opt = %d/%d, want 1/0", rep.Spinloops, rep.Optiloops)
	}
	for i, ord := range accessOrds(m, "flag") {
		if ord != ir.SeqCst {
			t.Errorf("flag access %d order = %s", i, ord)
		}
	}
	for i, ord := range accessOrds(m, "msg") {
		if ord != ir.NotAtomic {
			t.Errorf("msg access %d order = %s, want plain", i, ord)
		}
	}
	if rep.ExplicitAdded != 0 {
		t.Errorf("explicit fences added = %d, want 0", rep.ExplicitAdded)
	}
}

// TestFigure6Seqlock: the optimistic loop produces SC accesses on the
// sequence counter plus explicit fences before in-loop counter reads and
// after counter stores.
func TestFigure6Seqlock(t *testing.T) {
	m := compile(t, `
int flag = 0;
int msg;
int out;

void reader(void) {
  int i;
  int data;
  do {
    i = flag;
    data = msg;
  } while (i % 2 != 0 || i != flag);
  out = data;
}

void writer(void) {
  flag = flag + 1;
  msg = 42;
  flag = flag + 1;
}
`)
	rep := port(t, m, DefaultOptions())
	if rep.Spinloops != 1 || rep.Optiloops != 1 {
		t.Fatalf("spin/opt = %d/%d, want 1/1", rep.Spinloops, rep.Optiloops)
	}
	for i, ord := range accessOrds(m, "flag") {
		if ord != ir.SeqCst {
			t.Errorf("flag access %d order = %s", i, ord)
		}
	}
	// Reader: each in-loop flag load is preceded by a fence. Two loads
	// in the source (i = flag, i != flag) → at least 2 fences in reader.
	countFences := func(fn string) int {
		n := 0
		m.Func(fn).Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpFence && in.HasMark(ir.MarkInsertedFence) {
				n++
			}
		})
		return n
	}
	if got := countFences("reader"); got != 2 {
		t.Errorf("reader fences = %d, want 2", got)
	}
	// Writer: a fence after each flag store (2 stores).
	if got := countFences("writer"); got != 2 {
		t.Errorf("writer fences = %d, want 2", got)
	}
	// Each writer fence must directly follow a flag store.
	wf := m.Func("writer")
	for _, b := range wf.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpFence && in.HasMark(ir.MarkInsertedFence) {
				if i == 0 || b.Instrs[i-1].Op != ir.OpStore {
					t.Errorf("writer fence not after a store")
				}
			}
		}
	}
}

// TestFigure7LfHash: the MariaDB lock-free hash pattern. The state field
// is the optimistic control; the cmpxchg in l_delete is a store to it
// and must be followed by a fence, protecting the subsequent key store.
func TestFigure7LfHash(t *testing.T) {
	m := compile(t, `
struct node { int state; int *key; };
struct node the_node;
int out;

void l_find(struct node *node) {
  int state;
  int *key;
  do {
    state = node->state;
    key = node->key;
  } while (state != node->state && state == 2);
  assert(key != 0);
}

void l_delete(struct node *node) {
  if (__cas(&node->state, 1, 2) == 1) {
    node->key = 0;
  }
}
`)
	rep := port(t, m, DefaultOptions())
	if rep.Spinloops != 1 {
		t.Fatalf("spinloops = %d, want 1", rep.Spinloops)
	}
	if rep.Optiloops != 1 {
		t.Fatalf("optiloops = %d, want 1", rep.Optiloops)
	}
	// All state accesses SC.
	for i, ord := range accessOrds(m, "node:0") {
		if ord != ir.SeqCst {
			t.Errorf("state access %d order = %s", i, ord)
		}
	}
	// l_delete: fence after the cmpxchg (which writes the optimistic
	// control).
	ld := m.Func("l_delete")
	found := false
	for _, b := range ld.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpCmpXchg && i+1 < len(b.Instrs) && b.Instrs[i+1].Op == ir.OpFence {
				found = true
			}
		}
	}
	if !found {
		t.Error("no fence after the state cmpxchg in l_delete")
	}
}

// TestLevels reproduces the structure of Table 2's ablation: the
// explicit level alone does not touch the unannotated spinloop; the spin
// level does.
func TestLevels(t *testing.T) {
	src := `
int flag = 0;
int msg;
int out;
void reader(void) {
  while (flag != 1) { }
  out = msg;
}
void writer(void) { msg = 41; flag = 1; }
`
	mExpl := compile(t, src)
	rep := port(t, mExpl, Options{Level: LevelExplicit})
	if rep.Spinloops != 0 {
		t.Errorf("explicit level detected spinloops")
	}
	for _, ord := range accessOrds(mExpl, "flag") {
		if ord != ir.NotAtomic {
			t.Errorf("explicit level transformed unannotated flag access")
		}
	}
	mSpin := compile(t, src)
	rep = port(t, mSpin, Options{Level: LevelSpin, Inline: true})
	if rep.Spinloops != 1 {
		t.Errorf("spin level found %d spinloops", rep.Spinloops)
	}
	for _, ord := range accessOrds(mSpin, "flag") {
		if ord != ir.SeqCst {
			t.Errorf("spin level left flag access plain")
		}
	}
}

// TestVolatileSeeding: a volatile global access becomes SC at the
// explicit level, and alias exploration then also converts unannotated
// accesses to the same global.
func TestVolatileSeeding(t *testing.T) {
	m := compile(t, `
volatile int v;
int g;
int touch(void) {
  v = 1;
  return v;
}
int plain(int *p) {
  *p = 5;      // unknown location: untouched
  g = v + 1;   // v read via alias exploration seed
  return g;
}
`)
	rep := port(t, m, Options{Level: LevelExplicit})
	if rep.VolatileConverted == 0 {
		t.Fatal("no volatile accesses converted")
	}
	for i, ord := range accessOrds(m, "v") {
		if ord != ir.SeqCst {
			t.Errorf("v access %d order = %s", i, ord)
		}
	}
	// g and *p stay plain at the explicit level (only v was annotated).
	for i, ord := range accessOrds(m, "g") {
		if ord != ir.NotAtomic {
			t.Errorf("g access %d transformed unexpectedly", i)
		}
	}
}

// TestAtomicUpgrade: weaker atomics are raised to seq_cst.
func TestAtomicUpgrade(t *testing.T) {
	m := compile(t, `
int x;
int f(void) {
  __store_rel(&x, 1);
  return __load_acq(&x);
}
`)
	rep := port(t, m, Options{Level: LevelExplicit})
	if rep.AtomicUpgraded != 2 {
		t.Fatalf("AtomicUpgraded = %d, want 2", rep.AtomicUpgraded)
	}
	for i, ord := range accessOrds(m, "x") {
		if ord != ir.SeqCst {
			t.Errorf("x access %d order = %s", i, ord)
		}
	}
}

// TestPortClone leaves the original untouched.
func TestPortClone(t *testing.T) {
	m := compile(t, `
int flag;
void w(void) { flag = 1; }
void r(void) { while (flag == 0) { } }
`)
	ported, rep, err := PortClone(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spinloops != 1 {
		t.Fatalf("spinloops = %d", rep.Spinloops)
	}
	for _, ord := range accessOrds(m, "flag") {
		if ord != ir.NotAtomic {
			t.Fatal("PortClone mutated the original module")
		}
	}
	for _, ord := range accessOrds(ported, "flag") {
		if ord != ir.SeqCst {
			t.Fatal("PortClone did not transform the clone")
		}
	}
}

// TestBarrierInventory: report counters are consistent with a recount.
func TestBarrierInventory(t *testing.T) {
	m := compile(t, `
volatile int flag;
int msg;
void writer(void) { msg = 1; flag = flag + 1; __fence(); msg = 2; flag = flag + 1; __fence(); }
int reader(void) {
  int i;
  int d;
  do { i = flag; d = msg; } while (i % 2 != 0 || i != flag);
  return d;
}
`)
	rep := port(t, m, DefaultOptions())
	gotExpl, gotImpl := transform.CountBarriers(m)
	if gotExpl != rep.ExplicitAfter || gotImpl != rep.ImplicitAfter {
		t.Fatalf("inventory mismatch: recount %d/%d, report %d/%d",
			gotExpl, gotImpl, rep.ExplicitAfter, rep.ImplicitAfter)
	}
	if rep.ExplicitAfter <= rep.ExplicitBefore {
		t.Errorf("expected fences added: before %d after %d", rep.ExplicitBefore, rep.ExplicitAfter)
	}
	if rep.ImplicitAfter <= rep.ImplicitBefore {
		t.Errorf("expected implicit barriers added: before %d after %d", rep.ImplicitBefore, rep.ImplicitAfter)
	}
}
