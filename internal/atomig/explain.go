package atomig

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/race"
)

// RaceLocale is the explanation of all races on one symbolic location:
// the detector's reports plus the static picture of the location — the
// plain accesses the port should have promoted and how many accesses
// are already atomic (a mixed location is the classic migration gap:
// one side of the protocol was ported, its buddies were not).
type RaceLocale struct {
	Loc alias.Loc
	// Reports are the detector findings attributed to this location.
	Reports []*race.Report
	// PlainSites are the module's non-atomic accesses to the location —
	// the promotion candidates.
	PlainSites []*ir.Instr
	// AtomicSites counts the accesses already atomic.
	AtomicSites int
}

// Gap reports whether the location is partially ported: some accesses
// atomic, some plain. These are the highest-confidence findings — the
// programmer (or the pipeline) already decided the location needs
// atomicity and missed the rest.
func (l *RaceLocale) Gap() bool { return l.AtomicSites > 0 && len(l.PlainSites) > 0 }

// RaceExplanation maps a detector's reports back onto the module's
// alias structure.
type RaceExplanation struct {
	Locales []*RaceLocale
	// Unattributed holds reports whose accesses resolve to no shared
	// location descriptor (dynamically computed addresses the type-based
	// scheme cannot name).
	Unattributed []*race.Report
}

// ExplainRaces groups race reports by symbolic location and joins them
// with the module's alias map, producing the feedback a migration
// engineer acts on: which globals or struct fields still have plain
// accesses, where those accesses are, and whether the location is
// already partially atomic. The module must be the same (un-ported)
// module the detector observed — sites are matched through the alias
// map built from it.
func ExplainRaces(m *ir.Module, reports []*race.Report) *RaceExplanation {
	am := alias.BuildMap(m)
	byLoc := make(map[alias.Loc]*RaceLocale)
	out := &RaceExplanation{}
	for _, r := range reports {
		if !r.Loc.Shared() {
			out.Unattributed = append(out.Unattributed, r)
			continue
		}
		l := byLoc[r.Loc]
		if l == nil {
			l = &RaceLocale{Loc: r.Loc}
			for _, in := range am.Buddies(r.Loc) {
				if in.Ord.Atomic() {
					l.AtomicSites++
				} else {
					l.PlainSites = append(l.PlainSites, in)
				}
			}
			byLoc[r.Loc] = l
			out.Locales = append(out.Locales, l)
		}
		l.Reports = append(l.Reports, r)
	}
	// Gaps first (strongest signal), then by location name for stable
	// output.
	sort.SliceStable(out.Locales, func(i, j int) bool {
		a, b := out.Locales[i], out.Locales[j]
		if a.Gap() != b.Gap() {
			return a.Gap()
		}
		return a.Loc.String() < b.Loc.String()
	})
	return out
}

// String renders the explanation as the -explain-races CLI output.
func (e *RaceExplanation) String() string {
	var b strings.Builder
	if len(e.Locales) == 0 && len(e.Unattributed) == 0 {
		return "no races to explain\n"
	}
	for _, l := range e.Locales {
		fmt.Fprintf(&b, "%s: %d race(s), %d plain access(es), %d atomic\n",
			l.Loc, len(l.Reports), len(l.PlainSites), l.AtomicSites)
		if l.Gap() {
			fmt.Fprintf(&b, "  migration gap: location is partially atomic — promote the remaining plain accesses\n")
		} else if l.AtomicSites == 0 {
			fmt.Fprintf(&b, "  unported location: no access is atomic — a synchronization pattern the detection missed, or an unprotected shared location\n")
		}
		for _, in := range l.PlainSites {
			fmt.Fprintf(&b, "  promote: %s\n", race.SiteString(in))
		}
	}
	for _, r := range e.Unattributed {
		fmt.Fprintf(&b, "unattributed (dynamic address %#x):\n%s", uint64(r.Addr), r)
	}
	return b.String()
}
