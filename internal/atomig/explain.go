package atomig

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/race"
)

// RaceLocale is the explanation of all races on one symbolic location:
// the detector's reports plus the static picture of the location — the
// plain accesses the port should have promoted and how many accesses
// are already atomic (a mixed location is the classic migration gap:
// one side of the protocol was ported, its buddies were not).
type RaceLocale struct {
	Loc alias.Loc
	// Reports are the detector findings attributed to this location.
	Reports []*race.Report
	// PlainSites are the module's non-atomic accesses to the location —
	// the promotion candidates.
	PlainSites []*ir.Instr
	// AtomicSites counts the accesses already atomic.
	AtomicSites int
	// Weakened lists accepted post-port weakenings on this location,
	// joined in by AnnotateWeakenings when the caller also ran the
	// optimizer — so "promote this" advice and "this was relaxed"
	// output are shown together instead of contradicting each other.
	Weakened []WeakenedNote
}

// WeakenedNote is one accepted ordering weakening attributed to a
// symbolic location, supplied by callers that ran the post-port
// optimizer (cmd/atomig -O; see internal/weaken).
type WeakenedNote struct {
	// Loc is the alias descriptor the weakened access resolved to.
	Loc string
	// Site is the access rendering with provenance.
	Site string
	// From and To are the orderings before and after.
	From, To string
}

// Gap reports whether the location is partially ported: some accesses
// atomic, some plain. These are the highest-confidence findings — the
// programmer (or the pipeline) already decided the location needs
// atomicity and missed the rest.
func (l *RaceLocale) Gap() bool { return l.AtomicSites > 0 && len(l.PlainSites) > 0 }

// RaceExplanation maps a detector's reports back onto the module's
// alias structure.
type RaceExplanation struct {
	Locales []*RaceLocale
	// Unattributed holds reports whose accesses resolve to no shared
	// location descriptor (dynamically computed addresses the type-based
	// scheme cannot name).
	Unattributed []*race.Report
}

// ExplainRaces groups race reports by symbolic location and joins them
// with the module's alias map, producing the feedback a migration
// engineer acts on: which globals or struct fields still have plain
// accesses, where those accesses are, and whether the location is
// already partially atomic. The module must be the same (un-ported)
// module the detector observed — sites are matched through the alias
// map built from it.
func ExplainRaces(m *ir.Module, reports []*race.Report) *RaceExplanation {
	am := alias.BuildMap(m)
	byLoc := make(map[alias.Loc]*RaceLocale)
	out := &RaceExplanation{}
	for _, r := range reports {
		if !r.Loc.Shared() {
			out.Unattributed = append(out.Unattributed, r)
			continue
		}
		l := byLoc[r.Loc]
		if l == nil {
			l = &RaceLocale{Loc: r.Loc}
			for _, in := range am.Buddies(r.Loc) {
				if in.Ord.Atomic() {
					l.AtomicSites++
				} else {
					l.PlainSites = append(l.PlainSites, in)
				}
			}
			byLoc[r.Loc] = l
			out.Locales = append(out.Locales, l)
		}
		l.Reports = append(l.Reports, r)
	}
	// Gaps first (strongest signal), then by location name for stable
	// output.
	sort.SliceStable(out.Locales, func(i, j int) bool {
		a, b := out.Locales[i], out.Locales[j]
		if a.Gap() != b.Gap() {
			return a.Gap()
		}
		return a.Loc.String() < b.Loc.String()
	})
	return out
}

// AnnotateWeakenings joins post-port weakening decisions onto the
// explanation's locales by alias descriptor. A site weakened over
// several rounds (seq_cst -> release -> relaxed) collapses to one note
// showing the net transition; notes on locations the detector never
// implicated are dropped — the join exists to qualify race advice, not
// to duplicate the optimizer's own report.
func (e *RaceExplanation) AnnotateWeakenings(notes []WeakenedNote) {
	// Collapse chains per site: notes arrive in round order, so the
	// first gives the starting ordering and the last the final one.
	type key struct{ loc, site string }
	idx := make(map[key]int)
	var collapsed []WeakenedNote
	for _, n := range notes {
		if n.Loc == "" {
			continue
		}
		k := key{n.Loc, siteName(n.Site)}
		if i, ok := idx[k]; ok {
			collapsed[i].To = n.To
			continue
		}
		idx[k] = len(collapsed)
		collapsed = append(collapsed, n)
	}
	byLoc := make(map[string][]WeakenedNote)
	for _, n := range collapsed {
		byLoc[n.Loc] = append(byLoc[n.Loc], n)
	}
	for _, l := range e.Locales {
		l.Weakened = append(l.Weakened, byLoc[l.Loc.String()]...)
	}
}

// siteName strips the instruction rendering from a site string,
// keeping the positional "@fn %blk #idx" prefix — the ordering in the
// rendered part changes between rounds, the position does not.
func siteName(site string) string {
	if i := strings.Index(site, ": "); i >= 0 {
		return site[:i]
	}
	return site
}

// String renders the explanation as the -explain-races CLI output.
func (e *RaceExplanation) String() string {
	var b strings.Builder
	if len(e.Locales) == 0 && len(e.Unattributed) == 0 {
		return "no races to explain\n"
	}
	for _, l := range e.Locales {
		fmt.Fprintf(&b, "%s: %d race(s), %d plain access(es), %d atomic\n",
			l.Loc, len(l.Reports), len(l.PlainSites), l.AtomicSites)
		if l.Gap() {
			fmt.Fprintf(&b, "  migration gap: location is partially atomic — promote the remaining plain accesses\n")
		} else if l.AtomicSites == 0 {
			fmt.Fprintf(&b, "  unported location: no access is atomic — a synchronization pattern the detection missed, or an unprotected shared location\n")
		}
		for _, in := range l.PlainSites {
			fmt.Fprintf(&b, "  promote: %s\n", race.SiteString(in))
		}
		if len(l.Weakened) > 0 {
			fmt.Fprintf(&b, "  note: after porting, the optimizer weakened %d promoted access(es) here — the checker proved seq_cst stronger than this location needs:\n", len(l.Weakened))
			for _, n := range l.Weakened {
				fmt.Fprintf(&b, "    weakened: %s: %s -> %s\n", n.Site, n.From, n.To)
			}
		}
	}
	for _, r := range e.Unattributed {
		fmt.Fprintf(&b, "unattributed (dynamic address %#x):\n%s", uint64(r.Addr), r)
	}
	return b.String()
}
