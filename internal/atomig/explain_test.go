package atomig

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/memmodel"
	"repro/internal/race"
)

// sweepCorpus compiles a corpus program and runs the race detector over
// it, returning the module and the reports.
func sweepCorpus(t *testing.T, name string) (*RaceExplanation, string) {
	t.Helper()
	p := corpus.Get(name)
	if p == nil {
		t.Fatalf("corpus program %q not registered", name)
	}
	m, err := p.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := race.Sweep(m, race.SweepOptions{
		Model:   memmodel.ModelWMM,
		Entries: p.MCEntries,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	ex := ExplainRaces(m, res.Races())
	return ex, ex.String()
}

// TestExplainSeqlockGap: the explanation must single out %gen:0 as a
// migration gap (the reader's load is atomic, the writer's stores are
// plain) and list the writer's stores as promotion candidates.
func TestExplainSeqlockGap(t *testing.T) {
	ex, out := sweepCorpus(t, "seqlock-gap")
	var gap *RaceLocale
	for _, l := range ex.Locales {
		if l.Loc.String() == "%gen:0" {
			gap = l
		}
	}
	if gap == nil {
		t.Fatalf("no locale for %%gen:0:\n%s", out)
	}
	if !gap.Gap() {
		t.Fatalf("%%gen:0 not classified as a migration gap (plain=%d atomic=%d)",
			len(gap.PlainSites), gap.AtomicSites)
	}
	if len(gap.PlainSites) != 2 {
		t.Fatalf("expected the writer's 2 plain seq stores, got %d", len(gap.PlainSites))
	}
	for _, in := range gap.PlainSites {
		if !strings.Contains(race.SiteString(in), "@writer") {
			t.Errorf("promotion candidate outside @writer: %s", race.SiteString(in))
		}
	}
	// Gaps sort first: the partially atomic location leads the output.
	if ex.Locales[0] != gap {
		t.Errorf("migration gap not sorted first")
	}
	for _, want := range []string{"migration gap", "promote: @writer", "%gen:0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

// TestExplainUnportedLocation: mp has no atomic accesses at all, so its
// locations are classified as unported rather than as gaps.
func TestExplainUnportedLocation(t *testing.T) {
	ex, out := sweepCorpus(t, "mp")
	if len(ex.Locales) == 0 {
		t.Fatalf("no locales for mp:\n%s", out)
	}
	for _, l := range ex.Locales {
		if l.Gap() {
			t.Errorf("%s misclassified as partially-ported gap", l.Loc)
		}
		if l.AtomicSites != 0 {
			t.Errorf("%s has %d atomic sites in unported mp", l.Loc, l.AtomicSites)
		}
	}
	if !strings.Contains(out, "unported location") {
		t.Errorf("output lacks unported-location classification:\n%s", out)
	}
}

// TestExplainEmpty: no reports, no noise.
func TestExplainEmpty(t *testing.T) {
	p := corpus.Get("mp")
	m, err := p.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ex := ExplainRaces(m, nil)
	if len(ex.Locales) != 0 || len(ex.Unattributed) != 0 {
		t.Fatal("non-empty explanation from no reports")
	}
	if !strings.Contains(ex.String(), "no races") {
		t.Errorf("empty rendering = %q", ex.String())
	}
}
