package atomig

import (
	"testing"

	"repro/internal/ir"
)

// pollingSrc uses a bounded retry loop with a wait hint instead of a
// strict spinloop — the message-passing flavor the paper's discussion
// section says the shipped pipeline misses.
const pollingSrc = `
int flag;
int msg;
int out;

int wait_published(void) {
  for (int i = 0; i < 100000; i = i + 1) {
    if (flag == 1) { return 1; }
    pause();
  }
  return 0;
}

void reader(void) {
  if (wait_published() == 1) {
    out = msg;
  }
}

void writer(void) {
  msg = 1;
  flag = 1;
}
`

func TestPollingExtension(t *testing.T) {
	// Without the extension: no pattern is detected and flag stays plain.
	m1 := compile(t, pollingSrc)
	rep := port(t, m1, DefaultOptions())
	if rep.Spinloops != 0 || rep.PollingLoops != 0 {
		t.Fatalf("unexpected detections without extension: %+v", rep)
	}
	for _, ord := range accessOrds(m1, "flag") {
		if ord != ir.NotAtomic {
			t.Fatal("flag transformed without polling detection")
		}
	}
	// With the extension: the retry loop's flag reads become controls,
	// and alias exploration converts the writer's flag store.
	m2 := compile(t, pollingSrc)
	opts := DefaultOptions()
	opts.DetectPolling = true
	rep = port(t, m2, opts)
	// Two static sites: the helper itself and its inlined copy in the
	// reader.
	if rep.PollingLoops < 1 {
		t.Fatalf("polling loops = %d, want >= 1", rep.PollingLoops)
	}
	for i, ord := range accessOrds(m2, "flag") {
		if ord != ir.SeqCst {
			t.Errorf("flag access %d order = %s after polling detection", i, ord)
		}
	}
}

func TestBarrierSeedExtension(t *testing.T) {
	src := `
int a;
int b;
void publish(void) {
  a = 1;
  __asm__(":::memory");
  b = 1;
}
int observe(void) {
  return a + b;
}
`
	m1 := compile(t, src)
	rep := port(t, m1, DefaultOptions())
	if rep.BarrierSeeded != 0 {
		t.Fatal("barrier seeding ran without the flag")
	}
	m2 := compile(t, src)
	opts := DefaultOptions()
	opts.BarrierSeeds = true
	rep = port(t, m2, opts)
	if rep.BarrierSeeded != 2 {
		t.Fatalf("BarrierSeeded = %d, want 2", rep.BarrierSeeded)
	}
	// Both globals become atomic everywhere (including in observe, via
	// alias exploration).
	for _, g := range []string{"a", "b"} {
		for i, ord := range accessOrds(m2, g) {
			if ord != ir.SeqCst {
				t.Errorf("%s access %d order = %s", g, i, ord)
			}
		}
	}
}

func TestSkipAliasAblation(t *testing.T) {
	src := `
int flag;
void w(void) { flag = 1; }
void r(void) { while (flag == 0) { } }
`
	m := compile(t, src)
	opts := DefaultOptions()
	opts.SkipAlias = true
	rep := port(t, m, opts)
	if rep.StickyMarked != 0 {
		t.Fatal("alias exploration ran despite SkipAlias")
	}
	// The spin control itself is converted, but the writer's store is
	// not — demonstrating why "once atomic, always atomic" matters.
	var writerStore *ir.Instr
	m.Func("w").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore {
			writerStore = in
		}
	})
	if writerStore.Ord.Atomic() {
		t.Fatal("writer store converted without alias exploration")
	}
	if rep.Spinloops != 1 {
		t.Fatalf("spinloops = %d", rep.Spinloops)
	}
}

func TestOptimizeStage(t *testing.T) {
	src := `
int flag;
int msg;
void writer(void) {
  int k = 2 * 3;   // foldable
  msg = k;
  flag = 1;
}
void reader(void) {
  while (flag == 0) { }
  assert(msg == 6);
}
`
	m := compile(t, src)
	opts := DefaultOptions()
	opts.Optimize = true
	rep := port(t, m, opts)
	if rep.OptFolded == 0 && rep.OptRemoved == 0 {
		t.Errorf("optimizer did nothing: %+v", rep)
	}
	// The spin load must have survived -O2 (it is seq_cst).
	var spinLoads int
	m.Func("reader").Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad && in.Ord == ir.SeqCst {
			spinLoads++
		}
	})
	if spinLoads == 0 {
		t.Fatal("optimizer removed the spin-control load")
	}
}
