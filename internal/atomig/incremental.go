// Incremental detection: per-function analysis verdicts content-addressed
// by function-body hash. The whole detection phase — dominator trees,
// natural-loop discovery, influence slices, alias descriptor computation
// (alias.Reprs), barrier-seed and atomic-access collection, and the
// explicit-annotation upgrade mutations — is a pure function of the
// function body (plus the module's struct layouts, global annotations,
// and the pipeline options, all folded into the cache-key salt), so a
// long-lived service can cache its outcome and replay it onto a fresh
// clone of the same function in a single walk. The upgrade mutations
// replay through the same transform.MakeAccessSC calls the cold path
// makes, and every ordinal is validated before anything mutates, so a
// summary that does not fit falls back to full re-analysis and the
// ported output is byte-identical either way (docs/SERVE.md covers the
// invalidation rules).
package atomig

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/alias"
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/transform"
)

// DetectCache is the seam a long-lived caller (internal/serve) plugs
// into Options.Detect. Keys are FuncKey hashes; values are immutable
// after Put. Implementations must be safe for concurrent use — the
// detection phase calls Get/Put from every pipeline worker.
type DetectCache interface {
	Get(key string) (*FuncSummary, bool)
	Put(key string, s *FuncSummary)
}

// MemCache is the reference DetectCache: a mutex-guarded map with a
// wipe switch for poisoning recovery (a request that panicked mid-port
// may have published summaries computed from corrupted state, so the
// daemon clears the whole cache — correctness never depends on cache
// contents, only speed does).
type MemCache struct {
	mu sync.RWMutex
	m  map[string]*FuncSummary
}

// NewMemCache returns an empty cache.
func NewMemCache() *MemCache {
	return &MemCache{m: make(map[string]*FuncSummary)}
}

// Get implements DetectCache.
func (c *MemCache) Get(key string) (*FuncSummary, bool) {
	c.mu.RLock()
	s, ok := c.m[key]
	c.mu.RUnlock()
	return s, ok
}

// Put implements DetectCache.
func (c *MemCache) Put(key string, s *FuncSummary) {
	c.mu.Lock()
	c.m[key] = s
	c.mu.Unlock()
}

// Len returns the number of cached summaries.
func (c *MemCache) Len() int {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return n
}

// Clear evicts every entry.
func (c *MemCache) Clear() {
	c.mu.Lock()
	c.m = make(map[string]*FuncSummary)
	c.mu.Unlock()
}

// CacheSalt fingerprints everything outside the function body that a
// cached detection verdict depends on: the detection options, the
// module's named struct layouts (alias.Reprs navigates struct fields, so
// two textually identical functions analyze differently under different
// layouts), and the globals' volatile/atomic annotations (the upgrade
// mutations replayed from a summary must not leak across modules that
// annotate the same global differently). The post-port optimize
// configuration (OptimizeSalt) is folded in too: detection never reads
// it, but keying on it guarantees a daemon toggling -O options starts
// from a clean incremental slate instead of replaying state computed
// under a different configuration. Ports of modules sharing a salt may
// share a DetectCache.
func CacheSalt(m *ir.Module, opts Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "atomig.detect/v3|level=%d|polling=%t|barrier=%t|opt=%s\n",
		opts.Level, opts.DetectPolling, opts.BarrierSeeds, opts.OptimizeSalt)
	names := make([]string, 0, len(m.Structs))
	for n := range m.Structs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		io.WriteString(h, m.Structs[n].Layout())
		io.WriteString(h, "\n")
	}
	names = names[:0]
	anns := make(map[string]string, len(m.Globals))
	for _, g := range m.Globals {
		if g.Volatile || g.Atomic {
			names = append(names, g.GName)
			anns[g.GName] = fmt.Sprintf("@%s|%t|%t\n", g.GName, g.Volatile, g.Atomic)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		io.WriteString(h, anns[n])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FuncKey is the detection-cache key of f under salt: a content hash of
// the (un-ported) function body. Callers that own a stable module may
// precompute keys once and pass them via Options.FuncHashes.
func FuncKey(salt string, f *ir.Func) string {
	h := sha256.New()
	io.WriteString(h, salt)
	io.WriteString(h, ir.FuncString(f))
	return hex.EncodeToString(h.Sum(nil))
}

// FuncSummary is one function's cached detection verdict, encoded
// positionally (instruction ordinals within the block-order walk, block
// indices within f.Blocks) so it can be replayed onto any instruction-
// identical instance of the function. It captures the complete
// detection-phase result — loop analyses, alias contributions, barrier
// seeds, pre-annotated atomics, and the explicit-annotation upgrades
// (the phase's only mutations) — so a cache hit replays the whole
// phase in a single walk.
type FuncSummary struct {
	spin     []loopSummary
	polling  []loopSummary
	accesses []accessSummary
	upgrades []upgradeSummary
	barriers []int32 // ordinals of compiler-barrier seed accesses
	atomics  []int32 // ordinals of post-upgrade atomic accesses
}

// upgradeSummary position-encodes one explicit-annotation upgrade: the
// mutation MakeAccessSC applies to the access at ordinal pos, either
// from a volatile annotation or from a weaker atomic ordering.
type upgradeSummary struct {
	pos      int32
	volatile bool
}

// loopSummary position-encodes one analysis.SpinloopInfo.
type loopSummary struct {
	controls    []int32
	controlLocs []alias.Loc
	optimistic  bool
	header      int32
	blocks      []int32
}

// accessSummary position-encodes one memory access's alias
// contribution (alias.Access without the instruction pointer).
type accessSummary struct {
	pos     int32
	primary alias.Loc
	extras  []alias.Loc
}

// funcScan is the positional index of one function instance: the
// block-order instruction array (ordinal -> instruction) and its
// inverses. Only the cold path (summarize) needs the inverse maps; the
// replay path works from the flat array alone.
type funcScan struct {
	instrs   []*ir.Instr
	index    map[*ir.Instr]int
	blockIdx map[*ir.Block]int
}

// flatInstrs returns f's instructions in block order — the positional
// coordinate system every summary ordinal refers to.
func flatInstrs(f *ir.Func) []*ir.Instr {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	out := make([]*ir.Instr, 0, n)
	for _, b := range f.Blocks {
		out = append(out, b.Instrs...)
	}
	return out
}

func newFuncScan(f *ir.Func) *funcScan {
	sc := &funcScan{
		instrs:   flatInstrs(f),
		blockIdx: make(map[*ir.Block]int, len(f.Blocks)),
	}
	for bi, b := range f.Blocks {
		sc.blockIdx[b] = bi
	}
	sc.index = make(map[*ir.Instr]int, len(sc.instrs))
	for i, in := range sc.instrs {
		sc.index[in] = i
	}
	return sc
}

// summarize encodes the complete detection result against the function
// instance it was computed on. It runs after the upgrade pass, so the
// upgraded accesses are identified by their marks.
func summarize(f *ir.Func, d funcDetect, accs []alias.Access) *FuncSummary {
	sc := newFuncScan(f)
	s := &FuncSummary{
		spin:    summarizeLoops(d.spin, sc),
		polling: summarizeLoops(d.polling, sc),
	}
	for _, a := range accs {
		s.accesses = append(s.accesses, accessSummary{
			pos:     int32(a.Pos),
			primary: a.Primary,
			extras:  a.Extras,
		})
	}
	for i, in := range sc.instrs {
		switch {
		case in.HasMark(ir.MarkFromVolatile):
			s.upgrades = append(s.upgrades, upgradeSummary{pos: int32(i), volatile: true})
		case in.HasMark(ir.MarkFromAtomic):
			s.upgrades = append(s.upgrades, upgradeSummary{pos: int32(i)})
		}
	}
	for _, in := range d.barrier {
		s.barriers = append(s.barriers, int32(sc.index[in]))
	}
	for _, in := range d.atomics {
		s.atomics = append(s.atomics, int32(sc.index[in]))
	}
	return s
}

func summarizeLoops(infos []*analysis.SpinloopInfo, sc *funcScan) []loopSummary {
	out := make([]loopSummary, 0, len(infos))
	for _, info := range infos {
		ls := loopSummary{
			controlLocs: append([]alias.Loc(nil), info.ControlLocs...),
			optimistic:  info.Optimistic,
			header:      -1,
		}
		for _, ctl := range info.Controls {
			ls.controls = append(ls.controls, int32(sc.index[ctl]))
		}
		if info.Loop != nil {
			if hi, ok := sc.blockIdx[info.Loop.Header]; ok {
				ls.header = int32(hi)
			}
			for b := range info.Loop.Blocks {
				ls.blocks = append(ls.blocks, int32(sc.blockIdx[b]))
			}
			sort.Slice(ls.blocks, func(i, j int) bool { return ls.blocks[i] < ls.blocks[j] })
		}
		out = append(out, ls)
	}
	return out
}

// replay materializes the complete detection result — including the
// upgrade mutations — against a fresh instance of the same function.
// Every ordinal is validated before anything is mutated, so a rejected
// summary (hash collision, corrupted cache entry) leaves the function
// untouched and ok false — the caller falls back to full re-analysis,
// the safe degradation mode.
func (s *FuncSummary) replay(f *ir.Func) (d funcDetect, accs []alias.Access, ok bool) {
	instrs := flatInstrs(f)
	if d.spin, ok = replayLoops(s.spin, f, instrs); !ok {
		return funcDetect{}, nil, false
	}
	if d.polling, ok = replayLoops(s.polling, f, instrs); !ok {
		return funcDetect{}, nil, false
	}
	// The i-th cached access must be the i-th memory access of the walk;
	// the recorded position double-checks the pairing.
	pos, ai := 0, 0
	for _, in := range instrs {
		pos++
		if !in.IsMemAccess() {
			continue
		}
		if ai >= len(s.accesses) || int(s.accesses[ai].pos) != pos {
			return funcDetect{}, nil, false
		}
		a := s.accesses[ai]
		accs = append(accs, alias.Access{In: in, Pos: pos, Primary: a.primary, Extras: a.extras})
		ai++
	}
	if ai != len(s.accesses) {
		return funcDetect{}, nil, false
	}
	// Validate the mutation and seed ordinals against the pre-upgrade
	// instruction state. An atomics entry may name an access that only
	// becomes atomic via an upgrade, so those are cross-checked against
	// the upgrade list.
	for _, u := range s.upgrades {
		if int(u.pos) >= len(instrs) || !instrs[u.pos].IsMemAccess() {
			return funcDetect{}, nil, false
		}
		in := instrs[u.pos]
		if in.Ord == ir.SeqCst {
			return funcDetect{}, nil, false
		}
		if u.volatile && !in.Volatile {
			return funcDetect{}, nil, false
		}
		if !u.volatile && !in.Ord.Atomic() {
			return funcDetect{}, nil, false
		}
	}
	for _, ord := range s.barriers {
		if int(ord) >= len(instrs) || !instrs[ord].IsMemAccess() {
			return funcDetect{}, nil, false
		}
	}
	for _, ord := range s.atomics {
		if int(ord) >= len(instrs) || !instrs[ord].IsMemAccess() {
			return funcDetect{}, nil, false
		}
		if !instrs[ord].Ord.Atomic() && !upgradedAt(s.upgrades, ord) {
			return funcDetect{}, nil, false
		}
	}
	// Everything fits; apply the mutations and resolve the seed lists.
	for _, u := range s.upgrades {
		if u.volatile {
			transform.MakeAccessSC(instrs[u.pos], ir.MarkFromVolatile)
			d.expl.VolatileConverted++
		} else {
			transform.MakeAccessSC(instrs[u.pos], ir.MarkFromAtomic)
			d.expl.AtomicUpgraded++
		}
	}
	if len(s.barriers) > 0 {
		d.barrier = make([]*ir.Instr, len(s.barriers))
		for i, ord := range s.barriers {
			d.barrier[i] = instrs[ord]
		}
	}
	if len(s.atomics) > 0 {
		d.atomics = make([]*ir.Instr, len(s.atomics))
		for i, ord := range s.atomics {
			d.atomics[i] = instrs[ord]
		}
	}
	return d, accs, true
}

// upgradedAt reports whether the upgrade list touches ordinal ord.
func upgradedAt(ups []upgradeSummary, ord int32) bool {
	for _, u := range ups {
		if u.pos == ord {
			return true
		}
	}
	return false
}

func replayLoops(sums []loopSummary, f *ir.Func, instrs []*ir.Instr) ([]*analysis.SpinloopInfo, bool) {
	if len(sums) == 0 {
		return nil, true
	}
	out := make([]*analysis.SpinloopInfo, 0, len(sums))
	for _, ls := range sums {
		info := &analysis.SpinloopInfo{
			Fn:          f,
			Optimistic:  ls.optimistic,
			ControlLocs: append([]alias.Loc(nil), ls.controlLocs...),
		}
		for _, ord := range ls.controls {
			if int(ord) >= len(instrs) {
				return nil, false
			}
			info.Controls = append(info.Controls, instrs[ord])
		}
		loop := &analysis.Loop{Blocks: make(map[*ir.Block]bool, len(ls.blocks))}
		if ls.header >= 0 {
			if int(ls.header) >= len(f.Blocks) {
				return nil, false
			}
			loop.Header = f.Blocks[ls.header]
		}
		for _, bi := range ls.blocks {
			if int(bi) >= len(f.Blocks) {
				return nil, false
			}
			loop.Blocks[f.Blocks[bi]] = true
		}
		info.Loop = loop
		out = append(out, info)
	}
	return out, true
}

// detectFunc is the per-function unit of the detection phase. A cache
// hit replays the entire phase — analyses, seeds, and the upgrade
// mutations — from the summary in one walk; a miss (or a summary that
// fails validation) runs the real analyses and publishes a fresh
// summary. Returns the function's result slot, its prepared alias
// contributions, and whether the cache served the phase.
func detectFunc(f *ir.Func, opts Options, key string) (d funcDetect, accs []alias.Access, hit bool) {
	if opts.Detect != nil && key != "" {
		if sum, found := opts.Detect.Get(key); found {
			if d, accs, ok := sum.replay(f); ok {
				return d, accs, true
			}
		}
	}

	d.expl = transform.UpgradeExplicitAnnotationsFunc(f)
	if opts.Level >= LevelSpin {
		d.spin = analysis.DetectSpinloops(f)
		if opts.DetectPolling {
			d.polling = analysis.DetectPollingLoops(f)
		}
	}
	accs = alias.PrepareFunc(f)
	if opts.BarrierSeeds {
		d.barrier = analysis.CompilerBarrierSeeds(f)
	}
	f.Instrs(func(in *ir.Instr) {
		if in.IsMemAccess() && in.Ord.Atomic() {
			d.atomics = append(d.atomics, in)
		}
	})
	if opts.Detect != nil && key != "" {
		opts.Detect.Put(key, summarize(f, d, accs))
	}
	return d, accs, false
}
