package atomig

import (
	"context"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/appgen"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/leakcheck"
)

// mustClone deep-copies a module or fails the test.
func mustClone(t *testing.T, m *ir.Module) *ir.Module {
	t.Helper()
	c, err := ir.CloneModule(m)
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	return c
}

// inlineLike applies the same inlining pass Port would run under opts,
// producing the analyzed snapshot a daemon hashes against.
func inlineLike(t *testing.T, m *ir.Module, opts Options) {
	t.Helper()
	if opts.Inline {
		analysis.Inline(m, opts.InlineOptions)
	}
}

// TestDetectCacheByteIdentity is the core incremental contract: porting
// with a cold cache, porting with a warm cache, and porting without any
// cache all produce byte-identical modules — the cache only changes how
// the analyses are obtained, never what the port does.
func TestDetectCacheByteIdentity(t *testing.T) {
	leakcheck.Check(t)
	for _, spec := range []appgen.ModuleSpec{
		{Name: "mix", Seed: 9, SpinSites: 3, StructSpinSites: 2, StructKinds: 1,
			NestedSpinSites: 2, SeqlockSites: 2, VolatileVars: 2, AtomicVars: 2, DataGlobals: 8, FillerFuncs: 16},
		appgen.LargeSpec("cache-8k", 8000, 11),
	} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			base, _ := compileLarge(t, spec)

			ref, _, err := PortClone(base, DefaultOptions())
			if err != nil {
				t.Fatalf("uncached port: %v", err)
			}
			want := ref.String()

			cache := NewMemCache()
			opts := DefaultOptions()
			opts.Detect = cache
			opts.Workers = 4

			cold, coldRep, err := PortClone(base, opts)
			if err != nil {
				t.Fatalf("cold port: %v", err)
			}
			if got := cold.String(); got != want {
				t.Errorf("cold-cache port differs from uncached port")
			}
			if coldRep.CacheMisses == 0 || coldRep.CacheHits != 0 {
				t.Errorf("cold run: hits=%d misses=%d, want 0 hits and >0 misses",
					coldRep.CacheHits, coldRep.CacheMisses)
			}
			if cache.Len() == 0 {
				t.Errorf("cold run populated no cache entries")
			}

			warm, warmRep, err := PortClone(base, opts)
			if err != nil {
				t.Fatalf("warm port: %v", err)
			}
			if got := warm.String(); got != want {
				t.Errorf("warm-cache port differs from uncached port")
			}
			if warmRep.CacheMisses != 0 || warmRep.CacheHits == 0 {
				t.Errorf("warm run: hits=%d misses=%d, want 0 misses and >0 hits",
					warmRep.CacheHits, warmRep.CacheMisses)
			}
		})
	}
}

// TestDetectCachePrecomputedHashes checks Options.FuncHashes: supplying
// the keys up front must hit exactly like hashing in place, and a
// wrong-length slice falls back silently.
func TestDetectCachePrecomputedHashes(t *testing.T) {
	base, _ := compileLarge(t, appgen.LargeSpec("hashes-4k", 4000, 3))
	cache := NewMemCache()
	opts := DefaultOptions()
	opts.Detect = cache
	if _, _, err := PortClone(base, opts); err != nil {
		t.Fatalf("cold port: %v", err)
	}

	// The daemon hashes the analyzed snapshot: post-inline bodies under
	// Inline=false options — mirror that here.
	popts := opts
	popts.Inline = false
	snap := mustClone(t, base)
	inlineLike(t, snap, opts)
	salt := CacheSalt(snap, popts)
	hashes := make([]string, len(snap.Funcs))
	for i, f := range snap.Funcs {
		hashes[i] = FuncKey(salt, f)
	}
	popts.FuncHashes = hashes
	ported, rep, err := PortClone(snap, popts)
	if err != nil {
		t.Fatalf("hashed port: %v", err)
	}
	if rep.CacheMisses != 0 || rep.CacheHits == 0 {
		t.Errorf("precomputed hashes: hits=%d misses=%d, want all hits", rep.CacheHits, rep.CacheMisses)
	}
	ref, _, err := PortClone(base, DefaultOptions())
	if err != nil {
		t.Fatalf("reference port: %v", err)
	}
	if ported.String() != ref.String() {
		t.Errorf("hash-fed port differs from reference port")
	}

	// Wrong-length FuncHashes must be ignored, not crash or mis-key.
	popts.FuncHashes = hashes[:1]
	ported2, _, err := PortClone(snap, popts)
	if err != nil {
		t.Fatalf("short-hash port: %v", err)
	}
	if ported2.String() != ref.String() {
		t.Errorf("short-hash port differs from reference port")
	}
}

// corruptCache wraps a MemCache and hands back summaries that cannot
// replay (positions beyond any function), forcing the fallback path.
type corruptCache struct{ inner *MemCache }

func (c *corruptCache) Get(key string) (*FuncSummary, bool) {
	if _, ok := c.inner.Get(key); ok {
		return &FuncSummary{accesses: []accessSummary{{pos: 1 << 30}}}, true
	}
	return nil, false
}
func (c *corruptCache) Put(key string, s *FuncSummary) { c.inner.Put(key, s) }

// TestDetectCacheCorruptFallback: a summary that fails replay
// validation degrades to full re-analysis — same output, counted as a
// miss — never a wrong port.
func TestDetectCacheCorruptFallback(t *testing.T) {
	base, _ := compileLarge(t, appgen.LargeSpec("corrupt-4k", 4000, 5))
	ref, _, err := PortClone(base, DefaultOptions())
	if err != nil {
		t.Fatalf("reference port: %v", err)
	}

	mem := NewMemCache()
	opts := DefaultOptions()
	opts.Detect = mem
	if _, _, err := PortClone(base, opts); err != nil {
		t.Fatalf("seed port: %v", err)
	}

	opts.Detect = &corruptCache{inner: mem}
	ported, rep, err := PortClone(base, opts)
	if err != nil {
		t.Fatalf("corrupt-cache port: %v", err)
	}
	if ported.String() != ref.String() {
		t.Errorf("corrupt-cache port differs from reference — fallback is unsound")
	}
	if rep.CacheHits != 0 {
		t.Errorf("corrupt entries counted as hits: %d", rep.CacheHits)
	}
}

// TestPortCanceled: a pre-canceled context stops the port with a
// wrapped context error and no goroutine debris.
func TestPortCanceled(t *testing.T) {
	leakcheck.Check(t)
	base, _ := compileLarge(t, appgen.LargeSpec("cancel-4k", 4000, 7))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Workers = 4
	opts.Context = ctx
	_, _, err := PortClone(base, opts)
	if err == nil {
		t.Fatal("canceled port returned nil error")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Errorf("unexpected cancel error: %v", err)
	}
}

// panicCache panics inside the detection worker pool.
type panicCache struct{}

func (panicCache) Get(string) (*FuncSummary, bool) { panic("injected cache failure") }
func (panicCache) Put(string, *FuncSummary)        {}

// TestPortWorkerPanicContained: a panic on a pool goroutine must drain
// the pool, re-raise on the coordinator, and surface as a structured
// diag.InternalError from Port — not kill the process or leak workers.
func TestPortWorkerPanicContained(t *testing.T) {
	leakcheck.Check(t)
	base, _ := compileLarge(t, appgen.LargeSpec("panic-4k", 4000, 13))
	opts := DefaultOptions()
	opts.Workers = 4
	opts.Detect = panicCache{}
	_, _, err := PortClone(base, opts)
	if err == nil {
		t.Fatal("panicking port returned nil error")
	}
	ie, ok := diag.AsInternal(err)
	if !ok {
		t.Fatalf("want diag.InternalError, got %T: %v", err, err)
	}
	if !strings.Contains(ie.Diagnostics(), "injected cache failure") {
		t.Errorf("diagnostics lost the panic value: %s", ie.Error())
	}
}
