package atomig

import "repro/internal/obs"

// publishReport accumulates a port's Table-3 tallies into the metrics
// registry under the pipeline.* namespace. Counters are cumulative: a
// difftest grid or bench sweep porting many modules through one
// provider sums naturally.
func publishReport(p *obs.Provider, rep *Report) {
	if p == nil {
		return
	}
	p.Counter("pipeline.ports_completed").Inc()
	p.Counter("pipeline.functions_inlined").Add(int64(rep.FunctionsInlined))
	p.Counter("pipeline.spinloops_found").Add(int64(rep.Spinloops))
	p.Counter("pipeline.optiloops_found").Add(int64(rep.Optiloops))
	p.Counter("pipeline.polling_loops_found").Add(int64(rep.PollingLoops))
	p.Counter("pipeline.barrier_seeds_found").Add(int64(rep.BarrierSeeded))
	p.Counter("pipeline.volatiles_converted").Add(int64(rep.VolatileConverted))
	p.Counter("pipeline.atomics_upgraded").Add(int64(rep.AtomicUpgraded))
	p.Counter("pipeline.spin_controls_marked").Add(int64(rep.SpinControlsMarked))
	p.Counter("pipeline.opt_controls_marked").Add(int64(rep.OptControlsMarked))
	p.Counter("pipeline.buddies_explored").Add(int64(rep.BuddiesExplored))
	p.Counter("pipeline.alias_classes_merged").Add(rep.AliasMerges)
	p.Counter("pipeline.sticky_marked").Add(int64(rep.StickyMarked))
	p.Counter("pipeline.accesses_transformed").Add(int64(rep.ImplicitAdded))
	p.Counter("pipeline.fences_inserted").Add(int64(rep.ExplicitAdded))
	p.Histogram("pipeline.port_duration_micros").Observe(rep.Duration.Microseconds())
	p.Log().Event("pipeline.port_completed").
		Str("module", rep.Module).
		Int("cache_hits", int64(rep.CacheHits)).
		Int("cache_misses", int64(rep.CacheMisses)).
		Int("dur_us", rep.Duration.Microseconds()).Emit()
}
