// Pipeline fan-out. The parallel phases all follow one shape: workers
// claim functions from an atomic cursor, write into a per-function
// result slot, and a sequential merge consumes the slots in function
// order — so the ported module and the report are byte-identical for
// every Options.Workers value (docs/PIPELINE.md).
package atomig

import (
	"sync"
	"sync/atomic"

	"repro/internal/alias"
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/transform"
)

// funcDetect is one function's detection-phase result slot.
type funcDetect struct {
	expl    transform.ExplicitStats
	spin    []*analysis.SpinloopInfo
	polling []*analysis.SpinloopInfo
	barrier []*ir.Instr
	atomics []*ir.Instr
}

// forEachFunc fans fn out over the module's functions. Workers claim
// indices from a shared cursor so a few huge functions do not stall the
// pool; fn must touch only the function it was handed.
func forEachFunc(workers int, fns []*ir.Func, fn func(fi int, f *ir.Func)) {
	if workers > len(fns) {
		workers = len(fns)
	}
	if workers <= 1 {
		for i, f := range fns {
			fn(i, f)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(fns) {
					return
				}
				fn(i, fns[i])
			}
		}()
	}
	wg.Wait()
}

// optLoopCtl pairs an optimistic loop with the canonical descriptors of
// its control locations.
type optLoopCtl struct {
	loop *analysis.Loop
	ctl  map[alias.Loc]bool
}

// insertOptFences applies the optimistic-loop fence protocol to one
// function: a read of a loop's control location inside that loop gets a
// seq_cst fence before it; a store to any optimistic-control location
// gets one after it. The function is walked in block order, anchors are
// collected first (insertion mutates the instruction lists being
// scanned), then spliced — a fully deterministic sequence per function.
//
// An anchor already adjacent to a seq_cst fence is skipped: the fence
// it needs is there. That makes the port idempotent — re-porting a
// ported module inserts nothing — and merges the redundant fences that
// back-to-back protocol anchors would otherwise stack up.
func insertOptFences(f *ir.Func, loops []optLoopCtl, optLocs map[alias.Loc]bool, am *alias.Map) int {
	if len(loops) == 0 && len(optLocs) == 0 {
		return 0
	}
	var before, after []*ir.Instr
	fenced := make(map[*ir.Instr]bool)
	isSCFence := func(in *ir.Instr) bool { return in.Op == ir.OpFence && in.Ord == ir.SeqCst }
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Reads() && !fenced[in] {
				loc := am.Canon(am.Loc(in))
				for _, ol := range loops {
					if !ol.loop.Blocks[b] || !ol.ctl[loc] {
						continue
					}
					fenced[in] = true
					if i == 0 || !isSCFence(b.Instrs[i-1]) {
						before = append(before, in)
					}
					break
				}
			}
			if in.Writes() && !fenced[in] && optLocs[am.Canon(am.Loc(in))] {
				fenced[in] = true
				if i+1 >= len(b.Instrs) || !isSCFence(b.Instrs[i+1]) {
					after = append(after, in)
				}
			}
		}
	}
	for _, in := range before {
		transform.InsertFenceBefore(in)
	}
	for _, in := range after {
		transform.InsertFenceAfter(in)
	}
	return len(before) + len(after)
}
