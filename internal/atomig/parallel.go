// Pipeline fan-out. The parallel phases all follow one shape: workers
// claim functions from an atomic cursor, write into a per-function
// result slot, and a sequential merge consumes the slots in function
// order — so the ported module and the report are byte-identical for
// every Options.Workers value (docs/PIPELINE.md).
package atomig

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/alias"
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/transform"
)

// funcDetect is one function's detection-phase result slot.
type funcDetect struct {
	expl    transform.ExplicitStats
	spin    []*analysis.SpinloopInfo
	polling []*analysis.SpinloopInfo
	barrier []*ir.Instr
	atomics []*ir.Instr
}

// workerPanic carries a panic out of a pool goroutine to the goroutine
// that owns the pool, preserving the worker's stack. The coordinator
// re-panics with it so the caller's diag guard turns it into a
// structured error on the right goroutine — an uncontained panic on a
// pool goroutine would kill the whole process (fatal for the daemon).
type workerPanic struct {
	val   any
	stack []byte
}

func (p *workerPanic) String() string {
	return fmt.Sprintf("worker panic: %v\n%s", p.val, p.stack)
}

// forEachFunc fans fn out over the module's functions. Workers claim
// indices from a shared cursor so a few huge functions do not stall the
// pool; fn must touch only the function it was handed. A non-nil ctx
// makes workers stop claiming once it is canceled (the caller checks
// ctx.Err() after the pool drains). Every worker goroutine exits before
// forEachFunc returns — on completion, cancellation, and panic alike —
// and the first panic is re-raised on the calling goroutine.
func forEachFunc(ctx context.Context, workers int, fns []*ir.Func, fn func(fi int, f *ir.Func)) {
	canceled := func() bool { return ctx != nil && ctx.Err() != nil }
	if workers > len(fns) {
		workers = len(fns)
	}
	if workers <= 1 {
		for i, f := range fns {
			if canceled() {
				return
			}
			fn(i, f)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	var first atomic.Pointer[workerPanic]
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					failed.Store(true)
					first.CompareAndSwap(nil, &workerPanic{val: r, stack: debug.Stack()})
				}
			}()
			for {
				if failed.Load() || canceled() {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(fns) {
					return
				}
				fn(i, fns[i])
			}
		}()
	}
	wg.Wait()
	if p := first.Load(); p != nil {
		panic(p)
	}
}

// optLoopCtl pairs an optimistic loop with the canonical descriptors of
// its control locations.
type optLoopCtl struct {
	loop *analysis.Loop
	ctl  map[alias.Loc]bool
}

// insertOptFences applies the optimistic-loop fence protocol to one
// function: a read of a loop's control location inside that loop gets a
// seq_cst fence before it; a store to any optimistic-control location
// gets one after it. The function is walked in block order, anchors are
// collected first (insertion mutates the instruction lists being
// scanned), then spliced — a fully deterministic sequence per function.
//
// An anchor already adjacent to a seq_cst fence is skipped: the fence
// it needs is there. That makes the port idempotent — re-porting a
// ported module inserts nothing — and merges the redundant fences that
// back-to-back protocol anchors would otherwise stack up.
func insertOptFences(f *ir.Func, loops []optLoopCtl, optLocs map[alias.Loc]bool, am *alias.Map) int {
	if len(loops) == 0 && len(optLocs) == 0 {
		return 0
	}
	var before, after []*ir.Instr
	fenced := make(map[*ir.Instr]bool)
	isSCFence := func(in *ir.Instr) bool { return in.Op == ir.OpFence && in.Ord == ir.SeqCst }
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Reads() && !fenced[in] {
				loc := am.Canon(am.Loc(in))
				for _, ol := range loops {
					if !ol.loop.Blocks[b] || !ol.ctl[loc] {
						continue
					}
					fenced[in] = true
					if i == 0 || !isSCFence(b.Instrs[i-1]) {
						before = append(before, in)
					}
					break
				}
			}
			if in.Writes() && !fenced[in] && optLocs[am.Canon(am.Loc(in))] {
				fenced[in] = true
				if i+1 >= len(b.Instrs) || !isSCFence(b.Instrs[i+1]) {
					after = append(after, in)
				}
			}
		}
	}
	for _, in := range before {
		transform.InsertFenceBefore(in)
	}
	for _, in := range after {
		transform.InsertFenceAfter(in)
	}
	return len(before) + len(after)
}
