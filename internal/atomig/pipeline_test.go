package atomig

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/appgen"
	"repro/internal/ir"
	"repro/internal/minic"
)

// compileLarge generates and compiles one spec.
func compileLarge(t *testing.T, spec appgen.ModuleSpec) (*ir.Module, appgen.GroundTruth) {
	t.Helper()
	src, gt := appgen.GenerateLarge(spec)
	res, err := minic.Compile(spec.Name+".c", src)
	if err != nil {
		t.Fatalf("compile %s: %v", spec.Name, err)
	}
	return res.Module, gt
}

// groundTruthSpecs is the shape grid for the promotion-contract test:
// every site kind alone, pairwise mixes, and full mixes at several
// sizes and seeds (>= 10 shapes, per the acceptance criteria).
func groundTruthSpecs() []appgen.ModuleSpec {
	return []appgen.ModuleSpec{
		{Name: "spin-only", Seed: 1, SpinSites: 6, DataGlobals: 4, FillerFuncs: 8},
		{Name: "struct-only", Seed: 2, StructSpinSites: 5, StructKinds: 2, DataGlobals: 4, FillerFuncs: 8},
		{Name: "nested-only", Seed: 3, NestedSpinSites: 4, DataGlobals: 4, FillerFuncs: 8},
		{Name: "seqlock-only", Seed: 4, SeqlockSites: 5, DataGlobals: 4, FillerFuncs: 8},
		{Name: "explicit-only", Seed: 5, VolatileVars: 4, AtomicVars: 4, DataGlobals: 4, FillerFuncs: 8},
		{Name: "spin-seqlock", Seed: 6, SpinSites: 4, SeqlockSites: 4, DataGlobals: 6, FillerFuncs: 12},
		{Name: "struct-nested", Seed: 7, StructSpinSites: 6, StructKinds: 3, NestedSpinSites: 3, DataGlobals: 6, FillerFuncs: 12},
		{Name: "spin-explicit", Seed: 8, SpinSites: 5, VolatileVars: 3, AtomicVars: 2, DataGlobals: 6, FillerFuncs: 12},
		{Name: "mix-small", Seed: 9, SpinSites: 3, StructSpinSites: 2, StructKinds: 1,
			NestedSpinSites: 2, SeqlockSites: 2, VolatileVars: 2, AtomicVars: 2, DataGlobals: 8, FillerFuncs: 16},
		{Name: "mix-medium", Seed: 10, SpinSites: 8, StructSpinSites: 6, StructKinds: 4,
			NestedSpinSites: 4, SeqlockSites: 6, VolatileVars: 4, AtomicVars: 4, DataGlobals: 12, FillerFuncs: 40},
		{Name: "mix-reseeded", Seed: 77, SpinSites: 8, StructSpinSites: 6, StructKinds: 4,
			NestedSpinSites: 4, SeqlockSites: 6, VolatileVars: 4, AtomicVars: 4, DataGlobals: 12, FillerFuncs: 40},
		appgen.LargeSpec("derived-8k", 8000, 11),
	}
}

// TestGroundTruthPromotions checks the pipeline against the generator's
// promotion contract on every shape: the set of canonical locations
// with seq_cst accesses after the port equals GroundTruth.Promoted
// exactly — nothing missing, nothing extra — and every location in
// GroundTruth.Fenced gained at least one inserted fence adjacent to one
// of its accesses.
func TestGroundTruthPromotions(t *testing.T) {
	for _, spec := range groundTruthSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, gt := compileLarge(t, spec)
			if _, err := Port(m, DefaultOptions()); err != nil {
				t.Fatalf("port: %v", err)
			}
			am := alias.BuildMap(m)
			want := make(map[alias.Loc]bool, len(gt.Promoted))
			for _, l := range gt.Promoted {
				want[am.Canon(l)] = true
			}
			got := make(map[alias.Loc]bool)
			m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
				if in.IsMemAccess() && in.Ord == ir.SeqCst {
					got[am.Canon(am.Loc(in))] = true
				}
			})
			for l := range want {
				if !got[l] {
					t.Errorf("location %s should be promoted but has no seq_cst access", l)
				}
			}
			for l := range got {
				if !want[l] {
					t.Errorf("location %s promoted but not in the ground truth", l)
				}
			}
			checkFenced(t, m, am, gt)
		})
	}
}

// checkFenced verifies the fence side of the contract: each Fenced
// location has an inserted fence adjacent to one of its accesses, and
// every inserted fence sits next to an access of some Fenced location.
func checkFenced(t *testing.T, m *ir.Module, am *alias.Map, gt appgen.GroundTruth) {
	t.Helper()
	fencedLocs := make(map[alias.Loc]bool, len(gt.Fenced))
	for _, l := range gt.Fenced {
		fencedLocs[am.Canon(l)] = true
	}
	seen := make(map[alias.Loc]bool)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				if in.Op != ir.OpFence || !in.HasMark(ir.MarkInsertedFence) {
					continue
				}
				ok := false
				for _, adj := range []int{i - 1, i + 1} {
					if adj < 0 || adj >= len(b.Instrs) {
						continue
					}
					n := b.Instrs[adj]
					if !n.IsMemAccess() {
						continue
					}
					loc := am.Canon(am.Loc(n))
					if fencedLocs[loc] {
						seen[loc] = true
						ok = true
					}
				}
				if !ok {
					t.Errorf("inserted fence in %s not adjacent to any ground-truth fenced access", f.Name)
				}
			}
		}
	}
	for l := range fencedLocs {
		if !seen[l] {
			t.Errorf("location %s should be fenced but no inserted fence is adjacent to it", l)
		}
	}
}

// TestPortIdempotent checks port(port(p)) == port(p): re-porting a
// ported module changes nothing, byte for byte.
func TestPortIdempotent(t *testing.T) {
	for _, spec := range groundTruthSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, _ := compileLarge(t, spec)
			if _, err := Port(m, DefaultOptions()); err != nil {
				t.Fatalf("first port: %v", err)
			}
			once := m.String()
			rep, err := Port(m, DefaultOptions())
			if err != nil {
				t.Fatalf("second port: %v", err)
			}
			if twice := m.String(); twice != once {
				t.Errorf("port is not idempotent: output changed on re-port")
			}
			if rep.ExplicitAdded != 0 {
				t.Errorf("re-port inserted %d fences, want 0", rep.ExplicitAdded)
			}
		})
	}
}

// TestPortDeterministicAcrossWorkers ports clones of one module at
// every worker count and requires byte-identical output — the
// determinism contract of docs/PIPELINE.md.
func TestPortDeterministicAcrossWorkers(t *testing.T) {
	spec := appgen.LargeSpec("det", 12000, 42)
	base, _ := compileLarge(t, spec)
	var ref string
	for _, j := range []int{1, 2, 4, 8} {
		opts := DefaultOptions()
		opts.Workers = j
		ported, _, err := PortClone(base, opts)
		if err != nil {
			t.Fatalf("port -j %d: %v", j, err)
		}
		out := ported.String()
		if j == 1 {
			ref = out
			continue
		}
		if out != ref {
			t.Fatalf("ported output differs between -j 1 and -j %d", j)
		}
	}
	if ref == "" {
		t.Fatal("no reference output")
	}
}
