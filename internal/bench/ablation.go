package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/minic"
)

// AblationRow records the effect of disabling one design choice.
type AblationRow struct {
	Choice    string
	Benchmark string
	// With and Without describe the measured quantity with the design
	// choice enabled and disabled.
	Metric  string
	With    string
	Without string
	// Verdict summarizes why the choice matters.
	Verdict string
}

// Ablations measures the design choices DESIGN.md calls out:
//
//   - pre-analysis inlining (loops spanning functions, section 3.5),
//   - alias exploration / "once atomic, always atomic" (section 3.3),
//   - optimistic-loop detection on top of spinloops (section 3.3),
//   - implicit over explicit barriers (section 3).
func Ablations() ([]AblationRow, error) {
	var rows []AblationRow

	// 1. Inlining: ck_ring's spin reads live inside enqueue/dequeue
	// helpers; without inlining the consumer loop shows no non-local
	// dependency.
	{
		p := corpus.Get("ck_ring")
		base, err := p.Compile()
		if err != nil {
			return nil, err
		}
		withOpts := atomig.DefaultOptions()
		_, withRep, err := atomig.PortClone(base, withOpts)
		if err != nil {
			return nil, err
		}
		woOpts := atomig.DefaultOptions()
		woOpts.Inline = false
		_, woRep, err := atomig.PortClone(base, woOpts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Choice: "inlining", Benchmark: "ck_ring", Metric: "spinloops detected",
			With:    fmt.Sprintf("%d", withRep.Spinloops),
			Without: fmt.Sprintf("%d", woRep.Spinloops),
			Verdict: "cross-function loops need pre-analysis inlining",
		})
	}

	// 2. Alias exploration: without it the TAS unlock store stays plain
	// and the ported lock still fails under WMM.
	{
		p := corpus.Get("tas")
		base, err := p.Compile()
		if err != nil {
			return nil, err
		}
		verdictFor := func(skip bool) (mc.Verdict, error) {
			opts := atomig.DefaultOptions()
			opts.SkipAlias = skip
			ported, _, err := atomig.PortClone(base, opts)
			if err != nil {
				return 0, err
			}
			res, err := mc.Check(ported, mc.Options{
				Model: memmodel.ModelWMM, Entries: p.MCEntries,
				TimeBudget: 5 * time.Second, StopAtFirst: true,
			})
			if err != nil {
				return 0, err
			}
			return res.Verdict, nil
		}
		with, err := verdictFor(false)
		if err != nil {
			return nil, err
		}
		without, err := verdictFor(true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Choice: "alias exploration", Benchmark: "tas", Metric: "WMM verification",
			With: with.String(), Without: without.String(),
			Verdict: "once atomic, always atomic: the unlock store must follow",
		})
	}

	// 3. Optimistic-loop detection: Spin level vs Full on the seqlock.
	{
		p := corpus.Get("seqlock")
		base, err := p.Compile()
		if err != nil {
			return nil, err
		}
		verdictFor := func(lvl atomig.Level) (mc.Verdict, error) {
			opts := atomig.DefaultOptions()
			opts.Level = lvl
			ported, _, err := atomig.PortClone(base, opts)
			if err != nil {
				return 0, err
			}
			res, err := mc.Check(ported, mc.Options{
				Model: memmodel.ModelWMM, Entries: p.MCEntries,
				TimeBudget: 5 * time.Second, StopAtFirst: true,
			})
			if err != nil {
				return 0, err
			}
			return res.Verdict, nil
		}
		with, err := verdictFor(atomig.LevelFull)
		if err != nil {
			return nil, err
		}
		without, err := verdictFor(atomig.LevelSpin)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Choice: "optimistic loops", Benchmark: "seqlock", Metric: "WMM verification",
			With: with.String(), Without: without.String(),
			Verdict: "optimistic reads need explicit fences, SC controls alone fail",
		})
	}

	// 4. Implicit vs explicit barriers: the same all-SC policy costs far
	// more when implemented with explicit fences (Lasagne-style) than
	// with implicit barriers (naïve) — the reason AtoMig prefers
	// implicit barriers everywhere it can.
	{
		p := corpus.Get("histogram")
		base, err := p.Compile()
		if err != nil {
			return nil, err
		}
		baseCycles, err := runPerf(base, p, perfSeeds)
		if err != nil {
			return nil, err
		}
		naive, _, err := portVariant(base, VariantNaive)
		if err != nil {
			return nil, err
		}
		nC, err := runPerf(naive, p, perfSeeds)
		if err != nil {
			return nil, err
		}
		las, _, err := portVariant(base, VariantLasagne)
		if err != nil {
			return nil, err
		}
		lC, err := runPerf(las, p, perfSeeds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Choice: "implicit barriers", Benchmark: "histogram", Metric: "slowdown of all-SC policy",
			With:    fmt.Sprintf("%.2fx (implicit)", nC/baseCycles),
			Without: fmt.Sprintf("%.2fx (explicit)", lC/baseCycles),
			Verdict: "implicit barriers make even the naive policy far cheaper",
		})
	}

	// 5. Polling extension (section 6): detection coverage on a bounded
	// retry loop with wait hints.
	{
		res, err := transformPolling()
		if err != nil {
			return nil, err
		}
		rows = append(rows, res)
	}

	// 6. Type-based alias vs points-to (section 3.4): same portability,
	// very different cost profile on an application-scale module.
	{
		row, err := aliasStrategyAblation()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// aliasStrategyAblation ports a generated application with both alias
// strategies and compares wall-clock porting time.
func aliasStrategyAblation() (AblationRow, error) {
	prof := appgen.ProfileByName("memcached").Scaled(1)
	src := appgen.Generate(prof, 7)
	timePort := func(strategy atomig.AliasStrategy) (time.Duration, int, error) {
		res, err := minic.Compile("alias-ablation", src)
		if err != nil {
			return 0, 0, err
		}
		opts := atomig.DefaultOptions()
		opts.AliasStrategy = strategy
		start := time.Now()
		rep, err := atomig.Port(res.Module, opts)
		if err != nil {
			return 0, 0, err
		}
		return time.Since(start), rep.ImplicitAfter, nil
	}
	tType, nType, err := timePort(atomig.AliasTypeBased)
	if err != nil {
		return AblationRow{}, err
	}
	tPT, nPT, err := timePort(atomig.AliasPointsTo)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Choice: "type-based alias", Benchmark: "memcached-gen",
		Metric:  "port time (implicit barriers)",
		With:    fmt.Sprintf("%s (%d)", tType.Round(time.Millisecond), nType),
		Without: fmt.Sprintf("%s (%d)", tPT.Round(time.Millisecond), nPT),
		Verdict: "points-to costs far more at application scale (the paper's scalability argument)",
	}, nil
}

func transformPolling() (AblationRow, error) {
	src := `
int flag;
int msg;
int out;
void reader(void) {
  for (int i = 0; i < 100000; i = i + 1) {
    if (flag == 1) { out = msg; return; }
    pause();
  }
}
void writer(void) { msg = 1; flag = 1; }
`
	count := func(poll bool) (int, error) {
		res, err := minic.Compile("polling", src)
		if err != nil {
			return 0, err
		}
		mod := res.Module
		opts := atomig.DefaultOptions()
		opts.DetectPolling = poll
		rep, err := atomig.Port(mod, opts)
		if err != nil {
			return 0, err
		}
		return rep.Spinloops + rep.PollingLoops, nil
	}
	with, err := count(true)
	if err != nil {
		return AblationRow{}, err
	}
	without, err := count(false)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Choice: "polling extension", Benchmark: "bounded-retry MP", Metric: "sync loops detected",
		With: fmt.Sprintf("%d", with), Without: fmt.Sprintf("%d", without),
		Verdict: "wait hints recover bounded retry loops the strict rule skips",
	}, nil
}

// FormatAblations renders the ablation study.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation study: design choices of the pipeline\n")
	fmt.Fprintf(&b, "%-20s %-16s %-28s %-18s %-18s\n", "choice", "benchmark", "metric", "enabled", "disabled")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-16s %-28s %-18s %-18s\n",
			r.Choice, r.Benchmark, r.Metric, r.With, r.Without)
		fmt.Fprintf(&b, "    -> %s\n", r.Verdict)
	}
	return b.String()
}
