package bench

import (
	"strings"
	"testing"
)

// TestAblations verifies each design-choice ablation shows the expected
// effect.
func TestAblations(t *testing.T) {
	rows, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byChoice := map[string]AblationRow{}
	for _, r := range rows {
		byChoice[r.Choice] = r
	}
	if r := byChoice["inlining"]; r.Without >= r.With {
		t.Errorf("inlining ablation: with=%s without=%s", r.With, r.Without)
	}
	if r := byChoice["alias exploration"]; r.Without != "violated" || r.With == "violated" {
		t.Errorf("alias ablation: with=%s without=%s", r.With, r.Without)
	}
	if r := byChoice["optimistic loops"]; r.Without != "violated" || r.With == "violated" {
		t.Errorf("optimistic ablation: with=%s without=%s", r.With, r.Without)
	}
	if r := byChoice["polling extension"]; r.Without >= r.With {
		t.Errorf("polling ablation: with=%s without=%s", r.With, r.Without)
	}
	out := FormatAblations(rows)
	if len(out) == 0 {
		t.Fatal("empty format")
	}
}

// TestScalingSeries: porting time must scale near-linearly with code
// size (the Table 3 scalability claim). Quadratic blow-up would show as
// the time ratio far exceeding the size ratio.
func TestScalingSeries(t *testing.T) {
	points, err := ScalingSeries([]int{200, 100, 50}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	small, large := points[0], points[2]
	sizeRatio := float64(large.Instrs) / float64(small.Instrs)
	timeRatio := float64(large.PortTime) / float64(small.PortTime)
	if sizeRatio < 2 {
		t.Fatalf("series did not grow: %v", points)
	}
	// Allow generous constant-factor noise, but catch quadratic growth:
	// at 4x size, quadratic would be ~16x time.
	if timeRatio > sizeRatio*3 {
		t.Errorf("port time grew %.1fx for a %.1fx size increase:\n%s",
			timeRatio, sizeRatio, FormatScaling(points))
	}
	out := FormatScaling(points)
	if !strings.Contains(out, "port/build") {
		t.Error("format lost header")
	}
}

// TestTable5Extended: the extra CK structures. The ticket lock patterns
// with the other locks (naive >= atomig). The stack and queue are
// *false-positive optimistic loops*: their value reads are already
// protected by the acquire on the node pointer, so atomig's extra
// fences cost more than the naive all-SC port — the paper's section
// 3.5 caveat that false positives "can only affect the performance of
// the application, not its correctness", made measurable.
func TestTable5Extended(t *testing.T) {
	rows, err := Table5Extended()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AtoMig < 0.9 || r.AtoMig > 2.0 {
			t.Errorf("%s: atomig ratio %.2f outside sanity band", r.Benchmark, r.AtoMig)
		}
		switch r.Benchmark {
		case "ck_spinlock_ticket":
			if r.Naive < r.AtoMig {
				t.Errorf("%s: naive (%.2f) faster than atomig (%.2f)", r.Benchmark, r.Naive, r.AtoMig)
			}
		default:
			// stack/fifo: atomig pays for the false-positive optimistic
			// fences; it must still be correct (checked in t2x) and within
			// a bounded factor of naive.
			if r.AtoMig > r.Naive*1.6 {
				t.Errorf("%s: atomig (%.2f) far above naive (%.2f)", r.Benchmark, r.AtoMig, r.Naive)
			}
		}
	}
}
