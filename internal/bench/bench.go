// Package bench regenerates the paper's evaluation artifacts: the
// correctness matrix of Table 2, the scalability statistics of Table 3,
// the dynamic barrier census of Table 4, the performance comparisons of
// Tables 5 and 6, and executable versions of the figures. Each function
// returns structured rows; the cmd/atomig-bench tool and the top-level
// Go benchmarks print them.
package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/transform"
	"repro/internal/vm"
)

// Variant names a porting strategy.
type Variant string

// Porting variants.
const (
	VariantOriginal Variant = "original"
	VariantExpl     Variant = "expl"
	VariantSpin     Variant = "spin"
	VariantAtoMig   Variant = "atomig"
	VariantNaive    Variant = "naive"
	VariantLasagne  Variant = "lasagne"
	VariantExpert   Variant = "expert"
)

// portVariant produces the requested variant of a compiled module.
func portVariant(m *ir.Module, v Variant) (*ir.Module, *atomig.Report, error) {
	switch v {
	case VariantOriginal:
		return m, nil, nil
	case VariantExpl:
		return portLevel(m, atomig.LevelExplicit)
	case VariantSpin:
		return portLevel(m, atomig.LevelSpin)
	case VariantAtoMig:
		return portLevel(m, atomig.LevelFull)
	case VariantNaive:
		c := ir.MustClone(m)
		transform.Naive(c)
		return c, nil, nil
	case VariantLasagne:
		c := ir.MustClone(m)
		transform.LasagneStyle(c)
		return c, nil, nil
	}
	return nil, nil, fmt.Errorf("bench: unknown variant %q", v)
}

func portLevel(m *ir.Module, lvl atomig.Level) (*ir.Module, *atomig.Report, error) {
	opts := atomig.DefaultOptions()
	opts.Level = lvl
	return atomig.PortClone(m, opts)
}

// ---------------------------------------------------------------------
// Table 2: verification results on CK benchmarks and lf-hash.

// Table2Row is one benchmark's verdicts across pipeline levels.
type Table2Row struct {
	Benchmark string
	// Verdicts maps variant → mc verdict under WMM.
	Verdicts map[Variant]mc.Verdict
	// Violations holds a sample violation per failing variant.
	Violations map[Variant]string
}

// Table2Benchmarks lists the paper's Table 2 rows in order.
var Table2Benchmarks = []string{
	"ck_ring", "ck_spinlock_cas", "ck_spinlock_mcs", "ck_sequence", "lf_hash",
}

// Table2ExtendedBenchmarks adds CK structures beyond the paper's five
// rows. Both fail in their original TSO form and are repaired already
// at the explicit-annotation level: their hot pointers are updated via
// read-modify-writes, which seed alias exploration (the paper's
// section 3.5 argument that RMW usage keeps false negatives rare).
var Table2ExtendedBenchmarks = []string{"ck_stack", "ck_fifo", "ck_spinlock_ticket"}

// Table2Options bounds each model-checking cell.
type Table2Options struct {
	TimeBudget      time.Duration
	MaxExecutions   int
	MaxStepsPerExec int64
}

// DefaultTable2Options returns bounds suitable for the test suite.
func DefaultTable2Options() Table2Options {
	return Table2Options{TimeBudget: 5 * time.Second, MaxExecutions: 200_000}
}

// Table2 reproduces the paper's Table 2: model-check each benchmark's
// harness under WMM at every pipeline level.
func Table2(opts Table2Options) ([]Table2Row, error) {
	return table2For(Table2Benchmarks, opts)
}

// Table2Extended runs the Table 2 protocol on the additional CK
// structures (Treiber stack, Michael-Scott queue).
func Table2Extended(opts Table2Options) ([]Table2Row, error) {
	return table2For(Table2ExtendedBenchmarks, opts)
}

func table2For(benchmarks []string, opts Table2Options) ([]Table2Row, error) {
	variants := []Variant{VariantOriginal, VariantExpl, VariantSpin, VariantAtoMig}
	var rows []Table2Row
	for _, name := range benchmarks {
		p := corpus.Get(name)
		if p == nil {
			return nil, fmt.Errorf("bench: corpus program %q missing", name)
		}
		base, err := p.Compile()
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Benchmark:  name,
			Verdicts:   make(map[Variant]mc.Verdict),
			Violations: make(map[Variant]string),
		}
		for _, v := range variants {
			mod, _, err := portVariant(base, v)
			if err != nil {
				return nil, err
			}
			res, err := mc.Check(mod, mc.Options{
				Model:           memmodel.ModelWMM,
				Entries:         p.MCEntries,
				MaxExecutions:   opts.MaxExecutions,
				MaxStepsPerExec: opts.MaxStepsPerExec,
				TimeBudget:      opts.TimeBudget,
				StopAtFirst:     true,
			})
			if err != nil {
				return nil, err
			}
			row.Verdicts[v] = res.Verdict
			if len(res.Violations) > 0 {
				row.Violations[v] = res.Violations[0]
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Table 3: scalability statistics on the large applications.

// Table3Row is one application's porting statistics.
type Table3Row struct {
	App        string
	SLOC       int
	Spinloops  int
	Optiloops  int
	BuildTime  time.Duration // plain compile
	PortTime   time.Duration // compile + atomig port
	OrigBExpl  int
	OrigBImpl  int
	AtoBExpl   int
	AtoBImpl   int
	NaiveBImpl int
}

// Table3 reproduces the paper's Table 3 on synthetic applications with
// the paper's shape, scaled down by the given factor (1 = full size).
func Table3(scale int, seed int64) ([]Table3Row, error) {
	var rows []Table3Row
	for _, prof := range appgen.Profiles() {
		p := prof.Scaled(scale)
		src := appgen.Generate(p, seed)

		buildStart := time.Now()
		res, err := minic.Compile(p.Name, src)
		if err != nil {
			return nil, err
		}
		buildTime := time.Since(buildStart)

		portStart := time.Now()
		ported, rep, err := atomig.PortClone(res.Module, atomig.DefaultOptions())
		if err != nil {
			return nil, err
		}
		portTime := time.Since(portStart)
		_ = ported

		naive := ir.MustClone(res.Module)
		transform.Naive(naive)
		_, naiveImpl := transform.CountBarriers(naive)

		rows = append(rows, Table3Row{
			App:        p.Name,
			SLOC:       res.Stats.SourceLines,
			Spinloops:  rep.Spinloops,
			Optiloops:  rep.Optiloops,
			BuildTime:  buildTime,
			PortTime:   buildTime + portTime,
			OrigBExpl:  rep.ExplicitBefore,
			OrigBImpl:  rep.ImplicitBefore,
			AtoBExpl:   rep.ExplicitAfter,
			AtoBImpl:   rep.ImplicitAfter,
			NaiveBImpl: naiveImpl,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Table 4: dynamically executed barriers on the Memcached workload.

// Table4Result compares the dynamic operation census of the original
// and ported Memcached kernel.
type Table4Result struct {
	Original vm.Counters
	AtoMig   vm.Counters
}

// Table4 reproduces the paper's Table 4.
func Table4(seed int64) (*Table4Result, error) {
	p := corpus.Get("memcached")
	base, err := p.Compile()
	if err != nil {
		return nil, err
	}
	run := func(m *ir.Module) (vm.Counters, error) {
		res, err := vm.Run(m, vm.Options{
			Model: memmodel.ModelSC, Entries: p.PerfEntries,
			Seed: seed, MaxSteps: p.PerfSteps,
		})
		if err != nil {
			return vm.Counters{}, err
		}
		if res.Status != vm.StatusDone {
			return vm.Counters{}, fmt.Errorf("bench: memcached run ended with %s (%s)", res.Status, res.FailMsg)
		}
		return res.Counters, nil
	}
	orig, err := run(base)
	if err != nil {
		return nil, err
	}
	ported, _, err := portVariant(base, VariantAtoMig)
	if err != nil {
		return nil, err
	}
	ato, err := run(ported)
	if err != nil {
		return nil, err
	}
	return &Table4Result{Original: orig, AtoMig: ato}, nil
}

// ---------------------------------------------------------------------
// Table 5: performance of Naïve vs AtoMig, normalized to the original.

// Table5Row is one benchmark's slowdown factors.
type Table5Row struct {
	Benchmark string
	// Baseline notes what the original binary is (TSO source or the
	// expert WMM port, following the paper's normalization).
	Baseline Variant
	Naive    float64
	AtoMig   float64
}

// Table5Benchmarks lists the rows in paper order with their baselines.
var Table5Benchmarks = []struct {
	Name     string
	Baseline Variant
}{
	{"mariadb", VariantOriginal},
	{"postgresql", VariantOriginal},
	{"leveldb", VariantOriginal},
	{"memcached", VariantOriginal},
	{"sqlite", VariantOriginal},
	{"ck_ring", VariantExpert},
	{"ck_sequence", VariantExpert},
	{"ck_spinlock_cas", VariantExpert},
	{"ck_spinlock_mcs", VariantExpert},
	{"lf_hash", VariantOriginal},
	{"clht_lb", VariantOriginal},
	{"clht_lf", VariantOriginal},
}

// runPerf measures the cycle-model makespan of a module under the
// program's performance harness, averaged over the seeds.
func runPerf(m *ir.Module, p *corpus.Program, seeds []int64) (float64, error) {
	total := 0.0
	for _, seed := range seeds {
		res, err := vm.Run(m, vm.Options{
			Model: memmodel.ModelSC, Entries: p.PerfEntries,
			Seed: seed, MaxSteps: p.PerfSteps,
		})
		if err != nil {
			return 0, err
		}
		if res.Status != vm.StatusDone {
			return 0, fmt.Errorf("bench: %s perf run ended with %s (%s)", p.Name, res.Status, res.FailMsg)
		}
		total += float64(res.MaxCycles)
	}
	return total / float64(len(seeds)), nil
}

// perfSeeds are the fixed seeds performance runs average over.
var perfSeeds = []int64{1, 2, 3}

// Table5ExtendedBenchmarks adds the extra CK structures (no native WMM
// port exists in the paper's comparison, so the baseline is the TSO
// source, like the CLHT rows).
var Table5ExtendedBenchmarks = []struct {
	Name     string
	Baseline Variant
}{
	{"ck_stack", VariantOriginal},
	{"ck_fifo", VariantOriginal},
	{"ck_spinlock_ticket", VariantOriginal},
}

// Table5 reproduces the paper's Table 5.
func Table5() ([]Table5Row, error) {
	return table5For(Table5Benchmarks)
}

// Table5Extended measures the extra CK structures.
func Table5Extended() ([]Table5Row, error) {
	return table5For(Table5ExtendedBenchmarks)
}

func table5For(benchmarks []struct {
	Name     string
	Baseline Variant
}) ([]Table5Row, error) {
	var rows []Table5Row
	for _, b := range benchmarks {
		p := corpus.Get(b.Name)
		if p == nil {
			return nil, fmt.Errorf("bench: corpus program %q missing", b.Name)
		}
		base, err := p.Compile()
		if err != nil {
			return nil, err
		}
		var baseline *ir.Module
		if b.Baseline == VariantExpert {
			baseline, err = p.CompileExpert()
			if err != nil {
				return nil, err
			}
		} else {
			baseline = base
		}
		baseCycles, err := runPerf(baseline, p, perfSeeds)
		if err != nil {
			return nil, err
		}
		naive, _, err := portVariant(base, VariantNaive)
		if err != nil {
			return nil, err
		}
		naiveCycles, err := runPerf(naive, p, perfSeeds)
		if err != nil {
			return nil, err
		}
		ato, _, err := portVariant(base, VariantAtoMig)
		if err != nil {
			return nil, err
		}
		atoCycles, err := runPerf(ato, p, perfSeeds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Benchmark: b.Name,
			Baseline:  b.Baseline,
			Naive:     naiveCycles / baseCycles,
			AtoMig:    atoCycles / baseCycles,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Table 6: the Phoenix suite — Naïve vs Lasagne vs AtoMig.

// Table6Row is one Phoenix benchmark's slowdown factors.
type Table6Row struct {
	Benchmark string
	Naive     float64
	Lasagne   float64
	AtoMig    float64
}

// Table6 reproduces the paper's Table 6, including the geometric-mean
// row (Benchmark == "geomean").
func Table6() ([]Table6Row, error) {
	var rows []Table6Row
	gN, gL, gA := 1.0, 1.0, 1.0
	for _, name := range corpus.PhoenixNames {
		p := corpus.Get(name)
		base, err := p.Compile()
		if err != nil {
			return nil, err
		}
		baseCycles, err := runPerf(base, p, perfSeeds)
		if err != nil {
			return nil, err
		}
		ratio := func(v Variant) (float64, error) {
			m, _, err := portVariant(base, v)
			if err != nil {
				return 0, err
			}
			c, err := runPerf(m, p, perfSeeds)
			if err != nil {
				return 0, err
			}
			return c / baseCycles, nil
		}
		n, err := ratio(VariantNaive)
		if err != nil {
			return nil, err
		}
		l, err := ratio(VariantLasagne)
		if err != nil {
			return nil, err
		}
		a, err := ratio(VariantAtoMig)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table6Row{Benchmark: name, Naive: n, Lasagne: l, AtoMig: a})
		gN *= n
		gL *= l
		gA *= a
	}
	k := float64(len(corpus.PhoenixNames))
	rows = append(rows, Table6Row{
		Benchmark: "geomean",
		Naive:     math.Pow(gN, 1/k),
		Lasagne:   math.Pow(gL, 1/k),
		AtoMig:    math.Pow(gA, 1/k),
	})
	return rows, nil
}
