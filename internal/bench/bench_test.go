package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mc"
)

// TestTable2MatchesPaper verifies the exact ✗/✓ matrix of the paper's
// Table 2: explicit annotations fix ck_ring and ck_spinlock_cas,
// spinloop detection additionally fixes ck_spinlock_mcs, and only the
// full pipeline (optimistic loops) fixes ck_sequence and lf-hash.
func TestTable2MatchesPaper(t *testing.T) {
	opts := DefaultTable2Options()
	if testing.Short() {
		opts.TimeBudget = 2 * time.Second
	}
	rows, err := Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]map[Variant]bool{ // true = verified (no violation)
		"ck_ring":         {VariantOriginal: false, VariantExpl: true, VariantSpin: true, VariantAtoMig: true},
		"ck_spinlock_cas": {VariantOriginal: false, VariantExpl: true, VariantSpin: true, VariantAtoMig: true},
		"ck_spinlock_mcs": {VariantOriginal: false, VariantExpl: false, VariantSpin: true, VariantAtoMig: true},
		"ck_sequence":     {VariantOriginal: false, VariantExpl: false, VariantSpin: false, VariantAtoMig: true},
		"lf_hash":         {VariantOriginal: false, VariantExpl: false, VariantSpin: false, VariantAtoMig: true},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		for variant, wantPass := range want[row.Benchmark] {
			gotPass := row.Verdicts[variant] != mc.VerdictFail
			if gotPass != wantPass {
				t.Errorf("%s/%s: verified=%v, paper says %v (verdict %s, violation %q)",
					row.Benchmark, variant, gotPass, wantPass,
					row.Verdicts[variant], row.Violations[variant])
			}
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "ck_sequence") {
		t.Error("formatting lost a row")
	}
}

// TestTable3Shape verifies the scalability claims on small-scale
// synthetic applications: every planted pattern is found, porting time
// stays within a small factor of build time, and the naïve strategy
// inserts far more implicit barriers than atomig.
func TestTable3Shape(t *testing.T) {
	rows, err := Table3(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Spinloops == 0 {
			t.Errorf("%s: no spinloops detected", r.App)
		}
		if r.Optiloops == 0 {
			t.Errorf("%s: no optimistic loops detected", r.App)
		}
		if r.PortTime < r.BuildTime {
			t.Errorf("%s: port time below build time", r.App)
		}
		if r.PortTime > 25*r.BuildTime {
			t.Errorf("%s: port time %v exceeds 25x build %v", r.App, r.PortTime, r.BuildTime)
		}
		if r.AtoBImpl <= r.OrigBImpl {
			t.Errorf("%s: atomig added no implicit barriers", r.App)
		}
		if r.NaiveBImpl < r.AtoBImpl {
			t.Errorf("%s: naive (%d) added fewer implicit barriers than atomig (%d)",
				r.App, r.NaiveBImpl, r.AtoBImpl)
		}
	}
	// MariaDB is the largest application in every dimension.
	if rows[0].App != "mariadb" || rows[0].SLOC < rows[3].SLOC {
		t.Error("application ordering or sizes wrong")
	}
}

// TestTable4Shape: the original Memcached kernel executes no atomic
// loads or stores; the ported one executes some, but they remain a
// small minority of all accesses.
func TestTable4Shape(t *testing.T) {
	res, err := Table4(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Original.AtomicLoads != 0 || res.Original.AtomicStores != 0 {
		t.Errorf("original executed atomics: %+v", res.Original)
	}
	if res.AtoMig.AtomicLoads == 0 || res.AtoMig.AtomicStores == 0 {
		t.Errorf("ported executed no atomics: %+v", res.AtoMig)
	}
	frac := float64(res.AtoMig.AtomicLoads) /
		float64(res.AtoMig.AtomicLoads+res.AtoMig.NonAtomicLoads)
	if frac > 0.25 {
		t.Errorf("atomic load fraction %.2f too high", frac)
	}
}

// TestTable5Shape verifies the performance claims: atomig stays within
// a few percent on the applications while naïve does not; atomig beats
// the expert port on the CK lock benchmarks; naïve is never faster than
// atomig.
func TestTable5Shape(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table5Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	// Application rows: atomig overhead at most ~5%, naïve worse than
	// atomig.
	for _, app := range []string{"mariadb", "postgresql", "leveldb", "memcached", "sqlite"} {
		r := byName[app]
		if r.AtoMig > 1.06 {
			t.Errorf("%s: atomig overhead %.2f exceeds 1.06", app, r.AtoMig)
		}
		if r.Naive < r.AtoMig {
			t.Errorf("%s: naive (%.2f) faster than atomig (%.2f)", app, r.Naive, r.AtoMig)
		}
	}
	// SQLite is the naive-heaviest application; memcached the lightest.
	if byName["sqlite"].Naive < byName["memcached"].Naive {
		t.Error("sqlite should suffer more from naive than memcached")
	}
	// CK lock benchmarks: the atomig port of the TSO source beats the
	// expert WMM port with explicit fences.
	for _, ck := range []string{"ck_spinlock_cas", "ck_spinlock_mcs"} {
		r := byName[ck]
		if r.AtoMig >= 1.0 {
			t.Errorf("%s: atomig (%.2f) does not beat the expert port", ck, r.AtoMig)
		}
		if r.Naive < r.AtoMig {
			t.Errorf("%s: naive (%.2f) faster than atomig (%.2f)", ck, r.Naive, r.AtoMig)
		}
	}
	// CLHT rows exist and atomig overhead is visible but bounded.
	for _, c := range []string{"clht_lb", "clht_lf"} {
		r := byName[c]
		if r.AtoMig < 1.0 || r.AtoMig > 1.6 {
			t.Errorf("%s: atomig ratio %.2f outside expected band", c, r.AtoMig)
		}
	}
}

// TestTable6Shape verifies the Phoenix claims: atomig is essentially
// free, Lasagne's explicit fences cost more than the naïve implicit
// strategy, and the geomean ordering matches the paper.
func TestTable6Shape(t *testing.T) {
	rows, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || rows[5].Benchmark != "geomean" {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	for _, r := range rows {
		if r.AtoMig > 1.03 {
			t.Errorf("%s: atomig %.2f should be ~1.0", r.Benchmark, r.AtoMig)
		}
		if r.Naive < r.AtoMig {
			t.Errorf("%s: naive (%.2f) beats atomig (%.2f)", r.Benchmark, r.Naive, r.AtoMig)
		}
	}
	g := rows[5]
	if !(g.Lasagne > g.Naive && g.Naive > g.AtoMig) {
		t.Errorf("geomean ordering violated: naive %.2f lasagne %.2f atomig %.2f",
			g.Naive, g.Lasagne, g.AtoMig)
	}
	// Histogram is the most shared-access-heavy benchmark.
	if rows[0].Benchmark != "histogram" || rows[0].Naive < rows[3].Naive {
		t.Error("histogram should pay the highest naive cost")
	}
}

// TestFigures runs every figure demonstration.
func TestFigures(t *testing.T) {
	figs, err := AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("figures = %d", len(figs))
	}
	for _, f := range figs {
		if !f.OK {
			t.Errorf("figure %s not reproduced:\n%s", f.Figure, f)
		}
	}
}

// TestVariantErrors covers the error paths.
func TestVariantErrors(t *testing.T) {
	if _, _, err := portVariant(nil, Variant("bogus")); err == nil {
		t.Error("unknown variant accepted")
	}
}

// TestTable2Extended: the additional CK structures fail in original
// form and verify at every pipeline level from Expl upward (their hot
// pointers are RMW-updated, seeding alias exploration — the paper's
// section 3.5 false-negative argument).
func TestTable2Extended(t *testing.T) {
	opts := DefaultTable2Options()
	opts.TimeBudget = 3 * time.Second
	rows, err := Table2Extended(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Verdicts[VariantOriginal] != mc.VerdictFail {
			t.Errorf("%s original did not fail", row.Benchmark)
		}
		// The ticket lock spins on a plain counter: explicit annotations
		// alone leave now_serving plain and the port still fails — it
		// needs spinloop detection, like ck_spinlock_mcs.
		fixedFrom := VariantExpl
		if row.Benchmark == "ck_spinlock_ticket" {
			if row.Verdicts[VariantExpl] != mc.VerdictFail {
				t.Errorf("%s/expl unexpectedly verified", row.Benchmark)
			}
			fixedFrom = VariantSpin
		}
		for _, v := range []Variant{VariantExpl, VariantSpin, VariantAtoMig} {
			if v == VariantExpl && fixedFrom == VariantSpin {
				continue
			}
			if row.Verdicts[v] == mc.VerdictFail {
				t.Errorf("%s/%s failed: %s", row.Benchmark, v, row.Violations[v])
			}
		}
	}
}
