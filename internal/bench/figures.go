package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/minic"
)

// FigureResult is the executable form of one of the paper's figures: a
// short demonstration with a pass/fail verdict per configuration.
type FigureResult struct {
	Figure string
	Title  string
	// Lines are the human-readable findings.
	Lines []string
	// OK reports whether the demonstration reproduced the paper's claim.
	OK bool
}

func (f *FigureResult) addf(format string, args ...any) {
	f.Lines = append(f.Lines, fmt.Sprintf(format, args...))
}

// String renders the result.
func (f *FigureResult) String() string {
	status := "REPRODUCED"
	if !f.OK {
		status = "NOT REPRODUCED"
	}
	return fmt.Sprintf("Figure %s (%s): %s\n  %s\n",
		f.Figure, f.Title, status, strings.Join(f.Lines, "\n  "))
}

// checkWMM model-checks a program variant under WMM with a short budget.
func checkWMM(m *ir.Module, entries []string) (mc.Verdict, error) {
	res, err := mc.Check(m, mc.Options{
		Model: memmodel.ModelWMM, Entries: entries,
		MaxExecutions: 200_000, TimeBudget: 5 * time.Second, StopAtFirst: true,
	})
	if err != nil {
		return 0, err
	}
	return res.Verdict, nil
}

// figureBugAndFix runs the standard figure scheme: the program violates
// its assertion under WMM (but not under TSO), and the atomig port
// repairs it.
func figureBugAndFix(fig, title, prog string) (*FigureResult, error) {
	p := corpus.Get(prog)
	f := &FigureResult{Figure: fig, Title: title}
	m, err := p.Compile()
	if err != nil {
		return nil, err
	}
	tsoRes, err := mc.Check(m, mc.Options{
		Model: memmodel.ModelTSO, Entries: p.MCEntries,
		MaxExecutions: 200_000, TimeBudget: 5 * time.Second, StopAtFirst: true,
	})
	if err != nil {
		return nil, err
	}
	wmmOrig, err := checkWMM(m, p.MCEntries)
	if err != nil {
		return nil, err
	}
	ported, rep, err := atomig.PortClone(m, atomig.DefaultOptions())
	if err != nil {
		return nil, err
	}
	wmmPorted, err := checkWMM(ported, p.MCEntries)
	if err != nil {
		return nil, err
	}
	f.addf("TSO, original: %s (legacy code is TSO-correct)", tsoRes.Verdict)
	f.addf("WMM, original: %s", wmmOrig)
	f.addf("WMM, atomig:   %s (%d spinloops, %d optimistic, %d fences added)",
		wmmPorted, rep.Spinloops, rep.Optiloops, rep.ExplicitAdded)
	f.OK = tsoRes.Verdict != mc.VerdictFail &&
		wmmOrig == mc.VerdictFail && wmmPorted != mc.VerdictFail
	return f, nil
}

// Figure1 demonstrates the message-passing bug of Figure 1 and its fix.
func Figure1() (*FigureResult, error) {
	return figureBugAndFix("1", "message passing breaks under WMM", "mp")
}

// Figure3 runs the spinloop detector on the paper's five example loops.
func Figure3() (*FigureResult, error) {
	src := `
int flag = 0;
int turns = 7;
void spinloop1(void) { while (flag != 1) { } }
void spinloop2(void) {
  int l;
  do { l = 1; } while (l != flag);
}
void spinloop3(void) {
  int l;
  do { l = flag & 255; } while (l != 2);
}
void nonspin1(void) {
  for (int i = 0; i < 100; i = i + 1) {
    if (flag == 1) { break; }
  }
}
void nonspin2(void) {
  for (int i = 0; i < turns; i = i + 1) { }
}
`
	res, err := minic.Compile("figure3", src)
	if err != nil {
		return nil, err
	}
	f := &FigureResult{Figure: "3", Title: "spinloop and non-spinloop classification"}
	f.OK = true
	expect := map[string]bool{
		"spinloop1": true, "spinloop2": true, "spinloop3": true,
		"nonspin1": false, "nonspin2": false,
	}
	for _, fn := range res.Module.Funcs {
		want := expect[fn.Name]
		got := len(analysis.DetectSpinloops(fn)) > 0
		verdict := "ok"
		if got != want {
			verdict = "MISCLASSIFIED"
			f.OK = false
		}
		f.addf("%-10s spinloop=%-5v expected=%-5v %s", fn.Name, got, want, verdict)
	}
	return f, nil
}

// Figure4 demonstrates the test-and-set lock transformation.
func Figure4() (*FigureResult, error) {
	return figureBugAndFix("4", "test-and-set lock loses critical-section writes", "tas")
}

// Figure5 demonstrates message passing via spinloop (reader/writer).
func Figure5() (*FigureResult, error) {
	return figureBugAndFix("5", "spinloop message passing", "mp")
}

// Figure6 demonstrates the sequence-lock transformation.
func Figure6() (*FigureResult, error) {
	return figureBugAndFix("6", "sequence counter needs explicit fences", "seqlock")
}

// Figure7 demonstrates the MariaDB lf-hash bug and its automatic fix.
func Figure7() (*FigureResult, error) {
	return figureBugAndFix("7", "MariaDB lf-hash state/key reorder", "lfhash-fig7")
}

// AllFigures runs every figure demonstration.
func AllFigures() ([]*FigureResult, error) {
	var out []*FigureResult
	for _, fn := range []func() (*FigureResult, error){
		Figure1, Figure3, Figure4, Figure5, Figure6, Figure7,
	} {
		r, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
