package bench

import (
	"fmt"
	"strings"

	"repro/internal/mc"
)

func mark(v mc.Verdict) string {
	switch v {
	case mc.VerdictFail:
		return "✗"
	case mc.VerdictPass:
		return "✓"
	default:
		return "✓b" // no violation within bounds
	}
}

// FormatTable2 renders Table 2 in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Verification results on ck and lf-hash (WMM)\n")
	fmt.Fprintf(&b, "%-18s %-9s %-6s %-6s %-6s\n", "", "Original", "Expl.", "Spin", "AtoMig")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-9s %-6s %-6s %-6s\n", r.Benchmark,
			mark(r.Verdicts[VariantOriginal]), mark(r.Verdicts[VariantExpl]),
			mark(r.Verdicts[VariantSpin]), mark(r.Verdicts[VariantAtoMig]))
	}
	b.WriteString("(✓b = no violation found within exploration bounds)\n")
	return b.String()
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row, scale int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: AtoMig statistics for large applications (scale 1/%d)\n", scale)
	fmt.Fprintf(&b, "%-12s %9s %9s %9s %10s %10s | %7s %7s | %7s %7s | %9s\n",
		"App", "SLOC", "#Spin", "#Opti", "Build", "AtoMig",
		"oBExpl", "oBImpl", "aBExpl", "aBImpl", "naiveImpl")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %9d %9d %9d %10s %10s | %7d %7d | %7d %7d | %9d\n",
			r.App, r.SLOC, r.Spinloops, r.Optiloops,
			r.BuildTime.Round(1e6), r.PortTime.Round(1e6),
			r.OrigBExpl, r.OrigBImpl, r.AtoBExpl, r.AtoBImpl, r.NaiveBImpl)
	}
	return b.String()
}

// FormatTable4 renders Table 4.
func FormatTable4(t *Table4Result) string {
	var b strings.Builder
	b.WriteString("Table 4: dynamically executed operations, Memcached workload\n")
	fmt.Fprintf(&b, "%-18s %14s %14s\n", "Memcached", "Original", "AtoMig")
	fmt.Fprintf(&b, "%-18s %14d %14d\n", "non-atomic loads", t.Original.NonAtomicLoads, t.AtoMig.NonAtomicLoads)
	fmt.Fprintf(&b, "%-18s %14d %14d\n", "non-atomic stores", t.Original.NonAtomicStores, t.AtoMig.NonAtomicStores)
	fmt.Fprintf(&b, "%-18s %14d %14d\n", "atomic loads", t.Original.AtomicLoads, t.AtoMig.AtomicLoads)
	fmt.Fprintf(&b, "%-18s %14d %14d\n", "atomic stores", t.Original.AtomicStores, t.AtoMig.AtomicStores)
	fmt.Fprintf(&b, "%-18s %14d %14d\n", "rmw/cmpxchg", t.Original.RMWs, t.AtoMig.RMWs)
	fmt.Fprintf(&b, "%-18s %14d %14d\n", "fences", t.Original.Fences, t.AtoMig.Fences)
	return b.String()
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: performance impact vs original (slowdown factors)\n")
	fmt.Fprintf(&b, "%-18s %-9s %7s %7s\n", "", "baseline", "Naive", "AtoMig")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-9s %7.2f %7.2f\n", r.Benchmark, r.Baseline, r.Naive, r.AtoMig)
	}
	return b.String()
}

// FormatTable6 renders Table 6.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table 6: Phoenix suite (slowdown factors)\n")
	fmt.Fprintf(&b, "%-20s %7s %9s %7s\n", "", "Naive", "Lasagne", "AtoMig")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %7.2f %9.2f %7.2f\n", r.Benchmark, r.Naive, r.Lasagne, r.AtoMig)
	}
	return b.String()
}
