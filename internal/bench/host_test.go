package bench

import (
	"runtime"
	"testing"
)

// requireParallelHost skips speedup-assertion tests on hosts that
// cannot actually run n workers in parallel. Both gates matter:
// GOMAXPROCS can be pinned above the physical core count (the sweeps
// do exactly that — SweepProcs), in which case workers time-slice and
// wall-clock speedup is noise, not signal. The skip is logged with the
// concrete host shape so CI output records why the claim went
// unchecked.
func requireParallelHost(t *testing.T, n int) {
	t.Helper()
	if p := runtime.GOMAXPROCS(0); p < n {
		t.Skipf("GOMAXPROCS=%d; the %d-worker speedup claim needs %d CPUs", p, n, n)
	}
	if c := runtime.NumCPU(); c < n {
		t.Skipf("NumCPU=%d; host is oversubscribed at %d workers (GOMAXPROCS pin does not add cores), speedup would be noise", c, n)
	}
}
