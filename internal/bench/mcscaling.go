package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/obs"
)

// MCScalingRow is one (program, worker-count) measurement of the
// parallel model checker. Speedup is wall-clock relative to the same
// program at the first worker count in the sweep (canonically 1).
type MCScalingRow struct {
	Program         string  `json:"program"`
	Workers         int     `json:"workers"`
	Executions      int     `json:"executions"`
	States          int     `json:"states"`
	Pruned          int     `json:"pruned"`
	ElapsedMS       float64 `json:"elapsed_ms"`
	ExecsPerSec     float64 `json:"execs_per_sec"`
	Speedup         float64 `json:"speedup"`
	Verdict         string  `json:"verdict"`
	ShardContention int64   `json:"shard_contention"`
	VMResets        int64   `json:"vm_resets"`
	VMAllocs        int64   `json:"vm_allocs"`
}

// DefaultMCScalingPrograms is the litmus+seqlock corpus the scaling
// claim is measured on: every program fully explores in well under a
// second sequentially, so the sweep times exhaustive verification, not
// budget exhaustion.
func DefaultMCScalingPrograms() []string {
	return []string{"mp", "sb", "corr", "seqlock", "seqlock-gap", "lfhash-fig7"}
}

// DefaultMCScalingWorkers is the worker-count sweep (1 first: it is
// the speedup baseline).
func DefaultMCScalingWorkers() []int { return []int{1, 2, 4, 8} }

// MCScaling explores each program to completion at every worker count
// and reports throughput and speedup. It fails if any run does not
// fully explore its state space, or if the verdict or violation set
// drifts across worker counts — the determinism contract the parallel
// engine guarantees (docs/MODEL-CHECKER.md). A non-nil provider
// accumulates the sweep's checker metrics and worker timelines
// (atomig-bench -exp mc-scaling -metrics/-trace).
func MCScaling(programs []string, workerCounts []int, prov *obs.Provider) ([]MCScalingRow, error) {
	if len(programs) == 0 {
		programs = DefaultMCScalingPrograms()
	}
	if len(workerCounts) == 0 {
		workerCounts = DefaultMCScalingWorkers()
	}
	defer pinProcs(workerCounts)()
	var rows []MCScalingRow
	for _, name := range programs {
		p := corpus.Get(name)
		if p == nil {
			return nil, fmt.Errorf("bench: unknown corpus program %q", name)
		}
		if len(p.MCEntries) == 0 {
			return nil, fmt.Errorf("bench: corpus program %q has no model-checking harness", name)
		}
		m, err := p.Compile()
		if err != nil {
			return nil, err
		}
		var baseline time.Duration
		var baseFP string
		for i, j := range workerCounts {
			res, err := checkOnce(m, p.MCEntries, j, prov)
			if err != nil {
				return nil, fmt.Errorf("bench: %s -j %d: %w", name, j, err)
			}
			if res.Verdict == mc.VerdictUnknown {
				return nil, fmt.Errorf("bench: %s -j %d did not fully explore (%s); the scaling claim needs exhaustive runs", name, j, res.Reason)
			}
			fp := verdictFingerprint(res)
			if i == 0 {
				baseline, baseFP = res.Elapsed, fp
			} else if fp != baseFP {
				return nil, fmt.Errorf("bench: %s verdict drift between -j %d and -j %d:\n  %s\n  %s",
					name, workerCounts[0], j, baseFP, fp)
			}
			row := MCScalingRow{
				Program:         name,
				Workers:         j,
				Executions:      res.Executions,
				States:          res.States,
				Pruned:          res.Pruned,
				ElapsedMS:       float64(res.Elapsed) / float64(time.Millisecond),
				Verdict:         res.Verdict.String(),
				ShardContention: res.ShardContention,
				VMResets:        res.VMResets,
				VMAllocs:        res.VMAllocs,
			}
			if res.Elapsed > 0 {
				row.ExecsPerSec = float64(res.Executions) / res.Elapsed.Seconds()
				row.Speedup = float64(baseline) / float64(res.Elapsed)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// checkOnce runs one exhaustive check at the given worker count, under
// budgets generous enough that the corpus programs complete far below
// them — elapsed time measures exploration, not the budget.
func checkOnce(m *ir.Module, entries []string, workers int, prov *obs.Provider) (*mc.Result, error) {
	return mc.Check(m, mc.Options{
		Model:         memmodel.ModelWMM,
		Entries:       entries,
		MaxExecutions: 5_000_000,
		TimeBudget:    2 * time.Minute,
		Workers:       workers,
		Obs:           prov,
	})
}

// verdictFingerprint reduces a result to the worker-count-invariant
// parts: verdict, distinct violation messages, race keys.
func verdictFingerprint(res *mc.Result) string {
	vios := append([]string(nil), res.Violations...)
	sort.Strings(vios)
	keys := make([]string, 0, len(res.Races))
	for _, r := range res.Races {
		keys = append(keys, r.Key())
	}
	sort.Strings(keys)
	return fmt.Sprintf("verdict=%s violations=%q races=%q", res.Verdict, vios, keys)
}

// FormatMCScaling renders the sweep.
func FormatMCScaling(rows []MCScalingRow) string {
	var b strings.Builder
	b.WriteString("Model-checker scaling (frontier-split workers, shared visited cache)\n")
	fmt.Fprintf(&b, "%-14s %3s %10s %8s %12s %12s %8s %10s %10s\n",
		"program", "j", "execs", "states", "elapsed", "execs/sec", "speedup", "contention", "vm reuse")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %3d %10d %8d %11.1fms %12.0f %7.2fx %10d %9.0f%%\n",
			r.Program, r.Workers, r.Executions, r.States, r.ElapsedMS, r.ExecsPerSec,
			r.Speedup, r.ShardContention, reusePct(r.VMResets, r.VMAllocs))
	}
	return b.String()
}

func reusePct(resets, allocs int64) float64 {
	if resets+allocs == 0 {
		return 0
	}
	return 100 * float64(resets) / float64(resets+allocs)
}
