package bench

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
)

// TestMCScalingNoDrift is the acceptance gate for the parallel model
// checker: the full litmus+seqlock sweep at 1, 2 and 8 workers must
// fully explore every program with byte-identical verdicts and
// violation sets (MCScaling errors out on any drift).
func TestMCScalingNoDrift(t *testing.T) {
	rows, err := MCScaling(nil, []int{1, 2, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(DefaultMCScalingPrograms()) * 3
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Workers == 1 && r.ShardContention != 0 {
			t.Errorf("%s -j 1: shard contention %d, want 0 (lock-free single-worker path)",
				r.Program, r.ShardContention)
		}
		if r.VMAllocs > int64(r.Workers) {
			t.Errorf("%s -j %d: %d VM allocations for %d workers (reuse broken?)",
				r.Program, r.Workers, r.VMAllocs, r.Workers)
		}
	}
}

// TestMCScalingSpeedup asserts the headline claim — at least 3x
// wall-clock speedup at 8 workers over 1 — on machines that can
// actually run 8 workers in parallel. On smaller hosts the determinism
// half of the claim is still covered by TestMCScalingNoDrift.
func TestMCScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	requireParallelHost(t, 8)
	rows, err := MCScaling([]string{"seqlock-gap", "lfhash-fig7", "sb"}, []int{1, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var base, par float64
	for _, r := range rows {
		switch r.Workers {
		case 1:
			base += r.ElapsedMS
		case 8:
			par += r.ElapsedMS
		}
	}
	if par <= 0 {
		t.Fatal("no 8-worker measurements")
	}
	if speedup := base / par; speedup < 3 {
		t.Errorf("aggregate speedup at -j 8 is %.2fx, want >= 3x (1-worker %.1fms, 8-worker %.1fms)",
			speedup, base, par)
	}
}

// BenchmarkMCScaling times one full exhaustive exploration of the
// litmus+seqlock corpus per iteration, one sub-benchmark per worker
// count. `make bench-mc` captures execs/sec and speedup in
// BENCH_mc.json via atomig-bench; this benchmark is the `go test
// -bench` view of the same sweep and the smoke target in `make check`.
func BenchmarkMCScaling(b *testing.B) {
	programs := DefaultMCScalingPrograms()
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				execs := 0
				for _, name := range programs {
					p := corpus.Get(name)
					m, err := p.Compile()
					if err != nil {
						b.Fatal(err)
					}
					res, err := checkOnce(m, p.MCEntries, j, nil)
					if err != nil {
						b.Fatal(err)
					}
					execs += res.Executions
				}
				b.ReportMetric(float64(execs), "execs/op")
			}
		})
	}
}
