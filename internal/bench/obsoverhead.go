package bench

import (
	"fmt"
	"time"

	"repro/internal/corpus"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/obs"
)

// ObsOverheadRow reports the model checker's exploration throughput on
// one corpus program with observability disabled (nil provider — the
// default for library callers) and fully enabled (shared registry plus
// span tracing, what -metrics -trace costs). The instrumentation sits
// on fragment and counter boundaries, not in the per-step interpreter
// loop, so the two columns should be within measurement noise of each
// other — docs/OBSERVABILITY.md's zero-cost contract.
type ObsOverheadRow struct {
	Program    string
	Executions int     // executions explored across both configurations
	NsOffExec  float64 // ns per execution, nil provider
	NsOnExec   float64 // ns per execution, metrics + tracing provider
	Slowdown   float64 // NsOnExec / NsOffExec
}

// ObsOverhead explores each program to completion iters times per
// configuration under WMM with a single worker (the hot sequential
// loop) and reports ns per explored execution for each.
func ObsOverhead(programs []string, iters int) ([]ObsOverheadRow, error) {
	if iters <= 0 {
		iters = 3
	}
	rows := make([]ObsOverheadRow, 0, len(programs))
	for _, name := range programs {
		p := corpus.Get(name)
		if p == nil {
			return nil, fmt.Errorf("bench: unknown corpus program %q", name)
		}
		if len(p.MCEntries) == 0 {
			return nil, fmt.Errorf("bench: corpus program %q has no model-checking harness", name)
		}
		m, err := p.Compile()
		if err != nil {
			return nil, err
		}
		run := func(mkProv func() *obs.Provider) (int64, int64, error) {
			var execs, elapsed int64
			for i := 0; i < iters; i++ {
				var prov *obs.Provider
				if mkProv != nil {
					prov = mkProv()
				}
				t0 := time.Now()
				res, err := mc.Check(m, mc.Options{
					Model:         memmodel.ModelWMM,
					Entries:       p.MCEntries,
					MaxExecutions: 5_000_000,
					TimeBudget:    2 * time.Minute,
					Workers:       1,
					Obs:           prov,
				})
				elapsed += time.Since(t0).Nanoseconds()
				if err != nil {
					return 0, 0, err
				}
				if res.Verdict == mc.VerdictUnknown {
					return 0, 0, fmt.Errorf("did not fully explore (%s)", res.Reason)
				}
				execs += int64(res.Executions)
			}
			return execs, elapsed, nil
		}
		execsOff, nsOff, err := run(nil)
		if err != nil {
			return nil, fmt.Errorf("bench: %s (obs off): %w", name, err)
		}
		execsOn, nsOn, err := run(obs.NewTracing)
		if err != nil {
			return nil, fmt.Errorf("bench: %s (obs on): %w", name, err)
		}
		row := ObsOverheadRow{
			Program:    name,
			Executions: int(execsOff + execsOn),
		}
		if execsOff > 0 {
			row.NsOffExec = float64(nsOff) / float64(execsOff)
		}
		if execsOn > 0 {
			row.NsOnExec = float64(nsOn) / float64(execsOn)
		}
		if row.NsOffExec > 0 {
			row.Slowdown = row.NsOnExec / row.NsOffExec
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatObsOverhead renders the overhead table.
func FormatObsOverhead(rows []ObsOverheadRow) string {
	out := "observability overhead (model checker, WMM, 1 worker)\n"
	out += fmt.Sprintf("%-14s %12s %12s %10s\n", "program", "ns/exec off", "ns/exec on", "slowdown")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %12.0f %12.0f %9.2fx\n",
			r.Program, r.NsOffExec, r.NsOnExec, r.Slowdown)
	}
	return out
}
