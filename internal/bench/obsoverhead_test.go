package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/obs"
)

// TestObsOverheadSmoke runs the overhead harness on a small program and
// checks the table renders. Absolute numbers are machine-dependent;
// what the test pins down is that both configurations fully explore.
func TestObsOverheadSmoke(t *testing.T) {
	rows, err := ObsOverhead([]string{"mp"}, 2)
	if err != nil {
		t.Fatalf("ObsOverhead: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	if rows[0].Executions == 0 {
		t.Error("no executions explored")
	}
	out := FormatObsOverhead(rows)
	for _, want := range []string{"mp", "slowdown", "ns/exec"} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}
}

// TestObsDisabledWithinNoise is the zero-cost gate for the disabled
// path: exploring with a nil provider must stay within noise of
// exploring with full metrics+tracing attached — the instrumentation
// sits on fragment and counter boundaries, never in the per-step
// interpreter loop, so a real regression (e.g. a span per execution or
// an allocation on the nil seam) shows up as a multiple, not a few
// percent. The bound is deliberately loose (2x, best of 3) to absorb
// scheduler noise on shared CI machines; the strict allocation gate for
// the nil seam lives in internal/obs (TestNilSafety).
func TestObsDisabledWithinNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	p := corpus.Get("seqlock")
	m, err := p.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	explore := func(prov *obs.Provider) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			res, err := mc.Check(m, mc.Options{
				Model:         memmodel.ModelWMM,
				Entries:       p.MCEntries,
				MaxExecutions: 5_000_000,
				TimeBudget:    2 * time.Minute,
				Workers:       1,
				Obs:           prov,
			})
			d := time.Since(t0)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if res.Verdict == mc.VerdictUnknown {
				t.Fatalf("did not fully explore: %s", res.Reason)
			}
			if d < best {
				best = d
			}
		}
		return best
	}
	// Warm up caches and the scheduler before timing anything.
	explore(nil)
	on := explore(obs.NewTracing())
	off := explore(nil)
	if ratio := float64(off) / float64(on); ratio > 2.0 {
		t.Errorf("disabled observability is %.2fx slower than enabled (off=%v on=%v); the nil seam should be free", ratio, off, on)
	}
}

func benchmarkMCObs(b *testing.B, mkProv func() *obs.Provider) {
	p := corpus.Get("seqlock")
	m, err := p.Compile()
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	b.ReportAllocs()
	var execs int64
	for i := 0; i < b.N; i++ {
		var prov *obs.Provider
		if mkProv != nil {
			prov = mkProv()
		}
		res, err := mc.Check(m, mc.Options{
			Model:         memmodel.ModelWMM,
			Entries:       p.MCEntries,
			MaxExecutions: 5_000_000,
			TimeBudget:    2 * time.Minute,
			Workers:       1,
			Obs:           prov,
		})
		if err != nil {
			b.Fatalf("check: %v", err)
		}
		execs += int64(res.Executions)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(execs), "ns/exec")
}

// BenchmarkMCObsDisabled is the checker with a nil provider — the
// baseline every library caller gets.
func BenchmarkMCObsDisabled(b *testing.B) { benchmarkMCObs(b, nil) }

// BenchmarkMCObsEnabled attaches a fresh metrics+tracing provider per
// exploration, the -metrics -trace configuration.
func BenchmarkMCObsEnabled(b *testing.B) { benchmarkMCObs(b, obs.NewTracing) }
