package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/minic"
	"repro/internal/obs"
)

// PipelineScalingRow is one (module, worker-count) measurement of the
// full pipeline: MiniC compile (lex, parse, lower+verify) plus port.
// ElapsedMS is compile + port wall clock — "lines per second" means
// source text in, ported module out, not port-only (the pre-frontend-
// parallelism envelopes in BENCH_pipeline.json measured port time on a
// pre-compiled module; EXPERIMENTS.md documents the methodology
// change). Speedup is relative to the first worker count in the sweep
// (canonically 1); OutputHash is the SHA-256 of the ported module
// text, which must be identical for every worker count.
type PipelineScalingRow struct {
	Module      string  `json:"module"`
	SLOC        int     `json:"sloc"`
	Funcs       int     `json:"funcs"`
	Workers     int     `json:"workers"`
	LexMS       float64 `json:"lex_ms"`
	ParseMS     float64 `json:"parse_ms"`
	LowerMS     float64 `json:"lower_ms"` // lowering + IR verify
	PortMS      float64 `json:"port_ms"`
	ElapsedMS   float64 `json:"elapsed_ms"` // compile + port
	LinesPerSec float64 `json:"lines_per_sec"`
	Speedup     float64 `json:"speedup"`
	Spinloops   int     `json:"spinloops"`
	Optiloops   int     `json:"optiloops"`
	StickyMark  int     `json:"sticky_marked"`
	Fences      int     `json:"fences"`
	AliasMerges int64   `json:"alias_merges"`
	OutputHash  string  `json:"output_hash"`
}

// DefaultPipelineScalingSLOC is the generated-module size the scaling
// claim is measured on (>= 100k lines, acceptance criteria).
const DefaultPipelineScalingSLOC = 100_000

// DefaultPipelineScalingWorkers is the worker sweep (1 first: it is
// the speedup baseline).
func DefaultPipelineScalingWorkers() []int { return []int{1, 2, 4, 8} }

// SweepProcs reports the GOMAXPROCS value the scaling sweeps pin: at
// least the widest worker count in the sweep, never below the ambient
// setting. Without the pin, a sweep run where the runtime default
// (NumCPU) is below max(-j) silently serializes the wider worker
// counts onto too few Ps and reports scheduling overhead as if it were
// parallel scaling — the recorded "-j 8 cliff" on a 1-CPU host was
// exactly that (EXPERIMENTS.md). Recording the pin next to
// runtime.NumCPU in the JSON envelope makes such runs identifiable.
func SweepProcs(workerCounts []int) int {
	if len(workerCounts) == 0 {
		workerCounts = DefaultPipelineScalingWorkers()
	}
	p := runtime.GOMAXPROCS(0)
	for _, j := range workerCounts {
		if j > p {
			p = j
		}
	}
	return p
}

// Oversubscribed reports whether the sweep's pinned GOMAXPROCS exceeds
// the host's CPU count — i.e. the wider worker counts time-slice on
// too few cores and absolute speedups are meaningless. Benchmark
// envelopes record this flag so a reader never mistakes an
// oversubscribed sweep for a real scaling measurement, and the
// CPU-gated speedup tests skip when it is true.
func Oversubscribed(workerCounts []int) bool {
	return SweepProcs(workerCounts) > runtime.NumCPU()
}

// pinProcs pins GOMAXPROCS to SweepProcs for the duration of one sweep;
// the returned func restores the previous value.
func pinProcs(workerCounts []int) func() {
	prev := runtime.GOMAXPROCS(SweepProcs(workerCounts))
	return func() { runtime.GOMAXPROCS(prev) }
}

// PipelineScaling generates one large module (appgen.LargeSpec), then
// compiles and ports it end to end at every worker count — the
// frontend fan-out (minic.Options.Workers) and the pipeline fan-out
// (atomig.Options.Workers) both set to j, so the row measures what
// `atomig -j N file.c` costs. Each j compiles the same source fresh
// (Port mutates its module in place). It fails if the ported output is
// not byte-identical across worker counts — the determinism contract
// of docs/PIPELINE.md. A non-nil provider accumulates frontend.* and
// pipeline.* metrics and phase spans (atomig-bench -exp
// pipeline-scaling -metrics/-trace).
func PipelineScaling(sloc int, seed int64, workerCounts []int, prov *obs.Provider) ([]PipelineScalingRow, error) {
	if sloc <= 0 {
		sloc = DefaultPipelineScalingSLOC
	}
	if len(workerCounts) == 0 {
		workerCounts = DefaultPipelineScalingWorkers()
	}
	defer pinProcs(workerCounts)()
	spec := appgen.LargeSpec("pipeline-scaling", sloc, seed)
	src, _ := appgen.GenerateLarge(spec)
	lines := strings.Count(src, "\n")

	var rows []PipelineScalingRow
	var baseline time.Duration
	var baseHash string
	for i, j := range workerCounts {
		start := time.Now()
		res, err := minic.CompileOpts(spec.Name+".c", src, minic.Options{Workers: j, Obs: prov})
		compileTime := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: compile %d-line module -j %d: %w", sloc, j, err)
		}
		opts := atomig.DefaultOptions()
		opts.Workers = j
		opts.Obs = prov
		rep, err := atomig.Port(res.Module, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: port -j %d: %w", j, err)
		}
		elapsed := compileTime + rep.Duration
		sum := sha256.Sum256([]byte(res.Module.String()))
		hash := hex.EncodeToString(sum[:8])
		if i == 0 {
			baseline, baseHash = elapsed, hash
		} else if hash != baseHash {
			return nil, fmt.Errorf("bench: ported output drift between -j %d and -j %d (hash %s vs %s)",
				workerCounts[0], j, baseHash, hash)
		}
		row := PipelineScalingRow{
			Module:      spec.Name,
			SLOC:        lines,
			Funcs:       len(res.Module.Funcs),
			Workers:     j,
			LexMS:       ms(res.Timing.Lex),
			ParseMS:     ms(res.Timing.Parse),
			LowerMS:     ms(res.Timing.Lower + res.Timing.Verify),
			PortMS:      ms(rep.Duration),
			ElapsedMS:   ms(elapsed),
			Spinloops:   rep.Spinloops,
			Optiloops:   rep.Optiloops,
			StickyMark:  rep.StickyMarked,
			Fences:      rep.ExplicitAdded,
			AliasMerges: rep.AliasMerges,
			OutputHash:  hash,
		}
		if elapsed > 0 {
			row.LinesPerSec = float64(lines) / elapsed.Seconds()
			row.Speedup = float64(baseline) / float64(elapsed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// FormatPipelineScaling renders the sweep.
func FormatPipelineScaling(rows []PipelineScalingRow) string {
	var b strings.Builder
	b.WriteString("Pipeline scaling, end to end (parallel frontend + parallel port)\n")
	fmt.Fprintf(&b, "%-18s %8s %6s %3s %9s %9s %9s %9s %11s %12s %8s %6s %s\n",
		"module", "sloc", "funcs", "j", "lex", "parse", "lower", "port", "elapsed", "lines/sec", "speedup", "fences", "output")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %8d %6d %3d %7.1fms %7.1fms %7.1fms %7.1fms %9.1fms %12.0f %7.2fx %6d %s\n",
			r.Module, r.SLOC, r.Funcs, r.Workers, r.LexMS, r.ParseMS, r.LowerMS, r.PortMS,
			r.ElapsedMS, r.LinesPerSec, r.Speedup, r.Fences, r.OutputHash)
	}
	return b.String()
}

// FrontendScalingRow is one (module, worker-count) measurement of the
// frontend alone: MiniC source in, verified AIR module out. OutputHash
// is the SHA-256 of the module text — identical for every worker
// count, the frontend half of the determinism contract.
type FrontendScalingRow struct {
	Module      string  `json:"module"`
	SLOC        int     `json:"sloc"`
	Funcs       int     `json:"funcs"`
	Workers     int     `json:"workers"`
	LexMS       float64 `json:"lex_ms"`
	ParseMS     float64 `json:"parse_ms"`
	LowerMS     float64 `json:"lower_ms"` // lowering + IR verify
	ElapsedMS   float64 `json:"elapsed_ms"`
	LinesPerSec float64 `json:"lines_per_sec"`
	Speedup     float64 `json:"speedup"`
	OutputHash  string  `json:"output_hash"`
}

// FrontendScaling compiles the generated module at every worker count,
// isolating the frontend's scaling from the port's. Hash drift across
// worker counts is a hard error.
func FrontendScaling(sloc int, seed int64, workerCounts []int, prov *obs.Provider) ([]FrontendScalingRow, error) {
	if sloc <= 0 {
		sloc = DefaultPipelineScalingSLOC
	}
	if len(workerCounts) == 0 {
		workerCounts = DefaultPipelineScalingWorkers()
	}
	defer pinProcs(workerCounts)()
	spec := appgen.LargeSpec("frontend-scaling", sloc, seed)
	src, _ := appgen.GenerateLarge(spec)
	lines := strings.Count(src, "\n")

	var rows []FrontendScalingRow
	var baseline time.Duration
	var baseHash string
	for i, j := range workerCounts {
		start := time.Now()
		res, err := minic.CompileOpts(spec.Name+".c", src, minic.Options{Workers: j, Obs: prov})
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: compile %d-line module -j %d: %w", sloc, j, err)
		}
		sum := sha256.Sum256([]byte(res.Module.String()))
		hash := hex.EncodeToString(sum[:8])
		if i == 0 {
			baseline, baseHash = elapsed, hash
		} else if hash != baseHash {
			return nil, fmt.Errorf("bench: compiled module drift between -j %d and -j %d (hash %s vs %s)",
				workerCounts[0], j, baseHash, hash)
		}
		row := FrontendScalingRow{
			Module:     spec.Name,
			SLOC:       lines,
			Funcs:      len(res.Module.Funcs),
			Workers:    j,
			LexMS:      ms(res.Timing.Lex),
			ParseMS:    ms(res.Timing.Parse),
			LowerMS:    ms(res.Timing.Lower + res.Timing.Verify),
			ElapsedMS:  ms(elapsed),
			OutputHash: hash,
		}
		if elapsed > 0 {
			row.LinesPerSec = float64(lines) / elapsed.Seconds()
			row.Speedup = float64(baseline) / float64(elapsed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFrontendScaling renders the sweep.
func FormatFrontendScaling(rows []FrontendScalingRow) string {
	var b strings.Builder
	b.WriteString("Frontend scaling (chunked parallel parse, parallel per-function lowering)\n")
	fmt.Fprintf(&b, "%-18s %8s %6s %3s %9s %9s %9s %11s %12s %8s %s\n",
		"module", "sloc", "funcs", "j", "lex", "parse", "lower", "elapsed", "lines/sec", "speedup", "output")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %8d %6d %3d %7.1fms %7.1fms %7.1fms %9.1fms %12.0f %7.2fx %s\n",
			r.Module, r.SLOC, r.Funcs, r.Workers, r.LexMS, r.ParseMS, r.LowerMS,
			r.ElapsedMS, r.LinesPerSec, r.Speedup, r.OutputHash)
	}
	return b.String()
}

// GenerateLargeSource writes the pipeline-scaling module's MiniC source
// (used by `make pipeline-smoke` and `make frontend-smoke` to port the
// same module through the atomig CLI at several worker counts).
func GenerateLargeSource(sloc int, seed int64) string {
	src, _ := appgen.GenerateLarge(appgen.LargeSpec("pipeline-scaling", sloc, seed))
	return src
}
