package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/minic"
	"repro/internal/obs"
)

// PipelineScalingRow is one (module, worker-count) measurement of the
// porting pipeline. Speedup is wall-clock relative to the first worker
// count in the sweep (canonically 1); OutputHash is the SHA-256 of the
// ported module text, which must be identical for every worker count.
type PipelineScalingRow struct {
	Module      string  `json:"module"`
	SLOC        int     `json:"sloc"`
	Funcs       int     `json:"funcs"`
	Workers     int     `json:"workers"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	LinesPerSec float64 `json:"lines_per_sec"`
	Speedup     float64 `json:"speedup"`
	Spinloops   int     `json:"spinloops"`
	Optiloops   int     `json:"optiloops"`
	StickyMark  int     `json:"sticky_marked"`
	Fences      int     `json:"fences"`
	AliasMerges int64   `json:"alias_merges"`
	OutputHash  string  `json:"output_hash"`
}

// DefaultPipelineScalingSLOC is the generated-module size the scaling
// claim is measured on (>= 100k lines, acceptance criteria).
const DefaultPipelineScalingSLOC = 100_000

// DefaultPipelineScalingWorkers is the worker sweep (1 first: it is
// the speedup baseline).
func DefaultPipelineScalingWorkers() []int { return []int{1, 2, 4, 8} }

// SweepProcs reports the GOMAXPROCS value the scaling sweeps pin: at
// least the widest worker count in the sweep, never below the ambient
// setting. Without the pin, a sweep run where the runtime default
// (NumCPU) is below max(-j) silently serializes the wider worker
// counts onto too few Ps and reports scheduling overhead as if it were
// parallel scaling — the recorded "-j 8 cliff" on a 1-CPU host was
// exactly that (EXPERIMENTS.md). Recording the pin next to
// runtime.NumCPU in the JSON envelope makes such runs identifiable.
func SweepProcs(workerCounts []int) int {
	if len(workerCounts) == 0 {
		workerCounts = DefaultPipelineScalingWorkers()
	}
	p := runtime.GOMAXPROCS(0)
	for _, j := range workerCounts {
		if j > p {
			p = j
		}
	}
	return p
}

// pinProcs pins GOMAXPROCS to SweepProcs for the duration of one sweep;
// the returned func restores the previous value.
func pinProcs(workerCounts []int) func() {
	prev := runtime.GOMAXPROCS(SweepProcs(workerCounts))
	return func() { runtime.GOMAXPROCS(prev) }
}

// PipelineScaling generates one large module (appgen.LargeSpec), then
// ports a fresh clone of it at every worker count, reporting throughput
// and speedup. It fails if the ported output is not byte-identical
// across worker counts — the determinism contract of docs/PIPELINE.md.
// A non-nil provider accumulates pipeline.* metrics and phase spans
// (atomig-bench -exp pipeline-scaling -metrics/-trace).
func PipelineScaling(sloc int, seed int64, workerCounts []int, prov *obs.Provider) ([]PipelineScalingRow, error) {
	if sloc <= 0 {
		sloc = DefaultPipelineScalingSLOC
	}
	if len(workerCounts) == 0 {
		workerCounts = DefaultPipelineScalingWorkers()
	}
	defer pinProcs(workerCounts)()
	spec := appgen.LargeSpec("pipeline-scaling", sloc, seed)
	src, _ := appgen.GenerateLarge(spec)
	lines := strings.Count(src, "\n")
	res, err := minic.Compile(spec.Name+".c", src)
	if err != nil {
		return nil, fmt.Errorf("bench: generate %d-line module: %w", sloc, err)
	}
	base := res.Module

	var rows []PipelineScalingRow
	var baseline time.Duration
	var baseHash string
	for i, j := range workerCounts {
		opts := atomig.DefaultOptions()
		opts.Workers = j
		opts.Obs = prov
		ported, rep, err := atomig.PortClone(base, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: port -j %d: %w", j, err)
		}
		sum := sha256.Sum256([]byte(ported.String()))
		hash := hex.EncodeToString(sum[:8])
		if i == 0 {
			baseline, baseHash = rep.Duration, hash
		} else if hash != baseHash {
			return nil, fmt.Errorf("bench: ported output drift between -j %d and -j %d (hash %s vs %s)",
				workerCounts[0], j, baseHash, hash)
		}
		row := PipelineScalingRow{
			Module:      spec.Name,
			SLOC:        lines,
			Funcs:       len(base.Funcs),
			Workers:     j,
			ElapsedMS:   float64(rep.Duration) / float64(time.Millisecond),
			Spinloops:   rep.Spinloops,
			Optiloops:   rep.Optiloops,
			StickyMark:  rep.StickyMarked,
			Fences:      rep.ExplicitAdded,
			AliasMerges: rep.AliasMerges,
			OutputHash:  hash,
		}
		if rep.Duration > 0 {
			row.LinesPerSec = float64(lines) / rep.Duration.Seconds()
			row.Speedup = float64(baseline) / float64(rep.Duration)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPipelineScaling renders the sweep.
func FormatPipelineScaling(rows []PipelineScalingRow) string {
	var b strings.Builder
	b.WriteString("Pipeline scaling (parallel detection, sharded alias worklist, per-function fences)\n")
	fmt.Fprintf(&b, "%-18s %8s %6s %3s %12s %12s %8s %6s %6s %8s %s\n",
		"module", "sloc", "funcs", "j", "elapsed", "lines/sec", "speedup", "spins", "fences", "merges", "output")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %8d %6d %3d %11.1fms %12.0f %7.2fx %6d %6d %8d %s\n",
			r.Module, r.SLOC, r.Funcs, r.Workers, r.ElapsedMS, r.LinesPerSec,
			r.Speedup, r.Spinloops, r.Fences, r.AliasMerges, r.OutputHash)
	}
	return b.String()
}

// GenerateLargeSource writes the pipeline-scaling module's MiniC source
// (used by `make pipeline-smoke` to port the same module through the
// atomig CLI at several worker counts).
func GenerateLargeSource(sloc int, seed int64) string {
	src, _ := appgen.GenerateLarge(appgen.LargeSpec("pipeline-scaling", sloc, seed))
	return src
}
