package bench

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/atomig"
	"repro/internal/minic"
)

// TestPipelineScalingNoDrift is the determinism gate for the parallel
// pipeline: porting the generated module at 1, 2 and 8 workers must
// produce byte-identical output (PipelineScaling errors out on any hash
// drift). A smaller module than the headline run keeps this inside the
// regular test budget.
func TestPipelineScalingNoDrift(t *testing.T) {
	rows, err := PipelineScaling(12_000, 7, []int{1, 2, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.OutputHash != rows[0].OutputHash {
			t.Errorf("-j %d output hash %s differs from baseline %s", r.Workers, r.OutputHash, rows[0].OutputHash)
		}
		if r.Spinloops == 0 || r.Optiloops == 0 || r.Fences == 0 {
			t.Errorf("-j %d: degenerate module (spins %d, optiloops %d, fences %d)",
				r.Workers, r.Spinloops, r.Optiloops, r.Fences)
		}
	}
}

// TestPipelineScalingSpeedup asserts the acceptance criterion — at
// least 2.5x wall-clock speedup at -j 8 over -j 1 on a >= 100k-line
// module — on machines that can actually run 8 workers in parallel. On
// smaller hosts the determinism half of the claim is still covered by
// TestPipelineScalingNoDrift.
func TestPipelineScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if p := runtime.GOMAXPROCS(0); p < 8 {
		t.Skipf("GOMAXPROCS=%d; the 8-worker speedup claim needs 8 CPUs", p)
	}
	rows, err := PipelineScaling(DefaultPipelineScalingSLOC, 7, []int{1, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var base, par float64
	for _, r := range rows {
		if r.SLOC < 100_000 {
			t.Fatalf("generated module is %d lines, want >= 100k", r.SLOC)
		}
		switch r.Workers {
		case 1:
			base = r.ElapsedMS
		case 8:
			par = r.ElapsedMS
		}
	}
	if par <= 0 {
		t.Fatal("no 8-worker measurement")
	}
	if speedup := base / par; speedup < 2.5 {
		t.Errorf("pipeline speedup at -j 8 is %.2fx, want >= 2.5x (1-worker %.1fms, 8-worker %.1fms)",
			speedup, base, par)
	}
}

// BenchmarkPipelinePort times one full port of a mid-sized generated
// module per iteration, one sub-benchmark per worker count — the `go
// test -bench` view of `atomig-bench -exp pipeline-scaling`.
func BenchmarkPipelinePort(b *testing.B) {
	src := GenerateLargeSource(30_000, 7)
	res, err := minic.Compile("bench.c", src)
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := atomig.DefaultOptions()
				opts.Workers = j
				if _, _, err := atomig.PortClone(res.Module, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
