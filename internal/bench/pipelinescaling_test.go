package bench

import (
	"fmt"
	"testing"

	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/minic"
)

// TestPipelineScalingNoDrift is the determinism gate for the parallel
// pipeline end to end: compiling AND porting the generated module at
// 1, 2 and 8 workers must produce byte-identical output
// (PipelineScaling errors out on any hash drift). A smaller module
// than the headline run keeps this inside the regular test budget.
func TestPipelineScalingNoDrift(t *testing.T) {
	rows, err := PipelineScaling(12_000, 7, []int{1, 2, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.OutputHash != rows[0].OutputHash {
			t.Errorf("-j %d output hash %s differs from baseline %s", r.Workers, r.OutputHash, rows[0].OutputHash)
		}
		if r.Spinloops == 0 || r.Optiloops == 0 || r.Fences == 0 {
			t.Errorf("-j %d: degenerate module (spins %d, optiloops %d, fences %d)",
				r.Workers, r.Spinloops, r.Optiloops, r.Fences)
		}
		if r.ElapsedMS < r.PortMS {
			t.Errorf("-j %d: elapsed %.1fms < port %.1fms; compile time missing from the end-to-end figure",
				r.Workers, r.ElapsedMS, r.PortMS)
		}
	}
}

// TestFrontendScalingNoDrift is the frontend half of the contract: the
// compiled (un-ported) module is byte-identical at every worker count.
func TestFrontendScalingNoDrift(t *testing.T) {
	rows, err := FrontendScaling(12_000, 11, []int{1, 2, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.OutputHash != rows[0].OutputHash {
			t.Errorf("-j %d module hash %s differs from baseline %s", r.Workers, r.OutputHash, rows[0].OutputHash)
		}
	}
}

// TestPortedOutputIdenticalAcrossWorkers pins the full-stack property
// directly (not through the bench sweep): a fresh generated module,
// compiled and ported at -j 1/2/4/8, yields byte-identical text. This
// is the exact claim `make frontend-smoke` checks through the CLI.
func TestPortedOutputIdenticalAcrossWorkers(t *testing.T) {
	src, _ := appgen.GenerateLarge(appgen.LargeSpec("jdet", 8_000, 23))
	var want string
	for _, j := range []int{1, 2, 4, 8} {
		res, err := minic.CompileOpts("jdet.c", src, minic.Options{Workers: j})
		if err != nil {
			t.Fatalf("-j %d: compile: %v", j, err)
		}
		opts := atomig.DefaultOptions()
		opts.Workers = j
		if _, err := atomig.Port(res.Module, opts); err != nil {
			t.Fatalf("-j %d: port: %v", j, err)
		}
		got := res.Module.String()
		if j == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("-j %d ported output differs from -j 1 (%d vs %d bytes)", j, len(got), len(want))
		}
	}
}

// TestPipelineScalingSpeedup asserts the acceptance criterion — at
// least 2x end-to-end wall-clock speedup at -j 8 over -j 1 on a
// >= 100k-line module — on machines that can actually run 8 workers
// in parallel. On smaller or oversubscribed hosts the determinism half
// of the claim is still covered by TestPipelineScalingNoDrift.
func TestPipelineScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	requireParallelHost(t, 8)
	rows, err := PipelineScaling(DefaultPipelineScalingSLOC, 7, []int{1, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var base, par float64
	for _, r := range rows {
		if r.SLOC < 100_000 {
			t.Fatalf("generated module is %d lines, want >= 100k", r.SLOC)
		}
		switch r.Workers {
		case 1:
			base = r.ElapsedMS
		case 8:
			par = r.ElapsedMS
		}
	}
	if par <= 0 {
		t.Fatal("no 8-worker measurement")
	}
	if speedup := base / par; speedup < 2 {
		t.Errorf("end-to-end speedup at -j 8 is %.2fx, want >= 2x (1-worker %.1fms, 8-worker %.1fms)",
			speedup, base, par)
	}
}

// BenchmarkPipelinePort times one full compile+port of a mid-sized
// generated module per iteration, one sub-benchmark per worker count —
// the `go test -bench` view of `atomig-bench -exp pipeline-scaling`.
func BenchmarkPipelinePort(b *testing.B) {
	src := GenerateLargeSource(30_000, 7)
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := minic.CompileOpts("bench.c", src, minic.Options{Workers: j})
				if err != nil {
					b.Fatal(err)
				}
				opts := atomig.DefaultOptions()
				opts.Workers = j
				if _, err := atomig.Port(res.Module, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
