package bench

import (
	"fmt"
	"time"

	"repro/internal/corpus"
	"repro/internal/memmodel"
	"repro/internal/race"
	"repro/internal/vm"
)

// RaceOverheadRow reports the VM's instruction throughput on one corpus
// program with race detection off and on. The hook seam is nil-checked
// at every event site, so the "off" column is the baseline interpreter;
// the ratio is the cost of FastTrack-style vector-clock tracking per
// observed access.
type RaceOverheadRow struct {
	Program  string
	Steps    int64
	NsOff    float64 // ns per VM step, detector disabled
	NsOn     float64 // ns per VM step, detector attached
	Slowdown float64 // NsOn / NsOff
	Races    int     // distinct races the attached detector found
}

// RaceOverhead measures detection overhead across the corpus programs
// with a performance harness, running each (program, detector?) pair
// iters times under the WMM model with the baseline random scheduler.
func RaceOverhead(programs []string, iters int) ([]RaceOverheadRow, error) {
	if iters <= 0 {
		iters = 3
	}
	rows := make([]RaceOverheadRow, 0, len(programs))
	for _, name := range programs {
		p := corpus.Get(name)
		if p == nil {
			return nil, fmt.Errorf("bench: unknown corpus program %q", name)
		}
		if len(p.PerfEntries) == 0 {
			return nil, fmt.Errorf("bench: corpus program %q has no performance harness", name)
		}
		m, err := p.Compile()
		if err != nil {
			return nil, err
		}
		run := func(det *race.Detector) (int64, int64, error) {
			var steps, elapsed int64
			for i := 0; i < iters; i++ {
				opts := vm.Options{
					Model:      memmodel.ModelWMM,
					Entries:    p.PerfEntries,
					Controller: vm.NewScheduler(vm.SchedRandom, int64(i)+1),
					MaxSteps:   p.PerfSteps,
					Costs:      vm.DefaultCosts(),
				}
				if det != nil {
					det.BeginExec()
					opts.Hook = det
				}
				t0 := time.Now()
				res, err := vm.Run(m, opts)
				elapsed += time.Since(t0).Nanoseconds()
				if err != nil {
					return 0, 0, err
				}
				steps += res.Steps
			}
			return steps, elapsed, nil
		}
		stepsOff, nsOff, err := run(nil)
		if err != nil {
			return nil, fmt.Errorf("bench: %s (detector off): %w", name, err)
		}
		det := race.New(memmodel.ModelWMM, race.Options{})
		stepsOn, nsOn, err := run(det)
		if err != nil {
			return nil, fmt.Errorf("bench: %s (detector on): %w", name, err)
		}
		row := RaceOverheadRow{
			Program: name,
			Steps:   stepsOff + stepsOn,
			Races:   det.Races(),
		}
		if stepsOff > 0 {
			row.NsOff = float64(nsOff) / float64(stepsOff)
		}
		if stepsOn > 0 {
			row.NsOn = float64(nsOn) / float64(stepsOn)
		}
		if row.NsOff > 0 {
			row.Slowdown = row.NsOn / row.NsOff
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatRaceOverhead renders the overhead table.
func FormatRaceOverhead(rows []RaceOverheadRow) string {
	out := "race-detection overhead (WMM, random scheduler)\n"
	out += fmt.Sprintf("%-14s %12s %12s %10s %7s\n", "program", "ns/step off", "ns/step on", "slowdown", "races")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %12.1f %12.1f %9.2fx %7d\n",
			r.Program, r.NsOff, r.NsOn, r.Slowdown, r.Races)
	}
	return out
}
