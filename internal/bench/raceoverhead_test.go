package bench

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/memmodel"
	"repro/internal/race"
	"repro/internal/vm"
)

// TestRaceOverheadSmoke runs the overhead harness on a small program
// pair and checks the table renders. The slowdown itself is
// machine-dependent; what the test pins down is that both
// configurations execute and that the attached detector actually
// observed the racy program.
func TestRaceOverheadSmoke(t *testing.T) {
	rows, err := RaceOverhead([]string{"mp", "seqlock-gap"}, 2)
	if err != nil {
		t.Fatalf("RaceOverhead: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Steps == 0 {
			t.Errorf("%s: no steps executed", r.Program)
		}
		if r.Races == 0 {
			t.Errorf("%s: detector attached but found no races on a racy program", r.Program)
		}
	}
	out := FormatRaceOverhead(rows)
	for _, want := range []string{"mp", "seqlock-gap", "slowdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}
}

// TestDetectorDoesNotPerturbExecution: the hook is observation-only —
// the same (program, model, scheduler, seed) must take identical steps
// and produce identical counters with and without the detector.
func TestDetectorDoesNotPerturbExecution(t *testing.T) {
	p := corpus.Get("seqlock-gap")
	m, err := p.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	runOnce := func(hook vm.Hook) *vm.Result {
		res, err := vm.Run(m, vm.Options{
			Model:      memmodel.ModelWMM,
			Entries:    p.PerfEntries,
			Controller: vm.NewScheduler(vm.SchedDelay, 7),
			Hook:       hook,
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	plain := runOnce(nil)
	det := race.New(memmodel.ModelWMM, race.Options{})
	hooked := runOnce(det)
	if plain.Steps != hooked.Steps {
		t.Errorf("detector changed step count: %d vs %d", plain.Steps, hooked.Steps)
	}
	if plain.Counters != hooked.Counters {
		t.Errorf("detector changed counters: %+v vs %+v", plain.Counters, hooked.Counters)
	}
	if plain.MaxCycles != hooked.MaxCycles {
		t.Errorf("detector changed makespan: %d vs %d", plain.MaxCycles, hooked.MaxCycles)
	}
}

func benchmarkVM(b *testing.B, hook func() vm.Hook) {
	p := corpus.Get("lf_hash")
	if p == nil || len(p.PerfEntries) == 0 {
		b.Skip("lf_hash perf harness unavailable")
	}
	m, err := p.Compile()
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	b.ReportAllocs()
	var steps int64
	for i := 0; i < b.N; i++ {
		opts := vm.Options{
			Model:      memmodel.ModelWMM,
			Entries:    p.PerfEntries,
			Controller: vm.NewScheduler(vm.SchedRandom, int64(i)+1),
			MaxSteps:   p.PerfSteps,
			Costs:      vm.DefaultCosts(),
		}
		if hook != nil {
			opts.Hook = hook()
		}
		res, err := vm.Run(m, opts)
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(steps), "ns/step")
}

// BenchmarkVMNoDetector is the baseline interpreter throughput: the
// hook seam disabled (nil), one predictable branch per event site.
func BenchmarkVMNoDetector(b *testing.B) {
	benchmarkVM(b, nil)
}

// BenchmarkVMDetector attaches a fresh detector per execution.
func BenchmarkVMDetector(b *testing.B) {
	benchmarkVM(b, func() vm.Hook {
		return race.New(memmodel.ModelWMM, race.Options{})
	})
}
