package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/minic"
)

// ScalingPoint is one measurement of the analysis-scalability curve.
type ScalingPoint struct {
	Scale     int // divisor applied to the MariaDB profile
	SLOC      int
	Instrs    int
	BuildTime time.Duration
	PortTime  time.Duration // the atomig passes alone, excluding the build
}

// ScalingSeries measures build and porting time for the MariaDB profile
// at decreasing scale divisors (increasing code size). Table 3's
// central scalability claim — porting time stays a small constant
// factor of build time — requires the analyses to scale near-linearly
// in code size; this series makes the curve visible.
func ScalingSeries(scales []int, seed int64) ([]ScalingPoint, error) {
	prof := appgen.ProfileByName("mariadb")
	var out []ScalingPoint
	for _, scale := range scales {
		p := prof.Scaled(scale)
		src := appgen.Generate(p, seed)
		buildStart := time.Now()
		res, err := minic.Compile(p.Name, src)
		if err != nil {
			return nil, err
		}
		buildTime := time.Since(buildStart)
		portStart := time.Now()
		if _, err := atomig.Port(res.Module, atomig.DefaultOptions()); err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{
			Scale:     scale,
			SLOC:      res.Stats.SourceLines,
			Instrs:    res.Stats.Instrs,
			BuildTime: buildTime,
			PortTime:  time.Since(portStart),
		})
	}
	return out, nil
}

// FormatScaling renders the series.
func FormatScaling(points []ScalingPoint) string {
	var b strings.Builder
	b.WriteString("Analysis scaling (MariaDB profile at increasing sizes)\n")
	fmt.Fprintf(&b, "%8s %10s %10s %12s %12s %10s\n",
		"scale", "SLOC", "instrs", "build", "port", "port/build")
	for _, p := range points {
		ratio := float64(p.PortTime) / float64(p.BuildTime)
		fmt.Fprintf(&b, "%8d %10d %10d %12s %12s %9.2fx\n",
			p.Scale, p.SLOC, p.Instrs,
			p.BuildTime.Round(time.Millisecond), p.PortTime.Round(time.Millisecond), ratio)
	}
	return b.String()
}
