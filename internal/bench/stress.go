package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/alias"
	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/stress"
	"repro/internal/weaken"
)

// The stress experiment (EXPERIMENTS.md, docs/STRESS.md) measures the
// three claims the schedule-fuzzing mode makes:
//
//  1. Throughput: a ported 100k+-line generated module sweeps at
//     thousands of seeded schedules per second, the planted race is
//     found, and the finding auto-minimizes into a litmus-sized program
//     the model checker confirms exhaustively.
//  2. Sampling: the detector's location-sampling fraction trades
//     detection rate for overhead along a measurable curve — false
//     negatives only, never false positives.
//  3. Oracle: weakening with the stress screening oracle produces the
//     same final module as the exhaustive oracle at a fraction of the
//     checker work, and the pure-stress oracle weakens programs whose
//     exhaustive baseline is out of budget.

// StressThroughputRow is one worker count's sweep over the large
// planted-defect module.
type StressThroughputRow struct {
	Workers      int     `json:"workers"`
	Schedules    int     `json:"schedules"`
	Steps        int64   `json:"steps"`
	RatePerSec   float64 `json:"rate_per_sec"`
	StepLimited  int     `json:"step_limited"`
	FoundPlanted bool    `json:"found_planted"`
	ElapsedMS    float64 `json:"elapsed_ms"`
}

// StressMinimizeSummary is the finding's minimize-and-confirm run: the
// large module shrunk around the planted race, then checked
// exhaustively.
type StressMinimizeSummary struct {
	OrigFuncs      int     `json:"orig_funcs"`
	Funcs          int     `json:"funcs"`
	OrigInstrs     int     `json:"orig_instrs"`
	Instrs         int     `json:"instrs"`
	Reductions     int     `json:"reductions"`
	OracleChecks   int     `json:"oracle_checks"`
	Schedule       string  `json:"schedule"`
	ConfirmVerdict string  `json:"confirm_verdict"`
	ConfirmExecs   int     `json:"confirm_execs"`
	ElapsedMS      float64 `json:"elapsed_ms"`
}

// StressSampleRow is the detection rate at one sampling fraction:
// the share of independent single-seed sweeps (one schedule per
// scheduler mode, distinct BaseSeed each) that report the planted
// race, and the share of accesses the detector actually observed.
type StressSampleRow struct {
	Sample       float64 `json:"sample"`
	Sweeps       int     `json:"sweeps"`
	Detected     int     `json:"detected"`
	DetectRate   float64 `json:"detect_rate"`
	ForwardedPct float64 `json:"forwarded_pct"`
	ElapsedMS    float64 `json:"elapsed_ms"`
}

// StressOracleRow is one (program, oracle) weakening run. Identical
// reports whether the final module is byte-identical to the same
// program's exhaustive-oracle result (meaningless, and false, for rows
// whose exhaustive run refused).
type StressOracleRow struct {
	Program         string  `json:"program"`
	Oracle          string  `json:"oracle"`
	Verdict         string  `json:"verdict"`
	Refused         string  `json:"refused,omitempty"`
	CostBefore      int64   `json:"cost_before"`
	CostAfter       int64   `json:"cost_after"`
	ReductionPct    float64 `json:"reduction_pct"`
	MCChecks        int     `json:"mc_checks"`
	StressChecks    int     `json:"stress_checks,omitempty"`
	StressSchedules int     `json:"stress_schedules,omitempty"`
	Identical       bool    `json:"identical"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// StressBench bundles the full experiment for the JSON envelope.
type StressBench struct {
	SLOC        int                    `json:"sloc"`
	Funcs       int                    `json:"funcs"`
	Throughput  []StressThroughputRow  `json:"throughput"`
	Minimize    *StressMinimizeSummary `json:"minimize,omitempty"`
	MinimizeErr string                 `json:"minimize_err,omitempty"`
	Sampling    []StressSampleRow      `json:"sampling"`
	Oracle      []StressOracleRow      `json:"oracle"`
}

// DefaultStressSLOC sizes the throughput module (the paper-scale
// "100k+ lines" claim).
const DefaultStressSLOC = 100_000

// stressGapLoc is the planted race's location (appgen.ModuleSpec
// PlantRace).
var stressGapLoc = alias.Loc{Kind: alias.LocGlobal, Name: "lg_gap_data"}

// stressModule generates, compiles and ports the planted-defect module.
func stressModule(sloc int, seed int64) (*ir.Module, []string, int, error) {
	spec := appgen.LargeSpec("stress-large", sloc, seed)
	spec.PlantRace = true
	spec.HarnessThreads = 3
	src, _ := appgen.GenerateLarge(spec)
	res, err := minic.Compile(spec.Name+".c", src)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("bench: compile stress module: %w", err)
	}
	if _, err := atomig.Port(res.Module, atomig.DefaultOptions()); err != nil {
		return nil, nil, 0, fmt.Errorf("bench: port stress module: %w", err)
	}
	lines := strings.Count(src, "\n")
	return res.Module, spec.HarnessEntries(), lines, nil
}

// foundPlanted reports whether the sweep detected the planted race.
func foundPlanted(res *stress.Result) bool {
	for _, r := range res.Races() {
		if r.Loc == stressGapLoc {
			return true
		}
	}
	return false
}

// StressThroughput sweeps the large module at each worker count
// (seeds schedules per scheduler mode each), then minimizes the
// planted-race finding and confirms it exhaustively. workerCounts nil
// selects {1, 2, 4, 8} capped to the pinned procs; seeds 0 selects 64;
// sloc 0 selects DefaultStressSLOC.
func StressThroughput(sloc int, seed int64, workerCounts []int, seeds int, prov *obs.Provider) (*StressBench, error) {
	if sloc <= 0 {
		sloc = DefaultStressSLOC
	}
	if seeds <= 0 {
		seeds = 64
	}
	if workerCounts == nil {
		procs := SweepProcs(nil)
		for _, w := range []int{1, 2, 4, 8} {
			if w <= procs {
				workerCounts = append(workerCounts, w)
			}
		}
		if len(workerCounts) == 0 {
			workerCounts = []int{1}
		}
	}
	m, entries, lines, err := stressModule(sloc, seed)
	if err != nil {
		return nil, err
	}
	out := &StressBench{SLOC: lines, Funcs: len(m.Funcs)}

	var gapFinding *stress.Finding
	for _, w := range workerCounts {
		start := time.Now()
		res, err := stress.Sweep(m, stress.Options{
			Entries: entries, Seeds: seeds, Workers: w, Obs: prov,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: stress sweep (j=%d): %w", w, err)
		}
		el := time.Since(start)
		out.Throughput = append(out.Throughput, StressThroughputRow{
			Workers:      w,
			Schedules:    res.Schedules,
			Steps:        res.Steps,
			RatePerSec:   float64(res.Schedules) / el.Seconds(),
			StepLimited:  res.StepLimited,
			FoundPlanted: foundPlanted(res),
			ElapsedMS:    float64(el) / float64(time.Millisecond),
		})
		if gapFinding == nil {
			for i := range res.Findings {
				f := res.Findings[i]
				if f.Kind == stress.FindingRace && f.Report.Loc == stressGapLoc {
					gapFinding = &f
					break
				}
			}
		}
	}
	if gapFinding == nil {
		out.MinimizeErr = "planted race not found; nothing to minimize"
		return out, nil
	}

	start := time.Now()
	mres, err := stress.Minimize(m, stress.MinimizeOptions{
		Entries: entries, Target: gapFinding.Report,
		Workers: SweepProcs(nil), Obs: prov,
	})
	if err != nil {
		out.MinimizeErr = err.Error()
		return out, nil
	}
	out.Minimize = &StressMinimizeSummary{
		OrigFuncs: mres.OrigFuncs, Funcs: mres.Funcs,
		OrigInstrs: mres.OrigInstrs, Instrs: mres.Instrs,
		Reductions: mres.Reductions, OracleChecks: mres.Checks,
		Schedule:       mres.Schedule.String(),
		ConfirmVerdict: mres.Confirm.Verdict.String(),
		ConfirmExecs:   mres.Confirm.Executions,
		ElapsedMS:      float64(time.Since(start)) / float64(time.Millisecond),
	}
	return out, nil
}

// DefaultStressSamples is the sampling-fraction grid.
func DefaultStressSamples() []float64 { return []float64{1, 0.5, 0.25, 0.1} }

// StressSampling measures detection rate vs sampling fraction: for
// each fraction it runs sweeps independent single-seed sweeps (one
// schedule per scheduler mode, BaseSeed 1..sweeps) over a mid-sized
// planted-defect module and counts the sweeps that report the planted
// race. Single-seed sweeps keep the per-sweep detection probability
// well below 1, so the curve is visible; a production sweep's
// aggregate coverage is far higher because each schedule draws a fresh
// location subset (sampler.go). samples nil selects the default grid;
// sweeps 0 selects 24.
func StressSampling(samples []float64, sweeps int, seed int64, prov *obs.Provider) ([]StressSampleRow, error) {
	if samples == nil {
		samples = DefaultStressSamples()
	}
	if sweeps <= 0 {
		sweeps = 24
	}
	m, entries, _, err := stressModule(4000, seed)
	if err != nil {
		return nil, err
	}
	workers := SweepProcs(nil)
	var rows []StressSampleRow
	for _, f := range samples {
		start := time.Now()
		detected := 0
		var fwd, skip int64
		for s := 1; s <= sweeps; s++ {
			res, err := stress.Sweep(m, stress.Options{
				Entries: entries, Seeds: 1, BaseSeed: int64(s),
				Sample: f, Workers: workers, Obs: prov,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: sampling sweep (f=%g, base=%d): %w", f, s, err)
			}
			if foundPlanted(res) {
				detected++
			}
			fwd += res.Forwarded
			skip += res.Skipped
		}
		row := StressSampleRow{
			Sample: f, Sweeps: sweeps, Detected: detected,
			DetectRate: float64(detected) / float64(sweeps),
			ElapsedMS:  float64(time.Since(start)) / float64(time.Millisecond),
		}
		if fwd+skip > 0 {
			row.ForwardedPct = 100 * float64(fwd) / float64(fwd+skip)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// stressOracleTargets is the oracle-comparison corpus: the weaken
// sweep's tractable corpus programs (cna-lock is covered by the
// equivalence test but costs ~25s per oracle, so the bench skips it)
// plus ck_spinlock_cas, whose exhaustive baseline refuses on budget —
// the program the pure-stress oracle exists for.
func stressOracleTargets() []WeakenTarget {
	return []WeakenTarget{
		corpusTarget("mp", true),
		corpusTarget("seqlock", false),
		corpusTarget("seqlock-gap", true),
		corpusTarget("ck_spinlock_ticket", false),
		corpusTarget("ck_sequence", false),
	}
}

// StressOracle runs the weakening optimizer under the exhaustive and
// stress-screened oracles on each tractable target, comparing final
// modules byte for byte, then demonstrates the pure-stress oracle on
// ck_spinlock_cas (exhaustive baseline: refused on budget). workers 0
// selects 4.
func StressOracle(workers int, prov *obs.Provider) ([]StressOracleRow, error) {
	if workers <= 0 {
		workers = 4
	}
	var rows []StressOracleRow
	run := func(tgt WeakenTarget, oracle weaken.OracleMode, budget time.Duration) (*ir.Module, *weaken.Result, float64, error) {
		orig, entries, err := tgt.compile()
		if err != nil {
			return nil, nil, 0, fmt.Errorf("bench: %s: %w", tgt.Name, err)
		}
		ported, _, err := atomig.PortClone(orig, atomig.DefaultOptions())
		if err != nil {
			return nil, nil, 0, fmt.Errorf("bench: port %s: %w", tgt.Name, err)
		}
		opts := weaken.DefaultOptions(entries)
		opts.DetectRaces = tgt.DetectRaces
		opts.Workers = workers
		opts.Oracle = oracle
		opts.Obs = prov
		if budget != 0 {
			opts.TimeBudget = budget
		}
		start := time.Now()
		final, res, err := weaken.OptimizeClone(ported, opts)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("bench: weaken %s (%s): %w", tgt.Name, oracle, err)
		}
		return final, res, float64(time.Since(start)) / float64(time.Millisecond), nil
	}
	row := func(tgt WeakenTarget, res *weaken.Result, identical bool, ms float64) StressOracleRow {
		oracle := res.Oracle
		if oracle == "" {
			oracle = "exhaustive"
		}
		return StressOracleRow{
			Program: tgt.Name, Oracle: oracle,
			Verdict: res.Verdict, Refused: res.Reason,
			CostBefore: res.CostBefore, CostAfter: res.CostAfter,
			ReductionPct: res.Reduction(),
			MCChecks:     res.MCChecks,
			StressChecks: res.StressChecks, StressSchedules: res.StressSchedules,
			Identical: identical, ElapsedMS: ms,
		}
	}
	for _, tgt := range stressOracleTargets() {
		exMod, exRes, exMS, err := run(tgt, weaken.OracleExhaustive, 0)
		if err != nil {
			return nil, err
		}
		scMod, scRes, scMS, err := run(tgt, weaken.OracleScreened, 0)
		if err != nil {
			return nil, err
		}
		identical := exMod.String() == scMod.String()
		rows = append(rows, row(tgt, exRes, true, exMS))
		rows = append(rows, row(tgt, scRes, identical, scMS))
	}
	// ck_spinlock_cas: record the exhaustive refusal at a reduced budget
	// (the default 30s budget refuses identically — BENCH_weaken.json),
	// then weaken it end to end with the pure-stress oracle.
	cas := corpusTarget("ck_spinlock_cas", false)
	_, exRes, exMS, err := run(cas, weaken.OracleExhaustive, 5*time.Second)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row(cas, exRes, false, exMS))
	_, stRes, stMS, err := run(cas, weaken.OracleStress, 0)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row(cas, stRes, false, stMS))
	return rows, nil
}

// StressExperiment runs all three sections with the default knobs.
func StressExperiment(sloc int, seed int64, prov *obs.Provider) (*StressBench, error) {
	b, err := StressThroughput(sloc, seed, nil, 0, prov)
	if err != nil {
		return nil, err
	}
	if b.Sampling, err = StressSampling(nil, 0, seed, prov); err != nil {
		return nil, err
	}
	if b.Oracle, err = StressOracle(0, prov); err != nil {
		return nil, err
	}
	return b, nil
}

// FormatStress renders the experiment.
func FormatStress(b *StressBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Schedule-fuzzing stress mode (module: %d lines, %d funcs)\n", b.SLOC, b.Funcs)
	sb.WriteString("Throughput (seeded schedules over the ported planted-defect module)\n")
	fmt.Fprintf(&sb, "%8s %10s %12s %10s %8s %8s %10s\n",
		"workers", "schedules", "steps", "rate/s", "limited", "planted", "elapsed")
	for _, r := range b.Throughput {
		fmt.Fprintf(&sb, "%8d %10d %12d %10.0f %8d %8t %9.0fms\n",
			r.Workers, r.Schedules, r.Steps, r.RatePerSec, r.StepLimited, r.FoundPlanted, r.ElapsedMS)
	}
	if b.Minimize != nil {
		m := b.Minimize
		fmt.Fprintf(&sb, "minimized: %d/%d funcs, %d/%d instrs (%d reductions, %d oracle checks) under %s\n",
			m.Funcs, m.OrigFuncs, m.Instrs, m.OrigInstrs, m.Reductions, m.OracleChecks, m.Schedule)
		fmt.Fprintf(&sb, "confirmed: verdict=%s executions=%d (%.0fms total)\n",
			m.ConfirmVerdict, m.ConfirmExecs, m.ElapsedMS)
	} else if b.MinimizeErr != "" {
		fmt.Fprintf(&sb, "minimize: %s\n", b.MinimizeErr)
	}
	if len(b.Sampling) > 0 {
		sb.WriteString("\nDetection rate vs sampling fraction (single-seed sweeps, planted race)\n")
		fmt.Fprintf(&sb, "%8s %8s %10s %8s %10s %10s\n",
			"sample", "sweeps", "detected", "rate", "observed", "elapsed")
		for _, r := range b.Sampling {
			fmt.Fprintf(&sb, "%8.2f %8d %10d %7.0f%% %9.1f%% %9.0fms\n",
				r.Sample, r.Sweeps, r.Detected, 100*r.DetectRate, r.ForwardedPct, r.ElapsedMS)
		}
	}
	if len(b.Oracle) > 0 {
		sb.WriteString("\nWeakening oracle: stress screening vs exhaustive (docs/STRESS.md)\n")
		fmt.Fprintf(&sb, "%-20s %-10s %-13s %9s %9s %8s %6s %8s %5s %10s\n",
			"program", "oracle", "verdict", "before", "after", "reduct", "mc", "stress", "ident", "elapsed")
		for _, r := range b.Oracle {
			if r.Refused != "" {
				fmt.Fprintf(&sb, "%-20s %-10s refused: %s\n", r.Program, r.Oracle, r.Refused)
				continue
			}
			fmt.Fprintf(&sb, "%-20s %-10s %-13s %9d %9d %7.1f%% %6d %8d %5t %9.0fms\n",
				r.Program, r.Oracle, r.Verdict, r.CostBefore, r.CostAfter,
				r.ReductionPct, r.MCChecks, r.StressChecks, r.Identical, r.ElapsedMS)
		}
	}
	return sb.String()
}

// GenerateStressSource emits the stress-smoke module's MiniC source:
// the LargeSpec site mix plus the three-thread stress harness
// (entries lg_stress_t0..t2), optionally with the planted seqlock-gap
// defect. The out-of-process seam for `make stress-smoke`.
func GenerateStressSource(sloc int, seed int64, plantRace bool) string {
	spec := appgen.LargeSpec("stress-smoke", sloc, seed)
	spec.PlantRace = plantRace
	spec.HarnessThreads = 3
	src, _ := appgen.GenerateLarge(spec)
	return src
}
