package bench

import "testing"

// TestStressThroughputSmall runs the throughput + minimize experiment
// at a test-budget scale (10k lines, few seeds) and pins the
// acceptance shape: the planted race is found, the rate clears the
// 1000 schedules/sec bar, and the minimized program is litmus-sized
// with an exhaustive race confirmation (the paper-scale run is
// `make bench-stress`).
func TestStressThroughputSmall(t *testing.T) {
	b, err := StressThroughput(10_000, 7, []int{2}, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.SLOC < 10_000 {
		t.Errorf("module is %d lines, want >= 10000", b.SLOC)
	}
	for _, r := range b.Throughput {
		t.Logf("j=%d: %d schedules, %.0f/s, planted=%t", r.Workers, r.Schedules, r.RatePerSec, r.FoundPlanted)
		if !r.FoundPlanted {
			t.Errorf("j=%d: planted race not found", r.Workers)
		}
		if r.RatePerSec < 1000 {
			t.Errorf("j=%d: %.0f schedules/sec below the 1000/s bar", r.Workers, r.RatePerSec)
		}
	}
	if b.Minimize == nil {
		t.Fatalf("minimize failed: %s", b.MinimizeErr)
	}
	m := b.Minimize
	t.Logf("minimized %d/%d funcs, %d/%d instrs; confirm=%s",
		m.Funcs, m.OrigFuncs, m.Instrs, m.OrigInstrs, m.ConfirmVerdict)
	if m.Funcs >= m.OrigFuncs/10 {
		t.Errorf("minimized to %d funcs from %d — not litmus-sized", m.Funcs, m.OrigFuncs)
	}
	if m.ConfirmVerdict != "racy" {
		t.Errorf("confirmation verdict %q, want racy", m.ConfirmVerdict)
	}
}

// TestStressSamplingMonotone checks the sampling experiment's
// direction: full observation detects the planted race in every
// single-seed sweep, and a 10% fraction detects in strictly fewer
// sweeps than 100% while observing strictly fewer accesses. (The
// observed share stays high even at 10% sampling because the harness's
// traffic is dominated by synchronization-relevant accesses, which the
// sampler always forwards — sampler.go's soundness boundary.)
func TestStressSamplingMonotone(t *testing.T) {
	rows, err := StressSampling([]float64{1, 0.1}, 12, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	full, tenth := rows[0], rows[1]
	t.Logf("sample=1: %d/%d detected; sample=0.1: %d/%d detected (%.1f%% observed)",
		full.Detected, full.Sweeps, tenth.Detected, tenth.Sweeps, tenth.ForwardedPct)
	if full.Detected != full.Sweeps {
		t.Errorf("full observation detected %d/%d sweeps, want all", full.Detected, full.Sweeps)
	}
	if tenth.Detected >= full.Detected {
		t.Errorf("sample=0.1 detected %d sweeps, want fewer than %d", tenth.Detected, full.Detected)
	}
	if full.ForwardedPct != 100 {
		t.Errorf("sample=1 observed %.1f%% of accesses, want 100%%", full.ForwardedPct)
	}
	if tenth.ForwardedPct >= full.ForwardedPct {
		t.Errorf("sample=0.1 observed %.1f%% of accesses, want under 100%%", tenth.ForwardedPct)
	}
}
