package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/weaken"
)

// WeakenRow is one program's checker-in-the-loop weakening measurement:
// how much static synchronization cost the optimizer removed from the
// plain port, and how much checker work it took. A refused run (the
// baseline verdict was a violation, or the budget could not establish
// one) records the reason instead of a reduction — refusals are data,
// not errors.
type WeakenRow struct {
	Program       string  `json:"program"`
	Kind          string  `json:"kind"` // "corpus" or "appgen"
	Arch          string  `json:"arch"`
	DetectRaces   bool    `json:"detect_races"`
	Verdict       string  `json:"verdict"`
	Refused       string  `json:"refused,omitempty"`
	CostBefore    int64   `json:"cost_before"`
	CostAfter     int64   `json:"cost_after"`
	ReductionPct  float64 `json:"reduction_pct"`
	Tried         int     `json:"tried"`
	Accepted      int     `json:"accepted"`
	Rejected      int     `json:"rejected"`
	Rounds        int     `json:"rounds"`
	FencesDeleted int     `json:"fences_deleted"`
	MCChecks      int     `json:"mc_checks"`
	ElapsedMS     float64 `json:"elapsed_ms"`
}

// WeakenTarget names one program of the sweep and its checker
// configuration. DetectRaces follows the conformance suite's
// per-program setting: off exactly where the fingerprinted state space
// is intractable (benign retry races — docs/WEAKENING.md).
type WeakenTarget struct {
	Name        string
	Kind        string
	DetectRaces bool
	compile     func() (*ir.Module, []string, error)
}

func corpusTarget(name string, detectRaces bool) WeakenTarget {
	return WeakenTarget{Name: name, Kind: "corpus", DetectRaces: detectRaces,
		compile: func() (*ir.Module, []string, error) {
			p := corpus.Get(name)
			if p == nil {
				return nil, nil, fmt.Errorf("program %q not in corpus", name)
			}
			m, err := p.Compile()
			return m, p.MCEntries, err
		}}
}

func appgenTarget(seed int64) WeakenTarget {
	name := fmt.Sprintf("appgen-%d", seed)
	return WeakenTarget{Name: name, Kind: "appgen", DetectRaces: false,
		compile: func() (*ir.Module, []string, error) {
			src, entries := appgen.RunnableProgram(seed)
			res, err := minic.Compile(name+".c", src)
			if err != nil {
				return nil, nil, err
			}
			return res.Module, entries, nil
		}}
}

// DefaultWeakenTargets is the CK-style corpus (the flagships plus the
// ck locks) and two generated appgen modules.
func DefaultWeakenTargets() []WeakenTarget {
	return []WeakenTarget{
		corpusTarget("mp", true),
		corpusTarget("seqlock", false),
		corpusTarget("seqlock-gap", true),
		corpusTarget("cna-lock", true),
		corpusTarget("ck_spinlock_cas", false),
		corpusTarget("ck_spinlock_ticket", false),
		corpusTarget("ck_spinlock_mcs", false),
		corpusTarget("ck_sequence", false),
		// Two-thread generated programs whose exhaustive baseline is
		// tractable; wider seeds (3+ threads) exhaust the candidate
		// budget and record refusals instead of reductions.
		appgenTarget(6),
		appgenTarget(11),
	}
}

// WeakenSweep ports each target and runs the weakening optimizer on
// the ported module, measuring cost reduction and accepted-weakening
// counts. workers sets the screening fan-out (0 = 4; the weakened
// module is identical at every value), arch the cost model ("" =
// weaken.DefaultArch).
func WeakenSweep(targets []WeakenTarget, workers int, arch string, prov *obs.Provider) ([]WeakenRow, error) {
	if len(targets) == 0 {
		targets = DefaultWeakenTargets()
	}
	if workers <= 0 {
		workers = 4
	}
	var rows []WeakenRow
	for _, tgt := range targets {
		orig, entries, err := tgt.compile()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", tgt.Name, err)
		}
		ported, _, err := atomig.PortClone(orig, atomig.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("bench: port %s: %w", tgt.Name, err)
		}
		opts := weaken.DefaultOptions(entries)
		opts.DetectRaces = tgt.DetectRaces
		opts.Workers = workers
		opts.Arch = arch
		start := time.Now()
		res, err := weaken.Optimize(ported, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: weaken %s: %w", tgt.Name, err)
		}
		rows = append(rows, WeakenRow{
			Program:       tgt.Name,
			Kind:          tgt.Kind,
			Arch:          res.Arch,
			DetectRaces:   tgt.DetectRaces,
			Verdict:       res.Verdict,
			Refused:       res.Reason,
			CostBefore:    res.CostBefore,
			CostAfter:     res.CostAfter,
			ReductionPct:  res.Reduction(),
			Tried:         res.Tried,
			Accepted:      res.Accepted,
			Rejected:      res.Rejected,
			Rounds:        res.Rounds,
			FencesDeleted: res.FencesDeleted,
			MCChecks:      res.MCChecks,
			ElapsedMS:     float64(time.Since(start)) / float64(time.Millisecond),
		})
	}
	return rows, nil
}

// FormatWeaken renders the sweep.
func FormatWeaken(rows []WeakenRow) string {
	var b strings.Builder
	b.WriteString("Checker-in-the-loop barrier weakening (cost vs plain port, per-arch static cycles)\n")
	fmt.Fprintf(&b, "%-20s %-7s %-6s %5s %9s %9s %8s %6s %6s %7s %6s %10s\n",
		"program", "kind", "arch", "races", "before", "after", "reduct", "tried", "accept", "rounds", "mc", "elapsed")
	for _, r := range rows {
		if r.Refused != "" {
			fmt.Fprintf(&b, "%-20s %-7s %-6s %5t %9d %9s refused: %s\n",
				r.Program, r.Kind, r.Arch, r.DetectRaces, r.CostBefore, "-", r.Refused)
			continue
		}
		fmt.Fprintf(&b, "%-20s %-7s %-6s %5t %9d %9d %7.1f%% %6d %6d %7d %6d %9.0fms\n",
			r.Program, r.Kind, r.Arch, r.DetectRaces, r.CostBefore, r.CostAfter,
			r.ReductionPct, r.Tried, r.Accepted, r.Rounds, r.MCChecks, r.ElapsedMS)
	}
	return b.String()
}
