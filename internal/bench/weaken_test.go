package bench

import "testing"

// TestWeakenSweepFlagships runs the weaken experiment over a
// test-budget-sized target list — the two flagships plus one appgen
// module — and pins the acceptance criterion: >= 25% static cost
// reduction vs the plain port on both flagships, every accepted
// weakening re-verified (the full sweep is `make bench-weaken`).
func TestWeakenSweepFlagships(t *testing.T) {
	targets := []WeakenTarget{
		corpusTarget("seqlock", false),
		corpusTarget("seqlock-gap", true),
		appgenTarget(11),
	}
	rows, err := WeakenSweep(targets, 2, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(targets) {
		t.Fatalf("%d rows, want %d", len(rows), len(targets))
	}
	for _, r := range rows {
		t.Logf("%s: verdict=%s refused=%q cost %d -> %d (%.1f%%) accepted=%d",
			r.Program, r.Verdict, r.Refused, r.CostBefore, r.CostAfter, r.ReductionPct, r.Accepted)
		if r.Refused != "" {
			t.Errorf("%s: refused: %s", r.Program, r.Refused)
			continue
		}
		if r.CostAfter > r.CostBefore {
			t.Errorf("%s: cost increased %d -> %d", r.Program, r.CostBefore, r.CostAfter)
		}
		switch r.Program {
		case "seqlock", "seqlock-gap":
			if r.ReductionPct < 25 {
				t.Errorf("%s: reduction %.1f%% below the 25%% flagship bar", r.Program, r.ReductionPct)
			}
		}
	}
}
