package corpus

// Application kernels standing in for the paper's large code bases
// (Tables 4 and 5). Each kernel condenses the concurrency structure of
// its application — which locks protect what, how much work is local
// versus shared — because the naïve-vs-atomig performance gap is
// entirely determined by that mix. Workload compositions were tuned so
// the naïve slowdown matches the paper's profile per application
// (Memcached barely shared ≈1.0, SQLite shared-heavy ≈2.5).

// AppMemcached: slab of items with per-item spinlocks and a volatile
// version counter; request processing is dominated by local parsing and
// hashing, which is why even the naïve port barely shows (Table 5's
// 1.01 row). Table 4's dynamic barrier census runs this workload.
var AppMemcached = register(&Program{
	Name: "memcached",
	Desc: "memcached kernel: slab items, per-item locks, local parsing",
	Source: `
struct item { int lock; int key; int val; volatile int version; };
struct item slab[64];
int hits0;
int hits1;

int hash_request(int seed) {
  // Local request parsing and hashing: the bulk of memcached's CPU time.
  int buf[16];
  int x = seed;
  for (int i = 0; i < 16; i = i + 1) {
    x = (x * 1103515245 + 12345) % 65536;
    if (x < 0) { x = -x; }
    buf[i] = x;
  }
  int h = 0;
  for (int i = 0; i < 16; i = i + 1) {
    h = (h * 31 + buf[i]) % 65536;
  }
  return h;
}

void item_lock(struct item *it) {
  while (__cas(&it->lock, 0, 1) != 0) { }
}

void item_unlock(struct item *it) {
  it->lock = 0;
}

int do_get(int h) {
  struct item *it = &slab[h % 64];
  int ver = it->version;
  item_lock(it);
  int v = it->val;
  item_unlock(it);
  if (ver != it->version) { return v; }
  return v;
}

void do_set(int h, int v) {
  struct item *it = &slab[h % 64];
  item_lock(it);
  it->version = it->version + 1;
  it->val = v;
  it->key = h;
  it->version = it->version + 1;
  item_unlock(it);
}

int serve(int id, int requests) {
  int hits = 0;
  for (int r = 0; r < requests; r = r + 1) {
    int h = hash_request(id * 7919 + r);
    switch (r % 10) {
    case 0:
      do_set(h, h + 1);
      break;
    case 5:
      do_set(h, h + 2);
      break;
    default:
      if (do_get(h) != 0) { hits = hits + 1; }
    }
  }
  return hits;
}

void worker0(void) { hits0 = serve(1, 2500); }
void worker1(void) { hits1 = serve(2, 2500); }

void perf_main(void) {
  spawn(worker0);
  spawn(worker1);
  join();
  assert(hits0 >= 0 && hits1 >= 0);
}
`,
	PerfEntries: []string{"perf_main"},
	PerfSteps:   80_000_000,
})

// AppSQLite: a single-writer embedded database — transactions walk
// global B-tree pages directly under one WAL lock, with little local
// compute to hide behind, which is why the naïve port is so expensive
// (Table 5's 2.49 row).
var AppSQLite = register(&Program{
	Name: "sqlite",
	Desc: "sqlite kernel: global page walks under a single WAL lock",
	Source: `
int pages[512];
int wal_lock;
int wal_frames;
int out0;
int out1;

void wal_acquire(void) {
  while (__cas(&wal_lock, 0, 1) != 0) { }
}

void wal_release(void) {
  wal_lock = 0;
}

int read_txn(int key) {
  // Walk the page tree: three levels of global page reads.
  int p = key % 16;
  int acc = 0;
  for (int level = 0; level < 3; level = level + 1) {
    int base = p * 16;
    for (int c = 0; c < 8; c = c + 1) {
      acc = acc + pages[(base + c) % 512];
    }
    p = (pages[base % 512] + key) % 16;
  }
  return acc;
}

void write_txn(int key, int v) {
  wal_acquire();
  int p = (key % 16) * 16;
  for (int c = 0; c < 8; c = c + 1) {
    pages[(p + c) % 512] = v + c;
  }
  wal_frames = wal_frames + 1;
  wal_release();
}

int run_txns(int id, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    int key = (id * 37 + i) % 256;
    if (i % 3 == 0) {
      write_txn(key, i);
    } else {
      acc = acc + read_txn(key);
    }
  }
  return acc;
}

void worker0(void) { out0 = run_txns(1, 1500); }
void worker1(void) { out1 = run_txns(2, 1500); }

void perf_main(void) {
  spawn(worker0);
  spawn(worker1);
  join();
  assert(wal_frames == 1000);
}
`,
	PerfEntries: []string{"perf_main"},
	PerfSteps:   80_000_000,
})

// AppLevelDB: a memtable (sorted global array, binary-searched) plus a
// write-ahead log; moderate local key handling (Table 5's 1.66 row).
var AppLevelDB = register(&Program{
	Name: "leveldb",
	Desc: "leveldb kernel: memtable binary search plus WAL appends",
	Source: `
int memtable_keys[256];
int memtable_vals[256];
int wal[1024];
int wal_head;
int mem_lock;
int out0;
int out1;

void init_memtable(void) {
  for (int i = 0; i < 256; i = i + 1) {
    memtable_keys[i] = i * 3;
    memtable_vals[i] = i;
  }
}

int mem_get(int key) {
  int lo = 0;
  int hi = 256;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    int k = memtable_keys[mid];
    if (k == key) { return memtable_vals[mid]; }
    if (k < key) { lo = mid + 1; } else { hi = mid; }
  }
  return -1;
}

void mem_put(int key, int val) {
  while (__cas(&mem_lock, 0, 1) != 0) { }
  int slot = (key / 3) % 256;
  memtable_keys[slot] = key;
  memtable_vals[slot] = val;
  int w = wal_head % 1024;
  wal[w] = key;
  wal[(w + 1) % 1024] = val;
  wal_head = wal_head + 2;
  mem_lock = 0;
}

int make_key(int id, int i) {
  // Local key encoding and checksum.
  int k = id * 131 + i;
  int c = 0;
  for (int j = 0; j < 6; j = j + 1) {
    c = (c * 33 + k + j) % 4096;
  }
  return (k + c % 2) % 768;
}

int run_ops(int id, int n) {
  int found = 0;
  for (int i = 0; i < n; i = i + 1) {
    int key = make_key(id, i);
    if (i % 4 == 0) {
      mem_put(key, i);
    } else {
      if (mem_get(key) != -1) { found = found + 1; }
    }
  }
  return found;
}

void worker0(void) { out0 = run_ops(1, 1800); }
void worker1(void) { out1 = run_ops(2, 1800); }

void perf_main(void) {
  init_memtable();
  spawn(worker0);
  spawn(worker1);
  join();
  assert(out0 >= 0 && out1 >= 0);
}
`,
	PerfEntries: []string{"perf_main"},
	PerfSteps:   80_000_000,
})

// AppPostgreSQL: a buffer pool with volatile per-buffer spinlocks (as
// PostgreSQL's s_lock historically declares them) and moderate local
// tuple work (Table 5's 1.35 row).
var AppPostgreSQL = register(&Program{
	Name: "postgresql",
	Desc: "postgresql kernel: buffer pool with volatile spinlocks",
	Source: `
struct bufhdr { volatile int lock; int tag; int usage; int dirty; };
struct bufhdr pool[32];
int bufdata[512];
int out0;
int out1;

void buf_lock(struct bufhdr *b) {
  while (__cas(&b->lock, 0, 1) != 0) { }
}

void buf_unlock(struct bufhdr *b) {
  b->lock = 0;
}

int scan_tuple(int seed) {
  // Local tuple deforming and predicate evaluation.
  int t = seed;
  int acc = 0;
  for (int i = 0; i < 12; i = i + 1) {
    t = (t * 69069 + 1) % 32768;
    if (t < 0) { t = -t; }
    if (t % 3 != 0) { acc = acc + t % 64; }
  }
  return acc;
}

int read_buffer(int tag) {
  struct bufhdr *b = &pool[tag % 32];
  buf_lock(b);
  b->usage = b->usage + 1;
  int base = (tag % 32) * 16;
  int acc = 0;
  for (int i = 0; i < 6; i = i + 1) {
    acc = acc + bufdata[base + i];
  }
  buf_unlock(b);
  return acc;
}

void write_buffer(int tag, int v) {
  struct bufhdr *b = &pool[tag % 32];
  buf_lock(b);
  b->dirty = 1;
  int base = (tag % 32) * 16;
  for (int i = 0; i < 4; i = i + 1) {
    bufdata[base + i] = v + i;
  }
  buf_unlock(b);
}

int run_queries(int id, int n) {
  int acc = 0;
  for (int q = 0; q < n; q = q + 1) {
    int tag = (id * 53 + q) % 24;
    acc = acc + scan_tuple(id + q);
    if (q % 4 == 0) {
      write_buffer(tag, q);
    } else {
      acc = acc + read_buffer(tag);
    }
  }
  return acc;
}

void worker0(void) { out0 = run_queries(1, 1500); }
void worker1(void) { out1 = run_queries(2, 1500); }

void perf_main(void) {
  spawn(worker0);
  spawn(worker1);
  join();
  assert(out0 + out1 > 0);
}
`,
	PerfEntries: []string{"perf_main"},
	PerfSteps:   80_000_000,
})

// AppMariaDB: a lock-protected row store plus the lock-free dictionary
// (lf-hash) on a colder metadata path, with substantial local row
// processing (Table 5's 1.27 row).
var AppMariaDB = register(&Program{
	Name: "mariadb",
	Desc: "mariadb kernel: row store under lock, lf-hash metadata lookups",
	Source: `
struct dict { int key; int val; int state; };
struct dict dictionary[32];
int rows[512];
int row_lock;
int out0;
int out1;

void init_dict(void) {
  for (int i = 0; i < 32; i = i + 1) {
    dictionary[i].key = i;
    dictionary[i].val = i * 10;
    dictionary[i].state = 1;
  }
}

int dict_lookup(int k) {
  // Lock-free validated read (the lf-hash pattern of Figure 7).
  struct dict *d = &dictionary[k % 32];
  int state;
  int val;
  do {
    state = d->state;
    val = d->val;
  } while (state != d->state);
  if (state == 1) { return val; }
  return -1;
}

int process_row(int seed) {
  // Local row decoding, comparison, and checksum work.
  int acc = 0;
  int x = seed;
  for (int i = 0; i < 14; i = i + 1) {
    x = (x * 48271 + 11) % 16384;
    if (x < 0) { x = -x; }
    acc = acc + x % 128;
  }
  return acc;
}

int stmt_count;

int run_stmts(int id, int n) {
  int acc = 0;
  for (int s = 0; s < n; s = s + 1) {
    acc = acc + process_row(id * 101 + s);
    if (s % 8 == 0) {
      acc = acc + dict_lookup(s % 64);
    }
    while (__cas(&row_lock, 0, 1) != 0) { }
    int base = ((id * 61 + s) % 16) * 8;
    for (int i = 0; i < 6; i = i + 1) {
      if (s % 3 == 0) {
        rows[base + i] = acc + i;
      } else {
        acc = acc + rows[base + i];
      }
    }
    row_lock = 0;
    stmt_count = stmt_count + 1;
  }
  return acc;
}

void worker0(void) { out0 = run_stmts(1, 1500); }
void worker1(void) { out1 = run_stmts(2, 1500); }

void perf_main(void) {
  init_dict();
  spawn(worker0);
  spawn(worker1);
  join();
  assert(out0 + out1 > 0);
}
`,
	PerfEntries: []string{"perf_main"},
	PerfSteps:   80_000_000,
})

// AppNames lists the Table 3/5 application rows in paper order.
var AppNames = []string{"mariadb", "postgresql", "leveldb", "memcached", "sqlite"}
