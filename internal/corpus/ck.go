package corpus

// Concurrency Kit benchmarks (Table 2 correctness, Table 5 performance).
// The TSO sources mirror how CK code looks on x86: relaxed atomics or
// plain accesses wherever TSO makes stronger orders unobservable. The
// expert variants mirror CK's native aarch64 ports, which use explicit
// fences — the paper's Table 5 observes that AtoMig's implicit barriers
// beat them.
//
// The performance harnesses replicate CK's benchmark framework shape:
// per-thread sample arrays, operation counters, and a configuration
// table, all global (as in ck's regressions/). These bookkeeping
// accesses are exactly what the Naïve strategy converts and AtoMig
// leaves alone.

// ckBench is the benchmark-framework bookkeeping shared by all CK
// harnesses.
const ckBench = `
int bench_samples[4096];
int bench_ops[2];
int bench_cfg[4] = {3, 5, 7, 9};

void bench_record(int t, int i) {
  bench_samples[t * 2048 + i % 2048] = i + bench_cfg[i % 4];
  bench_ops[t] = bench_ops[t] + 1;
}
`

const ckRingAlgo = `
int ring[4];
int head;
int tail;

int enqueue(int v) {
  int t = __load_rlx(&tail);
  int h = __load_rlx(&head);
  if (t - h == 4) { return 0; }
  ring[t % 4] = v;
  __store_rlx(&tail, t + 1);
  return 1;
}

int dequeue(void) {
  int h = __load_rlx(&head);
  int t = __load_rlx(&tail);
  if (h == t) { return -1; }
  int v = ring[h % 4];
  __store_rlx(&head, h + 1);
  return v;
}
`

const ckRingAlgoExpert = `
int ring[4];
int head;
int tail;

int enqueue(int v) {
  int t = tail;
  int h = head;
  if (t - h == 4) { return 0; }
  ring[t % 4] = v;
  __fence();
  tail = t + 1;
  return 1;
}

int dequeue(void) {
  int h = head;
  int t = tail;
  __fence();
  if (h == t) { return -1; }
  int v = ring[h % 4];
  __fence();
  head = h + 1;
  return v;
}
`

const ckRingHarness = `
void producer(void) {
  enqueue(7);
}

void consumer(void) {
  int v = -1;
  while (v == -1) { v = dequeue(); }
  assert(v == 7);
}

void perf_producer(void) {
  int t = tid();
  for (int i = 0; i < 3000; i = i + 1) {
    while (enqueue(i + 1) == 0) { }
    bench_record(t, i);
  }
}

void perf_consumer(void) {
  int t = tid();
  int sum = 0;
  for (int i = 0; i < 3000; i = i + 1) {
    int v = -1;
    while (v == -1) { v = dequeue(); }
    sum = sum + v;
    bench_record(t, i);
  }
  assert(sum == 3000 * 3001 / 2);
}
`

// CkRing is an SPSC ring buffer: the producer publishes slots via the
// tail index using relaxed atomics (sufficient on TSO, broken on WMM).
var CkRing = register(&Program{
	Name:         "ck_ring",
	Desc:         "SPSC ring buffer with relaxed index atomics (ck_ring)",
	Source:       ckBench + ckRingAlgo + ckRingHarness,
	ExpertSource: ckBench + ckRingAlgoExpert + ckRingHarness,
	MCEntries:    []string{"consumer", "producer"},
	PerfEntries:  []string{"perf_consumer", "perf_producer"},
	PerfSteps:    80_000_000,
})

const ckCASAlgo = `
int locked;
int data;

void lock(void) {
  while (__cas(&locked, 0, 1) != 0) { }
}

void unlock(void) {
  locked = 0;
}
`

const ckCASAlgoExpert = `
int locked;
int data;

void lock(void) {
  while (__cas(&locked, 0, 1) != 0) { }
  __fence();
}

void unlock(void) {
  __fence();
  locked = 0;
}
`

const ckCASHarness = `
void t0(void) { lock(); data = data + 1; unlock(); }
void t1(void) { lock(); data = data + 1; unlock(); }

void main_thread(void) {
  spawn(t0);
  spawn(t1);
  join();
  assert(data == 2);
}

void perf_worker(void) {
  int t = tid() - 1;
  for (int i = 0; i < 4000; i = i + 1) {
    lock();
    data = data + 1;
    unlock();
    bench_record(t, i);
  }
}

void perf_main(void) {
  spawn(perf_worker);
  spawn(perf_worker);
  join();
  assert(data == 8000);
}
`

// CkSpinlockCAS is CK's compare-and-swap spinlock. The cmpxchg carries
// acquire/release semantics already (as any straightforward Arm port
// would), but the unlock store is plain — which TSO forgives and WMM
// does not.
var CkSpinlockCAS = register(&Program{
	Name:         "ck_spinlock_cas",
	Desc:         "compare-and-swap spinlock with plain unlock (ck_spinlock_cas)",
	Source:       ckBench + ckCASAlgo + ckCASHarness,
	ExpertSource: ckBench + ckCASAlgoExpert + ckCASHarness,
	MCEntries:    []string{"main_thread"},
	PerfEntries:  []string{"perf_main"},
	PerfSteps:    80_000_000,
})

const ckMCSAlgo = `
struct mcsnode { int locked; struct mcsnode *next; };
struct mcsnode nodes[2];
struct mcsnode *tail;
int data;

void mcs_lock(struct mcsnode *me) {
  me->locked = 1;
  me->next = 0;
  struct mcsnode *prev = __xchg(&tail, me);
  if (prev != 0) {
    prev->next = me;
    while (me->locked == 1) { }
  }
}

void mcs_unlock(struct mcsnode *me) {
  if (me->next == 0) {
    if (__cas(&tail, me, 0) == me) { return; }
    while (me->next == 0) { }
  }
  me->next->locked = 0;
}
`

const ckMCSAlgoExpert = `
struct mcsnode { int locked; struct mcsnode *next; };
struct mcsnode nodes[2];
struct mcsnode *tail;
int data;

void mcs_lock(struct mcsnode *me) {
  me->locked = 1;
  me->next = 0;
  struct mcsnode *prev = __xchg(&tail, me);
  if (prev != 0) {
    __fence();
    prev->next = me;
    while (me->locked == 1) { }
  }
  __fence();
}

void mcs_unlock(struct mcsnode *me) {
  __fence();
  if (me->next == 0) {
    if (__cas(&tail, me, 0) == me) { return; }
    while (me->next == 0) { }
  }
  me->next->locked = 0;
}
`

const ckMCSHarness = `
void t0(void) {
  mcs_lock(&nodes[0]);
  data = data + 1;
  mcs_unlock(&nodes[0]);
}

void t1(void) {
  mcs_lock(&nodes[1]);
  data = data + 1;
  mcs_unlock(&nodes[1]);
}

void main_thread(void) {
  spawn(t0);
  spawn(t1);
  join();
  assert(data == 2);
}

void perf_worker0(void) {
  for (int i = 0; i < 4000; i = i + 1) {
    mcs_lock(&nodes[0]);
    data = data + 1;
    mcs_unlock(&nodes[0]);
    bench_record(0, i);
  }
}

void perf_worker1(void) {
  for (int i = 0; i < 4000; i = i + 1) {
    mcs_lock(&nodes[1]);
    data = data + 1;
    mcs_unlock(&nodes[1]);
    bench_record(1, i);
  }
}

void perf_main(void) {
  spawn(perf_worker0);
  spawn(perf_worker1);
  join();
  assert(data == 8000);
}
`

// CkSpinlockMCS is the MCS queue lock: waiters spin on their own node's
// locked flag; the lock holder hands off by writing the successor's
// flag — a plain store in the TSO version.
var CkSpinlockMCS = register(&Program{
	Name:         "ck_spinlock_mcs",
	Desc:         "MCS queue lock with plain handoff stores (ck_spinlock_mcs)",
	Source:       ckBench + ckMCSAlgo + ckMCSHarness,
	ExpertSource: ckBench + ckMCSAlgoExpert + ckMCSHarness,
	MCEntries:    []string{"main_thread"},
	PerfEntries:  []string{"perf_main"},
	PerfSteps:    80_000_000,
})

const ckSeqAlgo = `
volatile int seq;
int d0;
int d1;

void seq_write(int v) {
  seq++;
  d0 += v;
  d1 += v;
  seq++;
}

int seq_read(void) {
  int s;
  int a;
  int b;
  do {
    s = seq;
    a = d0;
    b = d1;
  } while (s % 2 != 0 || s != seq);
  if (a != b) { return 1; }
  return 0;
}
`

const ckSeqAlgoExpert = `
volatile int seq;
int d0;
int d1;

void seq_write(int v) {
  seq++;
  __fence();
  d0 += v;
  d1 += v;
  __fence();
  seq++;
}

int seq_read(void) {
  int s;
  int a;
  int b;
  do {
    __fence();
    s = seq;
    a = d0;
    b = d1;
    __fence();
  } while (s % 2 != 0 || s != seq);
  if (a != b) { return 1; }
  return 0;
}
`

const ckSeqHarness = `
void writer(void) {
  seq_write(1);
}

void reader(void) {
  int s;
  int a;
  int b;
  do {
    s = seq;
    a = d0;
    b = d1;
  } while (s % 2 != 0 || s != seq);
  assert(a == b);
}

void perf_writer(void) {
  for (int i = 0; i < 4000; i = i + 1) {
    seq_write(1);
    bench_record(0, i);
  }
}

void perf_reader(void) {
  int bad = 0;
  for (int i = 0; i < 4000; i = i + 1) {
    bad = bad + seq_read();
    bench_record(1, i);
  }
  assert(bad == 0);
}
`

// CkSequence is CK's sequence counter protecting a two-word record: the
// reader validates with the counter and asserts the words belong to one
// generation. Spinloop detection alone is insufficient — the optimistic
// reads need explicit fences (Table 2's Spin ✗ / AtoMig ✓ row).
var CkSequence = register(&Program{
	Name:         "ck_sequence",
	Desc:         "sequence counter over a two-word record (ck_sequence)",
	Source:       ckBench + ckSeqAlgo + ckSeqHarness,
	ExpertSource: ckBench + ckSeqAlgoExpert + ckSeqHarness,
	MCEntries:    []string{"reader", "writer"},
	PerfEntries:  []string{"perf_reader", "perf_writer"},
	PerfSteps:    80_000_000,
})
