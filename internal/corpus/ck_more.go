package corpus

// Additional Concurrency Kit data structures: the Treiber stack
// (ck_stack) and the Michael-Scott queue (ck_fifo). Both break under
// WMM when compiled from their TSO form (the element value travels
// through plain loads), and both are already repaired at the
// explicit-annotation level: their hot pointers are manipulated with
// read-modify-writes, and any RMW seeds alias exploration — the
// paper's section 3.5 argument for why false negatives are rare ("more
// than 80% of the algorithms [in CK] use read-modify-write
// operations").

// CkStack is the Treiber stack.
var CkStack = register(&Program{
	Name: "ck_stack",
	Desc: "Treiber stack (ck_stack): CAS push/pop, optimistic value read",
	Source: ckBench + `
struct snode { int val; struct snode *next; };
struct snode spool[4096];
int spool_next;
struct snode *top;

void push(int v) {
  struct snode *n = &spool[__faa(&spool_next, 1)];
  n->val = v;
  struct snode *t = top;
  n->next = t;
  while (__cas(&top, t, n) != t) {
    t = top;
    n->next = t;
  }
}

int pop(void) {
  struct snode *t = top;
  while (t != 0) {
    struct snode *nx = t->next;
    int v = t->val;
    if (__cas(&top, t, nx) == t) {
      return v;
    }
    t = top;
  }
  return -1;
}

void pusher(void) {
  push(42);
}

void popper(void) {
  int r = pop();
  assert(r == -1 || r == 42);
}

void mc_main(void) {
  spawn(pusher);
  spawn(popper);
  join();
}

void perf_worker0(void) {
  for (int i = 0; i < 1500; i = i + 1) {
    if (i % 2 == 0) {
      push(i + 1);
    } else {
      pop();
    }
    bench_record(0, i);
  }
}

void perf_worker1(void) {
  for (int i = 0; i < 1500; i = i + 1) {
    if (i % 3 == 0) {
      push(i + 1);
    } else {
      pop();
    }
    bench_record(1, i);
  }
}

void perf_main(void) {
  spawn(perf_worker0);
  spawn(perf_worker1);
  join();
}
`,
	MCEntries:   []string{"mc_main"},
	PerfEntries: []string{"perf_main"},
	PerfSteps:   80_000_000,
})

// CkFifo is the Michael-Scott queue.
var CkFifo = register(&Program{
	Name: "ck_fifo",
	Desc: "Michael-Scott queue (ck_fifo): two-CAS enqueue, optimistic dequeue",
	Source: ckBench + `
struct qnode { int val; struct qnode *next; };
struct qnode qpool[4096];
int qpool_next;
struct qnode *qhead;
struct qnode *qtail;

void qinit(void) {
  struct qnode *d = &qpool[__faa(&qpool_next, 1)];
  d->next = 0;
  qhead = d;
  qtail = d;
}

void enqueue(int v) {
  struct qnode *n = &qpool[__faa(&qpool_next, 1)];
  n->val = v;
  n->next = 0;
  for (;;) {
    struct qnode *t = qtail;
    struct qnode *nx = t->next;
    if (nx == 0) {
      if (__cas(&t->next, 0, n) == 0) {
        __cas(&qtail, t, n);
        return;
      }
    } else {
      __cas(&qtail, t, nx);
    }
  }
}

int dequeue(void) {
  for (;;) {
    struct qnode *h = qhead;
    struct qnode *t = qtail;
    struct qnode *nx = h->next;
    if (nx == 0) { return -1; }
    int v = nx->val;
    if (h == t) {
      __cas(&qtail, t, nx);
    }
    if (__cas(&qhead, h, nx) == h) {
      return v;
    }
  }
}

void enqueuer(void) {
  enqueue(42);
}

void dequeuer(void) {
  int r = -1;
  while (r == -1) { r = dequeue(); }
  assert(r == 42);
}

void mc_main(void) {
  qinit();
  spawn(enqueuer);
  spawn(dequeuer);
  join();
}

void perf_worker0(void) {
  for (int i = 0; i < 1200; i = i + 1) {
    enqueue(i + 1);
    bench_record(0, i);
  }
}

void perf_worker1(void) {
  int got = 0;
  for (int i = 0; i < 1200; i = i + 1) {
    int r = -1;
    while (r == -1) { r = dequeue(); }
    got = got + 1;
    bench_record(1, i);
  }
  assert(got == 1200);
}

void perf_main(void) {
  qinit();
  spawn(perf_worker0);
  spawn(perf_worker1);
  join();
}
`,
	MCEntries:   []string{"mc_main"},
	PerfEntries: []string{"perf_main"},
	PerfSteps:   80_000_000,
})

// CkSpinlockTicket is CK's ticket lock: tickets are taken with
// fetch-and-add; the owner spins on the now-serving counter. The TSO
// version's unlock (now_serving++) is a plain increment.
var CkSpinlockTicket = register(&Program{
	Name: "ck_spinlock_ticket",
	Desc: "ticket lock (ck_spinlock_ticket): FAA tickets, plain unlock increment",
	Source: ckBench + `
int next_ticket;
int now_serving;
int data;

void ticket_lock(void) {
  int me = __faa(&next_ticket, 1);
  while (now_serving != me) { }
}

void ticket_unlock(void) {
  now_serving++;
}

void t0(void) { ticket_lock(); data++; ticket_unlock(); }
void t1(void) { ticket_lock(); data++; ticket_unlock(); }

void main_thread(void) {
  spawn(t0);
  spawn(t1);
  join();
  assert(data == 2);
}

void perf_worker(void) {
  int t = tid() - 1;
  for (int i = 0; i < 4000; i++) {
    ticket_lock();
    data++;
    ticket_unlock();
    bench_record(t, i);
  }
}

void perf_main(void) {
  spawn(perf_worker);
  spawn(perf_worker);
  join();
  assert(data == 8000);
}
`,
	MCEntries:   []string{"main_thread"},
	PerfEntries: []string{"perf_main"},
	PerfSteps:   80_000_000,
})
