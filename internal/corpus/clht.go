package corpus

// CLHT, the cache-line hash table, developed solely for x86 (Table 5's
// clht_lb and clht_lf rows). The paper uses it to demonstrate
// end-to-end porting of code with no WMM version at all: the baseline
// is the x86 source recompiled for aarch64 unchanged (incorrect under
// WMM), which is why AtoMig shows a visible overhead on these rows
// (1.10 and 1.40 in the paper).

// ClhtLB is the lock-based variant: per-bucket test-and-set locks guard
// writers; readers are lock-free and validate with the bucket lock word.
var ClhtLB = register(&Program{
	Name: "clht_lb",
	Desc: "CLHT lock-based hash table: bucket locks, lock-free readers",
	Source: `
struct bucket {
  int lock;
  int keys[3];
  int vals[3];
};

struct bucket table[8];

int put(int k, int v) {
  struct bucket *b = &table[k % 8];
  while (__cas(&b->lock, 0, 1) != 0) { }
  int slot = -1;
  for (int i = 0; i < 3; i = i + 1) {
    if (b->keys[i] == k) { slot = i; }
    if (slot == -1 && b->keys[i] == 0) { slot = i; }
  }
  if (slot == -1) {
    b->lock = 0;
    return 0;
  }
  b->vals[slot] = v;
  b->keys[slot] = k;
  b->lock = 0;
  return 1;
}

int get(int k) {
  struct bucket *b = &table[k % 8];
  for (int i = 0; i < 3; i = i + 1) {
    if (b->keys[i] == k) {
      return b->vals[i];
    }
  }
  return -1;
}

int rem(int k) {
  struct bucket *b = &table[k % 8];
  while (__cas(&b->lock, 0, 1) != 0) { }
  int found = 0;
  for (int i = 0; i < 3; i = i + 1) {
    if (b->keys[i] == k) {
      b->keys[i] = 0;
      b->vals[i] = 0;
      found = 1;
    }
  }
  b->lock = 0;
  return found;
}

void perf_client0(void) {
  for (int i = 0; i < 1200; i = i + 1) {
    int k = i % 24 + 1;
    if (i % 4 == 0) {
      put(k, k * 2);
    } else {
      int r = get(k);
      assert(r == -1 || r == 0 || r == k * 2);
    }
  }
}

void perf_client1(void) {
  for (int i = 0; i < 1200; i = i + 1) {
    int k = (i + 12) % 24 + 1;
    if (i % 6 == 0) {
      rem(k);
    } else {
      int r = get(k);
      assert(r == -1 || r == 0 || r == k * 2);
    }
  }
}

void perf_main(void) {
  spawn(perf_client0);
  spawn(perf_client1);
  join();
}
`,
	PerfEntries: []string{"perf_main"},
	PerfSteps:   80_000_000,
})

// ClhtLF is the lock-free variant: slots are published by writing the
// key after the value with a CAS claiming the slot.
var ClhtLF = register(&Program{
	Name: "clht_lf",
	Desc: "CLHT lock-free hash table: CAS slot claims",
	Source: `
struct lfbucket {
  int keys[4];
  int vals[4];
};

struct lfbucket table[8];

int put(int k, int v) {
  struct lfbucket *b = &table[k % 8];
  for (int i = 0; i < 4; i = i + 1) {
    if (b->keys[i] == k) {
      b->vals[i] = v;
      return 1;
    }
  }
  for (int i = 0; i < 4; i = i + 1) {
    if (b->keys[i] == 0) {
      b->vals[i] = v;
      if (__cas(&b->keys[i], 0, k) == 0) {
        return 1;
      }
    }
  }
  return 0;
}

int get(int k) {
  struct lfbucket *b = &table[k % 8];
  for (int i = 0; i < 4; i = i + 1) {
    if (b->keys[i] == k) {
      return b->vals[i];
    }
  }
  return -1;
}

int rem(int k) {
  struct lfbucket *b = &table[k % 8];
  for (int i = 0; i < 4; i = i + 1) {
    if (b->keys[i] == k) {
      if (__cas(&b->keys[i], k, 0) == k) {
        b->vals[i] = 0;
        return 1;
      }
    }
  }
  return 0;
}

void perf_client0(void) {
  for (int i = 0; i < 1200; i = i + 1) {
    int k = i % 24 + 1;
    if (i % 4 == 0) {
      put(k, k * 2);
    } else {
      int r = get(k);
      assert(r == -1 || r == 0 || r == k * 2);
    }
  }
}

void perf_client1(void) {
  for (int i = 0; i < 1200; i = i + 1) {
    int k = (i + 12) % 24 + 1;
    if (i % 6 == 0) {
      rem(k);
    } else {
      int r = get(k);
      assert(r == -1 || r == 0 || r == k * 2);
    }
  }
}

void perf_main(void) {
  spawn(perf_client0);
  spawn(perf_client1);
  join();
}
`,
	PerfEntries: []string{"perf_main"},
	PerfSteps:   80_000_000,
})
