package corpus

// The Compact NUMA-Aware (CNA) lock — the flagship weakening target of
// docs/WEAKENING.md, after "Verifying and Optimizing Compact NUMA-Aware
// Locks on Weak Memory Models" (PAPERS.md), the paper whose
// checker-in-the-loop methodology internal/weaken reproduces.
//
// CNA is an MCS-style queue lock that keeps the lock on one socket:
// when the holder's successor sits on a different socket but a same-
// socket waiter queues behind it, the unlock parks the remote
// successor on a secondary queue and hands the lock to the local
// waiter; the secondary queue is promoted back into the main queue
// when the main queue drains. The TSO source below uses plain stores
// for every handoff and queue-link write (correct on x86, broken under
// WMM); porting promotes the spin/next/tail/sec accesses to seq_cst,
// and the weakening optimizer then relaxes exactly the orderings the
// checker proves unnecessary.
//
// The simplifications against Dice & Kogan's CNA are documented where
// they happen: the secondary queue holds at most one node (enough for
// two sockets' worth of harness threads), and there is no spin-encoded
// successor pointer — `spin` is a plain go/wait flag as in the MCS
// entry above.

const cnaAlgo = `
struct cnanode { int spin; int sock; struct cnanode *next; };
struct cnanode nodes[3];
struct cnanode *tail;
struct cnanode *sec;
int data;

void cna_lock(struct cnanode *me, int sock) {
  me->spin = 0;
  me->sock = sock;
  me->next = 0;
  struct cnanode *prev = __xchg(&tail, me);
  if (prev == 0) { return; }
  prev->next = me;
  while (me->spin == 0) { }
}

void cna_unlock(struct cnanode *me, int sock) {
  if (me->next == 0) {
    struct cnanode *s = sec;
    if (s != 0) {
      if (__cas(&tail, me, s) == me) {
        sec = 0;
        s->spin = 1;
        return;
      }
    } else {
      if (__cas(&tail, me, 0) == me) { return; }
    }
    while (me->next == 0) { }
  }
  struct cnanode *succ = me->next;
  if (succ->sock != sock) {
    struct cnanode *peek = succ->next;
    if (peek != 0 && peek->sock == sock) {
      succ->next = 0;
      sec = succ;
      peek->spin = 1;
      return;
    }
  }
  succ->spin = 1;
}
`

// cnaAlgoExpert mirrors how a hand port fences the same code on a WMM
// target: one fence between publishing the queue link and spinning, one
// after each spin loop (acquire side), one before each handoff store
// (release side) — the shape CK's native aarch64 locks use.
const cnaAlgoExpert = `
struct cnanode { int spin; int sock; struct cnanode *next; };
struct cnanode nodes[3];
struct cnanode *tail;
struct cnanode *sec;
int data;

void cna_lock(struct cnanode *me, int sock) {
  me->spin = 0;
  me->sock = sock;
  me->next = 0;
  struct cnanode *prev = __xchg(&tail, me);
  if (prev == 0) { return; }
  __fence();
  prev->next = me;
  while (me->spin == 0) { }
  __fence();
}

void cna_unlock(struct cnanode *me, int sock) {
  __fence();
  if (me->next == 0) {
    struct cnanode *s = sec;
    if (s != 0) {
      if (__cas(&tail, me, s) == me) {
        sec = 0;
        s->spin = 1;
        return;
      }
    } else {
      if (__cas(&tail, me, 0) == me) { return; }
    }
    while (me->next == 0) { }
    __fence();
  }
  struct cnanode *succ = me->next;
  if (succ->sock != sock) {
    struct cnanode *peek = succ->next;
    if (peek != 0 && peek->sock == sock) {
      succ->next = 0;
      sec = succ;
      peek->spin = 1;
      return;
    }
  }
  succ->spin = 1;
}
`

// cnaHarness: the model-checking harness runs one thread per socket —
// the remote-handoff path (successor on the other socket, nobody
// behind it) plus the drain/CAS paths, which is the part of the lock
// the weakening loop re-verifies per candidate. The three-thread
// parking path (remote successor parked on the secondary queue, lock
// handed to the local waiter behind it, parked node promoted on drain)
// is exercised by cna_park_main — reachable only with >= 3 threads, so
// it lives in its own entry and TestCNAParkingPath validates it once
// rather than per candidate.
const cnaHarness = `
void t0(void) {
  cna_lock(&nodes[0], 0);
  data = data + 1;
  cna_unlock(&nodes[0], 0);
}

void t1(void) {
  cna_lock(&nodes[1], 1);
  data = data + 1;
  cna_unlock(&nodes[1], 1);
}

void main_thread(void) {
  spawn(t0);
  spawn(t1);
  join();
  assert(data == 2);
}

void park_t2(void) {
  cna_lock(&nodes[2], 0);
  data = data + 1;
  cna_unlock(&nodes[2], 0);
}

void cna_park_main(void) {
  spawn(t0);
  spawn(t1);
  spawn(park_t2);
  join();
  assert(data == 3);
}

void perf_worker0(void) {
  for (int i = 0; i < 4000; i = i + 1) {
    cna_lock(&nodes[0], 0);
    data = data + 1;
    cna_unlock(&nodes[0], 0);
    bench_record(0, i);
  }
}

void perf_worker1(void) {
  for (int i = 0; i < 4000; i = i + 1) {
    cna_lock(&nodes[1], 1);
    data = data + 1;
    cna_unlock(&nodes[1], 1);
    bench_record(1, i);
  }
}

void perf_main(void) {
  spawn(perf_worker0);
  spawn(perf_worker1);
  join();
  assert(data == 8000);
}
`

// CNALock is the CNA NUMA-aware queue lock, the weakening flagship.
var CNALock = register(&Program{
	Name:         "cna-lock",
	Desc:         "Compact NUMA-aware queue lock with secondary remote queue (weakening flagship)",
	Source:       ckBench + cnaAlgo + cnaHarness,
	ExpertSource: ckBench + cnaAlgoExpert + cnaHarness,
	MCEntries:    []string{"main_thread"},
	PerfEntries:  []string{"perf_main"},
	PerfSteps:    80_000_000,
})
