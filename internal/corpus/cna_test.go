package corpus

import (
	"strings"
	"testing"
	"time"

	"repro/internal/atomig"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/vm"
)

// portCNA compiles and ports a CNA variant.
func portCNA(t *testing.T, src, name string) *ir.Module {
	t.Helper()
	res, err := minic.Compile(name, src)
	if err != nil {
		t.Fatal(err)
	}
	ported, _, err := atomig.PortClone(res.Module, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ported
}

// checkCNA model-checks a ported CNA variant under WMM.
func checkCNA(t *testing.T, src, name string, entries []string, o mc.Options) *mc.Result {
	t.Helper()
	o.Model = memmodel.ModelWMM
	o.Entries = entries
	if o.TimeBudget == 0 {
		o.TimeBudget = time.Minute
	}
	out, err := mc.Check(portCNA(t, src, name), o)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCNAParkingPath validates the three-thread secondary-queue path
// once, outside the per-candidate weakening loop (which runs the
// two-socket harness). Three threads through a queue lock exceed what
// the checker can enumerate exhaustively, so the positive direction
// drives the ported lock through every fault-injection scheduler mode
// (no schedule may fail the assertion) and the checker is used for
// what bounded search is good at: refuting a probe that claims the
// parking branch is unreachable.
func TestCNAParkingPath(t *testing.T) {
	src := CNALock.Source
	ported := portCNA(t, src, "cna-park")
	for _, mode := range vm.AllSchedModes() {
		for seed := int64(0); seed < 20; seed++ {
			res, err := vm.Run(ported, vm.Options{
				Model:      memmodel.ModelWMM,
				Entries:    []string{"cna_park_main"},
				Controller: vm.NewScheduler(mode, seed),
				Seed:       seed,
			})
			if err != nil {
				t.Fatalf("mode %s seed %d: %v", mode, seed, err)
			}
			if res.Status == vm.StatusAssertFailed {
				t.Fatalf("mode %s seed %d: ported 3-thread CNA failed: %s", mode, seed, res.FailMsg)
			}
		}
	}

	// Reachability probe: count parkings, assert none happen — the
	// checker must find a counterexample, proving the weakening
	// flagship's most subtle path is really exercised.
	probe := strings.Replace(src, "sec = succ;", "sec = succ; parked = 1;", 1)
	probe = strings.Replace(probe, "int data;", "int data;\nint parked;", 1)
	probe = strings.Replace(probe, "assert(data == 3);", "assert(parked == 0);", 1)
	if probe == src {
		t.Fatal("probe rewrite did not apply; cnaAlgo changed?")
	}
	out := checkCNA(t, probe, "cna-park-probe", []string{"cna_park_main"}, mc.Options{StopAtFirst: true})
	if out.Verdict != mc.VerdictFail {
		t.Fatalf("parking-reachability probe: verdict %s, want %s (parking path unreachable?)", out.Verdict, mc.VerdictFail)
	}
}

// TestCNALocalHandoff pins the same-socket fast path: two threads on
// one socket hand off directly, and the ported lock stays correct.
func TestCNALocalHandoff(t *testing.T) {
	src := CNALock.Source
	local := strings.Replace(src, "cna_lock(&nodes[1], 1);", "cna_lock(&nodes[1], 0);", 1)
	local = strings.Replace(local, "cna_unlock(&nodes[1], 1);", "cna_unlock(&nodes[1], 0);", 1)
	if local == src {
		t.Fatal("local rewrite did not apply; cnaHarness changed?")
	}
	out := checkCNA(t, local, "cna-local", []string{"main_thread"}, mc.Options{DetectRaces: true})
	if out.Verdict != mc.VerdictPass {
		t.Fatalf("ported same-socket CNA: verdict %s, want %s", out.Verdict, mc.VerdictPass)
	}
}
