package corpus

import (
	"testing"
	"time"

	"repro/internal/atomig"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/vm"
)

// conformanceCase pins the model-checker verdict of one litmus program
// under WMM before and after porting. The cases where porting does NOT
// repair the program are as load-bearing as the ones where it does:
// plain litmus shapes with no synchronization pattern (SB, IRIW) are
// the paper's documented detection boundary, and a port that suddenly
// "fixed" them would mean the pipeline started promoting accesses it
// has no business touching.
type conformanceCase struct {
	program string
	// detectRaces turns on the happens-before detector; the expected
	// verdicts then use VerdictRace rather than assertion violations.
	detectRaces bool
	// stopAtFirst cuts exploration at the first violation — used for
	// programs whose full state space is too large to enumerate but
	// whose expected violation is found quickly.
	stopAtFirst   bool
	before, after mc.Verdict
	note          string
}

func conformanceCases() []conformanceCase {
	return []conformanceCase{
		{program: "mp", before: mc.VerdictFail, after: mc.VerdictPass,
			note: "spin on flag detected; msg promoted via sticky exploration"},
		{program: "sb", before: mc.VerdictFail, after: mc.VerdictFail,
			note: "no synchronization pattern: out of AtoMig's scope by design"},
		{program: "lb", before: mc.VerdictPass, after: mc.VerdictPass,
			note: "the model forbids load buffering even unported"},
		{program: "iriw", detectRaces: true, stopAtFirst: true,
			before: mc.VerdictRace, after: mc.VerdictRace,
			note: "plain IRIW reads: nothing to detect, races remain"},
		{program: "corr", before: mc.VerdictPass, after: mc.VerdictPass,
			note: "per-location coherence holds under WMM already"},
		{program: "seqlock", before: mc.VerdictFail, after: mc.VerdictPass,
			note: "optimistic loop detected: seq promoted + fenced"},
		{program: "seqlock-gap", detectRaces: true,
			before: mc.VerdictRace, after: mc.VerdictPass,
			note: "Figure 6 gap variant: only the race detector sees the bug"},
		{program: "cna-lock", detectRaces: true,
			before: mc.VerdictFail, after: mc.VerdictPass,
			note: "CNA queue lock (weakening flagship): plain handoffs break under WMM; ported lock verified race-free"},
	}
}

// checkConformance runs one mc check at the given worker count.
func checkConformance(t *testing.T, m *mcModule, c conformanceCase, workers int) mc.Verdict {
	t.Helper()
	res, err := mc.Check(m.mod, mc.Options{
		Model:       memmodel.ModelWMM,
		Entries:     m.entries,
		TimeBudget:  time.Minute,
		Workers:     workers,
		DetectRaces: c.detectRaces,
		StopAtFirst: c.stopAtFirst,
	})
	if err != nil {
		t.Fatalf("%s: %v", c.program, err)
	}
	return res.Verdict
}

type mcModule struct {
	mod     *ir.Module
	entries []string
}

// TestLitmusConformance asserts the expected verdict for every litmus
// case, before and after porting, at -j 1 and -j 4 — both the port
// itself (pipeline workers) and the checker (frontier workers) must
// leave the verdict untouched.
func TestLitmusConformance(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.program, func(t *testing.T) {
			p := Get(c.program)
			if p == nil {
				t.Fatalf("program %q not in corpus", c.program)
			}
			orig, err := p.Compile()
			if err != nil {
				t.Fatal(err)
			}
			for _, pipelineJ := range []int{1, 4} {
				opts := atomig.DefaultOptions()
				opts.Workers = pipelineJ
				ported, _, err := atomig.PortClone(orig, opts)
				if err != nil {
					t.Fatalf("port -j %d: %v", pipelineJ, err)
				}
				for _, checkerJ := range []int{1, 4} {
					got := checkConformance(t, &mcModule{orig, p.MCEntries}, c, checkerJ)
					if got != c.before {
						t.Errorf("before port (pipeline -j %d, checker -j %d): verdict %s, want %s (%s)",
							pipelineJ, checkerJ, got, c.before, c.note)
					}
					got = checkConformance(t, &mcModule{ported, p.MCEntries}, c, checkerJ)
					if got != c.after {
						t.Errorf("after port (pipeline -j %d, checker -j %d): verdict %s, want %s (%s)",
							pipelineJ, checkerJ, got, c.after, c.note)
					}
				}
			}
		})
	}
}

// TestLitmusConformanceSchedModes runs every conformance program's
// ported module under each fault-injection scheduler mode. For cases
// the port repairs (after == VerdictPass), no seed in any mode may
// fail an assertion; unrepaired cases are skipped — their violations
// are schedule-dependent by nature.
func TestLitmusConformanceSchedModes(t *testing.T) {
	for _, c := range conformanceCases() {
		if c.after != mc.VerdictPass {
			continue
		}
		c := c
		t.Run(c.program, func(t *testing.T) {
			p := Get(c.program)
			orig, err := p.Compile()
			if err != nil {
				t.Fatal(err)
			}
			ported, _, err := atomig.PortClone(orig, atomig.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range vm.AllSchedModes() {
				for seed := int64(0); seed < 20; seed++ {
					res, err := vm.Run(ported, vm.Options{
						Model:      memmodel.ModelWMM,
						Entries:    p.MCEntries,
						Controller: vm.NewScheduler(mode, seed),
						Seed:       seed,
					})
					if err != nil {
						t.Fatalf("mode %s seed %d: %v", mode, seed, err)
					}
					if res.Status == vm.StatusAssertFailed {
						t.Fatalf("mode %s seed %d: ported %s failed: %s",
							mode, seed, c.program, res.FailMsg)
					}
				}
			}
		})
	}
}
