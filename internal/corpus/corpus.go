// Package corpus holds the MiniC benchmark programs of the evaluation:
// the paper's figure examples (message passing, test-and-set lock,
// sequence lock, the MariaDB lf-hash bug), the Concurrency Kit data
// structures of Table 2/5, the lock-free hash table, the CLHT hash
// tables, the Phoenix map-reduce suite of Table 6, and the
// application kernels standing in for the large code bases of
// Tables 3–5.
//
// Every program is legacy TSO code: correct when executed under SC or
// x86-TSO, and (for the concurrency benchmarks) buggy under WMM until
// ported. CK programs additionally carry an expert WMM port using
// explicit fences, mirroring the native aarch64 versions the paper
// compares against.
package corpus

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/minic"
)

// Program is one benchmark program.
type Program struct {
	Name string
	// Desc is a one-line description for tooling output.
	Desc string
	// Source is the legacy TSO MiniC source.
	Source string
	// ExpertSource is the hand-ported WMM variant with explicit fences
	// (empty when the paper has no native WMM version to compare with).
	ExpertSource string
	// MCEntries are the thread entry functions of the model-checking
	// harness (empty when the program is performance-only).
	MCEntries []string
	// PerfEntries are the thread entry functions of the performance
	// harness.
	PerfEntries []string
	// PerfSteps bounds performance runs (0 = VM default).
	PerfSteps int64
}

// Compile compiles the program's TSO source.
func (p *Program) Compile() (*ir.Module, error) {
	res, err := minic.Compile(p.Name, p.Source)
	if err != nil {
		return nil, fmt.Errorf("corpus %s: %w", p.Name, err)
	}
	return res.Module, nil
}

// CompileExpert compiles the expert WMM variant.
func (p *Program) CompileExpert() (*ir.Module, error) {
	if p.ExpertSource == "" {
		return nil, fmt.Errorf("corpus %s: no expert variant", p.Name)
	}
	res, err := minic.Compile(p.Name+"-expert", p.ExpertSource)
	if err != nil {
		return nil, fmt.Errorf("corpus %s (expert): %w", p.Name, err)
	}
	return res.Module, nil
}

var registry = map[string]*Program{}

func register(p *Program) *Program {
	if _, dup := registry[p.Name]; dup {
		panic("corpus: duplicate program " + p.Name)
	}
	registry[p.Name] = p
	return p
}

// Get returns the named program, or nil.
func Get(name string) *Program { return registry[name] }

// Names returns all program names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all programs sorted by name.
func All() []*Program {
	names := Names()
	out := make([]*Program, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}
