package corpus

import (
	"testing"
	"time"

	"repro/internal/atomig"
	"repro/internal/ir"
	"repro/internal/mc"
	"repro/internal/memmodel"
	"repro/internal/vm"
)

func TestAllProgramsCompile(t *testing.T) {
	for _, p := range All() {
		t.Run(p.Name, func(t *testing.T) {
			m, err := p.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if err := ir.Verify(m); err != nil {
				t.Fatal(err)
			}
			if p.ExpertSource != "" {
				em, err := p.CompileExpert()
				if err != nil {
					t.Fatal(err)
				}
				if err := ir.Verify(em); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	if Get("mp") == nil {
		t.Fatal("mp not registered")
	}
	if Get("nope") != nil {
		t.Fatal("unknown name resolved")
	}
	names := Names()
	if len(names) != len(All()) {
		t.Fatal("Names/All mismatch")
	}
	for _, n := range []string{
		"mp", "sb", "corr", "seqlock", "tas", "lfhash-fig7",
		"ck_ring", "ck_spinlock_cas", "ck_spinlock_mcs", "ck_sequence",
		"lf_hash", "clht_lb", "clht_lf",
		"histogram", "kmeans", "linear_regression", "matrix_multiply", "string_match",
		"mariadb", "postgresql", "leveldb", "memcached", "sqlite",
	} {
		if Get(n) == nil {
			t.Errorf("program %q missing", n)
		}
	}
}

// runPerf executes a program's performance harness under SC.
func runPerf(t *testing.T, m *ir.Module, p *Program, seed int64) *vm.Result {
	t.Helper()
	res, err := vm.Run(m, vm.Options{
		Model:    memmodel.ModelSC,
		Entries:  p.PerfEntries,
		Seed:     seed,
		MaxSteps: p.PerfSteps,
	})
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return res
}

// TestPerfHarnessesRunClean: every performance harness completes with
// its assertions intact under SC, for the original, the expert variant,
// and the atomig port.
func TestPerfHarnessesRunClean(t *testing.T) {
	for _, p := range All() {
		if len(p.PerfEntries) == 0 {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			m, err := p.Compile()
			if err != nil {
				t.Fatal(err)
			}
			res := runPerf(t, m, p, 1)
			if res.Status != vm.StatusDone {
				t.Fatalf("original: status=%s msg=%s steps=%d", res.Status, res.FailMsg, res.Steps)
			}
			if res.MaxCycles == 0 {
				t.Fatal("no cycles accounted")
			}
			ported, _, err := atomig.PortClone(m, atomig.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			pres := runPerf(t, ported, p, 1)
			if pres.Status != vm.StatusDone {
				t.Fatalf("atomig: status=%s msg=%s", pres.Status, pres.FailMsg)
			}
			if p.ExpertSource != "" {
				em, err := p.CompileExpert()
				if err != nil {
					t.Fatal(err)
				}
				eres := runPerf(t, em, p, 1)
				if eres.Status != vm.StatusDone {
					t.Fatalf("expert: status=%s msg=%s", eres.Status, eres.FailMsg)
				}
			}
		})
	}
}

// TestMCHarnessesPassUnderSC: every model-checking harness is correct
// under sequential consistency — these are legacy TSO programs, not
// broken ones.
func TestMCHarnessesPassUnderSC(t *testing.T) {
	for _, p := range All() {
		if len(p.MCEntries) == 0 {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			m, err := p.Compile()
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 50; seed++ {
				res, err := vm.Run(m, vm.Options{
					Model:   memmodel.ModelSC,
					Entries: p.MCEntries,
					Seed:    seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Status == vm.StatusAssertFailed {
					t.Fatalf("seed %d: %s", seed, res.FailMsg)
				}
			}
		})
	}
}

// TestDetectionProfile: the pipeline finds the expected synchronization
// patterns in the flagship programs.
func TestDetectionProfile(t *testing.T) {
	cases := []struct {
		name        string
		wantSpinMin int
		wantOptiMin int
		wantFences  bool
	}{
		{"lf_hash", 1, 1, true},
		{"ck_sequence", 1, 1, true},
		{"ck_spinlock_mcs", 2, 0, false},
		{"memcached", 1, 0, false},
		{"sqlite", 1, 0, false},
		{"mariadb", 2, 1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := Get(c.name).Compile()
			if err != nil {
				t.Fatal(err)
			}
			_, rep, err := atomig.PortClone(m, atomig.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Spinloops < c.wantSpinMin {
				t.Errorf("spinloops = %d, want >= %d", rep.Spinloops, c.wantSpinMin)
			}
			if rep.Optiloops < c.wantOptiMin {
				t.Errorf("optiloops = %d, want >= %d", rep.Optiloops, c.wantOptiMin)
			}
			if c.wantFences && rep.ExplicitAdded == 0 {
				t.Error("no fences inserted")
			}
		})
	}
}

// TestRoundTripThroughText: every corpus program (original and ported)
// survives a print -> parse -> print cycle of the textual IR, including
// marks and inserted fences.
func TestRoundTripThroughText(t *testing.T) {
	for _, p := range All() {
		t.Run(p.Name, func(t *testing.T) {
			m, err := p.Compile()
			if err != nil {
				t.Fatal(err)
			}
			ported, _, err := atomig.PortClone(m, atomig.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, mod := range []*ir.Module{m, ported} {
				text := mod.String()
				parsed, err := ir.ParseModule(text)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				if parsed.String() != text {
					t.Fatal("round trip not stable")
				}
			}
		})
	}
}

// TestKnownLimitations pins the paper's stated detection boundary
// (section 6): straight-line synchronization is a false negative, the
// same pattern with a waiting loop is repaired.
func TestKnownLimitations(t *testing.T) {
	t.Run("dcl-is-missed", func(t *testing.T) {
		m, err := Get("dcl").Compile()
		if err != nil {
			t.Fatal(err)
		}
		ported, rep, err := atomig.PortClone(m, atomig.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		// The lock spinloop is found, but init_done/object are not traced
		// to it: the straight-line fast path stays plain.
		var initPlain bool
		ported.EachInstr(func(_ *ir.Func, in *ir.Instr) {
			if !in.IsMemAccess() {
				return
			}
			if g, ok := in.Addr().(*ir.Global); ok && g.GName == "object" && !in.Ord.Atomic() {
				initPlain = true
			}
		})
		if !initPlain {
			t.Errorf("object accesses converted (spinloops=%d): the documented false negative disappeared — update the paper-limits docs",
				rep.Spinloops)
		}
		// The port is consequently still buggy under WMM.
		res, err := mc.Check(ported, mc.Options{
			Model: memmodel.ModelWMM, Entries: []string{"mc_main"},
			TimeBudget: 5 * time.Second, StopAtFirst: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != mc.VerdictFail {
			t.Errorf("DCL port verified (%s): expected the known false negative", res.Verdict)
		}
	})
	t.Run("dcl-spin-is-fixed", func(t *testing.T) {
		m, err := Get("dcl-spin").Compile()
		if err != nil {
			t.Fatal(err)
		}
		// Original fails under WMM.
		orig, err := mc.Check(m, mc.Options{
			Model: memmodel.ModelWMM, Entries: []string{"mc_main"},
			TimeBudget: 5 * time.Second, StopAtFirst: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if orig.Verdict != mc.VerdictFail {
			t.Fatalf("original dcl-spin did not fail under WMM (%s)", orig.Verdict)
		}
		ported, _, err := atomig.PortClone(m, atomig.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(ported, mc.Options{
			Model: memmodel.ModelWMM, Entries: []string{"mc_main"},
			TimeBudget: 5 * time.Second, StopAtFirst: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == mc.VerdictFail {
			t.Errorf("ported dcl-spin failed: %v", res.Violations)
		}
	})
}
