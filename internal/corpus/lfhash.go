package corpus

// The lock-free hash table extracted from MariaDB (Table 2's lf-hash
// row, Table 5's lf-hash row, and the bug of Figure 7). Buckets hold
// singly linked lists; insertion pushes with CAS; search validates a
// node's state optimistically; deletion invalidates with CAS and then
// clears the value — the plain clear is the store that escapes the
// cmpxchg's release ordering on WMM.

// LfHash is the table benchmark.
var LfHash = register(&Program{
	Name: "lf_hash",
	Desc: "lock-free hash table (MariaDB lf-hash): CAS insert, optimistic search",
	Source: `
struct lfnode { int key; int val; int state; struct lfnode *next; };

struct lfnode pool[1024];
int pool_next;
struct lfnode *buckets[8];

struct lfnode *alloc_node(void) {
  int i = __faa(&pool_next, 1);
  return &pool[i];
}

void insert(int k, int v) {
  struct lfnode *n = alloc_node();
  n->key = k;
  n->val = v;
  n->state = 1;
  struct lfnode *h = buckets[k % 8];
  n->next = h;
  while (__cas(&buckets[k % 8], h, n) != h) {
    h = buckets[k % 8];
    n->next = h;
  }
}

int search(int k) {
  struct lfnode *n = buckets[k % 8];
  while (n != 0) {
    if (n->key == k) {
      // Validated read, as in MariaDB's l_find (Figure 7): retry until
      // the state is stable around the value read.
      int state;
      int val;
      do {
        state = n->state;
        val = n->val;
      } while (state != n->state);
      if (state == 1) { return val; }
      return -1;
    }
    n = n->next;
  }
  return -1;
}

int delete(int k) {
  struct lfnode *n = buckets[k % 8];
  while (n != 0) {
    if (n->key == k) {
      if (__cas(&n->state, 1, 2) == 1) {
        n->val = 0;
        return 1;
      }
      return 0;
    }
    n = n->next;
  }
  return 0;
}

// Model-checking harness: a found key must never expose the cleared
// value of a deleted node while its state still reads valid.
void searcher(void) {
  int r = search(5);
  assert(r == 42 || r == -1);
}

void deleter(void) {
  delete(5);
}

void mc_main(void) {
  insert(5, 42);
  spawn(searcher);
  spawn(deleter);
  join();
}

// Performance harness: two clients run mixed operations, maintaining
// the shared statistics counters the surrounding application keeps (a
// naïve port makes these sequentially consistent; atomig leaves them
// alone because no synchronization pattern touches them).
int total_ops;
int op_histogram[4];

int prepare_key(int seed) {
  int k = seed;
  for (int j = 0; j < 4; j = j + 1) {
    k = (k * 31 + 17) % 4096;
  }
  return k % 16;
}

void account(int kind) {
  total_ops = total_ops + 1;
  op_histogram[kind] = op_histogram[kind] + 1;
}

void perf_client0(void) {
  for (int i = 0; i < 1500; i = i + 1) {
    int k = prepare_key(i);
    if (i % 3 == 0) {
      insert(k, k + 100);
      account(0);
    } else {
      int r = search(k);
      assert(r == -1 || r == 0 || r == k + 100);
      account(1);
    }
  }
}

void perf_client1(void) {
  for (int i = 0; i < 1500; i = i + 1) {
    int k = prepare_key(i + 8);
    if (i % 5 == 0) {
      delete(k);
      account(0);
    } else {
      int r = search(k);
      assert(r == -1 || r == 0 || r == k + 100);
      account(1);
    }
  }
}

void perf_main(void) {
  spawn(perf_client0);
  spawn(perf_client1);
  join();
}
`,
	MCEntries:   []string{"mc_main"},
	PerfEntries: []string{"perf_main"},
	PerfSteps:   80_000_000,
})
