package corpus

// Known-limitation programs. The paper is explicit that AtoMig "does
// not currently find other synchronization points that cannot be traced
// back to a variable used in a spinloop" (section 6). These programs
// pin that boundary down so regressions in either direction — silently
// starting to miss detectable patterns, or silently claiming patterns
// the heuristic cannot see — show up in tests.

// DCL is double-checked locking with a straight-line fast path: the
// reader checks the init flag once (no loop) and then uses the object.
// There is no spinloop anywhere, so the pattern is invisible to the
// pipeline — a documented false negative.
var DCL = register(&Program{
	Name: "dcl",
	Desc: "double-checked locking: straight-line sync, a documented false negative",
	Source: `
int init_done;
int object;
int lock;

int get_object(void) {
  if (init_done == 0) {
    while (__cas(&lock, 0, 1) != 0) { }
    if (init_done == 0) {
      object = 42;
      init_done = 1;
    }
    lock = 0;
  }
  return object;
}

void user(void) {
  int v = get_object();
  assert(v == 42);
}

void mc_main(void) {
  spawn(user);
  spawn(user);
  join();
}
`,
	MCEntries: []string{"mc_main"},
})

// DCLSpin is the same program with the fast-path check written as the
// retry loop real systems often use. Now init_done feeds a spinloop,
// and the pipeline repairs the whole pattern — the boundary is exactly
// whether the synchronization variable ever appears in a loop.
var DCLSpin = register(&Program{
	Name: "dcl-spin",
	Desc: "double-checked locking with a waiting fast path: detected and fixed",
	Source: `
int init_done;
int object;
int lock;

int get_object(void) {
  if (__cas(&lock, 0, 1) == 0) {
    if (init_done == 0) {
      object = 42;
      init_done = 1;
    }
    lock = 0;
  } else {
    while (init_done == 0) { }
  }
  return object;
}

void user(void) {
  int v = get_object();
  assert(v == 42);
}

void mc_main(void) {
  spawn(user);
  spawn(user);
  join();
}
`,
	MCEntries: []string{"mc_main"},
})
