package corpus

// Litmus tests and the paper's figure examples.

// MP is Figure 1: message passing through a spinloop on flag.
var MP = register(&Program{
	Name: "mp",
	Desc: "message passing (Figure 1/5): writer publishes msg via flag",
	Source: `
int flag;
int msg;

void writer(void) {
  msg = 1;
  flag = 1;
}

void reader(void) {
  while (flag == 0) { }
  assert(msg == 1);
}
`,
	MCEntries:   []string{"reader", "writer"},
	PerfEntries: []string{"reader", "writer"},
})

// SB is the store-buffering litmus test: distinguishes SC from TSO.
var SB = register(&Program{
	Name: "sb",
	Desc: "store buffering litmus: r0==r1==0 reachable under TSO/WMM",
	Source: `
int x;
int y;
int r0 = -1;
int r1 = -1;

void t0(void) { x = 1; r0 = y; }
void t1(void) { y = 1; r1 = x; }

void main_thread(void) {
  spawn(t0);
  spawn(t1);
  join();
  assert(r0 + r1 != 0);
}
`,
	MCEntries: []string{"main_thread"},
})

// CoRR checks per-location coherence: two reads of the same location by
// one thread never go backwards.
var CoRR = register(&Program{
	Name: "corr",
	Desc: "coherence litmus: same-location reads never go backwards",
	Source: `
int x;

void writer(void) { x = 1; x = 2; }

void reader(void) {
  int a = x;
  int b = x;
  assert(b >= a);
}

void main_thread(void) {
  spawn(writer);
  spawn(reader);
  join();
}
`,
	MCEntries: []string{"main_thread"},
})

// Seqlock is Figure 6: an optimistic reader validated by a sequence
// counter. The assertion encodes the seqlock protocol invariant: a
// stable even counter means the data matches that generation.
var Seqlock = register(&Program{
	Name: "seqlock",
	Desc: "sequence lock (Figure 6): optimistic read validated by counter",
	Source: `
int seq;
int msg;

void writer(void) {
  seq++;
  msg = 7;
  seq++;
}

void reader(void) {
  int s;
  int data;
  do {
    s = seq;
    data = msg;
  } while (s % 2 != 0 || s != seq);
  if (s == 0) { assert(data == 0); }
  if (s == 2) { assert(data == 7); }
}
`,
	MCEntries:   []string{"reader", "writer"},
	PerfEntries: []string{"reader", "writer"},
})

// TASLock is Figure 4: a test-and-set spinlock protecting a counter.
var TASLock = register(&Program{
	Name: "tas",
	Desc: "test-and-set lock (Figure 4) protecting a shared counter",
	Source: `
int locked;
int data;

void locker(void) {
  while (__cas(&locked, 0, 1) != 0) { }
  data = data + 1;
  locked = 0;
}

void t0(void) { locker(); }
void t1(void) { locker(); }

void main_thread(void) {
  spawn(t0);
  spawn(t1);
  join();
  assert(data == 2);
}
`,
	MCEntries: []string{"main_thread"},
})

// LfHashFig7 abstracts the MariaDB lock-free hash bug of Figure 7: a
// finder validating a node's state races with a deleter whose cmpxchg
// release does not order the subsequent key overwrite.
var LfHashFig7 = register(&Program{
	Name: "lfhash-fig7",
	Desc: "MariaDB lf-hash WMM bug (Figure 7): stale VALID state with deleted key",
	Source: `
struct node { int state; int key; };
struct node n;

void finder(void) {
  n.state = 1;
  n.key = 42;
  spawn(deleter);
  int state;
  int key;
  do {
    state = n.state;
    key = n.key;
  } while (state != n.state);
  if (state == 1) {
    assert(key == 42);
  }
  join();
}

void deleter(void) {
  if (__cas(&n.state, 1, 2) == 1) {
    n.key = 0;
  }
}
`,
	MCEntries: []string{"finder"},
})
