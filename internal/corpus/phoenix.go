package corpus

// The Phoenix 2.0 map-reduce benchmarks of Table 6. The workers only
// synchronize through library barriers between trivially parallel
// phases, so a pattern-based porter should add (almost) nothing — the
// table's point. Workloads follow optimized map-reduce practice: input
// chunks are staged into locals where the kernel is compute-bound
// (kmeans, matrix_multiply, linear_regression), while histogram and
// string_match stream global data per element.

// PhoenixHistogram counts pixel values into per-worker bins.
var PhoenixHistogram = register(&Program{
	Name: "histogram",
	Desc: "Phoenix histogram: per-element global reads and bin updates",
	Source: `
int image[2048];
int bins0[16];
int bins1[16];
int total[16];

void fill(void) {
  int x = 5;
  for (int i = 0; i < 2048; i = i + 1) {
    x = (x * 7 + 3) % 16;
    image[i] = x;
  }
}

void worker0(void) {
  for (int pass = 0; pass < 4; pass = pass + 1) {
    for (int i = 0; i < 1024; i = i + 1) {
      int v = image[i];
      bins0[v] = bins0[v] + 1;
    }
  }
  barrier(3);
}

void worker1(void) {
  for (int pass = 0; pass < 4; pass = pass + 1) {
    for (int i = 1024; i < 2048; i = i + 1) {
      int v = image[i];
      bins1[v] = bins1[v] + 1;
    }
  }
  barrier(3);
}

void main_thread(void) {
  fill();
  spawn(worker0);
  spawn(worker1);
  barrier(3);
  join();
  int sum = 0;
  for (int b = 0; b < 16; b = b + 1) {
    total[b] = bins0[b] + bins1[b];
    sum = sum + total[b];
  }
  assert(sum == 4 * 2048);
}
`,
	PerfEntries: []string{"main_thread"},
	PerfSteps:   80_000_000,
})

// PhoenixKMeans assigns points to the nearest of four centroids,
// staging each point into locals before the distance computation.
var PhoenixKMeans = register(&Program{
	Name: "kmeans",
	Desc: "Phoenix kmeans: staged points, local distance computation",
	Source: `
int px[512];
int py[512];
int cx[4] = {10, 90, 10, 90};
int cy[4] = {10, 10, 90, 90};
int assign0[512];
int count0;
int count1;

void fill(void) {
  int x = 7;
  for (int i = 0; i < 512; i = i + 1) {
    x = (x * 1103515245 + 12345) % 100;
    if (x < 0) { x = -x; }
    px[i] = x;
    x = (x * 16807 + 7) % 100;
    if (x < 0) { x = -x; }
    py[i] = x;
  }
}

int nearest(int x, int y, int c0x, int c0y, int c1x, int c1y, int c2x, int c2y, int c3x, int c3y) {
  int best = 0;
  int bd = (x - c0x) * (x - c0x) + (y - c0y) * (y - c0y);
  int d = (x - c1x) * (x - c1x) + (y - c1y) * (y - c1y);
  if (d < bd) { bd = d; best = 1; }
  d = (x - c2x) * (x - c2x) + (y - c2y) * (y - c2y);
  if (d < bd) { bd = d; best = 2; }
  d = (x - c3x) * (x - c3x) + (y - c3y) * (y - c3y);
  if (d < bd) { bd = d; best = 3; }
  return best;
}

void assign_range(int lo, int hi, int *counter) {
  // Stage the centroids once; they are read-only during a pass.
  int c0x = cx[0]; int c0y = cy[0];
  int c1x = cx[1]; int c1y = cy[1];
  int c2x = cx[2]; int c2y = cy[2];
  int c3x = cx[3]; int c3y = cy[3];
  int done = 0;
  for (int i = lo; i < hi; i = i + 1) {
    int x = px[i];
    int y = py[i];
    assign0[i] = nearest(x, y, c0x, c0y, c1x, c1y, c2x, c2y, c3x, c3y);
    done = done + 1;
  }
  *counter = done;
}

void worker0(void) {
  assign_range(0, 256, &count0);
  barrier(3);
}

void worker1(void) {
  assign_range(256, 512, &count1);
  barrier(3);
}

void main_thread(void) {
  fill();
  spawn(worker0);
  spawn(worker1);
  barrier(3);
  join();
  assert(count0 + count1 == 512);
}
`,
	PerfEntries: []string{"main_thread"},
	PerfSteps:   80_000_000,
})

// PhoenixLinearRegression accumulates regression sums over a staged
// input stream.
var PhoenixLinearRegression = register(&Program{
	Name: "linear_regression",
	Desc: "Phoenix linear_regression: staged chunks, local accumulation",
	Source: `
int xs[2048];
int ys[2048];
int sx0; int sy0; int sxx0; int sxy0;
int sx1; int sy1; int sxx1; int sxy1;

void fill(void) {
  for (int i = 0; i < 2048; i = i + 1) {
    xs[i] = i % 97;
    ys[i] = (3 * (i % 97) + 7) % 128;
  }
}

void range_sums(int lo, int hi, int *osx, int *osy, int *osxx, int *osxy) {
  int sx = 0; int sy = 0; int sxx = 0; int sxy = 0;
  int bufx[16];
  int bufy[16];
  for (int c = lo; c < hi; c = c + 16) {
    for (int j = 0; j < 16; j = j + 1) {
      bufx[j] = xs[c + j];
      bufy[j] = ys[c + j];
    }
    for (int j = 0; j < 16; j = j + 1) {
      int x = bufx[j];
      int y = bufy[j];
      sx = sx + x;
      sy = sy + y;
      sxx = sxx + x * x;
      sxy = sxy + x * y;
    }
  }
  *osx = sx;
  *osy = sy;
  *osxx = sxx;
  *osxy = sxy;
}

void worker0(void) {
  range_sums(0, 1024, &sx0, &sy0, &sxx0, &sxy0);
  barrier(3);
}

void worker1(void) {
  range_sums(1024, 2048, &sx1, &sy1, &sxx1, &sxy1);
  barrier(3);
}

void main_thread(void) {
  fill();
  spawn(worker0);
  spawn(worker1);
  barrier(3);
  join();
  assert(sxx0 + sxx1 > 0);
  assert(sx0 + sx1 > 0);
}
`,
	PerfEntries: []string{"main_thread"},
	PerfSteps:   80_000_000,
})

// PhoenixMatrixMultiply multiplies staged rows against a staged column
// block — the inner loop touches locals only.
var PhoenixMatrixMultiply = register(&Program{
	Name: "matrix_multiply",
	Desc: "Phoenix matrix_multiply: row/column staging, local inner loop",
	Source: `
int A[1024];
int B[1024];
int C[1024];
int done0;
int done1;

void fill(void) {
  for (int i = 0; i < 1024; i = i + 1) {
    A[i] = i % 7 + 1;
    B[i] = i % 5 + 1;
  }
}

void mult_rows(int lo, int hi, int *done) {
  int arow[32];
  int bcol[32];
  int n = 0;
  for (int r = lo; r < hi; r = r + 1) {
    for (int j = 0; j < 32; j = j + 1) {
      arow[j] = A[r * 32 + j];
    }
    for (int col = 0; col < 32; col = col + 1) {
      for (int j = 0; j < 32; j = j + 1) {
        bcol[j] = B[j * 32 + col];
      }
      int acc = 0;
      for (int j = 0; j < 32; j = j + 1) {
        acc = acc + arow[j] * bcol[j];
      }
      C[r * 32 + col] = acc;
      n = n + 1;
    }
  }
  *done = n;
}

void worker0(void) {
  mult_rows(0, 16, &done0);
  barrier(3);
}

void worker1(void) {
  mult_rows(16, 32, &done1);
  barrier(3);
}

void main_thread(void) {
  fill();
  spawn(worker0);
  spawn(worker1);
  barrier(3);
  join();
  assert(done0 + done1 == 1024);
  assert(C[0] > 0);
}
`,
	PerfEntries: []string{"main_thread"},
	PerfSteps:   200_000_000,
})

// PhoenixStringMatch streams the global text, comparing a staged
// needle at every offset.
var PhoenixStringMatch = register(&Program{
	Name: "string_match",
	Desc: "Phoenix string_match: streaming global text scan",
	Source: `
int text[4096];
int needle[4] = {3, 1, 4, 1};
int found0;
int found1;

void fill(void) {
  int x = 9;
  for (int i = 0; i < 4096; i = i + 1) {
    x = (x * 7 + 3) % 10;
    text[i] = x;
  }
  // Plant a handful of guaranteed matches.
  for (int m = 0; m < 8; m = m + 1) {
    int base = m * 512;
    text[base] = 3;
    text[base + 1] = 1;
    text[base + 2] = 4;
    text[base + 3] = 1;
  }
}

int scan(int lo, int hi) {
  int n0 = needle[0];
  int n1 = needle[1];
  int n2 = needle[2];
  int n3 = needle[3];
  int hits = 0;
  for (int pass = 0; pass < 3; pass = pass + 1) {
    for (int i = lo; i < hi; i = i + 1) {
      if (text[i] == n0) {
        if (text[i + 1] == n1 && text[i + 2] == n2 && text[i + 3] == n3) {
          hits = hits + 1;
        }
      }
    }
  }
  return hits / 3;
}

void worker0(void) {
  found0 = scan(0, 2048);
  barrier(3);
}

void worker1(void) {
  found1 = scan(2048, 4092);
  barrier(3);
}

void main_thread(void) {
  fill();
  spawn(worker0);
  spawn(worker1);
  barrier(3);
  join();
  assert(found0 + found1 >= 8);
}
`,
	PerfEntries: []string{"main_thread"},
	PerfSteps:   80_000_000,
})

// PhoenixNames lists the Table 6 rows in paper order.
var PhoenixNames = []string{
	"histogram", "kmeans", "linear_regression", "matrix_multiply", "string_match",
}
