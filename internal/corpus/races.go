package corpus

// Race-detection corpus: litmus programs whose defining property is the
// data race itself rather than an assertion failure. The happens-before
// detector (internal/race) must flag every program here on its legacy
// TSO source, and the ported variants (atomig.Port for the
// synchronization-pattern programs, transform.Naive for the pure litmus
// races) must come out race-free.

// LB is the load-buffering litmus test: each thread reads one variable
// before writing the other. The view-based machines never produce the
// r0==r1==1 outcome (that needs promises), but the plain cross-thread
// accesses are unordered — a data race under every model.
var LB = register(&Program{
	Name: "lb",
	Desc: "load buffering litmus: racy cross-thread plain accesses",
	Source: `
int x;
int y;
int r0 = -1;
int r1 = -1;

void t0(void) { r0 = y; x = 1; }
void t1(void) { r1 = x; y = 1; }

void main_thread(void) {
  spawn(t0);
  spawn(t1);
  join();
  assert(r0 == 0 || r1 == 0);
}
`,
	MCEntries: []string{"main_thread"},
})

// IRIW is independent-reads-of-independent-writes: two writers to
// distinct variables and two readers observing them in opposite orders.
// There is no assertion — the interesting outcome (readers disagreeing
// on the write order) is legal under WMM — but every access is a plain
// racy access.
var IRIW = register(&Program{
	Name: "iriw",
	Desc: "IRIW litmus: independent readers may disagree on write order",
	Source: `
int x;
int y;
int r0;
int r1;
int r2;
int r3;

void w0(void) { x = 1; }
void w1(void) { y = 1; }
void rd0(void) { r0 = x; r1 = y; }
void rd1(void) { r2 = y; r3 = x; }

void main_thread(void) {
  spawn(w0);
  spawn(w1);
  spawn(rd0);
  spawn(rd1);
  join();
}
`,
	MCEntries: []string{"main_thread"},
})

// SeqlockGap is the detector's flagship migration-gap program: a
// generation-counter publication where the reader was already ported to
// an SC atomic load but the writer's counter stores were left plain — a
// sticky buddy the port must find (the %gen:0 field). Under WMM the
// plain g.seq=2 store releases nothing, so the reader's data reads race
// with the writer's stores; after a full atomig port (seeded by the
// reader's atomic load, closed under type-based aliasing) the program
// is race-free. There is deliberately no assertion: the program's
// correctness property IS race-freedom, which the detector checks
// without needing the racy outcome to corrupt an observable value.
var SeqlockGap = register(&Program{
	Name: "seqlock-gap",
	Desc: "generation counter with un-ported writer stores (migration gap on %gen:0)",
	Source: `
struct gen { int seq; int a; int b; };
struct gen g;
int ra;
int rb;

void writer(void) {
  g.seq = 1;
  g.a = 7;
  g.b = 9;
  g.seq = 2;
}

void reader(void) {
  while (__load_sc(&g.seq) != 2) { }
  ra = g.a;
  rb = g.b;
}
`,
	MCEntries:   []string{"reader", "writer"},
	PerfEntries: []string{"reader", "writer"},
})
