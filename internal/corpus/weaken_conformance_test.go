package corpus

import (
	"testing"
	"time"

	"repro/internal/atomig"
	"repro/internal/mc"
	"repro/internal/weaken"
)

// TestLitmusConformanceWeakened extends the litmus suite through the
// post-port optimizer: every conformance program is ported and then
// weakened at -j 1 and -j 4, and the verdict must be exactly the
// after-port verdict the suite already pins — weakening is allowed to
// remove cost, never to change what the checker concludes. Programs
// whose after-port verdict is a violation exercise the refusal path
// (the optimizer must leave them untouched); the rest exercise the
// acceptance rule end to end. The weakened module must also be
// byte-identical across worker counts, and its cost must never
// increase.
func TestLitmusConformanceWeakened(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.program, func(t *testing.T) {
			p := Get(c.program)
			if p == nil {
				t.Fatalf("program %q not in corpus", c.program)
			}
			orig, err := p.Compile()
			if err != nil {
				t.Fatal(err)
			}
			ported, _, err := atomig.PortClone(orig, atomig.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			texts := make(map[int]string)
			for _, j := range []int{1, 4} {
				// DetectRaces mirrors the suite's per-program setting: the
				// programs checked without the detector are exactly those
				// whose fingerprinted state space is intractable
				// (docs/WEAKENING.md).
				wopts := weaken.DefaultOptions(p.MCEntries)
				wopts.DetectRaces = c.detectRaces
				wopts.Workers = j
				wopts.TimeBudget = time.Minute
				weakened, res, err := weaken.OptimizeClone(ported, wopts)
				if err != nil {
					t.Fatalf("weaken -j %d: %v", j, err)
				}
				if res.CostAfter > res.CostBefore {
					t.Errorf("-j %d: cost increased %d -> %d", j, res.CostBefore, res.CostAfter)
				}
				if c.after != mc.VerdictPass && c.after != mc.VerdictRace && res.Accepted != 0 {
					t.Errorf("-j %d: optimizer accepted %d weakenings on a violating baseline", j, res.Accepted)
				}
				texts[j] = weakened.String()
				got := checkConformance(t, &mcModule{weakened, p.MCEntries}, c, 1)
				if got != c.after {
					t.Errorf("after port+weaken -j %d: verdict %s, want %s (%s)", j, got, c.after, c.note)
				}
			}
			if texts[1] != texts[4] {
				t.Errorf("weakened module differs between -j 1 and -j 4")
			}
		})
	}
}
