// Package diag provides the panic-containment boundary used by the
// public entry points of the verification stack (vm.Run, mc.Check,
// atomig.Port, minic.Compile, ir.ParseModule). An internal invariant
// violation anywhere below those entry points surfaces as a structured
// *InternalError carrying the failing stage and a captured stack trace,
// instead of crashing the calling tool: the CLIs turn it into a
// diagnostic message and a nonzero exit code, and fuzzers can record it
// as a finding with enough context to reproduce.
package diag

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
)

// InternalError is a contained panic: an internal bug in one of the
// stack's stages, reported as an error instead of a crash.
type InternalError struct {
	// Stage is the public entry point whose guard caught the panic,
	// e.g. "vm.Run" or "ir.ParseModule".
	Stage string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery time.
	Stack string
}

// Error renders the one-line form used in CLI output.
func (e *InternalError) Error() string {
	return fmt.Sprintf("%s: internal error: %v", e.Stage, e.Value)
}

// Diagnostics renders the full report: the error line plus the captured
// stack, trimmed to the frames below the guard.
func (e *InternalError) Diagnostics() string {
	var b strings.Builder
	b.WriteString(e.Error())
	b.WriteByte('\n')
	b.WriteString(e.Stack)
	return b.String()
}

// Guard is the recovery boundary. Use as
//
//	func Entry() (err error) {
//	    defer diag.Guard("pkg.Entry", &err)
//	    ...
//	}
//
// A panic below the deferred call is converted into an *InternalError
// assigned to *err; a normal return (including an error return) passes
// through untouched.
func Guard(stage string, err *error) {
	if r := recover(); r != nil {
		*err = &InternalError{Stage: stage, Value: r, Stack: string(debug.Stack())}
	}
}

// AsInternal reports whether err wraps an *InternalError and returns it.
func AsInternal(err error) (*InternalError, bool) {
	var ie *InternalError
	if errors.As(err, &ie) {
		return ie, true
	}
	return nil, false
}
