// Package difftest is the differential stress harness of the hardened
// verification stack: it runs a schedule-independent concurrent program
// under sequential consistency to obtain the reference final state, then
// ports the program with the atomig pipeline and re-executes it under
// the weak memory model across every fault-injection scheduler mode,
// failing on any divergence in final global state, thread returns, or
// termination status.
//
// The model checker (internal/mc) proves small programs exhaustively;
// this harness is the complementary randomized check that the whole
// stack — MiniC frontend, porting pipeline, view-machine memory model,
// adversarial schedulers — composes correctly on larger generated
// programs (internal/appgen.RunnableProgram).
package difftest

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/atomig"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/race"
	"repro/internal/transform"
	"repro/internal/vm"
)

// Options configures a differential run.
type Options struct {
	// Seeds drives both the SC self-consistency check and the per-mode
	// weak-memory runs. Empty selects DefaultSeeds.
	Seeds []int64
	// Modes are the scheduler modes to stress. Empty selects every mode.
	Modes []vm.SchedMode
	// MaxSteps bounds each execution (0 = a generous default; the
	// adversarial schedulers stretch spin phases far beyond what a
	// uniform schedule needs).
	MaxSteps int64
	// Port configures the porting pipeline. Zero value selects
	// atomig.DefaultOptions.
	Port *atomig.Options
	// DetectRaces additionally runs the happens-before race detector
	// over the ported program's weak-memory executions. A race in the
	// ported program is compared against a naive all-SC port of the same
	// source (the paper's always-correct baseline): if the ported
	// program races while the naive port does not, the port missed an
	// access it should have promoted — a differential failure even when
	// the final states happen to agree.
	DetectRaces bool
	// Workers fans the seeded executions (SC reference runs, per-mode
	// weak-memory runs, race sweeps) out across that many goroutines.
	// Every (mode, seed) cell is independent, and on failure the error
	// of the earliest cell in grid order is reported, so the outcome is
	// identical for every worker count. 0 or 1 runs sequentially.
	Workers int
	// Obs, when non-nil, traces the harness stages on the "difftest"
	// track, counts grid progress (difftest.cells_completed,
	// difftest.reference_runs_completed), and threads through to the
	// pipeline, VM and race-sweep metrics.
	Obs *obs.Provider
}

// DefaultSeeds is the seed set used when Options.Seeds is empty.
func DefaultSeeds() []int64 { return []int64{1, 2, 3, 4} }

const defaultMaxSteps = 4_000_000

// Result summarizes a passing differential run.
type Result struct {
	// Reference is the canonical final global state from the SC run.
	Reference map[string][]int64
	// Runs is the number of weak-memory executions compared.
	Runs int
	// RaceExecutions is the number of detector-attached executions when
	// Options.DetectRaces is set.
	RaceExecutions int
}

// Run compiles src, establishes the SC reference state, ports the
// module, and checks every (mode, seed) weak-memory execution of the
// ported program against the reference. A non-nil error describes the
// first divergence or infrastructure failure.
func Run(src string, entries []string, opts Options) (*Result, error) {
	seeds := opts.Seeds
	if len(seeds) == 0 {
		seeds = DefaultSeeds()
	}
	modes := opts.Modes
	if len(modes) == 0 {
		modes = vm.AllSchedModes()
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	port := atomig.DefaultOptions()
	if opts.Port != nil {
		port = *opts.Port
	}
	if port.Obs == nil {
		port.Obs = opts.Obs
	}
	trk := opts.Obs.Track("difftest")
	rs := trk.Begin("difftest.run")
	defer rs.End()

	sp := trk.Begin("difftest.compile")
	res, err := minic.Compile("difftest", src)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("difftest: compile: %w", err)
	}

	// Reference: the program must be schedule-independent under SC, so
	// every seeded SC run must agree. A mismatch here means the input
	// program is invalid for differential testing (the generator broke
	// its own determinism contract), which is itself a bug worth failing.
	snaps := make([]map[string][]int64, len(seeds))
	rets := make([][]int64, len(seeds))
	cRef := opts.Obs.Counter("difftest.reference_runs_completed")
	sp = trk.Begin("difftest.reference")
	err = gridRun(len(seeds), opts.Workers, func(i int) error {
		snap, returns, err := execute(res.Module, vm.Options{
			Model:      memmodel.ModelSC,
			Entries:    entries,
			Controller: vm.NewScheduler(vm.SchedRandom, seeds[i]),
			MaxSteps:   maxSteps,
			Watchdog:   true,
			Obs:        opts.Obs,
		})
		if err != nil {
			return fmt.Errorf("difftest: SC reference (seed %d): %w", seeds[i], err)
		}
		snaps[i], rets[i] = snap, returns
		cRef.Inc()
		return nil
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	ref, refReturns := snaps[0], rets[0]
	for i := 1; i < len(seeds); i++ {
		if diff := diffState(ref, refReturns, snaps[i], rets[i]); diff != "" {
			return nil, fmt.Errorf("difftest: program is schedule-dependent under SC (seed %d): %s", seeds[i], diff)
		}
	}

	ported, _, err := atomig.PortClone(res.Module, port)
	if err != nil {
		return nil, fmt.Errorf("difftest: port: %w", err)
	}

	cells := len(modes) * len(seeds)
	cCells := opts.Obs.Counter("difftest.cells_completed")
	sp = trk.Begin("difftest.grid").Arg("cells", cells)
	err = gridRun(cells, opts.Workers, func(i int) error {
		// The caller's seed anchors the cell; vm.GridSeed folds the mode
		// in so no two grid cells hand their schedulers the same RNG
		// stream (reusing the bare seed across modes would replay the
		// same PickNondet sequence in every mode of a column).
		mode, seed := modes[i/len(seeds)], seeds[i%len(seeds)]
		snap, returns, err := execute(ported, vm.Options{
			Model:      memmodel.ModelWMM,
			Entries:    entries,
			Controller: vm.NewScheduler(mode, vm.GridSeed(seed, mode, 0)),
			MaxSteps:   maxSteps,
			Watchdog:   true,
			Obs:        opts.Obs,
		})
		if err != nil {
			return fmt.Errorf("difftest: ported under WMM, sched=%s seed=%d: %w", mode, seed, err)
		}
		if diff := diffState(ref, refReturns, snap, returns); diff != "" {
			return fmt.Errorf("difftest: divergence under WMM, sched=%s seed=%d: %s", mode, seed, diff)
		}
		cCells.Inc()
		return nil
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	out := &Result{Reference: ref, Runs: cells}

	if opts.DetectRaces {
		sp = trk.Begin("difftest.race_sweep")
		n, err := checkRaces(res.Module, ported, entries, modes, len(seeds), maxSteps, opts.Workers, opts.Obs)
		sp.End()
		if err != nil {
			return nil, err
		}
		out.RaceExecutions = n
	}
	return out, nil
}

// gridRun evaluates fn for every index in [0, n) across workers
// goroutines. A sequential loop reports the first error it hits;
// gridRun reports the error of the lowest index, so the observed
// failure is the same one regardless of worker count. fn must be safe
// to call concurrently for distinct indices.
func gridRun(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	// A panic in fn is contained as that index's error (stack attached),
	// not left to kill the process from a pool goroutine.
	runIdx := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &diag.InternalError{
					Stage: "difftest.grid", Value: r, Stack: string(debug.Stack()),
				}
			}
		}()
		return fn(i)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runIdx(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// checkRaces sweeps the ported module for data races across the
// scheduler modes and, when any are found, repeats the sweep on a naive
// all-SC port of the original source as the control. Racy ported +
// clean control = the atomig port missed a promotion; racy control too
// = the program itself is racy beyond what any porting strategy fixes
// (reported as an infrastructure error, since difftest inputs are
// generated to be data-race-free once fully ported).
func checkRaces(orig, ported *ir.Module, entries []string, modes []vm.SchedMode, seeds int, maxSteps int64, workers int, p *obs.Provider) (int, error) {
	sweep := func(m *ir.Module) (*race.SweepResult, error) {
		return race.Sweep(m, race.SweepOptions{
			Model:    memmodel.ModelWMM,
			Entries:  entries,
			Modes:    modes,
			Seeds:    seeds,
			MaxSteps: maxSteps,
			Workers:  workers,
			Obs:      p,
		})
	}
	pres, err := sweep(ported)
	if err != nil {
		return 0, fmt.Errorf("difftest: race sweep of ported program: %w", err)
	}
	if pres.Detector.Races() == 0 {
		return pres.Executions, nil
	}
	control, err := ir.CloneModule(orig)
	if err != nil {
		return pres.Executions, fmt.Errorf("difftest: clone for naive control: %w", err)
	}
	transform.Naive(control)
	cres, err := sweep(control)
	if err != nil {
		return pres.Executions, fmt.Errorf("difftest: race sweep of naive control: %w", err)
	}
	if cres.Detector.Races() == 0 {
		return pres.Executions, fmt.Errorf(
			"difftest: ported program races but the naive-SC control does not — the port missed a promotion:\n%s",
			race.FormatReports(pres.Races()))
	}
	return pres.Executions, fmt.Errorf(
		"difftest: program races even under the naive-SC control (%d ported / %d control reports):\n%s",
		pres.Detector.Races(), cres.Detector.Races(), race.FormatReports(pres.Races()))
}

// execute runs one execution and returns the final global snapshot and
// per-thread returns. Any status other than a clean completion is an
// error; on a step-limit halt the watchdog's livelock diagnosis is
// attached.
func execute(m *ir.Module, opts vm.Options) (map[string][]int64, []int64, error) {
	v, err := vm.New(m, opts)
	if err != nil {
		return nil, nil, err
	}
	out, err := v.Run()
	if err != nil {
		return nil, nil, err
	}
	if out.Status != vm.StatusDone {
		msg := fmt.Sprintf("execution ended with status %s", out.Status)
		if len(out.Livelock) > 0 {
			msg += "\n" + vm.FormatLivelock(out.Livelock)
		}
		if out.FailMsg != "" {
			msg += ": " + out.FailMsg
		}
		return nil, nil, fmt.Errorf("%s", msg)
	}
	return v.Snapshot(), out.Returns, nil
}

// diffState reports the first difference between two final states, or
// "" when they are identical.
func diffState(refSnap map[string][]int64, refReturns []int64, snap map[string][]int64, returns []int64) string {
	if len(returns) != len(refReturns) {
		return fmt.Sprintf("thread count %d != %d", len(returns), len(refReturns))
	}
	for i := range refReturns {
		if returns[i] != refReturns[i] {
			return fmt.Sprintf("thread %d returned %d, reference %d", i, returns[i], refReturns[i])
		}
	}
	names := make([]string, 0, len(refSnap))
	for n := range refSnap {
		names = append(names, n)
	}
	sort.Strings(names)
	var diffs []string
	for _, n := range names {
		want, got := refSnap[n], snap[n]
		if len(got) != len(want) {
			diffs = append(diffs, fmt.Sprintf("%s: %d cells vs %d", n, len(got), len(want)))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				diffs = append(diffs, fmt.Sprintf("%s[%d] = %d, reference %d", n, i, got[i], want[i]))
			}
		}
	}
	if len(snap) != len(refSnap) {
		diffs = append(diffs, fmt.Sprintf("global count %d != %d", len(snap), len(refSnap)))
	}
	if len(diffs) == 0 {
		return ""
	}
	return strings.Join(diffs, "; ")
}
