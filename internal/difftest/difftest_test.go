package difftest

import (
	"strings"
	"testing"

	"repro/internal/appgen"
	"repro/internal/atomig"
	"repro/internal/vm"
)

// TestPortedProgramsMatchSCReference is the acceptance check for the
// differential harness: generated concurrent programs, ported by the
// full pipeline, must reproduce the SC reference state under WMM for
// every fault-injection scheduler mode.
func TestPortedProgramsMatchSCReference(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		src, entries := appgen.RunnableProgram(seed)
		res, err := Run(src, entries, Options{})
		if err != nil {
			t.Fatalf("program seed %d: %v\nsource:\n%s", seed, err, src)
		}
		wantRuns := len(vm.AllSchedModes()) * len(DefaultSeeds())
		if res.Runs != wantRuns {
			t.Fatalf("program seed %d: %d runs, want %d", seed, res.Runs, wantRuns)
		}
		if len(res.Reference) == 0 {
			t.Fatalf("program seed %d: empty reference snapshot", seed)
		}
	}
}

// TestRunnableProgramDeterministic: the generator is pure in its seed.
func TestRunnableProgramDeterministic(t *testing.T) {
	srcA, entA := appgen.RunnableProgram(42)
	srcB, entB := appgen.RunnableProgram(42)
	if srcA != srcB || strings.Join(entA, ",") != strings.Join(entB, ",") {
		t.Fatal("RunnableProgram(42) is not deterministic")
	}
	srcC, _ := appgen.RunnableProgram(43)
	if srcA == srcC {
		t.Fatal("distinct seeds produced identical programs")
	}
}

// TestPortIsLoadBearing documents why the harness ports before
// comparing: with the pipeline reduced to explicit annotations only
// (which leaves plain spin flags plain), at least one generated program
// diverges or livelocks under some adversarial schedule. Not every seed
// exposes weakness, so the test only requires that full porting is ever
// load-bearing across the seed sweep.
func TestPortIsLoadBearing(t *testing.T) {
	weak := atomig.DefaultOptions()
	weak.Level = atomig.LevelExplicit
	for seed := int64(1); seed <= 6; seed++ {
		src, entries := appgen.RunnableProgram(seed)
		if _, err := Run(src, entries, Options{Port: &weak, MaxSteps: 300_000}); err != nil {
			t.Logf("seed %d diverges without pattern detection (as expected): %v", seed, err)
			return
		}
	}
	t.Skip("no divergence observed without full porting on these seeds")
}

// gapSrc is a publication protocol whose final state is insensitive to
// the migration gap: the writer's plain g.seq store races with the
// reader's already-atomic load, but every write lands on its initial
// value, so the state comparison alone cannot see the bug. Only the
// race check can.
const gapSrc = `
struct gen { int seq; int pad; };
struct gen g;

void writer(void) {
  g.pad = 0;
  g.seq = 2;
}

void reader(void) {
  while (__load_sc(&g.seq) != 2) { }
}
`

// TestDetectRacesPassesOnCorrectPort: the full pipeline promotes the
// writer's stores (sticky buddies of the reader's atomic load), so the
// race check adds executions and finds nothing.
func TestDetectRacesPassesOnCorrectPort(t *testing.T) {
	res, err := Run(gapSrc, []string{"reader", "writer"}, Options{
		DetectRaces: true, MaxSteps: 300_000,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.RaceExecutions == 0 {
		t.Fatal("race check ran no executions")
	}
}

// TestDetectRacesCatchesMissedPromotion: with the sticky-buddy alias
// exploration disabled (the unsound ablation), the writer's plain
// stores survive the port. Final states still agree — only the race
// check fails, and it must implicate the port rather than the program
// by showing the naive-SC control is clean.
func TestDetectRacesCatchesMissedPromotion(t *testing.T) {
	broken := atomig.DefaultOptions()
	broken.SkipAlias = true
	_, err := Run(gapSrc, []string{"reader", "writer"}, Options{
		DetectRaces: true, MaxSteps: 300_000, Port: &broken,
	})
	if err == nil {
		t.Fatal("race check passed despite the skipped alias exploration")
	}
	if !strings.Contains(err.Error(), "naive-SC control does not") {
		t.Fatalf("error does not implicate the port: %v", err)
	}
}

// TestParallelRunMatchesSequential: Workers must not change the
// outcome — same run count and reference snapshot, races included.
func TestParallelRunMatchesSequential(t *testing.T) {
	src, entries := appgen.RunnableProgram(3)
	seq, err := Run(src, entries, Options{DetectRaces: true})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, j := range []int{2, 8} {
		par, err := Run(src, entries, Options{DetectRaces: true, Workers: j})
		if err != nil {
			t.Fatalf("workers=%d: %v", j, err)
		}
		if par.Runs != seq.Runs || par.RaceExecutions != seq.RaceExecutions {
			t.Errorf("workers=%d: runs=%d raceExecs=%d, want %d/%d",
				j, par.Runs, par.RaceExecutions, seq.Runs, seq.RaceExecutions)
		}
		if len(par.Reference) != len(seq.Reference) {
			t.Errorf("workers=%d: reference size %d, want %d", j, len(par.Reference), len(seq.Reference))
		}
	}
}

// TestParallelRunReportsEarliestFailure: the deterministic-error
// contract — an un-ported racy program must fail with the same
// divergence cell regardless of worker count.
func TestParallelRunReportsEarliestFailure(t *testing.T) {
	weak := atomig.DefaultOptions()
	weak.Level = atomig.LevelExplicit
	for seed := int64(1); seed <= 6; seed++ {
		src, entries := appgen.RunnableProgram(seed)
		_, seqErr := Run(src, entries, Options{Port: &weak, MaxSteps: 300_000})
		if seqErr == nil {
			continue
		}
		for _, j := range []int{2, 8} {
			_, parErr := Run(src, entries, Options{Port: &weak, MaxSteps: 300_000, Workers: j})
			if parErr == nil || parErr.Error() != seqErr.Error() {
				t.Errorf("seed %d workers=%d error drifted:\n got %v\nwant %v", seed, j, parErr, seqErr)
			}
		}
		return
	}
	t.Skip("no seed diverges under the weak port; nothing to compare")
}
