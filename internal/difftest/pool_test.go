package difftest

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/leakcheck"
)

// TestGridRunPanicContained: a panic in one grid cell becomes that
// cell's error — lowest index wins, pool drains, no process abort.
func TestGridRunPanicContained(t *testing.T) {
	leakcheck.Check(t)
	err := gridRun(32, 4, func(i int) error {
		if i == 5 {
			panic("injected cell failure")
		}
		if i == 20 {
			return errors.New("late error")
		}
		return nil
	})
	if err == nil {
		t.Fatal("gridRun swallowed the panic")
	}
	ie, ok := diag.AsInternal(err)
	if !ok {
		t.Fatalf("want diag.InternalError, got %T: %v", err, err)
	}
	if !strings.Contains(ie.Diagnostics(), "injected cell failure") {
		t.Errorf("diagnostics lost the panic value: %s", ie.Error())
	}
}

// TestGridRunLowestErrorWins: the reported error is the lowest failing
// index, matching what a sequential loop would report.
func TestGridRunLowestErrorWins(t *testing.T) {
	leakcheck.Check(t)
	want := errors.New("cell 3")
	err := gridRun(16, 4, func(i int) error {
		switch i {
		case 3:
			return want
		case 9:
			return errors.New("cell 9")
		}
		return nil
	})
	if err != want {
		t.Fatalf("got %v, want %v", err, want)
	}
}
