package ir

import "fmt"

// Builder emits instructions into a function, maintaining a current
// insertion block. It is the construction API used by the MiniC frontend
// lowering and by tests that build IR directly.
type Builder struct {
	Fn  *Func
	Cur *Block
}

// NewBuilder returns a builder positioned at the function's entry block
// (creating one if the function has no blocks yet).
func NewBuilder(f *Func) *Builder {
	b := &Builder{Fn: f}
	if len(f.Blocks) == 0 {
		b.Cur = f.NewBlock("entry")
	} else {
		b.Cur = f.Blocks[0]
	}
	return b
}

// SetBlock moves the insertion point to blk.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

// NewBlock creates a new block in the function without moving the
// insertion point.
func (b *Builder) NewBlock(name string) *Block { return b.Fn.NewBlock(name) }

func (b *Builder) emit(in *Instr) *Instr {
	in.ID = b.Fn.NextID()
	in.Blk = b.Cur
	b.Cur.Instrs = append(b.Cur.Instrs, in)
	return in
}

// Terminated reports whether the current block already ends in a
// terminator, in which case no further instructions may be emitted into
// it.
func (b *Builder) Terminated() bool { return b.Cur.Terminator() != nil }

// Alloca allocates a stack slot for a value of type elem.
func (b *Builder) Alloca(elem Type) *Instr {
	return b.emit(&Instr{Op: OpAlloca, Ty: PointerTo(elem), AllocElem: elem})
}

// Load emits a plain load from addr.
func (b *Builder) Load(addr Value) *Instr {
	elem := Pointee(addr.Type())
	if elem == nil {
		panic(fmt.Sprintf("ir: load from non-pointer %s", addr.Type()))
	}
	return b.emit(&Instr{Op: OpLoad, Ty: elem, Args: []Value{addr}})
}

// LoadOrd emits a load with an explicit memory ordering.
func (b *Builder) LoadOrd(addr Value, ord MemOrder) *Instr {
	in := b.Load(addr)
	in.Ord = ord
	return in
}

// Store emits a plain store of val to addr.
func (b *Builder) Store(addr, val Value) *Instr {
	return b.emit(&Instr{Op: OpStore, Ty: Void, Args: []Value{addr, val}})
}

// StoreOrd emits a store with an explicit memory ordering.
func (b *Builder) StoreOrd(addr, val Value, ord MemOrder) *Instr {
	in := b.Store(addr, val)
	in.Ord = ord
	return in
}

// CmpXchg emits a compare-exchange: if *addr == expected then *addr = nv.
// The result is the old value of *addr (success iff old == expected).
func (b *Builder) CmpXchg(addr, expected, nv Value, ord MemOrder) *Instr {
	elem := Pointee(addr.Type())
	return b.emit(&Instr{Op: OpCmpXchg, Ty: elem, Args: []Value{addr, expected, nv}, Ord: ord})
}

// RMW emits an atomic read-modify-write; the result is the old value.
func (b *Builder) RMW(kind RMWKind, addr, operand Value, ord MemOrder) *Instr {
	elem := Pointee(addr.Type())
	return b.emit(&Instr{Op: OpRMW, Ty: elem, Args: []Value{addr, operand}, RMW: kind, Ord: ord})
}

// Fence emits an explicit memory fence.
func (b *Builder) Fence(ord MemOrder) *Instr {
	return b.emit(&Instr{Op: OpFence, Ty: Void, Ord: ord})
}

// Bin emits a binary arithmetic/logic operation.
func (b *Builder) Bin(kind BinKind, x, y Value) *Instr {
	return b.emit(&Instr{Op: OpBin, Ty: x.Type(), Args: []Value{x, y}, BinKind: kind})
}

// ICmp emits an integer comparison producing an i64 holding 0 or 1
// (C-style boolean, so comparison results compose with arithmetic).
func (b *Builder) ICmp(pred Pred, x, y Value) *Instr {
	return b.emit(&Instr{Op: OpICmp, Ty: I64, Args: []Value{x, y}, Pred: pred})
}

// GEP emits address arithmetic over base (a pointer to baseTy) following
// the given path. Dynamic indices must be passed in dyn, in path order.
func (b *Builder) GEP(base Value, baseTy Type, path []GEPStep, dyn ...Value) *Instr {
	args := append([]Value{base}, dyn...)
	ty := baseTy
	for _, st := range path {
		switch t := ty.(type) {
		case *StructType:
			if st.Field < 0 || st.Field >= len(t.Fields) {
				panic(fmt.Sprintf("ir: gep field %d out of range for %%%s", st.Field, t.TypeName))
			}
			ty = t.Fields[st.Field].Type
		case *ArrayType:
			ty = t.Elem
		default:
			// Dynamic index over a non-aggregate models C pointer
			// arithmetic (p[i] over ptr T): the element type is unchanged.
			if st.Field >= 0 {
				panic(fmt.Sprintf("ir: gep field step into non-aggregate %s", ty))
			}
		}
	}
	return b.emit(&Instr{Op: OpGEP, Ty: PointerTo(ty), Args: args, GEPBase: baseTy, Path: path})
}

// FieldPtr emits a GEP selecting a named field of a struct pointed to by
// base.
func (b *Builder) FieldPtr(base Value, st *StructType, field string) *Instr {
	idx := st.FieldIndex(field)
	if idx < 0 {
		panic(fmt.Sprintf("ir: struct %%%s has no field %q", st.TypeName, field))
	}
	return b.GEP(base, st, []GEPStep{{Field: idx}})
}

// IndexPtr emits a GEP selecting element idx of an array pointed to by
// base.
func (b *Builder) IndexPtr(base Value, at *ArrayType, idx Value) *Instr {
	return b.GEP(base, at, []GEPStep{{Field: -1}}, idx)
}

// Call emits a call to the named function or builtin with a known result
// type.
func (b *Builder) Call(retTy Type, callee string, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Ty: retTy, Args: args, Callee: callee})
}

// Br emits an unconditional branch.
func (b *Builder) Br(target *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Ty: Void, Then: target})
}

// CondBr emits a conditional branch on cond.
func (b *Builder) CondBr(cond Value, then, els *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Ty: Void, Args: []Value{cond}, Then: then, Else: els})
}

// Ret emits a return. val may be nil for void returns.
func (b *Builder) Ret(val Value) *Instr {
	if val == nil {
		return b.emit(&Instr{Op: OpRet, Ty: Void})
	}
	return b.emit(&Instr{Op: OpRet, Ty: Void, Args: []Value{val}})
}
