package ir

import "fmt"

// CloneModule deep-copies a module. Transformation pipelines run on a
// clone so that the original, Naïve, and AtoMig variants of a program can
// all be produced from a single compile, exactly as the paper's
// evaluation compares variants of one build.
//
// A malformed source module (duplicate global or function names) yields
// an error rather than a panic; callers holding a verified module can
// use MustClone.
func CloneModule(m *Module) (*Module, error) {
	out := NewModule(m.Name)
	for name, st := range m.Structs {
		out.Structs[name] = st // struct types are immutable, share them
	}
	for _, g := range m.Globals {
		ng := &Global{GName: g.GName, Elem: g.Elem, Volatile: g.Volatile, Atomic: g.Atomic}
		if g.Init != nil {
			ng.Init = append([]int64(nil), g.Init...)
		}
		if err := out.AddGlobal(ng); err != nil {
			return nil, fmt.Errorf("ir: clone: %w", err)
		}
	}
	// First create all function shells so calls and FuncRefs can resolve.
	for _, f := range m.Funcs {
		nf := &Func{Name: f.Name, RetTy: f.RetTy, NoInline: f.NoInline, nextID: f.nextID}
		for _, p := range f.Params {
			nf.Params = append(nf.Params, &Param{PName: p.PName, Ty: p.Ty, Index: p.Index})
		}
		if err := out.AddFunc(nf); err != nil {
			return nil, fmt.Errorf("ir: clone: %w", err)
		}
	}
	for _, f := range m.Funcs {
		cloneFuncBody(out, f, out.Func(f.Name))
	}
	return out, nil
}

// MustClone clones a module known to be well-formed (already verified or
// produced by a verifying frontend); a clone failure on such a module is
// an internal invariant violation, so it panics — callers at public
// entry points sit behind diag guards that contain it.
func MustClone(m *Module) *Module {
	out, err := CloneModule(m)
	if err != nil {
		panic(err)
	}
	return out
}

// CloneFuncInto clones the body of src into dst (which must already have
// matching params registered in dst's module). Used by CloneModule and by
// the inliner's work copies.
func cloneFuncBody(outMod *Module, src, dst *Func) {
	blockMap := make(map[*Block]*Block, len(src.Blocks))
	for _, b := range src.Blocks {
		blockMap[b] = dst.NewBlock(b.Name)
	}
	// Instruction IDs are unique within a function (builder and parser
	// both guarantee it), so the old->new mapping is an ID-indexed
	// slice — clones are on the daemon's per-request hot path, and a
	// map here costs more than the rest of the copy. instrMap is the
	// fallback for out-of-range IDs only.
	byID := make([]*Instr, src.nextID)
	var instrMap map[*Instr]*Instr
	paramMap := make(map[*Param]*Param, len(src.Params))
	for i, p := range src.Params {
		paramMap[p] = dst.Params[i]
	}
	mapVal := func(v Value) Value {
		switch x := v.(type) {
		case *ConstInt:
			return x
		case *Global:
			return outMod.Global(x.GName)
		case *Param:
			return paramMap[x]
		case *FuncRef:
			return &FuncRef{Fn: outMod.Func(x.Fn.Name)}
		case *Instr:
			if x.ID >= 0 && x.ID < len(byID) && byID[x.ID] != nil {
				return byID[x.ID]
			}
			return instrMap[x]
		}
		return v
	}
	// Instructions and their operand slices come out of two per-function
	// arenas: a clone-heavy caller (the porting daemon clones a module
	// per request) otherwise pays one allocation per instruction, and
	// the resulting GC churn costs more than the copy itself.
	nInstr, nArg := 0, 0
	for _, b := range src.Blocks {
		nInstr += len(b.Instrs)
		for _, in := range b.Instrs {
			nArg += len(in.Args)
		}
	}
	arena := make([]Instr, nInstr)
	argBuf := make([]Value, nArg)
	// Two passes: create instruction shells first so forward references
	// (uses of results defined later in block order, which cannot happen,
	// but branch targets can) resolve; operands are filled in pass two.
	k := 0
	for _, b := range src.Blocks {
		nb := blockMap[b]
		for _, in := range b.Instrs {
			ni := &arena[k]
			k++
			*ni = Instr{
				Op: in.Op, ID: in.ID, Blk: nb, Ty: in.Ty,
				AllocElem: in.AllocElem, Ord: in.Ord, Volatile: in.Volatile,
				BinKind: in.BinKind, Pred: in.Pred, RMW: in.RMW,
				GEPBase: in.GEPBase, Callee: in.Callee, Marks: in.Marks,
			}
			if in.Path != nil {
				ni.Path = append([]GEPStep(nil), in.Path...)
			}
			if in.Then != nil {
				ni.Then = blockMap[in.Then]
			}
			if in.Else != nil {
				ni.Else = blockMap[in.Else]
			}
			if in.ID >= 0 && in.ID < len(byID) {
				byID[in.ID] = ni
			} else {
				if instrMap == nil {
					instrMap = make(map[*Instr]*Instr)
				}
				instrMap[in] = ni
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
	}
	off := 0
	for _, b := range src.Blocks {
		nb := blockMap[b]
		for i, in := range b.Instrs {
			ni := nb.Instrs[i]
			if len(in.Args) > 0 {
				ni.Args = argBuf[off : off+len(in.Args) : off+len(in.Args)]
				off += len(in.Args)
				for j, a := range in.Args {
					ni.Args[j] = mapVal(a)
				}
			}
		}
	}
}
