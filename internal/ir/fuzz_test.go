package ir

import (
	"testing"

	"repro/internal/diag"
)

// FuzzParseRoundTrip feeds arbitrary text to the AIR parser. Malformed
// text must produce an ordinary error (a contained panic is a parser
// bug); accepted text must survive parse → print → parse with a stable
// second print, which pins the printer and parser to each other.
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		"",
		"; module m\n",
		"; module m\n@x = global i64\n\ndefine void @f() {\nentry:\n  store 1, @x\n  ret void\n}\n",
		"; module mp\n@flag = global i64\n@msg = global i64\n\ndefine void @writer() {\nentry:\n  store 1, @msg\n  store 1, @flag\n  ret void\n}\n\ndefine void @reader() {\nentry:\n  br label %cond1\ncond1:\n  %t2 = load i64, @flag\n  %t3 = icmp eq %t2, 0\n  br %t3, label %body2, label %endloop3\nbody2:\n  br label %cond1\nendloop3:\n  %t5 = load i64, @msg\n  %t6 = icmp eq %t5, 1\n  call void @assert(%t6)\n  ret void\n}\n",
		"garbage that is not AIR",
		"define void @broken() {\n",
		"@x = global\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 16<<10 {
			t.Skip("oversized input")
		}
		m, err := ParseModule(text)
		if err != nil {
			if ie, ok := diag.AsInternal(err); ok {
				t.Fatalf("parser panicked on input:\n%s\n%s", text, ie.Diagnostics())
			}
			return
		}
		printed := m.String()
		m2, err := ParseModule(printed)
		if err != nil {
			t.Fatalf("printed AIR does not re-parse: %v\ninput:\n%s\nAIR:\n%s", err, text, printed)
		}
		if again := m2.String(); again != printed {
			t.Fatalf("print is not a fixed point\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	})
}
