package ir

import (
	"fmt"
	"strings"
)

// Op identifies the operation an instruction performs.
type Op int

// Instruction opcodes.
const (
	OpAlloca  Op = iota // allocate a stack slot; result: ptr to AllocElem
	OpLoad              // load from Args[0]; result: pointee type
	OpStore             // store Args[1] to address Args[0]
	OpCmpXchg           // compare-exchange at Args[0]: expected Args[1], new Args[2]; result: old value
	OpRMW               // atomic read-modify-write at Args[0] with operand Args[1]; result: old value
	OpFence             // memory fence with ordering Ord
	OpBin               // binary arithmetic/logic: Args[0] BinKind Args[1]
	OpICmp              // integer comparison: Args[0] Pred Args[1]; result i1
	OpGEP               // address arithmetic: base Args[0], path Path (dyn indices in Args[1:])
	OpCall              // call Callee with Args; result: callee return type
	OpBr                // branch: unconditional to Then, or on Args[0] to Then/Else
	OpRet               // return (optionally Args[0])
)

var opNames = map[Op]string{
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store",
	OpCmpXchg: "cmpxchg", OpRMW: "atomicrmw", OpFence: "fence",
	OpBin: "bin", OpICmp: "icmp", OpGEP: "getelementptr",
	OpCall: "call", OpBr: "br", OpRet: "ret",
}

func (o Op) String() string { return opNames[o] }

// MemOrder is the memory ordering attached to a memory access or fence,
// following the C11 orderings the paper manipulates.
type MemOrder int

// Memory orderings, from weakest to strongest.
const (
	NotAtomic MemOrder = iota
	Relaxed
	Acquire
	Release
	AcqRel
	SeqCst
)

var ordNames = map[MemOrder]string{
	NotAtomic: "plain", Relaxed: "relaxed", Acquire: "acquire",
	Release: "release", AcqRel: "acq_rel", SeqCst: "seq_cst",
}

func (m MemOrder) String() string { return ordNames[m] }

// Atomic reports whether the ordering denotes an atomic access.
func (m MemOrder) Atomic() bool { return m != NotAtomic }

// BinKind is the operator of an OpBin instruction.
type BinKind int

// Binary operators.
const (
	Add BinKind = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
)

var binNames = map[BinKind]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "sdiv", Rem: "srem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "ashr",
}

func (b BinKind) String() string { return binNames[b] }

// Pred is the predicate of an OpICmp instruction.
type Pred int

// Comparison predicates.
const (
	EQ Pred = iota
	NE
	LT
	LE
	GT
	GE
)

var predNames = map[Pred]string{EQ: "eq", NE: "ne", LT: "slt", LE: "sle", GT: "sgt", GE: "sge"}

func (p Pred) String() string { return predNames[p] }

// RMWKind is the operation of an OpRMW instruction.
type RMWKind int

// Read-modify-write operations.
const (
	RMWAdd RMWKind = iota
	RMWSub
	RMWAnd
	RMWOr
	RMWXor
	RMWXchg
)

var rmwNames = map[RMWKind]string{
	RMWAdd: "add", RMWSub: "sub", RMWAnd: "and", RMWOr: "or",
	RMWXor: "xor", RMWXchg: "xchg",
}

func (r RMWKind) String() string { return rmwNames[r] }

// Mark is a bit set of analysis/transformation annotations on an
// instruction. Marks let the pipeline record which detector claimed an
// access and why it was transformed, and they make "once stickied,
// always stickied" cheap (paper section 3.5).
type Mark uint16

// Instruction marks.
const (
	MarkSpinControl   Mark = 1 << iota // access to a spin-control location
	MarkOptControl                     // access to an optimistic-control location
	MarkSticky                         // transformed via alias exploration
	MarkFromVolatile                   // transformed because the location was volatile
	MarkFromAtomic                     // upgraded from an existing weaker atomic
	MarkFromAsm                        // produced by inline-asm builtin mapping
	MarkInsertedFence                  // fence inserted by the optimistic-loop transform
	MarkNaive                          // transformed by the naive all-SC strategy
	MarkWeakened                       // ordering weakened by the checker-in-the-loop optimizer
)

func (m Mark) String() string {
	var parts []string
	add := func(bit Mark, s string) {
		if m&bit != 0 {
			parts = append(parts, s)
		}
	}
	add(MarkSpinControl, "spin")
	add(MarkOptControl, "opt")
	add(MarkSticky, "sticky")
	add(MarkFromVolatile, "volatile")
	add(MarkFromAtomic, "atomic-upgrade")
	add(MarkFromAsm, "asm")
	add(MarkInsertedFence, "inserted")
	add(MarkNaive, "naive")
	add(MarkWeakened, "weakened")
	return strings.Join(parts, ",")
}

// GEPStep is one step of a getelementptr path. Either Field >= 0 names a
// constant struct-field index, or Field < 0 and the step indexes an array
// with the dynamic value found in the instruction's Args.
type GEPStep struct {
	// Field is the constant struct-field index, or -1 for a dynamic array
	// index.
	Field int
}

// Instr is a single AIR instruction. A single struct covers all opcodes
// so that passes can rewrite instructions in place (e.g. flip a plain
// load to a seq_cst load) without reallocating the instruction stream.
type Instr struct {
	Op  Op
	ID  int    // unique within the function; the result register is %t<ID>
	Blk *Block // owning basic block

	// Ty is the result type (Void for instructions without a result).
	Ty Type

	// Args holds the value operands. Layout per opcode is documented on
	// the Op constants.
	Args []Value

	// AllocElem is the element type of an OpAlloca.
	AllocElem Type

	// Ord is the memory ordering of loads, stores, cmpxchg, rmw, fences.
	Ord MemOrder

	// Volatile marks an access to a volatile-qualified location.
	Volatile bool

	// BinKind is the operator of an OpBin.
	BinKind BinKind

	// Pred is the predicate of an OpICmp.
	Pred Pred

	// RMW is the operation of an OpRMW.
	RMW RMWKind

	// GEPBase is the pointee type the GEP path navigates (the type of
	// *Args[0]). Path describes the steps; dynamic indices appear in
	// Args[1:] in path order.
	GEPBase Type
	Path    []GEPStep

	// Callee is the called function or builtin name for OpCall.
	Callee string

	// Then and Else are branch targets for OpBr. Else is nil for an
	// unconditional branch.
	Then, Else *Block

	// Marks records analysis and transformation annotations.
	Marks Mark
}

// Type returns the result type of the instruction.
func (in *Instr) Type() Type {
	if in.Ty == nil {
		return Void
	}
	return in.Ty
}

// Operand returns the register name of the instruction's result.
func (in *Instr) Operand() string { return fmt.Sprintf("%%t%d", in.ID) }

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool { return in.Op == OpBr || in.Op == OpRet }

// IsMemAccess reports whether the instruction reads or writes shared
// memory (load, store, cmpxchg, rmw).
func (in *Instr) IsMemAccess() bool {
	switch in.Op {
	case OpLoad, OpStore, OpCmpXchg, OpRMW:
		return true
	}
	return false
}

// Reads reports whether the instruction reads from memory.
func (in *Instr) Reads() bool {
	switch in.Op {
	case OpLoad, OpCmpXchg, OpRMW:
		return true
	}
	return false
}

// Writes reports whether the instruction may write to memory.
func (in *Instr) Writes() bool {
	switch in.Op {
	case OpStore, OpCmpXchg, OpRMW:
		return true
	}
	return false
}

// Addr returns the address operand of a memory access, or nil.
func (in *Instr) Addr() Value {
	if in.IsMemAccess() {
		return in.Args[0]
	}
	return nil
}

// HasMark reports whether the given mark bit is set.
func (in *Instr) HasMark(m Mark) bool { return in.Marks&m != 0 }

// SetMark sets the given mark bit.
func (in *Instr) SetMark(m Mark) { in.Marks |= m }

// String renders the instruction in AIR textual syntax.
func (in *Instr) String() string {
	var b strings.Builder
	if in.Type() != Void {
		fmt.Fprintf(&b, "%s = ", in.Operand())
	}
	switch in.Op {
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %s", in.AllocElem)
	case OpLoad:
		fmt.Fprintf(&b, "load %s, %s", in.Ty, in.Args[0].Operand())
		writeAccessAttrs(&b, in)
	case OpStore:
		fmt.Fprintf(&b, "store %s, %s", in.Args[1].Operand(), in.Args[0].Operand())
		writeAccessAttrs(&b, in)
	case OpCmpXchg:
		fmt.Fprintf(&b, "cmpxchg %s, %s, %s", in.Args[0].Operand(), in.Args[1].Operand(), in.Args[2].Operand())
		writeAccessAttrs(&b, in)
	case OpRMW:
		fmt.Fprintf(&b, "atomicrmw %s %s, %s", in.RMW, in.Args[0].Operand(), in.Args[1].Operand())
		writeAccessAttrs(&b, in)
	case OpFence:
		fmt.Fprintf(&b, "fence %s", in.Ord)
		if in.Marks != 0 {
			fmt.Fprintf(&b, " ; [%s]", in.Marks)
		}
	case OpBin:
		fmt.Fprintf(&b, "%s %s, %s", in.BinKind, in.Args[0].Operand(), in.Args[1].Operand())
	case OpICmp:
		fmt.Fprintf(&b, "icmp %s %s, %s", in.Pred, in.Args[0].Operand(), in.Args[1].Operand())
	case OpGEP:
		fmt.Fprintf(&b, "getelementptr %s, %s", in.GEPBase, in.Args[0].Operand())
		dyn := 1
		for _, st := range in.Path {
			if st.Field >= 0 {
				fmt.Fprintf(&b, ", field %d", st.Field)
			} else {
				fmt.Fprintf(&b, ", index %s", in.Args[dyn].Operand())
				dyn++
			}
		}
	case OpCall:
		fmt.Fprintf(&b, "call %s @%s(", in.Type(), in.Callee)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Operand())
		}
		b.WriteString(")")
	case OpBr:
		if in.Else == nil {
			fmt.Fprintf(&b, "br label %%%s", in.Then.Name)
		} else {
			fmt.Fprintf(&b, "br %s, label %%%s, label %%%s", in.Args[0].Operand(), in.Then.Name, in.Else.Name)
		}
	case OpRet:
		if len(in.Args) == 0 {
			b.WriteString("ret void")
		} else {
			fmt.Fprintf(&b, "ret %s", in.Args[0].Operand())
		}
	}
	return b.String()
}

func writeAccessAttrs(b *strings.Builder, in *Instr) {
	if in.Volatile {
		b.WriteString(" volatile")
	}
	if in.Ord != NotAtomic {
		fmt.Fprintf(b, " %s", in.Ord)
	}
	if in.Marks != 0 {
		fmt.Fprintf(b, " ; [%s]", in.Marks)
	}
}
