package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildSpinModule constructs the message-passing reader/writer module used
// across the IR tests: a global flag and msg, a reader that spins on flag
// and reads msg, and a writer that stores msg then flag.
func buildSpinModule(t *testing.T) *Module {
	t.Helper()
	m := NewModule("mp")
	flag := &Global{GName: "flag", Elem: I64}
	msg := &Global{GName: "msg", Elem: I64}
	if err := m.AddGlobal(flag); err != nil {
		t.Fatal(err)
	}
	if err := m.AddGlobal(msg); err != nil {
		t.Fatal(err)
	}

	reader := &Func{Name: "reader", RetTy: I64}
	if err := m.AddFunc(reader); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(reader)
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	b.Br(loop)
	b.SetBlock(loop)
	fv := b.Load(flag)
	cond := b.ICmp(EQ, fv, Const(0))
	b.CondBr(cond, loop, exit)
	b.SetBlock(exit)
	mv := b.Load(msg)
	b.Ret(mv)

	writer := &Func{Name: "writer", RetTy: Void}
	if err := m.AddFunc(writer); err != nil {
		t.Fatal(err)
	}
	w := NewBuilder(writer)
	w.Store(msg, Const(42))
	w.Store(flag, Const(1))
	w.Ret(nil)
	return m
}

func TestVerifyWellFormed(t *testing.T) {
	m := buildSpinModule(t)
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	f := &Func{Name: "f", RetTy: Void}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f)
	b.Bin(Add, Const(1), Const(2)) // no terminator
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted unterminated block")
	}
}

func TestVerifyCatchesUnknownCallee(t *testing.T) {
	m := NewModule("bad")
	f := &Func{Name: "f", RetTy: Void}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f)
	b.Call(Void, "no_such_function")
	b.Ret(nil)
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted call to unknown function")
	}
}

func TestVerifyAcceptsBuiltins(t *testing.T) {
	m := NewModule("ok")
	f := &Func{Name: "f", RetTy: Void}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f)
	b.Call(Void, "assert", Const(1))
	b.Ret(nil)
	if err := Verify(m); err != nil {
		t.Fatalf("Verify rejected builtin call: %v", err)
	}
}

func TestPrintContainsStructure(t *testing.T) {
	m := buildSpinModule(t)
	s := m.String()
	for _, want := range []string{
		"@flag = global i64",
		"define i64 @reader()",
		"load i64, @flag",
		"br %t2, label %loop, label %exit",
		"store 1, @flag",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("module text missing %q:\n%s", want, s)
		}
	}
}

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	m := buildSpinModule(t)
	c, err := CloneModule(m)
	if err != nil {
		t.Fatalf("clone failed: %v", err)
	}
	if err := Verify(c); err != nil {
		t.Fatalf("clone does not verify: %v", err)
	}
	if got, want := c.String(), m.String(); got != want {
		t.Fatalf("clone prints differently:\n--- original\n%s\n--- clone\n%s", want, got)
	}
	// Mutating the clone must not touch the original.
	c.Func("reader").Entry().Instrs[0].Ord = SeqCst
	cl := c.Func("writer").Blocks[0].Instrs[0]
	cl.Ord = SeqCst
	if m.Func("writer").Blocks[0].Instrs[0].Ord != NotAtomic {
		t.Fatal("mutating clone changed original")
	}
	// Clone operands must point into the clone's globals.
	ld := c.Func("reader").Blocks[1].Instrs[0]
	g, ok := ld.Args[0].(*Global)
	if !ok || g != c.Global("flag") {
		t.Fatal("clone load does not reference clone's global")
	}
}

func TestStructOffsets(t *testing.T) {
	st := &StructType{TypeName: "node", Fields: []Field{
		{Name: "state", Type: I64},
		{Name: "arr", Type: &ArrayType{Elem: I64, Len: 4}},
		{Name: "key", Type: PointerTo(I64)},
	}}
	if got := st.Cells(); got != 6 {
		t.Fatalf("Cells = %d, want 6", got)
	}
	if got := st.FieldOffset(2); got != 5 {
		t.Fatalf("FieldOffset(key) = %d, want 5", got)
	}
	if got := st.FieldIndex("key"); got != 2 {
		t.Fatalf("FieldIndex(key) = %d, want 2", got)
	}
	if got := st.FieldIndex("missing"); got != -1 {
		t.Fatalf("FieldIndex(missing) = %d, want -1", got)
	}
}

func TestTypesEqual(t *testing.T) {
	a := &StructType{TypeName: "n", Fields: []Field{{Name: "x", Type: I64}}}
	b := &StructType{TypeName: "n", Fields: []Field{{Name: "x", Type: I64}}}
	cases := []struct {
		x, y Type
		want bool
	}{
		{I64, I64, true},
		{I64, I32, false},
		{PointerTo(I64), PointerTo(I64), true},
		{PointerTo(I64), PointerTo(I32), false},
		{a, b, true},
		{&ArrayType{Elem: I64, Len: 3}, &ArrayType{Elem: I64, Len: 3}, true},
		{&ArrayType{Elem: I64, Len: 3}, &ArrayType{Elem: I64, Len: 4}, false},
		{Void, Void, true},
		{Void, I64, false},
	}
	for _, c := range cases {
		if got := TypesEqual(c.x, c.y); got != c.want {
			t.Errorf("TypesEqual(%s, %s) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

// Property: for any sequence of field sizes, FieldOffset(i) equals the
// sum of sizes of preceding fields, and Cells is the sum of all.
func TestStructOffsetProperty(t *testing.T) {
	prop := func(sizes []uint8) bool {
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		st := &StructType{TypeName: "p"}
		for i, s := range sizes {
			n := int(s%7) + 1
			st.Fields = append(st.Fields, Field{
				Name: string(rune('a' + i%26)),
				Type: &ArrayType{Elem: I64, Len: n},
			})
		}
		sum := 0
		for i, f := range st.Fields {
			if st.FieldOffset(i) != sum {
				return false
			}
			sum += f.Type.Cells()
		}
		return st.Cells() == sum
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: instruction IDs allocated by the builder are strictly
// increasing and unique within a function.
func TestBuilderIDUniquenessProperty(t *testing.T) {
	prop := func(n uint8) bool {
		m := NewModule("p")
		f := &Func{Name: "f", RetTy: Void}
		if err := m.AddFunc(f); err != nil {
			return false
		}
		b := NewBuilder(f)
		count := int(n%50) + 1
		var last *Instr
		for i := 0; i < count; i++ {
			in := b.Bin(Add, Const(int64(i)), Const(1))
			if last != nil && in.ID <= last.ID {
				return false
			}
			last = in
		}
		b.Ret(nil)
		seen := map[int]bool{}
		dup := false
		f.Instrs(func(in *Instr) {
			if seen[in.ID] {
				dup = true
			}
			seen[in.ID] = true
		})
		return !dup
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockSuccsAndPreds(t *testing.T) {
	m := buildSpinModule(t)
	reader := m.Func("reader")
	entry, loop, exit := reader.Blocks[0], reader.Blocks[1], reader.Blocks[2]
	if got := entry.Succs(); len(got) != 1 || got[0] != loop {
		t.Fatalf("entry succs = %v", got)
	}
	if got := loop.Succs(); len(got) != 2 || got[0] != loop || got[1] != exit {
		t.Fatalf("loop succs = %v", got)
	}
	preds := reader.Preds()
	if got := preds[loop]; len(got) != 2 {
		t.Fatalf("loop preds = %v, want entry+loop", got)
	}
	if got := preds[exit]; len(got) != 1 || got[0] != loop {
		t.Fatalf("exit preds = %v", got)
	}
}

func TestInstrPredicates(t *testing.T) {
	m := buildSpinModule(t)
	var load, store *Instr
	m.EachInstr(func(_ *Func, in *Instr) {
		switch in.Op {
		case OpLoad:
			if load == nil {
				load = in
			}
		case OpStore:
			if store == nil {
				store = in
			}
		}
	})
	if !load.Reads() || load.Writes() {
		t.Error("load predicates wrong")
	}
	if store.Reads() || !store.Writes() {
		t.Error("store predicates wrong")
	}
	if load.Addr() == nil || store.Addr() == nil {
		t.Error("Addr() nil for memory access")
	}
}

func TestMarks(t *testing.T) {
	in := &Instr{Op: OpLoad}
	if in.HasMark(MarkSpinControl) {
		t.Fatal("fresh instruction has marks")
	}
	in.SetMark(MarkSpinControl)
	in.SetMark(MarkSticky)
	if !in.HasMark(MarkSpinControl) || !in.HasMark(MarkSticky) {
		t.Fatal("marks not set")
	}
	if s := in.Marks.String(); !strings.Contains(s, "spin") || !strings.Contains(s, "sticky") {
		t.Fatalf("marks string = %q", s)
	}
}
