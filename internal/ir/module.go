package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Block is a basic block: a straight-line sequence of instructions ending
// in a terminator (br or ret).
type Block struct {
	Name   string
	Fn     *Func
	Instrs []*Instr
}

// Terminator returns the block's final instruction if it is a terminator,
// else nil.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor blocks of b.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil || t.Op != OpBr {
		return nil
	}
	if t.Else == nil {
		return []*Block{t.Then}
	}
	return []*Block{t.Then, t.Else}
}

// Func is a function: an ordered list of basic blocks whose first entry
// is the entry block.
type Func struct {
	Name   string
	Params []*Param
	RetTy  Type
	Blocks []*Block
	Mod    *Module

	// NoInline marks functions that the pre-analysis inliner must not
	// inline (recursive functions, thread entry points).
	NoInline bool

	nextID int
	// resolver is transient parser state (see parse.go).
	resolver any
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new basic block with the given name to the function.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: name, Fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NextID allocates the next unique instruction ID within the function.
func (f *Func) NextID() int {
	id := f.nextID
	f.nextID++
	return id
}

// NumIDs returns an exclusive upper bound on instruction IDs in the
// function (used to size register files in the VM).
func (f *Func) NumIDs() int { return f.nextID }

// ReserveIDs raises the function's ID watermark so future NextID calls
// do not collide with externally assigned IDs (used by the parser).
func (f *Func) ReserveIDs(n int) {
	if f.nextID < n {
		f.nextID = n
	}
}

// Preds returns a map from block to its predecessor blocks.
func (f *Func) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// Instrs calls fn for every instruction in the function, in block order.
func (f *Func) Instrs(fn func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fn(in)
		}
	}
}

// NumInstrs returns the total instruction count of the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Module is a whole-program unit: named struct types, globals, and
// functions. AtoMig operates at link time on a complete module (paper
// section 3.1), so a Module corresponds to one fully linked build target.
type Module struct {
	Name    string
	Structs map[string]*StructType
	Globals []*Global
	Funcs   []*Func

	globalIdx map[string]*Global
	funcIdx   map[string]*Func
}

// NewModule returns an empty module with the given name.
func NewModule(name string) *Module {
	return &Module{
		Name:      name,
		Structs:   make(map[string]*StructType),
		globalIdx: make(map[string]*Global),
		funcIdx:   make(map[string]*Func),
	}
}

// AddStruct registers a named struct type. It returns an error if the
// name is already taken by a different definition.
func (m *Module) AddStruct(st *StructType) error {
	if old, ok := m.Structs[st.TypeName]; ok && old != st {
		return fmt.Errorf("ir: duplicate struct type %q", st.TypeName)
	}
	m.Structs[st.TypeName] = st
	return nil
}

// AddGlobal registers a global variable.
func (m *Module) AddGlobal(g *Global) error {
	if _, ok := m.globalIdx[g.GName]; ok {
		return fmt.Errorf("ir: duplicate global @%s", g.GName)
	}
	m.Globals = append(m.Globals, g)
	m.globalIdx[g.GName] = g
	return nil
}

// Global looks up a global by name.
func (m *Module) Global(name string) *Global { return m.globalIdx[name] }

// AddFunc registers a function.
func (m *Module) AddFunc(f *Func) error {
	if _, ok := m.funcIdx[f.Name]; ok {
		return fmt.Errorf("ir: duplicate function @%s", f.Name)
	}
	f.Mod = m
	m.Funcs = append(m.Funcs, f)
	m.funcIdx[f.Name] = f
	return nil
}

// Func looks up a function by name.
func (m *Module) Func(name string) *Func { return m.funcIdx[name] }

// ReplaceFunc installs a copy of src (a function owned by another
// module, e.g. one parsed from a delta against a synthetic header) in
// place of m's like-named function, remapping global and function
// references into m by name. A function with a new name is appended.
// This is the module-mutation primitive of the incremental porting
// service: the daemon applies deltas to a clone and swaps it in only
// when the whole batch verifies.
func (m *Module) ReplaceFunc(src *Func) error {
	nf := &Func{Name: src.Name, RetTy: src.RetTy, NoInline: src.NoInline, nextID: src.nextID}
	for _, p := range src.Params {
		nf.Params = append(nf.Params, &Param{PName: p.PName, Ty: p.Ty, Index: p.Index})
	}
	nf.Mod = m
	if old := m.funcIdx[src.Name]; old != nil {
		for i, f := range m.Funcs {
			if f == old {
				m.Funcs[i] = nf
				break
			}
		}
	} else {
		m.Funcs = append(m.Funcs, nf)
	}
	m.funcIdx[src.Name] = nf
	cloneFuncBody(m, src, nf)
	return nil
}

// RemoveFunc deletes the named function, reporting whether it existed.
// Dangling references in remaining functions (calls, FuncRefs) are the
// caller's responsibility to reject — Verify reports them.
func (m *Module) RemoveFunc(name string) bool {
	old := m.funcIdx[name]
	if old == nil {
		return false
	}
	delete(m.funcIdx, name)
	for i, f := range m.Funcs {
		if f == old {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			break
		}
	}
	return true
}

// HeaderString renders the module's struct layouts and globals without
// any functions — the parse context for a function-level delta.
func (m *Module) HeaderString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; module %s\n", m.Name)
	names := make([]string, 0, len(m.Structs))
	for n := range m.Structs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b.WriteString(m.Structs[n].Layout())
		b.WriteString("\n")
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "@%s = global %s", g.GName, g.Elem)
		if g.Volatile {
			b.WriteString(" volatile")
		}
		if g.Atomic {
			b.WriteString(" atomic")
		}
		if len(g.Init) > 0 {
			fmt.Fprintf(&b, " init %v", g.Init)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// EachInstr calls fn for every instruction in the module.
func (m *Module) EachInstr(fn func(*Func, *Instr)) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				fn(f, in)
			}
		}
	}
}

// NumInstrs returns the total instruction count of the module.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// String renders the whole module in AIR textual syntax.
func (m *Module) String() string {
	var b strings.Builder
	b.WriteString(m.HeaderString())
	for _, f := range m.Funcs {
		b.WriteString("\n")
		writeFunc(&b, f)
	}
	return b.String()
}

func writeFunc(b *strings.Builder, f *Func) {
	fmt.Fprintf(b, "define %s @%s(", f.RetTy, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %%%s", p.Ty, p.PName)
	}
	b.WriteString(") {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(b, "%s:\n", blk.Name)
		for _, in := range blk.Instrs {
			fmt.Fprintf(b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
}

// FuncString renders a single function in AIR textual syntax.
func FuncString(f *Func) string {
	var b strings.Builder
	writeFunc(&b, f)
	return b.String()
}
