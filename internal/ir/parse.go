package ir

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/diag"
)

// ParseModule parses the textual AIR form produced by Module.String,
// including access attributes and analysis marks, so that modules
// survive a print/parse round trip bit-for-bit. This is the loader
// behind tooling that exchanges .air files. Malformed input produces an
// error, never a panic: an internal panic is contained by the diag
// guard and reported as a structured error.
func ParseModule(text string) (m *Module, err error) {
	defer diag.Guard("ir.ParseModule", &err)
	p := &moduleParser{}
	if err := p.run(text); err != nil {
		return nil, fmt.Errorf("ir: parse: %w", err)
	}
	return p.mod, nil
}

type rawInstr struct {
	line   int
	result int // instruction ID, or -1
	text   string
}

type rawFunc struct {
	fn     *Func
	blocks []*Block
	// instrs per block, raw.
	instrs map[*Block][]rawInstr
}

type moduleParser struct {
	mod *Module
}

func (p *moduleParser) run(text string) error {
	lines := strings.Split(text, "\n")
	i := 0
	// Header comment: "; module NAME".
	name := "parsed"
	for i < len(lines) {
		l := strings.TrimSpace(lines[i])
		if l == "" {
			i++
			continue
		}
		if strings.HasPrefix(l, "; module ") {
			name = strings.TrimPrefix(l, "; module ")
			i++
		}
		break
	}
	p.mod = NewModule(name)

	var fns []*rawFunc
	// Pass 1: structs, globals, function shells with raw bodies.
	for i < len(lines) {
		l := strings.TrimSpace(lines[i])
		switch {
		case l == "":
			i++
		case strings.HasPrefix(l, "%") && strings.Contains(l, "= type"):
			if err := p.parseStruct(l, i+1); err != nil {
				return err
			}
			i++
		case strings.HasPrefix(l, "@"):
			if err := p.parseGlobal(l, i+1); err != nil {
				return err
			}
			i++
		case strings.HasPrefix(l, "define "):
			rf, next, err := p.parseFuncShell(lines, i)
			if err != nil {
				return err
			}
			fns = append(fns, rf)
			i = next
		default:
			return fmt.Errorf("line %d: unexpected %q", i+1, l)
		}
	}
	// Pass 2: instruction shells (so cross-block forward references
	// resolve), then operands.
	for _, rf := range fns {
		if err := p.buildInstrShells(rf); err != nil {
			return err
		}
	}
	for _, rf := range fns {
		if err := p.resolveOperands(rf); err != nil {
			return err
		}
	}
	return Verify(p.mod)
}

// parseType parses a type at the start of s, returning the type and the
// remainder.
func (p *moduleParser) parseType(s string) (Type, string, error) {
	s = strings.TrimLeft(s, " ")
	switch {
	case strings.HasPrefix(s, "void"):
		return Void, s[4:], nil
	case strings.HasPrefix(s, "i64"):
		return I64, s[3:], nil
	case strings.HasPrefix(s, "i32"):
		return I32, s[3:], nil
	case strings.HasPrefix(s, "i8"):
		return I8, s[2:], nil
	case strings.HasPrefix(s, "i1"):
		return I1, s[2:], nil
	case strings.HasPrefix(s, "ptr "):
		elem, rest, err := p.parseType(s[4:])
		if err != nil {
			return nil, "", err
		}
		return PointerTo(elem), rest, nil
	case strings.HasPrefix(s, "%"):
		j := 1
		for j < len(s) && (isWordByte(s[j])) {
			j++
		}
		name := s[1:j]
		st, ok := p.mod.Structs[name]
		if !ok {
			return nil, "", fmt.Errorf("unknown struct %%%s", name)
		}
		return st, s[j:], nil
	case strings.HasPrefix(s, "["):
		// [N x TY]
		close := 1
		depth := 1
		for close < len(s) && depth > 0 {
			switch s[close] {
			case '[':
				depth++
			case ']':
				depth--
			}
			close++
		}
		if depth != 0 {
			return nil, "", fmt.Errorf("unterminated array type %q", s)
		}
		inner := s[1 : close-1]
		parts := strings.SplitN(inner, " x ", 2)
		if len(parts) != 2 {
			return nil, "", fmt.Errorf("bad array type %q", s[:close])
		}
		n, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, "", fmt.Errorf("bad array length in %q", s[:close])
		}
		elem, rest, err := p.parseType(parts[1])
		if err != nil {
			return nil, "", err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, "", fmt.Errorf("trailing %q in array type", rest)
		}
		return &ArrayType{Elem: elem, Len: n}, s[close:], nil
	}
	return nil, "", fmt.Errorf("cannot parse type at %q", s)
}

func isWordByte(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// parseStruct parses "%name = type {ty field, ...}".
func (p *moduleParser) parseStruct(l string, lineNo int) error {
	head, body, ok := strings.Cut(l, "= type")
	if !ok {
		return fmt.Errorf("line %d: bad struct %q", lineNo, l)
	}
	name := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(head), "%"))
	body = strings.TrimSpace(body)
	body = strings.TrimPrefix(body, "{")
	body = strings.TrimSuffix(body, "}")
	st := &StructType{TypeName: name}
	if err := p.mod.AddStruct(st); err != nil {
		return fmt.Errorf("line %d: %w", lineNo, err)
	}
	if strings.TrimSpace(body) == "" {
		return nil
	}
	for _, fieldStr := range splitTopLevel(body, ',') {
		fieldStr = strings.TrimSpace(fieldStr)
		ty, rest, err := p.parseType(fieldStr)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fname := strings.TrimSpace(rest)
		// Qualifiers printed after the name.
		f := Field{Name: fname, Type: ty}
		if strings.HasSuffix(f.Name, " atomic") {
			f.Atomic = true
			f.Name = strings.TrimSuffix(f.Name, " atomic")
		}
		if strings.HasSuffix(f.Name, " volatile") {
			f.Volatile = true
			f.Name = strings.TrimSuffix(f.Name, " volatile")
		}
		st.Fields = append(st.Fields, f)
	}
	return nil
}

// splitTopLevel splits on sep outside brackets/braces.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '{', '(':
			depth++
		case ']', '}', ')':
			depth--
		default:
			if s[i] == sep && depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// parseGlobal parses "@name = global TY [volatile] [atomic] [init [...]]".
func (p *moduleParser) parseGlobal(l string, lineNo int) error {
	head, body, ok := strings.Cut(l, "= global")
	if !ok {
		return fmt.Errorf("line %d: bad global %q", lineNo, l)
	}
	g := &Global{GName: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(head), "@"))}
	rest := strings.TrimSpace(body)
	ty, rest, err := p.parseType(rest)
	if err != nil {
		return fmt.Errorf("line %d: %w", lineNo, err)
	}
	g.Elem = ty
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "volatile") {
		g.Volatile = true
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "volatile"))
	}
	if strings.HasPrefix(rest, "atomic") {
		g.Atomic = true
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "atomic"))
	}
	if strings.HasPrefix(rest, "init ") {
		vals := strings.TrimSpace(strings.TrimPrefix(rest, "init"))
		vals = strings.TrimPrefix(vals, "[")
		vals = strings.TrimSuffix(vals, "]")
		for _, v := range strings.Fields(vals) {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: bad init %q", lineNo, v)
			}
			g.Init = append(g.Init, n)
		}
	}
	return p.mod.AddGlobal(g)
}

// parseFuncShell parses the define line and collects raw bodies.
func (p *moduleParser) parseFuncShell(lines []string, i int) (*rawFunc, int, error) {
	l := strings.TrimSpace(lines[i])
	rest := strings.TrimPrefix(l, "define ")
	retTy, rest, err := p.parseType(rest)
	if err != nil {
		return nil, 0, fmt.Errorf("line %d: %w", i+1, err)
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "@") {
		return nil, 0, fmt.Errorf("line %d: missing function name", i+1)
	}
	open := strings.Index(rest, "(")
	if open < 0 {
		return nil, 0, fmt.Errorf("line %d: missing parameter list", i+1)
	}
	name := rest[1:open]
	closeIdx := strings.LastIndex(rest, ")")
	if closeIdx < open {
		return nil, 0, fmt.Errorf("line %d: unterminated parameter list", i+1)
	}
	params := rest[open+1 : closeIdx]
	fn := &Func{Name: name, RetTy: retTy}
	if strings.TrimSpace(params) != "" {
		for idx, ps := range splitTopLevel(params, ',') {
			ps = strings.TrimSpace(ps)
			ty, prest, err := p.parseType(ps)
			if err != nil {
				return nil, 0, fmt.Errorf("line %d: %w", i+1, err)
			}
			pname := strings.TrimSpace(prest)
			pname = strings.TrimPrefix(pname, "%")
			fn.Params = append(fn.Params, &Param{PName: pname, Ty: ty, Index: idx})
		}
	}
	if err := p.mod.AddFunc(fn); err != nil {
		return nil, 0, fmt.Errorf("line %d: %w", i+1, err)
	}
	rf := &rawFunc{fn: fn, instrs: make(map[*Block][]rawInstr)}
	i++
	var cur *Block
	for i < len(lines) {
		l := lines[i]
		trimmed := strings.TrimSpace(l)
		if trimmed == "}" {
			return rf, i + 1, nil
		}
		if trimmed == "" {
			i++
			continue
		}
		if !strings.HasPrefix(l, "  ") && strings.HasSuffix(trimmed, ":") {
			cur = fn.NewBlock(strings.TrimSuffix(trimmed, ":"))
			rf.blocks = append(rf.blocks, cur)
			i++
			continue
		}
		if cur == nil {
			return nil, 0, fmt.Errorf("line %d: instruction before first label", i+1)
		}
		ri := rawInstr{line: i + 1, result: -1, text: trimmed}
		if strings.HasPrefix(trimmed, "%t") {
			eq := strings.Index(trimmed, " = ")
			if eq < 0 {
				return nil, 0, fmt.Errorf("line %d: bad result assignment", i+1)
			}
			id, err := strconv.Atoi(trimmed[2:eq])
			if err != nil {
				return nil, 0, fmt.Errorf("line %d: bad register %q", i+1, trimmed[:eq])
			}
			ri.result = id
			ri.text = trimmed[eq+3:]
		}
		rf.instrs[cur] = append(rf.instrs[cur], ri)
		i++
	}
	return nil, 0, fmt.Errorf("line %d: unterminated function @%s", i, name)
}
