package ir

import (
	"fmt"
	"strconv"
	"strings"
)

var binByName = map[string]BinKind{
	"add": Add, "sub": Sub, "mul": Mul, "sdiv": Div, "srem": Rem,
	"and": And, "or": Or, "xor": Xor, "shl": Shl, "ashr": Shr,
}

var predByName = map[string]Pred{
	"eq": EQ, "ne": NE, "slt": LT, "sle": LE, "sgt": GT, "sge": GE,
}

var rmwByName = map[string]RMWKind{
	"add": RMWAdd, "sub": RMWSub, "and": RMWAnd, "or": RMWOr,
	"xor": RMWXor, "xchg": RMWXchg,
}

var ordByName = map[string]MemOrder{
	"relaxed": Relaxed, "acquire": Acquire, "release": Release,
	"acq_rel": AcqRel, "seq_cst": SeqCst,
}

var markByName = map[string]Mark{
	"spin": MarkSpinControl, "opt": MarkOptControl, "sticky": MarkSticky,
	"volatile": MarkFromVolatile, "atomic-upgrade": MarkFromAtomic,
	"asm": MarkFromAsm, "inserted": MarkInsertedFence, "naive": MarkNaive,
	"weakened": MarkWeakened,
}

// pendingOperand is an unresolved operand reference.
type pendingOperand struct {
	in  *Instr
	idx int
	ref string
}

// funcResolver holds per-function resolution state.
type funcResolver struct {
	p       *moduleParser
	fn      *Func
	byID    map[int]*Instr
	byBlock map[string]*Block
	pending []pendingOperand
	maxID   int
}

// buildInstrShells creates instruction objects for a raw function,
// recording operand references for later resolution.
func (p *moduleParser) buildInstrShells(rf *rawFunc) error {
	r := &funcResolver{
		p:       p,
		fn:      rf.fn,
		byID:    make(map[int]*Instr),
		byBlock: make(map[string]*Block),
	}
	rf.fn.resolver = r
	for _, b := range rf.blocks {
		if _, dup := r.byBlock[b.Name]; dup {
			return fmt.Errorf("@%s: duplicate block %%%s", rf.fn.Name, b.Name)
		}
		r.byBlock[b.Name] = b
	}
	for _, b := range rf.blocks {
		for _, ri := range rf.instrs[b] {
			in, err := r.parseInstr(b, ri)
			if err != nil {
				return fmt.Errorf("line %d: %w", ri.line, err)
			}
			// A register bound to a void instruction would be dropped by
			// the printer (void results are unnamed), so its uses could
			// never resolve on a re-parse; reject it here.
			if ri.result >= 0 && in.Type() == Void {
				return fmt.Errorf("line %d: register %%t%d assigned from a void instruction", ri.line, ri.result)
			}
			b.Instrs = append(b.Instrs, in)
		}
	}
	// Assign IDs to void instructions (the printer omits them) and set
	// the function's ID watermark.
	next := r.maxID + 1
	for _, b := range rf.blocks {
		for _, in := range b.Instrs {
			if in.ID < 0 {
				in.ID = next
				next++
			}
		}
	}
	rf.fn.ReserveIDs(next)
	return nil
}

// parseInstr creates one instruction shell.
func (r *funcResolver) parseInstr(b *Block, ri rawInstr) (*Instr, error) {
	text, comment, _ := strings.Cut(ri.text, " ; ")
	text = strings.TrimSpace(text)
	in := &Instr{ID: ri.result, Blk: b, Ty: Void}
	if ri.result >= 0 {
		if _, dup := r.byID[ri.result]; dup {
			return nil, fmt.Errorf("duplicate register %%t%d", ri.result)
		}
		r.byID[ri.result] = in
		if ri.result > r.maxID {
			r.maxID = ri.result
		}
	}
	if err := r.parseMarks(in, comment); err != nil {
		return nil, err
	}
	op, rest, _ := strings.Cut(text, " ")
	switch op {
	case "alloca":
		ty, tail, err := r.p.parseType(rest)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(tail) != "" {
			return nil, fmt.Errorf("trailing %q after alloca", tail)
		}
		in.Op = OpAlloca
		in.AllocElem = ty
		in.Ty = PointerTo(ty)
	case "load":
		ty, tail, err := r.p.parseType(rest)
		if err != nil {
			return nil, err
		}
		tail = strings.TrimPrefix(strings.TrimSpace(tail), ",")
		operand, attrs := splitOperandAttrs(tail)
		in.Op = OpLoad
		in.Ty = ty
		r.addOperand(in, operand)
		if err := r.parseAccessAttrs(in, attrs); err != nil {
			return nil, err
		}
	case "store":
		parts := splitTopLevel(rest, ',')
		if len(parts) != 2 {
			return nil, fmt.Errorf("store needs 2 operands")
		}
		operand2, attrs := splitOperandAttrs(strings.TrimSpace(parts[1]))
		in.Op = OpStore
		r.addOperand(in, strings.TrimSpace(parts[0])) // value placeholder: fixed below
		// Printer order is "store VALUE, ADDR": swap to Args[0]=addr.
		r.addOperand(in, operand2)
		r.swapLastTwo(in)
		if err := r.parseAccessAttrs(in, attrs); err != nil {
			return nil, err
		}
	case "cmpxchg":
		parts := splitTopLevel(rest, ',')
		if len(parts) != 3 {
			return nil, fmt.Errorf("cmpxchg needs 3 operands")
		}
		last, attrs := splitOperandAttrs(strings.TrimSpace(parts[2]))
		in.Op = OpCmpXchg
		in.Ty = I64 // result: the old cell value
		r.addOperand(in, strings.TrimSpace(parts[0]))
		r.addOperand(in, strings.TrimSpace(parts[1]))
		r.addOperand(in, last)
		if err := r.parseAccessAttrs(in, attrs); err != nil {
			return nil, err
		}
	case "atomicrmw":
		kindStr, tail, _ := strings.Cut(rest, " ")
		kind, ok := rmwByName[kindStr]
		if !ok {
			return nil, fmt.Errorf("unknown rmw kind %q", kindStr)
		}
		parts := splitTopLevel(tail, ',')
		if len(parts) != 2 {
			return nil, fmt.Errorf("atomicrmw needs 2 operands")
		}
		last, attrs := splitOperandAttrs(strings.TrimSpace(parts[1]))
		in.Op = OpRMW
		in.RMW = kind
		in.Ty = I64 // result: the old cell value
		r.addOperand(in, strings.TrimSpace(parts[0]))
		r.addOperand(in, last)
		if err := r.parseAccessAttrs(in, attrs); err != nil {
			return nil, err
		}
	case "fence":
		ord, ok := ordByName[strings.TrimSpace(rest)]
		if !ok {
			return nil, fmt.Errorf("unknown fence order %q", rest)
		}
		in.Op = OpFence
		in.Ord = ord
	case "icmp":
		predStr, tail, _ := strings.Cut(rest, " ")
		pred, ok := predByName[predStr]
		if !ok {
			return nil, fmt.Errorf("unknown predicate %q", predStr)
		}
		parts := splitTopLevel(tail, ',')
		if len(parts) != 2 {
			return nil, fmt.Errorf("icmp needs 2 operands")
		}
		in.Op = OpICmp
		in.Pred = pred
		in.Ty = I64
		r.addOperand(in, strings.TrimSpace(parts[0]))
		r.addOperand(in, strings.TrimSpace(parts[1]))
	case "getelementptr":
		return r.parseGEP(in, rest)
	case "call":
		return r.parseCall(in, rest)
	case "br":
		return r.parseBr(in, rest)
	case "ret":
		in.Op = OpRet
		arg := strings.TrimSpace(rest)
		if arg != "void" && arg != "" {
			r.addOperand(in, arg)
		}
	default:
		if kind, ok := binByName[op]; ok {
			parts := splitTopLevel(rest, ',')
			if len(parts) != 2 {
				return nil, fmt.Errorf("%s needs 2 operands", op)
			}
			in.Op = OpBin
			in.BinKind = kind
			in.Ty = I64
			r.addOperand(in, strings.TrimSpace(parts[0]))
			r.addOperand(in, strings.TrimSpace(parts[1]))
			break
		}
		return nil, fmt.Errorf("unknown opcode %q", op)
	}
	return in, nil
}

func (r *funcResolver) parseGEP(in *Instr, rest string) (*Instr, error) {
	ty, tail, err := r.p.parseType(rest)
	if err != nil {
		return nil, err
	}
	in.Op = OpGEP
	in.GEPBase = ty
	parts := splitTopLevel(strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(tail), ",")), ',')
	if len(parts) == 0 || strings.TrimSpace(parts[0]) == "" {
		return nil, fmt.Errorf("gep needs a base operand")
	}
	r.addOperand(in, strings.TrimSpace(parts[0]))
	walk := ty
	for _, part := range parts[1:] {
		part = strings.TrimSpace(part)
		switch {
		case strings.HasPrefix(part, "field "):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(part, "field ")))
			if err != nil {
				return nil, fmt.Errorf("bad field index %q", part)
			}
			st, ok := walk.(*StructType)
			if !ok || n < 0 || n >= len(st.Fields) {
				return nil, fmt.Errorf("field %d does not apply to %s", n, walk)
			}
			in.Path = append(in.Path, GEPStep{Field: n})
			walk = st.Fields[n].Type
		case strings.HasPrefix(part, "index "):
			in.Path = append(in.Path, GEPStep{Field: -1})
			r.addOperand(in, strings.TrimSpace(strings.TrimPrefix(part, "index ")))
			if at, ok := walk.(*ArrayType); ok {
				walk = at.Elem
			}
		default:
			return nil, fmt.Errorf("bad gep step %q", part)
		}
	}
	in.Ty = PointerTo(walk)
	return in, nil
}

func (r *funcResolver) parseCall(in *Instr, rest string) (*Instr, error) {
	ty, tail, err := r.p.parseType(rest)
	if err != nil {
		return nil, err
	}
	tail = strings.TrimSpace(tail)
	if !strings.HasPrefix(tail, "@") {
		return nil, fmt.Errorf("call needs a callee, got %q", tail)
	}
	open := strings.Index(tail, "(")
	closeIdx := strings.LastIndex(tail, ")")
	if open < 0 || closeIdx < open {
		return nil, fmt.Errorf("bad call argument list %q", tail)
	}
	in.Op = OpCall
	in.Ty = ty
	in.Callee = tail[1:open]
	args := tail[open+1 : closeIdx]
	if strings.TrimSpace(args) != "" {
		for _, a := range splitTopLevel(args, ',') {
			r.addOperand(in, strings.TrimSpace(a))
		}
	}
	return in, nil
}

func (r *funcResolver) parseBr(in *Instr, rest string) (*Instr, error) {
	in.Op = OpBr
	parts := splitTopLevel(rest, ',')
	label := func(s string) (*Block, error) {
		s = strings.TrimSpace(s)
		s = strings.TrimPrefix(s, "label ")
		s = strings.TrimPrefix(strings.TrimSpace(s), "%")
		b, ok := r.byBlock[s]
		if !ok {
			return nil, fmt.Errorf("unknown block %%%s", s)
		}
		return b, nil
	}
	switch len(parts) {
	case 1:
		b, err := label(parts[0])
		if err != nil {
			return nil, err
		}
		in.Then = b
	case 3:
		r.addOperand(in, strings.TrimSpace(parts[0]))
		thenB, err := label(parts[1])
		if err != nil {
			return nil, err
		}
		elseB, err := label(parts[2])
		if err != nil {
			return nil, err
		}
		in.Then, in.Else = thenB, elseB
	default:
		return nil, fmt.Errorf("bad branch %q", rest)
	}
	return in, nil
}

// splitOperandAttrs separates an operand from trailing access
// attributes ("volatile", an ordering).
func splitOperandAttrs(s string) (operand, attrs string) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return "", ""
	}
	operand = fields[0]
	attrs = strings.Join(fields[1:], " ")
	return operand, attrs
}

func (r *funcResolver) parseAccessAttrs(in *Instr, attrs string) error {
	for _, f := range strings.Fields(attrs) {
		if f == "volatile" {
			in.Volatile = true
			continue
		}
		ord, ok := ordByName[f]
		if !ok {
			return fmt.Errorf("unknown access attribute %q", f)
		}
		in.Ord = ord
	}
	return nil
}

func (r *funcResolver) parseMarks(in *Instr, comment string) error {
	comment = strings.TrimSpace(comment)
	if comment == "" {
		return nil
	}
	comment = strings.TrimPrefix(comment, "[")
	comment = strings.TrimSuffix(comment, "]")
	for _, m := range strings.Split(comment, ",") {
		mark, ok := markByName[strings.TrimSpace(m)]
		if !ok {
			return fmt.Errorf("unknown mark %q", m)
		}
		in.SetMark(mark)
	}
	return nil
}

// addOperand records an operand reference for later resolution.
func (r *funcResolver) addOperand(in *Instr, ref string) {
	in.Args = append(in.Args, nil)
	r.pending = append(r.pending, pendingOperand{in: in, idx: len(in.Args) - 1, ref: ref})
}

func (r *funcResolver) swapLastTwo(in *Instr) {
	n := len(r.pending)
	r.pending[n-1].idx, r.pending[n-2].idx = r.pending[n-2].idx, r.pending[n-1].idx
	r.pending[n-1], r.pending[n-2] = r.pending[n-2], r.pending[n-1]
}

// resolveOperands fills in all pending operand references.
func (p *moduleParser) resolveOperands(rf *rawFunc) error {
	r := rf.fn.resolver.(*funcResolver)
	rf.fn.resolver = nil
	params := make(map[string]*Param, len(rf.fn.Params))
	for _, pa := range rf.fn.Params {
		params[pa.PName] = pa
	}
	for _, pd := range r.pending {
		v, err := r.resolveRef(pd.ref, params)
		if err != nil {
			return fmt.Errorf("@%s: %w", rf.fn.Name, err)
		}
		pd.in.Args[pd.idx] = v
	}
	// Fix up result types that depend on operands.
	var fixErr error
	rf.fn.Instrs(func(in *Instr) {
		if fixErr != nil {
			return
		}
		switch in.Op {
		case OpCmpXchg, OpRMW:
			e := Pointee(in.Args[0].Type())
			if e == nil || e == Void {
				fixErr = fmt.Errorf("@%s: %s address %s is not a data pointer",
					rf.fn.Name, in.Op, in.Args[0].Operand())
				return
			}
			in.Ty = e
		case OpBin:
			in.Ty = in.Args[0].Type()
		}
	})
	return fixErr
}

func (r *funcResolver) resolveRef(ref string, params map[string]*Param) (Value, error) {
	switch {
	case ref == "":
		return nil, fmt.Errorf("empty operand")
	case strings.HasPrefix(ref, "@"):
		name := ref[1:]
		if g := r.p.mod.Global(name); g != nil {
			return g, nil
		}
		if fn := r.p.mod.Func(name); fn != nil {
			return &FuncRef{Fn: fn}, nil
		}
		return nil, fmt.Errorf("unknown symbol %s", ref)
	case strings.HasPrefix(ref, "%t"):
		id, err := strconv.Atoi(ref[2:])
		if err == nil {
			if in, ok := r.byID[id]; ok {
				return in, nil
			}
		}
		// Fall through: a parameter could legitimately be named like t0.
		fallthrough
	case strings.HasPrefix(ref, "%"):
		if pa, ok := params[ref[1:]]; ok {
			return pa, nil
		}
		return nil, fmt.Errorf("unknown register or parameter %s", ref)
	default:
		n, err := strconv.ParseInt(ref, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad operand %q", ref)
		}
		return Const(n), nil
	}
}
