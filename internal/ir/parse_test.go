package ir

import (
	"strings"
	"testing"
)

func roundTrip(t *testing.T, m *Module) *Module {
	t.Helper()
	text := m.String()
	parsed, err := ParseModule(text)
	if err != nil {
		t.Fatalf("ParseModule: %v\n--- input\n%s", err, text)
	}
	again := parsed.String()
	if again != text {
		t.Fatalf("round trip not stable:\n--- first\n%s\n--- second\n%s", text, again)
	}
	return parsed
}

func TestParseRoundTripSpinModule(t *testing.T) {
	m := buildSpinModule(t)
	roundTrip(t, m)
}

func TestParseRoundTripRichModule(t *testing.T) {
	m := NewModule("rich")
	node := &StructType{TypeName: "node", Fields: []Field{
		{Name: "state", Type: I64, Volatile: true},
		{Name: "vals", Type: &ArrayType{Elem: I64, Len: 4}},
		{Name: "next", Type: nil}, // patched below (self-reference)
	}}
	node.Fields[2].Type = PointerTo(node)
	if err := m.AddStruct(node); err != nil {
		t.Fatal(err)
	}
	if err := m.AddGlobal(&Global{GName: "pool", Elem: &ArrayType{Elem: node, Len: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddGlobal(&Global{GName: "cnt", Elem: I64, Atomic: true, Init: []int64{5}}); err != nil {
		t.Fatal(err)
	}
	f := &Func{Name: "touch", RetTy: I64, Params: []*Param{
		{PName: "p", Ty: PointerTo(node), Index: 0},
		{PName: "k", Ty: I64, Index: 1},
	}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f)
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	slot := b.Alloca(I64)
	b.Store(slot, f.Params[1])
	b.Br(loop)
	b.SetBlock(loop)
	sp := b.FieldPtr(f.Params[0], node, "state")
	ld := b.LoadOrd(sp, SeqCst)
	ld.SetMark(MarkSpinControl)
	ld.SetMark(MarkOptControl)
	fence := b.Fence(SeqCst)
	fence.SetMark(MarkInsertedFence)
	vp := b.GEP(f.Params[0], node, []GEPStep{{Field: 1}, {Field: -1}}, f.Params[1])
	vl := b.Load(vp)
	vl.Volatile = true
	cas := b.CmpXchg(m.Global("cnt"), Const(5), Const(9), AcqRel)
	rmw := b.RMW(RMWAdd, m.Global("cnt"), Const(1), SeqCst)
	sum := b.Bin(Add, vl, cas)
	sum2 := b.Bin(Xor, sum, rmw)
	cond := b.ICmp(GE, sum2, Const(0))
	b.CondBr(cond, exit, loop)
	b.SetBlock(exit)
	b.Call(Void, "print", sum2)
	c := b.Call(I64, "tid")
	b.Ret(c)

	parsed := roundTrip(t, m)
	// Structural spot checks.
	pf := parsed.Func("touch")
	if pf == nil || len(pf.Params) != 2 {
		t.Fatal("function signature lost")
	}
	if !parsed.Structs["node"].Fields[0].Volatile {
		t.Fatal("field qualifier lost")
	}
	if got := parsed.Global("cnt").Init; len(got) != 1 || got[0] != 5 {
		t.Fatal("global init lost")
	}
	var foundSpin, foundFence bool
	pf.Instrs(func(in *Instr) {
		if in.HasMark(MarkSpinControl) && in.HasMark(MarkOptControl) {
			foundSpin = true
		}
		if in.Op == OpFence && in.HasMark(MarkInsertedFence) {
			foundFence = true
		}
	})
	if !foundSpin || !foundFence {
		t.Fatal("marks lost in round trip")
	}
}

// TestMarksRoundTrip pins that every defined mark parses back under
// the name it prints — a mark missing from markByName makes dumped
// modules (e.g. atomig -O output, which stamps MarkWeakened)
// unreadable by the rest of the toolchain.
func TestMarksRoundTrip(t *testing.T) {
	for bit := Mark(1); bit <= MarkWeakened; bit <<= 1 {
		name := bit.String()
		if name == "" {
			t.Fatalf("mark bit %#x has no printed name", bit)
		}
		var in Instr
		if err := (&funcResolver{}).parseMarks(&in, "["+name+"]"); err != nil {
			t.Fatalf("mark %q does not parse back: %v", name, err)
		}
		if !in.HasMark(bit) {
			t.Fatalf("mark %q parsed to %#x, want %#x", name, in.Marks, bit)
		}
	}
}

func TestParseRoundTripSpawn(t *testing.T) {
	m := NewModule("spawnmod")
	w := &Func{Name: "worker", RetTy: Void, NoInline: true}
	if err := m.AddFunc(w); err != nil {
		t.Fatal(err)
	}
	wb := NewBuilder(w)
	wb.Ret(nil)
	f := &Func{Name: "main_thread", RetTy: Void}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f)
	b.Call(Void, "spawn", &FuncRef{Fn: w})
	b.Call(Void, "join")
	b.Ret(nil)
	parsed := roundTrip(t, m)
	var ref *FuncRef
	parsed.Func("main_thread").Instrs(func(in *Instr) {
		if in.Op == OpCall && in.Callee == "spawn" {
			ref, _ = in.Args[0].(*FuncRef)
		}
	})
	if ref == nil || ref.Fn != parsed.Func("worker") {
		t.Fatal("FuncRef operand lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"garbage", "wibble"},
		{"unknown struct ref", "@g = global %nope\n"},
		{"unknown opcode", "define void @f() {\nentry:\n  frobnicate 1\n}\n"},
		{"unknown operand", "define void @f() {\nentry:\n  ret %t99\n}\n"},
		{"unterminated func", "define void @f() {\nentry:\n  ret void\n"},
		{"branch to nowhere", "define void @f() {\nentry:\n  br label %missing\n}\n"},
		{"bad mark", "define void @f() {\nentry:\n  fence seq_cst ; [wat]\n  ret void\n}\n"},
		{"dup register", "define void @f() {\nentry:\n  %t0 = add 1, 2\n  %t0 = add 1, 2\n  ret void\n}\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseModule(c.text); err == nil {
				t.Fatalf("accepted %q", c.text)
			}
		})
	}
}

func TestParseMinimal(t *testing.T) {
	m, err := ParseModule(`; module tiny
@x = global i64
define i64 @get() {
entry:
  %t0 = load i64, @x
  ret %t0
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "tiny" || m.Func("get") == nil {
		t.Fatal("module structure wrong")
	}
	if !strings.Contains(m.String(), "load i64, @x") {
		t.Fatal("reprint lost content")
	}
}
