// Package ir defines AIR, the typed intermediate representation used by
// the atomig pipeline. AIR mirrors the fragment of LLVM IR that the
// AtoMig paper's analyses operate on: modules of globals and functions,
// functions as control-flow graphs of basic blocks, and instructions that
// include plain and atomic loads/stores, compare-exchange, atomic
// read-modify-write, fences, and getelementptr-style address arithmetic.
//
// Like clang -O0 output (which is what the paper analyzes), AIR does not
// use SSA phi nodes: mutable local variables live in stack slots created
// by Alloca, and every instruction result register is assigned exactly
// once. Memory is cell-addressed: every scalar occupies one cell, and
// aggregate layout is measured in cells, which keeps address arithmetic
// exact without byte-level complexity.
package ir

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all AIR types.
type Type interface {
	// String returns the textual form of the type (e.g. "i64", "ptr i64").
	String() string
	// Cells returns the storage size of the type in memory cells. Every
	// scalar (integer or pointer) occupies exactly one cell.
	Cells() int
}

// IntType is an integer type of a given bit width. AIR models i1, i8,
// i32 and i64; all are stored in a single cell.
type IntType struct {
	Bits int
}

func (t *IntType) String() string { return fmt.Sprintf("i%d", t.Bits) }

// Cells returns 1: every integer occupies one memory cell.
func (t *IntType) Cells() int { return 1 }

// PtrType is a pointer to a value of type Elem.
type PtrType struct {
	Elem Type
}

func (t *PtrType) String() string { return "ptr " + t.Elem.String() }

// Cells returns 1: pointers are scalar cell addresses.
func (t *PtrType) Cells() int { return 1 }

// StructType is a named aggregate with ordered fields. Field offsets are
// measured in cells. The name participates in type identity for the
// type-based alias analysis (two GEPs alias if they use the same named
// struct type and the same constant offsets), mirroring the paper's use
// of LLVM getelementptr type+offset matching.
type StructType struct {
	TypeName string
	Fields   []Field
}

// Field is a single named member of a StructType.
type Field struct {
	Name string
	Type Type
	// Volatile and Atomic record C qualifiers on the member declaration;
	// the frontend propagates them onto accesses through this field.
	Volatile bool
	Atomic   bool
}

func (t *StructType) String() string { return "%" + t.TypeName }

// Cells returns the total storage size: the sum of all field sizes.
func (t *StructType) Cells() int {
	n := 0
	for _, f := range t.Fields {
		n += f.Type.Cells()
	}
	return n
}

// FieldOffset returns the cell offset of field index i within the struct.
func (t *StructType) FieldOffset(i int) int {
	off := 0
	for j := 0; j < i; j++ {
		off += t.Fields[j].Type.Cells()
	}
	return off
}

// FieldIndex returns the index of the field with the given name, or -1.
func (t *StructType) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Layout returns the textual definition of the struct (parseable by
// ParseModule).
func (t *StructType) Layout() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%%%s = type {", t.TypeName)
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Type, f.Name)
		if f.Volatile {
			b.WriteString(" volatile")
		}
		if f.Atomic {
			b.WriteString(" atomic")
		}
	}
	b.WriteString("}")
	return b.String()
}

// ArrayType is a fixed-length sequence of Elem values.
type ArrayType struct {
	Elem Type
	Len  int
}

func (t *ArrayType) String() string { return fmt.Sprintf("[%d x %s]", t.Len, t.Elem) }

// Cells returns Len copies of the element size.
func (t *ArrayType) Cells() int { return t.Len * t.Elem.Cells() }

// VoidType is the type of instructions that produce no value.
type VoidType struct{}

func (t *VoidType) String() string { return "void" }

// Cells returns 0: void values occupy no storage.
func (t *VoidType) Cells() int { return 0 }

// Singleton types shared across the package. Types are compared by
// pointer identity for scalars and by name for structs.
var (
	I1   = &IntType{Bits: 1}
	I8   = &IntType{Bits: 8}
	I32  = &IntType{Bits: 32}
	I64  = &IntType{Bits: 64}
	Void = &VoidType{}
)

// PointerTo returns a pointer type to elem.
func PointerTo(elem Type) *PtrType { return &PtrType{Elem: elem} }

// TypesEqual reports whether a and b denote the same type. Integer types
// compare by width, pointers recursively, structs by name, arrays by
// length and element type.
func TypesEqual(a, b Type) bool {
	switch x := a.(type) {
	case *IntType:
		y, ok := b.(*IntType)
		return ok && x.Bits == y.Bits
	case *PtrType:
		y, ok := b.(*PtrType)
		return ok && TypesEqual(x.Elem, y.Elem)
	case *StructType:
		y, ok := b.(*StructType)
		return ok && x.TypeName == y.TypeName
	case *ArrayType:
		y, ok := b.(*ArrayType)
		return ok && x.Len == y.Len && TypesEqual(x.Elem, y.Elem)
	case *VoidType:
		_, ok := b.(*VoidType)
		return ok
	}
	return false
}

// IsInt reports whether t is an integer type.
func IsInt(t Type) bool { _, ok := t.(*IntType); return ok }

// IsPtr reports whether t is a pointer type.
func IsPtr(t Type) bool { _, ok := t.(*PtrType); return ok }

// Pointee returns the element type of a pointer type, or nil if t is not
// a pointer.
func Pointee(t Type) Type {
	if p, ok := t.(*PtrType); ok {
		return p.Elem
	}
	return nil
}
