package ir

import "fmt"

// Value is anything that can appear as an instruction operand: constants,
// globals, function parameters, and instruction results.
type Value interface {
	// Type returns the type of the value.
	Type() Type
	// Operand returns the textual operand form (e.g. "42", "@flag", "%t3").
	Operand() string
}

// ConstInt is an integer constant.
type ConstInt struct {
	Ty *IntType
	V  int64
}

// Const returns an i64 constant with the given value.
func Const(v int64) *ConstInt { return &ConstInt{Ty: I64, V: v} }

// ConstOf returns a constant of the given integer type.
func ConstOf(t *IntType, v int64) *ConstInt { return &ConstInt{Ty: t, V: v} }

func (c *ConstInt) Type() Type      { return c.Ty }
func (c *ConstInt) Operand() string { return fmt.Sprintf("%d", c.V) }

// Global is a module-level variable. Its value as an operand is the
// address of its storage (type: pointer to Elem).
type Global struct {
	GName string
	Elem  Type
	// Init holds the initial cell values (length Elem.Cells()); nil means
	// zero-initialized.
	Init []int64
	// Volatile records a C volatile qualifier on the declaration. The
	// explicit-annotation analysis turns accesses to volatile globals into
	// SC atomics (paper section 3.2).
	Volatile bool
	// Atomic records a C11 _Atomic qualifier on the declaration.
	Atomic bool
}

func (g *Global) Type() Type      { return PointerTo(g.Elem) }
func (g *Global) Operand() string { return "@" + g.GName }

// Param is a function parameter.
type Param struct {
	PName string
	Ty    Type
	Index int
}

func (p *Param) Type() Type      { return p.Ty }
func (p *Param) Operand() string { return "%" + p.PName }

// FuncRef is a reference to a function used as a first-class value
// (e.g. the argument of a spawn call).
type FuncRef struct {
	Fn *Func
}

func (f *FuncRef) Type() Type      { return PointerTo(Void) }
func (f *FuncRef) Operand() string { return "@" + f.Fn.Name }
