package ir

import (
	"fmt"
)

// Verify checks module well-formedness: every block is terminated, every
// branch targets a block of the same function, operand types are
// consistent for memory operations, called functions exist (or are known
// builtins), and instruction result IDs are unique within each function.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := verifyFunc(m, f); err != nil {
			return fmt.Errorf("ir: function @%s: %w", f.Name, err)
		}
	}
	return nil
}

// Builtins recognized by the VM and the analyses. Values are result
// types.
var Builtins = map[string]Type{
	"assert":  Void, // assert(cond): fail the execution if cond == 0
	"spawn":   Void, // spawn(@fn): start a new thread
	"join":    Void, // join(): wait for all spawned threads
	"malloc":  PointerTo(I64),
	"free":    Void,
	"tid":     I64,  // current thread id
	"print":   Void, // debugging aid
	"yield":   Void, // scheduling hint, no memory effect
	"pause":   Void, // cpu_relax-style hint, no memory effect
	"nondet":  I64,  // nondeterministic input (model checking)
	"barrier": Void, // barrier(n): rendezvous of n threads (pthread_barrier-style)
	"asm":     Void, // opaque inline assembly the frontend could not map
	// compiler_barrier marks an asm volatile("":::"memory"): no runtime
	// effect, but a hint the discussion-section extension uses as an
	// additional seed for synchronization detection.
	"compiler_barrier": Void,
}

func verifyFunc(m *Module, f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	blocks := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blocks[b] = true
	}
	seen := make(map[int]bool)
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %%%s is empty", b.Name)
		}
		for i, in := range b.Instrs {
			if seen[in.ID] {
				return fmt.Errorf("duplicate instruction id %%t%d", in.ID)
			}
			seen[in.ID] = true
			if in.Blk != b {
				return fmt.Errorf("instruction %%t%d has wrong parent block", in.ID)
			}
			isLast := i == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				return fmt.Errorf("block %%%s: terminator misplaced at %d (%s)", b.Name, i, in)
			}
			if err := verifyInstr(m, f, blocks, in); err != nil {
				return fmt.Errorf("%s: %w", in, err)
			}
		}
	}
	return nil
}

func verifyInstr(m *Module, f *Func, blocks map[*Block]bool, in *Instr) error {
	for _, a := range in.Args {
		if a == nil {
			return fmt.Errorf("nil operand")
		}
	}
	switch in.Op {
	case OpAlloca:
		if in.AllocElem == nil {
			return fmt.Errorf("alloca without element type")
		}
	case OpLoad:
		if !IsPtr(in.Args[0].Type()) {
			return fmt.Errorf("load address is not a pointer")
		}
	case OpStore:
		pt := Pointee(in.Args[0].Type())
		if pt == nil {
			return fmt.Errorf("store address is not a pointer")
		}
	case OpCmpXchg:
		if len(in.Args) != 3 {
			return fmt.Errorf("cmpxchg needs 3 operands")
		}
		if !IsPtr(in.Args[0].Type()) {
			return fmt.Errorf("cmpxchg address is not a pointer")
		}
		if !in.Ord.Atomic() {
			return fmt.Errorf("cmpxchg must be atomic")
		}
	case OpRMW:
		if len(in.Args) != 2 {
			return fmt.Errorf("atomicrmw needs 2 operands")
		}
		if !IsPtr(in.Args[0].Type()) {
			return fmt.Errorf("atomicrmw address is not a pointer")
		}
		if !in.Ord.Atomic() {
			return fmt.Errorf("atomicrmw must be atomic")
		}
	case OpFence:
		if !in.Ord.Atomic() {
			return fmt.Errorf("fence must have an atomic ordering")
		}
	case OpGEP:
		if !IsPtr(in.Args[0].Type()) {
			return fmt.Errorf("gep base is not a pointer")
		}
		dyn := 0
		for _, st := range in.Path {
			if st.Field < 0 {
				dyn++
			}
		}
		if len(in.Args) != 1+dyn {
			return fmt.Errorf("gep has %d args, expected %d", len(in.Args), 1+dyn)
		}
	case OpCall:
		if m.Func(in.Callee) == nil {
			if _, ok := Builtins[in.Callee]; !ok {
				return fmt.Errorf("call to unknown function @%s", in.Callee)
			}
		}
	case OpBr:
		if in.Then == nil || !blocks[in.Then] {
			return fmt.Errorf("branch to foreign or nil block")
		}
		if in.Else != nil {
			if !blocks[in.Else] {
				return fmt.Errorf("branch to foreign else block")
			}
			if len(in.Args) != 1 {
				return fmt.Errorf("conditional branch needs a condition")
			}
		}
	case OpRet:
		// Void or value returns are both accepted; the frontend enforces
		// signature conformance.
	case OpBin, OpICmp:
		if len(in.Args) != 2 {
			return fmt.Errorf("binary op needs 2 operands")
		}
	}
	return nil
}
