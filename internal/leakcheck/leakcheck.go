// Package leakcheck asserts that a test leaves no goroutines behind.
// The worker pools in this repository (pipeline fan-out, mc frontier
// workers, race sweeps, difftest grid, the serving daemon) all promise
// that every goroutine they start exits before their entry point
// returns — on success, cancellation, and panic alike. leakcheck makes
// that promise testable without external dependencies: it snapshots the
// goroutine profile, runs the test, and retries the comparison briefly
// so goroutines that are mid-exit (runtime bookkeeping, closing
// net.Conns) are not reported as leaks.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// ignored reports whether a goroutine stack belongs to the runtime or
// test machinery rather than to code under test.
func ignored(stack string) bool {
	for _, frag := range []string{
		"testing.(*T).Run",       // the test runner itself
		"testing.(*M).",          // TestMain machinery
		"testing.runTests",       //
		"testing.tRunner",        // subtest parents blocked on children
		"runtime.goexit",         // fully-exited placeholder
		"created by runtime",     // GC, scavenger, finalizer goroutines
		"runtime/pprof",          // the profiler taking this snapshot
		"signal.Notify",          // os/signal watcher, process-global
		"leakcheck.snapshot",     // ourselves
		"testing.(*F).Fuzz",      // fuzz worker coordination
		"os/exec.(*Cmd)",         // exec helpers finishing I/O copies
		"go.itab",                // itab init goroutines (toolchain)
	} {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	return false
}

// snapshot returns the stacks of all live goroutines that are not
// ignorable, one entry per goroutine.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || ignored(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// TB is the subset of *testing.T leakcheck needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// Check registers a cleanup that fails the test if, after it finishes,
// more goroutines are alive than when Check was called. Call it at the
// top of a test:
//
//	func TestDaemon(t *testing.T) {
//	    leakcheck.Check(t)
//	    ...
//	}
//
// The comparison retries for up to ~2s so goroutines that are already
// unwinding do not count as leaks.
func Check(t TB) {
	t.Helper()
	before := len(snapshot())
	t.Cleanup(func() {
		if extra := wait(before, 2*time.Second); extra != nil {
			t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s",
				len(extra), strings.Join(extra, "\n\n"))
		}
	})
}

// wait polls until the live-goroutine count is back down to at most
// before, or the deadline passes; it returns the surplus stacks.
func wait(before int, d time.Duration) []string {
	deadline := time.Now().Add(d)
	for {
		now := snapshot()
		if len(now) <= before {
			return nil
		}
		if time.Now().After(deadline) {
			return now
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Err is the non-test-bound form: it returns an error if the current
// non-ignorable goroutine count exceeds baseline after waiting up to d.
// The daemon's shutdown path uses it for a self-check in -serve smoke
// runs.
func Err(baseline int, d time.Duration) error {
	if extra := wait(baseline, d); extra != nil {
		return fmt.Errorf("leakcheck: %d goroutine(s) leaked:\n%s",
			len(extra), strings.Join(extra, "\n\n"))
	}
	return nil
}

// Count returns the current number of non-ignorable goroutines, the
// baseline input to Err.
func Count() int { return len(snapshot()) }
