package mc

import (
	"context"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/memmodel"
)

// explosiveSrc is a deliberately state-explosive program: three threads
// hammer disjoint counters and cross-read each other, so the
// interleaving tree is far larger than any small execution budget.
const explosiveSrc = `
int a;
int b;
int c;
int out;
void t0(void) {
  for (int i = 0; i < 6; i = i + 1) { a = a + 1; out = out + b; }
}
void t1(void) {
  for (int i = 0; i < 6; i = i + 1) { b = b + 1; out = out + c; }
}
void t2(void) {
  for (int i = 0; i < 6; i = i + 1) { c = c + 1; out = out + a; }
}
`

// TestBudgetExhaustionIsUnknown: cutting exploration short must degrade
// to VerdictUnknown with nonzero exploration statistics and a resume
// token — never a false VerdictPass.
func TestBudgetExhaustionIsUnknown(t *testing.T) {
	m := compile(t, explosiveSrc)
	res, err := Check(m, Options{
		Model:         memmodel.ModelWMM,
		Entries:       []string{"t0", "t1", "t2"},
		MaxExecutions: 200,
		TimeBudget:    time.Minute,
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != VerdictUnknown {
		t.Fatalf("verdict = %s, want unknown (execs=%d frontier=%d)",
			res.Verdict, res.Executions, res.Frontier)
	}
	if res.Executions != 200 {
		t.Errorf("executions = %d, want 200", res.Executions)
	}
	if res.Frontier == 0 {
		t.Errorf("frontier = 0, want unexplored branches")
	}
	if res.States == 0 {
		t.Errorf("states = 0, want a populated visited cache")
	}
	if res.Reason != "execution budget exhausted" {
		t.Errorf("reason = %q", res.Reason)
	}
	if res.Resume == nil {
		t.Fatalf("no resume token on budget-exhausted Unknown")
	}
	if res.Resume.Executions() != 200 || res.Resume.Frontier() == 0 {
		t.Errorf("token stats: execs=%d frontier=%d", res.Resume.Executions(), res.Resume.Frontier())
	}
}

// TestTimeBudgetIsUnknown covers the wall-clock budget path.
func TestTimeBudgetIsUnknown(t *testing.T) {
	m := compile(t, explosiveSrc)
	res, err := Check(m, Options{
		Model:      memmodel.ModelWMM,
		Entries:    []string{"t0", "t1", "t2"},
		TimeBudget: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != VerdictUnknown {
		t.Fatalf("verdict = %s, want unknown", res.Verdict)
	}
	if res.Reason != "time budget exhausted" {
		t.Errorf("reason = %q", res.Reason)
	}
	if res.Elapsed < 50*time.Millisecond {
		t.Errorf("elapsed = %s below budget", res.Elapsed)
	}
}

// TestContextCancellation: a canceled context degrades to Unknown with
// the work so far, instead of being lost — and the worker pool drains
// completely on the cancel path (no leaked goroutines), at every
// fan-out.
func TestContextCancellation(t *testing.T) {
	leakcheck.Check(t)
	m := compile(t, explosiveSrc)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := Check(m, Options{
			Model:      memmodel.ModelWMM,
			Entries:    []string{"t0", "t1", "t2"},
			TimeBudget: time.Minute,
			Context:    ctx,
			Workers:    workers,
		})
		if err != nil {
			t.Fatalf("Check (workers=%d): %v", workers, err)
		}
		if res.Verdict != VerdictUnknown || res.Reason != "canceled" {
			t.Fatalf("workers=%d: verdict = %s reason = %q, want unknown/canceled",
				workers, res.Verdict, res.Reason)
		}
	}
}

// TestResumeDeterministic: an exploration chopped into execution-budget
// slices and resumed must visit exactly the executions the
// uninterrupted run visits, in the same order, and end with the same
// verdict, execution count and violations. Covered on both a racy
// program (mpSrc, ends Violated) and a properly synchronized one
// (ends Verified).
func TestResumeDeterministic(t *testing.T) {
	const safeSrc = `
_Atomic int flag;
int msg;
void writer(void) { msg = 1; flag = 1; }
void reader(void) {
  while (flag == 0) { }
  assert(msg == 1);
}
`
	run := func(src string, entries []string, slice int) (*Result, int) {
		m := compile(t, src)
		var token *ResumeToken
		rounds := 0
		for {
			rounds++
			opts := Options{
				Model:      memmodel.ModelWMM,
				Entries:    entries,
				TimeBudget: time.Minute,
				Resume:     token,
			}
			if slice > 0 {
				// Each slice extends the execution budget by `slice`.
				prev := 0
				if token != nil {
					prev = token.Executions()
				}
				opts.MaxExecutions = prev + slice
			}
			res, err := Check(m, opts)
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if res.Resume == nil {
				return res, rounds
			}
			token = res.Resume
			if rounds > 10_000 {
				t.Fatalf("resume loop did not converge")
			}
		}
	}

	entries := []string{"reader", "writer"}
	for _, src := range []string{mpSrc, safeSrc} {
		full, _ := run(src, entries, 0) // uninterrupted reference
		for _, slice := range []int{1, 7, 64} {
			chopped, rounds := run(src, entries, slice)
			if chopped.Verdict != full.Verdict {
				t.Errorf("slice %d: verdict %s != %s", slice, chopped.Verdict, full.Verdict)
			}
			if chopped.Executions != full.Executions {
				t.Errorf("slice %d: executions %d != %d (after %d rounds)",
					slice, chopped.Executions, full.Executions, rounds)
			}
			if len(chopped.Violations) != len(full.Violations) {
				t.Errorf("slice %d: violations %d != %d", slice, len(chopped.Violations), len(full.Violations))
			}
		}
	}
}

// TestResumeTokenRoundTrip: Encode/Decode preserves the frontier, and a
// decoded (cross-process) token still finishes the exploration with the
// right verdict.
func TestResumeTokenRoundTrip(t *testing.T) {
	m := compile(t, mpSrc)
	res, err := Check(m, Options{
		Model:         memmodel.ModelWMM,
		Entries:       []string{"reader", "writer"},
		MaxExecutions: 5,
		TimeBudget:    time.Minute,
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != VerdictUnknown || res.Resume == nil {
		t.Skipf("program fully explored in 5 executions; verdict %s", res.Verdict)
	}
	decoded, err := DecodeResume(res.Resume.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if decoded.Executions() != res.Resume.Executions() || decoded.Frontier() != res.Resume.Frontier() {
		t.Fatalf("round trip lost stats: %d/%d vs %d/%d",
			decoded.Executions(), decoded.Frontier(),
			res.Resume.Executions(), res.Resume.Frontier())
	}
	cont, err := Check(m, Options{
		Model:      memmodel.ModelWMM,
		Entries:    []string{"reader", "writer"},
		TimeBudget: time.Minute,
		Resume:     decoded,
	})
	if err != nil {
		t.Fatalf("resumed Check: %v", err)
	}
	// mpSrc is racy under WMM: the continued exploration must find it.
	if cont.Verdict != VerdictFail {
		t.Fatalf("resumed verdict = %s, want violated", cont.Verdict)
	}

	if _, err := DecodeResume("not-a-token"); err == nil {
		t.Error("DecodeResume accepted garbage")
	}
	if _, err := DecodeResume(""); err == nil {
		t.Error("DecodeResume accepted empty input")
	}
}
