package mc

import (
	"testing"
	"time"

	"repro/internal/memmodel"
)

// litmusCase is one classic litmus test: a program whose assertion
// fails exactly when the weak behavior is observable, plus the expected
// observability per memory model.
//
// The WMM machine models the TSO-forbidden behaviors AtoMig targets
// (store buffering, message passing, coherence, seqlock/lf-hash
// reorderings); load buffering requires promises and is documented as
// out of scope (observable = false everywhere).
type litmusCase struct {
	name string
	src  string
	// observable[model] reports whether the weak outcome is reachable.
	sc, tso, wmm bool
}

var litmusCases = []litmusCase{
	{
		name: "SB (store buffering)",
		src: `
int x; int y; int r0 = -1; int r1 = -1;
void t0(void) { x = 1; r0 = y; }
void t1(void) { y = 1; r1 = x; }
void main_thread(void) {
  spawn(t0); spawn(t1); join();
  assert(r0 + r1 != 0);
}
`,
		sc: false, tso: true, wmm: true,
	},
	{
		name: "MP (message passing)",
		src: `
int x; int y; int r0 = -1; int r1 = -1;
void t0(void) { x = 1; y = 1; }
void t1(void) { r0 = y; r1 = x; }
void main_thread(void) {
  spawn(t0); spawn(t1); join();
  assert(!(r0 == 1 && r1 == 0));
}
`,
		sc: false, tso: false, wmm: true,
	},
	{
		name: "MP+rel+acq (fixed message passing)",
		src: `
int x; int y; int r0 = -1; int r1 = -1;
void t0(void) { x = 1; __store_rel(&y, 1); }
void t1(void) { r0 = __load_acq(&y); r1 = x; }
void main_thread(void) {
  spawn(t0); spawn(t1); join();
  assert(!(r0 == 1 && r1 == 0));
}
`,
		sc: false, tso: false, wmm: false,
	},
	{
		name: "CoRR (read-read coherence)",
		src: `
int x; int a = -1; int b = -1;
void t0(void) { x = 1; x = 2; }
void t1(void) { a = x; b = x; }
void main_thread(void) {
  spawn(t0); spawn(t1); join();
  assert(b >= a);
}
`,
		sc: false, tso: false, wmm: false,
	},
	{
		name: "CoWW (write-write coherence)",
		src: `
int x;
void t0(void) { x = 1; x = 2; }
void main_thread(void) {
  spawn(t0); join();
  assert(x == 2);
}
`,
		sc: false, tso: false, wmm: false,
	},
	{
		name: "LB (load buffering; needs promises, not modeled)",
		src: `
int x; int y; int r0 = -1; int r1 = -1;
void t0(void) { r0 = x; y = 1; }
void t1(void) { r1 = y; x = 1; }
void main_thread(void) {
  spawn(t0); spawn(t1); join();
  assert(!(r0 == 1 && r1 == 1));
}
`,
		sc: false, tso: false, wmm: false,
	},
	{
		name: "2+2W (write order observation)",
		src: `
int x; int y; int r0 = -1; int r1 = -1;
void t0(void) { x = 1; y = 2; }
void t1(void) { y = 1; x = 2; }
void reader(void) { r0 = x; r1 = y; }
void main_thread(void) {
  spawn(t0); spawn(t1); join();
  // After both writers, each location holds one of its two values.
  assert(x == 1 || x == 2);
  assert(y == 1 || y == 2);
}
`,
		sc: false, tso: false, wmm: false,
	},
	{
		name: "WRC (write-to-read causality via release/acquire)",
		src: `
int x; int y; int r0 = -1; int r1 = -1;
void t0(void) { x = 1; }
void t1(void) {
  while (x == 0) { }
  __store_rel(&y, 1);
}
void t2(void) {
  r0 = __load_acq(&y);
  r1 = x;
}
void main_thread(void) {
  spawn(t0); spawn(t1); spawn(t2); join();
  assert(!(r0 == 1 && r1 == 0));
}
`,
		sc: false, tso: false, wmm: false,
	},
	{
		name: "WRC-plain (causality lost with plain accesses)",
		src: `
int x; int y; int r0 = -1; int r1 = -1;
void t0(void) { x = 1; }
void t1(void) {
  while (x == 0) { }
  y = 1;
}
void t2(void) {
  r0 = y;
  r1 = x;
}
void main_thread(void) {
  spawn(t0); spawn(t1); spawn(t2); join();
  assert(!(r0 == 1 && r1 == 0));
}
`,
		sc: false, tso: false, wmm: true,
	},
	{
		name: "SB+fences (store buffering forbidden by DMB)",
		src: `
int x; int y; int r0 = -1; int r1 = -1;
void t0(void) { x = 1; __fence(); r0 = y; }
void t1(void) { y = 1; __fence(); r1 = x; }
void main_thread(void) {
  spawn(t0); spawn(t1); join();
  assert(r0 + r1 != 0);
}
`,
		sc: false, tso: false, wmm: false,
	},
	{
		name: "RMW atomicity (parallel increments never lost)",
		src: `
int x;
void t0(void) { __faa(&x, 1); __faa(&x, 1); }
void t1(void) { __faa(&x, 1); }
void main_thread(void) {
  spawn(t0); spawn(t1); join();
  assert(x == 3);
}
`,
		sc: false, tso: false, wmm: false,
	},
}

// TestLitmusBattery validates the memory-model machinery against the
// standard litmus classification.
func TestLitmusBattery(t *testing.T) {
	models := []struct {
		model memmodel.Model
		pick  func(c litmusCase) bool
	}{
		{memmodel.ModelSC, func(c litmusCase) bool { return c.sc }},
		{memmodel.ModelTSO, func(c litmusCase) bool { return c.tso }},
		{memmodel.ModelWMM, func(c litmusCase) bool { return c.wmm }},
	}
	for _, c := range litmusCases {
		m := compile(t, c.src)
		for _, spec := range models {
			t.Run(c.name+"/"+spec.model.String(), func(t *testing.T) {
				res, err := Check(m, Options{
					Model: spec.model, Entries: []string{"main_thread"},
					MaxExecutions: 200_000, TimeBudget: 5 * time.Second,
					StopAtFirst: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				observable := res.Verdict == VerdictFail
				if observable != spec.pick(c) {
					t.Errorf("observable=%v, want %v (verdict %s, %d execs, violations %v)",
						observable, spec.pick(c), res.Verdict, res.Executions, res.Violations)
				}
			})
		}
	}
}

// TestIRIW documents the model's independent-reads-independent-writes
// behavior: with plain accesses the two readers may disagree on the
// order of the two writes (allowed here and under RC11-relaxed;
// real Armv8 is multi-copy atomic and forbids it for LDAR — one of the
// documented approximations of the view machine, see
// docs/MEMORY-MODEL.md). With SC fences between the reads it is
// forbidden.
func TestIRIW(t *testing.T) {
	plain := compile(t, `
int x; int y;
int r0; int r1; int r2; int r3;
void w0(void) { x = 1; }
void w1(void) { y = 1; }
void rd0(void) { r0 = x; r1 = y; }
void rd1(void) { r2 = y; r3 = x; }
void main_thread(void) {
  spawn(w0); spawn(w1); spawn(rd0); spawn(rd1); join();
  // Disagreement: rd0 saw x before y, rd1 saw y before x.
  assert(!(r0 == 1 && r1 == 0 && r2 == 1 && r3 == 0));
}
`)
	res, err := Check(plain, Options{
		Model: memmodel.ModelWMM, Entries: []string{"main_thread"},
		MaxExecutions: 400_000, TimeBudget: 10 * time.Second, StopAtFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictFail {
		t.Fatalf("plain IRIW not observable (verdict %s, %d execs)", res.Verdict, res.Executions)
	}

	fenced := compile(t, `
int x; int y;
int r0; int r1; int r2; int r3;
void w0(void) { x = 1; __fence(); }
void w1(void) { y = 1; __fence(); }
void rd0(void) { r0 = x; __fence(); r1 = y; }
void rd1(void) { r2 = y; __fence(); r3 = x; }
void main_thread(void) {
  spawn(w0); spawn(w1); spawn(rd0); spawn(rd1); join();
  assert(!(r0 == 1 && r1 == 0 && r2 == 1 && r3 == 0));
}
`)
	res, err = Check(fenced, Options{
		Model: memmodel.ModelWMM, Entries: []string{"main_thread"},
		MaxExecutions: 400_000, TimeBudget: 10 * time.Second, StopAtFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict == VerdictFail {
		t.Fatalf("fenced IRIW observable: %v", res.Violations)
	}
}
