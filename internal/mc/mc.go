// Package mc is a bounded exhaustive model checker for AIR programs
// under the SC, TSO and WMM memory models — the reproduction's
// stand-in for GenMC in the paper's correctness evaluation (Table 2).
//
// Exploration is stateless in the GenMC sense: each execution replays
// the program from scratch following a recorded choice trace (scheduler
// decisions at visible operations, weak-read message choices, nondet
// inputs), and depth-first backtracking enumerates the remaining
// choices. A visited-state cache (full state hash after each visible
// step) prunes re-converging interleavings — in particular spinloop
// iterations that observed no change, which is what keeps spinloop
// programs finite without unsound loop bounding.
package mc

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/race"
	"repro/internal/vm"
)

// Options configures a check.
type Options struct {
	Model   memmodel.Model
	Entries []string
	// MaxExecutions bounds the number of explored executions
	// (0 = 1_000_000).
	MaxExecutions int
	// MaxStepsPerExec bounds each execution's instruction count
	// (0 = 100_000).
	MaxStepsPerExec int64
	// TimeBudget bounds the wall-clock exploration time (0 = 10s). When
	// exceeded without a violation, the verdict is VerdictUnknown and
	// Result.Resume can continue the exploration.
	TimeBudget time.Duration
	// Context, when non-nil, cancels the exploration early; a canceled
	// check degrades to VerdictUnknown with a resume token instead of
	// losing the work done so far.
	Context context.Context
	// Resume continues a budget-expired exploration from the token a
	// previous Check returned. The token pins the depth-first frontier,
	// so a resumed run follows exactly the trajectory the uninterrupted
	// run would have taken.
	Resume *ResumeToken
	// StopAtFirst stops at the first violation (default: keep exploring
	// and report up to 16 violations).
	StopAtFirst bool
	// Traces replays each violating execution with tracing enabled and
	// attaches the visible-operation counterexample.
	Traces bool
	// Workers selects the parallel frontier-split engine with that many
	// workers sharing a lock-striped visited cache (0 = the sequential
	// engine; callers wanting all cores pass runtime.GOMAXPROCS(0)).
	// On fully explored state spaces the verdict, the violation set and
	// the race-report keys are identical for every worker count; see
	// docs/MODEL-CHECKER.md.
	Workers int
	// ResumeAll seeds the exploration with multiple frontier fragments —
	// the per-worker tokens an interrupted parallel run emits. A non-empty
	// ResumeAll selects the parallel engine even when Workers is 0.
	ResumeAll []*ResumeToken
	// DetectRaces attaches a happens-before race detector to every
	// explored execution. Data races become a first-class verdict
	// (VerdictRace) and the detector's happens-before state is mixed
	// into the visited-state hash, so pruning never collapses two states
	// whose clock assignments differ — a VerdictPass with race detection
	// on is a proof of race-freedom over the explored space.
	DetectRaces bool
	// MaxRaceReports caps the distinct race reports retained (0 = the
	// detector default).
	MaxRaceReports int
	// Obs is the observability provider (docs/OBSERVABILITY.md): the
	// exploration counters land in its metrics registry and, when its
	// tracer is on, every worker records a fragment-claim/donation
	// timeline. Nil falls back to a private registry — the counters also
	// feed Result — with tracing off.
	Obs *obs.Provider
}

// Counterexample is a violating execution: the violation message plus
// the sequence of visible operations that led to it.
type Counterexample struct {
	Msg    string
	Events []vm.TraceEvent
}

// String renders the counterexample as an interleaving.
func (c Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "violation: %s\n", c.Msg)
	for _, e := range c.Events {
		fmt.Fprintf(&b, "  T%d @%s: %s\n", e.Thread, e.Fn, e.Instr)
	}
	return b.String()
}

// Verdict is the three-valued outcome of a check. A checker that runs
// out of budget must say so: "no violation found in the part we
// explored" (Unknown) is a different claim from "no violation exists"
// (Verified), and conflating them is how a bounded checker silently
// certifies buggy code.
type Verdict int

// Verdicts.
const (
	// VerdictPass: no violation; the state space was fully explored.
	VerdictPass Verdict = iota
	// VerdictUnknown: no violation found, but exploration was cut short
	// by a budget (time, executions, per-execution steps) or canceled;
	// the result carries a resume token and exploration statistics.
	VerdictUnknown
	// VerdictFail: at least one execution violated an assertion or
	// deadlocked.
	VerdictFail
	// VerdictRace: no assertion violation or deadlock, but race
	// detection was on and at least one execution contained a data
	// race. Precedence is Fail > Race > Unknown > Pass: an outright
	// violation outranks a race, and a witnessed race is a definitive
	// claim even when exploration was cut short.
	VerdictRace
)

// VerdictPassBounded is the historical name of VerdictUnknown, kept so
// older callers keep compiling; new code should branch on the
// three-valued verdict directly.
const VerdictPassBounded = VerdictUnknown

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "verified"
	case VerdictUnknown:
		return "unknown"
	case VerdictFail:
		return "violated"
	case VerdictRace:
		return "racy"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Result reports a check's findings.
type Result struct {
	Verdict    Verdict
	Violations []string
	// Counterexamples carries violation traces when Options.Traces is
	// set (parallel to Violations).
	Counterexamples []Counterexample
	// Races holds the deduplicated race reports when
	// Options.DetectRaces is set.
	Races []*race.Report
	// RaceWitnesses carries one replayed interleaving per execution
	// that exposed a previously unseen race, when Options.Traces and
	// Options.DetectRaces are both set.
	RaceWitnesses []Counterexample
	Executions    int
	// Pruned counts executions cut short by the visited-state cache.
	Pruned int
	// Truncated counts executions stopped by the per-execution step
	// budget (possible livelocks).
	Truncated int
	// States is the number of distinct post-visible-step states the
	// visited cache holds.
	States int
	// Frontier is the number of unexplored branches remaining on the
	// depth-first stack when the check stopped — 0 on a fully explored
	// state space, positive when a budget cut exploration short.
	Frontier int
	// Elapsed is the wall-clock exploration time consumed.
	Elapsed time.Duration
	// Reason explains an Unknown verdict ("time budget exhausted",
	// "execution budget exhausted", "canceled", or "step-truncated
	// executions"); empty otherwise.
	Reason string
	// Resume continues the exploration where this check stopped; nil
	// unless the verdict is VerdictUnknown with work remaining.
	Resume *ResumeToken
	// ResumeTokens carries one token per remaining frontier fragment
	// when the parallel engine is interrupted (per-worker remainders
	// plus undistributed queue fragments). Resume mirrors the single
	// token when exactly one fragment remains.
	ResumeTokens []*ResumeToken
	// Workers is the worker count the check ran with (1 for the
	// sequential engine).
	Workers int
	// ShardContention counts contended visited-shard lock acquisitions
	// in the parallel engine (0 for -j 1: the single-worker cache skips
	// locking entirely).
	ShardContention int64
	// VMResets and VMAllocs count how executions obtained their VM:
	// recycled via vm.Reset versus freshly built with vm.New.
	VMResets int64
	VMAllocs int64
}

// maxReports caps the violations, counterexamples and race witnesses a
// check retains, shared by the sequential loop and the parallel merge.
const maxReports = 16

// choice is one recorded nondeterministic decision.
type choice struct {
	options int
	taken   int
	// ceil is the exclusive backtrack bound on taken (0 means options):
	// alternatives at ceil and beyond were donated to another worker by
	// a frontier split, so backtracking must not re-take them. Replay is
	// unaffected — it follows taken values only.
	ceil int
}

// bound returns the exclusive upper bound backtracking may take.
func (c choice) bound() int {
	if c.ceil > 0 {
		return c.ceil
	}
	return c.options
}

// dfs is the replay controller driving the exploration.
type dfs struct {
	trace     []choice
	pos       int
	prefixLen int
	// floor is the immutable prefix length of this exploration fragment:
	// backtrack never pops below it. The choices under floor (and the
	// pre-floor siblings) belong to the donor that split this fragment
	// off. 0 for a whole-tree exploration.
	floor int
	// corrupt is set when a replayed choice does not fit the choice
	// point actually offered — a resume token from a different
	// program, model, or harness. The execution is steered to option
	// 0 so it terminates harmlessly; Check turns the flag into an
	// error instead of trusting the exploration.
	corrupt bool
}

// pick returns the decision for a choice point with n options.
func (d *dfs) pick(n int) int {
	if d.pos < len(d.trace) {
		c := d.trace[d.pos]
		d.pos++
		if c.options != n || c.taken >= n {
			d.corrupt = true
			return 0
		}
		return c.taken
	}
	d.trace = append(d.trace, choice{options: n})
	d.pos++
	return 0
}

// replaying reports whether the execution is still inside the prefix
// replayed from the previous execution (visited-state pruning must be
// suppressed there: those states were recorded by earlier executions).
func (d *dfs) replaying() bool { return d.pos <= d.prefixLen }

// frontier counts the unexplored alternatives remaining on the stack
// (within this fragment's floor and ceilings).
func (d *dfs) frontier() int {
	n := 0
	for i := d.floor; i < len(d.trace); i++ {
		n += d.trace[i].bound() - 1 - d.trace[i].taken
	}
	return n
}

// backtrack prepares the next trace; it returns false when the
// fragment is exhausted.
func (d *dfs) backtrack() bool {
	for len(d.trace) > d.floor {
		last := &d.trace[len(d.trace)-1]
		if last.taken+1 < last.bound() {
			last.taken++
			d.prefixLen = len(d.trace)
			d.pos = 0
			return true
		}
		d.trace = d.trace[:len(d.trace)-1]
	}
	return false
}

// seed loads an exploration fragment into the controller: the first
// execution replays trace exactly, subsequent backtracking stays above
// floor and under the per-choice ceilings.
func (d *dfs) seed(trace []choice, floor int) {
	d.trace = trace
	d.floor = floor
	d.prefixLen = len(trace)
	d.pos = 0
	d.corrupt = false
}

// split donates the shallowest unexplored alternatives of the fragment
// as a new work unit, or reports false when no split point exists. The
// donor keeps its current branch at the split index (its ceiling drops
// to taken+1); the recipient receives every remaining alternative
// there (taken+1 up to the donor's old bound) and nothing below it.
// The two fragments partition the donor's frontier: no leaf is lost or
// explored twice.
func (d *dfs) split() (unit, bool) {
	for i := d.floor; i < len(d.trace); i++ {
		c := d.trace[i]
		if c.taken+1 < c.bound() {
			nt := make([]choice, i+1)
			copy(nt, d.trace[:i+1])
			nt[i].taken++
			nt[i].ceil = c.bound()
			d.trace[i].ceil = c.taken + 1
			return unit{trace: nt, floor: i}, true
		}
	}
	return unit{}, false
}

// PickThread implements vm.Controller.
func (d *dfs) PickThread(runnable []int) int { return runnable[d.pick(len(runnable))] }

// PickRead implements vm.Controller.
func (d *dfs) PickRead(_ memmodel.Addr, eligible []int) int { return d.pick(len(eligible)) }

// PickNondet implements vm.Controller.
func (d *dfs) PickNondet(max int) int { return d.pick(max) }

// Check explores the program's executions under the model and reports
// whether any assertion can fail or any deadlock can occur.
//
// Check degrades gracefully: when a budget (time, executions) expires
// or the context is canceled before the state space is exhausted, the
// verdict is VerdictUnknown — never a false VerdictPass — and the
// result carries exploration statistics plus a resume token that
// continues the depth-first trajectory deterministically. Internal
// panics are contained by the diag guard and returned as errors.
func Check(m *ir.Module, opts Options) (res *Result, err error) {
	defer diag.Guard("mc.Check", &err)
	if opts.MaxExecutions == 0 {
		opts.MaxExecutions = 1_000_000
	}
	if opts.MaxStepsPerExec == 0 {
		opts.MaxStepsPerExec = 100_000
	}
	if opts.TimeBudget == 0 {
		opts.TimeBudget = 10 * time.Second
	}
	if opts.Workers > 0 || len(opts.ResumeAll) > 0 {
		return checkParallel(m, opts)
	}
	start := time.Now()
	deadline := start.Add(opts.TimeBudget)
	d := &dfs{}
	res = &Result{Workers: 1}
	c := newMCCounters(opts.Obs.RegistryOrNew())
	base := c.baseline()
	visited := make(mapCache)
	if opts.Resume != nil {
		d.seed(append([]choice(nil), opts.Resume.trace...), opts.Resume.floor)
		c.execs.Add(int64(opts.Resume.executions))
		c.pruned.Add(int64(opts.Resume.pruned))
		c.truncated.Add(int64(opts.Resume.truncated))
		res.Violations = append(res.Violations, opts.Resume.violations...)
		res.Counterexamples = append(res.Counterexamples, opts.Resume.counterexamples...)
		// Copy-on-resume: adopting the token's live map would make the
		// token single-use (a second resume would see the first resume's
		// states and prune its own frontier unsoundly).
		for h := range opts.Resume.visited {
			visited[h] = true
		}
	}
	var det *race.Detector
	if opts.DetectRaces {
		det = race.New(opts.Model, race.Options{MaxReports: opts.MaxRaceReports, Obs: opts.Obs})
	}
	fullyExplored := false
	stopped := ""
	vopts := vm.Options{
		Model:      opts.Model,
		Entries:    opts.Entries,
		Controller: d,
		MaxSteps:   opts.MaxStepsPerExec,
	}
	if det != nil {
		vopts.Hook = det
	}
	var v *vm.VM

	// The sequential engine is one worker exploring one fragment: the
	// whole tree. Its timeline mirrors the parallel engine's so a trace
	// viewer shows the same span hierarchy either way.
	trk := opts.Obs.Track("mc.worker-00")
	c.active.Add(1)
	defer c.active.Add(-1)
	ws := trk.Begin("mc.worker")
	defer ws.End()
	c.fragsClaim.Inc()
	fragBase := c.execs.Value()
	fs := trk.Begin("mc.fragment")
	defer func() {
		n := c.execs.Value() - fragBase
		c.fragExecs.Observe(n)
		fs.Arg("executions", n).End()
	}()

	for {
		switch {
		case int(c.execs.Value()-base.execs) >= opts.MaxExecutions:
			stopped = "execution budget exhausted"
		case opts.Context != nil && opts.Context.Err() != nil:
			stopped = "canceled"
		case time.Now().After(deadline):
			stopped = "time budget exhausted"
		}
		if stopped != "" {
			break
		}
		if det != nil {
			det.BeginExec()
		}
		// One VM serves the whole exploration: executions after the first
		// recycle it through Reset instead of paying vm.New's allocations.
		if v == nil {
			if v, err = vm.New(m, vopts); err != nil {
				return nil, err
			}
			c.vmAllocs.Inc()
		} else {
			if err = v.Reset(); err != nil {
				return nil, err
			}
			c.vmResets.Inc()
		}
		violated, truncated, pruned := runOne(v, d, visited, det)
		if d.corrupt {
			return nil, fmt.Errorf("mc: resume token does not match this program, model, or harness")
		}
		c.execs.Inc()
		if pruned {
			c.pruned.Inc()
		}
		if truncated {
			c.truncated.Inc()
		}
		if violated != "" {
			res.Violations = append(res.Violations, violated)
			if opts.Traces {
				res.Counterexamples = append(res.Counterexamples, Counterexample{
					Msg:    violated,
					Events: replayTrace(m, opts, d),
				})
			}
			if opts.StopAtFirst || len(res.Violations) >= maxReports {
				stopped = "stopped at violation"
				break
			}
		}
		if det != nil && det.ExecFoundNew() {
			if opts.Traces && len(res.RaceWitnesses) < maxReports {
				reports := det.Reports()
				res.RaceWitnesses = append(res.RaceWitnesses, Counterexample{
					Msg:    "data race: " + reports[len(reports)-1].Loc.String(),
					Events: replayTrace(m, opts, d),
				})
			}
			if opts.StopAtFirst && violated == "" {
				stopped = "stopped at race"
				break
			}
		}
		if !d.backtrack() {
			fullyExplored = true
			break
		}
		c.backtracks.Inc()
	}

	c.states.Add(int64(len(visited)))
	c.fill(res, base)
	res.States = len(visited)
	res.Frontier = d.frontier()
	res.Elapsed = time.Since(start)
	if det != nil {
		res.Races = det.Reports()
	}
	switch {
	case len(res.Violations) > 0:
		res.Verdict = VerdictFail
	case len(res.Races) > 0:
		res.Verdict = VerdictRace
	case fullyExplored && res.Truncated == 0:
		res.Verdict = VerdictPass
	default:
		res.Verdict = VerdictUnknown
		if stopped == "" {
			stopped = "step-truncated executions"
		}
	}
	if res.Verdict == VerdictUnknown || res.Verdict == VerdictFail {
		res.Reason = stopped
	}
	// Budget and cancellation stops happen at the top of the loop, after
	// backtrack prepared the next unexplored execution — exactly the
	// point a resumed Check can pick up from. (A violation-cap stop
	// leaves the trace on the violating execution and the verdict is
	// already final, so it gets no token.)
	if !fullyExplored && stopped != "" && stopped != "stopped at violation" &&
		stopped != "stopped at race" && stopped != "step-truncated executions" {
		res.Resume = &ResumeToken{
			trace:           append([]choice(nil), d.trace...),
			floor:           d.floor,
			visited:         visited,
			executions:      res.Executions,
			pruned:          res.Pruned,
			truncated:       res.Truncated,
			violations:      append([]string(nil), res.Violations...),
			counterexamples: append([]Counterexample(nil), res.Counterexamples...),
		}
		res.ResumeTokens = []*ResumeToken{res.Resume}
	}
	return res, nil
}

// runOne drives a single execution to completion, pruning on visited
// states. It returns a violation message (or ""), whether the step
// budget truncated the run, and whether the visited cache pruned it.
// When a race detector is attached its happens-before fingerprint is
// mixed into the visited hash: two executions reaching the same memory
// state through different synchronization histories must not be
// collapsed, or a pruned branch could hide a race the surviving branch
// happens to order.
func runOne(v *vm.VM, d *dfs, visited stateCache, det *race.Detector) (violation string, truncated, pruned bool) {
	for !v.Halted() {
		run := v.Runnable()
		if len(run) == 0 {
			if v.Done() {
				return "", false, false
			}
			return "deadlock: threads blocked with no runnable thread", false, false
		}
		ti := run[d.pick(len(run))]
		if err := v.StepThread(ti); err != nil {
			return fmt.Sprintf("runtime fault: %v", err), false, false
		}
		if v.Halted() {
			// Assertion failure or step limit: resolved below, before any
			// pruning — a halted state must never enter the visited cache,
			// or it could mask the violation on a later path.
			break
		}
		if !d.replaying() {
			h := v.StateHash()
			if det != nil {
				h = h*1099511628211 ^ det.Fingerprint()
			}
			if !visited.insert(h) {
				return "", false, true
			}
		}
	}
	r := v.Result()
	if r.Status == vm.StatusAssertFailed {
		return r.FailMsg, false, false
	}
	return "", r.Status == vm.StatusStepLimit, false
}

// replayTrace re-executes the current (violating) choice trace with
// tracing enabled and returns the visible-operation sequence.
func replayTrace(m *ir.Module, opts Options, d *dfs) []vm.TraceEvent {
	replay := &dfs{trace: d.trace, prefixLen: len(d.trace)}
	v, err := vm.New(m, vm.Options{
		Model:        opts.Model,
		Entries:      opts.Entries,
		Controller:   replay,
		MaxSteps:     opts.MaxStepsPerExec,
		TraceVisible: true,
	})
	if err != nil {
		return nil
	}
	// No visited pruning: we want the full execution.
	runOne(v, replay, make(mapCache), nil)
	return v.Result().Trace
}
