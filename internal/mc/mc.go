// Package mc is a bounded exhaustive model checker for AIR programs
// under the SC, TSO and WMM memory models — the reproduction's
// stand-in for GenMC in the paper's correctness evaluation (Table 2).
//
// Exploration is stateless in the GenMC sense: each execution replays
// the program from scratch following a recorded choice trace (scheduler
// decisions at visible operations, weak-read message choices, nondet
// inputs), and depth-first backtracking enumerates the remaining
// choices. A visited-state cache (full state hash after each visible
// step) prunes re-converging interleavings — in particular spinloop
// iterations that observed no change, which is what keeps spinloop
// programs finite without unsound loop bounding.
package mc

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/vm"
)

// Options configures a check.
type Options struct {
	Model   memmodel.Model
	Entries []string
	// MaxExecutions bounds the number of explored executions
	// (0 = 1_000_000).
	MaxExecutions int
	// MaxStepsPerExec bounds each execution's instruction count
	// (0 = 100_000).
	MaxStepsPerExec int64
	// TimeBudget bounds the wall-clock exploration time (0 = 10s). When
	// exceeded without a violation, the verdict is VerdictPassBounded.
	TimeBudget time.Duration
	// StopAtFirst stops at the first violation (default: keep exploring
	// and report up to 16 violations).
	StopAtFirst bool
	// Traces replays each violating execution with tracing enabled and
	// attaches the visible-operation counterexample.
	Traces bool
}

// Counterexample is a violating execution: the violation message plus
// the sequence of visible operations that led to it.
type Counterexample struct {
	Msg    string
	Events []vm.TraceEvent
}

// String renders the counterexample as an interleaving.
func (c Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "violation: %s\n", c.Msg)
	for _, e := range c.Events {
		fmt.Fprintf(&b, "  T%d @%s: %s\n", e.Thread, e.Fn, e.Instr)
	}
	return b.String()
}

// Verdict is the outcome of a check.
type Verdict int

// Verdicts.
const (
	// VerdictPass: no violation; the state space was fully explored.
	VerdictPass Verdict = iota
	// VerdictPassBounded: no violation within the execution budget.
	VerdictPassBounded
	// VerdictFail: at least one execution violated an assertion or
	// deadlocked.
	VerdictFail
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictPassBounded:
		return "pass(bounded)"
	case VerdictFail:
		return "fail"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Result reports a check's findings.
type Result struct {
	Verdict    Verdict
	Violations []string
	// Counterexamples carries violation traces when Options.Traces is
	// set (parallel to Violations).
	Counterexamples []Counterexample
	Executions      int
	// Pruned counts executions cut short by the visited-state cache.
	Pruned int
	// Truncated counts executions stopped by the per-execution step
	// budget (possible livelocks).
	Truncated int
}

// choice is one recorded nondeterministic decision.
type choice struct {
	options int
	taken   int
}

// dfs is the replay controller driving the exploration.
type dfs struct {
	trace     []choice
	pos       int
	prefixLen int
}

// pick returns the decision for a choice point with n options.
func (d *dfs) pick(n int) int {
	if d.pos < len(d.trace) {
		c := d.trace[d.pos]
		d.pos++
		return c.taken
	}
	d.trace = append(d.trace, choice{options: n})
	d.pos++
	return 0
}

// replaying reports whether the execution is still inside the prefix
// replayed from the previous execution (visited-state pruning must be
// suppressed there: those states were recorded by earlier executions).
func (d *dfs) replaying() bool { return d.pos <= d.prefixLen }

// backtrack prepares the next trace; it returns false when the tree is
// exhausted.
func (d *dfs) backtrack() bool {
	for len(d.trace) > 0 {
		last := &d.trace[len(d.trace)-1]
		if last.taken+1 < last.options {
			last.taken++
			d.prefixLen = len(d.trace)
			d.pos = 0
			return true
		}
		d.trace = d.trace[:len(d.trace)-1]
	}
	return false
}

// PickThread implements vm.Controller.
func (d *dfs) PickThread(runnable []int) int { return runnable[d.pick(len(runnable))] }

// PickRead implements vm.Controller.
func (d *dfs) PickRead(_ memmodel.Addr, eligible []int) int { return d.pick(len(eligible)) }

// PickNondet implements vm.Controller.
func (d *dfs) PickNondet(max int) int { return d.pick(max) }

// Check explores the program's executions under the model and reports
// whether any assertion can fail or any deadlock can occur.
func Check(m *ir.Module, opts Options) (*Result, error) {
	if opts.MaxExecutions == 0 {
		opts.MaxExecutions = 1_000_000
	}
	if opts.MaxStepsPerExec == 0 {
		opts.MaxStepsPerExec = 100_000
	}
	if opts.TimeBudget == 0 {
		opts.TimeBudget = 10 * time.Second
	}
	deadline := time.Now().Add(opts.TimeBudget)
	d := &dfs{}
	res := &Result{}
	visited := make(map[uint64]bool)
	fullyExplored := false

	for res.Executions < opts.MaxExecutions {
		if res.Executions%64 == 0 && time.Now().After(deadline) {
			break
		}
		v, err := vm.New(m, vm.Options{
			Model:      opts.Model,
			Entries:    opts.Entries,
			Controller: d,
			MaxSteps:   opts.MaxStepsPerExec,
		})
		if err != nil {
			return nil, err
		}
		violated, truncated, pruned := runOne(v, d, visited)
		res.Executions++
		if pruned {
			res.Pruned++
		}
		if truncated {
			res.Truncated++
		}
		if violated != "" {
			res.Violations = append(res.Violations, violated)
			if opts.Traces {
				res.Counterexamples = append(res.Counterexamples, Counterexample{
					Msg:    violated,
					Events: replayTrace(m, opts, d),
				})
			}
			if opts.StopAtFirst || len(res.Violations) >= 16 {
				break
			}
		}
		if !d.backtrack() {
			fullyExplored = true
			break
		}
	}

	switch {
	case len(res.Violations) > 0:
		res.Verdict = VerdictFail
	case fullyExplored && res.Truncated == 0:
		res.Verdict = VerdictPass
	default:
		res.Verdict = VerdictPassBounded
	}
	return res, nil
}

// runOne drives a single execution to completion, pruning on visited
// states. It returns a violation message (or ""), whether the step
// budget truncated the run, and whether the visited cache pruned it.
func runOne(v *vm.VM, d *dfs, visited map[uint64]bool) (violation string, truncated, pruned bool) {
	for {
		if v.Halted() {
			break
		}
		run := v.Runnable()
		if len(run) == 0 {
			if v.Done() {
				return "", false, false
			}
			return "deadlock: threads blocked with no runnable thread", false, false
		}
		ti := run[d.pick(len(run))]
		if err := v.StepThread(ti); err != nil {
			return fmt.Sprintf("runtime fault: %v", err), false, false
		}
		r := v.Result()
		if r.Status == vm.StatusAssertFailed {
			return r.FailMsg, false, false
		}
		if r.Status == vm.StatusStepLimit {
			return "", true, false
		}
		if !d.replaying() {
			h := v.StateHash()
			if visited[h] {
				return "", false, true
			}
			visited[h] = true
		}
	}
	r := v.Result()
	if r.Status == vm.StatusAssertFailed {
		return r.FailMsg, false, false
	}
	return "", r.Status == vm.StatusStepLimit, false
}

// replayTrace re-executes the current (violating) choice trace with
// tracing enabled and returns the visible-operation sequence.
func replayTrace(m *ir.Module, opts Options, d *dfs) []vm.TraceEvent {
	replay := &dfs{trace: d.trace, prefixLen: len(d.trace)}
	v, err := vm.New(m, vm.Options{
		Model:        opts.Model,
		Entries:      opts.Entries,
		Controller:   replay,
		MaxSteps:     opts.MaxStepsPerExec,
		TraceVisible: true,
	})
	if err != nil {
		return nil
	}
	// No visited pruning: we want the full execution.
	runOne(v, replay, map[uint64]bool{})
	return v.Result().Trace
}
