package mc

import (
	"strings"
	"testing"
	"time"

	"repro/internal/atomig"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/minic"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	res, err := minic.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Module
}

func check(t *testing.T, m *ir.Module, model memmodel.Model, entries ...string) *Result {
	t.Helper()
	res, err := Check(m, Options{
		Model: model, Entries: entries,
		MaxExecutions: 300_000, TimeBudget: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

const mpSrc = `
int flag;
int msg;
void writer(void) { msg = 1; flag = 1; }
void reader(void) {
  while (flag == 0) { }
  assert(msg == 1);
}
`

// TestMPAcrossModels is the executable Figure 1: MP holds under SC and
// TSO, breaks under WMM, and the atomig port restores it.
func TestMPAcrossModels(t *testing.T) {
	m := compile(t, mpSrc)
	if res := check(t, m, memmodel.ModelSC, "reader", "writer"); res.Verdict == VerdictFail {
		t.Fatalf("MP failed under SC: %v", res.Violations)
	}
	if res := check(t, m, memmodel.ModelTSO, "reader", "writer"); res.Verdict == VerdictFail {
		t.Fatalf("MP failed under TSO: %v", res.Violations)
	}
	res := check(t, m, memmodel.ModelWMM, "reader", "writer")
	if res.Verdict != VerdictFail {
		t.Fatalf("MP did not fail under WMM (verdict %s, %d execs)", res.Verdict, res.Executions)
	}
	ported, _, err := atomig.PortClone(m, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := check(t, ported, memmodel.ModelWMM, "reader", "writer"); res.Verdict == VerdictFail {
		t.Fatalf("ported MP failed under WMM: %v", res.Violations)
	}
}

// TestStoreBuffering: the SB litmus test distinguishes SC from TSO —
// r0 == r1 == 0 is reachable under TSO (and WMM) but not under SC.
func TestStoreBuffering(t *testing.T) {
	src := `
int x;
int y;
int r0 = -1;
int r1 = -1;
void t0(void) { x = 1; r0 = y; }
void t1(void) { y = 1; r1 = x; }
void main_thread(void) {
  spawn(t0);
  spawn(t1);
  join();
  assert(r0 + r1 != 0);  // fails exactly when both read 0
}
`
	m := compile(t, src)
	if res := check(t, m, memmodel.ModelSC, "main_thread"); res.Verdict == VerdictFail {
		t.Fatalf("SB observed under SC: %v", res.Violations)
	}
	if res := check(t, m, memmodel.ModelTSO, "main_thread"); res.Verdict != VerdictFail {
		t.Fatalf("SB not observed under TSO (verdict %s)", res.Verdict)
	}
	if res := check(t, m, memmodel.ModelWMM, "main_thread"); res.Verdict != VerdictFail {
		t.Fatalf("SB not observed under WMM (verdict %s)", res.Verdict)
	}
}

// TestSeqlock is Figure 6: the optimistic reader breaks under WMM and
// the full atomig pipeline (optimistic-loop detection) repairs it.
func TestSeqlock(t *testing.T) {
	src := `
int seq;
int msg;
void writer(void) {
  seq = seq + 1;
  msg = 7;
  seq = seq + 1;
}
void reader(void) {
  int s;
  int data;
  do {
    s = seq;
    data = msg;
  } while (s % 2 != 0 || s != seq);
  if (s == 2) {
    assert(data == 7);
  }
}
`
	m := compile(t, src)
	if res := check(t, m, memmodel.ModelTSO, "reader", "writer"); res.Verdict == VerdictFail {
		t.Fatalf("seqlock failed under TSO: %v", res.Violations)
	}
	if res := check(t, m, memmodel.ModelWMM, "reader", "writer"); res.Verdict != VerdictFail {
		t.Fatalf("seqlock did not fail under WMM (verdict %s, %d execs)", res.Verdict, res.Executions)
	}
	ported, rep, err := atomig.PortClone(m, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Optiloops != 1 {
		t.Fatalf("optiloops = %d, want 1", rep.Optiloops)
	}
	if res := check(t, ported, memmodel.ModelWMM, "reader", "writer"); res.Verdict == VerdictFail {
		t.Fatalf("ported seqlock failed under WMM: %v", res.Violations)
	}
}

// TestTASLock is Figure 4: without porting, a critical section protected
// by a test-and-set lock leaks under WMM because the plain unlock store
// can be observed before the critical section's writes.
func TestTASLock(t *testing.T) {
	src := `
int locked;
int data;
int observed = -1;
void t0(void) {
  while (__cas(&locked, 0, 1) != 0) { }
  data = data + 1;
  locked = 0;
}
void t1(void) {
  while (__cas(&locked, 0, 1) != 0) { }
  data = data + 1;
  locked = 0;
}
void main_thread(void) {
  spawn(t0);
  spawn(t1);
  join();
  assert(data == 2);
}
`
	m := compile(t, src)
	if res := check(t, m, memmodel.ModelTSO, "main_thread"); res.Verdict == VerdictFail {
		t.Fatalf("TAS lock failed under TSO: %v", res.Violations)
	}
	res := check(t, m, memmodel.ModelWMM, "main_thread")
	if res.Verdict != VerdictFail {
		t.Fatalf("TAS lock did not fail under WMM (verdict %s, %d execs)", res.Verdict, res.Executions)
	}
	ported, _, err := atomig.PortClone(m, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := check(t, ported, memmodel.ModelWMM, "main_thread"); res.Verdict == VerdictFail {
		t.Fatalf("ported TAS lock failed under WMM: %v", res.Violations)
	}
}

// TestLfHashFigure7 reproduces the MariaDB lock-free hash bug: the
// finder can observe the deleted key with a stale VALID state under WMM.
func TestLfHashFigure7(t *testing.T) {
	src := `
struct node { int state; int key; };
struct node n;

void init_and_find(void) {
  n.state = 1;   // VALID
  n.key = 42;
  spawn(deleter);
  int state;
  int key;
  do {
    state = n.state;
    key = n.key;
  } while (state != n.state);
  if (state == 1) {
    assert(key == 42);
  }
  join();
}

void deleter(void) {
  if (__cas(&n.state, 1, 2) == 1) {
    n.key = 0;
  }
}
`
	m := compile(t, src)
	if res := check(t, m, memmodel.ModelTSO, "init_and_find"); res.Verdict == VerdictFail {
		t.Fatalf("lf-hash failed under TSO: %v", res.Violations)
	}
	res := check(t, m, memmodel.ModelWMM, "init_and_find")
	if res.Verdict != VerdictFail {
		t.Fatalf("lf-hash bug not found under WMM (verdict %s, %d execs)", res.Verdict, res.Executions)
	}
	ported, rep, err := atomig.PortClone(m, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spinloops == 0 {
		t.Fatal("no spinloop detected in lf-hash finder")
	}
	if res := check(t, ported, memmodel.ModelWMM, "init_and_find"); res.Verdict == VerdictFail {
		t.Fatalf("ported lf-hash failed under WMM: %v", res.Violations)
	}
}

func TestDeadlockReported(t *testing.T) {
	m := compile(t, `
void stuck(void) { barrier(2); }
`)
	res := check(t, m, memmodel.ModelSC, "stuck")
	if res.Verdict != VerdictFail {
		t.Fatalf("deadlock not reported (verdict %s)", res.Verdict)
	}
	if !strings.Contains(res.Violations[0], "deadlock") {
		t.Fatalf("violation = %q", res.Violations[0])
	}
}

func TestNondetExplored(t *testing.T) {
	// Both nondet branches must be explored: one violates.
	m := compile(t, `
void main_thread(void) {
  int x = nondet();
  assert(x == 0);
}
`)
	res := check(t, m, memmodel.ModelSC, "main_thread")
	if res.Verdict != VerdictFail {
		t.Fatalf("nondet violation not found (verdict %s)", res.Verdict)
	}
}

func TestFullExplorationVerdict(t *testing.T) {
	m := compile(t, `
int x;
void a(void) { x = x + 1; }
void main_thread(void) {
  spawn(a);
  join();
  assert(x == 1);
}
`)
	res := check(t, m, memmodel.ModelSC, "main_thread")
	if res.Verdict != VerdictPass {
		t.Fatalf("verdict = %s, want pass (execs=%d truncated=%d)",
			res.Verdict, res.Executions, res.Truncated)
	}
}

func TestSpinloopTerminatesViaPruning(t *testing.T) {
	// The spinloop has unboundedly many stale-read iterations; the
	// visited-state cache must collapse them to a finite exploration.
	m := compile(t, mpSrc)
	res := check(t, m, memmodel.ModelWMM, "reader", "writer")
	if res.Executions > 100_000 {
		t.Fatalf("exploration did not stay bounded: %d executions", res.Executions)
	}
	if res.Pruned == 0 {
		t.Fatal("no executions pruned; the visited cache is inert")
	}
}

// TestCounterexampleTraces: violating checks can attach the visible-op
// interleaving that triggers the bug.
func TestCounterexampleTraces(t *testing.T) {
	m := compile(t, mpSrc)
	res, err := Check(m, Options{
		Model: memmodel.ModelWMM, Entries: []string{"reader", "writer"},
		StopAtFirst: true, Traces: true, TimeBudget: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictFail {
		t.Fatalf("verdict = %s", res.Verdict)
	}
	if len(res.Counterexamples) != 1 {
		t.Fatalf("counterexamples = %d", len(res.Counterexamples))
	}
	ce := res.Counterexamples[0]
	if len(ce.Events) == 0 {
		t.Fatal("empty trace")
	}
	s := ce.String()
	for _, want := range []string{"violation:", "@writer", "@reader", "load"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace missing %q:\n%s", want, s)
		}
	}
	// The trace must end at the failing assertion.
	last := ce.Events[len(ce.Events)-1]
	if !strings.Contains(last.Instr, "assert") {
		t.Errorf("last event = %+v, want the assert call", last)
	}
}
