package mc

import "repro/internal/obs"

// The checker's exploration statistics live in the obs metrics
// registry — the caller's provider when Options.Obs is set (so
// `atomig-mc -metrics/-stats` read the same numbers), a private
// registry otherwise (the counters also feed Result, so the checker
// always needs somewhere to count). Registry counters are cumulative
// across Checks sharing a provider; Result reports per-check deltas
// against the baseline captured when the check started.

// mcCounters is the checker's resolved metric handles (one registry
// lookup each per Check, none on the hot loop).
type mcCounters struct {
	execs      *obs.Counter   // mc.executions_explored
	pruned     *obs.Counter   // mc.executions_pruned (visited-state hits)
	truncated  *obs.Counter   // mc.executions_truncated
	states     *obs.Counter   // mc.states_recorded
	vmResets   *obs.Counter   // mc.vms_reset
	vmAllocs   *obs.Counter   // mc.vms_allocated
	contended  *obs.Counter   // mc.shard_locks_contended
	fragsClaim *obs.Counter   // mc.fragments_claimed
	fragsDonat *obs.Counter   // mc.fragments_donated
	backtracks *obs.Counter   // mc.backtracks_taken
	fragExecs  *obs.Histogram // mc.fragment_executions
	active     *obs.Gauge     // mc.workers_active
}

func newMCCounters(reg *obs.Registry) *mcCounters {
	return &mcCounters{
		execs:      reg.Counter("mc.executions_explored"),
		pruned:     reg.Counter("mc.executions_pruned"),
		truncated:  reg.Counter("mc.executions_truncated"),
		states:     reg.Counter("mc.states_recorded"),
		vmResets:   reg.Counter("mc.vms_reset"),
		vmAllocs:   reg.Counter("mc.vms_allocated"),
		contended:  reg.Counter("mc.shard_locks_contended"),
		fragsClaim: reg.Counter("mc.fragments_claimed"),
		fragsDonat: reg.Counter("mc.fragments_donated"),
		backtracks: reg.Counter("mc.backtracks_taken"),
		fragExecs:  reg.Histogram("mc.fragment_executions"),
		active:     reg.Gauge("mc.workers_active"),
	}
}

// mcBase is the counter baseline at Check entry; Result fields are the
// deltas against it, so a provider shared across Checks accumulates in
// the registry without polluting any single Result.
type mcBase struct {
	execs, pruned, truncated, vmResets, vmAllocs, contended int64
}

func (c *mcCounters) baseline() mcBase {
	return mcBase{
		execs:     c.execs.Value(),
		pruned:    c.pruned.Value(),
		truncated: c.truncated.Value(),
		vmResets:  c.vmResets.Value(),
		vmAllocs:  c.vmAllocs.Value(),
		contended: c.contended.Value(),
	}
}

// fill publishes the per-check deltas into the Result.
func (c *mcCounters) fill(res *Result, b mcBase) {
	res.Executions = int(c.execs.Value() - b.execs)
	res.Pruned = int(c.pruned.Value() - b.pruned)
	res.Truncated = int(c.truncated.Value() - b.truncated)
	res.VMResets = c.vmResets.Value() - b.vmResets
	res.VMAllocs = c.vmAllocs.Value() - b.vmAllocs
	res.ShardContention = c.contended.Value() - b.contended
}
