package mc

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/race"
	"repro/internal/vm"
)

// The parallel engine splits the depth-first frontier across a worker
// pool. A work unit is an exploration fragment: a prepared choice
// trace plus a floor (see dfs.seed). The queue starts with one
// fragment — the whole tree, or the fragments of the resume tokens —
// and grows by donation: a worker that notices starved peers splits
// the shallowest unexplored alternatives off its own frontier
// (dfs.split) and queues them. Workers share the lock-striped visited
// cache; every other piece of mutable state (VM, replay controller,
// race detector, findings) is worker-private and merged
// deterministically after the pool drains.

// unit is one frontier fragment awaiting a worker.
type unit struct {
	trace []choice
	floor int
}

// workQueue distributes fragments and detects termination: pending
// counts fragments queued or owned by a worker, and the queue closes
// when it reaches zero (every fragment fully explored) or on a global
// stop.
type workQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	units   []unit
	pending int
	waiting int
	closed  bool
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *workQueue) put(u unit) {
	q.mu.Lock()
	q.pending++
	q.units = append(q.units, u)
	q.mu.Unlock()
	q.cond.Signal()
}

// get blocks until a fragment is available or the queue closes.
func (q *workQueue) get() (unit, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.units) == 0 && !q.closed {
		q.waiting++
		q.cond.Wait()
		q.waiting--
	}
	if q.closed {
		// Leftover fragments after a global stop are drained into resume
		// tokens by the coordinator, not started.
		return unit{}, false
	}
	u := q.units[len(q.units)-1]
	q.units = q.units[:len(q.units)-1]
	return u, true
}

// finish retires one owned fragment; the last one closes the queue.
func (q *workQueue) finish() {
	q.mu.Lock()
	q.pending--
	done := q.pending == 0
	if done {
		q.closed = true
	}
	q.mu.Unlock()
	if done {
		q.cond.Broadcast()
	}
}

// close wakes all waiters during a global stop.
func (q *workQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// starving reports whether a peer is blocked on an empty queue — the
// signal to donate a frontier split.
func (q *workQueue) starving() bool {
	q.mu.Lock()
	s := q.waiting > 0 && len(q.units) == 0 && !q.closed
	q.mu.Unlock()
	return s
}

// drain removes and returns the undistributed fragments (global stop).
func (q *workQueue) drain() []unit {
	q.mu.Lock()
	us := q.units
	q.units = nil
	q.mu.Unlock()
	return us
}

// vioRec ties a finding to the choice trace that exposed it; key is the
// order-preserving encoding of the taken sequence, so comparing keys
// compares depth-first discovery order.
type vioRec struct {
	msg   string
	key   string
	trace []choice
}

// traceKey encodes the taken sequence order-preservingly (4-byte
// big-endian per choice).
func traceKey(tr []choice) string {
	b := make([]byte, 0, len(tr)*4)
	for _, c := range tr {
		b = append(b, byte(c.taken>>24), byte(c.taken>>16), byte(c.taken>>8), byte(c.taken))
	}
	return string(b)
}

// note records rec in m under msg-or-key semantics: keep the record
// with the smallest trace key per identity.
func note(m map[string]*vioRec, id, msg string, d *dfs) {
	key := traceKey(d.trace)
	if ex := m[id]; ex != nil && ex.key <= key {
		return
	}
	m[id] = &vioRec{msg: msg, key: key, trace: append([]choice(nil), d.trace...)}
}

// mcWorker is the per-worker state surviving into the merge.
type mcWorker struct {
	det *race.Detector
	// track is the worker's trace timeline (nil when tracing is off):
	// one mc.worker lifecycle span holding an mc.fragment span per
	// claimed fragment, with donation instants in between.
	track *obs.Track
	vios  map[string]*vioRec // violation message → earliest exposing trace
	wits  map[string]*vioRec // race key → earliest exposing trace
	// tokens holds the worker's unexplored remainder when a global stop
	// interrupted it mid-fragment.
	tokens  []*ResumeToken
	err     error
	corrupt bool
}

// engine is the shared coordination state of one parallel check.
type engine struct {
	m    *ir.Module
	opts Options

	q       *workQueue
	visited *shardMap

	stop     atomic.Bool
	reasonMu sync.Mutex
	reason   string

	// c holds the shared exploration counters (registry metrics); base
	// is the baseline for this check's Result deltas.
	c    *mcCounters
	base mcBase

	deadline time.Time
	maxExecs int64

	workers []*mcWorker
}

// halt requests a global stop; the first reason wins.
func (e *engine) halt(reason string) {
	e.reasonMu.Lock()
	if e.reason == "" {
		e.reason = reason
	}
	e.reasonMu.Unlock()
	e.stop.Store(true)
	e.q.close()
}

// fragmentToken captures a controller's unexplored remainder.
func fragmentToken(d *dfs) *ResumeToken {
	return &ResumeToken{trace: append([]choice(nil), d.trace...), floor: d.floor}
}

// run is one worker's loop: claim a fragment, explore it depth-first
// with a private reused VM, donate splits when peers starve. The whole
// loop runs inside an mc.worker span on the worker's timeline, so the
// trace viewer shows each worker's lifetime even when it never claims
// a fragment.
func (e *engine) run(w *mcWorker) {
	e.c.active.Add(1)
	defer e.c.active.Add(-1)
	ws := w.track.Begin("mc.worker")
	defer ws.End()
	d := &dfs{}
	var v *vm.VM
	newExec := func() (*vm.VM, error) {
		if w.det != nil {
			w.det.BeginExec()
		}
		if v == nil {
			vopts := vm.Options{
				Model:      e.opts.Model,
				Entries:    e.opts.Entries,
				Controller: d,
				MaxSteps:   e.opts.MaxStepsPerExec,
			}
			if w.det != nil {
				vopts.Hook = w.det
			}
			nv, err := vm.New(e.m, vopts)
			if err != nil {
				return nil, err
			}
			v = nv
			e.c.vmAllocs.Inc()
			return v, nil
		}
		e.c.vmResets.Inc()
		return v, v.Reset()
	}
	for {
		u, ok := e.q.get()
		if !ok {
			return
		}
		d.seed(u.trace, u.floor)
		if e.exploreFragment(w, d, newExec) {
			return
		}
		e.q.finish()
	}
}

// exploreFragment explores one claimed fragment to exhaustion (false)
// or until the worker must exit (true: global stop, error, corrupt
// token). The fragment gets a span on the worker's timeline carrying
// its execution count, which also feeds the mc.fragment_executions
// histogram — the donation-balance signal.
func (e *engine) exploreFragment(w *mcWorker, d *dfs, newExec func() (*vm.VM, error)) (exit bool) {
	e.c.fragsClaim.Inc()
	var execs int64
	fs := w.track.Begin("mc.fragment")
	defer func() {
		e.c.fragExecs.Observe(execs)
		fs.Arg("executions", execs).End()
	}()
	for {
		if e.stop.Load() {
			w.tokens = append(w.tokens, fragmentToken(d))
			return true
		}
		switch {
		case e.opts.Context != nil && e.opts.Context.Err() != nil:
			e.halt("canceled")
			continue
		case time.Now().After(e.deadline):
			e.halt("time budget exhausted")
			continue
		}
		if e.c.execs.AddGet(1)-e.base.execs > e.maxExecs {
			e.c.execs.Add(-1)
			e.halt("execution budget exhausted")
			continue
		}
		execs++
		v, err := newExec()
		if err != nil {
			w.err = err
			e.halt("internal error")
			return true
		}
		violated, truncated, pruned := runOne(v, d, e.visited, w.det)
		if d.corrupt {
			w.corrupt = true
			e.halt("corrupt resume token")
			return true
		}
		if pruned {
			e.c.pruned.Inc()
		}
		if truncated {
			e.c.truncated.Inc()
		}
		if violated != "" {
			note(w.vios, violated, violated, d)
			if e.opts.StopAtFirst {
				e.halt("stopped at violation")
				return true
			}
		}
		if w.det != nil && w.det.ExecFoundNew() {
			for _, r := range w.det.ExecNewReports() {
				note(w.wits, r.Key(), "data race: "+r.Loc.String(), d)
			}
			if e.opts.StopAtFirst && violated == "" {
				e.halt("stopped at race")
				return true
			}
		}
		if e.q.starving() {
			if du, ok := d.split(); ok {
				e.q.put(du)
				e.c.fragsDonat.Inc()
				w.track.Instant("mc.fragment_donated")
			}
		}
		if !d.backtrack() {
			return false
		}
		e.c.backtracks.Inc()
	}
}

// checkParallel is the frontier-split engine behind Check when
// Options.Workers (or ResumeAll) selects it. Determinism: on a fully
// explored state space the set of reachable (memory, happens-before)
// states is a property of the program, not of the worker schedule, so
// the verdict, the deduplicated violation messages and the race-report
// keys are identical for every worker count. Counterexample traces may
// legitimately differ across worker counts (a message's earliest
// *explored* witness depends on which equivalent branch the visited
// cache pruned); each trace still reproduces its violation exactly.
func checkParallel(m *ir.Module, opts Options) (res *Result, err error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	start := time.Now()
	res = &Result{Workers: workers}

	tokens := opts.ResumeAll
	if opts.Resume != nil {
		tokens = append([]*ResumeToken{opts.Resume}, opts.ResumeAll...)
	}

	c := newMCCounters(opts.Obs.RegistryOrNew())
	e := &engine{
		m:        m,
		opts:     opts,
		q:        newWorkQueue(),
		visited:  newShardMap(workers, c.contended),
		c:        c,
		base:     c.baseline(),
		deadline: start.Add(opts.TimeBudget),
		maxExecs: int64(opts.MaxExecutions),
	}

	// Carry over resumed state: counters and findings continue, and the
	// visited cache is copied (never adopted — tokens stay reusable).
	carriedVios := make([]string, 0)
	carriedCEs := make([]Counterexample, 0)
	for _, t := range tokens {
		c.execs.Add(int64(t.executions))
		c.pruned.Add(int64(t.pruned))
		c.truncated.Add(int64(t.truncated))
		carriedVios = append(carriedVios, t.violations...)
		carriedCEs = append(carriedCEs, t.counterexamples...)
		for h := range t.visited {
			e.visited.insert(h)
		}
		e.q.put(unit{trace: append([]choice(nil), t.trace...), floor: t.floor})
	}
	if len(tokens) == 0 {
		e.q.put(unit{})
	}

	resolvedRaceMax := opts.MaxRaceReports
	if resolvedRaceMax == 0 {
		resolvedRaceMax = 32
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := &mcWorker{
			track: opts.Obs.Track(fmt.Sprintf("mc.worker-%02d", i)),
			vios:  make(map[string]*vioRec),
			wits:  make(map[string]*vioRec),
		}
		if opts.DetectRaces {
			// Per-worker caps are generous; the deterministic cap applies
			// at the merge.
			w.det = race.New(opts.Model, race.Options{MaxReports: 4 * resolvedRaceMax, Obs: opts.Obs})
		}
		e.workers = append(e.workers, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic on a worker goroutine would be unrecoverable for
			// Check's diag guard (which lives on the calling goroutine)
			// and kill the process. Contain it here: record a structured
			// error and halt the queue, so blocked peers wake up and the
			// pool drains instead of deadlocking.
			defer func() {
				if r := recover(); r != nil {
					w.err = &diag.InternalError{
						Stage: "mc.worker", Value: r, Stack: string(debug.Stack()),
					}
					e.halt("internal error")
				}
			}()
			e.run(w)
		}()
	}
	wg.Wait()

	// ---- Deterministic merge (single-threaded from here on). ----
	for _, w := range e.workers {
		if w.corrupt {
			return nil, fmt.Errorf("mc: resume token does not match this program, model, or harness")
		}
		if w.err != nil {
			return nil, w.err
		}
	}

	vios := make(map[string]*vioRec)
	wits := make(map[string]*vioRec)
	for _, w := range e.workers {
		for id, r := range w.vios {
			if ex := vios[id]; ex == nil || r.key < ex.key {
				vios[id] = r
			}
		}
		for id, r := range w.wits {
			if ex := wits[id]; ex == nil || r.key < ex.key {
				wits[id] = r
			}
		}
	}

	// Violations: carried-over findings first (already reported in a
	// previous run's order), then the new distinct messages sorted.
	seenMsg := make(map[string]bool)
	for _, msg := range carriedVios {
		if !seenMsg[msg] {
			seenMsg[msg] = true
			res.Violations = append(res.Violations, msg)
		}
	}
	res.Counterexamples = append(res.Counterexamples, carriedCEs...)
	msgs := make([]string, 0, len(vios))
	for msg := range vios {
		if !seenMsg[msg] {
			msgs = append(msgs, msg)
		}
	}
	sort.Strings(msgs)
	for _, msg := range msgs {
		if len(res.Violations) >= maxReports {
			break
		}
		res.Violations = append(res.Violations, msg)
		if opts.Traces {
			res.Counterexamples = append(res.Counterexamples, Counterexample{
				Msg:    msg,
				Events: replayTrace(m, opts, &dfs{trace: vios[msg].trace}),
			})
		}
	}

	// Races: merge the per-worker detectors' reports by site-pair key.
	if opts.DetectRaces {
		lists := make([][]*race.Report, 0, len(e.workers))
		for _, w := range e.workers {
			lists = append(lists, w.det.Reports())
		}
		res.Races = race.MergeReports(resolvedRaceMax, lists...)
		if opts.Traces {
			keys := make([]string, 0, len(wits))
			for k := range wits {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if len(res.RaceWitnesses) >= maxReports {
					break
				}
				res.RaceWitnesses = append(res.RaceWitnesses, Counterexample{
					Msg:    wits[k].msg,
					Events: replayTrace(m, opts, &dfs{trace: wits[k].trace}),
				})
			}
		}
	}

	c.states.Add(int64(e.visited.size()))
	c.fill(res, e.base)
	res.States = e.visited.size()
	res.Elapsed = time.Since(start)

	e.reasonMu.Lock()
	stopped := e.reason
	e.reasonMu.Unlock()
	fullyExplored := stopped == ""

	// Remaining frontier: interrupted workers' remainders plus the
	// fragments the stop left in the queue.
	var rem []*ResumeToken
	for _, w := range e.workers {
		rem = append(rem, w.tokens...)
	}
	for _, u := range e.q.drain() {
		rem = append(rem, &ResumeToken{trace: u.trace, floor: u.floor})
	}
	for _, t := range rem {
		res.Frontier += t.Frontier()
	}

	switch {
	case len(res.Violations) > 0:
		res.Verdict = VerdictFail
	case len(res.Races) > 0:
		res.Verdict = VerdictRace
	case fullyExplored && res.Truncated == 0:
		res.Verdict = VerdictPass
	default:
		res.Verdict = VerdictUnknown
		if stopped == "" {
			stopped = "step-truncated executions"
		}
	}
	if res.Verdict == VerdictUnknown || res.Verdict == VerdictFail {
		res.Reason = stopped
	}

	// Budget and cancellation stops leave a resumable frontier; verdict
	// stops (violation, race) are final and get no tokens.
	resumable := stopped == "time budget exhausted" ||
		stopped == "execution budget exhausted" || stopped == "canceled"
	if resumable && len(rem) > 0 {
		// All fragments share one flattened visited snapshot (tokens are
		// copy-on-resume, so sharing is safe), and the first token carries
		// the global counters and findings so resumed statistics continue;
		// resuming the full token set in one Check double-counts nothing.
		vis := e.visited.flatten()
		rem[0].visited = vis
		rem[0].executions = res.Executions
		rem[0].pruned = res.Pruned
		rem[0].truncated = res.Truncated
		rem[0].violations = append([]string(nil), res.Violations...)
		rem[0].counterexamples = append([]Counterexample(nil), res.Counterexamples...)
		for _, t := range rem[1:] {
			t.visited = vis
		}
		res.ResumeTokens = rem
		if len(rem) == 1 {
			res.Resume = rem[0]
		}
	}
	return res, nil
}
