package mc

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/memmodel"
	"repro/internal/obs"
)

// verdictFingerprint reduces a Result to the parts the determinism
// contract promises are worker-count-invariant on fully explored state
// spaces: the verdict, the distinct violation messages, and the race
// keys. Counterexample traces and visit-order statistics may differ
// across worker counts (see docs/MODEL-CHECKER.md).
func verdictFingerprint(res *Result) string {
	vios := append([]string(nil), res.Violations...)
	sort.Strings(vios)
	vios = dedupSorted(vios)
	keys := make([]string, 0, len(res.Races))
	for _, r := range res.Races {
		keys = append(keys, r.Key())
	}
	sort.Strings(keys)
	return fmt.Sprintf("verdict=%s violations=%q races=%q", res.Verdict, vios, keys)
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// TestParallelDeterminism is the issue's core acceptance criterion:
// across worker counts 1, 2 and 8 (and against the sequential engine)
// every litmus program yields an identical verdict, violation set and
// race-report key set, in both plain and race-detecting mode.
func TestParallelDeterminism(t *testing.T) {
	programs := []struct {
		name    string
		src     string
		entries []string
	}{
		{"mp", mpSrc, []string{"reader", "writer"}},
		{"sb", `
int x; int y; int r0 = -1; int r1 = -1;
void t0(void) { x = 1; r0 = y; }
void t1(void) { y = 1; r1 = x; }
void main_thread(void) {
  spawn(t0); spawn(t1); join();
  assert(r0 + r1 != 0);
}
`, []string{"main_thread"}},
		{"corr", `
int x; int a = -1; int b = -1;
void t0(void) { x = 1; x = 2; }
void t1(void) { a = x; b = x; }
void main_thread(void) {
  spawn(t0); spawn(t1); join();
  assert(b >= a);
}
`, []string{"main_thread"}},
		{"seqlock", `
int seq;
int msg;
void writer(void) {
  seq = seq + 1;
  msg = 7;
  seq = seq + 1;
}
void reader(void) {
  int s;
  int data;
  do {
    s = seq;
    data = msg;
  } while (s % 2 != 0 || s != seq);
  if (s == 2) {
    assert(data == 7);
  }
}
`, []string{"reader", "writer"}},
	}
	models := []memmodel.Model{memmodel.ModelTSO, memmodel.ModelWMM}
	for _, p := range programs {
		m := compile(t, p.src)
		for _, model := range models {
			for _, races := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/races=%v", p.name, model, races)
				t.Run(name, func(t *testing.T) {
					base := Options{
						Model: model, Entries: p.entries,
						MaxExecutions: 500_000, TimeBudget: time.Minute,
						DetectRaces: races,
					}
					seqOpts := base
					seq, err := Check(m, seqOpts)
					if err != nil {
						t.Fatalf("sequential Check: %v", err)
					}
					if seq.Verdict == VerdictUnknown {
						t.Fatalf("sequential exploration did not finish: %s", seq.Reason)
					}
					want := verdictFingerprint(seq)
					for _, j := range []int{1, 2, 8} {
						opts := base
						opts.Workers = j
						res, err := Check(m, opts)
						if err != nil {
							t.Fatalf("-j %d Check: %v", j, err)
						}
						if res.Workers != j {
							t.Errorf("-j %d: Result.Workers = %d", j, res.Workers)
						}
						if got := verdictFingerprint(res); got != want {
							t.Errorf("-j %d fingerprint drift:\n got %s\nwant %s", j, got, want)
						}
						// A single parallel worker never splits, so it
						// explores exactly the sequential DFS.
						if j == 1 && res.Executions != seq.Executions {
							t.Errorf("-j 1 executions = %d, sequential = %d", res.Executions, seq.Executions)
						}
					}
				})
			}
		}
	}
}

// TestParallelViolationOrderStable: violation report order must be
// byte-identical across worker counts, not merely equal as sets.
func TestParallelViolationOrderStable(t *testing.T) {
	m := compile(t, `
int x; int y; int r0 = -1; int r1 = -1;
void t0(void) { x = 1; r0 = y; }
void t1(void) { y = 1; r1 = x; }
void main_thread(void) {
  spawn(t0); spawn(t1); join();
  assert(r0 + r1 != 0);
  assert(r0 == 9 || r1 != -7 || x == 2);
}
`)
	var want []string
	for _, j := range []int{1, 2, 4, 8} {
		res, err := Check(m, Options{
			Model: memmodel.ModelWMM, Entries: []string{"main_thread"},
			MaxExecutions: 500_000, TimeBudget: time.Minute,
			Workers: j,
		})
		if err != nil {
			t.Fatalf("-j %d: %v", j, err)
		}
		if want == nil {
			want = res.Violations
			continue
		}
		if len(res.Violations) != len(want) {
			t.Fatalf("-j %d: %d violations, want %d", j, len(res.Violations), len(want))
		}
		for i := range want {
			if res.Violations[i] != want[i] {
				t.Errorf("-j %d violation[%d] = %q, want %q", j, i, res.Violations[i], want[i])
			}
		}
	}
}

// TestResumeTokenReusable is the aliasing regression test: Check used
// to store its live visited map into the returned token by reference,
// so consuming a token once corrupted it for every later use. Resuming
// the same token twice must now yield identical results.
func TestResumeTokenReusable(t *testing.T) {
	m := compile(t, mpSrc)
	first, err := Check(m, Options{
		Model: memmodel.ModelWMM, Entries: []string{"reader", "writer"},
		MaxExecutions: 5, TimeBudget: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Resume == nil {
		t.Fatal("tiny execution budget did not produce a resume token")
	}
	token := first.Resume
	resume := func() *Result {
		res, err := Check(m, Options{
			Model: memmodel.ModelWMM, Entries: []string{"reader", "writer"},
			TimeBudget: time.Minute, Resume: token,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := resume(), resume()
	if a.Verdict != b.Verdict || a.Executions != b.Executions ||
		a.Pruned != b.Pruned || len(a.Violations) != len(b.Violations) {
		t.Errorf("resuming the same token twice diverged:\n first: %s %d execs %d pruned %d violations\nsecond: %s %d execs %d pruned %d violations",
			a.Verdict, a.Executions, a.Pruned, len(a.Violations),
			b.Verdict, b.Executions, b.Pruned, len(b.Violations))
	}
}

// TestParallelResume: an interrupted parallel run hands back one token
// per remaining frontier fragment; feeding them all to ResumeAll
// finishes the exploration with the uninterrupted verdict.
func TestParallelResume(t *testing.T) {
	m := compile(t, mpSrc)
	entries := []string{"reader", "writer"}
	full, err := Check(m, Options{
		Model: memmodel.ModelWMM, Entries: entries,
		MaxExecutions: 500_000, TimeBudget: time.Minute, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Verdict != VerdictFail {
		t.Fatalf("reference verdict %s, want %s", full.Verdict, VerdictFail)
	}

	res, err := Check(m, Options{
		Model: memmodel.ModelWMM, Entries: entries,
		MaxExecutions: 10, TimeBudget: time.Minute, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for res.Verdict == VerdictUnknown {
		if len(res.ResumeTokens) == 0 {
			t.Fatalf("unknown verdict (%s) without resume tokens", res.Reason)
		}
		if rounds++; rounds > 1000 {
			t.Fatal("parallel resume did not converge")
		}
		prev := res.Executions
		res, err = Check(m, Options{
			Model: memmodel.ModelWMM, Entries: entries,
			MaxExecutions: prev + 10, TimeBudget: time.Minute, Workers: 2,
			ResumeAll: res.ResumeTokens,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got, want := verdictFingerprint(res), verdictFingerprint(full); got != want {
		t.Errorf("resumed fingerprint drift:\n got %s\nwant %s", got, want)
	}
}

// TestDecodeResumeV1 keeps the pre-frontier-split token format alive: a
// hand-built mcr1 token (no floor, no per-choice ceilings) must decode
// into an equivalent whole-tree token.
func TestDecodeResumeV1(t *testing.T) {
	buf := []byte(resumeMagicV1)
	buf = binary.AppendUvarint(buf, 3) // executions
	buf = binary.AppendUvarint(buf, 1) // pruned
	buf = binary.AppendUvarint(buf, 0) // truncated
	buf = binary.AppendUvarint(buf, 2) // len(trace)
	for _, c := range []choice{{options: 3, taken: 1}, {options: 2, taken: 0}} {
		buf = binary.AppendUvarint(buf, uint64(c.options))
		buf = binary.AppendUvarint(buf, uint64(c.taken))
	}
	tok, err := DecodeResume(base64.RawURLEncoding.EncodeToString(buf))
	if err != nil {
		t.Fatalf("DecodeResume(v1): %v", err)
	}
	if tok.floor != 0 || tok.executions != 3 || tok.pruned != 1 || len(tok.trace) != 2 {
		t.Fatalf("v1 token decoded wrong: %+v", tok)
	}
	if got := tok.Frontier(); got != 2 {
		t.Fatalf("v1 Frontier = %d, want 2", got)
	}
	// And the v2 round trip preserves floor and ceilings.
	tok.floor = 1
	tok.trace[0].ceil = 2
	back, err := DecodeResume(tok.Encode())
	if err != nil {
		t.Fatalf("DecodeResume(v2): %v", err)
	}
	if back.floor != 1 || back.trace[0].ceil != 2 {
		t.Fatalf("v2 round trip lost frontier metadata: %+v", back)
	}
}

// TestShardMap covers the lock-striped visited cache: insert semantics,
// flatten, and racing inserts of overlapping hash sets.
func TestShardMap(t *testing.T) {
	s := newShardMap(4, obs.NewRegistry().Counter("mc.shard_locks_contended"))
	if len(s.shards)&(len(s.shards)-1) != 0 {
		t.Fatalf("shard count %d not a power of two", len(s.shards))
	}
	if !s.insert(42) {
		t.Error("first insert reported duplicate")
	}
	if s.insert(42) {
		t.Error("second insert reported new")
	}
	if s.size() != 1 {
		t.Errorf("size = %d, want 1", s.size())
	}

	// Hashes with identical low bits land in different shards (selection
	// uses the high bits).
	const workers = 8
	s = newShardMap(workers, obs.NewRegistry().Counter("mc.shard_locks_contended"))
	var wg sync.WaitGroup
	newCount := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				// Every worker inserts the same mixed hash set, so
				// exactly 2000 inserts in total may report new.
				h := memmodel.Mix64(i)
				if s.insert(h) {
					newCount[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range newCount {
		total += n
	}
	if total != 2000 {
		t.Errorf("%d inserts reported new, want exactly 2000", total)
	}
	if s.size() != 2000 {
		t.Errorf("size = %d, want 2000", s.size())
	}
	if flat := s.flatten(); len(flat) != 2000 {
		t.Errorf("flatten holds %d states, want 2000", len(flat))
	}
}

// TestSequentialDispatch: Workers 0 keeps the legacy engine (Workers
// reported as 1) and a non-empty ResumeAll selects the parallel engine
// even with Workers unset.
func TestSequentialDispatch(t *testing.T) {
	m := compile(t, mpSrc)
	res, err := Check(m, Options{
		Model: memmodel.ModelWMM, Entries: []string{"reader", "writer"},
		MaxExecutions: 500_000, TimeBudget: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 1 {
		t.Errorf("sequential Result.Workers = %d, want 1", res.Workers)
	}
	if res.ShardContention != 0 {
		t.Errorf("sequential ShardContention = %d, want 0", res.ShardContention)
	}
	if res.VMAllocs != 1 {
		t.Errorf("sequential VMAllocs = %d, want 1 (VM reuse)", res.VMAllocs)
	}
	if res.VMResets != int64(res.Executions-1) {
		t.Errorf("sequential VMResets = %d, want executions-1 = %d", res.VMResets, res.Executions-1)
	}
}
