package mc

import (
	"testing"
	"time"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/transform"
)

func compileCorpus(t *testing.T, name string) *ir.Module {
	t.Helper()
	p := corpus.Get(name)
	if p == nil {
		t.Fatalf("corpus program %q not registered", name)
	}
	m, err := p.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return m
}

func checkRaces(t *testing.T, m *ir.Module, model memmodel.Model, entries ...string) *Result {
	t.Helper()
	res, err := Check(m, Options{
		Model: model, Entries: entries, DetectRaces: true,
		MaxExecutions: 300_000, TimeBudget: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

// TestRaceModeSeqlockGap is the issue's model-checking acceptance
// criterion: exhaustive exploration of the legacy migration-gap program
// yields the racy verdict with a report naming the un-promoted struct
// field, and the atomig-ported program is verified race-free.
func TestRaceModeSeqlockGap(t *testing.T) {
	legacy := compileCorpus(t, "seqlock-gap")
	res := checkRaces(t, legacy, memmodel.ModelWMM, "reader", "writer")
	if res.Verdict != VerdictRace {
		t.Fatalf("legacy seqlock-gap verdict = %s, want racy (reason %q)", res.Verdict, res.Reason)
	}
	var found bool
	for _, r := range res.Races {
		if r.Loc.String() == "%gen:0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no race on %%gen:0 among %d reports", len(res.Races))
	}

	ported := compileCorpus(t, "seqlock-gap")
	if _, err := atomig.Port(ported, atomig.DefaultOptions()); err != nil {
		t.Fatalf("atomig.Port: %v", err)
	}
	pres := checkRaces(t, ported, memmodel.ModelWMM, "reader", "writer")
	if pres.Verdict != VerdictPass {
		t.Fatalf("ported seqlock-gap verdict = %s, want verified (reason %q, %d races)",
			pres.Verdict, pres.Reason, len(pres.Races))
	}
	if len(pres.Races) != 0 {
		t.Fatalf("ported seqlock-gap reported %d races", len(pres.Races))
	}
}

// TestRaceVerdictPrecedence: an assertion violation outranks a race —
// legacy MP under WMM both races and fails, and the verdict is the
// violation while the race reports remain available.
func TestRaceVerdictPrecedence(t *testing.T) {
	m := compileCorpus(t, "mp")
	res := checkRaces(t, m, memmodel.ModelWMM, "reader", "writer")
	if res.Verdict != VerdictFail {
		t.Fatalf("legacy mp verdict = %s, want violated", res.Verdict)
	}
	if len(res.Races) == 0 {
		t.Fatal("legacy mp reported no races alongside the violation")
	}
}

// TestRaceModeCleanProgram: a fully atomic program is verified with
// zero races — the detector adds no false positives and the
// fingerprint-extended hash still lets exploration terminate.
func TestRaceModeCleanProgram(t *testing.T) {
	m := compileCorpus(t, "corr")
	transform.Naive(m)
	res := checkRaces(t, m, memmodel.ModelWMM, "main_thread")
	if res.Verdict != VerdictPass {
		t.Fatalf("naive corr verdict = %s, want verified (reason %q)", res.Verdict, res.Reason)
	}
	if len(res.Races) != 0 {
		t.Fatalf("naive corr reported %d races", len(res.Races))
	}
}

// TestRaceWitnessReplay: with traces on, each newly racy execution is
// replayed into a visible-operation witness through the same
// counterexample path violations use.
func TestRaceWitnessReplay(t *testing.T) {
	m := compileCorpus(t, "lb")
	res, err := Check(m, Options{
		Model: memmodel.ModelWMM, Entries: []string{"main_thread"},
		DetectRaces: true, Traces: true,
		MaxExecutions: 50_000, TimeBudget: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(res.Races) == 0 {
		t.Fatal("lb reported no races")
	}
	if len(res.RaceWitnesses) == 0 {
		t.Fatal("no race witnesses replayed")
	}
	for _, w := range res.RaceWitnesses {
		if len(w.Events) == 0 {
			t.Fatalf("race witness %q has no events", w.Msg)
		}
	}
}

// TestStopAtFirstRace: StopAtFirst halts exploration at the first racy
// execution without a violation.
func TestStopAtFirstRace(t *testing.T) {
	m := compileCorpus(t, "iriw")
	res, err := Check(m, Options{
		Model: memmodel.ModelWMM, Entries: []string{"main_thread"},
		DetectRaces: true, StopAtFirst: true,
		MaxExecutions: 300_000, TimeBudget: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != VerdictRace {
		t.Fatalf("verdict = %s, want racy", res.Verdict)
	}
	if res.Executions != 1 {
		t.Fatalf("StopAtFirst explored %d executions, want 1", res.Executions)
	}
}
