package mc

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
)

// ResumeToken pins the depth-first exploration frontier of a
// budget-expired Check so a later Check can continue where it stopped
// instead of re-exploring from scratch. Tokens are deterministic: the
// interrupted-and-resumed exploration visits executions in exactly the
// order the uninterrupted run would have.
//
// A token passed within the same process also carries the visited-state
// cache and the running statistics, so resumed counters continue
// seamlessly. A token that crossed a process boundary (Encode/Decode)
// carries only the frontier; the visited cache is rebuilt as
// exploration proceeds, which can re-explore some states but never
// changes the verdict.
type ResumeToken struct {
	trace      []choice
	visited    map[uint64]bool
	executions int
	pruned     int
	truncated  int
	// violations and counterexamples found before the budget expired;
	// a resumed Check starts from them so nothing found so far is lost.
	// They stay in-process only: Encode serializes the frontier and the
	// counters, not the findings.
	violations      []string
	counterexamples []Counterexample
}

// Executions reports how many executions the interrupted exploration
// had completed.
func (t *ResumeToken) Executions() int { return t.executions }

// Frontier reports how many unexplored branches the token pins.
func (t *ResumeToken) Frontier() int {
	n := 0
	for _, c := range t.trace {
		n += c.options - 1 - c.taken
	}
	return n
}

// resumeMagic versions the encoded token format.
const resumeMagic = "mcr1"

// Encode serializes the token's frontier for transport across
// processes (the atomig-mc -resume flag).
func (t *ResumeToken) Encode() string {
	buf := []byte(resumeMagic)
	buf = binary.AppendUvarint(buf, uint64(t.executions))
	buf = binary.AppendUvarint(buf, uint64(t.pruned))
	buf = binary.AppendUvarint(buf, uint64(t.truncated))
	buf = binary.AppendUvarint(buf, uint64(len(t.trace)))
	for _, c := range t.trace {
		buf = binary.AppendUvarint(buf, uint64(c.options))
		buf = binary.AppendUvarint(buf, uint64(c.taken))
	}
	return base64.RawURLEncoding.EncodeToString(buf)
}

// DecodeResume parses a token produced by Encode.
func DecodeResume(s string) (*ResumeToken, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("mc: bad resume token: %w", err)
	}
	if len(raw) < len(resumeMagic) || string(raw[:len(resumeMagic)]) != resumeMagic {
		return nil, fmt.Errorf("mc: bad resume token: missing %q header", resumeMagic)
	}
	raw = raw[len(resumeMagic):]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(raw)
		if n <= 0 {
			return 0, fmt.Errorf("mc: bad resume token: truncated")
		}
		raw = raw[n:]
		return v, nil
	}
	t := &ResumeToken{}
	fields := []*int{&t.executions, &t.pruned, &t.truncated}
	for _, f := range fields {
		v, err := next()
		if err != nil {
			return nil, err
		}
		*f = int(v)
	}
	n, err := next()
	if err != nil {
		return nil, err
	}
	const maxTraceLen = 1 << 24 // reject absurd tokens before allocating
	if n > maxTraceLen {
		return nil, fmt.Errorf("mc: bad resume token: trace length %d too large", n)
	}
	t.trace = make([]choice, n)
	for i := range t.trace {
		options, err := next()
		if err != nil {
			return nil, err
		}
		taken, err := next()
		if err != nil {
			return nil, err
		}
		if options == 0 || taken >= options {
			return nil, fmt.Errorf("mc: bad resume token: choice %d/%d out of range", taken, options)
		}
		t.trace[i] = choice{options: int(options), taken: int(taken)}
	}
	if len(raw) != 0 {
		return nil, fmt.Errorf("mc: bad resume token: %d trailing bytes", len(raw))
	}
	return t, nil
}
