package mc

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
)

// ResumeToken pins the depth-first exploration frontier of a
// budget-expired Check so a later Check can continue where it stopped
// instead of re-exploring from scratch. Tokens are deterministic: the
// interrupted-and-resumed exploration visits executions in exactly the
// order the uninterrupted run would have.
//
// A token passed within the same process also carries the visited-state
// cache and the running statistics, so resumed counters continue
// seamlessly. A token that crossed a process boundary (Encode/Decode)
// carries only the frontier; the visited cache is rebuilt as
// exploration proceeds, which can re-explore some states but never
// changes the verdict.
type ResumeToken struct {
	trace []choice
	// floor is the fragment's immutable prefix length: a token from a
	// parallel worker pins only the exploration fragment that worker
	// owned (see dfs.floor); sequential whole-tree tokens have floor 0.
	floor      int
	visited    map[uint64]bool
	executions int
	pruned     int
	truncated  int
	// violations and counterexamples found before the budget expired;
	// a resumed Check starts from them so nothing found so far is lost.
	// They stay in-process only: Encode serializes the frontier and the
	// counters, not the findings.
	violations      []string
	counterexamples []Counterexample
}

// Executions reports how many executions the interrupted exploration
// had completed.
func (t *ResumeToken) Executions() int { return t.executions }

// Frontier reports how many unexplored branches the token pins (within
// the fragment's floor and per-choice ceilings).
func (t *ResumeToken) Frontier() int {
	n := 0
	for i := t.floor; i < len(t.trace); i++ {
		n += t.trace[i].bound() - 1 - t.trace[i].taken
	}
	return n
}

// resumeMagic versions the encoded token format: "mcr2" adds the
// fragment floor and per-choice backtrack ceilings of the parallel
// frontier split. "mcr1" tokens (no floor, no ceilings) decode
// unchanged.
const (
	resumeMagic   = "mcr2"
	resumeMagicV1 = "mcr1"
)

// Encode serializes the token's frontier for transport across
// processes (the atomig-mc -resume flag).
func (t *ResumeToken) Encode() string {
	buf := []byte(resumeMagic)
	buf = binary.AppendUvarint(buf, uint64(t.executions))
	buf = binary.AppendUvarint(buf, uint64(t.pruned))
	buf = binary.AppendUvarint(buf, uint64(t.truncated))
	buf = binary.AppendUvarint(buf, uint64(t.floor))
	buf = binary.AppendUvarint(buf, uint64(len(t.trace)))
	for _, c := range t.trace {
		buf = binary.AppendUvarint(buf, uint64(c.options))
		buf = binary.AppendUvarint(buf, uint64(c.taken))
		buf = binary.AppendUvarint(buf, uint64(c.ceil))
	}
	return base64.RawURLEncoding.EncodeToString(buf)
}

// DecodeResume parses a token produced by Encode (current or mcr1
// format).
func DecodeResume(s string) (*ResumeToken, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("mc: bad resume token: %w", err)
	}
	v2 := false
	switch {
	case len(raw) >= len(resumeMagic) && string(raw[:len(resumeMagic)]) == resumeMagic:
		v2 = true
	case len(raw) >= len(resumeMagicV1) && string(raw[:len(resumeMagicV1)]) == resumeMagicV1:
	default:
		return nil, fmt.Errorf("mc: bad resume token: missing %q header", resumeMagic)
	}
	raw = raw[len(resumeMagic):]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(raw)
		if n <= 0 {
			return 0, fmt.Errorf("mc: bad resume token: truncated")
		}
		raw = raw[n:]
		return v, nil
	}
	t := &ResumeToken{}
	fields := []*int{&t.executions, &t.pruned, &t.truncated}
	if v2 {
		fields = append(fields, &t.floor)
	}
	for _, f := range fields {
		v, err := next()
		if err != nil {
			return nil, err
		}
		*f = int(v)
	}
	n, err := next()
	if err != nil {
		return nil, err
	}
	const maxTraceLen = 1 << 24 // reject absurd tokens before allocating
	if n > maxTraceLen {
		return nil, fmt.Errorf("mc: bad resume token: trace length %d too large", n)
	}
	if t.floor > int(n) {
		return nil, fmt.Errorf("mc: bad resume token: floor %d beyond trace length %d", t.floor, n)
	}
	t.trace = make([]choice, n)
	for i := range t.trace {
		options, err := next()
		if err != nil {
			return nil, err
		}
		taken, err := next()
		if err != nil {
			return nil, err
		}
		var ceil uint64
		if v2 {
			if ceil, err = next(); err != nil {
				return nil, err
			}
		}
		if options == 0 || taken >= options {
			return nil, fmt.Errorf("mc: bad resume token: choice %d/%d out of range", taken, options)
		}
		if ceil != 0 && (ceil > options || taken >= ceil) {
			return nil, fmt.Errorf("mc: bad resume token: ceiling %d invalid for choice %d/%d", ceil, taken, options)
		}
		t.trace[i] = choice{options: int(options), taken: int(taken), ceil: int(ceil)}
	}
	if len(raw) != 0 {
		return nil, fmt.Errorf("mc: bad resume token: %d trailing bytes", len(raw))
	}
	return t, nil
}
