package mc

import (
	"math/bits"
	"sync"

	"repro/internal/obs"
)

// stateCache is the visited-state set runOne prunes against: the
// sequential engine uses a plain map, the parallel engine the sharded
// cache below.
type stateCache interface {
	// insert records h, reporting whether it was new.
	insert(h uint64) bool
}

// mapCache is the single-owner visited set of the sequential engine.
type mapCache map[uint64]bool

func (m mapCache) insert(h uint64) bool {
	if m[h] {
		return false
	}
	m[h] = true
	return true
}

// shardsPerWorker oversizes the shard count relative to the worker
// count so two workers probing simultaneously rarely pick the same
// shard: with 8 shards per worker a uniform probe collides with
// probability 1/8 per concurrent pair, and the state hashes are well
// mixed (splitmix64 finalizer), so the high bits used for shard
// selection are uniform.
const shardsPerWorker = 8

// shardMap is the lock-striped visited-state cache shared by the
// parallel engine's workers. The shard index comes from the hash's
// high bits (the map key inside a shard still uses the full hash), and
// the shard count is a power of two so selection is a shift.
type shardMap struct {
	shards []shard
	shift  uint
	// nolock skips the mutexes entirely when a single worker owns the
	// cache (-j 1 pays no synchronization for the parallel engine).
	nolock bool
	// contended counts lock acquisitions that found the shard already
	// held (TryLock failed) — the contention signal atomig-mc -stats
	// surfaces (registry metric mc.shard_locks_contended).
	contended *obs.Counter
}

type shard struct {
	mu sync.Mutex
	m  map[uint64]bool
	// Pad each shard past a cache line so neighbouring shard locks do
	// not false-share.
	_ [40]byte
}

// newShardMap returns a cache with shardsPerWorker power-of-two shards
// per worker; contended is the registry counter the TryLock-fail path
// feeds.
func newShardMap(workers int, contended *obs.Counter) *shardMap {
	n := 1
	for n < workers*shardsPerWorker {
		n <<= 1
	}
	s := &shardMap{
		shards:    make([]shard, n),
		shift:     uint(64 - bits.TrailingZeros(uint(n))),
		nolock:    workers <= 1,
		contended: contended,
	}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]bool)
	}
	return s
}

// insert records h, reporting whether it was new.
func (s *shardMap) insert(h uint64) bool {
	sh := &s.shards[h>>s.shift]
	if s.nolock {
		if sh.m[h] {
			return false
		}
		sh.m[h] = true
		return true
	}
	if !sh.mu.TryLock() {
		s.contended.Inc()
		sh.mu.Lock()
	}
	seen := sh.m[h]
	if !seen {
		sh.m[h] = true
	}
	sh.mu.Unlock()
	return !seen
}

// size returns the total number of states held. Callers must be
// quiesced (no concurrent inserts).
func (s *shardMap) size() int {
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].m)
	}
	return n
}

// flatten copies the cache into one plain map (resume tokens). Callers
// must be quiesced.
func (s *shardMap) flatten() map[uint64]bool {
	out := make(map[uint64]bool, s.size())
	for i := range s.shards {
		for h := range s.shards[i].m {
			out[h] = true
		}
	}
	return out
}
