package memmodel

import (
	"encoding/binary"
	"sort"
)

// AppendState serializes the view canonically (sorted by address) for
// state hashing in the model checker.
func (v View) AppendState(buf []byte) []byte {
	addrs := make([]Addr, 0, len(v))
	for a, ts := range v {
		if ts != 0 {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(addrs)))
	for _, a := range addrs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v[a]))
	}
	return buf
}

// AppendState serializes the machine's memory state canonically for
// state hashing: every touched location's message history (values and
// released views) plus the global SC view.
func (mc *Machine) AppendState(buf []byte) []byte {
	addrs := make([]Addr, 0, len(mc.hist))
	for a := range mc.hist {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(addrs)))
	for _, a := range addrs {
		h := mc.hist[a]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(h)))
		for _, m := range h {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Val))
			if m.Rel != nil {
				buf = append(buf, 1)
				buf = m.Rel.AppendState(buf)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return mc.scView.AppendState(buf)
}
