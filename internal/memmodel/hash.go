package memmodel

import (
	"encoding/binary"
	"sort"
)

// mix64 is the splitmix64 finalizer: a cheap bijective mixer whose
// output bits all depend on all input bits. The incremental state
// hashes below combine per-component hashes with XOR (a multiset
// combine), which is only collision-resistant when each component hash
// is well mixed first.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mix64 exposes the mixer for clients composing their own incremental
// state hashes (the VM's flat memory backend).
func Mix64(x uint64) uint64 { return mix64(x) }

// StateHash returns an order-independent hash of the view: the XOR of a
// mixed (address, timestamp) pair per nonzero entry. Equal views hash
// equal regardless of map iteration order, and the hash is cheap enough
// to recompute per dirty thread on every visible step of the model
// checker.
func (v View) StateHash() uint64 {
	var h uint64
	for a, ts := range v {
		if ts != 0 {
			h ^= mix64(uint64(a)*0x9e3779b97f4a7c15 ^ uint64(ts))
		}
	}
	return h
}

// msgHash hashes one message (value, timestamp, released view).
func msgHash(m Msg) uint64 {
	h := mix64(uint64(m.Val)*0x2545f4914f6cdd1d ^ uint64(m.TS))
	if m.Rel != nil {
		h ^= mix64(m.Rel.StateHash() ^ 0xa0761d6478bd642f)
	}
	return h
}

// addrTag folds an address into its history hash so identical histories
// at different addresses do not cancel under the XOR combine.
func addrTag(a Addr, histHash uint64) uint64 {
	return mix64(histHash ^ mix64(uint64(a)))
}

// noteAppend folds a newly appended (or materialized) message at a into
// the machine's incremental state accumulator. Histories are
// append-only, so the per-address running hash is an FNV-style chain
// over the message hashes, and the machine-level accumulator XORs the
// address-tagged per-address hashes (XOR lets one address's update
// replace its old contribution in O(1)).
func (mc *Machine) noteAppend(a Addr, m Msg) {
	old := mc.addrAcc[a]
	mc.acc ^= addrTag(a, old)
	nh := old*1099511628211 ^ msgHash(m)
	mc.addrAcc[a] = nh
	mc.acc ^= addrTag(a, nh)
}

// StateAcc returns the incrementally maintained hash of the machine's
// memory state: every touched location's message history plus the
// global SC view. It replaces serializing the full state (AppendState)
// on every visible step of the model checker; AppendState remains the
// canonical (and slower) form.
func (mc *Machine) StateAcc() uint64 {
	if mc.scDirty {
		mc.scHash = mix64(mc.scView.StateHash() ^ 0x8bb84b93962eacc9)
		mc.scDirty = false
	}
	return mc.acc ^ mc.scHash
}

// AppendState serializes the view canonically (sorted by address) for
// state hashing in the model checker.
func (v View) AppendState(buf []byte) []byte {
	addrs := make([]Addr, 0, len(v))
	for a, ts := range v {
		if ts != 0 {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(addrs)))
	for _, a := range addrs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v[a]))
	}
	return buf
}

// AppendState serializes the machine's memory state canonically for
// state hashing: every touched location's message history (values and
// released views) plus the global SC view.
func (mc *Machine) AppendState(buf []byte) []byte {
	addrs := make([]Addr, 0, len(mc.hist))
	for a := range mc.hist {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(addrs)))
	for _, a := range addrs {
		h := mc.hist[a]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(h)))
		for _, m := range h {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Val))
			if m.Rel != nil {
				buf = append(buf, 1)
				buf = m.Rel.AppendState(buf)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return mc.scView.AppendState(buf)
}
