package memmodel

// ReadOracle resolves the nondeterministic choice of which eligible
// message a weak load observes. The VM plugs in a seeded random oracle;
// the model checker plugs in its DFS exploration.
type ReadOracle interface {
	// PickRead returns an index into the eligible slice (message
	// timestamps, oldest first). The eligible slice always has at least
	// one element (the newest message).
	PickRead(addr Addr, eligible []int) int
}

// NewestOracle always reads the newest eligible message, yielding
// SC-like executions even under weak models (useful for performance
// runs where weak behaviors are not the point).
type NewestOracle struct{}

// PickRead returns the newest message index.
func (NewestOracle) PickRead(_ Addr, eligible []int) int { return len(eligible) - 1 }

// Machine is a view-based shared memory shared by all threads of an
// execution.
type Machine struct {
	Model Model
	hist  map[Addr][]Msg
	// scView is the global view joined by SC accesses and fences,
	// modelling the total order implicit barriers establish.
	scView View
	oracle ReadOracle
	// initial values for lazily materialized locations.
	init map[Addr]int64
	// Incremental state-hash accumulators (see StateAcc): acc XORs the
	// address-tagged per-address history hashes in addrAcc; scHash caches
	// the SC-view hash, recomputed when scDirty.
	acc     uint64
	addrAcc map[Addr]uint64
	scHash  uint64
	scDirty bool
}

// NewMachine returns an empty machine under the given model using the
// supplied oracle for weak read choices.
func NewMachine(model Model, oracle ReadOracle) *Machine {
	return &Machine{
		Model:   model,
		hist:    make(map[Addr][]Msg),
		scView:  make(View),
		oracle:  oracle,
		init:    make(map[Addr]int64),
		addrAcc: make(map[Addr]uint64),
	}
}

// Reset restores the machine to its empty initial state while keeping
// the allocated maps, so one machine can serve many executions (the
// model checker's VM reuse). Callers must re-apply initial values
// (SetInit) afterwards.
func (mc *Machine) Reset() {
	clear(mc.hist)
	clear(mc.scView)
	clear(mc.init)
	clear(mc.addrAcc)
	mc.acc = 0
	mc.scHash = 0
	mc.scDirty = false
}

// SetInit records the initial value of a location (default 0).
func (mc *Machine) SetInit(a Addr, v int64) { mc.init[a] = v }

// Final returns the newest value at a location — the value every thread
// would agree on after full synchronization. Used by the differential
// harness to compare final states across models and schedulers.
func (mc *Machine) Final(a Addr) int64 {
	if h, ok := mc.hist[a]; ok && len(h) > 0 {
		return h[len(h)-1].Val
	}
	return mc.init[a]
}

// history returns the message list of a location, materializing the
// initial message on first touch.
func (mc *Machine) history(a Addr) []Msg {
	h, ok := mc.hist[a]
	if !ok {
		h = []Msg{{Val: mc.init[a], TS: 0}}
		mc.hist[a] = h
		mc.noteAppend(a, h[0])
	}
	return h
}

// Thread is the per-thread memory state: its view.
type Thread struct {
	View View
}

// NewThread returns a fresh thread view.
func NewThread() *Thread { return &Thread{View: make(View)} }

// Reset clears the thread's view, keeping the allocated map (VM reuse
// across model-checker executions).
func (t *Thread) Reset() { clear(t.View) }

// Fork returns a new thread inheriting the parent's view (a spawned
// thread synchronizes with its creator).
func (t *Thread) Fork() *Thread { return &Thread{View: t.View.Clone()} }

// JoinThread absorbs a finished thread's view into t (a joining thread
// synchronizes with the joined thread's final state).
func (t *Thread) JoinThread(o *Thread) { t.View.Join(o.View) }

// EligibleReads returns the timestamps a load with the given effective
// ordering may read at a. On an SC machine every load sees only the
// newest message. Under the weak models, loads — including SC-atomic
// loads — may read any message at or above the thread's view floor:
// C11/RC11 allows an SC load to read a stale write as long as the SC
// total order stays consistent, and that staleness is precisely the
// behavior that breaks sequence locks whose counters were made SC
// without fences (the paper's Spin-level ablation of Table 2). SC
// ordering between fenced accesses is restored by Fence's global-view
// synchronization; atomic read-modify-writes always read the newest
// message (hardware exclusives fail on stale lines).
func (mc *Machine) EligibleReads(t *Thread, a Addr, ord AccessOrd) []int {
	h := mc.history(a)
	if mc.Model == ModelSC {
		return []int{len(h) - 1}
	}
	floor := t.View[a]
	out := make([]int, 0, len(h)-floor)
	for ts := floor; ts < len(h); ts++ {
		out = append(out, ts)
	}
	return out
}

// Load performs a load with the given effective ordering, consulting
// the oracle for the read choice.
func (mc *Machine) Load(t *Thread, a Addr, ord AccessOrd) int64 {
	v, _ := mc.LoadT(t, a, ord)
	return v
}

// LoadT is Load additionally reporting the timestamp of the message
// read — the identity instrumentation (race detection) needs to follow
// reads-from edges precisely.
func (mc *Machine) LoadT(t *Thread, a Addr, ord AccessOrd) (int64, int) {
	eligible := mc.EligibleReads(t, a, ord)
	ts := eligible[mc.oracle.PickRead(a, eligible)]
	return mc.finishLoad(t, a, ord, ts), ts
}

// finishLoad applies the view effects of reading message ts at a.
func (mc *Machine) finishLoad(t *Thread, a Addr, ord AccessOrd, ts int) int64 {
	h := mc.history(a)
	m := h[ts]
	if t.View[a] < ts {
		t.View[a] = ts // per-location coherence for this thread
	}
	if ord.acquires() && m.Rel != nil {
		t.View.Join(m.Rel)
	}
	return m.Val
}

// Store appends a new message at a.
func (mc *Machine) Store(t *Thread, a Addr, v int64, ord AccessOrd) {
	mc.StoreT(t, a, v, ord)
}

// StoreT is Store additionally reporting the timestamp of the new
// message.
func (mc *Machine) StoreT(t *Thread, a Addr, v int64, ord AccessOrd) int {
	h := mc.history(a)
	m := Msg{Val: v, TS: len(h)}
	if ord.releases() {
		m.Rel = t.View.Clone()
		m.Rel[a] = m.TS
	}
	mc.hist[a] = append(h, m)
	mc.noteAppend(a, m)
	t.View[a] = m.TS
	return m.TS
}

// RMWResult reports the outcome of a read-modify-write. ReadTS is the
// timestamp of the message read (always the newest); WriteTS is the
// timestamp of the appended message, or -1 when a compare-exchange
// failed and wrote nothing.
type RMWResult struct {
	Old     int64
	Swapped bool
	ReadTS  int
	WriteTS int
}

// CmpXchg atomically compares the newest message at a with expected and,
// on match, appends nv. Atomic read-modify-writes always read the newest
// message (exclusives fail otherwise on real hardware, retrying until
// current).
func (mc *Machine) CmpXchg(t *Thread, a Addr, expected, nv int64, ord AccessOrd) RMWResult {
	h := mc.history(a)
	newest := len(h) - 1
	old := mc.finishLoad(t, a, ord.loadPart(), newest)
	if old != expected {
		return RMWResult{Old: old, ReadTS: newest, WriteTS: -1}
	}
	wts := mc.StoreT(t, a, nv, ord.storePart())
	return RMWResult{Old: old, Swapped: true, ReadTS: newest, WriteTS: wts}
}

// RMW atomically applies f to the newest value at a.
func (mc *Machine) RMW(t *Thread, a Addr, f func(int64) int64, ord AccessOrd) int64 {
	return mc.RMWT(t, a, f, ord).Old
}

// RMWT is RMW additionally reporting the message timestamps involved.
func (mc *Machine) RMWT(t *Thread, a Addr, f func(int64) int64, ord AccessOrd) RMWResult {
	h := mc.history(a)
	newest := len(h) - 1
	old := mc.finishLoad(t, a, ord.loadPart(), newest)
	wts := mc.StoreT(t, a, f(old), ord.storePart())
	return RMWResult{Old: old, Swapped: true, ReadTS: newest, WriteTS: wts}
}

// LoadPart returns the load half of an RMW ordering (exported for
// happens-before mirroring).
func (o AccessOrd) LoadPart() AccessOrd { return o.loadPart() }

// StorePart returns the store half of an RMW ordering.
func (o AccessOrd) StorePart() AccessOrd { return o.storePart() }

// loadPart returns the load half of an RMW ordering.
func (o AccessOrd) loadPart() AccessOrd {
	switch o {
	case OrdAcqRel, OrdAcquire:
		return OrdAcquire
	case OrdSC:
		return OrdSC
	}
	return OrdRelaxed
}

// storePart returns the store half of an RMW ordering.
func (o AccessOrd) storePart() AccessOrd {
	switch o {
	case OrdAcqRel, OrdRelease:
		return OrdRelease
	case OrdSC:
		return OrdSC
	}
	return OrdRelaxed
}

// Fence applies a fence: SC fences synchronize bidirectionally with the
// global SC view (modelling DMB ISH cumulativity); acquire/release
// fences join or publish accordingly.
func (mc *Machine) Fence(t *Thread, staticOrd int) {
	// Under TSO and SC the machine is already strong enough that fences
	// only need the SC-view synchronization; under WMM the distinction
	// matters for acquire/release fences.
	switch staticOrd {
	case 2: // acquire
		t.View.Join(mc.scView)
	case 3: // release
		if mc.scView.Join(t.View) {
			mc.scDirty = true
		}
	default: // seq_cst and acq_rel
		t.View.Join(mc.scView)
		if mc.scView.Join(t.View) {
			mc.scDirty = true
		}
	}
}

// Newest returns the newest value at a (debugging and final-state
// assertions).
func (mc *Machine) Newest(a Addr) int64 {
	h := mc.history(a)
	return h[len(h)-1].Val
}

// HistoryLen returns the number of messages at a (including the initial
// message), used by tests and state hashing.
func (mc *Machine) HistoryLen(a Addr) int { return len(mc.history(a)) }
