// Package memmodel implements operational memory-consistency models for
// executing AIR programs: SC, x86-TSO, and an Armv8-like weak memory
// model (WMM). The substrate replaces the Armv8 hardware of the paper's
// evaluation.
//
// The weak models use a view-based presentation (in the style of
// promise-free view machines): memory keeps a per-location history of
// messages; each thread holds a view — the minimum timestamp it may read
// per location. Plain/relaxed loads may read any message no older than
// the view floor (this models load-load, store-load and store-store
// reordering as observed by readers); release stores attach the writer's
// view to the message; acquire loads join the attached view, which is
// what restores the message-passing guarantee. Sequentially consistent
// accesses additionally read the newest message and synchronize through
// a global SC view, modelling Arm's implicit barriers (LDAR/STLR).
// Load buffering (which needs promises) is not modelled; none of the
// paper's bug patterns depend on it.
package memmodel

import "fmt"

// Model selects the memory-consistency model of an execution.
type Model int

// Supported models.
const (
	// ModelSC executes every access with sequential consistency.
	ModelSC Model = iota
	// ModelTSO models x86-TSO: plain stores behave as release stores,
	// plain loads as acquire loads (store buffering remains visible,
	// message passing is guaranteed), and read-modify-writes are full
	// barriers.
	ModelTSO
	// ModelWMM models an Armv8-like weak model: plain accesses are
	// relaxed and only annotated atomics and fences restore order.
	ModelWMM
)

func (m Model) String() string {
	switch m {
	case ModelSC:
		return "sc"
	case ModelTSO:
		return "tso"
	case ModelWMM:
		return "wmm"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Addr is a memory cell address.
type Addr uint64

// View maps locations to the minimum message timestamp a thread must
// observe. Missing entries mean timestamp 0 (the initial message).
type View map[Addr]int

// Join raises v to include o, returning whether v changed.
func (v View) Join(o View) bool {
	changed := false
	for a, ts := range o {
		if v[a] < ts {
			v[a] = ts
			changed = true
		}
	}
	return changed
}

// Clone returns a copy of the view.
func (v View) Clone() View {
	c := make(View, len(v))
	for a, ts := range v {
		c[a] = ts
	}
	return c
}

// Msg is one write in a location's history.
type Msg struct {
	Val int64
	TS  int
	// Rel is the view released with the message (release/SC stores and
	// RMWs); nil for relaxed stores.
	Rel View
}

// AccessOrd is the effective ordering of one dynamic access after the
// model's mapping of plain accesses.
type AccessOrd int

// Effective orderings.
const (
	OrdRelaxed AccessOrd = iota
	OrdAcquire
	OrdRelease
	OrdAcqRel
	OrdSC
)

// EffectiveOrd maps a static access ordering (ir.MemOrder numeric
// values, passed as int to avoid an import cycle) under the model.
// plain=0, relaxed=1, acquire=2, release=3, acq_rel=4, seq_cst=5.
func EffectiveOrd(m Model, staticOrd int, isStore bool) AccessOrd {
	if m == ModelSC {
		return OrdSC
	}
	switch staticOrd {
	case 0, 1: // plain / relaxed
		if m == ModelTSO {
			// x86: every store is a release, every load an acquire.
			if isStore {
				return OrdRelease
			}
			return OrdAcquire
		}
		return OrdRelaxed
	case 2:
		return OrdAcquire
	case 3:
		return OrdRelease
	case 4:
		return OrdAcqRel
	default:
		return OrdSC
	}
}

// acquires reports whether the ordering has acquire semantics.
func (o AccessOrd) acquires() bool {
	return o == OrdAcquire || o == OrdAcqRel || o == OrdSC
}

// releases reports whether the ordering has release semantics.
func (o AccessOrd) releases() bool {
	return o == OrdRelease || o == OrdAcqRel || o == OrdSC
}

// Acquires reports whether the ordering has acquire semantics. Exported
// for clients that mirror the machine's synchronization (the race
// detector's happens-before tracking).
func (o AccessOrd) Acquires() bool { return o.acquires() }

// Releases reports whether the ordering has release semantics.
func (o AccessOrd) Releases() bool { return o.releases() }

// RMWOrd maps a static read-modify-write ordering under the model: on
// TSO (x86 lock prefix) and SC machines read-modify-writes are full
// barriers; only WMM honors the annotated ordering.
func RMWOrd(m Model, staticOrd int) AccessOrd {
	if m != ModelWMM {
		return OrdSC
	}
	return EffectiveOrd(m, staticOrd, true)
}
