package memmodel

import (
	"testing"
	"testing/quick"
)

// fixedOracle replays a scripted sequence of read choices, then always
// picks the newest message.
type fixedOracle struct {
	picks []int
	i     int
}

func (o *fixedOracle) PickRead(_ Addr, eligible []int) int {
	if o.i < len(o.picks) {
		p := o.picks[o.i]
		o.i++
		if p < len(eligible) {
			return p
		}
	}
	return len(eligible) - 1
}

func TestViewJoin(t *testing.T) {
	a := View{1: 3, 2: 1}
	b := View{2: 5, 4: 2}
	if !a.Join(b) {
		t.Fatal("join reported no change")
	}
	if a[1] != 3 || a[2] != 5 || a[4] != 2 {
		t.Fatalf("join result %v", a)
	}
	if a.Join(b) {
		t.Fatal("second join changed view")
	}
	c := a.Clone()
	c[1] = 99
	if a[1] != 3 {
		t.Fatal("clone aliases original")
	}
}

func TestSCMachineReadsNewest(t *testing.T) {
	mc := NewMachine(ModelSC, NewestOracle{})
	t0, t1 := NewThread(), NewThread()
	mc.Store(t0, 1, 10, OrdSC)
	mc.Store(t0, 1, 20, OrdSC)
	if got := mc.Load(t1, 1, OrdSC); got != 20 {
		t.Fatalf("SC load = %d, want 20", got)
	}
	if n := mc.HistoryLen(1); n != 3 {
		t.Fatalf("history = %d, want 3 (init + 2 stores)", n)
	}
}

// TestMessagePassingRelaxedAllowsStale: the MP weak behavior in machine
// terms — a relaxed flag read can observe the new flag while the msg
// read stays stale.
func TestMessagePassingRelaxedAllowsStale(t *testing.T) {
	oracle := &fixedOracle{picks: []int{1, 0}} // flag: new; msg: stale
	mc := NewMachine(ModelWMM, oracle)
	w, r := NewThread(), NewThread()
	const msg, flag = 1, 2
	mc.Store(w, msg, 42, OrdRelaxed)
	mc.Store(w, flag, 1, OrdRelaxed)
	if got := mc.Load(r, flag, OrdRelaxed); got != 1 {
		t.Fatalf("flag = %d", got)
	}
	if got := mc.Load(r, msg, OrdRelaxed); got != 0 {
		t.Fatalf("msg = %d, want stale 0", got)
	}
}

// TestMessagePassingReleaseAcquireForbidsStale: with release/acquire the
// flag read carries the writer's view, pinning the msg read.
func TestMessagePassingReleaseAcquireForbidsStale(t *testing.T) {
	oracle := &fixedOracle{picks: []int{1, 0}} // msg pick 0 must be overridden by floor
	mc := NewMachine(ModelWMM, oracle)
	w, r := NewThread(), NewThread()
	const msg, flag = 1, 2
	mc.Store(w, msg, 42, OrdRelaxed)
	mc.Store(w, flag, 1, OrdRelease)
	if got := mc.Load(r, flag, OrdAcquire); got != 1 {
		t.Fatalf("flag = %d", got)
	}
	// After the acquire join, only the new msg message is eligible.
	eligible := mc.EligibleReads(r, msg, OrdRelaxed)
	if len(eligible) != 1 || eligible[0] != 1 {
		t.Fatalf("eligible msg reads = %v, want [1]", eligible)
	}
	if got := mc.Load(r, msg, OrdRelaxed); got != 42 {
		t.Fatalf("msg = %d, want 42", got)
	}
}

// TestTSOMapping: plain accesses become release stores and acquire
// loads under TSO; under WMM they stay relaxed.
func TestTSOMapping(t *testing.T) {
	cases := []struct {
		model   Model
		ord     int
		isStore bool
		want    AccessOrd
	}{
		{ModelSC, 0, false, OrdSC},
		{ModelTSO, 0, false, OrdAcquire},
		{ModelTSO, 0, true, OrdRelease},
		{ModelWMM, 0, false, OrdRelaxed},
		{ModelWMM, 0, true, OrdRelaxed},
		{ModelWMM, 2, false, OrdAcquire},
		{ModelWMM, 3, true, OrdRelease},
		{ModelWMM, 5, true, OrdSC},
		{ModelTSO, 1, false, OrdAcquire},
	}
	for _, c := range cases {
		if got := EffectiveOrd(c.model, c.ord, c.isStore); got != c.want {
			t.Errorf("EffectiveOrd(%v, %d, store=%v) = %v, want %v",
				c.model, c.ord, c.isStore, got, c.want)
		}
	}
}

// TestStoreBufferingAllowedUnderTSO: both threads can read the initial
// values even after both stores (the defining TSO weakness).
func TestStoreBufferingAllowedUnderTSO(t *testing.T) {
	oracle := &fixedOracle{picks: []int{0, 0}}
	mc := NewMachine(ModelTSO, oracle)
	t0, t1 := NewThread(), NewThread()
	const x, y = 1, 2
	mc.Store(t0, x, 1, EffectiveOrd(ModelTSO, 0, true))
	mc.Store(t1, y, 1, EffectiveOrd(ModelTSO, 0, true))
	if got := mc.Load(t0, y, EffectiveOrd(ModelTSO, 0, false)); got != 0 {
		t.Fatalf("t0 read y = %d, want stale 0", got)
	}
	if got := mc.Load(t1, x, EffectiveOrd(ModelTSO, 0, false)); got != 0 {
		t.Fatalf("t1 read x = %d, want stale 0", got)
	}
}

// TestRMWReadsNewest: read-modify-writes always act on the newest
// message regardless of the thread's view.
func TestRMWReadsNewest(t *testing.T) {
	mc := NewMachine(ModelWMM, &fixedOracle{})
	t0, t1 := NewThread(), NewThread()
	mc.Store(t0, 1, 5, OrdRelaxed)
	r := mc.CmpXchg(t1, 1, 5, 9, OrdAcqRel)
	if !r.Swapped || r.Old != 5 {
		t.Fatalf("cmpxchg = %+v", r)
	}
	r = mc.CmpXchg(t0, 1, 5, 7, OrdAcqRel)
	if r.Swapped {
		t.Fatalf("stale cmpxchg succeeded: %+v", r)
	}
	old := mc.RMW(t0, 1, func(v int64) int64 { return v + 1 }, OrdAcqRel)
	if old != 9 || mc.Newest(1) != 10 {
		t.Fatalf("rmw old=%d newest=%d", old, mc.Newest(1))
	}
}

// TestFenceSynchronizes: release-fence/acquire-fence pairs transfer
// views through the global SC view.
func TestFenceSynchronizes(t *testing.T) {
	mc := NewMachine(ModelWMM, &fixedOracle{picks: []int{0}})
	w, r := NewThread(), NewThread()
	const msg = 1
	mc.Store(w, msg, 42, OrdRelaxed)
	mc.Fence(w, 5) // seq_cst: publishes w's view
	mc.Fence(r, 5) // seq_cst: joins the global view
	eligible := mc.EligibleReads(r, msg, OrdRelaxed)
	if len(eligible) != 1 || eligible[0] != 1 {
		t.Fatalf("eligible after fences = %v, want only the new message", eligible)
	}
}

// TestForkJoinViews: spawned threads inherit views; joining absorbs
// them.
func TestForkJoinViews(t *testing.T) {
	mc := NewMachine(ModelWMM, &fixedOracle{})
	parent := NewThread()
	mc.Store(parent, 1, 7, OrdRelaxed)
	child := parent.Fork()
	if child.View[1] != parent.View[1] {
		t.Fatal("fork lost view")
	}
	mc.Store(child, 2, 9, OrdRelaxed)
	parent.JoinThread(child)
	if parent.View[2] != child.View[2] {
		t.Fatal("join lost view")
	}
}

// Property: per-thread coherence — a thread's repeated reads of one
// location never observe older timestamps than before, for any oracle
// behavior.
func TestCoherenceProperty(t *testing.T) {
	prop := func(picks []uint8, vals []uint8) bool {
		oracle := &fixedOracle{}
		for _, p := range picks {
			oracle.picks = append(oracle.picks, int(p%4))
		}
		mc := NewMachine(ModelWMM, oracle)
		w, r := NewThread(), NewThread()
		for _, v := range vals {
			mc.Store(w, 1, int64(v), OrdRelaxed)
		}
		last := -1
		for i := 0; i < len(picks); i++ {
			before := r.View[Addr(1)]
			mc.Load(r, 1, OrdRelaxed)
			after := r.View[Addr(1)]
			if after < before || after < last {
				return false
			}
			last = after
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: state serialization is deterministic and view-sensitive.
func TestAppendStateProperty(t *testing.T) {
	prop := func(vals []uint8) bool {
		mc1 := NewMachine(ModelWMM, &fixedOracle{})
		mc2 := NewMachine(ModelWMM, &fixedOracle{})
		t1, t2 := NewThread(), NewThread()
		for i, v := range vals {
			ord := OrdRelaxed
			if v%3 == 0 {
				ord = OrdRelease
			}
			mc1.Store(t1, Addr(v%8), int64(v), ord)
			mc2.Store(t2, Addr(v%8), int64(v), ord)
			_ = i
		}
		a := string(mc1.AppendState(nil))
		b := string(mc2.AppendState(nil))
		return a == b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
