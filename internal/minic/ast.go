package minic

// TypeExpr is an unresolved type reference as written in source:
// a base type ("int", "void", or a struct name) with pointer depth and
// optional array lengths (outermost first).
type TypeExpr struct {
	Base       string // "int", "void", or "" when StructName is set
	StructName string
	Stars      int
	ArrayLens  []int
}

// IsVoid reports whether the type is plain void (not a pointer).
func (t TypeExpr) IsVoid() bool { return t.Base == "void" && t.Stars == 0 }

// File is a parsed MiniC translation unit.
type File struct {
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// StructDecl declares a struct type.
type StructDecl struct {
	Name   string
	Fields []FieldDecl
	Line   int
}

// FieldDecl is a struct member.
type FieldDecl struct {
	Name     string
	Type     TypeExpr
	Volatile bool
	Atomic   bool
}

// VarDecl declares a global or local variable.
type VarDecl struct {
	Name     string
	Type     TypeExpr
	Volatile bool
	Atomic   bool
	// Init is the scalar initializer expression (nil if absent).
	Init Expr
	// InitList is the aggregate initializer for arrays (nil if absent).
	InitList []Expr
	Line     int
}

// ParamDecl is a function parameter.
type ParamDecl struct {
	Name string
	Type TypeExpr
}

// FuncDecl declares a function with a body.
type FuncDecl struct {
	Name   string
	Ret    TypeExpr
	Params []ParamDecl
	Body   *BlockStmt
	Line   int
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct{ Stmts []Stmt }

// IfStmt is an if/else statement.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while or do-while loop.
type WhileStmt struct {
	Cond    Expr
	Body    Stmt
	DoWhile bool
	Line    int
}

// ForStmt is a C-style for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	Init Stmt // ExprStmt or DeclStmt
	Cond Expr
	Post Expr
	Body Stmt
	Line int
}

// SwitchStmt is a C switch over constant cases. Fallthrough is
// supported; a break leaves the switch.
type SwitchStmt struct {
	Tag   Expr
	Cases []SwitchCase
	Line  int
}

// SwitchCase is one arm: Default distinguishes the default arm.
type SwitchCase struct {
	Value   Expr // constant expression; nil for default
	Default bool
	Body    []Stmt
}

// ExprStmt evaluates an expression for its effects.
type ExprStmt struct{ X Expr }

// DeclStmt declares a local variable.
type DeclStmt struct{ Decl *VarDecl }

// ReturnStmt returns from the function; Val may be nil.
type ReturnStmt struct{ Val Expr }

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

func (*BlockStmt) stmt()    {}
func (*SwitchStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ExprStmt) stmt()     {}
func (*DeclStmt) stmt()     {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expr is implemented by all expression nodes.
type Expr interface{ expr() }

// NumLit is an integer literal.
type NumLit struct{ Val int64 }

// Ident is a variable or function reference.
type Ident struct {
	Name string
	Line int
}

// Unary is a prefix operation: one of ! - * & ~.
type Unary struct {
	Op string
	X  Expr
}

// Binary is an infix operation (arithmetic, comparison, logical).
type Binary struct {
	Op   string
	X, Y Expr
}

// Assign is an assignment expression (value is the stored value).
type Assign struct {
	LHS Expr
	RHS Expr
}

// CompoundAssign is "lhs op= rhs" (op one of + - * / %% & | ^ << >>).
// The lvalue is evaluated once, as in C.
type CompoundAssign struct {
	Op  string // the arithmetic operator, without '='
	LHS Expr
	RHS Expr
}

// IncDec is ++x / --x / x++ / x--. Post selects the postfix form
// (the expression's value is the old value).
type IncDec struct {
	Op   string // "++" or "--"
	X    Expr
	Post bool
}

// Call invokes a named function or builtin.
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Index subscripts an array or pointer.
type Index struct {
	X   Expr
	Idx Expr
}

// Member selects a struct field; Arrow distinguishes p->f from s.f.
type Member struct {
	X     Expr
	Name  string
	Arrow bool
	Line  int
}

// Cast converts a pointer-typed expression, e.g. (struct node *)malloc(...).
type Cast struct {
	Type TypeExpr
	X    Expr
}

// SizeOf yields the storage size in cells of a type.
type SizeOf struct{ Type TypeExpr }

// AsmExpr is a literal __asm__("...") fragment; the frontend maps known
// x86 synchronization idioms to builtins during lowering.
type AsmExpr struct {
	Text string
	Line int
}

func (*NumLit) expr()         {}
func (*Ident) expr()          {}
func (*Unary) expr()          {}
func (*Binary) expr()         {}
func (*Assign) expr()         {}
func (*CompoundAssign) expr() {}
func (*IncDec) expr()         {}
func (*Call) expr()           {}
func (*Index) expr()          {}
func (*Member) expr()         {}
func (*Cast) expr()           {}
func (*SizeOf) expr()         {}
func (*AsmExpr) expr()        {}
