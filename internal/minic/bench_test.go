package minic

import (
	"strings"
	"testing"
)

// BenchmarkCompile measures frontend throughput (lex, parse, lower,
// verify) in source lines per second — the "Build Time" column of
// Table 3 is dominated by this path.
func BenchmarkCompile(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("int g0;\nint g1;\n")
	for f := 0; f < 400; f++ {
		sb.WriteString("int fn")
		sb.WriteString(strings.Repeat("x", f%3+1))
		sb.WriteString(string(rune('a' + f%26)))
		sb.WriteString(itoa(f))
		sb.WriteString(`(int a, int b) {
  int acc = a;
  for (int i = 0; i < 10; i = i + 1) {
    acc = acc + b * i;
    if (acc > 1000) { acc = acc - b; }
  }
  g0 = g0 + 1;
  return acc + g1;
}
`)
	}
	src := sb.String()
	lines := strings.Count(src, "\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile("bench", src); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(lines), "lines/op")
}

// TestTokenizeAllocs is the lexer's allocation-regression gate.
// Steady state the lexer allocates only the preallocated token slice,
// the intern map, and one clone per distinct identifier — measured
// ~0.14 allocs per source line on the chunkSource module. The bound
// has ~3x headroom; blowing through it means a hot path regained a
// per-token allocation (error construction, substring copies, slice
// regrowth).
func TestTokenizeAllocs(t *testing.T) {
	src := chunkSource(100)
	lines := strings.Count(src, "\n")
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Tokenize(src); err != nil {
			t.Fatal(err)
		}
	})
	if perLine := allocs / float64(lines); perLine > 0.5 {
		t.Errorf("Tokenize allocates %.0f times (%.3f/line) on %d lines, want <= 0.5/line",
			allocs, perLine, lines)
	}
}

// TestParseAllocs gates the parser: allocations should be AST nodes
// and little else — measured ~6.3 allocs per source line. The bound
// has ~1.6x headroom for grammar growth without masking a regression
// to per-token scratch allocation.
func TestParseAllocs(t *testing.T) {
	src := chunkSource(100)
	lines := strings.Count(src, "\n")
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := (&Parser{toks: toks}).parseFile(); err != nil {
			t.Fatal(err)
		}
	})
	if perLine := allocs / float64(lines); perLine > 10 {
		t.Errorf("parse allocates %.0f times (%.3f/line) on %d lines, want <= 10/line",
			allocs, perLine, lines)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
