package minic

import (
	"strings"
	"testing"
)

// BenchmarkCompile measures frontend throughput (lex, parse, lower,
// verify) in source lines per second — the "Build Time" column of
// Table 3 is dominated by this path.
func BenchmarkCompile(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("int g0;\nint g1;\n")
	for f := 0; f < 400; f++ {
		sb.WriteString("int fn")
		sb.WriteString(strings.Repeat("x", f%3+1))
		sb.WriteString(string(rune('a' + f%26)))
		sb.WriteString(itoa(f))
		sb.WriteString(`(int a, int b) {
  int acc = a;
  for (int i = 0; i < 10; i = i + 1) {
    acc = acc + b * i;
    if (acc > 1000) { acc = acc - b; }
  }
  g0 = g0 + 1;
  return acc + g1;
}
`)
	}
	src := sb.String()
	lines := strings.Count(src, "\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile("bench", src); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(lines), "lines/op")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
