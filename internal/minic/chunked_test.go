package minic

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// chunkSource builds a module big enough to clear minChunkTokens, with
// every top-level form the splitter must recognize: struct decls (the
// '}' is followed by ';'), initialized globals, array globals with
// initializer lists, prototypes, and function bodies.
func chunkSource(nFuncs int) string {
	var b strings.Builder
	b.WriteString("struct pair { int a; int b; };\n")
	b.WriteString("struct pair shared;\n")
	b.WriteString("int table[4] = {1, 2, 3, 4};\n")
	b.WriteString("int counter = 0;\n")
	b.WriteString("int helper(int x);\n")
	for i := 0; i < nFuncs; i++ {
		fmt.Fprintf(&b, `int fn%d(int a, int b) {
  int acc = a;
  for (int i = 0; i < 10; i = i + 1) {
    acc = acc + b * i;
    if (acc > 1000) { acc = acc - b; }
  }
  counter = counter + 1;
  return acc + helper(a);
}
`, i)
	}
	b.WriteString("int helper(int x) { return x + shared.a + table[1]; }\n")
	return b.String()
}

func TestSplitDecls(t *testing.T) {
	toks, err := Tokenize(chunkSource(3))
	if err != nil {
		t.Fatal(err)
	}
	ends, ok := splitDecls(toks)
	if !ok {
		t.Fatal("splitDecls rejected a well-formed module")
	}
	// struct + global + array global + counter + prototype + 3 funcs +
	// trailing helper definition.
	if len(ends) != 9 {
		t.Fatalf("%d declaration boundaries, want 9 (%v)", len(ends), ends)
	}
	if last := ends[len(ends)-1]; last != len(toks) {
		t.Fatalf("last boundary %d, want %d (end of stream)", last, len(toks))
	}
	// Boundaries must be strictly increasing.
	for i := 1; i < len(ends); i++ {
		if ends[i] <= ends[i-1] {
			t.Fatalf("boundaries not increasing: %v", ends)
		}
	}
}

func TestSplitDeclsRejectsMalformed(t *testing.T) {
	for _, src := range []string{
		"}",                      // negative depth
		"void f(void) {",         // unbalanced at EOF
		"int x; void f(void) {",  // unbalanced after a valid decl
		"void f(void) { } int x", // trailing tokens past the last boundary
	} {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if _, ok := splitDecls(toks); ok {
			t.Errorf("splitDecls accepted malformed %q", src)
		}
	}
}

// TestParseChunkedMatchesSequential pins the splitter's core claim on
// varied well-formed sources: the chunked-parallel parse produces an
// AST deep-equal to the sequential parser's.
func TestParseChunkedMatchesSequential(t *testing.T) {
	sources := []string{
		chunkSource(40),
		chunkSource(3) + "int tail;\n",
		strings.Repeat("int g; void f(void) { g = 1; }\n", 60),
	}
	for i, src := range sources {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatal(err)
		}
		seq, serr := (&Parser{toks: toks}).parseFile()
		if serr != nil {
			t.Fatalf("source %d: sequential parse: %v", i, serr)
		}
		par, ok := parseChunked(toks, 4, nil)
		if !ok {
			t.Fatalf("source %d: parseChunked fell back on well-formed input", i)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("source %d: chunked AST differs from sequential", i)
		}
	}
}

// TestCompileOptsDeterministic is the frontend determinism contract at
// the module level: byte-identical AIR text and identical Stats for
// every worker count.
func TestCompileOptsDeterministic(t *testing.T) {
	src := chunkSource(50)
	base, err := Compile("det.c", src)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Module.String()
	for _, j := range []int{2, 3, 8} {
		res, err := CompileOpts("det.c", src, Options{Workers: j})
		if err != nil {
			t.Fatalf("-j %d: %v", j, err)
		}
		if got := res.Module.String(); got != want {
			t.Errorf("-j %d module text differs from sequential (%d vs %d bytes)", j, len(got), len(want))
		}
		if res.Stats != base.Stats {
			t.Errorf("-j %d stats %+v differ from sequential %+v", j, res.Stats, base.Stats)
		}
	}
}

// TestCompileOptsErrorsMatchSequential: malformed source must produce
// the byte-identical error at every worker count (the chunked path
// falls back to a sequential parse for the canonical message).
func TestCompileOptsErrorsMatchSequential(t *testing.T) {
	for _, src := range []string{
		chunkSource(30) + "void broken( {\n",
		chunkSource(30) + "int dup; int dup;\n",
		strings.Repeat("int g; void f(void) { g = ; }\n", 40),
	} {
		_, serr := Compile("err.c", src)
		if serr == nil {
			t.Fatal("sequential compile accepted malformed source")
		}
		for _, j := range []int{2, 8} {
			_, perr := CompileOpts("err.c", src, Options{Workers: j})
			if perr == nil {
				t.Fatalf("-j %d accepted source the sequential frontend rejects", j)
			}
			if perr.Error() != serr.Error() {
				t.Errorf("-j %d error %q differs from sequential %q", j, perr, serr)
			}
		}
	}
}
