// Compile driver: the frontend entry point, its options, and the
// worker pools that parallelize parsing and lowering.
//
// The frontend runs in four phases — lex, parse, lower, verify — and
// the middle two fan out across Options.Workers goroutines:
//
//   - parse: the token stream is split at balanced-brace top-level
//     declaration boundaries (split.go), contiguous declaration runs
//     are parsed concurrently, and the fragments are merged in source
//     order, so the AST is identical to a sequential Parse for every
//     worker count.
//   - lower: function bodies are lowered concurrently, one worker per
//     claimed function (instruction IDs and block names are
//     per-function state, so each lowered function is byte-identical
//     to its sequential lowering); per-function stats and NoInline
//     marks land in per-function slots merged in module order.
//
// Determinism contract: CompileOpts produces a byte-identical module
// (and identical Stats) for every Workers value — docs/PIPELINE.md
// ("Frontend").
package minic

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/obs"
)

// Options configures a Compile run. The zero value is the sequential,
// unobserved frontend (what Compile uses).
type Options struct {
	// Workers is the frontend fan-out: chunked parsing and
	// per-function lowering run on this many goroutines (0 or 1 means
	// sequential). The produced module is byte-identical for every
	// value.
	Workers int
	// Obs, when non-nil, records frontend.lex / frontend.parse /
	// frontend.lower / frontend.verify spans on the "frontend" track,
	// per-worker frontend.worker-NN timelines, and frontend.* counters
	// (docs/OBSERVABILITY.md).
	Obs *obs.Provider
}

// Timing is the per-phase wall-clock breakdown of one Compile run.
// Verify is the post-lowering IR verifier pass.
type Timing struct {
	Lex    time.Duration
	Parse  time.Duration
	Lower  time.Duration
	Verify time.Duration
}

// Total is the summed frontend wall clock.
func (t Timing) Total() time.Duration { return t.Lex + t.Parse + t.Lower + t.Verify }

// Result is the output of Compile: the AIR module, frontend stats, and
// the per-phase timing breakdown.
type Result struct {
	Module *ir.Module
	Stats  Stats
	Timing Timing
}

// Compile parses and lowers MiniC source into an AIR module named name
// on one goroutine. Malformed source produces an error, never a panic:
// internal panics in the lexer, parser or lowering are contained by
// the diag guard.
func Compile(name, src string) (*Result, error) {
	return CompileOpts(name, src, Options{})
}

// CompileOpts is Compile with a worker pool and observability: parsing
// and lowering fan out across opts.Workers goroutines with the module
// byte-identical at every worker count.
func CompileOpts(name, src string, opts Options) (res *Result, err error) {
	defer diag.Guard("minic.Compile", &err)
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	trk := opts.Obs.Track("frontend")

	start := time.Now()
	sp := trk.Begin("frontend.lex")
	toks, lerr := Tokenize(src)
	sp.End()
	var timing Timing
	timing.Lex = time.Since(start)
	if lerr != nil {
		return nil, fmt.Errorf("minic: %w", lerr)
	}
	opts.Obs.Counter("frontend.tokens_scanned").Add(int64(len(toks)))

	start = time.Now()
	sp = trk.Begin("frontend.parse")
	file, perr := parseTokens(toks, workers, opts.Obs)
	sp.End()
	timing.Parse = time.Since(start)
	if perr != nil {
		return nil, fmt.Errorf("minic: %w", perr)
	}
	opts.Obs.Counter("frontend.decls_parsed").
		Add(int64(len(file.Structs) + len(file.Globals) + len(file.Funcs)))

	c := &compiler{
		mod:     ir.NewModule(name),
		structs: make(map[string]*ir.StructType),
		workers: workers,
		obs:     opts.Obs,
	}
	c.stats.SourceLines = countSourceLines(src)
	start = time.Now()
	sp = trk.Begin("frontend.lower")
	cerr := c.compileFile(file)
	sp.End()
	timing.Lower = time.Since(start)
	if cerr != nil {
		return nil, fmt.Errorf("minic: %w", cerr)
	}

	start = time.Now()
	sp = trk.Begin("frontend.verify")
	verr := ir.Verify(c.mod)
	sp.End()
	timing.Verify = time.Since(start)
	if verr != nil {
		return nil, fmt.Errorf("minic: lowering produced invalid IR: %w", verr)
	}

	c.stats.Functions = len(c.mod.Funcs)
	c.stats.Instrs = c.mod.NumInstrs()
	opts.Obs.Counter("frontend.funcs_lowered").Add(int64(c.stats.Functions))
	opts.Obs.Counter("frontend.lines_compiled").Add(int64(c.stats.SourceLines))
	return &Result{Module: c.mod, Stats: c.stats, Timing: timing}, nil
}

// frontPanic carries a panic out of a pool goroutine to the goroutine
// that owns the pool, preserving the worker's stack, so the caller's
// diag guard turns it into a structured error on the right goroutine.
type frontPanic struct {
	val   any
	stack []byte
}

func (p *frontPanic) String() string {
	return fmt.Sprintf("frontend worker panic: %v\n%s", p.val, p.stack)
}

// runPool runs body on workers goroutines and waits for all of them.
// The first worker panic is re-raised on the calling goroutine.
func runPool(workers int, body func(w int)) {
	var wg sync.WaitGroup
	var first atomic.Pointer[frontPanic]
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					first.CompareAndSwap(nil, &frontPanic{val: r, stack: debug.Stack()})
				}
			}()
			body(w)
		}(w)
	}
	wg.Wait()
	if p := first.Load(); p != nil {
		panic(p)
	}
}

// funcOut is one function's lowering result slot: per-function stats
// deltas (asm mapping counters) and the NoInline marks the body
// requested (spawn targets), applied sequentially in module order so
// the merged module and stats are identical for every worker count.
type funcOut struct {
	err      error
	stats    Stats
	noinline []*ir.Func
}

// compileFuncs lowers every function body, fanning out across the
// compiler's worker count. Workers claim function indices from a
// shared cursor and write into per-function slots; the sequential
// merge consumes slots in module order, so stats, NoInline marks and
// the first reported error all match the sequential frontend.
func (c *compiler) compileFuncs(funcs []*FuncDecl) error {
	workers := c.workers
	if workers > len(funcs) {
		workers = len(funcs)
	}
	if workers <= 1 {
		scratch := &lowerScratch{}
		for _, fd := range funcs {
			var out funcOut
			c.compileFunc(fd, scratch, &out)
			if out.err != nil {
				return out.err
			}
			c.mergeFuncOut(&out)
		}
		return nil
	}
	outs := make([]funcOut, len(funcs))
	var cursor atomic.Int64
	var failed atomic.Bool
	runPool(workers, func(w int) {
		trk := c.obs.Track(fmt.Sprintf("frontend.worker-%02d", w))
		sp := trk.Begin("frontend.lower_shard")
		scratch := &lowerScratch{}
		lowered := 0
		for !failed.Load() {
			i := int(cursor.Add(1)) - 1
			if i >= len(funcs) {
				break
			}
			c.compileFunc(funcs[i], scratch, &outs[i])
			if outs[i].err != nil {
				failed.Store(true)
			}
			lowered++
		}
		sp.Arg("funcs", lowered).End()
	})
	// The cursor hands out indices in increasing order, so when any
	// slot errors, every lower index was claimed and finished: the
	// first error in slot order is the error the sequential frontend
	// would have reported.
	for i := range outs {
		if outs[i].err != nil {
			return outs[i].err
		}
		c.mergeFuncOut(&outs[i])
	}
	return nil
}

func (c *compiler) mergeFuncOut(out *funcOut) {
	c.stats.AsmMapped += out.stats.AsmMapped
	c.stats.AsmOpaque += out.stats.AsmOpaque
	for _, fn := range out.noinline {
		fn.NoInline = true
	}
}
