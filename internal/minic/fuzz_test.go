package minic

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/ir"
)

// FuzzCompile feeds arbitrary source to the MiniC frontend. The
// contract under fuzzing: malformed input produces an ordinary error
// (never a contained panic, which would indicate a compiler bug), and
// any module that compiles must pass the IR verifier and survive a
// textual round trip through the AIR printer and parser.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"int x;\nvoid main_thread(void) { x = 1; }\n",
		"int flag;\nint msg;\nvoid writer(void) { msg = 1; flag = 1; }\nvoid reader(void) {\n  while (flag == 0) { }\n  assert(msg == 1);\n}\n",
		"_Atomic int a;\nvolatile int v;\nint f(int x) { a = a + x; v = a; return v; }\n",
		"struct node { int state; int key; };\nstruct node n;\nvoid t(void) { n.state = 1; n.key = 42; }\n",
		"int l;\nint c;\nvoid w(void) {\n  while (__cas(&l, 0, 1) != 0) { }\n  c = c + 1;\n  l = 0;\n}\n",
		"void m(void) { for (int i = 0; i < 5; i = i + 1) { print(i); } }\n",
		"int s;\nint d;\nint r(void) {\n  int a;\n  int b;\n  do { a = s; b = d; } while (a % 2 != 0 || a != s);\n  return b;\n}\n",
		"void b(void) { __asm__(\"mfence\"); __fence(); barrier(2); }\n",
		// Malformed inputs: the frontend must reject, not crash.
		"int",
		"void f( {",
		"}}}}",
		"void f(void) { x = ; }",
		"struct s { struct s inner; };",
		"void f(void) { while (1 { } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 16<<10 {
			t.Skip("oversized input")
		}
		res, err := Compile("fuzz", src)
		if err != nil {
			if ie, ok := diag.AsInternal(err); ok {
				t.Fatalf("compiler panicked on input:\n%s\n%s", src, ie.Diagnostics())
			}
			return // ordinary rejection of malformed input
		}
		if verr := ir.Verify(res.Module); verr != nil {
			t.Fatalf("accepted module fails verification: %v\ninput:\n%s", verr, src)
		}
		// The printed AIR of a valid module must parse back.
		printed := res.Module.String()
		if _, perr := ir.ParseModule(printed); perr != nil {
			t.Fatalf("printed AIR does not re-parse: %v\ninput:\n%s\nAIR:\n%s", perr, src, printed)
		}
	})
}

// FuzzParseChunked cross-checks the chunked-parallel parse against the
// sequential parser on arbitrary token streams: same accept/reject
// verdict, byte-identical error on reject, deep-equal AST on accept.
// The input is replicated so small fuzz cases still clear the
// minimum-token threshold that arms the chunked path (duplicate
// definitions are legal at parse level; lowering catches them later).
func FuzzParseChunked(f *testing.F) {
	seeds := []string{
		"int x;\nvoid main_thread(void) { x = 1; }\n",
		"struct pair { int a; int b; };\nstruct pair p;\nint t[2] = {1, 2};\n",
		"int helper(int x);\nint helper(int x) { return x + 1; }\n",
		"void f(void) { while (1 { } }",
		"}}}}",
		"void f(void) { x = ; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4<<10 {
			t.Skip("oversized input")
		}
		big := strings.Repeat(src+"\n", 8)
		toks, err := Tokenize(big)
		if err != nil {
			return // lexer rejection precedes both parsers identically
		}
		seq, serr := (&Parser{toks: toks}).parseFile()
		par, perr := parseTokens(toks, 4, nil)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("verdict drift: sequential err=%v, chunked err=%v\ninput:\n%s", serr, perr, big)
		}
		if serr != nil {
			if serr.Error() != perr.Error() {
				t.Fatalf("error drift: sequential %q, chunked %q\ninput:\n%s", serr, perr, big)
			}
			return
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("AST drift between sequential and chunked parse\ninput:\n%s", big)
		}
	})
}
