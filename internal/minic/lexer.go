// Package minic implements the frontend that stands in for clang in the
// atomig pipeline: a lexer, parser, and lowering pass that compile a
// C-like language (MiniC) to AIR modules.
//
// MiniC covers the C subset that the AtoMig analyses are designed for:
// global variables (with volatile and _Atomic qualifiers), structs,
// pointers, arrays, functions, the usual control flow, C11-style atomic
// builtins with explicit memory orders, x86 inline-assembly
// synchronization idioms (mapped to builtins by the frontend, as in paper
// section 3.2), and thread primitives for test harnesses.
package minic

import (
	"fmt"
	"strings"
)

// TokKind classifies a token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokPunct
	TokKeyword
)

var keywords = map[string]bool{
	"int": true, "void": true, "struct": true, "volatile": true,
	"_Atomic": true, "while": true, "do": true, "for": true, "if": true,
	"else": true, "break": true, "continue": true, "return": true,
	"sizeof": true, "__asm__": true,
	"switch": true, "case": true, "default": true,
}

// Token is a lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

// Lexer scans MiniC source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
	// interned dedups identifier text so the AST holds one small
	// string per distinct name instead of thousands of substrings
	// pinning the source buffer. Keywords intern too (their map keys
	// double as the canonical spelling).
	interned map[string]string
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

// intern returns the canonical allocation for an identifier spelling.
// The substring s is used only to probe the map, so the clone is paid
// once per distinct identifier, not once per occurrence.
func (l *Lexer) intern(s string) string {
	if v, ok := l.interned[s]; ok {
		return v
	}
	if l.interned == nil {
		l.interned = make(map[string]string, 64)
	}
	c := strings.Clone(s)
	l.interned[c] = c
	return c
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine := l.line
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return fmt.Errorf("line %d: unterminated block comment", startLine)
				}
				if l.peekByte() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// punct matches the longest punctuator at l.pos, switching on the lead
// byte instead of probing a table of prefixes — the per-token cost on
// operator-dense source is one branch tree, not up to 33 HasPrefix
// calls. Returns "" when the byte starts no punctuator.
func (l *Lexer) punct() string {
	s, i := l.src, l.pos
	two := func(b byte) bool { return i+1 < len(s) && s[i+1] == b }
	three := func(b byte) bool { return i+2 < len(s) && s[i+2] == b }
	switch s[i] {
	case '<':
		if two('<') {
			if three('=') {
				return "<<="
			}
			return "<<"
		}
		if two('=') {
			return "<="
		}
		return "<"
	case '>':
		if two('>') {
			if three('=') {
				return ">>="
			}
			return ">>"
		}
		if two('=') {
			return ">="
		}
		return ">"
	case '+':
		if two('+') {
			return "++"
		}
		if two('=') {
			return "+="
		}
		return "+"
	case '-':
		if two('-') {
			return "--"
		}
		if two('=') {
			return "-="
		}
		if two('>') {
			return "->"
		}
		return "-"
	case '*':
		if two('=') {
			return "*="
		}
		return "*"
	case '/':
		if two('=') {
			return "/="
		}
		return "/"
	case '%':
		if two('=') {
			return "%="
		}
		return "%"
	case '&':
		if two('&') {
			return "&&"
		}
		if two('=') {
			return "&="
		}
		return "&"
	case '|':
		if two('|') {
			return "||"
		}
		if two('=') {
			return "|="
		}
		return "|"
	case '^':
		if two('=') {
			return "^="
		}
		return "^"
	case '=':
		if two('=') {
			return "=="
		}
		return "="
	case '!':
		if two('=') {
			return "!="
		}
		return "!"
	case '(':
		return "("
	case ')':
		return ")"
	case '{':
		return "{"
	case '}':
		return "}"
	case '[':
		return "["
	case ']':
		return "]"
	case ';':
		return ";"
	case ',':
		return ","
	case '.':
		return "."
	case '~':
		return "~"
	case ':':
		return ":"
	}
	return ""
}

// Next returns the next token. Error values are constructed only on
// the failure path; the success path allocates only for the first
// occurrence of each identifier (interning) and for escaped string
// literals.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		// Identifiers contain no newline: scan bytes directly and fix
		// the column once, instead of per-byte advance() calls.
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		l.col += l.pos - start
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: l.intern(text), Line: line, Col: col}, nil
	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) {
			b := l.src[l.pos]
			if !(isDigit(b) || b == 'x' || (b >= 'a' && b <= 'f') || (b >= 'A' && b <= 'F')) {
				break
			}
			l.pos++
		}
		l.col += l.pos - start
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Line: line, Col: col}, nil
	case c == '"':
		l.advance()
		// Fast path: an escape-free literal is a source substring.
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != '"' && l.src[l.pos] != '\\' {
			l.advance()
		}
		if l.pos < len(l.src) && l.src[l.pos] == '"' {
			text := l.src[start:l.pos]
			l.advance()
			return Token{Kind: TokString, Text: text, Line: line, Col: col}, nil
		}
		var b strings.Builder
		b.WriteString(l.src[start:l.pos])
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("line %d: unterminated string", line)
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' && l.pos < len(l.src) {
				b.WriteByte(l.advance())
				continue
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: b.String(), Line: line, Col: col}, nil
	}
	if p := l.punct(); p != "" {
		// Punctuators contain no newline either.
		l.pos += len(p)
		l.col += len(p)
		return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
	}
	return Token{}, fmt.Errorf("line %d:%d: unexpected character %q", line, col, string(c))
}

// tokensPerByteEstimate sizes the token slice from the source length:
// MiniC averages one token per ~4 bytes, so len/4 over-reserves
// slightly and Tokenize almost never regrows.
func tokensPerByteEstimate(n int) int { return n/4 + 8 }

// Tokenize scans the entire source, returning all tokens (excluding
// EOF). The token slice is preallocated from a source-length estimate
// so lexing a module costs O(1) slice growths.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	toks := make([]Token, 0, tokensPerByteEstimate(len(src)))
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
