// Package minic implements the frontend that stands in for clang in the
// atomig pipeline: a lexer, parser, and lowering pass that compile a
// C-like language (MiniC) to AIR modules.
//
// MiniC covers the C subset that the AtoMig analyses are designed for:
// global variables (with volatile and _Atomic qualifiers), structs,
// pointers, arrays, functions, the usual control flow, C11-style atomic
// builtins with explicit memory orders, x86 inline-assembly
// synchronization idioms (mapped to builtins by the frontend, as in paper
// section 3.2), and thread primitives for test harnesses.
package minic

import (
	"fmt"
	"strings"
)

// TokKind classifies a token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokPunct
	TokKeyword
)

var keywords = map[string]bool{
	"int": true, "void": true, "struct": true, "volatile": true,
	"_Atomic": true, "while": true, "do": true, "for": true, "if": true,
	"else": true, "break": true, "continue": true, "return": true,
	"sizeof": true, "__asm__": true,
	"switch": true, "case": true, "default": true,
}

// Token is a lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

// Lexer scans MiniC source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine := l.line
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return fmt.Errorf("line %d: unterminated block comment", startLine)
				}
				if l.peekByte() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-byte punctuators, longest first.
var puncts = []string{
	"<<=", ">>=",
	"++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "~", ":",
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && (isDigit(l.peekByte()) || l.peekByte() == 'x' ||
			(l.peekByte() >= 'a' && l.peekByte() <= 'f') || (l.peekByte() >= 'A' && l.peekByte() <= 'F')) {
			l.advance()
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Line: line, Col: col}, nil
	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("line %d: unterminated string", line)
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' && l.pos < len(l.src) {
				b.WriteByte(l.advance())
				continue
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: b.String(), Line: line, Col: col}, nil
	}
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}
	return Token{}, fmt.Errorf("line %d:%d: unexpected character %q", line, col, string(c))
}

// Tokenize scans the entire source, returning all tokens (excluding EOF).
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
