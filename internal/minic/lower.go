package minic

import (
	"fmt"
	"strconv"

	"repro/internal/ir"
	"repro/internal/obs"
)

// Stats reports frontend counters the atomig pipeline includes in its
// porting report.
type Stats struct {
	// SourceLines is the number of non-blank source lines compiled.
	SourceLines int
	// VolatileDecls counts volatile-qualified globals and fields.
	VolatileDecls int
	// AtomicDecls counts _Atomic-qualified globals and fields.
	AtomicDecls int
	// AsmMapped counts inline-asm fragments replaced by builtins.
	AsmMapped int
	// AsmOpaque counts inline-asm fragments left as opaque calls.
	AsmOpaque int
	// Functions and Instrs describe the produced module.
	Functions int
	Instrs    int
}

// countSourceLines counts non-blank source lines in one pass, without
// materializing a per-line slice (the old strings.Split allocated a
// 100k-entry slice on million-line inputs).
func countSourceLines(src string) int {
	n := 0
	blank := true
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\n':
			if !blank {
				n++
			}
			blank = true
		case ' ', '\t', '\r', '\v', '\f':
			// whitespace keeps the line blank
		default:
			blank = false
		}
	}
	if !blank {
		n++
	}
	return n
}

type compiler struct {
	mod     *ir.Module
	structs map[string]*ir.StructType
	stats   Stats
	// workers and obs come from Options (compile.go): the per-function
	// lowering fan-out and the frontend.* instrumentation seam.
	workers int
	obs     *obs.Provider
}

func (c *compiler) compileFile(f *File) error {
	// Register struct shells so self- and mutual references resolve.
	for _, sd := range f.Structs {
		if _, dup := c.structs[sd.Name]; dup {
			return fmt.Errorf("line %d: duplicate struct %q", sd.Line, sd.Name)
		}
		st := &ir.StructType{TypeName: sd.Name}
		c.structs[sd.Name] = st
		if err := c.mod.AddStruct(st); err != nil {
			return err
		}
	}
	for _, sd := range f.Structs {
		st := c.structs[sd.Name]
		for _, fd := range sd.Fields {
			ft, err := c.resolveType(fd.Type)
			if err != nil {
				return fmt.Errorf("struct %s field %s: %w", sd.Name, fd.Name, err)
			}
			if fd.Volatile {
				c.stats.VolatileDecls++
			}
			if fd.Atomic {
				c.stats.AtomicDecls++
			}
			st.Fields = append(st.Fields, ir.Field{
				Name: fd.Name, Type: ft, Volatile: fd.Volatile, Atomic: fd.Atomic,
			})
		}
	}
	for _, vd := range f.Globals {
		if err := c.compileGlobal(vd); err != nil {
			return err
		}
	}
	// Register function shells for forward references. Prototypes
	// (nil bodies) must agree with the definition; the definition wins.
	defined := make(map[string]*FuncDecl)
	var order []*FuncDecl
	for _, fd := range f.Funcs {
		prev, seen := defined[fd.Name]
		switch {
		case !seen:
			defined[fd.Name] = fd
			order = append(order, fd)
		case prev.Body == nil && fd.Body != nil:
			if len(prev.Params) != len(fd.Params) {
				return fmt.Errorf("line %d: definition of %s disagrees with its prototype", fd.Line, fd.Name)
			}
			*prev = *fd // replace the prototype in place
		case prev.Body != nil && fd.Body == nil:
			if len(prev.Params) != len(fd.Params) {
				return fmt.Errorf("line %d: prototype of %s disagrees with its definition", fd.Line, fd.Name)
			}
		default:
			return fmt.Errorf("line %d: duplicate function %s", fd.Line, fd.Name)
		}
	}
	f.Funcs = order
	for _, fd := range f.Funcs {
		if fd.Body == nil {
			return fmt.Errorf("line %d: function %s declared but never defined", fd.Line, fd.Name)
		}
		ret, err := c.resolveType(fd.Ret)
		if err != nil {
			return fmt.Errorf("line %d: function %s: %w", fd.Line, fd.Name, err)
		}
		fn := &ir.Func{Name: fd.Name, RetTy: ret}
		for i, pd := range fd.Params {
			pt, err := c.resolveType(pd.Type)
			if err != nil {
				return fmt.Errorf("function %s param %s: %w", fd.Name, pd.Name, err)
			}
			fn.Params = append(fn.Params, &ir.Param{PName: pd.Name, Ty: pt, Index: i})
		}
		if err := c.mod.AddFunc(fn); err != nil {
			return fmt.Errorf("line %d: %w", fd.Line, err)
		}
	}
	// Every function shell is registered and the struct/global tables
	// are complete, so function bodies read only shared-immutable state
	// and write only their own ir.Func: lowering fans out (compile.go).
	return c.compileFuncs(f.Funcs)
}

// resolveType converts a syntactic type to an AIR type. Array dimensions
// nest outermost-first: int a[2][3] is [2 x [3 x i64]].
func (c *compiler) resolveType(t TypeExpr) (ir.Type, error) {
	var base ir.Type
	switch {
	case t.Base == "int":
		base = ir.I64
	case t.Base == "void":
		base = ir.Void
	case t.StructName != "":
		st, ok := c.structs[t.StructName]
		if !ok {
			return nil, fmt.Errorf("unknown struct %q", t.StructName)
		}
		base = st
	default:
		return nil, fmt.Errorf("unsupported type")
	}
	for i := 0; i < t.Stars; i++ {
		base = ir.PointerTo(base)
	}
	for i := len(t.ArrayLens) - 1; i >= 0; i-- {
		base = &ir.ArrayType{Elem: base, Len: t.ArrayLens[i]}
	}
	if _, isVoid := base.(*ir.VoidType); isVoid && t.Stars == 0 && len(t.ArrayLens) > 0 {
		return nil, fmt.Errorf("array of void")
	}
	return base, nil
}

func (c *compiler) compileGlobal(vd *VarDecl) error {
	ty, err := c.resolveType(vd.Type)
	if err != nil {
		return fmt.Errorf("line %d: global %s: %w", vd.Line, vd.Name, err)
	}
	if vd.Type.IsVoid() {
		return fmt.Errorf("line %d: global %s has type void", vd.Line, vd.Name)
	}
	g := &ir.Global{GName: vd.Name, Elem: ty, Volatile: vd.Volatile, Atomic: vd.Atomic}
	if vd.Volatile {
		c.stats.VolatileDecls++
	}
	if vd.Atomic {
		c.stats.AtomicDecls++
	}
	switch {
	case vd.Init != nil:
		v, err := constEval(vd.Init)
		if err != nil {
			return fmt.Errorf("line %d: global %s: %w", vd.Line, vd.Name, err)
		}
		g.Init = []int64{v}
	case vd.InitList != nil:
		for _, e := range vd.InitList {
			v, err := constEval(e)
			if err != nil {
				return fmt.Errorf("line %d: global %s: %w", vd.Line, vd.Name, err)
			}
			g.Init = append(g.Init, v)
		}
		if len(g.Init) > ty.Cells() {
			return fmt.Errorf("line %d: global %s: too many initializers", vd.Line, vd.Name)
		}
	}
	return c.mod.AddGlobal(g)
}

// constEval evaluates compile-time constant expressions for global
// initializers.
func constEval(e Expr) (int64, error) {
	switch x := e.(type) {
	case *NumLit:
		return x.Val, nil
	case *Unary:
		v, err := constEval(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		case "~":
			return ^v, nil
		}
	case *Binary:
		a, err := constEval(x.X)
		if err != nil {
			return 0, err
		}
		b, err := constEval(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, fmt.Errorf("constant division by zero")
			}
			return a / b, nil
		case "<<":
			return a << uint(b), nil
		case ">>":
			return a >> uint(b), nil
		case "|":
			return a | b, nil
		case "&":
			return a & b, nil
		}
	}
	return 0, fmt.Errorf("initializer is not a constant expression")
}

// place is an addressable location with its element type and access
// qualifiers.
type place struct {
	addr     ir.Value
	elem     ir.Type
	volatile bool
	atomic   bool
}

type loopCtx struct {
	continueTo *ir.Block
	breakTo    *ir.Block
}

// lowerScratch is per-worker reusable state: scope maps and the block
// name buffer survive across the functions one worker lowers, so the
// steady-state cost of a function body is its instructions, not a
// fresh map per lexical scope. Never shared between goroutines.
type lowerScratch struct {
	scopes  []map[string]place
	nameBuf []byte
}

type funcLowerer struct {
	c       *compiler
	fn      *ir.Func
	b       *ir.Builder
	scratch *lowerScratch
	// depth is the live prefix of scratch.scopes: maps above it are
	// retained (cleared on reuse) rather than reallocated.
	depth    int
	loops    []loopCtx
	blkSeq   int
	nAllocas int
	// stats and noinline land in this function's funcOut slot; the
	// sequential merge (compile.go) applies them in module order.
	stats    *Stats
	noinline []*ir.Func
}

// alloca creates a stack slot in the function's entry block (clang -O0
// layout). Hoisting allocas out of loops keeps a loop iteration from
// consuming fresh stack space, which matters both for C semantics (the
// slot is the same across iterations) and for the model checker's
// state-equality pruning.
func (fl *funcLowerer) alloca(ty ir.Type) *ir.Instr {
	entry := fl.fn.Entry()
	in := &ir.Instr{
		Op: ir.OpAlloca, ID: fl.fn.NextID(), Blk: entry,
		Ty: ir.PointerTo(ty), AllocElem: ty,
	}
	entry.Instrs = append(entry.Instrs, nil)
	copy(entry.Instrs[fl.nAllocas+1:], entry.Instrs[fl.nAllocas:])
	entry.Instrs[fl.nAllocas] = in
	fl.nAllocas++
	return in
}

// compileFunc lowers one function body into out. It touches only the
// function's own ir.Func, the read-only module tables, and its private
// scratch, so distinct functions lower concurrently (compile.go).
func (c *compiler) compileFunc(fd *FuncDecl, scratch *lowerScratch, out *funcOut) {
	fn := c.mod.Func(fd.Name)
	fl := &funcLowerer{c: c, fn: fn, b: ir.NewBuilder(fn), scratch: scratch, stats: &out.stats}
	fl.pushScope()
	// clang -O0 style: copy every parameter into a stack slot so that
	// address-of works uniformly and the dependency analysis sees local
	// copies distinctly from the incoming pointer values.
	for _, p := range fn.Params {
		slot := fl.alloca(p.Ty)
		fl.b.Store(slot, p)
		fl.define(p.PName, place{addr: slot, elem: p.Ty})
	}
	if err := fl.lowerBlock(fd.Body); err != nil {
		out.err = fmt.Errorf("function %s: %w", fd.Name, err)
		return
	}
	if !fl.b.Terminated() {
		switch fn.RetTy.(type) {
		case *ir.VoidType:
			fl.b.Ret(nil)
		default:
			fl.b.Ret(ir.Const(0))
		}
	}
	fl.popScope()
	out.noinline = fl.noinline
}

func (fl *funcLowerer) pushScope() {
	if fl.depth == len(fl.scratch.scopes) {
		fl.scratch.scopes = append(fl.scratch.scopes, make(map[string]place))
	} else {
		clear(fl.scratch.scopes[fl.depth])
	}
	fl.depth++
}

func (fl *funcLowerer) popScope() { fl.depth-- }

func (fl *funcLowerer) define(name string, p place) { fl.scratch.scopes[fl.depth-1][name] = p }

func (fl *funcLowerer) lookup(name string) (place, bool) {
	for i := fl.depth - 1; i >= 0; i-- {
		if p, ok := fl.scratch.scopes[i][name]; ok {
			return p, true
		}
	}
	return place{}, false
}

func (fl *funcLowerer) newBlock(kind string) *ir.Block {
	fl.blkSeq++
	// strconv.AppendInt into the reusable buffer: block naming was a
	// fmt.Sprintf per basic block, visible on million-line profiles.
	buf := append(fl.scratch.nameBuf[:0], kind...)
	buf = strconv.AppendInt(buf, int64(fl.blkSeq), 10)
	fl.scratch.nameBuf = buf
	return fl.b.NewBlock(string(buf))
}

// ensureFlow starts a fresh unreachable block if the current one is
// already terminated, so statements after return/break lower legally.
func (fl *funcLowerer) ensureFlow() {
	if fl.b.Terminated() {
		fl.b.SetBlock(fl.newBlock("dead"))
	}
}

func (fl *funcLowerer) lowerBlock(b *BlockStmt) error {
	fl.pushScope()
	defer fl.popScope()
	for _, s := range b.Stmts {
		if err := fl.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fl *funcLowerer) lowerStmt(s Stmt) error {
	fl.ensureFlow()
	switch st := s.(type) {
	case *BlockStmt:
		return fl.lowerBlock(st)
	case *ExprStmt:
		_, err := fl.lowerExprAllowVoid(st.X)
		return err
	case *DeclStmt:
		return fl.lowerLocalDecl(st.Decl)
	case *ReturnStmt:
		if st.Val == nil {
			fl.b.Ret(nil)
			return nil
		}
		v, err := fl.lowerExpr(st.Val)
		if err != nil {
			return err
		}
		fl.b.Ret(v)
		return nil
	case *IfStmt:
		return fl.lowerIf(st)
	case *WhileStmt:
		return fl.lowerWhile(st)
	case *ForStmt:
		return fl.lowerFor(st)
	case *BreakStmt:
		if len(fl.loops) == 0 {
			return fmt.Errorf("line %d: break outside loop or switch", st.Line)
		}
		fl.b.Br(fl.loops[len(fl.loops)-1].breakTo)
		return nil
	case *ContinueStmt:
		// continue skips switch contexts and targets the innermost loop.
		for i := len(fl.loops) - 1; i >= 0; i-- {
			if fl.loops[i].continueTo != nil {
				fl.b.Br(fl.loops[i].continueTo)
				return nil
			}
		}
		return fmt.Errorf("line %d: continue outside loop", st.Line)
	case *SwitchStmt:
		return fl.lowerSwitch(st)
	}
	return fmt.Errorf("unsupported statement %T", s)
}

func (fl *funcLowerer) lowerLocalDecl(vd *VarDecl) error {
	ty, err := fl.c.resolveType(vd.Type)
	if err != nil {
		return fmt.Errorf("line %d: local %s: %w", vd.Line, vd.Name, err)
	}
	if vd.Type.IsVoid() {
		return fmt.Errorf("line %d: local %s has type void", vd.Line, vd.Name)
	}
	slot := fl.alloca(ty)
	fl.define(vd.Name, place{addr: slot, elem: ty, volatile: vd.Volatile, atomic: vd.Atomic})
	if vd.Init != nil {
		v, err := fl.lowerCallee(vd.Init, ty)
		if err != nil {
			return err
		}
		fl.storePlace(place{addr: slot, elem: ty, volatile: vd.Volatile, atomic: vd.Atomic}, v)
	}
	if vd.InitList != nil {
		at, ok := ty.(*ir.ArrayType)
		if !ok {
			return fmt.Errorf("line %d: initializer list on non-array local %s", vd.Line, vd.Name)
		}
		for i, e := range vd.InitList {
			v, err := fl.lowerExpr(e)
			if err != nil {
				return err
			}
			ep := fl.b.IndexPtr(slot, at, ir.Const(int64(i)))
			fl.b.Store(ep, v)
		}
	}
	return nil
}

// lowerCallee lowers an initializer/RHS expression, giving untyped malloc
// results the declared pointer type.
func (fl *funcLowerer) lowerCallee(e Expr, want ir.Type) (ir.Value, error) {
	if call, ok := e.(*Call); ok && call.Name == "malloc" {
		if pt, isPtr := want.(*ir.PtrType); isPtr {
			return fl.lowerMalloc(call, pt.Elem)
		}
	}
	return fl.lowerExpr(e)
}

func (fl *funcLowerer) lowerIf(st *IfStmt) error {
	cond, err := fl.lowerExpr(st.Cond)
	if err != nil {
		return err
	}
	then := fl.newBlock("then")
	var els *ir.Block
	join := fl.newBlock("endif")
	if st.Else != nil {
		els = fl.newBlock("else")
		fl.condBr(cond, then, els)
	} else {
		fl.condBr(cond, then, join)
	}
	fl.b.SetBlock(then)
	if err := fl.lowerStmt(st.Then); err != nil {
		return err
	}
	if !fl.b.Terminated() {
		fl.b.Br(join)
	}
	if st.Else != nil {
		fl.b.SetBlock(els)
		if err := fl.lowerStmt(st.Else); err != nil {
			return err
		}
		if !fl.b.Terminated() {
			fl.b.Br(join)
		}
	}
	fl.b.SetBlock(join)
	return nil
}

// condBr branches on a C truth value (any nonzero i64).
func (fl *funcLowerer) condBr(v ir.Value, then, els *ir.Block) {
	fl.b.CondBr(v, then, els)
}

func (fl *funcLowerer) lowerWhile(st *WhileStmt) error {
	condBlk := fl.newBlock("cond")
	bodyBlk := fl.newBlock("body")
	exitBlk := fl.newBlock("endloop")
	if st.DoWhile {
		fl.b.Br(bodyBlk)
	} else {
		fl.b.Br(condBlk)
	}
	fl.loops = append(fl.loops, loopCtx{continueTo: condBlk, breakTo: exitBlk})
	fl.b.SetBlock(bodyBlk)
	if err := fl.lowerStmt(st.Body); err != nil {
		return err
	}
	if !fl.b.Terminated() {
		fl.b.Br(condBlk)
	}
	fl.b.SetBlock(condBlk)
	cond, err := fl.lowerExpr(st.Cond)
	if err != nil {
		return err
	}
	fl.condBr(cond, bodyBlk, exitBlk)
	fl.loops = fl.loops[:len(fl.loops)-1]
	fl.b.SetBlock(exitBlk)
	return nil
}

// lowerSwitch lowers a C switch: the tag is evaluated once, compared
// against each case constant in order, and case bodies fall through
// unless terminated. break targets the switch end; continue passes
// through to the enclosing loop.
func (fl *funcLowerer) lowerSwitch(st *SwitchStmt) error {
	tag, err := fl.lowerExpr(st.Tag)
	if err != nil {
		return err
	}
	end := fl.newBlock("endswitch")
	bodies := make([]*ir.Block, len(st.Cases))
	defaultIdx := -1
	for i, c := range st.Cases {
		bodies[i] = fl.newBlock("case")
		if c.Default {
			if defaultIdx >= 0 {
				return fmt.Errorf("line %d: multiple default cases", st.Line)
			}
			defaultIdx = i
		}
	}
	// Dispatch chain.
	for i, c := range st.Cases {
		if c.Default {
			continue
		}
		v, err := constEval(c.Value)
		if err != nil {
			return fmt.Errorf("line %d: case label: %w", st.Line, err)
		}
		cond := fl.b.ICmp(ir.EQ, tag, ir.Const(v))
		next := fl.newBlock("dispatch")
		fl.b.CondBr(cond, bodies[i], next)
		fl.b.SetBlock(next)
	}
	if defaultIdx >= 0 {
		fl.b.Br(bodies[defaultIdx])
	} else {
		fl.b.Br(end)
	}
	// Bodies with fallthrough.
	fl.loops = append(fl.loops, loopCtx{breakTo: end})
	for i, c := range st.Cases {
		fl.b.SetBlock(bodies[i])
		fl.pushScope()
		for _, s := range c.Body {
			if err := fl.lowerStmt(s); err != nil {
				fl.popScope()
				return err
			}
		}
		fl.popScope()
		if !fl.b.Terminated() {
			if i+1 < len(st.Cases) {
				fl.b.Br(bodies[i+1])
			} else {
				fl.b.Br(end)
			}
		}
	}
	fl.loops = fl.loops[:len(fl.loops)-1]
	fl.b.SetBlock(end)
	return nil
}

func (fl *funcLowerer) lowerFor(st *ForStmt) error {
	fl.pushScope()
	defer fl.popScope()
	if st.Init != nil {
		if err := fl.lowerStmt(st.Init); err != nil {
			return err
		}
	}
	condBlk := fl.newBlock("forcond")
	bodyBlk := fl.newBlock("forbody")
	postBlk := fl.newBlock("forpost")
	exitBlk := fl.newBlock("endfor")
	fl.b.Br(condBlk)
	fl.b.SetBlock(condBlk)
	if st.Cond != nil {
		cond, err := fl.lowerExpr(st.Cond)
		if err != nil {
			return err
		}
		fl.condBr(cond, bodyBlk, exitBlk)
	} else {
		fl.b.Br(bodyBlk)
	}
	fl.loops = append(fl.loops, loopCtx{continueTo: postBlk, breakTo: exitBlk})
	fl.b.SetBlock(bodyBlk)
	if err := fl.lowerStmt(st.Body); err != nil {
		return err
	}
	if !fl.b.Terminated() {
		fl.b.Br(postBlk)
	}
	fl.b.SetBlock(postBlk)
	if st.Post != nil {
		if _, err := fl.lowerExprAllowVoid(st.Post); err != nil {
			return err
		}
	}
	fl.b.Br(condBlk)
	fl.loops = fl.loops[:len(fl.loops)-1]
	fl.b.SetBlock(exitBlk)
	return nil
}
