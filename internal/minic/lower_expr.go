package minic

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// loadPlace materializes the rvalue of a place, applying volatile and
// _Atomic access semantics (C11 _Atomic accesses default to seq_cst).
func (fl *funcLowerer) loadPlace(p place) ir.Value {
	// Arrays decay to a pointer to their first element.
	if at, ok := p.elem.(*ir.ArrayType); ok {
		return fl.b.IndexPtr(p.addr, at, ir.Const(0))
	}
	ld := fl.b.Load(p.addr)
	ld.Volatile = p.volatile
	if p.atomic {
		ld.Ord = ir.SeqCst
	}
	return ld
}

func (fl *funcLowerer) storePlace(p place, v ir.Value) {
	st := fl.b.Store(p.addr, v)
	st.Volatile = p.volatile
	if p.atomic {
		st.Ord = ir.SeqCst
	}
}

// lowerExpr lowers an expression whose value is consumed. A void-typed
// result (a call to a void function, or a barrier builtin) is an error
// here: the IR has no register for it, so a use could never resolve.
func (fl *funcLowerer) lowerExpr(e Expr) (ir.Value, error) {
	v, err := fl.lowerExprAllowVoid(e)
	if err != nil {
		return nil, err
	}
	if v != nil && v.Type() == ir.Void {
		return nil, fmt.Errorf("void value used in an expression")
	}
	return v, nil
}

// lowerExprAllowVoid lowers an expression in a context that discards
// its value (expression statements, for-loop post expressions), where
// calling a void function is legal.
func (fl *funcLowerer) lowerExprAllowVoid(e Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *NumLit:
		return ir.Const(x.Val), nil
	case *Ident:
		p, err := fl.lowerPlace(x)
		if err != nil {
			return nil, err
		}
		return fl.loadPlace(p), nil
	case *Index, *Member:
		p, err := fl.lowerPlace(e)
		if err != nil {
			return nil, err
		}
		return fl.loadPlace(p), nil
	case *Assign:
		v, err := fl.lowerAssign(x)
		return v, err
	case *CompoundAssign:
		return fl.lowerCompoundAssign(x)
	case *IncDec:
		return fl.lowerIncDec(x)
	case *Unary:
		return fl.lowerUnary(x)
	case *Binary:
		return fl.lowerBinary(x)
	case *Call:
		return fl.lowerCall(x)
	case *Cast:
		return fl.lowerCast(x)
	case *SizeOf:
		ty, err := fl.c.resolveType(x.Type)
		if err != nil {
			return nil, err
		}
		return ir.Const(int64(ty.Cells())), nil
	case *AsmExpr:
		return fl.lowerAsm(x)
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

func (fl *funcLowerer) lowerAssign(x *Assign) (ir.Value, error) {
	p, err := fl.lowerPlace(x.LHS)
	if err != nil {
		return nil, err
	}
	v, err := fl.lowerCallee(x.RHS, p.elem)
	if err != nil {
		return nil, err
	}
	fl.storePlace(p, v)
	return v, nil
}

// lowerCompoundAssign lowers "lhs op= rhs": the lvalue is computed once.
func (fl *funcLowerer) lowerCompoundAssign(x *CompoundAssign) (ir.Value, error) {
	p, err := fl.lowerPlace(x.LHS)
	if err != nil {
		return nil, err
	}
	kind, ok := binOps[x.Op]
	if !ok {
		return nil, fmt.Errorf("unsupported compound operator %q=", x.Op)
	}
	cur := fl.loadPlace(p)
	rhs, err := fl.lowerExpr(x.RHS)
	if err != nil {
		return nil, err
	}
	res := fl.b.Bin(kind, cur, rhs)
	fl.storePlace(p, res)
	return res, nil
}

// lowerIncDec lowers ++/--; postfix yields the old value.
func (fl *funcLowerer) lowerIncDec(x *IncDec) (ir.Value, error) {
	p, err := fl.lowerPlace(x.X)
	if err != nil {
		return nil, err
	}
	cur := fl.loadPlace(p)
	kind := ir.Add
	if x.Op == "--" {
		kind = ir.Sub
	}
	nv := fl.b.Bin(kind, cur, ir.Const(1))
	fl.storePlace(p, nv)
	if x.Post {
		return cur, nil
	}
	return nv, nil
}

// lowerPlace lowers an expression in lvalue position.
func (fl *funcLowerer) lowerPlace(e Expr) (place, error) {
	switch x := e.(type) {
	case *Ident:
		if p, ok := fl.lookup(x.Name); ok {
			return p, nil
		}
		if g := fl.fn.Mod.Global(x.Name); g != nil {
			return place{addr: g, elem: g.Elem, volatile: g.Volatile, atomic: g.Atomic}, nil
		}
		return place{}, fmt.Errorf("line %d: undefined variable %q", x.Line, x.Name)
	case *Unary:
		if x.Op != "*" {
			return place{}, fmt.Errorf("expression %q is not assignable", x.Op)
		}
		v, err := fl.lowerExpr(x.X)
		if err != nil {
			return place{}, err
		}
		elem := ir.Pointee(v.Type())
		if elem == nil {
			return place{}, fmt.Errorf("dereference of non-pointer")
		}
		return place{addr: v, elem: elem}, nil
	case *Index:
		return fl.lowerIndexPlace(x)
	case *Member:
		return fl.lowerMemberPlace(x)
	case *Cast:
		// Lvalue casts like (*(int*)&p) are not needed by the corpus; a
		// cast in place position casts the address.
		inner, err := fl.lowerPlace(x.X)
		if err != nil {
			return place{}, err
		}
		ty, err := fl.c.resolveType(x.Type)
		if err != nil {
			return place{}, err
		}
		return place{addr: inner.addr, elem: ty, volatile: inner.volatile, atomic: inner.atomic}, nil
	}
	return place{}, fmt.Errorf("expression %T is not assignable", e)
}

func (fl *funcLowerer) lowerIndexPlace(x *Index) (place, error) {
	idx, err := fl.lowerExpr(x.Idx)
	if err != nil {
		return place{}, err
	}
	// Array lvalue: index within the aggregate. Otherwise the base is a
	// pointer rvalue and this is pointer arithmetic.
	if p, err := fl.lowerPlace(x.X); err == nil {
		if at, ok := p.elem.(*ir.ArrayType); ok {
			ep := fl.b.IndexPtr(p.addr, at, idx)
			return place{addr: ep, elem: at.Elem, volatile: p.volatile, atomic: p.atomic}, nil
		}
		// The place holds a pointer: load it, then index.
		if pt, ok := p.elem.(*ir.PtrType); ok {
			base := fl.loadPlace(p)
			ep := fl.b.GEP(base, pt.Elem, []ir.GEPStep{{Field: -1}}, idx)
			return place{addr: ep, elem: pt.Elem}, nil
		}
		return place{}, fmt.Errorf("subscript of non-array, non-pointer")
	}
	base, err := fl.lowerExpr(x.X)
	if err != nil {
		return place{}, err
	}
	elem := ir.Pointee(base.Type())
	if elem == nil {
		return place{}, fmt.Errorf("subscript of non-pointer value")
	}
	ep := fl.b.GEP(base, elem, []ir.GEPStep{{Field: -1}}, idx)
	return place{addr: ep, elem: elem}, nil
}

func (fl *funcLowerer) lowerMemberPlace(x *Member) (place, error) {
	var baseAddr ir.Value
	var st *ir.StructType
	if x.Arrow {
		v, err := fl.lowerExpr(x.X)
		if err != nil {
			return place{}, err
		}
		elem := ir.Pointee(v.Type())
		s, ok := elem.(*ir.StructType)
		if !ok {
			return place{}, fmt.Errorf("line %d: -> on non-struct-pointer", x.Line)
		}
		baseAddr, st = v, s
	} else {
		p, err := fl.lowerPlace(x.X)
		if err != nil {
			return place{}, err
		}
		s, ok := p.elem.(*ir.StructType)
		if !ok {
			return place{}, fmt.Errorf("line %d: . on non-struct", x.Line)
		}
		baseAddr, st = p.addr, s
	}
	idx := st.FieldIndex(x.Name)
	if idx < 0 {
		return place{}, fmt.Errorf("line %d: struct %s has no field %q", x.Line, st.TypeName, x.Name)
	}
	f := st.Fields[idx]
	fp := fl.b.GEP(baseAddr, st, []ir.GEPStep{{Field: idx}})
	return place{addr: fp, elem: f.Type, volatile: f.Volatile, atomic: f.Atomic}, nil
}

func (fl *funcLowerer) lowerUnary(x *Unary) (ir.Value, error) {
	switch x.Op {
	case "&":
		p, err := fl.lowerPlace(x.X)
		if err != nil {
			return nil, err
		}
		return p.addr, nil
	case "*":
		p, err := fl.lowerPlace(x)
		if err != nil {
			return nil, err
		}
		return fl.loadPlace(p), nil
	case "-":
		v, err := fl.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		return fl.b.Bin(ir.Sub, ir.Const(0), v), nil
	case "!":
		v, err := fl.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		return fl.b.ICmp(ir.EQ, v, ir.Const(0)), nil
	case "~":
		v, err := fl.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		return fl.b.Bin(ir.Xor, v, ir.Const(-1)), nil
	}
	return nil, fmt.Errorf("unsupported unary operator %q", x.Op)
}

var binOps = map[string]ir.BinKind{
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.Div, "%": ir.Rem,
	"&": ir.And, "|": ir.Or, "^": ir.Xor, "<<": ir.Shl, ">>": ir.Shr,
}

var cmpOps = map[string]ir.Pred{
	"==": ir.EQ, "!=": ir.NE, "<": ir.LT, "<=": ir.LE, ">": ir.GT, ">=": ir.GE,
}

// Memory orders of the explicit-order load/store builtins. Package-level
// so lowerCall does not build a map literal per call site.
var loadOrds = map[string]ir.MemOrder{
	"__load_rlx": ir.Relaxed, "__load_acq": ir.Acquire, "__load_sc": ir.SeqCst,
}

var storeOrds = map[string]ir.MemOrder{
	"__store_rlx": ir.Relaxed, "__store_rel": ir.Release, "__store_sc": ir.SeqCst,
}

func (fl *funcLowerer) lowerBinary(x *Binary) (ir.Value, error) {
	if x.Op == "&&" || x.Op == "||" {
		return fl.lowerShortCircuit(x)
	}
	a, err := fl.lowerExpr(x.X)
	if err != nil {
		return nil, err
	}
	b, err := fl.lowerExpr(x.Y)
	if err != nil {
		return nil, err
	}
	if pred, ok := cmpOps[x.Op]; ok {
		return fl.b.ICmp(pred, a, b), nil
	}
	if kind, ok := binOps[x.Op]; ok {
		return fl.b.Bin(kind, a, b), nil
	}
	return nil, fmt.Errorf("unsupported binary operator %q", x.Op)
}

// lowerShortCircuit lowers && and || with C short-circuit evaluation,
// producing an i64 0/1 via a stack slot.
func (fl *funcLowerer) lowerShortCircuit(x *Binary) (ir.Value, error) {
	res := fl.alloca(ir.I64)
	a, err := fl.lowerExpr(x.X)
	if err != nil {
		return nil, err
	}
	evalY := fl.newBlock("sc_rhs")
	short := fl.newBlock("sc_short")
	join := fl.newBlock("sc_join")
	if x.Op == "&&" {
		fl.b.CondBr(a, evalY, short)
	} else {
		fl.b.CondBr(a, short, evalY)
	}
	fl.b.SetBlock(short)
	if x.Op == "&&" {
		fl.b.Store(res, ir.Const(0))
	} else {
		fl.b.Store(res, ir.Const(1))
	}
	fl.b.Br(join)
	fl.b.SetBlock(evalY)
	bv, err := fl.lowerExpr(x.Y)
	if err != nil {
		return nil, err
	}
	norm := fl.b.ICmp(ir.NE, bv, ir.Const(0))
	fl.b.Store(res, norm)
	fl.b.Br(join)
	fl.b.SetBlock(join)
	return fl.b.Load(res), nil
}

func (fl *funcLowerer) lowerCast(x *Cast) (ir.Value, error) {
	ty, err := fl.c.resolveType(x.Type)
	if err != nil {
		return nil, err
	}
	v, err := fl.lowerExprWithHint(x.X, ty)
	if err != nil {
		return nil, err
	}
	pt, ok := ty.(*ir.PtrType)
	if !ok {
		// Integer casts are value-preserving in the cell model.
		return v, nil
	}
	if ir.TypesEqual(v.Type(), ty) {
		return v, nil
	}
	// Integer-to-pointer casts (including the null constant) are
	// value-preserving in the cell model.
	if !ir.IsPtr(v.Type()) {
		return v, nil
	}
	// Retype the pointer with an empty-path GEP (a bitcast).
	in := fl.b.GEP(v, pt.Elem, nil)
	return in, nil
}

func (fl *funcLowerer) lowerExprWithHint(e Expr, want ir.Type) (ir.Value, error) {
	if call, ok := e.(*Call); ok && call.Name == "malloc" {
		if pt, isPtr := want.(*ir.PtrType); isPtr {
			return fl.lowerMalloc(call, pt.Elem)
		}
	}
	return fl.lowerExpr(e)
}

func (fl *funcLowerer) lowerMalloc(call *Call, elem ir.Type) (ir.Value, error) {
	if len(call.Args) != 1 {
		return nil, fmt.Errorf("line %d: malloc takes one argument", call.Line)
	}
	size, err := fl.lowerExpr(call.Args[0])
	if err != nil {
		return nil, err
	}
	in := fl.b.Call(ir.PointerTo(elem), "malloc", size)
	return in, nil
}

// x86 inline-assembly idioms mapped to builtins by the frontend, as the
// paper's frontend pass does (section 3.2). Lock-prefixed instructions
// and mfence are full barriers on x86; the compiler builtin counterpart
// is a seq_cst fence. pause and rep;nop are scheduling hints.
func classifyAsm(text string) (kind string) {
	t := strings.ToLower(strings.TrimSpace(text))
	t = strings.ReplaceAll(t, "\t", " ")
	switch {
	case strings.Contains(t, "mfence"):
		return "fence_sc"
	case strings.Contains(t, "lfence"):
		return "fence_acq"
	case strings.Contains(t, "sfence"):
		return "fence_rel"
	case strings.HasPrefix(t, "lock"):
		return "fence_sc"
	case strings.Contains(t, "pause") || strings.Contains(t, "rep; nop") || strings.Contains(t, "rep;nop"):
		return "pause"
	case t == "" || t == "memory" || strings.Contains(t, ":::"):
		// Pure compiler barrier.
		return "compiler_barrier"
	}
	return "opaque"
}

func (fl *funcLowerer) lowerAsm(x *AsmExpr) (ir.Value, error) {
	switch classifyAsm(x.Text) {
	case "fence_sc":
		in := fl.b.Fence(ir.SeqCst)
		in.SetMark(ir.MarkFromAsm)
		fl.stats.AsmMapped++
		return ir.Const(0), nil
	case "fence_acq":
		in := fl.b.Fence(ir.Acquire)
		in.SetMark(ir.MarkFromAsm)
		fl.stats.AsmMapped++
		return ir.Const(0), nil
	case "fence_rel":
		in := fl.b.Fence(ir.Release)
		in.SetMark(ir.MarkFromAsm)
		fl.stats.AsmMapped++
		return ir.Const(0), nil
	case "pause":
		fl.b.Call(ir.Void, "pause")
		fl.stats.AsmMapped++
		return ir.Const(0), nil
	case "compiler_barrier":
		// Emit a marker: the barrier has no runtime semantics, but its
		// placement is a synchronization hint (paper section 6 proposes
		// compiler barriers as additional detection entry points).
		fl.b.Call(ir.Void, "compiler_barrier")
		fl.stats.AsmMapped++
		return ir.Const(0), nil
	}
	fl.stats.AsmOpaque++
	fl.b.Call(ir.Void, "asm")
	return ir.Const(0), nil
}

// Builtin lowering table. Atomic builtins default to the orderings a
// straightforward Arm port produces: read-modify-writes are acq_rel
// (LDAXR/STLXR pairs), which is precisely the weakness behind the
// MariaDB lf-hash bug the paper analyzes.
func (fl *funcLowerer) lowerCall(x *Call) (ir.Value, error) {
	argVals := func(want int) ([]ir.Value, error) {
		if len(x.Args) != want {
			return nil, fmt.Errorf("line %d: %s takes %d argument(s), got %d", x.Line, x.Name, want, len(x.Args))
		}
		vs := make([]ir.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := fl.lowerExpr(a)
			if err != nil {
				return nil, err
			}
			vs[i] = v
		}
		return vs, nil
	}
	ptrArg := func(v ir.Value) error {
		if !ir.IsPtr(v.Type()) {
			return fmt.Errorf("line %d: %s needs a pointer argument", x.Line, x.Name)
		}
		return nil
	}
	switch x.Name {
	case "__cas":
		vs, err := argVals(3)
		if err != nil {
			return nil, err
		}
		if err := ptrArg(vs[0]); err != nil {
			return nil, err
		}
		return fl.b.CmpXchg(vs[0], vs[1], vs[2], ir.AcqRel), nil
	case "__xchg":
		vs, err := argVals(2)
		if err != nil {
			return nil, err
		}
		if err := ptrArg(vs[0]); err != nil {
			return nil, err
		}
		return fl.b.RMW(ir.RMWXchg, vs[0], vs[1], ir.AcqRel), nil
	case "__faa":
		vs, err := argVals(2)
		if err != nil {
			return nil, err
		}
		if err := ptrArg(vs[0]); err != nil {
			return nil, err
		}
		return fl.b.RMW(ir.RMWAdd, vs[0], vs[1], ir.AcqRel), nil
	case "__fas":
		vs, err := argVals(2)
		if err != nil {
			return nil, err
		}
		if err := ptrArg(vs[0]); err != nil {
			return nil, err
		}
		return fl.b.RMW(ir.RMWSub, vs[0], vs[1], ir.AcqRel), nil
	case "__fence":
		if _, err := argVals(0); err != nil {
			return nil, err
		}
		fl.b.Fence(ir.SeqCst)
		return ir.Const(0), nil
	case "__fence_acq":
		if _, err := argVals(0); err != nil {
			return nil, err
		}
		fl.b.Fence(ir.Acquire)
		return ir.Const(0), nil
	case "__fence_rel":
		if _, err := argVals(0); err != nil {
			return nil, err
		}
		fl.b.Fence(ir.Release)
		return ir.Const(0), nil
	case "__load_rlx", "__load_acq", "__load_sc":
		vs, err := argVals(1)
		if err != nil {
			return nil, err
		}
		if err := ptrArg(vs[0]); err != nil {
			return nil, err
		}
		return fl.b.LoadOrd(vs[0], loadOrds[x.Name]), nil
	case "__store_rlx", "__store_rel", "__store_sc":
		vs, err := argVals(2)
		if err != nil {
			return nil, err
		}
		if err := ptrArg(vs[0]); err != nil {
			return nil, err
		}
		fl.b.StoreOrd(vs[0], vs[1], storeOrds[x.Name])
		return ir.Const(0), nil
	case "spawn":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("line %d: spawn takes a function name", x.Line)
		}
		id, ok := x.Args[0].(*Ident)
		if !ok {
			return nil, fmt.Errorf("line %d: spawn argument must name a function", x.Line)
		}
		fn := fl.fn.Mod.Func(id.Name)
		if fn == nil {
			return nil, fmt.Errorf("line %d: spawn of unknown function %q", x.Line, id.Name)
		}
		// Deferred NoInline mark: writing fn.NoInline here would race
		// with the goroutine lowering fn's own body, so the mark is
		// recorded per-function and applied at the sequential merge.
		fl.noinline = append(fl.noinline, fn)
		fl.b.Call(ir.Void, "spawn", &ir.FuncRef{Fn: fn})
		return ir.Const(0), nil
	case "malloc":
		return fl.lowerMalloc(x, ir.I64)
	case "assert", "print", "free":
		vs := make([]ir.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := fl.lowerExpr(a)
			if err != nil {
				return nil, err
			}
			vs[i] = v
		}
		fl.b.Call(ir.Void, x.Name, vs...)
		return ir.Const(0), nil
	case "barrier":
		// barrier(n): rendezvous of n threads (pthread_barrier-style).
		vs, err := argVals(1)
		if err != nil {
			return nil, err
		}
		fl.b.Call(ir.Void, "barrier", vs[0])
		return ir.Const(0), nil
	case "join", "yield", "pause":
		if _, err := argVals(0); err != nil {
			return nil, err
		}
		fl.b.Call(ir.Void, x.Name)
		return ir.Const(0), nil
	case "tid", "nondet":
		if _, err := argVals(0); err != nil {
			return nil, err
		}
		return fl.b.Call(ir.I64, x.Name), nil
	}
	// User-defined function.
	callee := fl.fn.Mod.Func(x.Name)
	if callee == nil {
		return nil, fmt.Errorf("line %d: call to undefined function %q", x.Line, x.Name)
	}
	if len(x.Args) != len(callee.Params) {
		return nil, fmt.Errorf("line %d: %s takes %d argument(s), got %d",
			x.Line, x.Name, len(callee.Params), len(x.Args))
	}
	vs := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := fl.lowerExprWithHint(a, callee.Params[i].Ty)
		if err != nil {
			return nil, err
		}
		vs[i] = v
	}
	return fl.b.Call(callee.RetTy, x.Name, vs...), nil
}
