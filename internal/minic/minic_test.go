package minic

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func compileOK(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return res
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize(`int x = 42; // comment
/* block */ while (x != 0x10) { x = x - 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.Text)
	}
	joined := strings.Join(texts, " ")
	want := "int x = 42 ; while ( x != 0x10 ) { x = x - 1 ; }"
	if joined != want {
		t.Fatalf("tokens = %q, want %q", joined, want)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Tokenize("int x = $;"); err == nil {
		t.Error("accepted bad character")
	}
	if _, err := Tokenize("/* unterminated"); err == nil {
		t.Error("accepted unterminated comment")
	}
	if _, err := Tokenize(`__asm__("unterminated`); err == nil {
		t.Error("accepted unterminated string")
	}
}

func TestCompileMessagePassing(t *testing.T) {
	res := compileOK(t, `
int flag;
int msg;

void writer(void) {
  msg = 42;
  flag = 1;
}

int reader(void) {
  while (flag == 0) { }
  return msg;
}
`)
	m := res.Module
	if m.Global("flag") == nil || m.Global("msg") == nil {
		t.Fatal("globals missing")
	}
	r := m.Func("reader")
	if r == nil {
		t.Fatal("reader missing")
	}
	// The reader must contain a loop: a block branching to itself or a
	// cond block cycle.
	if len(r.Blocks) < 3 {
		t.Fatalf("reader has %d blocks, expected a loop structure", len(r.Blocks))
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestCompileStructsAndPointers(t *testing.T) {
	res := compileOK(t, `
struct node {
  int state;
  volatile int seq;
  int *key;
  struct node *next;
};

struct node nodes[4];
struct node *head;

int probe(struct node *n, int i) {
  int s = n->state;
  int q = nodes[i].seq;
  int *k = n->key;
  head = n->next;
  return s + q + *k;
}
`)
	m := res.Module
	st := m.Structs["node"]
	if st == nil {
		t.Fatal("struct node missing")
	}
	if st.FieldIndex("next") != 3 {
		t.Fatalf("field order wrong: %v", st.Fields)
	}
	if !st.Fields[1].Volatile {
		t.Fatal("volatile qualifier lost on field seq")
	}
	if res.Stats.VolatileDecls != 1 {
		t.Fatalf("VolatileDecls = %d, want 1", res.Stats.VolatileDecls)
	}
	// Loading nodes[i].seq must produce a volatile load.
	var volLoads int
	m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if in.Op == ir.OpLoad && in.Volatile {
			volLoads++
		}
	})
	if volLoads != 1 {
		t.Fatalf("volatile loads = %d, want 1", volLoads)
	}
}

func TestCompileAtomicQualifier(t *testing.T) {
	res := compileOK(t, `
_Atomic int cnt;
int bump(void) {
  cnt = cnt + 1;
  return cnt;
}
`)
	var scLoads, scStores int
	res.Module.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		switch in.Op {
		case ir.OpLoad:
			if in.Ord == ir.SeqCst {
				scLoads++
			}
		case ir.OpStore:
			if in.Ord == ir.SeqCst {
				scStores++
			}
		}
	})
	if scLoads != 2 || scStores != 1 {
		t.Fatalf("sc loads/stores = %d/%d, want 2/1", scLoads, scStores)
	}
}

func TestCompileAtomicBuiltins(t *testing.T) {
	res := compileOK(t, `
int locked;
void lock(void) {
  while (__cas(&locked, 0, 1) != 0) { }
}
void unlock(void) {
  locked = 0;
}
int rmws(void) {
  int a = __faa(&locked, 1);
  int b = __fas(&locked, 1);
  int c = __xchg(&locked, 7);
  int d = __load_acq(&locked);
  __store_rel(&locked, 0);
  __fence();
  return a + b + c + d;
}
`)
	counts := map[ir.Op]int{}
	res.Module.EachInstr(func(_ *ir.Func, in *ir.Instr) { counts[in.Op]++ })
	if counts[ir.OpCmpXchg] != 1 {
		t.Errorf("cmpxchg count = %d", counts[ir.OpCmpXchg])
	}
	if counts[ir.OpRMW] != 3 {
		t.Errorf("rmw count = %d", counts[ir.OpRMW])
	}
	if counts[ir.OpFence] != 1 {
		t.Errorf("fence count = %d", counts[ir.OpFence])
	}
	var cas *ir.Instr
	res.Module.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if in.Op == ir.OpCmpXchg {
			cas = in
		}
	})
	if cas.Ord != ir.AcqRel {
		t.Errorf("cmpxchg ordering = %s, want acq_rel", cas.Ord)
	}
}

func TestCompileInlineAsm(t *testing.T) {
	res := compileOK(t, `
void barriers(void) {
  __asm__("mfence");
  __asm__("lock; addl $0,0(%%rsp)");
  __asm__("pause");
  __asm__("lfence");
  __asm__("sfence");
  __asm__("cpuid");
}
`)
	if res.Stats.AsmMapped != 5 {
		t.Errorf("AsmMapped = %d, want 5", res.Stats.AsmMapped)
	}
	if res.Stats.AsmOpaque != 1 {
		t.Errorf("AsmOpaque = %d, want 1", res.Stats.AsmOpaque)
	}
	var fences []ir.MemOrder
	res.Module.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if in.Op == ir.OpFence {
			fences = append(fences, in.Ord)
			if !in.HasMark(ir.MarkFromAsm) {
				t.Error("asm-mapped fence not marked")
			}
		}
	})
	want := []ir.MemOrder{ir.SeqCst, ir.SeqCst, ir.Acquire, ir.Release}
	if len(fences) != len(want) {
		t.Fatalf("fences = %v, want %v", fences, want)
	}
	for i := range want {
		if fences[i] != want[i] {
			t.Errorf("fence %d = %s, want %s", i, fences[i], want[i])
		}
	}
}

func TestCompileControlFlow(t *testing.T) {
	res := compileOK(t, `
int g;
int collatz(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps = steps + 1;
    if (steps > 1000) { break; }
  }
  for (int i = 0; i < 3; i = i + 1) {
    if (i == 1) { continue; }
    g = g + i;
  }
  do { g = g - 1; } while (g > 100);
  return steps;
}
`)
	if err := ir.Verify(res.Module); err != nil {
		t.Fatal(err)
	}
}

func TestCompileShortCircuit(t *testing.T) {
	res := compileOK(t, `
struct node { int x; };
struct node *p;
int safe(void) {
  if (p != 0 && p->x == 1) { return 1; }
  return 0;
}
`)
	// The p->x load must be control-dependent on the null check: the
	// function needs the short-circuit block structure.
	f := res.Module.Func("safe")
	if len(f.Blocks) < 4 {
		t.Fatalf("short-circuit produced only %d blocks", len(f.Blocks))
	}
}

func TestCompileMallocAndCast(t *testing.T) {
	res := compileOK(t, `
struct node { int v; struct node *next; };
struct node *mk(void) {
  struct node *n = malloc(sizeof(struct node));
  n->v = 7;
  n->next = (struct node *)0;
  return n;
}
`)
	var mallocCall *ir.Instr
	res.Module.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee == "malloc" {
			mallocCall = in
		}
	})
	if mallocCall == nil {
		t.Fatal("no malloc call")
	}
	pt, ok := mallocCall.Type().(*ir.PtrType)
	if !ok {
		t.Fatalf("malloc result type = %s", mallocCall.Type())
	}
	if st, ok := pt.Elem.(*ir.StructType); !ok || st.TypeName != "node" {
		t.Fatalf("malloc result pointee = %s, want %%node", pt.Elem)
	}
	// sizeof(struct node) is 2 cells.
	if c, ok := mallocCall.Args[0].(*ir.ConstInt); !ok || c.V != 2 {
		t.Fatalf("malloc size arg = %v, want 2", mallocCall.Args[0])
	}
}

func TestCompileSpawnHarness(t *testing.T) {
	res := compileOK(t, `
int done;
void worker(void) { done = 1; }
void main_thread(void) {
  spawn(worker);
  join();
  assert(done == 1);
}
`)
	w := res.Module.Func("worker")
	if !w.NoInline {
		t.Error("spawned function not marked NoInline")
	}
	var spawnArg ir.Value
	res.Module.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee == "spawn" {
			spawnArg = in.Args[0]
		}
	})
	if fr, ok := spawnArg.(*ir.FuncRef); !ok || fr.Fn != w {
		t.Fatalf("spawn argument = %#v", spawnArg)
	}
}

func TestCompileGlobalInitializers(t *testing.T) {
	res := compileOK(t, `
int a = 5;
int b = -3;
int c = 1 << 4;
int arr[4] = {1, 2, 3, 4};
`)
	m := res.Module
	if got := m.Global("a").Init; len(got) != 1 || got[0] != 5 {
		t.Errorf("a init = %v", got)
	}
	if got := m.Global("b").Init; got[0] != -3 {
		t.Errorf("b init = %v", got)
	}
	if got := m.Global("c").Init; got[0] != 16 {
		t.Errorf("c init = %v", got)
	}
	if got := m.Global("arr").Init; len(got) != 4 || got[3] != 4 {
		t.Errorf("arr init = %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined var", `int f(void) { return nope; }`, "undefined variable"},
		{"undefined func", `int f(void) { return g(); }`, "undefined function"},
		{"bad field", `struct s { int a; }; struct s v; int f(void) { return v.b; }`, "no field"},
		{"arrow on int", `int x; int f(void) { return x->y; }`, "non-struct-pointer"},
		{"break outside", `int f(void) { break; return 0; }`, "break outside loop"},
		{"arity", `void g(int a) { } void f(void) { g(1, 2); }`, "argument"},
		{"dup global", "int x; int x;", "duplicate global"},
		{"dup struct", "struct s { int a; }; struct s { int b; };", "duplicate struct"},
		{"non-const init", "int x; int y = x;", "not a constant"},
		{"unknown struct", "struct nope *p;", "unknown struct"},
		{"spawn non-func", "void f(void) { spawn(42); }", "must name a function"},
		{"assign to call", "void g(void) {} void f(void) { g() = 1; }", "not assignable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("t", c.src)
			if err == nil {
				t.Fatalf("compile accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestParserRecoversPositions(t *testing.T) {
	_, err := Compile("t", "int x;\nint f(void) {\n  return $;\n}\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error = %v, want line 3 mention", err)
	}
}

// Property: the lexer never loses or duplicates identifier tokens for
// well-formed identifier/number streams.
func TestLexerRoundTripProperty(t *testing.T) {
	prop := func(words []uint16) bool {
		var sb strings.Builder
		var want []string
		for _, w := range words {
			id := "v" + string(rune('a'+int(w%26)))
			want = append(want, id)
			sb.WriteString(id)
			sb.WriteString(" ")
		}
		toks, err := Tokenize(sb.String())
		if err != nil || len(toks) != len(want) {
			return false
		}
		for i, tk := range toks {
			if tk.Text != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: compiled straight-line arithmetic functions always verify.
func TestCompileArithProperty(t *testing.T) {
	ops := []string{"+", "-", "*", "&", "|", "^"}
	prop := func(seq []uint8) bool {
		if len(seq) > 12 {
			seq = seq[:12]
		}
		var sb strings.Builder
		sb.WriteString("int f(int a, int b) {\n int r = a;\n")
		for _, s := range seq {
			op := ops[int(s)%len(ops)]
			sb.WriteString(" r = r " + op + " b;\n")
		}
		sb.WriteString(" return r;\n}\n")
		res, err := Compile("p", sb.String())
		if err != nil {
			return false
		}
		return ir.Verify(res.Module) == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSourceLineCount(t *testing.T) {
	res := compileOK(t, "int x;\n\nint f(void) {\n  return x;\n}\n")
	if res.Stats.SourceLines != 4 {
		t.Fatalf("SourceLines = %d, want 4", res.Stats.SourceLines)
	}
}

func TestPrototypes(t *testing.T) {
	// Prototype before use, definition later.
	compileOK(t, `
int helper(int x);
int user(void) { return helper(2); }
int helper(int x) { return x * 3; }
`)
	// Prototype after definition is also fine.
	compileOK(t, `
int f(void) { return 1; }
int f(void);
`)
	// Arity mismatch between prototype and definition.
	if _, err := Compile("t", `
int f(int a);
int f(int a, int b) { return a + b; }
`); err == nil || !strings.Contains(err.Error(), "prototype") {
		t.Fatalf("arity mismatch accepted: %v", err)
	}
	// Declared but never defined.
	if _, err := Compile("t", `int ghost(int a);`); err == nil ||
		!strings.Contains(err.Error(), "never defined") {
		t.Fatalf("undefined prototype accepted: %v", err)
	}
	// Two definitions.
	if _, err := Compile("t", `
int f(void) { return 1; }
int f(void) { return 2; }
`); err == nil || !strings.Contains(err.Error(), "duplicate function") {
		t.Fatalf("duplicate definition accepted: %v", err)
	}
}
