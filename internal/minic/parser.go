package minic

import (
	"fmt"
	"strconv"
)

// Parser builds a File AST from MiniC tokens.
type Parser struct {
	toks []Token
	i    int
}

// Parse parses a MiniC translation unit.
func Parse(src string) (*File, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile()
}

func (p *Parser) cur() Token {
	if p.i >= len(p.toks) {
		return Token{Kind: TokEOF, Line: p.lastLine()}
	}
	return p.toks[p.i]
}

func (p *Parser) peekN(n int) Token {
	if p.i+n >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.i+n]
}

func (p *Parser) lastLine() int {
	if len(p.toks) == 0 {
		return 1
	}
	return p.toks[len(p.toks)-1].Line
}

func (p *Parser) next() Token {
	t := p.cur()
	p.i++
	return t
}

func (p *Parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && t.Text == text
}

func (p *Parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if t.Kind != kind || t.Text != text {
		return t, fmt.Errorf("line %d: expected %q, found %q", t.Line, text, t.Text)
	}
	p.i++
	return t, nil
}

func (p *Parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, fmt.Errorf("line %d: expected identifier, found %q", t.Line, t.Text)
	}
	p.i++
	return t, nil
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for p.cur().Kind != TokEOF {
		if err := p.parseDecl(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// parseDecl parses one top-level declaration into f. It is the unit
// the chunked parallel parser fans out over (split.go); the parser
// carries no state across declarations, so per-chunk parses compose
// into the same AST the sequential loop builds.
func (p *Parser) parseDecl(f *File) error {
	// "struct Name { ... };" is a struct declaration; "struct Name x"
	// begins a variable or function declaration.
	if p.at(TokKeyword, "struct") && p.peekN(2).Text == "{" {
		sd, err := p.parseStructDecl()
		if err != nil {
			return err
		}
		f.Structs = append(f.Structs, sd)
		return nil
	}
	quals, ty, err := p.parseQualsAndTypeSpec()
	if err != nil {
		return err
	}
	stars := 0
	for p.accept(TokPunct, "*") {
		stars++
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	ty.Stars = stars
	if p.at(TokPunct, "(") {
		fd, err := p.parseFuncRest(ty, name)
		if err != nil {
			return err
		}
		f.Funcs = append(f.Funcs, fd)
		return nil
	}
	vd, err := p.parseVarRest(quals, ty, name)
	if err != nil {
		return err
	}
	f.Globals = append(f.Globals, vd)
	return nil
}

type quals struct{ volatile, atomic bool }

func (p *Parser) parseQualsAndTypeSpec() (quals, TypeExpr, error) {
	var q quals
	for {
		if p.accept(TokKeyword, "volatile") {
			q.volatile = true
			continue
		}
		if p.accept(TokKeyword, "_Atomic") {
			q.atomic = true
			continue
		}
		break
	}
	t := p.cur()
	switch {
	case p.accept(TokKeyword, "int"):
		return q, TypeExpr{Base: "int"}, nil
	case p.accept(TokKeyword, "void"):
		return q, TypeExpr{Base: "void"}, nil
	case p.accept(TokKeyword, "struct"):
		name, err := p.expectIdent()
		if err != nil {
			return q, TypeExpr{}, err
		}
		return q, TypeExpr{StructName: name.Text}, nil
	}
	return q, TypeExpr{}, fmt.Errorf("line %d: expected type, found %q", t.Line, t.Text)
}

func (p *Parser) parseStructDecl() (*StructDecl, error) {
	start, _ := p.expect(TokKeyword, "struct")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	sd := &StructDecl{Name: name.Text, Line: start.Line}
	for !p.accept(TokPunct, "}") {
		q, ty, err := p.parseQualsAndTypeSpec()
		if err != nil {
			return nil, err
		}
		stars := 0
		for p.accept(TokPunct, "*") {
			stars++
		}
		fname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ty.Stars = stars
		for p.accept(TokPunct, "[") {
			n, err := p.parseArrayLen()
			if err != nil {
				return nil, err
			}
			ty.ArrayLens = append(ty.ArrayLens, n)
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, FieldDecl{
			Name: fname.Text, Type: ty, Volatile: q.volatile, Atomic: q.atomic,
		})
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return sd, nil
}

func (p *Parser) parseArrayLen() (int, error) {
	t := p.cur()
	if t.Kind != TokNumber {
		return 0, fmt.Errorf("line %d: expected array length, found %q", t.Line, t.Text)
	}
	p.i++
	n, err := strconv.ParseInt(t.Text, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("line %d: bad array length %q", t.Line, t.Text)
	}
	if _, err := p.expect(TokPunct, "]"); err != nil {
		return 0, err
	}
	return int(n), nil
}

// parseVarRest finishes a variable declaration after quals, type, stars,
// and name have been consumed.
func (p *Parser) parseVarRest(q quals, ty TypeExpr, name Token) (*VarDecl, error) {
	for p.accept(TokPunct, "[") {
		n, err := p.parseArrayLen()
		if err != nil {
			return nil, err
		}
		ty.ArrayLens = append(ty.ArrayLens, n)
	}
	vd := &VarDecl{Name: name.Text, Type: ty, Volatile: q.volatile, Atomic: q.atomic, Line: name.Line}
	if p.accept(TokPunct, "=") {
		if p.accept(TokPunct, "{") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				vd.InitList = append(vd.InitList, e)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, "}"); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			vd.Init = e
		}
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *Parser) parseFuncRest(ret TypeExpr, name Token) (*FuncDecl, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: name.Text, Ret: ret, Line: name.Line}
	if !p.accept(TokPunct, ")") {
		if p.at(TokKeyword, "void") && p.peekN(1).Text == ")" {
			p.i += 2
		} else {
			for {
				_, ty, err := p.parseQualsAndTypeSpec()
				if err != nil {
					return nil, err
				}
				stars := 0
				for p.accept(TokPunct, "*") {
					stars++
				}
				pname, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				ty.Stars = stars
				fd.Params = append(fd.Params, ParamDecl{Name: pname.Text, Type: ty})
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
		}
	}
	// A prototype ends with ';' — the two-pass compiler registers all
	// signatures up front, so prototypes carry no information, but real
	// C sources contain them.
	if p.accept(TokPunct, ";") {
		return fd, nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.accept(TokPunct, "}") {
		if p.cur().Kind == TokEOF {
			return nil, fmt.Errorf("line %d: unexpected end of file in block", p.lastLine())
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// startsType reports whether the current token begins a type specifier
// (used to recognize local declarations and casts).
func (p *Parser) startsType() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "int", "void", "struct", "volatile", "_Atomic":
		return true
	}
	return false
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(TokPunct, "{"):
		return p.parseBlock()
	case p.at(TokPunct, ";"):
		p.i++
		return &BlockStmt{}, nil
	case p.accept(TokKeyword, "if"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.accept(TokKeyword, "else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.accept(TokKeyword, "while"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil
	case p.accept(TokKeyword, "do"):
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "while"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, DoWhile: true, Line: t.Line}, nil
	case p.accept(TokKeyword, "for"):
		return p.parseFor(t.Line)
	case p.accept(TokKeyword, "switch"):
		return p.parseSwitch(t.Line)
	case p.accept(TokKeyword, "return"):
		st := &ReturnStmt{}
		if !p.at(TokPunct, ";") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Val = v
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return st, nil
	case p.accept(TokKeyword, "break"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.Line}, nil
	case p.accept(TokKeyword, "continue"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.Line}, nil
	case p.startsType():
		return p.parseLocalDecl()
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

func (p *Parser) parseLocalDecl() (Stmt, error) {
	q, ty, err := p.parseQualsAndTypeSpec()
	if err != nil {
		return nil, err
	}
	stars := 0
	for p.accept(TokPunct, "*") {
		stars++
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ty.Stars = stars
	vd, err := p.parseVarRest(q, ty, name)
	if err != nil {
		return nil, err
	}
	return &DeclStmt{Decl: vd}, nil
}

func (p *Parser) parseFor(line int) (Stmt, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	st := &ForStmt{Line: line}
	if !p.accept(TokPunct, ";") {
		if p.startsType() {
			init, err := p.parseLocalDecl()
			if err != nil {
				return nil, err
			}
			st.Init = init
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{X: x}
		}
	}
	if !p.at(TokPunct, ";") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = c
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(TokPunct, ")") {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *Parser) parseSwitch(line int) (Stmt, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	st := &SwitchStmt{Tag: tag, Line: line}
	for !p.accept(TokPunct, "}") {
		var arm SwitchCase
		switch {
		case p.accept(TokKeyword, "case"):
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			arm.Value = v
		case p.accept(TokKeyword, "default"):
			arm.Default = true
		default:
			cur := p.cur()
			return nil, fmt.Errorf("line %d: expected case or default, found %q", cur.Line, cur.Text)
		}
		// The label separator is ':' — not a general punctuator, so match
		// the raw token.
		if !p.accept(TokPunct, ":") {
			cur := p.cur()
			return nil, fmt.Errorf("line %d: expected ':' after case label, found %q", cur.Line, cur.Text)
		}
		for !p.at(TokKeyword, "case") && !p.at(TokKeyword, "default") && !p.at(TokPunct, "}") {
			if p.cur().Kind == TokEOF {
				return nil, fmt.Errorf("line %d: unterminated switch", line)
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			arm.Body = append(arm.Body, s)
		}
		st.Cases = append(st.Cases, arm)
	}
	return st, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

func (p *Parser) parseAssign() (Expr, error) {
	lhs, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind != TokPunct {
		return lhs, nil
	}
	if t.Text == "=" {
		p.i++
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Assign{LHS: lhs, RHS: rhs}, nil
	}
	switch t.Text {
	case "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
		p.i++
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &CompoundAssign{Op: t.Text[:len(t.Text)-1], LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.i++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "++", "--":
			p.i++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &IncDec{Op: t.Text, X: x}, nil
		case "!", "-", "*", "&", "~":
			p.i++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x}, nil
		case "(":
			// Possible cast: "(" type ")" unary-expr.
			if n := p.peekN(1); n.Kind == TokKeyword && (n.Text == "int" || n.Text == "void" || n.Text == "struct") {
				p.i++ // consume "("
				_, ty, err := p.parseQualsAndTypeSpec()
				if err != nil {
					return nil, err
				}
				for p.accept(TokPunct, "*") {
					ty.Stars++
				}
				if _, err := p.expect(TokPunct, ")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &Cast{Type: ty, X: x}, nil
			}
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept(TokPunct, "["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			x = &Index{X: x, Idx: idx}
		case p.accept(TokPunct, "."):
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Member{X: x, Name: name.Text, Line: t.Line}
		case p.accept(TokPunct, "->"):
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Member{X: x, Name: name.Text, Arrow: true, Line: t.Line}
		case p.accept(TokPunct, "++"):
			x = &IncDec{Op: "++", X: x, Post: true}
		case p.accept(TokPunct, "--"):
			x = &IncDec{Op: "--", X: x, Post: true}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.i++
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad number %q", t.Line, t.Text)
		}
		return &NumLit{Val: v}, nil
	case t.Kind == TokIdent:
		p.i++
		if p.at(TokPunct, "(") {
			p.i++
			call := &Call{Name: t.Text, Line: t.Line}
			if !p.accept(TokPunct, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokPunct, ",") {
						break
					}
				}
				if _, err := p.expect(TokPunct, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil
	case p.accept(TokKeyword, "sizeof"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		_, ty, err := p.parseQualsAndTypeSpec()
		if err != nil {
			return nil, err
		}
		for p.accept(TokPunct, "*") {
			ty.Stars++
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &SizeOf{Type: ty}, nil
	case p.accept(TokKeyword, "__asm__"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		s := p.cur()
		if s.Kind != TokString {
			return nil, fmt.Errorf("line %d: __asm__ needs a string literal", s.Line)
		}
		p.i++
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &AsmExpr{Text: s.Text, Line: s.Line}, nil
	case p.accept(TokPunct, "("):
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, fmt.Errorf("line %d: unexpected token %q", t.Line, t.Text)
}
