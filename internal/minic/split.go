// Top-level-declaration splitting: the parallel parser's chunker.
//
// MiniC's grammar makes top-level declaration boundaries recognizable
// from the token stream alone, without parsing: tracking only brace
// depth, a declaration ends at a ';' at depth zero (globals, struct
// declarations, prototypes — initializer lists and struct bodies close
// their braces before the ';') or at a '}' that returns the depth to
// zero and is not followed by a ';' (a function body). splitDecls
// computes those boundaries in one linear scan; parseChunked batches
// contiguous declaration runs into roughly even-sized chunks, parses
// them concurrently, and concatenates the fragment ASTs in source
// order — which reproduces the sequential parser's output exactly,
// because the parser carries no state across top-level declarations.
//
// Any input the splitter cannot prove well-bracketed (negative or
// unbalanced depth, trailing tokens after the last boundary) and any
// chunk parse error falls back to the sequential parser, so malformed
// source produces byte-identical errors at every worker count.
package minic

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// chunksPerWorker oversizes the chunk count relative to the pool so a
// few declaration-heavy chunks cannot stall the tail of the sweep.
const chunksPerWorker = 4

// minChunkTokens keeps the pool from spawning goroutines for trivially
// small parses where coordination would dominate.
const minChunkTokens = 256

// splitDecls returns the token index one past the end of each
// top-level declaration, or ok=false when the stream is not provably
// well-bracketed (callers fall back to the sequential parser).
func splitDecls(toks []Token) (ends []int, ok bool) {
	depth := 0
	for i := range toks {
		if toks[i].Kind != TokPunct {
			continue
		}
		switch toks[i].Text {
		case "{":
			depth++
		case "}":
			depth--
			if depth < 0 {
				return nil, false
			}
			if depth == 0 {
				// A '}' closing to depth zero ends a function body
				// unless a ';' follows (struct declarations and
				// initializer lists end at that ';' instead).
				if i+1 >= len(toks) || toks[i+1].Kind != TokPunct || toks[i+1].Text != ";" {
					ends = append(ends, i+1)
				}
			}
		case ";":
			if depth == 0 {
				ends = append(ends, i+1)
			}
		}
	}
	if depth != 0 {
		return nil, false
	}
	if len(ends) == 0 || ends[len(ends)-1] != len(toks) {
		// Trailing tokens that form no complete declaration: let the
		// sequential parser produce the canonical error.
		return nil, false
	}
	return ends, true
}

// chunkSpans batches declaration boundaries into contiguous
// [start, end) token spans of roughly even size.
func chunkSpans(ends []int, nTok, workers int) [][2]int {
	target := nTok/(workers*chunksPerWorker) + 1
	if target < minChunkTokens {
		target = minChunkTokens
	}
	var spans [][2]int
	start := 0
	for _, e := range ends {
		if e-start >= target {
			spans = append(spans, [2]int{start, e})
			start = e
		}
	}
	if start < nTok {
		spans = append(spans, [2]int{start, nTok})
	}
	return spans
}

// parseTokens parses a full token stream, fanning out across workers
// when the splitter finds enough declaration boundaries. The result —
// AST and error alike — is identical to the sequential parser's for
// every worker count.
func parseTokens(toks []Token, workers int, prov *obs.Provider) (*File, error) {
	if workers > 1 && len(toks) >= minChunkTokens {
		if f, ok := parseChunked(toks, workers, prov); ok {
			return f, nil
		}
		prov.Counter("frontend.parse_fallbacks").Inc()
	}
	p := &Parser{toks: toks}
	return p.parseFile()
}

// parseChunked is the parallel parse path: split, fan out, merge in
// source order. ok=false means the caller must parse sequentially
// (unprovable bracketing, too few chunks to pay for the pool, or any
// chunk error — the sequential run then reports the canonical error).
func parseChunked(toks []Token, workers int, prov *obs.Provider) (*File, bool) {
	ends, ok := splitDecls(toks)
	if !ok || len(ends) < 2 {
		return nil, false
	}
	spans := chunkSpans(ends, len(toks), workers)
	if len(spans) < 2 {
		return nil, false
	}
	if workers > len(spans) {
		workers = len(spans)
	}
	prov.Counter("frontend.chunks_split").Add(int64(len(spans)))
	frags := make([]*File, len(spans))
	var cursor atomic.Int64
	var failed atomic.Bool
	runPool(workers, func(w int) {
		trk := prov.Track(fmt.Sprintf("frontend.worker-%02d", w))
		for !failed.Load() {
			i := int(cursor.Add(1)) - 1
			if i >= len(spans) {
				break
			}
			sp := trk.Begin("frontend.parse_chunk")
			f, err := parseChunk(toks[spans[i][0]:spans[i][1]])
			sp.Arg("tokens", spans[i][1]-spans[i][0]).End()
			if err != nil {
				failed.Store(true)
				return
			}
			frags[i] = f
		}
	})
	if failed.Load() {
		return nil, false
	}
	merged := &File{}
	for _, f := range frags {
		merged.Structs = append(merged.Structs, f.Structs...)
		merged.Globals = append(merged.Globals, f.Globals...)
		merged.Funcs = append(merged.Funcs, f.Funcs...)
	}
	return merged, true
}

// parseChunk parses one contiguous run of top-level declarations.
func parseChunk(toks []Token) (*File, error) {
	p := &Parser{toks: toks}
	f := &File{}
	for p.cur().Kind != TokEOF {
		if err := p.parseDecl(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}
