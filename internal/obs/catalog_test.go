package obs

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestCatalogMatchesCode is the drift gate between the metric catalog
// table in docs/OBSERVABILITY.md and the names actually registered in
// the codebase: every `Counter("x.y")`/`Gauge`/`Histogram` call in
// non-test source must have a catalog row, and every catalogued name
// must still exist in the source. Registering a metric without
// documenting it (or documenting a ghost) fails the build.
func TestCatalogMatchesCode(t *testing.T) {
	root := "../.."
	inCode := registeredNames(t, root)
	inDocs := cataloguedNames(t, filepath.Join(root, "docs", "OBSERVABILITY.md"))

	for _, name := range sortedKeys(inCode) {
		if !inDocs[name] {
			t.Errorf("metric %q is registered in code but missing from the docs/OBSERVABILITY.md catalog", name)
		}
	}
	for _, name := range sortedKeys(inDocs) {
		if !inCode[name] {
			t.Errorf("metric %q is in the docs/OBSERVABILITY.md catalog but no code registers it", name)
		}
	}
	// Sanity: the scan found the stable core names, so an empty scan
	// cannot masquerade as "no drift".
	for _, anchor := range []string{"mc.executions_explored", "serve.requests_total", "weaken.runs_completed"} {
		if !inCode[anchor] {
			t.Fatalf("source scan lost anchor metric %q — scanner broken", anchor)
		}
	}
}

var registerRE = regexp.MustCompile(`\.(?:Counter|Gauge|Histogram)\(\s*"([a-z][a-z0-9_]*\.[a-z0-9_.]+)"\s*\)`)

// registeredNames collects every literal metric name registered in
// non-test Go source under root.
func registeredNames(t *testing.T, root string) map[string]bool {
	t.Helper()
	names := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || name == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range registerRE.FindAllSubmatch(data, -1) {
			names[string(m[1])] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return names
}

var catalogNameRE = regexp.MustCompile("`([a-z][a-z0-9_]*\\.[a-z0-9_.]+)`")

// cataloguedNames extracts the metric names from the catalog table:
// backticked names in the first cell of each `| ... |` row (a row may
// list several related names separated by slashes).
func cataloguedNames(t *testing.T, docPath string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 3 {
			continue
		}
		kind := strings.TrimSpace(cells[2])
		switch kind {
		case "counter", "gauge", "histogram":
		default:
			continue // prose tables, header rows
		}
		for _, m := range catalogNameRE.FindAllStringSubmatch(cells[1], -1) {
			names[m[1]] = true
		}
	}
	if len(names) == 0 {
		t.Fatalf("no catalog rows found in %s — table format changed?", docPath)
	}
	return names
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
