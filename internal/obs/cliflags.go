package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLIFlags is the one flag-plumbing helper shared by all four
// commands: it registers the observability flag group (-metrics,
// -trace, -pprof, -log), builds the matching provider, and tears it
// down. Before this existed every main carried its own copy of the
// pprof startup and flush epilogue; now a command does
//
//	var of obs.CLIFlags
//	of.Register(fs)
//	...
//	prov, err := of.Provider(extra, stderr)
//	defer of.Close(prov)
type CLIFlags struct {
	Metrics string // -metrics: JSON snapshot file
	Trace   string // -trace: Chrome trace_event file
	Pprof   string // -pprof: live telemetry HTTP address
	Log     string // -log: JSON event log file, or "stderr"

	logFile   *os.File     // owned when -log names a file
	httpClose func() error // owned -pprof listener
}

// Register installs the flag group on fs.
func (f *CLIFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Metrics, "metrics", "", "write a versioned metrics-registry snapshot (JSON) to this file")
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event timeline (JSON) to this file")
	fs.StringVar(&f.Pprof, "pprof", "", "serve live telemetry (/metrics, /healthz, net/http/pprof) on this address")
	fs.StringVar(&f.Log, "log", "", `write structured JSON events to this file, or "stderr"`)
}

// Provider builds the provider the parsed flags ask for: nil when
// every flag is off and no extra consumer (e.g. atomig-mc -stats)
// needs a registry. -log attaches an event logger; -pprof starts the
// telemetry listener (announced on stderr) serving this provider's
// registry live.
func (f *CLIFlags) Provider(extra bool, stderr io.Writer) (*Provider, error) {
	p := NewCLI(f.Metrics, f.Trace, extra || f.Log != "" || f.Pprof != "")
	if p == nil {
		return nil, nil
	}
	if f.Log != "" {
		w := io.Writer(stderr)
		if f.Log != "stderr" {
			file, err := os.Create(f.Log)
			if err != nil {
				return nil, fmt.Errorf("obs: -log: %w", err)
			}
			f.logFile = file
			w = file
		}
		p.Logs = NewLogger(w)
	}
	if f.Pprof != "" {
		addr, closeFn, err := ListenAndServe(f.Pprof, p, nil)
		if err != nil {
			f.closeOwned()
			return nil, fmt.Errorf("obs: -pprof: %w", err)
		}
		f.httpClose = closeFn
		fmt.Fprintf(stderr, "pprof: listening on http://%s/debug/pprof/\n", addr)
	}
	return p, nil
}

func (f *CLIFlags) closeOwned() {
	if f.httpClose != nil {
		f.httpClose()
		f.httpClose = nil
	}
	if f.logFile != nil {
		f.logFile.Close()
		f.logFile = nil
	}
}

// Close flushes the provider's exports to the flagged paths and
// releases everything Provider opened. Safe on a nil provider and
// after an error path.
func (f *CLIFlags) Close(p *Provider) error {
	err := p.Flush(f.Metrics, f.Trace)
	f.closeOwned()
	return err
}
