package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonDecodeStrict decodes one JSON value from r, rejecting unknown
// fields.
func jsonDecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// This file is the file-format boundary of the observability layer:
// the `-metrics` snapshot (versioned schema, see SchemaVersion) and
// the `-trace` Chrome trace_event export, plus the validators
// `atomig-bench -check-metrics/-check-trace` and `make obs-smoke` run
// against both.

// EncodeMetrics renders a snapshot as indented JSON.
func EncodeMetrics(snap Snapshot) ([]byte, error) {
	return json.MarshalIndent(snap, "", "  ")
}

// WriteMetricsFile writes the snapshot to path.
func WriteMetricsFile(path string, snap Snapshot) error {
	data, err := EncodeMetrics(snap)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateMetrics checks that data is a well-formed metrics snapshot:
// the schema version is a known one (current v2 or the archived v1),
// every metric name follows the naming convention, each histogram's
// buckets are sorted with counts that sum to its count, and quantiles
// (v2 only) are ordered p50 ≤ p95 ≤ p99.
func ValidateMetrics(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var snap Snapshot
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("metrics: not a snapshot: %w", err)
	}
	if snap.Schema != SchemaVersion && snap.Schema != SchemaV1 {
		return fmt.Errorf("metrics: schema %q, want %q or %q", snap.Schema, SchemaVersion, SchemaV1)
	}
	for name := range snap.Counters {
		if !ValidName(name) {
			return fmt.Errorf("metrics: counter %q violates the naming convention", name)
		}
	}
	for name := range snap.Gauges {
		if !ValidName(name) {
			return fmt.Errorf("metrics: gauge %q violates the naming convention", name)
		}
	}
	for name, h := range snap.Histograms {
		if !ValidName(name) {
			return fmt.Errorf("metrics: histogram %q violates the naming convention", name)
		}
		var total int64
		for i, b := range h.Buckets {
			if b.N <= 0 {
				return fmt.Errorf("metrics: histogram %q bucket le=%d has non-positive count %d", name, b.Upper, b.N)
			}
			if i > 0 && h.Buckets[i-1].Upper >= b.Upper {
				return fmt.Errorf("metrics: histogram %q buckets not sorted at le=%d", name, b.Upper)
			}
			total += b.N
		}
		if total != h.Count {
			return fmt.Errorf("metrics: histogram %q buckets sum to %d, count says %d", name, total, h.Count)
		}
		if snap.Schema == SchemaV1 && (h.P50 != 0 || h.P95 != 0 || h.P99 != 0) {
			return fmt.Errorf("metrics: histogram %q carries quantiles under schema %q", name, SchemaV1)
		}
		if h.P50 > h.P95 || h.P95 > h.P99 {
			return fmt.Errorf("metrics: histogram %q quantiles out of order: p50=%d p95=%d p99=%d", name, h.P50, h.P95, h.P99)
		}
	}
	return nil
}

// traceFile is the exported trace container: the object form of the
// Chrome trace format, which every viewer accepts.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// EncodeTrace renders the tracer's events as Chrome trace-event JSON.
func EncodeTrace(t *Tracer) ([]byte, error) {
	return json.MarshalIndent(traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}, "", "  ")
}

// WriteTraceFile writes the tracer's export to path.
func WriteTraceFile(path string, t *Tracer) error {
	data, err := EncodeTrace(t)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateTrace checks that data is a well-formed Chrome trace-event
// export: known phases, timestamps sorted non-decreasingly, and every
// track's B/E events matched in LIFO order with no dangling opens.
func ValidateTrace(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tf traceFile
	if err := dec.Decode(&tf); err != nil {
		return fmt.Errorf("trace: not a trace-event file: %w", err)
	}
	lastTS := -1.0
	stacks := make(map[int][]string) // tid → open span names
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		switch ev.Ph {
		case "M":
			continue // metadata carries no timeline position
		case "B", "E", "i":
		default:
			return fmt.Errorf("trace: event %d (%s) has unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.TS < 0 {
			return fmt.Errorf("trace: event %d (%s) has negative timestamp", i, ev.Name)
		}
		if ev.TS < lastTS {
			return fmt.Errorf("trace: event %d (%s) out of order: ts %.3f after %.3f", i, ev.Name, ev.TS, lastTS)
		}
		lastTS = ev.TS
		switch ev.Ph {
		case "B":
			stacks[ev.TID] = append(stacks[ev.TID], ev.Name)
		case "E":
			st := stacks[ev.TID]
			if len(st) == 0 {
				return fmt.Errorf("trace: event %d: E %q on tid %d with no open span", i, ev.Name, ev.TID)
			}
			if top := st[len(st)-1]; top != ev.Name {
				return fmt.Errorf("trace: event %d: E %q on tid %d, open span is %q", i, ev.Name, ev.TID, top)
			}
			stacks[ev.TID] = st[:len(st)-1]
		}
	}
	for tid, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("trace: tid %d ends with %d unclosed span(s), first %q", tid, len(st), st[0])
		}
	}
	return nil
}

// Flush writes the provider's metrics snapshot and trace export to the
// given paths (either may be empty to skip). Nil-safe: a nil provider
// writes nothing, so CLI epilogues call it unconditionally.
func (p *Provider) Flush(metricsPath, tracePath string) error {
	if p == nil {
		return nil
	}
	if metricsPath != "" {
		if err := WriteMetricsFile(metricsPath, p.Snapshot()); err != nil {
			return fmt.Errorf("obs: write metrics: %w", err)
		}
	}
	if tracePath != "" && p.Tracer != nil {
		if err := WriteTraceFile(tracePath, p.Tracer); err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
	}
	return nil
}

// NewCLI builds the provider a command's flags ask for: nil when
// neither -metrics, -trace nor another registry consumer (extra, e.g.
// atomig-mc -stats) is active, metrics-only when -trace is off, and
// tracing when a trace path is given.
func NewCLI(metricsPath, tracePath string, extra bool) *Provider {
	if metricsPath == "" && tracePath == "" && !extra {
		return nil
	}
	if tracePath != "" {
		return NewTracing()
	}
	return New()
}
