package obs

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTraceExportGolden drives the tracer with a deterministic clock
// and compares the Chrome trace-event export byte-for-byte against the
// checked-in golden file — the stable on-disk contract `-trace`
// promises (run with -update to regenerate after an intentional
// format change).
func TestTraceExportGolden(t *testing.T) {
	var now int64
	tr := newTracerAt(func() int64 { now += 1500; return now })
	worker := tr.Track("mc.worker-00")
	ws := worker.Begin("mc.worker")
	fs := worker.Begin("mc.fragment")
	worker.Instant("mc.fragment_donated")
	fs.Arg("executions", 3).End()
	ws.End()
	pipe := tr.Track("pipeline")
	pipe.Begin("pipeline.port").Arg("module", "seqlock").End()

	data, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := ValidateTrace(data); err != nil {
		t.Fatalf("golden trace does not validate: %v", err)
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(want) != string(data) {
		t.Errorf("trace export drifted from golden file %s.\ngot:\n%s\nwant:\n%s", golden, data, want)
	}
}
