package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Health is what /healthz reports. Status is one of "ok", "degraded"
// (serving, but shedding load or missing deadlines recently) or
// "draining" (shutdown in progress; returned with a 503 so load
// balancers stop routing). Reason explains a non-ok status.
type Health struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// Handler returns the live-telemetry HTTP surface for a provider:
//
//	/metrics       Prometheus text exposition of the current snapshot
//	/metrics.json  the versioned JSON snapshot (same bytes as -metrics)
//	/healthz       the health callback's verdict (503 when draining)
//	/debug/pprof/  the standard Go profiling endpoints
//
// health may be nil, in which case /healthz always reports ok. The
// provider may be nil: the metrics endpoints then serve an empty
// snapshot, so the surface stays scrapeable regardless of flags.
func Handler(p *Provider, health func() Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(EncodeProm(p.Snapshot()))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		data, err := EncodeMetrics(p.Snapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{Status: "ok"}
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if h.Status == "draining" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc, _ := json.Marshal(h)
		w.Write(append(enc, '\n'))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe binds addr (e.g. "localhost:6060", or ":0" for an
// ephemeral port), serves the Handler surface on it in a background
// goroutine, and returns the bound address plus a close function that
// stops the listener. It backs the -pprof flag on the one-shot CLIs;
// the daemon mounts the same Handler under its own lifecycle
// (serve.Server.ListenHTTP) so shutdown drains cleanly.
func ListenAndServe(addr string, p *Provider, health func() Health) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(p, health)}
	go func() {
		// Serve returns ErrServerClosed (or a listener error) once closed;
		// there is nowhere useful to report it.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv.Close, nil
}

// ServePprof starts the telemetry surface on addr for the remainder of
// the process and returns the bound address. Retained for call sites
// that have no shutdown path; prefer ListenAndServe.
func ServePprof(addr string) (string, error) {
	bound, _, err := ListenAndServe(addr, nil, nil)
	return bound, err
}
