package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// Logger is the structured JSON event log: one JSON object per line,
// each carrying a wall-clock timestamp (`ts_us`, Unix microseconds), a
// monotonic sequence number (`seq`), the event name (`ev`, following
// the same `subsystem.noun_verbed` convention as metrics), and the
// caller's typed fields. Events go to the sink writer (the `-log`
// flag) and, when a flight recorder is attached, into its in-memory
// ring — either destination may be absent.
//
// The nil contract matches the rest of the package: a nil *Logger (and
// the nil *Ev it hands out) is a no-op with zero allocations, enforced
// by TestNilSafety. Call sites read straight-line:
//
//	lg.Event("serve.request_admitted").Str("id", id).Int("slot", 3).Emit()
type Logger struct {
	mu  sync.Mutex // serializes sink writes
	w   io.Writer  // may be nil: recorder-only logger
	rec atomic.Pointer[Recorder]
	seq atomic.Int64

	nowUS func() int64 // test hook: Unix microseconds
}

// NewLogger returns a logger writing JSON lines to w. A nil w is
// legal: events then reach only the attached flight recorder.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, nowUS: func() int64 { return time.Now().UnixMicro() }}
}

// SetRecorder attaches (or detaches, with nil) a flight recorder;
// every subsequently emitted event is also appended to its ring.
// Nil-safe and safe against concurrent Emit calls.
func (l *Logger) SetRecorder(r *Recorder) {
	if l != nil {
		l.rec.Store(r)
	}
}

// Recorder returns the attached flight recorder (nil when none).
func (l *Logger) Recorder() *Recorder {
	if l == nil {
		return nil
	}
	return l.rec.Load()
}

// evPool recycles event builders so an enabled logger allocates only
// for sink growth, not per event.
var evPool = sync.Pool{New: func() any { return &Ev{buf: make([]byte, 0, 256)} }}

// Ev is one event under construction. Obtain it from Logger.Event,
// attach fields with Str/Int/Bool, and finish with Emit — every method
// is nil-safe, so a disabled logger's call sites cost nil checks only.
type Ev struct {
	l   *Logger
	ts  int64
	seq int64
	buf []byte
}

// Event starts an event with the given name. Nil-safe: a nil logger
// yields a nil event whose methods all no-op.
func (l *Logger) Event(name string) *Ev {
	if l == nil {
		return nil
	}
	e := evPool.Get().(*Ev)
	e.l = l
	e.ts = l.nowUS()
	e.seq = l.seq.Add(1)
	e.buf = append(e.buf[:0], `{"ts_us":`...)
	e.buf = strconv.AppendInt(e.buf, e.ts, 10)
	e.buf = append(e.buf, `,"seq":`...)
	e.buf = strconv.AppendInt(e.buf, e.seq, 10)
	e.buf = append(e.buf, `,"ev":`...)
	e.buf = appendJSONString(e.buf, name)
	return e
}

func (e *Ev) key(k string) {
	e.buf = append(e.buf, ',')
	e.buf = appendJSONString(e.buf, k)
	e.buf = append(e.buf, ':')
}

// Str attaches a string field. Nil-safe.
func (e *Ev) Str(k, v string) *Ev {
	if e == nil {
		return nil
	}
	e.key(k)
	e.buf = appendJSONString(e.buf, v)
	return e
}

// Int attaches an integer field. Nil-safe.
func (e *Ev) Int(k string, v int64) *Ev {
	if e == nil {
		return nil
	}
	e.key(k)
	e.buf = strconv.AppendInt(e.buf, v, 10)
	return e
}

// Bool attaches a boolean field. Nil-safe.
func (e *Ev) Bool(k string, v bool) *Ev {
	if e == nil {
		return nil
	}
	e.key(k)
	e.buf = strconv.AppendBool(e.buf, v)
	return e
}

// Emit closes the event and delivers it to the sink and the attached
// flight recorder. The event must not be used afterwards. Nil-safe.
func (e *Ev) Emit() {
	if e == nil {
		return
	}
	e.buf = append(e.buf, '}', '\n')
	l := e.l
	if r := l.rec.Load(); r != nil {
		r.add(e.ts, e.seq, e.buf)
	}
	if l.w != nil {
		l.mu.Lock()
		l.w.Write(e.buf)
		l.mu.Unlock()
	}
	e.l = nil
	evPool.Put(e)
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal: quotes and
// backslashes escaped, control characters as \uXXXX, invalid UTF-8
// replaced so the output is always valid JSON.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"':
				buf = append(buf, '\\', '"')
			case c == '\\':
				buf = append(buf, '\\', '\\')
			case c == '\n':
				buf = append(buf, '\\', 'n')
			case c == '\r':
				buf = append(buf, '\\', 'r')
			case c == '\t':
				buf = append(buf, '\\', 't')
			case c < 0x20:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			default:
				buf = append(buf, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, `�`...)
			i++
			continue
		}
		buf = append(buf, s[i:i+size]...)
		i += size
	}
	return append(buf, '"')
}
