package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

// testLogger returns a logger writing to buf with a deterministic
// microsecond clock (one tick per event).
func testLogger(buf *bytes.Buffer) *Logger {
	lg := NewLogger(buf)
	var t int64
	lg.nowUS = func() int64 { t += 1000; return t }
	return lg
}

// TestLoggerJSONLines pins the event-log line format: one JSON object
// per line with ts_us, seq, ev, then the caller's fields in call order.
func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	lg := testLogger(&buf)
	lg.Event("serve.request_admitted").Str("rid", "r000001").Int("slot", 3).Bool("replay", false).Emit()
	lg.Event("serve.request_done").Str("rid", "r000001").Emit()

	want := `{"ts_us":1000,"seq":1,"ev":"serve.request_admitted","rid":"r000001","slot":3,"replay":false}
{"ts_us":2000,"seq":2,"ev":"serve.request_done","rid":"r000001"}
`
	if got := buf.String(); got != want {
		t.Errorf("log output:\n%s\nwant:\n%s", got, want)
	}
	// Every line must independently parse as JSON.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %q is not valid JSON: %v", line, err)
		}
	}
}

// TestLoggerEscaping: field values with quotes, control characters and
// invalid UTF-8 must still produce valid JSON.
func TestLoggerEscaping(t *testing.T) {
	var buf bytes.Buffer
	lg := testLogger(&buf)
	lg.Event("serve.request_done").
		Str("quote", `say "hi"`).
		Str("ctl", "a\nb\tc\x01d").
		Str("bad", "x\xffy").
		Str("uni", "héllo⇒").
		Emit()
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &m); err != nil {
		t.Fatalf("escaped line is not valid JSON: %v\n%s", err, buf.String())
	}
	if m["quote"] != `say "hi"` || m["ctl"] != "a\nb\tc\x01d" || m["uni"] != "héllo⇒" {
		t.Errorf("fields did not round-trip: %v", m)
	}
	if !strings.Contains(m["bad"].(string), "�") {
		t.Errorf("invalid UTF-8 not replaced: %q", m["bad"])
	}
}

// TestLoggerConcurrent hammers one logger from many goroutines; every
// line must stay intact (no interleaved writes) and seq must be unique.
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&safeWriter{w: &buf})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lg.Event("serve.request_done").Int("g", int64(g)).Int("i", int64(i)).Emit()
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1600 {
		t.Fatalf("got %d lines, want 1600", len(lines))
	}
	seqs := make(map[int64]bool)
	for _, line := range lines {
		var ev struct {
			Seq int64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("corrupt line %q: %v", line, err)
		}
		if seqs[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seqs[ev.Seq] = true
	}
}

// safeWriter makes a bytes.Buffer safe for the concurrent test (the
// logger serializes writes itself; this guards the test's own reads).
type safeWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *safeWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestRecorderDump: events flow logger → recorder; the dump is a valid
// flight-recorder document in timeline order carrying the tags.
func TestRecorderDump(t *testing.T) {
	lg := testLogger(&bytes.Buffer{})
	rec := NewRecorder(64)
	lg.SetRecorder(rec)
	for i := 0; i < 20; i++ {
		lg.Event("serve.request_admitted").Int("i", int64(i)).Emit()
	}
	dump := rec.Dump("watchdog", map[string]string{"rid": "r000007", "op": "port"})
	if err := ValidateFlight(dump); err != nil {
		t.Fatalf("dump invalid: %v\n%s", err, dump)
	}
	var d flightDump
	if err := json.Unmarshal(dump, &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "watchdog" || d.Tags["rid"] != "r000007" || d.Tags["op"] != "port" {
		t.Errorf("envelope = %q/%v", d.Reason, d.Tags)
	}
	if len(d.Events) != 20 {
		t.Fatalf("dump has %d events, want 20", len(d.Events))
	}
	for i, ev := range d.Events {
		if ev.Ev != "serve.request_admitted" {
			t.Errorf("event %d: ev %q", i, ev.Ev)
		}
		if i > 0 && ev.TSUS < d.Events[i-1].TSUS {
			t.Errorf("event %d out of order", i)
		}
	}
}

// TestRecorderBounded: the ring retains only the newest ~capacity
// events, and dumps stay bounded no matter how many were emitted.
func TestRecorderBounded(t *testing.T) {
	lg := testLogger(&bytes.Buffer{})
	rec := NewRecorder(64)
	lg.SetRecorder(rec)
	for i := 0; i < 10_000; i++ {
		lg.Event("serve.request_done").Int("i", int64(i)).Emit()
	}
	dump := rec.Dump("overload", nil)
	if err := ValidateFlight(dump); err != nil {
		t.Fatalf("dump invalid: %v", err)
	}
	var d flightDump
	if err := json.Unmarshal(dump, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Events) > 64+recorderStripes {
		t.Errorf("ring retained %d events, capacity 64", len(d.Events))
	}
	// Only the newest survive: the oldest retained index must be late.
	var first struct {
		I int64 `json:"i"`
	}
	if err := json.Unmarshal([]byte(fmt.Sprintf(`{"i":%d}`, 0)), &first); err != nil {
		t.Fatal(err)
	}
	if d.Events[0].TSUS < 9000*1000 {
		t.Errorf("oldest retained event ts %d — ring did not evict", d.Events[0].TSUS)
	}
	if len(dump) > MaxRecordBytes*(64+recorderStripes) {
		t.Errorf("dump is %d bytes — unbounded", len(dump))
	}
}

// TestRecorderTruncatesOversize: a pathological event line becomes a
// stub naming its size instead of blowing the memory bound.
func TestRecorderTruncatesOversize(t *testing.T) {
	lg := testLogger(&bytes.Buffer{})
	rec := NewRecorder(8)
	lg.SetRecorder(rec)
	lg.Event("serve.request_admitted").Str("huge", strings.Repeat("x", 2*MaxRecordBytes)).Emit()
	dump := rec.Dump("panic", nil)
	if err := ValidateFlight(dump); err != nil {
		t.Fatalf("dump invalid: %v", err)
	}
	var d flightDump
	if err := json.Unmarshal(dump, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 1 || d.Events[0].Ev != "obs.record_truncated" {
		t.Fatalf("oversize event not stubbed: %+v", d.Events)
	}
}

// TestValidateFlightRejects pins the failure modes.
func TestValidateFlightRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `nope`,
		"wrong schema":  `{"schema":"other/v1","reason":"x","events":[]}`,
		"no reason":     `{"schema":"atomig.flightrec/v1","events":[]}`,
		"unnamed event": `{"schema":"atomig.flightrec/v1","reason":"x","events":[{"ts_us":1,"seq":1}]}`,
		"out of order":  `{"schema":"atomig.flightrec/v1","reason":"x","events":[{"ts_us":2,"seq":1,"ev":"a.b"},{"ts_us":1,"seq":2,"ev":"a.b"}]}`,
	}
	for name, data := range cases {
		if err := ValidateFlight([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestTracerMirror: completed spans echo into the logger (and through
// it the flight recorder) as obs.span_completed events.
func TestTracerMirror(t *testing.T) {
	var buf bytes.Buffer
	lg := testLogger(&buf)
	var clk int64
	tr := newTracerAt(func() int64 { clk += 2500; return clk })
	tr.MirrorTo(lg)
	sp := tr.Track("serve").Begin("serve.op_port")
	sp.End()
	var ev struct {
		Ev    string `json:"ev"`
		Track string `json:"track"`
		Span  string `json:"span"`
		DurUS int64  `json:"dur_us"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &ev); err != nil {
		t.Fatalf("mirror emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if ev.Ev != "obs.span_completed" || ev.Track != "serve" || ev.Span != "serve.op_port" {
		t.Errorf("mirror event = %+v", ev)
	}
	if ev.DurUS != 2 { // 2500ns between Begin and End → 2µs
		t.Errorf("dur_us = %d, want 2", ev.DurUS)
	}
	tr.MirrorTo(nil)
	buf.Reset()
	tr.Track("serve").Begin("serve.op_port").End()
	if buf.Len() != 0 {
		t.Error("detached mirror still emitted")
	}
}

// TestHistogramQuantiles pins the bucket-upper-bound quantile math.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.latency_observed")
	// 100 observations: 50× value 3 (bucket le=3), 45× value 10
	// (le=15), 5× value 100 (le=127).
	for i := 0; i < 50; i++ {
		h.Observe(3)
	}
	for i := 0; i < 45; i++ {
		h.Observe(10)
	}
	for i := 0; i < 5; i++ {
		h.Observe(100)
	}
	hs := r.Snapshot().Histograms["test.latency_observed"]
	if hs.P50 != 3 || hs.P95 != 15 || hs.P99 != 127 {
		t.Errorf("quantiles p50=%d p95=%d p99=%d, want 3/15/127", hs.P50, hs.P95, hs.P99)
	}
	if got := hs.Quantile(1.0); got != 127 {
		t.Errorf("Quantile(1.0) = %d, want 127", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
}

// TestMetricsV2RoundTrip: a live snapshot encodes under the v2 schema
// with quantiles and validates.
func TestMetricsV2RoundTrip(t *testing.T) {
	p := New()
	p.Counter("test.events_counted").Add(7)
	p.Histogram("test.latency_observed").Observe(42)
	data, err := EncodeMetrics(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(SchemaVersion)) {
		t.Errorf("snapshot does not carry schema %q", SchemaVersion)
	}
	if !bytes.Contains(data, []byte(`"p95"`)) {
		t.Error("v2 snapshot has no quantiles")
	}
	if err := ValidateMetrics(data); err != nil {
		t.Errorf("round-trip invalid: %v", err)
	}
}

// TestMetricsV1Fixture: archived v1 snapshots (no quantiles) must keep
// validating — the schema bump is backward compatible for readers.
func TestMetricsV1Fixture(t *testing.T) {
	data, err := os.ReadFile("testdata/metrics_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(data); err != nil {
		t.Errorf("v1 fixture rejected: %v", err)
	}
	// But a v1 snapshot claiming quantiles is a lie: reject it.
	bad := bytes.Replace(data, []byte(`"count": 3,`), []byte(`"count": 3, "p50": 3,`), 1)
	if err := ValidateMetrics(bad); err == nil {
		t.Error("v1 snapshot with quantiles accepted")
	}
	// And unknown quantile ordering is rejected under v2.
	v2 := bytes.Replace(data, []byte("atomig.metrics/v1"), []byte(SchemaVersion), 1)
	v2 = bytes.Replace(v2, []byte(`"count": 3,`), []byte(`"count": 3, "p50": 9, "p95": 3,`), 1)
	if err := ValidateMetrics(v2); err == nil {
		t.Error("out-of-order quantiles accepted")
	}
}

// TestPromRoundTrip: EncodeProm output passes ValidateProm and
// cross-checks against the snapshot it came from.
func TestPromRoundTrip(t *testing.T) {
	p := New()
	p.Counter("serve.requests_total").Add(12)
	p.Gauge("serve.requests_inflight").Set(2)
	h := p.Histogram("serve.request_ms")
	for _, v := range []int64{1, 3, 3, 200} {
		h.Observe(v)
	}
	snap := p.Snapshot()
	prom := EncodeProm(snap)
	if err := ValidateProm(prom); err != nil {
		t.Fatalf("encoded prom invalid: %v\n%s", err, prom)
	}
	if !bytes.Contains(prom, []byte("atomig_serve_requests_total 12")) {
		t.Errorf("counter sample missing:\n%s", prom)
	}
	if !bytes.Contains(prom, []byte(`atomig_serve_request_ms_bucket{le="+Inf"} 4`)) {
		t.Errorf("+Inf bucket missing:\n%s", prom)
	}
	metrics, err := EncodeMetrics(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPromAgainst(prom, metrics); err != nil {
		t.Errorf("self cross-check failed: %v", err)
	}
}

// TestCheckPromAgainst pins the cross-check: a mid-flight scrape may
// trail the final snapshot but never exceed it, and must overlap it.
func TestCheckPromAgainst(t *testing.T) {
	p := New()
	p.Counter("serve.requests_total").Add(5)
	early := EncodeProm(p.Snapshot())
	p.Counter("serve.requests_total").Add(5)
	final, err := EncodeMetrics(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPromAgainst(early, final); err != nil {
		t.Errorf("early scrape rejected: %v", err)
	}
	late := EncodeProm(p.Snapshot())
	p2 := New()
	p2.Counter("serve.requests_total").Add(3)
	smaller, err := EncodeMetrics(p2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPromAgainst(late, smaller); err == nil {
		t.Error("scrape exceeding the snapshot accepted")
	}
	p3 := New()
	p3.Counter("other.things_counted").Add(1)
	disjoint, err := EncodeMetrics(p3.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPromAgainst(late, disjoint); err == nil {
		t.Error("disjoint scrape/snapshot pair accepted")
	}
}

// TestValidatePromRejects pins scrape failure modes.
func TestValidatePromRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no type":        "atomig_x_total 3\n",
		"bad value":      "# TYPE atomig_x counter\natomig_x nope\n",
		"bad type":       "# TYPE atomig_x widget\natomig_x 3\n",
		"le on scalar":   "# TYPE atomig_x counter\natomig_x{le=\"5\"} 3\n",
		"no inf":         "# TYPE atomig_h histogram\natomig_h_bucket{le=\"1\"} 2\natomig_h_sum 2\natomig_h_count 2\n",
		"not cumulative": "# TYPE atomig_h histogram\natomig_h_bucket{le=\"1\"} 5\natomig_h_bucket{le=\"3\"} 2\natomig_h_bucket{le=\"+Inf\"} 5\natomig_h_sum 2\natomig_h_count 5\n",
		"count mismatch": "# TYPE atomig_h histogram\natomig_h_bucket{le=\"1\"} 2\natomig_h_bucket{le=\"+Inf\"} 2\natomig_h_sum 2\natomig_h_count 3\n",
	}
	for name, data := range cases {
		if err := ValidateProm([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
