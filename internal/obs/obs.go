// Package obs is the unified observability layer shared by every
// subsystem of the reproduction: a lock-striped metrics registry
// (atomic counters, gauges, fixed log-scale histograms), hierarchical
// span tracing with a Chrome trace_event JSON exporter, and a pprof
// helper for the long-running commands.
//
// The seam follows the vm.Options.Hook contract: a nil *Provider means
// the instrumented subsystem touches no atomics and allocates nothing
// on its hot paths — every Track, Span and Counter method is nil-safe,
// so call sites read straight-line (`span := track.Begin(...); ...;
// span.End()`) whether or not observability is on. The zero-cost
// contract is enforced by the allocation and timing gates in
// internal/bench (obsoverhead).
//
// Metric names follow one convention across the codebase:
// `subsystem.noun_verbed` (for example `mc.executions_pruned`,
// `pipeline.spinloops_found`). The registry rejects names that do not
// match; the catalog lives in docs/OBSERVABILITY.md.
package obs

// Provider bundles the metrics registry, the (optional) tracer, and
// the (optional) structured event logger a subsystem reports into. A
// nil Provider disables instrumentation entirely; a Provider with a
// nil Tracer collects metrics only; a nil Logs drops events.
type Provider struct {
	Registry *Registry
	Tracer   *Tracer
	Logs     *Logger
}

// New returns a metrics-only provider.
func New() *Provider { return &Provider{Registry: NewRegistry()} }

// NewTracing returns a provider that collects both metrics and spans.
func NewTracing() *Provider {
	return &Provider{Registry: NewRegistry(), Tracer: NewTracer()}
}

// Counter resolves a counter handle; nil-safe (a nil provider or
// registry yields a nil, no-op counter).
func (p *Provider) Counter(name string) *Counter {
	if p == nil {
		return nil
	}
	return p.Registry.Counter(name)
}

// Gauge resolves a gauge handle; nil-safe.
func (p *Provider) Gauge(name string) *Gauge {
	if p == nil {
		return nil
	}
	return p.Registry.Gauge(name)
}

// Histogram resolves a histogram handle; nil-safe.
func (p *Provider) Histogram(name string) *Histogram {
	if p == nil {
		return nil
	}
	return p.Registry.Histogram(name)
}

// Log returns the provider's event logger; nil when the provider has
// none, which turns every Event call site into a no-op.
func (p *Provider) Log() *Logger {
	if p == nil {
		return nil
	}
	return p.Logs
}

// Track resolves a named trace track; nil when the provider or its
// tracer is nil, which turns every span call site into a no-op.
func (p *Provider) Track(name string) *Track {
	if p == nil || p.Tracer == nil {
		return nil
	}
	return p.Tracer.Track(name)
}

// RegistryOrNew returns the provider's registry, or a fresh private
// one when the provider is nil — for subsystems (the model checker)
// whose counters also feed their structured results and therefore
// always need somewhere to count.
func (p *Provider) RegistryOrNew() *Registry {
	if p != nil && p.Registry != nil {
		return p.Registry
	}
	return NewRegistry()
}

// Snapshot captures the registry; nil-safe (empty snapshot).
func (p *Provider) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{Schema: SchemaVersion}
	}
	return p.Registry.Snapshot()
}
