package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// ServePprof starts the Go pprof HTTP endpoints on addr (e.g.
// "localhost:6060", or "localhost:0" for an ephemeral port) in a
// background goroutine and returns the bound address. The server lives
// for the remainder of the process — it is meant for the long-running
// commands (atomig-mc, atomig-bench) whose exploration or measurement
// loops are worth profiling live.
func ServePprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		// The listener closes when the process exits; serve errors have
		// nowhere useful to go.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr().String(), nil
}
