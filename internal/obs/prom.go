package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4) so a live daemon can be scraped,
// and validates such scrapes (`atomig-bench -check-prom`). Metric
// names are mapped from the internal `subsystem.noun_verbed`
// convention to Prometheus conventions by PromName.

// PromName converts an internal metric name to its Prometheus form:
// an `atomig_` namespace prefix, dots and dashes folded to
// underscores. `pipeline.ports_completed` → `atomig_pipeline_ports_completed`.
func PromName(name string) string {
	mapped := strings.Map(func(r rune) rune {
		if r == '.' || r == '-' {
			return '_'
		}
		return r
	}, name)
	return "atomig_" + mapped
}

// EncodeProm renders the snapshot in Prometheus text format: counters
// and gauges as single samples, histograms as cumulative `le` bucket
// series plus `_sum` and `_count`. Output is sorted by metric name so
// scrapes diff cleanly.
func EncodeProm(snap Snapshot) []byte {
	var buf bytes.Buffer

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		fmt.Fprintf(&buf, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		fmt.Fprintf(&buf, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[name])
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		pn := PromName(name)
		fmt.Fprintf(&buf, "# TYPE %s histogram\n", pn)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.N
			fmt.Fprintf(&buf, "%s_bucket{le=\"%d\"} %d\n", pn, b.Upper, cum)
		}
		// Count/buckets race under concurrent observation; +Inf must be
		// the largest cumulative value to keep the series monotone.
		inf := h.Count
		if cum > inf {
			inf = cum
		}
		fmt.Fprintf(&buf, "%s_bucket{le=\"+Inf\"} %d\n", pn, inf)
		fmt.Fprintf(&buf, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(&buf, "%s_count %d\n", pn, inf)
	}
	return buf.Bytes()
}

var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promSample is one parsed exposition line.
type promSample struct {
	name  string // metric name without the {le=...} suffix
	le    string // bucket bound, "" for non-bucket samples
	value float64
}

var promLineRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]*)"\})? (\S+)$`)

// parseProm parses Prometheus text exposition into typed samples,
// checking line-level syntax as it goes.
func parseProm(data []byte) (types map[string]string, samples []promSample, err error) {
	types = make(map[string]string)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				if !promNameRE.MatchString(fields[2]) {
					return nil, nil, fmt.Errorf("prom: line %d: bad metric name %q", lineNo, fields[2])
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, nil, fmt.Errorf("prom: line %d: unknown type %q", lineNo, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		m := promLineRE.FindStringSubmatch(line)
		if m == nil {
			return nil, nil, fmt.Errorf("prom: line %d: malformed sample %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("prom: line %d: bad value %q", lineNo, m[4])
		}
		samples = append(samples, promSample{name: m[1], le: m[3], value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("prom: %w", err)
	}
	return types, samples, nil
}

// ValidateProm checks that data is well-formed Prometheus text
// exposition as EncodeProm produces it: every sample belongs to a
// declared TYPE, histogram bucket series are cumulative, sorted by
// bound and terminated by `+Inf`, and `_count` matches the `+Inf`
// bucket.
func ValidateProm(data []byte) error {
	types, samples, err := parseProm(data)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("prom: no samples")
	}
	// Group histogram series back together by base name.
	type histState struct {
		lastLE   float64
		lastCum  float64
		infSeen  bool
		infValue float64
		count    float64
		hasCount bool
	}
	hists := make(map[string]*histState)
	histBase := func(sampleName string) (string, string) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(sampleName, suf)
			if base != sampleName && types[base] == "histogram" {
				return base, suf
			}
		}
		return "", ""
	}
	for _, s := range samples {
		base, suf := histBase(s.name)
		if base == "" {
			if _, ok := types[s.name]; !ok {
				return fmt.Errorf("prom: sample %q has no TYPE declaration", s.name)
			}
			if s.le != "" {
				return fmt.Errorf("prom: non-histogram sample %q carries le", s.name)
			}
			continue
		}
		st := hists[base]
		if st == nil {
			st = &histState{lastLE: math.Inf(-1)}
			hists[base] = st
		}
		switch suf {
		case "_bucket":
			if st.infSeen {
				return fmt.Errorf("prom: histogram %q has buckets after +Inf", base)
			}
			if s.le == "+Inf" {
				st.infSeen = true
				st.infValue = s.value
				if s.value < st.lastCum {
					return fmt.Errorf("prom: histogram %q +Inf bucket %v below cumulative %v", base, s.value, st.lastCum)
				}
				continue
			}
			le, err := strconv.ParseFloat(s.le, 64)
			if err != nil {
				return fmt.Errorf("prom: histogram %q has bad le %q", base, s.le)
			}
			if le <= st.lastLE {
				return fmt.Errorf("prom: histogram %q buckets not sorted at le=%v", base, le)
			}
			if s.value < st.lastCum {
				return fmt.Errorf("prom: histogram %q not cumulative at le=%v", base, le)
			}
			st.lastLE, st.lastCum = le, s.value
		case "_sum":
			// No constraint beyond syntax: sums of negative observations
			// cannot occur here (histograms clamp), but scrapes race.
		case "_count":
			st.count, st.hasCount = s.value, true
		}
	}
	for base, st := range hists {
		if !st.infSeen {
			return fmt.Errorf("prom: histogram %q has no +Inf bucket", base)
		}
		if st.hasCount && st.count != st.infValue {
			return fmt.Errorf("prom: histogram %q _count %v != +Inf bucket %v", base, st.count, st.infValue)
		}
	}
	return nil
}

// CheckPromAgainst cross-checks a live scrape against an end-of-run
// metrics snapshot: every counter present in both must be ≤ the
// snapshot's final value (counters are monotonic, and the scrape
// happened no later), and at least one counter must overlap — a scrape
// that shares nothing with the run it claims to observe is wrong.
func CheckPromAgainst(promData, metricsData []byte) error {
	if err := ValidateProm(promData); err != nil {
		return err
	}
	if err := ValidateMetrics(metricsData); err != nil {
		return err
	}
	dec := bytes.NewReader(metricsData)
	var snap Snapshot
	if err := jsonDecodeStrict(dec, &snap); err != nil {
		return fmt.Errorf("prom: %w", err)
	}
	final := make(map[string]int64, len(snap.Counters))
	for name, v := range snap.Counters {
		final[PromName(name)] = v
	}
	types, samples, err := parseProm(promData)
	if err != nil {
		return err
	}
	matched := 0
	for _, s := range samples {
		if types[s.name] != "counter" {
			continue
		}
		want, ok := final[s.name]
		if !ok {
			continue
		}
		matched++
		if s.value > float64(want) {
			return fmt.Errorf("prom: counter %s scraped at %v exceeds final snapshot value %d", s.name, s.value, want)
		}
	}
	if matched == 0 {
		return fmt.Errorf("prom: scrape shares no counters with the snapshot")
	}
	return nil
}
