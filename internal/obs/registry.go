package obs

import (
	"fmt"
	"hash/maphash"
	"math"
	"math/bits"
	"regexp"
	"sync"
	"sync/atomic"
)

// SchemaVersion identifies the metrics snapshot JSON schema. Bump it
// when the snapshot shape changes; validators accept the current and
// the previous version. v2 added approximate p50/p95/p99 quantiles to
// histogram snapshots.
const SchemaVersion = "atomig.metrics/v2"

// SchemaV1 is the previous snapshot schema: identical except histogram
// snapshots carry no quantile fields. ValidateMetrics still accepts it
// so archived -metrics files keep validating.
const SchemaV1 = "atomig.metrics/v1"

// nameRE is the metric naming convention: `subsystem.noun_verbed` —
// a lowercase subsystem, a dot, then lowercase words joined by
// underscores (docs/OBSERVABILITY.md lists the catalog).
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*\.[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// ValidName reports whether name follows the naming convention.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Counter is a monotonically increasing atomic counter. All methods
// are nil-safe: a nil counter (disabled provider) is a no-op.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// AddGet increments by d and returns the new value (0 on nil) — for
// counters that double as admission checks (the model checker's
// execution budget).
func (c *Counter) AddGet(d int64) int64 {
	if c == nil {
		return 0
	}
	return c.v.Add(d)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations
// whose bit length is i, i.e. value 0 lands in bucket 0 and bucket i>0
// covers [2^(i-1), 2^i - 1]. Log-scale with power-of-two boundaries,
// so bucketing is one bits.Len64 — no float math on the hot path.
const histBuckets = 65

// Histogram is a fixed log-scale histogram of non-negative int64
// observations (negative values clamp to 0). Nil-safe like Counter.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return (int64(1) << i) - 1
}

// registryStripes is the stripe count of the registry's name→metric
// maps: resolution locks one stripe picked by the name's hash, so
// concurrent subsystems registering or resolving different metrics
// rarely contend. The metrics themselves are plain atomics and never
// take a lock.
const registryStripes = 16

// Registry is a lock-striped registry of named metrics. Resolving a
// handle (Counter/Gauge/Histogram) is cheap but not free — callers on
// hot paths resolve handles once and hold them.
type Registry struct {
	seed    maphash.Seed
	stripes [registryStripes]stripe
}

type stripe struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{seed: maphash.MakeSeed()}
	for i := range r.stripes {
		s := &r.stripes[i]
		s.counters = make(map[string]*Counter)
		s.gauges = make(map[string]*Gauge)
		s.histograms = make(map[string]*Histogram)
	}
	return r
}

func (r *Registry) stripe(name string) *stripe {
	return &r.stripes[maphash.String(r.seed, name)%registryStripes]
}

func checkName(name string) {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: metric name %q violates the subsystem.noun_verbed convention", name))
	}
}

// Counter returns the named counter, creating it on first use.
// Nil-safe: a nil registry yields a nil, no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	s := r.stripe(name)
	s.mu.RLock()
	c := s.counters[name]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	checkName(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.counters[name]; c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.stripe(name)
	s.mu.RLock()
	g := s.gauges[name]
	s.mu.RUnlock()
	if g != nil {
		return g
	}
	checkName(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if g = s.gauges[name]; g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.stripe(name)
	s.mu.RLock()
	h := s.histograms[name]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	checkName(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h = s.histograms[name]; h == nil {
		h = &Histogram{}
		s.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric, in the versioned
// JSON shape `-metrics` files carry.
type Snapshot struct {
	Schema     string                       `json:"schema"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// HistogramSnapshot is one histogram's exported state. Buckets are
// sorted by upper bound and omit empty buckets. P50/P95/P99 are
// approximate quantiles (schema v2): each is the upper bound of the
// bucket the quantile falls in, so they are exact only up to the
// power-of-two bucket resolution and always upper bounds of the true
// value.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	P50     int64            `json:"p50,omitempty"`
	P95     int64            `json:"p95,omitempty"`
	P99     int64            `json:"p99,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Quantile returns the approximate q-quantile (0 < q ≤ 1) from the
// snapshot's buckets: the upper bound of the first bucket at which the
// cumulative count reaches ⌈q·count⌉. Returns 0 for an empty
// histogram.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count <= 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.N
		if cum >= rank {
			return b.Upper
		}
	}
	return h.Buckets[len(h.Buckets)-1].Upper
}

// BucketSnapshot is one non-empty histogram bucket: the inclusive
// upper bound of the value range and the observation count.
type BucketSnapshot struct {
	Upper int64 `json:"le"`
	N     int64 `json:"n"`
}

// Snapshot captures every registered metric. Concurrent updates during
// the capture are safe; each metric is read atomically (a histogram's
// count/sum/bucket reads are individually atomic, not mutually).
// Nil-safe: a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Schema:     SchemaVersion,
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.RLock()
		for name, c := range s.counters {
			snap.Counters[name] = c.Value()
		}
		for name, g := range s.gauges {
			snap.Gauges[name] = g.Value()
		}
		for name, h := range s.histograms {
			hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
			// Index order is upper-bound order, so the slice is sorted by
			// construction.
			for b := 0; b < histBuckets; b++ {
				if n := h.buckets[b].Load(); n > 0 {
					hs.Buckets = append(hs.Buckets, BucketSnapshot{Upper: BucketUpper(b), N: n})
				}
			}
			// Quantiles are derived from the bucket reads above, so they are
			// self-consistent even under concurrent observation.
			hs.P50 = hs.Quantile(0.50)
			hs.P95 = hs.Quantile(0.95)
			hs.P99 = hs.Quantile(0.99)
			snap.Histograms[name] = hs
		}
		s.mu.RUnlock()
	}
	return snap
}
