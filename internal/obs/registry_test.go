package obs

import (
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers counters, gauges and histograms from
// many goroutines while snapshots race the updates — the registry's
// concurrency contract, meant to run under `go test -race`.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Handles resolved inside the goroutine: resolution itself must
			// be concurrency-safe, not just the updates.
			c := r.Counter("test.events_counted")
			ga := r.Gauge("test.depth_tracked")
			h := r.Histogram("test.sizes_observed")
			for i := 0; i < iters; i++ {
				c.Inc()
				ga.Set(int64(i))
				h.Observe(int64(g*iters + i))
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counters["test.events_counted"]; got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	h := snap.Histograms["test.sizes_observed"]
	if h.Count != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*iters)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b.N
	}
	if total != h.Count {
		t.Errorf("bucket sum %d != count %d", total, h.Count)
	}
}

// TestHistogramBuckets pins the log-scale bucket boundaries.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.values_observed")
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, -5} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["test.values_observed"]
	if hs.Count != 10 || hs.Sum != 2072 {
		t.Fatalf("count=%d sum=%d, want 10/2072", hs.Count, hs.Sum)
	}
	want := map[int64]int64{
		0:    2, // 0 and -5 (clamped)
		1:    1, // 1
		3:    2, // 2, 3
		7:    2, // 4, 7
		15:   1, // 8
		1023: 1,
		2047: 1, // 1024
	}
	got := make(map[int64]int64)
	for _, b := range hs.Buckets {
		got[b.Upper] = b.N
	}
	for up, n := range want {
		if got[up] != n {
			t.Errorf("bucket le=%d: n=%d, want %d (all: %v)", up, got[up], n, hs.Buckets)
		}
	}
	if len(got) != len(want) {
		t.Errorf("bucket set %v, want %v", got, want)
	}
}

// TestNamingConvention: the registry enforces subsystem.noun_verbed.
func TestNamingConvention(t *testing.T) {
	for _, ok := range []string{"mc.executions_pruned", "pipeline.spinloops_found", "vm.steps_executed", "a.b"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "noDot", "Upper.case", "mc.", ".pruned", "mc.Pruned", "mc.pruned-states", "mc.pruned_", "mc..x", "two.dots.deep_"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("registering an invalid name did not panic")
		}
	}()
	NewRegistry().Counter("BadName")
}

// TestNilSafety: the disabled-provider path must be a no-op with zero
// allocations — the zero-cost seam contract (docs/OBSERVABILITY.md).
func TestNilSafety(t *testing.T) {
	var p *Provider
	c := p.Counter("mc.executions_pruned")
	g := p.Gauge("mc.workers_active")
	h := p.Histogram("mc.fragment_executions")
	tk := p.Track("mc.worker-00")
	lg := p.Log()
	if c != nil || g != nil || h != nil || tk != nil || lg != nil {
		t.Fatal("nil provider handed out non-nil handles")
	}
	var rec *Recorder
	if allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(7)
		h.Observe(42)
		sp := tk.Begin("mc.fragment")
		sp.Arg("execs", 3)
		sp.End()
		tk.Instant("mc.fragment_donated")
		lg.Event("serve.request_admitted").Str("id", "r1").Int("slot", 3).Bool("ok", true).Emit()
		lg.SetRecorder(rec)
		rec.add(0, 0, nil)
	}); allocs != 0 {
		t.Errorf("disabled seam allocates %.1f objects per op, want 0", allocs)
	}
	if lg.Recorder() != nil || rec.Dump("x", nil) != nil {
		t.Error("nil logger/recorder returned non-nil state")
	}
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil handles returned non-zero values")
	}
	snap := p.Snapshot()
	if snap.Schema != SchemaVersion {
		t.Errorf("nil provider snapshot schema %q", snap.Schema)
	}
}
