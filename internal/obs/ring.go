package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// FlightSchema identifies the flight-recorder dump JSON schema.
const FlightSchema = "atomig.flightrec/v1"

// recorderStripes spreads concurrent appends across independent rings
// so a storm of workers never serializes on one lock. Dumps merge the
// stripes back into one timeline.
const recorderStripes = 8

// MaxRecordBytes caps one recorded event line. An oversized line is
// replaced by a stub naming the original size, so a pathological event
// cannot blow the recorder's memory bound or corrupt the dump.
// Exported so tests can assert dump-size bounds against it.
const MaxRecordBytes = 4096

// Recorder is the bounded in-memory flight recorder: a lock-striped
// ring buffer holding the last N emitted events (and completed spans,
// when a tracer mirrors into it). It exists to answer "what was the
// daemon doing just before this?" — the serve watchdog, panic
// containment, and overload shedding dump it to a crash file.
//
// All methods are nil-safe; a nil recorder records nothing.
type Recorder struct {
	stripes [recorderStripes]recStripe
	next    atomic.Uint64 // round-robin stripe cursor
}

type recStripe struct {
	mu   sync.Mutex
	buf  []record // ring of len cap(stripe); zero ts means empty slot
	head int      // next write position
}

type record struct {
	ts   int64
	seq  int64
	line []byte // one JSON object, newline-terminated
}

// NewRecorder returns a recorder retaining roughly the last `capacity`
// events (rounded up to a multiple of the stripe count; capacity ≤ 0
// selects the default of 1024).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	per := (capacity + recorderStripes - 1) / recorderStripes
	r := &Recorder{}
	for i := range r.stripes {
		r.stripes[i].buf = make([]record, per)
	}
	return r
}

// add appends one event line. The line is copied: callers recycle
// their buffers. Nil-safe.
func (r *Recorder) add(ts, seq int64, line []byte) {
	if r == nil {
		return
	}
	if len(line) > MaxRecordBytes {
		line = []byte(fmt.Sprintf(
			"{\"ts_us\":%d,\"seq\":%d,\"ev\":\"obs.record_truncated\",\"original_bytes\":%d}\n",
			ts, seq, len(line)))
	}
	s := &r.stripes[r.next.Add(1)%recorderStripes]
	s.mu.Lock()
	rec := &s.buf[s.head]
	rec.ts, rec.seq = ts, seq
	rec.line = append(rec.line[:0], line...)
	s.head = (s.head + 1) % len(s.buf)
	s.mu.Unlock()
}

// Dump renders the recorder's contents as one JSON document: the
// retained events merged across stripes and sorted into timeline order
// (timestamp, then sequence number), wrapped in an envelope naming the
// dump reason and any caller tags (e.g. the wedged request's ID).
// Nil-safe: a nil recorder dumps nothing and returns nil.
func (r *Recorder) Dump(reason string, tags map[string]string) []byte {
	if r == nil {
		return nil
	}
	var recs []record
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for _, rec := range s.buf {
			if rec.line != nil {
				recs = append(recs, record{ts: rec.ts, seq: rec.seq, line: append([]byte(nil), rec.line...)})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].ts != recs[j].ts {
			return recs[i].ts < recs[j].ts
		}
		return recs[i].seq < recs[j].seq
	})

	var buf bytes.Buffer
	buf.WriteString(`{"schema":`)
	buf.Write(appendJSONString(nil, FlightSchema))
	buf.WriteString(`,"reason":`)
	buf.Write(appendJSONString(nil, reason))
	if len(tags) > 0 {
		keys := make([]string, 0, len(tags))
		for k := range tags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteString(`,"tags":{`)
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.Write(appendJSONString(nil, k))
			buf.WriteByte(':')
			buf.Write(appendJSONString(nil, tags[k]))
		}
		buf.WriteByte('}')
	}
	buf.WriteString(`,"events":[`)
	for i, rec := range recs {
		if i > 0 {
			buf.WriteString(",\n")
		} else {
			buf.WriteByte('\n')
		}
		buf.Write(bytes.TrimRight(rec.line, "\n"))
	}
	buf.WriteString("\n]}\n")
	return buf.Bytes()
}

// flightDump mirrors the dump envelope for validation.
type flightDump struct {
	Schema string            `json:"schema"`
	Reason string            `json:"reason"`
	Tags   map[string]string `json:"tags,omitempty"`
	Events []flightEvent     `json:"events"`
}

type flightEvent struct {
	TSUS int64  `json:"ts_us"`
	Seq  int64  `json:"seq"`
	Ev   string `json:"ev"`
}

// ValidateFlight checks that data is a well-formed flight-recorder
// dump: the schema matches, a reason is present, every event names an
// `ev` and timestamps are non-decreasing.
func ValidateFlight(data []byte) error {
	var d flightDump
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("flight: not a dump: %w", err)
	}
	if d.Schema != FlightSchema {
		return fmt.Errorf("flight: schema %q, want %q", d.Schema, FlightSchema)
	}
	if d.Reason == "" {
		return fmt.Errorf("flight: dump has no reason")
	}
	last := int64(-1)
	for i, ev := range d.Events {
		if ev.Ev == "" {
			return fmt.Errorf("flight: event %d has no ev name", i)
		}
		if ev.TSUS < last {
			return fmt.Errorf("flight: event %d (%s) out of order: ts_us %d after %d", i, ev.Ev, ev.TSUS, last)
		}
		last = ev.TSUS
	}
	return nil
}

// spanEvent formats a completed span as a flight-recorder event; the
// tracer calls it for every Span.End when MirrorTo attached a logger,
// so a flight dump interleaves completed spans with log events.
func spanEvent(lg *Logger, track, name string, durUS int64) {
	lg.Event("obs.span_completed").
		Str("track", track).
		Str("span", name).
		Int("dur_us", durUS).
		Emit()
}
