package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// The tracer records hierarchical spans onto named tracks and exports
// them in the Chrome trace_event JSON format (the `traceEvents` array
// understood by chrome://tracing, Perfetto and speedscope), so a
// parallel model-checker run renders as one timeline lane per worker.
//
// A Track maps to one trace `tid`; spans on a track must be opened and
// closed in LIFO order by a single goroutine at a time (each model-
// checker worker owns its track; the pipeline runs its track from the
// coordinating goroutine). The exporter sorts events by timestamp with
// a stable sequence tiebreak, and ValidateTrace checks the resulting
// stream is well formed: matched B/E pairs per track, LIFO nesting,
// non-decreasing timestamps.

// TraceEvent is one Chrome trace_event entry.
type TraceEvent struct {
	Name string `json:"name"`
	// Ph is the event phase: "B"/"E" bracket a span, "i" is an instant
	// event, "M" is metadata (track names).
	Ph  string  `json:"ph"`
	TS  float64 `json:"ts"` // microseconds since trace start
	PID int     `json:"pid"`
	TID int     `json:"tid"`
	Cat string  `json:"cat,omitempty"`
	// Scope of an instant event ("t" = thread-scoped).
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`

	// seq orders events that share a timestamp (B before its children,
	// children's E before the parent's). Not exported to JSON.
	seq int64
}

// Tracer collects trace events. Safe for concurrent use: recording
// takes one short mutex hold; tracing is an opt-in diagnostic mode, so
// its cost is not on the zero-cost (nil-provider) path.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	nowNS   func() int64 // test hook: nanoseconds since start
	events  []TraceEvent
	tracks  map[string]*Track
	nextTID int
	nextSeq int64
	mirror  atomic.Pointer[Logger] // completed spans echo here (flight recorder)
}

// MirrorTo makes every subsequently completed span also emit one
// compact `obs.span_completed` event into lg (and, through it, the
// attached flight recorder). Nil-safe; pass nil to stop mirroring.
func (t *Tracer) MirrorTo(lg *Logger) {
	if t != nil {
		t.mirror.Store(lg)
	}
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	t := &Tracer{start: time.Now(), tracks: make(map[string]*Track)}
	t.nowNS = func() int64 { return time.Since(t.start).Nanoseconds() }
	return t
}

// newTracerAt returns a tracer driven by an explicit clock —
// deterministic timestamps for golden-file tests.
func newTracerAt(nowNS func() int64) *Tracer {
	return &Tracer{start: time.Now(), nowNS: nowNS, tracks: make(map[string]*Track)}
}

// record appends one event with the tracer's clock and sequence,
// returning the nanosecond timestamp it stamped (span durations reuse
// it rather than reading the clock twice).
func (t *Tracer) record(ev TraceEvent) int64 {
	t.mu.Lock()
	ns := t.nowNS()
	ev.TS = float64(ns) / 1e3
	ev.seq = t.nextSeq
	t.nextSeq++
	t.events = append(t.events, ev)
	t.mu.Unlock()
	return ns
}

// Track returns the track with the given name, creating it (and its
// thread_name metadata event) on first use. The same name always maps
// to the same tid, so sequential phases reuse their lane.
func (t *Tracer) Track(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tk := t.tracks[name]
	if tk == nil {
		tk = &Track{t: t, tid: t.nextTID, name: name}
		t.nextTID++
		t.tracks[name] = tk
		t.events = append(t.events, TraceEvent{
			Name: "thread_name", Ph: "M", TID: tk.tid,
			Args: map[string]any{"name": name},
			seq:  t.nextSeq,
		})
		t.nextSeq++
	}
	t.mu.Unlock()
	return tk
}

// Track is one timeline lane. All methods are nil-safe, so a disabled
// provider's call sites cost a nil check and nothing else.
type Track struct {
	t    *Tracer
	tid  int
	name string
}

// Begin opens a span on the track and returns it for End (and Arg).
// Spans on one track must close in LIFO order.
func (tk *Track) Begin(name string) *Span {
	if tk == nil {
		return nil
	}
	ns := tk.t.record(TraceEvent{Name: name, Ph: "B", TID: tk.tid})
	return &Span{tk: tk, name: name, startNS: ns}
}

// Instant records a point event on the track.
func (tk *Track) Instant(name string) {
	if tk == nil {
		return
	}
	tk.t.record(TraceEvent{Name: name, Ph: "i", TID: tk.tid, Scope: "t"})
}

// Span is an open trace span; close it with End.
type Span struct {
	tk      *Track
	name    string
	startNS int64
	mu      sync.Mutex
	args    map[string]any
}

// Arg attaches a key/value to the span (rendered on the closing event;
// trace viewers merge B/E args). Returns the span for chaining.
// Nil-safe.
func (s *Span) Arg(key string, v any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = v
	s.mu.Unlock()
	return s
}

// End closes the span. Nil-safe; calling End twice records a spurious
// E event, so don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	args := s.args
	s.args = nil
	s.mu.Unlock()
	t := s.tk.t
	endNS := t.record(TraceEvent{Name: s.name, Ph: "E", TID: s.tk.tid, Args: args})
	if lg := t.mirror.Load(); lg != nil {
		spanEvent(lg, s.tk.name, s.name, (endNS-s.startNS)/1e3)
	}
}

// Events returns a copy of the recorded events sorted by timestamp
// (stable: recording order breaks ties), with metadata events first.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	evs := make([]TraceEvent, len(t.events))
	copy(evs, t.events)
	t.mu.Unlock()
	// Insertion sort on (isMeta desc, TS, seq); traces are small and
	// mostly ordered already (one mutex serializes recording).
	less := func(a, b TraceEvent) bool {
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.seq < b.seq
	}
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && less(evs[j], evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	return evs
}
