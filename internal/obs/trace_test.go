package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestSpanTreeWellFormed builds a nested span tree across several
// tracks (including concurrent tracks, as the parallel model checker
// produces) and checks the export validates: matched B/E pairs in LIFO
// order per track, timestamps sorted.
func TestSpanTreeWellFormed(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := tr.Track([]string{"mc.worker-00", "mc.worker-01", "mc.worker-02", "mc.worker-03"}[w])
			worker := tk.Begin("mc.worker")
			for f := 0; f < 3; f++ {
				frag := tk.Begin("mc.fragment").Arg("index", f)
				tk.Instant("mc.fragment_donated")
				inner := tk.Begin("mc.backtrack")
				inner.End()
				frag.End()
			}
			worker.End()
		}(w)
	}
	wg.Wait()
	data, err := EncodeTrace(tr)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := ValidateTrace(data); err != nil {
		t.Fatalf("exported span tree is not well formed: %v\n%s", err, data)
	}

	evs := tr.Events()
	// One thread_name metadata event per track, leading the stream.
	meta := 0
	for _, ev := range evs {
		if ev.Ph == "M" {
			meta++
		}
	}
	if meta != 4 {
		t.Errorf("%d metadata events, want 4", meta)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Ph == "M" && evs[i-1].Ph != "M" {
			t.Errorf("metadata event %d not at the head of the stream", i)
		}
		if evs[i].Ph != "M" && evs[i-1].Ph != "M" && evs[i].TS < evs[i-1].TS {
			t.Errorf("event %d out of order", i)
		}
	}
}

// TestValidateTraceRejections: the validator catches the failure modes
// it exists for.
func TestValidateTraceRejections(t *testing.T) {
	cases := []struct {
		name, events, want string
	}{
		{"unmatched E", `[{"name":"x","ph":"E","ts":1,"pid":0,"tid":0}]`, "no open span"},
		{"crossed pairs", `[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0},{"name":"b","ph":"B","ts":2,"pid":0,"tid":0},{"name":"a","ph":"E","ts":3,"pid":0,"tid":0},{"name":"b","ph":"E","ts":4,"pid":0,"tid":0}]`, "open span is"},
		{"dangling B", `[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0}]`, "unclosed"},
		{"unsorted", `[{"name":"a","ph":"i","ts":5,"pid":0,"tid":0,"s":"t"},{"name":"b","ph":"i","ts":1,"pid":0,"tid":0,"s":"t"}]`, "out of order"},
		{"bad phase", `[{"name":"a","ph":"Q","ts":1,"pid":0,"tid":0}]`, "unknown phase"},
		{"nameless", `[{"name":"","ph":"B","ts":1,"pid":0,"tid":0}]`, "no name"},
	}
	for _, tc := range cases {
		data := `{"traceEvents":` + tc.events + `,"displayTimeUnit":"ms"}`
		err := ValidateTrace([]byte(data))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := ValidateTrace([]byte(`{"traceEvents":[],"displayTimeUnit":"ms"}`)); err != nil {
		t.Errorf("empty trace rejected: %v", err)
	}
}

// TestValidateMetricsRejections mirrors the metrics-side validator.
func TestValidateMetricsRejections(t *testing.T) {
	good := New()
	good.Counter("mc.executions_pruned").Add(3)
	good.Histogram("mc.fragment_executions").Observe(5)
	data, err := EncodeMetrics(good.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(data); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	cases := []struct {
		name, body, want string
	}{
		{"wrong schema", `{"schema":"atomig.metrics/v0","counters":{},"gauges":{},"histograms":{}}`, "schema"},
		{"bad name", `{"schema":"atomig.metrics/v1","counters":{"NotValid":1},"gauges":{},"histograms":{}}`, "naming convention"},
		{"bucket mismatch", `{"schema":"atomig.metrics/v1","counters":{},"gauges":{},"histograms":{"mc.fragment_executions":{"count":2,"sum":5,"buckets":[{"le":7,"n":1}]}}}`, "sum to"},
		{"unsorted buckets", `{"schema":"atomig.metrics/v1","counters":{},"gauges":{},"histograms":{"mc.fragment_executions":{"count":2,"sum":5,"buckets":[{"le":7,"n":1},{"le":3,"n":1}]}}}`, "not sorted"},
		{"unknown field", `{"schema":"atomig.metrics/v1","counters":{},"gauges":{},"histograms":{},"extra":1}`, "unknown field"},
		{"not json", `weights=heavy`, "not a snapshot"},
	}
	for _, tc := range cases {
		err := ValidateMetrics([]byte(tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestTraceArgsSurvive: span args land on the closing event as JSON.
func TestTraceArgsSurvive(t *testing.T) {
	tr := NewTracer()
	tk := tr.Track("pipeline")
	tk.Begin("pipeline.port").Arg("spinloops", 2).Arg("module", "seqlock").End()
	data, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"spinloops": 2`) || !strings.Contains(string(data), `"seqlock"`) {
		t.Errorf("args missing from export:\n%s", data)
	}
}
