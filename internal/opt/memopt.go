package opt

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// forwardStores performs block-local store-to-load forwarding for plain
// accesses: a plain load that directly follows a plain store to the
// same address value reuses the stored value. Any intervening write,
// call, fence, or atomic access invalidates the knowledge (writes
// through a different pointer may alias, so any store clears everything
// except its own entry).
func forwardStores(f *ir.Func) int {
	replaced := make(map[*ir.Instr]ir.Value)
	for _, b := range f.Blocks {
		known := make(map[ir.Value]ir.Value) // address value -> last stored value
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				if in.Ord.Atomic() || in.Volatile {
					known = map[ir.Value]ir.Value{}
					continue
				}
				addr, val := in.Args[0], in.Args[1]
				known = map[ir.Value]ir.Value{addr: val}
			case ir.OpLoad:
				if in.Ord.Atomic() || in.Volatile {
					known = map[ir.Value]ir.Value{}
					continue
				}
				if v, ok := known[in.Args[0]]; ok {
					replaced[in] = v
				}
			case ir.OpCmpXchg, ir.OpRMW, ir.OpFence, ir.OpCall:
				known = map[ir.Value]ir.Value{}
			}
		}
	}
	if len(replaced) == 0 {
		return 0
	}
	f.Instrs(func(in *ir.Instr) {
		for i, a := range in.Args {
			if ai, ok := a.(*ir.Instr); ok {
				if v, ok := replaced[ai]; ok {
					in.Args[i] = v
				}
			}
		}
	})
	return len(replaced)
}

// hoistInvariantLoads is the LICM fragment that matters for the paper's
// section 3.2 story: a plain, non-volatile load whose address is loop-
// invariant, inside a loop that contains no writes, calls, fences or
// atomic accesses, is hoisted to the loop's preheader. Under sequential
// semantics this is always sound. For an *unported* spinloop it turns
// `while (flag == 0) {}` into an infinite loop reading a register —
// which is why accesses used for synchronization must become volatile
// or atomic before the optimizer runs.
func hoistInvariantLoads(f *ir.Func) int {
	dom := analysis.Dominators(f)
	loops := analysis.FindLoops(f, dom)
	if len(loops) == 0 {
		return 0
	}
	preds := f.Preds()
	hoisted := 0
	for _, loop := range loops {
		if loopHasMemoryEffects(loop) {
			continue
		}
		pre := preheader(loop, preds)
		if pre == nil {
			continue
		}
		for b := range loop.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if canHoistLoad(in, loop) {
					insertBeforeTerminator(pre, in)
					hoisted++
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
	}
	return hoisted
}

// loopHasMemoryEffects reports whether the loop body contains anything
// that could change or observe memory ordering: stores, RMWs, calls,
// fences, volatile or atomic accesses.
func loopHasMemoryEffects(loop *analysis.Loop) bool {
	for b := range loop.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore, ir.OpCmpXchg, ir.OpRMW, ir.OpFence, ir.OpCall:
				return true
			case ir.OpLoad:
				if in.Ord.Atomic() || in.Volatile {
					return true
				}
			}
		}
	}
	return false
}

// preheader returns the unique out-of-loop predecessor of the header.
func preheader(loop *analysis.Loop, preds map[*ir.Block][]*ir.Block) *ir.Block {
	var pre *ir.Block
	for _, p := range preds[loop.Header] {
		if loop.Blocks[p] {
			continue
		}
		if pre != nil {
			return nil // multiple entries
		}
		pre = p
	}
	return pre
}

// canHoistLoad reports whether the instruction is a plain load whose
// address is loop-invariant.
func canHoistLoad(in *ir.Instr, loop *analysis.Loop) bool {
	if in.Op != ir.OpLoad || in.Ord.Atomic() || in.Volatile {
		return false
	}
	switch a := in.Args[0].(type) {
	case *ir.Global, *ir.Param:
		return true
	case *ir.Instr:
		return !loop.Contains(a)
	}
	return false
}

// insertBeforeTerminator moves an instruction to the end of blk, just
// before its terminator.
func insertBeforeTerminator(blk *ir.Block, in *ir.Instr) {
	in.Blk = blk
	n := len(blk.Instrs)
	blk.Instrs = append(blk.Instrs, nil)
	copy(blk.Instrs[n:], blk.Instrs[n-1:])
	blk.Instrs[n-1] = in
}
