// Package opt implements the "apply any outstanding optimizations
// (e.g. -O2)" stage of the paper's workflow (Figure 2): the application
// is compiled without optimizations, analyzed and transformed, and only
// then optimized, so that the inserted atomics are visible to — and
// respected by — the optimizer.
//
// The passes are deliberately standard and deliberately sequential-
// semantics-based: constant folding, branch folding with unreachable-
// block removal, block-local store-to-load forwarding, loop-invariant
// load hoisting, and dead-instruction elimination. Atomic and volatile
// accesses are optimization barriers, exactly as in a production
// compiler. That asymmetry is the point of the paper's section 3.2: on
// an *unported* program these passes legally hoist the load out of a
// spinloop and break it; on the atomig-ported program the seq_cst load
// is untouchable. TestOptimizerBreaksUnportedSpinloop demonstrates it.
package opt

import (
	"repro/internal/ir"
)

// Stats reports what the optimizer did.
type Stats struct {
	Folded        int // constant-folded instructions
	Forwarded     int // store-to-load forwards
	Hoisted       int // loop-invariant loads hoisted
	DeadRemoved   int // dead instructions removed
	BlocksRemoved int // unreachable blocks removed
}

// Optimize runs the pass pipeline over every function to a local
// fixpoint (two rounds cover the pass interactions that matter).
func Optimize(m *ir.Module) Stats {
	var st Stats
	for _, f := range m.Funcs {
		for round := 0; round < 2; round++ {
			st.Folded += foldConstants(f)
			st.BlocksRemoved += foldBranches(f)
			st.Forwarded += forwardStores(f)
			st.Hoisted += hoistInvariantLoads(f)
			st.DeadRemoved += removeDead(f)
		}
	}
	return st
}

// constValue extracts a constant operand.
func constValue(v ir.Value) (int64, bool) {
	c, ok := v.(*ir.ConstInt)
	if !ok {
		return 0, false
	}
	return c.V, true
}

// foldConstants replaces constant binary/compare instructions with
// constants in their users.
func foldConstants(f *ir.Func) int {
	folded := make(map[*ir.Instr]int64)
	n := 0
	f.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.OpBin:
			a, okA := constValue(in.Args[0])
			b, okB := constValue(in.Args[1])
			if !okA || !okB {
				return
			}
			if (in.BinKind == ir.Div || in.BinKind == ir.Rem) && b == 0 {
				return // preserve the runtime fault
			}
			folded[in] = evalBin(in.BinKind, a, b)
			n++
		case ir.OpICmp:
			a, okA := constValue(in.Args[0])
			b, okB := constValue(in.Args[1])
			if !okA || !okB {
				return
			}
			folded[in] = evalICmp(in.Pred, a, b)
			n++
		}
	})
	if n == 0 {
		return 0
	}
	// Replace uses; the folded instructions become dead and are removed
	// by removeDead.
	f.Instrs(func(in *ir.Instr) {
		for i, a := range in.Args {
			if ai, ok := a.(*ir.Instr); ok {
				if v, ok := folded[ai]; ok {
					in.Args[i] = ir.Const(v)
				}
			}
		}
	})
	return n
}

func evalBin(k ir.BinKind, a, b int64) int64 {
	switch k {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		return a / b
	case ir.Rem:
		return a % b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return a << uint(b&63)
	default:
		return a >> uint(b&63)
	}
}

func evalICmp(p ir.Pred, a, b int64) int64 {
	var r bool
	switch p {
	case ir.EQ:
		r = a == b
	case ir.NE:
		r = a != b
	case ir.LT:
		r = a < b
	case ir.LE:
		r = a <= b
	case ir.GT:
		r = a > b
	default:
		r = a >= b
	}
	if r {
		return 1
	}
	return 0
}

// foldBranches rewrites conditional branches on constants and removes
// blocks that become unreachable. Returns removed block count.
func foldBranches(f *ir.Func) int {
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpBr || t.Else == nil {
			continue
		}
		v, ok := constValue(t.Args[0])
		if !ok {
			continue
		}
		if v == 0 {
			t.Then = t.Else
		}
		t.Else = nil
		t.Args = nil
	}
	// Remove unreachable blocks (keep the entry).
	reach := map[*ir.Block]bool{}
	var stack []*ir.Block
	entry := f.Entry()
	reach[entry] = true
	stack = append(stack, entry)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	kept := f.Blocks[:0]
	removed := 0
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	f.Blocks = kept
	return removed
}

// hasSideEffects reports whether removing the instruction could change
// program behavior.
func hasSideEffects(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpStore, ir.OpCmpXchg, ir.OpRMW, ir.OpFence, ir.OpCall, ir.OpBr, ir.OpRet:
		return true
	case ir.OpLoad:
		// Atomic and volatile loads synchronize; they must stay.
		return in.Ord.Atomic() || in.Volatile
	case ir.OpBin:
		// Division can fault.
		if in.BinKind == ir.Div || in.BinKind == ir.Rem {
			if _, isConst := in.Args[1].(*ir.ConstInt); !isConst {
				return true
			}
			v, _ := constValue(in.Args[1])
			return v == 0
		}
	}
	return false
}

// removeDead deletes instructions whose results are unused and which
// have no side effects. Allocas are kept (their addresses index frames).
func removeDead(f *ir.Func) int {
	used := map[*ir.Instr]bool{}
	f.Instrs(func(in *ir.Instr) {
		for _, a := range in.Args {
			if ai, ok := a.(*ir.Instr); ok {
				used[ai] = true
			}
		}
	})
	removed := 0
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !used[in] && !hasSideEffects(in) && in.Op != ir.OpAlloca {
				removed++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return removed
}
