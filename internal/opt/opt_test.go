package opt_test

import (
	"testing"

	"repro/internal/atomig"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/minic"
	"repro/internal/opt"
	"repro/internal/vm"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	res, err := minic.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Module
}

func runSC(t *testing.T, m *ir.Module, entries []string, maxSteps int64) *vm.Result {
	t.Helper()
	res, err := vm.Run(m, vm.Options{
		Model: memmodel.ModelSC, Entries: entries, MaxSteps: maxSteps,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConstantFoldingAndDCE(t *testing.T) {
	m := compile(t, `
int g;
void main_thread(void) {
  int a = 2 * 3 + 4;     // folds to 10
  int unused = a * 100;  // dead after folding chain
  g = a;
  print(g);
}
`)
	before := m.NumInstrs()
	st := opt.Optimize(m)
	if st.Folded == 0 {
		t.Error("nothing folded")
	}
	if st.DeadRemoved == 0 {
		t.Error("nothing removed")
	}
	if m.NumInstrs() >= before {
		t.Errorf("instruction count did not shrink: %d -> %d", before, m.NumInstrs())
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	res := runSC(t, m, []string{"main_thread"}, 0)
	if res.Status != vm.StatusDone || res.Output[0] != 10 {
		t.Fatalf("optimized program wrong: %s %v", res.Status, res.Output)
	}
}

func TestBranchFoldingRemovesBlocks(t *testing.T) {
	m := compile(t, `
int g;
void main_thread(void) {
  if (1 == 1) {
    g = 7;
  } else {
    g = 8;
  }
  print(g);
}
`)
	st := opt.Optimize(m)
	if st.BlocksRemoved == 0 {
		t.Error("no unreachable blocks removed")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	res := runSC(t, m, []string{"main_thread"}, 0)
	if res.Output[0] != 7 {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestStoreForwarding(t *testing.T) {
	m := compile(t, `
int g;
int h;
void main_thread(void) {
  g = 41;
  int a = g;      // forwarded from the store above
  h = a + 1;
  print(h);
}
`)
	st := opt.Optimize(m)
	if st.Forwarded == 0 {
		t.Error("no loads forwarded")
	}
	res := runSC(t, m, []string{"main_thread"}, 0)
	if res.Status != vm.StatusDone || res.Output[0] != 42 {
		t.Fatalf("status=%s output=%v", res.Status, res.Output)
	}
}

func TestForwardingRespectsAtomicsAndVolatile(t *testing.T) {
	m := compile(t, `
volatile int v;
_Atomic int a;
void main_thread(void) {
  v = 1;
  int x = v;   // volatile: must not forward
  a = 2;
  int y = a;   // atomic: must not forward
  print(x + y);
}
`)
	opt.Optimize(m)
	// Forwarding local slots is fine; the loads of @v and @a themselves
	// must survive untouched.
	var volLoad, atomLoad int
	m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if in.Op != ir.OpLoad {
			return
		}
		if g, ok := in.Args[0].(*ir.Global); ok {
			switch g.GName {
			case "v":
				volLoad++
			case "a":
				atomLoad++
			}
		}
	})
	if volLoad != 1 || atomLoad != 1 {
		t.Fatalf("volatile/atomic global loads = %d/%d, want 1/1", volLoad, atomLoad)
	}
	res := runSC(t, m, []string{"main_thread"}, 0)
	if res.Status != vm.StatusDone || res.Output[0] != 3 {
		t.Fatalf("status=%s output=%v", res.Status, res.Output)
	}
}

// TestOptimizerBreaksUnportedSpinloop is the executable form of the
// paper's section 3.2 claim: "standard compiler optimizations assume
// the program is sequential, and can easily break concurrent code".
// LICM hoists the plain flag load out of the spinloop, so the unported
// reader spins forever even though the writer completes; the
// atomig-ported program's seq_cst load is an optimization barrier and
// survives -O2 intact.
func TestOptimizerBreaksUnportedSpinloop(t *testing.T) {
	src := `
int flag;
int msg;
void writer(void) { msg = 1; flag = 1; }
void reader(void) {
  while (flag == 0) { }
  assert(msg == 1);
}
`
	// Unported + optimized: the reader never observes the store.
	m := compile(t, src)
	st := opt.Optimize(m)
	if st.Hoisted == 0 {
		t.Fatal("LICM did not hoist the spinloop load")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	res := runSC(t, m, []string{"reader", "writer"}, 200_000)
	if res.Status != vm.StatusStepLimit {
		t.Fatalf("optimized unported reader ended with %s, expected an infinite spin", res.Status)
	}

	// Ported + optimized: the seq_cst load stays in the loop.
	m2 := compile(t, src)
	ported, _, err := atomig.PortClone(m2, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st = opt.Optimize(ported)
	if st.Hoisted != 0 {
		t.Fatalf("LICM hoisted %d atomic loads", st.Hoisted)
	}
	for seed := int64(0); seed < 50; seed++ {
		res, err := vm.Run(ported, vm.Options{
			Model: memmodel.ModelSC, Entries: []string{"reader", "writer"},
			Seed: seed, MaxSteps: 200_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != vm.StatusDone {
			t.Fatalf("seed %d: ported+optimized reader ended with %s", seed, res.Status)
		}
	}
}

// TestOptimizePreservesCorpusSemantics: optimizing every ported corpus
// program keeps it verifiable and runnable.
func TestOptimizePreservesPortedPrograms(t *testing.T) {
	src := `
int seq;
int msg;
int out;
void writer(void) {
  seq = seq + 1;
  msg = 7;
  seq = seq + 1;
}
void reader(void) {
  int s;
  int data;
  do {
    s = seq;
    data = msg;
  } while (s % 2 != 0 || s != seq);
  out = data;
}
`
	m := compile(t, src)
	ported, _, err := atomig.PortClone(m, atomig.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fencesBefore := countFences(ported)
	opt.Optimize(ported)
	if err := ir.Verify(ported); err != nil {
		t.Fatal(err)
	}
	if got := countFences(ported); got != fencesBefore {
		t.Fatalf("optimizer changed fence count: %d -> %d", fencesBefore, got)
	}
	for seed := int64(0); seed < 50; seed++ {
		res, err := vm.Run(ported, vm.Options{
			Model: memmodel.ModelSC, Entries: []string{"reader", "writer"},
			Seed: seed, MaxSteps: 400_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != vm.StatusDone {
			t.Fatalf("seed %d: %s", seed, res.Status)
		}
	}
}

func countFences(m *ir.Module) int {
	n := 0
	m.EachInstr(func(_ *ir.Func, in *ir.Instr) {
		if in.Op == ir.OpFence {
			n++
		}
	})
	return n
}
