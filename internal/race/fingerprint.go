package race

import (
	"sort"

	"repro/internal/memmodel"
)

// Fingerprint hashes the detector's happens-before state: the thread
// clocks, every location's write/read epochs and synchronization
// clocks, and the global fence clock. The model checker mixes this into
// its visited-state hash when race mode is on, so a state is only
// pruned when the memory state AND the race-detection state match —
// without it, exploration could prune a path whose clock assignment
// would have exposed a race the first visit's assignment ordered.
func (d *Detector) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mixVC := func(v VC) {
		mix(uint64(len(v)))
		for _, c := range v {
			mix(uint64(c))
		}
	}
	mix(uint64(len(d.clocks)))
	for _, c := range d.clocks {
		mixVC(c)
	}
	mixVC(d.scClock)

	addrs := make([]memmodel.Addr, 0, len(d.locs))
	for a := range d.locs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		l := d.locs[a]
		mix(uint64(a))
		if l.hasWrite {
			mix(uint64(l.write.thread)<<32 | uint64(l.write.clock))
		} else {
			mix(0)
		}
		mix(uint64(len(l.reads)))
		for _, r := range l.reads {
			mix(uint64(r.thread)<<32 | uint64(r.clock))
		}
		mixVC(l.sync)
	}
	return h
}
