package race

import "sort"

// Key returns the canonical identity of a report: the unordered pair of
// access sites, the same key the detector deduplicates on. Two
// detectors observing different executions of the same program report
// the same race under the same key.
func (r *Report) Key() string {
	k1, k2 := SiteString(r.Prior.Site), SiteString(r.Current.Site)
	if k2 < k1 {
		k1, k2 = k2, k1
	}
	return k1 + "|" + k2
}

// ExecNewReports returns the reports first recorded since the last
// BeginExec — the findings attributable to the current execution. The
// parallel model checker uses it to tie each new race to the choice
// trace that exposed it.
func (d *Detector) ExecNewReports() []*Report { return d.reports[d.execStart:] }

// Adopt replaces the detector's findings with an externally merged
// list, rebuilding the dedup index so the detector keeps deduplicating
// correctly if it is reused for further sweeps. The parallel sweeps
// (race.Sweep, stress.Sweep) use it to publish MergeReports output
// through a regular detector.
func (d *Detector) Adopt(reports []*Report) {
	d.reports = append(d.reports[:0], reports...)
	d.seen = make(map[string]*Report, len(reports))
	for _, r := range reports {
		d.seen[r.Key()] = r
	}
	d.execStart = len(d.reports)
}

// MergeReports merges report lists from independent detectors (one per
// model-checker worker, one per sweep shard): duplicates collapse with
// summed occurrence counts, keeping the first list's representative,
// and the result is sorted by Key so the merged order is deterministic
// regardless of which detector found what first. max caps the merged
// list (0 = no cap).
func MergeReports(max int, lists ...[]*Report) []*Report {
	seen := make(map[string]*Report)
	keys := make([]string, 0, 16)
	for _, l := range lists {
		for _, r := range l {
			k := r.Key()
			if ex := seen[k]; ex != nil {
				ex.Count += r.Count
				continue
			}
			c := *r
			seen[k] = &c
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]*Report, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
