// Package race is a FastTrack-style dynamic happens-before data-race
// detector for VM executions (in the spirit of C11Tester's race oracle
// over a weak-memory execution engine). It observes every shared-memory
// event of an execution through the VM's event-hook seam and reports
// pairs of conflicting accesses — same location, at least one a write,
// at least one non-atomic — that are unordered by happens-before.
//
// Happens-before is mirrored from the memmodel view machinery, not
// re-invented: acquire loads synchronize with the release store of the
// exact message they read (the hook carries the view-machine message
// timestamp), SC fences synchronize through a global fence clock the
// way Machine.Fence joins the global SC view, and spawn/join/barrier
// edges follow the thread-view forks and joins of the VM. Whether an
// access counts as atomic is decided by its *static* ordering (C11
// semantics: a plain access is non-atomic everywhere), while the
// synchronization edges use the model's *effective* ordering
// (memmodel.EffectiveOrd) — so a TSO execution derives happens-before
// from every plain store/load pair, and races that TSO hardware hides
// are still reported as the migration gaps they are.
//
// In the AtoMig workflow the detector is the second correctness oracle
// after assertion checking: a correctly ported program's remaining
// plain accesses are all happens-before-ordered through the promoted
// synchronization accesses, so any reported race is exactly a
// migration gap (a sticky buddy the alias exploration missed, a spin
// control the detector skipped).
package race

import (
	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/vm"
)

// VC is a vector clock: one logical clock per thread index.
type VC []uint32

// get returns the clock component for thread i (0 when out of range).
func (v VC) get(i int) uint32 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

// join raises v to include o component-wise, growing as needed.
func (v *VC) join(o VC) {
	for i, c := range o {
		if i < len(*v) {
			if (*v)[i] < c {
				(*v)[i] = c
			}
		} else if c != 0 {
			for len(*v) < i {
				*v = append(*v, 0)
			}
			*v = append(*v, c)
		}
	}
}

// clone returns a copy of the clock.
func (v VC) clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Options configures a detector.
type Options struct {
	// MaxReports caps the number of distinct race reports retained
	// (further occurrences of known site pairs still bump their Count).
	// 0 selects 32.
	MaxReports int
	// Obs, when non-nil, publishes the detector's event stream to the
	// metrics registry (race.accesses_observed, race.reports_recorded).
	// Nil keeps the hot path free of counter updates.
	Obs *obs.Provider
}

// accessRec is the detector's record of one access: the FastTrack epoch
// (thread, clock component) plus the metadata a report needs.
type accessRec struct {
	thread int
	clock  uint32
	write  bool
	atomic bool
	ord    ir.MemOrder
	site   *ir.Instr
}

// locState is the per-location detector state: the epoch of the last
// write, the per-thread read epochs since that write, and the release
// clock attached to each message of the location's history.
type locState struct {
	write    accessRec
	hasWrite bool
	reads    []accessRec
	// rel maps a view-machine message timestamp to the vector clock the
	// writer released with it — the detector's mirror of Msg.Rel.
	rel map[int]VC
	// sync accumulates every release to the location; it is the
	// synchronization clock used when no message timestamp is available
	// (the flat SC backend), mirroring how an SC machine orders all
	// same-location accesses.
	sync VC
}

// Detector is a happens-before data-race detector. It implements
// vm.Hook; install it via vm.Options.Hook. A detector observes one
// execution at a time (call BeginExec between executions) and is not
// safe for concurrent use.
type Detector struct {
	model  memmodel.Model
	opts   Options
	clocks []VC
	locs   map[memmodel.Addr]*locState
	// scClock mirrors the machine's global SC view for fence
	// synchronization.
	scClock VC
	reports []*Report
	seen    map[string]*Report
	// execStart is len(reports) at the last BeginExec, so callers can
	// tell whether the current execution contributed new findings.
	execStart int
	// Registry counters (nil — a free no-op — without Options.Obs).
	cAccesses *obs.Counter
	cReports  *obs.Counter
}

// resolveMaxReports applies the default report cap (32) when the
// caller left MaxReports zero.
func resolveMaxReports(n int) int {
	if n == 0 {
		return 32
	}
	return n
}

// New returns a detector for executions under the given model.
func New(model memmodel.Model, opts Options) *Detector {
	opts.MaxReports = resolveMaxReports(opts.MaxReports)
	d := &Detector{
		model: model, opts: opts, seen: make(map[string]*Report),
		cAccesses: opts.Obs.Counter("race.accesses_observed"),
		cReports:  opts.Obs.Counter("race.reports_recorded"),
	}
	d.BeginExec()
	return d
}

// BeginExec resets the per-execution state (clocks, location epochs,
// fence clock) while keeping the accumulated race reports, so one
// detector can observe many executions (the model checker's exploration,
// a scheduler-mode sweep) and deduplicate findings across them.
func (d *Detector) BeginExec() {
	d.clocks = d.clocks[:0]
	d.locs = make(map[memmodel.Addr]*locState)
	d.scClock = nil
	d.execStart = len(d.reports)
}

// Reports returns the accumulated distinct race reports, in detection
// order.
func (d *Detector) Reports() []*Report { return d.reports }

// Races returns the number of distinct races found so far.
func (d *Detector) Races() int { return len(d.reports) }

// ExecFoundNew reports whether the execution since the last BeginExec
// contributed at least one previously unseen race.
func (d *Detector) ExecFoundNew() bool { return len(d.reports) > d.execStart }

// ensure grows the clock table to cover thread t, initializing a fresh
// thread's own component to 1 (epoch clock 0 means "no access").
func (d *Detector) ensure(t int) {
	for len(d.clocks) <= t {
		id := len(d.clocks)
		c := make(VC, id+1)
		c[id] = 1
		d.clocks = append(d.clocks, c)
	}
}

// loc returns (creating) the state of address a.
func (d *Detector) loc(a memmodel.Addr) *locState {
	l := d.locs[a]
	if l == nil {
		l = &locState{rel: make(map[int]VC)}
		d.locs[a] = l
	}
	return l
}

// ordered reports whether the recorded access happens-before thread t's
// current point.
func (d *Detector) ordered(rec accessRec, t int) bool {
	if rec.thread == t {
		return true // program order
	}
	return d.clocks[t].get(rec.thread) >= rec.clock
}

// release publishes thread t's clock: attaches it to the written
// message (when the view machine reported a timestamp), accumulates it
// in the location's sync clock, and advances t's own component so later
// accesses are not covered by this publication.
func (d *Detector) release(t int, l *locState, writeTS int) {
	rc := d.clocks[t].clone()
	if writeTS >= 0 {
		l.rel[writeTS] = rc
	}
	l.sync.join(rc)
	d.clocks[t][t]++
}

// acquire joins the synchronization clock of the message read: the
// exact released clock when a timestamp is available, the location's
// accumulated sync clock otherwise (flat SC backend).
func (d *Detector) acquire(t int, l *locState, readTS int) {
	if readTS >= 0 {
		if rc, ok := l.rel[readTS]; ok {
			d.clocks[t].join(rc)
		}
		return
	}
	d.clocks[t].join(l.sync)
}

// OnAccess implements vm.Hook.
func (d *Detector) OnAccess(ev vm.AccessEvent) {
	d.cAccesses.Inc()
	d.ensure(ev.Thread)
	switch ev.Kind {
	case vm.AccessLoad:
		eo := memmodel.EffectiveOrd(d.model, int(ev.Ord), false)
		d.read(ev, eo, ev.Ord.Atomic())
	case vm.AccessStore:
		eo := memmodel.EffectiveOrd(d.model, int(ev.Ord), true)
		d.write(ev, eo, ev.Ord.Atomic())
	case vm.AccessRMW:
		eo := memmodel.RMWOrd(d.model, int(ev.Ord))
		d.read(ev, eo.LoadPart(), true)
		d.write(ev, eo.StorePart(), true)
	case vm.AccessCasFail:
		eo := memmodel.RMWOrd(d.model, int(ev.Ord))
		d.read(ev, eo.LoadPart(), true)
	}
}

// read processes the read half of an access: acquire synchronization,
// then the read-vs-write race check, then the read epoch update.
func (d *Detector) read(ev vm.AccessEvent, eo memmodel.AccessOrd, atomic bool) {
	t := ev.Thread
	l := d.loc(ev.Addr)
	if eo.Acquires() {
		d.acquire(t, l, ev.ReadTS)
	}
	rec := accessRec{
		thread: t, clock: d.clocks[t][t],
		write: false, atomic: atomic, ord: ev.Ord, site: ev.Instr,
	}
	if l.hasWrite && !(atomic && l.write.atomic) && !d.ordered(l.write, t) {
		d.report(ev.Addr, l.write, rec)
	}
	// Keep at most one read epoch per thread since the last write.
	for i := range l.reads {
		if l.reads[i].thread == t {
			l.reads[i] = rec
			return
		}
	}
	l.reads = append(l.reads, rec)
}

// write processes the write half of an access: write-vs-write and
// write-vs-read race checks, epoch update, then release
// synchronization.
func (d *Detector) write(ev vm.AccessEvent, eo memmodel.AccessOrd, atomic bool) {
	t := ev.Thread
	l := d.loc(ev.Addr)
	rec := accessRec{
		thread: t, clock: d.clocks[t][t],
		write: true, atomic: atomic, ord: ev.Ord, site: ev.Instr,
	}
	if l.hasWrite && !(atomic && l.write.atomic) && !d.ordered(l.write, t) {
		d.report(ev.Addr, l.write, rec)
	}
	for _, r := range l.reads {
		if r.thread != t && !(atomic && r.atomic) && !d.ordered(r, t) {
			d.report(ev.Addr, r, rec)
		}
	}
	l.write = rec
	l.hasWrite = true
	l.reads = l.reads[:0]
	if eo.Releases() {
		d.release(t, l, ev.WriteTS)
	}
}

// OnFence implements vm.Hook, mirroring Machine.Fence: acquire fences
// join the global fence clock, release fences publish to it, SC (and
// acq_rel) fences do both.
func (d *Detector) OnFence(thread int, ord ir.MemOrder) {
	d.ensure(thread)
	switch ord {
	case ir.Acquire:
		d.clocks[thread].join(d.scClock)
	case ir.Release:
		d.scClock.join(d.clocks[thread])
		d.clocks[thread][thread]++
	default: // seq_cst, acq_rel
		d.clocks[thread].join(d.scClock)
		d.scClock.join(d.clocks[thread])
		d.clocks[thread][thread]++
	}
}

// OnSpawn implements vm.Hook: the child starts with the parent's clock
// (a spawned thread synchronizes with its creator), and both advance so
// their subsequent accesses are mutually concurrent.
func (d *Detector) OnSpawn(parent, child int) {
	d.ensure(parent)
	d.ensure(child)
	c := d.clocks[parent].clone()
	for len(c) <= child {
		c = append(c, 0)
	}
	c[child] = d.clocks[child].get(child) + 1
	d.clocks[child] = c
	d.clocks[parent][parent]++
}

// OnJoin implements vm.Hook: the joining thread absorbs the finished
// thread's clock.
func (d *Detector) OnJoin(t, joined int) {
	d.ensure(t)
	d.ensure(joined)
	d.clocks[t].join(d.clocks[joined])
}

// OnBarrier implements vm.Hook: all participants synchronize with one
// another, then each advances its own component.
func (d *Detector) OnBarrier(participants []int) {
	var all VC
	for _, p := range participants {
		d.ensure(p)
		all.join(d.clocks[p])
	}
	for _, p := range participants {
		d.clocks[p] = all.clone()
		d.clocks[p][p]++
	}
}

// report records a race, deduplicating by the (unordered) pair of
// access sites so one racy loop does not flood the findings.
func (d *Detector) report(a memmodel.Addr, prior, cur accessRec) {
	k1, k2 := SiteString(prior.site), SiteString(cur.site)
	if k2 < k1 {
		k1, k2 = k2, k1
	}
	key := k1 + "|" + k2
	if r := d.seen[key]; r != nil {
		r.Count++
		return
	}
	if len(d.reports) >= d.opts.MaxReports {
		return
	}
	r := &Report{
		Addr:    a,
		Loc:     reportLoc(prior.site, cur.site),
		Prior:   newAccess(prior, d.clockOf(prior.thread)),
		Current: newAccess(cur, d.clockOf(cur.thread)),
		Count:   1,
	}
	d.seen[key] = r
	d.reports = append(d.reports, r)
	d.cReports.Inc()
}

func (d *Detector) clockOf(t int) VC {
	if t < len(d.clocks) {
		return d.clocks[t].clone()
	}
	return nil
}

// reportLoc derives the symbolic location (global name or struct field)
// from whichever site has a resolvable address descriptor.
func reportLoc(sites ...*ir.Instr) alias.Loc {
	for _, s := range sites {
		if s == nil {
			continue
		}
		if addr := s.Addr(); addr != nil {
			if loc := alias.LocOf(addr); loc.Shared() {
				return loc
			}
		}
	}
	return alias.Loc{Kind: alias.LocUnknown}
}
