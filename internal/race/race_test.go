// Corpus integration tests for the race detector. These live in an
// external test package because they drive the atomig porting pipeline,
// which itself imports internal/race for race explanation.
package race_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/atomig"
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/leakcheck"
	"repro/internal/memmodel"
	"repro/internal/race"
	"repro/internal/transform"
	"repro/internal/vm"
)

func compileProgram(t *testing.T, name string) (*corpus.Program, *ir.Module) {
	t.Helper()
	p := corpus.Get(name)
	if p == nil {
		t.Fatalf("corpus program %q not registered", name)
	}
	m, err := p.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return p, m
}

// port applies the named strategy: the full atomig pipeline for
// programs with detectable synchronization patterns, the naive
// all-SC strategy for pure litmus races (which atomig legitimately
// leaves alone — they have no synchronization to seed from).
func port(t *testing.T, m *ir.Module, strategy string) {
	t.Helper()
	switch strategy {
	case "atomig":
		if _, err := atomig.Port(m, atomig.DefaultOptions()); err != nil {
			t.Fatalf("atomig.Port: %v", err)
		}
	case "naive":
		transform.Naive(m)
	default:
		t.Fatalf("unknown port strategy %q", strategy)
	}
}

// raceCases is the shared table: every program the detector must flag
// on the legacy source, with the port strategy whose output must be
// race-free.
var raceCases = []struct {
	name string
	port string
}{
	{"sb", "naive"},
	{"lb", "naive"},
	{"iriw", "naive"},
	{"corr", "naive"},
	{"mp", "atomig"},
	{"tas", "atomig"},
	{"seqlock-gap", "atomig"},
}

// TestLegacyProgramsRaceUnderEveryMode asserts the racy verdict for
// each corpus program under each scheduler mode separately: a single
// seeded execution per mode must already expose the race (these are
// all unconditional races — every interleaving contains the
// conflicting pair).
func TestLegacyProgramsRaceUnderEveryMode(t *testing.T) {
	for _, tc := range raceCases {
		for _, mode := range vm.AllSchedModes() {
			t.Run(tc.name+"/"+mode.String(), func(t *testing.T) {
				p, m := compileProgram(t, tc.name)
				res, err := race.Sweep(m, race.SweepOptions{
					Model:   memmodel.ModelWMM,
					Entries: p.MCEntries,
					Modes:   []vm.SchedMode{mode},
					Seeds:   2,
				})
				if err != nil {
					t.Fatalf("sweep: %v", err)
				}
				if res.Detector.Races() == 0 {
					t.Fatalf("no races reported for legacy %s under %s", tc.name, mode)
				}
			})
		}
	}
}

// TestPortedProgramsRaceFree is the negative control: the ported
// variant of every racy program must survive the full scheduler-mode
// sweep with zero races and zero execution failures.
func TestPortedProgramsRaceFree(t *testing.T) {
	for _, tc := range raceCases {
		t.Run(tc.name, func(t *testing.T) {
			p, m := compileProgram(t, tc.name)
			port(t, m, tc.port)
			res, err := race.Sweep(m, race.SweepOptions{
				Model:   memmodel.ModelWMM,
				Entries: p.MCEntries,
				Seeds:   4,
			})
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			if n := res.Detector.Races(); n != 0 {
				t.Fatalf("ported %s (%s) still races (%d reports):\n%s",
					tc.name, tc.port, n, race.FormatReports(res.Races()))
			}
			// Only the atomig-ported programs must also run clean: the
			// naive all-SC port eliminates races, but this machine's SC
			// atomics deliberately keep weak outcomes unless fenced (see
			// memmodel.EligibleReads), so sb's assert may still trip.
			if tc.port == "atomig" && len(res.Violations) != 0 {
				t.Fatalf("ported %s (%s) failed executions: %v", tc.name, tc.port, res.Violations)
			}
		})
	}
}

// TestSeqlockGapReportsExactField is the issue's acceptance check: the
// migration-gap program must be flagged with a report naming the struct
// field the port should have promoted (%gen:0, the generation counter
// the writer still stores with plain accesses).
func TestSeqlockGapReportsExactField(t *testing.T) {
	p, m := compileProgram(t, "seqlock-gap")
	res, err := race.Sweep(m, race.SweepOptions{
		Model:   memmodel.ModelWMM,
		Entries: p.MCEntries,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var found bool
	var locs []string
	for _, r := range res.Races() {
		locs = append(locs, r.Loc.String())
		if r.Loc.String() == "%gen:0" {
			found = true
			// The gap pairs the reader's already-ported atomic load
			// with the writer's plain store: exactly one side atomic.
			if r.Prior.Atomic == r.Current.Atomic {
				t.Errorf("expected mixed atomic/plain pair on %%gen:0, got prior=%v current=%v",
					r.Prior.Atomic, r.Current.Atomic)
			}
		}
	}
	if !found {
		t.Fatalf("no race on %%gen:0; reported locations: %v", locs)
	}
}

// TestDetectorFlagsRacesUnderStrongModels checks the static-atomicity
// rule: a data race is a property of the program, not the model, so the
// same plain-access races must be reported even when executing under
// TSO and SC machines whose effective orderings hide the reordering.
func TestDetectorFlagsRacesUnderStrongModels(t *testing.T) {
	for _, model := range []memmodel.Model{memmodel.ModelSC, memmodel.ModelTSO} {
		t.Run(model.String(), func(t *testing.T) {
			p, m := compileProgram(t, "mp")
			res, err := race.Sweep(m, race.SweepOptions{
				Model:   model,
				Entries: p.MCEntries,
				Modes:   []vm.SchedMode{vm.SchedRandom},
				Seeds:   2,
			})
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			if res.Detector.Races() == 0 {
				t.Fatalf("mp not flagged under %s: races are model-independent", model)
			}
		})
	}
}

// TestReportProvenance checks the report rendering carries both access
// sites with function/block/instruction provenance and the symbolic
// location.
func TestReportProvenance(t *testing.T) {
	p, m := compileProgram(t, "mp")
	res, err := race.Sweep(m, race.SweepOptions{
		Model:   memmodel.ModelWMM,
		Entries: p.MCEntries,
		Modes:   []vm.SchedMode{vm.SchedRandom},
		Seeds:   1,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	out := race.FormatReports(res.Races())
	for _, want := range []string{"data race on @", "@writer", "@reader", "clock"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

// TestDedupAcrossExecutions checks that one detector observing many
// executions reports each site pair once with an occurrence count,
// not once per execution.
func TestDedupAcrossExecutions(t *testing.T) {
	p, m := compileProgram(t, "sb")
	det := race.New(memmodel.ModelWMM, race.Options{})
	_, err := race.Sweep(m, race.SweepOptions{
		Model:    memmodel.ModelWMM,
		Entries:  p.MCEntries,
		Detector: det,
		Seeds:    4,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	n := det.Races()
	if n == 0 {
		t.Fatal("no races on sb")
	}
	// sb has 2 globals × (write/read, write/write is absent) — a small
	// fixed set of site pairs; 20 executions must not multiply them.
	if n > 8 {
		t.Fatalf("dedup failed: %d distinct reports", n)
	}
	var counted bool
	for _, r := range det.Reports() {
		if r.Count > 1 {
			counted = true
		}
	}
	if !counted {
		t.Error("no report accumulated an occurrence count > 1 across 20 executions")
	}
}

// TestMaxReportsCap checks the report cap: further distinct races are
// dropped, known pairs still count.
func TestMaxReportsCap(t *testing.T) {
	p, m := compileProgram(t, "iriw")
	det := race.New(memmodel.ModelWMM, race.Options{MaxReports: 1})
	if _, err := race.Sweep(m, race.SweepOptions{
		Model:    memmodel.ModelWMM,
		Entries:  p.MCEntries,
		Detector: det,
		Modes:    []vm.SchedMode{vm.SchedRandom},
		Seeds:    2,
	}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if det.Races() != 1 {
		t.Fatalf("cap ignored: %d reports with MaxReports=1", det.Races())
	}
}

// TestParallelSweepDeterminism: the fanned-out sweep must report the
// same race keys, violations (in grid order) and execution count as
// the sequential sweep, for every worker count.
func TestParallelSweepDeterminism(t *testing.T) {
	leakcheck.Check(t)
	raceKeys := func(res *race.SweepResult) string {
		keys := make([]string, 0, len(res.Races()))
		for _, r := range res.Races() {
			keys = append(keys, r.Key())
		}
		sort.Strings(keys)
		return strings.Join(keys, "\n")
	}
	for _, name := range []string{"sb", "seqlock-gap"} {
		t.Run(name, func(t *testing.T) {
			p, m := compileProgram(t, name)
			run := func(workers int) *race.SweepResult {
				res, err := race.Sweep(m, race.SweepOptions{
					Model:   memmodel.ModelWMM,
					Entries: p.MCEntries,
					Seeds:   3,
					Workers: workers,
				})
				if err != nil {
					t.Fatalf("sweep (workers=%d): %v", workers, err)
				}
				return res
			}
			seq := run(0)
			if seq.Detector.Races() == 0 {
				t.Fatalf("sequential sweep found no races in %s", name)
			}
			wantKeys := raceKeys(seq)
			for _, j := range []int{1, 2, 8} {
				par := run(j)
				if got := raceKeys(par); got != wantKeys {
					t.Errorf("workers=%d race keys drifted:\n got %q\nwant %q", j, got, wantKeys)
				}
				if par.Executions != seq.Executions {
					t.Errorf("workers=%d executions = %d, want %d", j, par.Executions, seq.Executions)
				}
				if strings.Join(par.Violations, "\n") != strings.Join(seq.Violations, "\n") {
					t.Errorf("workers=%d violations drifted:\n got %q\nwant %q", j, par.Violations, seq.Violations)
				}
			}
		})
	}
}
