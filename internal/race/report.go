package race

import (
	"fmt"
	"strings"

	"repro/internal/alias"
	"repro/internal/ir"
	"repro/internal/memmodel"
)

// Access is one side of a reported race: the access site with full IR
// provenance plus the owning thread's vector clock at the access.
type Access struct {
	Thread int
	Write  bool
	Atomic bool
	Ord    ir.MemOrder
	// Site is the access instruction; Site.Blk and Site.Blk.Fn give the
	// block and function.
	Site *ir.Instr
	// Clock is a copy of the thread's vector clock at the access.
	Clock VC
}

func newAccess(rec accessRec, clock VC) Access {
	return Access{
		Thread: rec.thread, Write: rec.write, Atomic: rec.atomic,
		Ord: rec.ord, Site: rec.site, Clock: clock,
	}
}

func (a Access) kind() string {
	if a.Write {
		return "write"
	}
	return "read"
}

// Report is one detected data race: two conflicting accesses to Addr
// unordered by happens-before, at least one of them a non-atomic write
// or read.
type Report struct {
	// Addr is the concrete cell address the conflict occurred on.
	Addr memmodel.Addr
	// Loc is the symbolic location descriptor (global name or
	// struct-type field path) — the handle the migration feedback loop
	// uses to name what the port should have promoted.
	Loc alias.Loc
	// Prior is the earlier access, Current the one whose execution
	// exposed the race.
	Prior, Current Access
	// Count is the number of dynamic occurrences of this site pair.
	Count int
}

// SiteString renders an access site with function, block and
// instruction-index provenance, e.g.
// "@writer %entry #1: store %t0, @flag".
func SiteString(in *ir.Instr) string {
	if in == nil || in.Blk == nil {
		return "<unknown site>"
	}
	idx := -1
	for i, x := range in.Blk.Instrs {
		if x == in {
			idx = i
			break
		}
	}
	return fmt.Sprintf("@%s %%%s #%d: %s", in.Blk.Fn.Name, in.Blk.Name, idx, in)
}

// String renders the report for CLI output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "data race on %s (addr %#x", r.Loc, uint64(r.Addr))
	if r.Count > 1 {
		fmt.Fprintf(&b, ", %d occurrences", r.Count)
	}
	b.WriteString(")\n")
	for _, a := range []Access{r.Current, r.Prior} {
		fmt.Fprintf(&b, "  %-5s by T%d [%s] %s\n    clock %v\n",
			a.kind(), a.Thread, a.Ord, SiteString(a.Site), a.Clock)
	}
	return b.String()
}

// FormatReports renders a report list, one report per paragraph.
func FormatReports(reports []*Report) string {
	var b strings.Builder
	for _, r := range reports {
		b.WriteString(r.String())
	}
	return b.String()
}
