package race

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/vm"
)

// SweepOptions configures a scheduler-mode race sweep.
type SweepOptions struct {
	Model memmodel.Model
	// Entries are the functions started as initial threads.
	Entries []string
	// Modes are the scheduler modes to sweep; nil selects all of them.
	Modes []vm.SchedMode
	// Seeds is the number of seeds per mode (0 selects 4).
	Seeds int
	// MaxSteps bounds each execution (0 = VM default).
	MaxSteps int64
	// Detector accumulates findings across the sweep; nil creates a
	// fresh one. Passing a detector in lets callers deduplicate races
	// across several sweeps (the same program under different models,
	// or a resumed stress run).
	Detector *Detector
	// MaxReports configures the fresh detector when Detector is nil.
	MaxReports int
}

// SweepResult is the outcome of a race sweep.
type SweepResult struct {
	// Detector holds the deduplicated race reports.
	Detector *Detector
	// Executions is the number of executions run.
	Executions int
	// Violations lists executions that failed outright (assertion
	// failure or deadlock), one line each. An un-ported program under
	// WMM is expected to both race and fail — the sweep keeps going and
	// reports both — while a ported program should produce neither.
	Violations []string
}

// Races returns the distinct races found by the sweep.
func (r *SweepResult) Races() []*Report { return r.Detector.Reports() }

// Sweep runs the module's entry threads under every scheduler mode and
// seed with a race detector attached. Execution failures do not stop
// the sweep (the racy outcome the detector explains is often the same
// one that trips an assertion); they are recorded in
// SweepResult.Violations. The error return is reserved for engine
// failures (malformed module, internal VM error).
func Sweep(m *ir.Module, opts SweepOptions) (*SweepResult, error) {
	modes := opts.Modes
	if modes == nil {
		modes = vm.AllSchedModes()
	}
	seeds := opts.Seeds
	if seeds == 0 {
		seeds = 4
	}
	det := opts.Detector
	if det == nil {
		det = New(opts.Model, Options{MaxReports: opts.MaxReports})
	}
	out := &SweepResult{Detector: det}
	for _, mode := range modes {
		for s := 0; s < seeds; s++ {
			det.BeginExec()
			res, err := vm.Run(m, vm.Options{
				Model:      opts.Model,
				Entries:    opts.Entries,
				Controller: vm.NewScheduler(mode, int64(s)+1),
				MaxSteps:   opts.MaxSteps,
				Costs:      vm.DefaultCosts(),
				Hook:       det,
			})
			if err != nil {
				return out, fmt.Errorf("race sweep (%s, seed %d): %w", mode, s+1, err)
			}
			out.Executions++
			if res.Status == vm.StatusAssertFailed || res.Status == vm.StatusDeadlock {
				out.Violations = append(out.Violations,
					fmt.Sprintf("%s seed %d: %s: %s", mode, s+1, res.Status, res.FailMsg))
			}
		}
	}
	return out, nil
}
