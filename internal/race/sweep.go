package race

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/vm"
)

// SweepOptions configures a scheduler-mode race sweep.
type SweepOptions struct {
	Model memmodel.Model
	// Entries are the functions started as initial threads.
	Entries []string
	// Modes are the scheduler modes to sweep; nil selects all of them.
	Modes []vm.SchedMode
	// Seeds is the number of seeds per mode (0 selects 4).
	Seeds int
	// MaxSteps bounds each execution (0 = VM default).
	MaxSteps int64
	// Detector accumulates findings across the sweep; nil creates a
	// fresh one. Passing a detector in lets callers deduplicate races
	// across several sweeps (the same program under different models,
	// or a resumed stress run).
	Detector *Detector
	// MaxReports configures the fresh detector when Detector is nil.
	MaxReports int
	// Workers fans the (mode, seed) grid out across that many
	// goroutines, each with a private detector; reports merge by
	// canonical race key (MergeReports) and violations keep grid order,
	// so the result is identical for every worker count. 0 or 1 runs
	// sequentially. Ignored when Detector is caller-supplied: an
	// accumulating detector implies single-owner semantics.
	Workers int
	// Obs, when non-nil, counts swept executions in the metrics
	// registry (race.executions_swept) and feeds the detectors'
	// race.accesses_observed / race.reports_recorded counters.
	Obs *obs.Provider
}

// sweepBaseSeed anchors the sweep's schedule-seed derivation. Every
// (mode, seed) grid cell gets vm.GridSeed(sweepBaseSeed, mode, s+1):
// a pure function of the cell, never of the worker that claims it, so
// no two cells — across modes or across workers — replay the same
// schedule (the pre-GridSeed derivation recycled 1..Seeds for every
// mode, handing the random mode's RNG stream a sibling in each of the
// other modes' PickNondet streams).
const sweepBaseSeed = 1

// SweepResult is the outcome of a race sweep.
type SweepResult struct {
	// Detector holds the deduplicated race reports.
	Detector *Detector
	// Executions is the number of executions run.
	Executions int
	// Violations lists executions that failed outright (assertion
	// failure or deadlock), one line each. An un-ported program under
	// WMM is expected to both race and fail — the sweep keeps going and
	// reports both — while a ported program should produce neither.
	Violations []string
}

// Races returns the distinct races found by the sweep.
func (r *SweepResult) Races() []*Report { return r.Detector.Reports() }

// Sweep runs the module's entry threads under every scheduler mode and
// seed with a race detector attached. Execution failures do not stop
// the sweep (the racy outcome the detector explains is often the same
// one that trips an assertion); they are recorded in
// SweepResult.Violations. The error return is reserved for engine
// failures (malformed module, internal VM error).
func Sweep(m *ir.Module, opts SweepOptions) (*SweepResult, error) {
	modes := opts.Modes
	if modes == nil {
		modes = vm.AllSchedModes()
	}
	seeds := opts.Seeds
	if seeds == 0 {
		seeds = 4
	}
	if opts.Workers > 1 && opts.Detector == nil {
		return sweepParallel(m, opts, modes, seeds)
	}
	det := opts.Detector
	if det == nil {
		det = New(opts.Model, Options{MaxReports: opts.MaxReports, Obs: opts.Obs})
	}
	cSwept := opts.Obs.Counter("race.executions_swept")
	out := &SweepResult{Detector: det}
	for _, mode := range modes {
		for s := 0; s < seeds; s++ {
			det.BeginExec()
			res, err := vm.Run(m, vm.Options{
				Model:      opts.Model,
				Entries:    opts.Entries,
				Controller: vm.NewScheduler(mode, vm.GridSeed(sweepBaseSeed, mode, int64(s)+1)),
				MaxSteps:   opts.MaxSteps,
				Costs:      vm.DefaultCosts(),
				Hook:       det,
			})
			if err != nil {
				return out, fmt.Errorf("race sweep (%s, seed %d): %w", mode, s+1, err)
			}
			out.Executions++
			cSwept.Inc()
			if res.Status == vm.StatusAssertFailed || res.Status == vm.StatusDeadlock {
				out.Violations = append(out.Violations,
					fmt.Sprintf("%s seed %d: %s: %s", mode, s+1, res.Status, res.FailMsg))
			}
		}
	}
	return out, nil
}

// sweepParallel fans the (mode, seed) grid out across opts.Workers
// goroutines. Each (mode, seed) cell is independent — the scheduler is
// seeded per cell and the module is read-only during execution — so the
// grid is claimed from an atomic counter and the per-cell outcomes are
// written back by index. Per-worker detectors merge by canonical race
// key and violations are collected in grid order, making the result
// worker-count-invariant. On an engine failure the error of the
// earliest grid cell wins and Executions counts the cells before it,
// exactly what the sequential sweep would have reported.
func sweepParallel(m *ir.Module, opts SweepOptions, modes []vm.SchedMode, seeds int) (*SweepResult, error) {
	type cell struct {
		violation string // empty when the execution passed
		err       error
	}
	cells := make([]cell, len(modes)*seeds)
	workers := opts.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	cSwept := opts.Obs.Counter("race.executions_swept")
	dets := make([]*Detector, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// 4x headroom over the resolved cap so a single saturated
			// worker does not make the merged (sorted, capped) set
			// depend on how the grid was partitioned.
			det := New(opts.Model, Options{MaxReports: 4 * resolveMaxReports(opts.MaxReports), Obs: opts.Obs})
			dets[w] = det
			// The detector hook runs on this goroutine outside vm.Run's
			// own panic guard; contain a panicking cell as that cell's
			// error instead of killing the process, and record it
			// per-cell so the earliest-grid-cell error still wins.
			runCell := func(i int) {
				defer func() {
					if r := recover(); r != nil {
						cells[i].err = &diag.InternalError{
							Stage: "race.Sweep", Value: r, Stack: string(debug.Stack()),
						}
					}
				}()
				mode, seed := modes[i/seeds], i%seeds
				det.BeginExec()
				res, err := vm.Run(m, vm.Options{
					Model:      opts.Model,
					Entries:    opts.Entries,
					Controller: vm.NewScheduler(mode, vm.GridSeed(sweepBaseSeed, mode, int64(seed)+1)),
					MaxSteps:   opts.MaxSteps,
					Costs:      vm.DefaultCosts(),
					Hook:       det,
				})
				if err != nil {
					cells[i].err = fmt.Errorf("race sweep (%s, seed %d): %w", mode, seed+1, err)
					return
				}
				cSwept.Inc()
				if res.Status == vm.StatusAssertFailed || res.Status == vm.StatusDeadlock {
					cells[i].violation = fmt.Sprintf("%s seed %d: %s: %s", mode, seed+1, res.Status, res.FailMsg)
				}
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				runCell(i)
			}
		}(w)
	}
	wg.Wait()

	lists := make([][]*Report, 0, workers)
	for _, det := range dets {
		if det != nil {
			lists = append(lists, det.Reports())
		}
	}
	merged := New(opts.Model, Options{MaxReports: opts.MaxReports})
	merged.Adopt(MergeReports(merged.opts.MaxReports, lists...))
	out := &SweepResult{Detector: merged}
	for i := range cells {
		if cells[i].err != nil {
			out.Executions = i
			return out, cells[i].err
		}
		out.Executions++
		if cells[i].violation != "" {
			out.Violations = append(out.Violations, cells[i].violation)
		}
	}
	return out, nil
}
