package race

import "testing"

func TestVCJoinAndGet(t *testing.T) {
	a := VC{3, 0, 5}
	b := VC{1, 7}
	a.join(b)
	want := VC{3, 7, 5}
	if len(a) != len(want) {
		t.Fatalf("join length = %d, want %d", len(a), len(want))
	}
	for i := range want {
		if a.get(i) != want[i] {
			t.Errorf("component %d = %d, want %d", i, a.get(i), want[i])
		}
	}
	if a.get(99) != 0 {
		t.Errorf("out-of-range component = %d, want 0", a.get(99))
	}
}

func TestVCJoinGrows(t *testing.T) {
	var a VC
	a.join(VC{0, 0, 4})
	if a.get(2) != 4 {
		t.Fatalf("grown component = %d, want 4", a.get(2))
	}
	if a.get(0) != 0 || a.get(1) != 0 {
		t.Fatalf("padding components not zero: %v", a)
	}
}

func TestVCCloneIsIndependent(t *testing.T) {
	a := VC{1, 2}
	c := a.clone()
	c[0] = 9
	if a[0] != 1 {
		t.Fatalf("clone aliases original: %v", a)
	}
}

func TestFingerprintDeterministicAndSensitive(t *testing.T) {
	build := func() *Detector {
		d := New(0, Options{})
		d.ensure(2)
		d.clocks[1][1] = 5
		l := d.loc(64)
		l.hasWrite = true
		l.write = accessRec{thread: 1, clock: 5, write: true}
		l.sync = VC{0, 5}
		return d
	}
	d1, d2 := build(), build()
	if d1.Fingerprint() != d2.Fingerprint() {
		t.Fatalf("fingerprint not deterministic: %#x vs %#x", d1.Fingerprint(), d2.Fingerprint())
	}
	d2.clocks[1][1] = 6
	if d1.Fingerprint() == d2.Fingerprint() {
		t.Fatalf("fingerprint insensitive to clock change")
	}
	d3 := build()
	d3.loc(65)
	if d1.Fingerprint() == d3.Fingerprint() {
		t.Fatalf("fingerprint insensitive to new location")
	}
}

func TestBeginExecKeepsReportsResetsClocks(t *testing.T) {
	d := New(0, Options{})
	d.ensure(1)
	d.reports = append(d.reports, &Report{})
	d.BeginExec()
	if len(d.clocks) != 0 {
		t.Fatalf("clocks survived BeginExec: %v", d.clocks)
	}
	if d.Races() != 1 {
		t.Fatalf("reports dropped by BeginExec: %d", d.Races())
	}
	if d.ExecFoundNew() {
		t.Fatalf("ExecFoundNew true right after BeginExec")
	}
}
